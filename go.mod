module wqe

go 1.22
