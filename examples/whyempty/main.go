// Why-Empty (§6.1, mirroring the Fig 11 laptop case study): a
// hand-built computer-store query is so over-constrained it returns
// nothing. The user names one model they know should match; AnsWE finds
// the cheapest removal-only rewrite that surfaces it, explaining which
// constraints were responsible for the empty answer.
package main

import (
	"fmt"
	"log"

	"wqe"
)

func main() {
	g := buildStore()
	fmt.Println("computer store graph:", g)

	// Q_b-style query: recent laptops with a big screen, lots of RAM,
	// an NVidia GPU, and a brand one hop away.
	q := wqe.NewQuery()
	laptop := q.AddNode("Laptop",
		wqe.Literal{Attr: "Year", Op: wqe.GE, Val: wqe.N(2018)},
		wqe.Literal{Attr: "Screen", Op: wqe.GE, Val: wqe.N(15)},
		wqe.Literal{Attr: "RAM", Op: wqe.GE, Val: wqe.N(32)},
		wqe.Literal{Attr: "GPU", Op: wqe.EQ, Val: wqe.S("NVidia")},
	)
	brand := q.AddNode("Brand")
	q.AddEdge(laptop, brand, 1)
	q.Focus = laptop

	// The user wonders why MR942CH/A-style MacBooks are missing.
	e := &wqe.Exemplar{Tuples: []wqe.TuplePattern{{
		"Model": wqe.ConstCell(wqe.S("MR942CH/A")),
	}}}

	cfg := wqe.DefaultConfig()
	cfg.Budget = 3
	w, err := wqe.NewWhy(g, q, e, cfg)
	if err != nil {
		log.Fatal(err)
	}

	before := w.Matcher.Match(q)
	fmt.Println("\nquery:", q)
	fmt.Printf("Q(G) has %d answers — why is it empty?\n", len(before.Answer))

	a := w.AnsWE()
	fmt.Println("\nAnsWE rewrite:", a.Query)
	for _, o := range a.Ops {
		fmt.Println("  ·", o)
	}
	fmt.Print("answers now: ")
	for _, v := range a.Matches {
		model, _ := g.Attr(v, "Model")
		fmt.Printf("%s ", model)
	}
	fmt.Printf("\n(%d chase steps, %v)\n", w.Stats.Steps, w.Stats.Elapsed.Round(1000))
}

// buildStore creates a small laptop catalog in which nothing satisfies
// all four constraints at once: the NVidia machines are older or
// smaller, and the desired MacBooks ship AMD or Intel GPUs.
func buildStore() *wqe.Graph {
	g := wqe.NewGraph()
	apple := g.AddNode("Brand", map[string]wqe.Value{"Name": wqe.S("Apple")})
	dell := g.AddNode("Brand", map[string]wqe.Value{"Name": wqe.S("Dell")})
	lenovo := g.AddNode("Brand", map[string]wqe.Value{"Name": wqe.S("Lenovo")})

	add := func(model string, year, screen, ram float64, gpu string, brand wqe.NodeID) {
		l := g.AddNode("Laptop", map[string]wqe.Value{
			"Model": wqe.S(model), "Year": wqe.N(year), "Screen": wqe.N(screen),
			"RAM": wqe.N(ram), "GPU": wqe.S(gpu),
		})
		g.AddEdge(l, brand, "madeBy")
	}
	add("MR942CH/A", 2018, 15.4, 32, "AMD", apple)
	add("MR942LL/A", 2018, 15.4, 32, "AMD", apple)
	add("MV912LL/A", 2019, 15.4, 32, "Intel", apple)
	add("XPS-9570", 2018, 15.6, 16, "NVidia", dell)
	add("XPS-9380", 2019, 13.3, 16, "Intel", dell)
	add("P52", 2017, 15.6, 32, "NVidia", lenovo)
	add("X1-Extreme", 2019, 15.6, 32, "NVidia", lenovo)
	add("T480", 2018, 14.0, 32, "Intel", lenovo)
	return g
}
