// Quickstart: the paper's Fig 1 scenario built entirely through the
// public API. A user searches for premium Samsung-style cellphones,
// is unhappy with the answers, and describes the phones they actually
// want as two example tuples with value constraints; the library
// rewrites the query to match.
package main

import (
	"fmt"
	"log"

	"wqe"
)

func main() {
	// ── 1. An attributed product graph (a fragment of Fig 2) ────────
	g := wqe.NewGraph()
	phone := func(name string, display, storage, price, ram float64) wqe.NodeID {
		return g.AddNode("Cellphone", map[string]wqe.Value{
			"Name": wqe.S(name), "Display": wqe.N(display),
			"Storage": wqe.N(storage), "Price": wqe.N(price), "RAM": wqe.N(ram),
		})
	}
	p1 := phone("S9+", 5.8, 64, 840, 6)
	p2 := phone("Note8", 6.3, 64, 950, 6)
	p3 := phone("S9+v2", 6.2, 128, 799, 6)
	p4 := phone("Note8v2", 6.3, 64, 790, 4)
	p5 := phone("S8+", 6.2, 128, 840, 4)
	phone("J7", 5.5, 16, 300, 2)

	carrier := func(name string, discount float64) wqe.NodeID {
		return g.AddNode("Carrier", map[string]wqe.Value{
			"Name": wqe.S(name), "Discount": wqe.N(discount),
		})
	}
	sprint, att, tmobile := carrier("Sprint", 25), carrier("ATT", 10), carrier("TMobile", 25)
	for _, sale := range [][2]wqe.NodeID{{att, p1}, {att, p2}, {sprint, p3}, {sprint, p5}, {tmobile, p4}} {
		g.AddEdge(sale[0], sale[1], "sells")
	}
	wear := g.AddNode("Wearable", map[string]wqe.Value{"Name": wqe.S("GearS3")})
	sensor := g.AddNode("Sensor", map[string]wqe.Value{"Name": wqe.S("HeartRate")})
	g.AddEdge(wear, sensor, "has")
	for _, p := range []wqe.NodeID{p1, p2, p5} {
		g.AddEdge(p, wear, "pairs")
	}

	// ── 2. The original query Q: pricey cellphones with a carrier and
	//       a sensor within two hops ──────────────────────────────────
	q := wqe.NewQuery()
	cell := q.AddNode("Cellphone",
		wqe.Literal{Attr: "Price", Op: wqe.GE, Val: wqe.N(840)},
		wqe.Literal{Attr: "RAM", Op: wqe.GE, Val: wqe.N(4)},
	)
	car := q.AddNode("Carrier")
	sen := q.AddNode("Sensor")
	q.AddEdge(car, cell, 1)
	q.AddEdge(cell, sen, 2)
	q.Focus = cell

	// ── 3. The exemplar: "I want a 6.2-inch phone with more storage
	//       than some 6.3-inch phone under $800" ─────────────────────
	e := &wqe.Exemplar{
		Tuples: []wqe.TuplePattern{
			{"Display": wqe.ConstCell(wqe.N(6.2)), "Storage": wqe.VarCell("x1"), "Price": wqe.WildcardCell()},
			{"Display": wqe.ConstCell(wqe.N(6.3)), "Storage": wqe.VarCell("x2"), "Price": wqe.VarCell("x3")},
		},
		Constraints: []wqe.Constraint{
			{Left: "x3", Op: wqe.LT, Val: wqe.N(800)},
			{Left: "x1", Op: wqe.GT, IsVar: true, Right: "x2"},
		},
	}

	// ── 4. Ask the Why-question and rewrite ──────────────────────────
	cfg := wqe.DefaultConfig()
	cfg.Budget = 4
	w, err := wqe.NewWhy(g, q, e, cfg)
	if err != nil {
		log.Fatal(err)
	}

	before := w.Matcher.Match(q)
	fmt.Println("Q:     ", q)
	fmt.Println("Q(G):  ", names(g, before.Answer), " — but the user wanted cheaper, bigger phones")
	fmt.Println("E:     ", e)

	a := w.AnsW()
	fmt.Println("\nQ':    ", a.Query)
	fmt.Printf("cost %.2f, closeness %.2f (theoretical optimum %.2f)\n", a.Cost, a.Closeness, w.ClStar)
	fmt.Println("Q'(G): ", names(g, a.Matches))
	fmt.Println("\nwhy (differential table):")
	for _, d := range a.Diff {
		fmt.Println("  ", d)
	}
}

func names(g *wqe.Graph, nodes []wqe.NodeID) []string {
	out := make([]string, len(nodes))
	for i, v := range nodes {
		name, _ := g.Attr(v, "Name")
		out[i] = name.String()
	}
	return out
}
