// Exploratory search (Fig 3): the query → response → exemplar →
// rewrite loop, run for several sessions over the IMDB-like graph. The
// "user" keeps pointing at more desired entities; each session rewrites
// the previous session's query, and the differential table explains
// what changed and why.
package main

import (
	"fmt"
	"log"

	"wqe"
)

func main() {
	g, err := wqe.GenerateDataset(wqe.DatasetMovies, 6000, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("movie graph:", g)

	// A hidden intent and its public, imperfect first attempt.
	inst, ok := wqe.GenerateWhyQuestion(g, wqe.WorkloadSpec{
		Query:      wqe.QueryWorkload{Edges: 2, MaxPredicates: 2, FocusLabel: "Movie"},
		DisturbOps: 4,
		MaxTuples:  12,
	}, 17)
	if !ok {
		log.Fatal("could not sample an exploration scenario")
	}
	desired := inst.AnswerStar
	fmt.Printf("\nhidden intent: %s (%d desired movies)\n", inst.Qstar, len(desired))

	// A Session keeps the distance index and star-view cache warm
	// across the whole exploration (§5.2).
	session := wqe.NewSession(g, wqe.DefaultConfig())

	q := inst.Q
	// The user reveals a few more desired movies each session.
	reveal := []int{3, 6, 12}
	for i, n := range reveal {
		if n > len(desired) {
			n = len(desired)
		}
		e := wqe.ExemplarFromEntities(g, desired[:n], []string{"Year", "Rating"})

		fmt.Printf("\n══ session %d ══\n", i+1)
		fmt.Println("query:   ", q)
		fmt.Printf("exemplar: %d example movies\n", n)

		a, err := session.AskFast(q, e, 3) // fast per-session response (§4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rewrite:  %s\n", a.Query)
		fmt.Printf("answers:  %d (recall of intent: %.1f%%)\n",
			len(a.Matches), 100*recall(a.Matches, desired))
		for _, d := range a.Diff {
			fmt.Println("  lineage:", d.Op)
		}
		q = a.Query // next session explores from the rewrite
	}
	hits, misses := session.CacheStats()
	fmt.Printf("\nstar-view cache across sessions: %d hits / %d lookups\n", hits, hits+misses)
}

func recall(got, want []wqe.NodeID) float64 {
	if len(want) == 0 {
		return 0
	}
	set := map[wqe.NodeID]bool{}
	for _, v := range got {
		set[v] = true
	}
	n := 0
	for _, v := range want {
		if set[v] {
			n++
		}
	}
	return float64(n) / float64(len(want))
}
