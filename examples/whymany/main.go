// Why-Many (§6.1): a query that returns far too many results — an
// over-relaxed search over the offshore-leaks-like graph — is refined
// by ApxWhyM, the fixed-parameter-approximable budgeted set-cover
// algorithm, so that irrelevant entities disappear while the entities
// the investigator flagged as relevant stay.
package main

import (
	"fmt"
	"log"

	"wqe"
)

func main() {
	g, err := wqe.GenerateDataset(wqe.DatasetOffshore, 6000, 29)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("offshore graph:", g)

	// RelaxOnly disturbance: the user's query lost predicates, so it
	// drowns the desired entities in noise.
	inst, ok := wqe.GenerateWhyQuestion(g, wqe.WorkloadSpec{
		Query:      wqe.QueryWorkload{Edges: 2, MaxPredicates: 3, FocusLabel: "Entity"},
		DisturbOps: 2,
		MaxTuples:  6,
		RelaxOnly:  true,
	}, 41)
	if !ok {
		log.Fatal("could not sample a why-many scenario")
	}

	fmt.Println("\nquery:   ", inst.Q)
	fmt.Printf("answers:  %d entities — the investigator flagged only %d as relevant\n",
		len(inst.Answer), len(inst.E.Tuples))
	fmt.Println("exemplar:", inst.E)

	w, err := wqe.NewWhy(g, inst.Q, inst.E, wqe.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	a := w.ApxWhyM()

	fmt.Println("\nApxWhyM refinement:", a.Query)
	for _, o := range a.Ops {
		fmt.Println("  ·", o)
	}
	fmt.Printf("answers now: %d (was %d); closeness %.4f; %v\n",
		len(a.Matches), len(inst.Answer), a.Closeness, w.Stats.Elapsed.Round(1000))
	fmt.Printf("desired entities kept: %.1f%%\n", 100*kept(a.Matches, inst.AnswerStar))
}

func kept(got, want []wqe.NodeID) float64 {
	if len(want) == 0 {
		return 1
	}
	set := map[wqe.NodeID]bool{}
	for _, v := range got {
		set[v] = true
	}
	n := 0
	for _, v := range want {
		if set[v] {
			n++
		}
	}
	return float64(n) / float64(len(want))
}
