// Product search: top-k query suggestion over the WatDiv-like
// e-commerce graph. A generated "user" issues a (disturbed) product
// query, points at a few products they actually wanted, and receives
// three alternative query rewrites ranked by closeness — the §6.2
// workflow.
package main

import (
	"fmt"
	"log"

	"wqe"
)

func main() {
	g, err := wqe.GenerateDataset(wqe.DatasetProducts, 6000, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("catalog graph:", g)

	// Sample a Why-question: GenerateWhyQuestion plays the "user" — it
	// draws a realistic product query (the intent), hides it behind a
	// disturbed variant (what the user actually typed), and lists a few
	// desired products as the exemplar.
	inst, ok := wqe.GenerateWhyQuestion(g, wqe.WorkloadSpec{
		Query:      wqe.QueryWorkload{Edges: 2, MaxPredicates: 2, PathEdgeProb: 0.2, FocusLabel: "Product"},
		DisturbOps: 3,
		MaxTuples:  4,
	}, 23)
	if !ok {
		log.Fatal("could not sample a product search scenario")
	}

	fmt.Println("\nuser's query:   ", inst.Q)
	fmt.Printf("it returned %d products; the user expected ones like these %d examples\n",
		len(inst.Answer), len(inst.E.Tuples))
	fmt.Println("exemplar:       ", inst.E)

	w, err := wqe.NewWhy(g, inst.Q, inst.E, wqe.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	suggestions := w.TopK(3)
	for i, a := range suggestions {
		fmt.Printf("\nsuggestion #%d (closeness %.3f, cost %.2f, %d answers):\n  %s\n",
			i+1, a.Closeness, a.Cost, len(a.Matches), a.Query)
		for _, o := range a.Ops {
			fmt.Println("   ·", o)
		}
	}

	// How well did the best suggestion recover the hidden intent?
	fmt.Printf("\nhidden intent:   %s\n", inst.Qstar)
	fmt.Printf("intent recovery: %.1f%% of the desired answers match\n",
		100*overlap(suggestions[0].Matches, inst.AnswerStar))
}

func overlap(got, want []wqe.NodeID) float64 {
	if len(want) == 0 {
		return 0
	}
	set := map[wqe.NodeID]bool{}
	for _, v := range got {
		set[v] = true
	}
	n := 0
	for _, v := range want {
		if set[v] {
			n++
		}
	}
	return float64(n) / float64(len(want))
}
