package wqe

import (
	"math/rand"

	"wqe/internal/datagen"
)

// Dataset names accepted by GenerateDataset, mirroring the paper's four
// evaluation datasets (synthetic analogs; see DESIGN.md §4).
const (
	DatasetKnowledge = datagen.DatasetKnowledge // DBpedia analog
	DatasetMovies    = datagen.DatasetMovies    // IMDB analog
	DatasetOffshore  = datagen.DatasetOffshore  // ICIJ Offshore analog
	DatasetProducts  = datagen.DatasetProducts  // WatDiv analog
)

// GenerateDataset builds one of the named synthetic datasets at roughly
// n nodes with a seeded deterministic generator.
func GenerateDataset(name string, n int, seed int64) (*Graph, error) {
	return datagen.Generate(name, n, seed)
}

// Fig1Example bundles the paper's running example: the Fig 2 product
// graph, the Fig 1 query, and the Example 2.3 exemplar, plus named
// node handles.
type Fig1Example = datagen.Fig1

// NewFig1Example constructs the running example.
func NewFig1Example() *Fig1Example { return datagen.NewFig1() }

// WorkloadSpec parameterizes Why-question generation for experiments
// and demos (see datagen.WhySpec).
type WorkloadSpec = datagen.WhySpec

// QueryWorkload parameterizes ground-truth query sampling (shape, edge
// count, predicates).
type QueryWorkload = datagen.QuerySpec

// WhyInstance is one generated Why-question with its ground truth.
type WhyInstance = datagen.WhyInstance

// GenerateWhyQuestion samples one Why-question over g: a ground-truth
// query with answers, a disturbed query, and an exemplar listing
// desired entities.
func GenerateWhyQuestion(g *Graph, spec WorkloadSpec, seed int64) (*WhyInstance, bool) {
	m := NewMatcher(g, NewDistIndex(g), nil)
	rng := rand.New(rand.NewSource(seed))
	return datagen.GenWhy(g, m, spec, rng)
}
