package wqe_test

import (
	"os"
	"testing"

	"wqe"
	"wqe/internal/exemplar"
	"wqe/internal/graph"
	"wqe/internal/query"
)

// TestFixturesInSync: the JSON fixtures under testdata/fig1 stay
// equivalent to the in-code running example (they feed the cmd/wqe
// documentation flow).
func TestFixturesInSync(t *testing.T) {
	f := wqe.NewFig1Example()

	gf, err := os.Open("testdata/fig1/graph.json")
	if err != nil {
		t.Fatal(err)
	}
	defer gf.Close()
	g, err := graph.ReadJSON(gf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != f.G.NumNodes() || g.NumEdges() != f.G.NumEdges() {
		t.Error("graph fixture out of sync")
	}

	qf, err := os.Open("testdata/fig1/query.json")
	if err != nil {
		t.Fatal(err)
	}
	defer qf.Close()
	q, err := query.ReadJSON(qf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Key() != f.Q.Key() {
		t.Error("query fixture out of sync")
	}

	ef, err := os.Open("testdata/fig1/exemplar.json")
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	e, err := exemplar.ReadJSON(ef)
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != f.E.String() {
		t.Errorf("exemplar fixture out of sync:\n%s\nvs\n%s", e, f.E)
	}

	// The fixture trio answers the Why-question like the in-code one.
	cfg := wqe.DefaultConfig()
	cfg.Budget = 4
	w, err := wqe.NewWhy(g, q, e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a := w.AnsW(); a.Closeness != 0.5 {
		t.Errorf("fixture chase closeness = %v", a.Closeness)
	}
}
