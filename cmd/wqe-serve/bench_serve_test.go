package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"wqe/internal/bench"
	"wqe/internal/chase"
	"wqe/internal/datagen"
	"wqe/internal/loadgen"
	"wqe/internal/par"
)

// serveBench is the BENCH_serve.json schema: closed-loop serving
// throughput over the Fig 1 repeated-question workload with the answer
// cache off vs on, plus the provenance needed to interpret the numbers.
type serveBench struct {
	GeneratedBy string             `json:"generated_by"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	NumCPU      int                `json:"num_cpu"`
	Workload    string             `json:"workload"`
	Clients     int                `json:"clients"`
	DurationMS  float64            `json:"duration_ms"`
	WarmupMS    float64            `json:"warmup_ms"`
	Mix         map[string]float64 `json:"mix"`

	CacheOff loadgen.Report `json:"cache_off"`
	CacheOn  loadgen.Report `json:"cache_on"`

	AnswerCache struct {
		Hits      int64   `json:"hits"`
		Misses    int64   `json:"misses"`
		Coalesced int64   `json:"coalesced"`
		HitRate   float64 `json:"hit_rate"`
	} `json:"answer_cache"`

	Speedup            float64 `json:"speedup"`
	ResponsesIdentical bool    `json:"responses_identical"`
	Note               string  `json:"note"`
}

// newBenchServer builds an in-process Fig 1 server (the smoke fixture)
// with the answer cache on or off, fronted by an httptest listener.
func newBenchServer(t testing.TB, answerCache bool) (*server, *httptest.Server) {
	t.Helper()
	f := datagen.NewFig1()
	cfg := chase.DefaultConfig()
	cfg.Budget = 4
	cfg.AnswerCache = answerCache
	handles := []*graphHandle{{name: "fig1", g: f.G, session: chase.NewSession(f.G, cfg)}}
	srv := newServer(handles, par.Workers(0), 256, 30*time.Second)
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return srv, ts
}

// normalizeResponse strips the timing field so two answers can be
// compared for semantic byte-identity: elapsed_ms is wall clock and
// legitimately differs between a cached and an uncached serve.
func normalizeResponse(t testing.TB, raw []byte) []byte {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("normalize: %v (%s)", err, raw)
	}
	delete(m, "elapsed_ms")
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// benchPost issues one request and returns the normalized body.
func benchPost(t testing.TB, url string, body []byte) []byte {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %d %s", url, resp.StatusCode, buf.String())
	}
	return normalizeResponse(t, buf.Bytes())
}

// TestEmitServeBench measures closed-loop serving throughput over the
// repeated-question Fig 1 workload with the answer cache off vs on and
// writes BENCH_serve.json. Gated behind WQE_SERVE_BENCH_JSON: set it to
// 1 to write the repo default, or to an explicit output path.
// `make bench-serve` wraps this.
func TestEmitServeBench(t *testing.T) {
	out := os.Getenv("WQE_SERVE_BENCH_JSON")
	if out == "" {
		t.Skip("set WQE_SERVE_BENCH_JSON=1 (or to an output path) to emit BENCH_serve.json")
	}
	if out == "1" {
		out = filepath.Join("..", "..", "BENCH_serve.json")
	}
	bench.GuardSingleCoreOverwrite(t, out)

	mix := map[string]float64{"/ask": 3, "/askfast": 5, "/why": 1, "/whyempty": 0.5, "/whymany": 0.5}
	clients := runtime.GOMAXPROCS(0) * 2
	if clients < 4 {
		clients = 4
	}
	const duration = 3 * time.Second
	const warmup = 500 * time.Millisecond

	// Byte-identity first, before any load touches the servers: the same
	// question must get the same answer whether it is chased or served
	// from the memo (elapsed_ms normalized away). Ask twice on the cached
	// server so the second serve actually is a cache hit.
	offSrv, offTS := newBenchServer(t, false)
	onSrv, onTS := newBenchServer(t, true)
	identical := true
	for _, ep := range []string{"/ask", "/askfast", "/why", "/whyempty", "/whymany"} {
		body, err := json.Marshal(map[string]json.RawMessage{
			"graph":    json.RawMessage(`"fig1"`),
			"query":    json.RawMessage(loadgen.Fig1QueryJSON),
			"exemplar": json.RawMessage(loadgen.Fig1ExemplarJSON),
		})
		if err != nil {
			t.Fatal(err)
		}
		want := benchPost(t, offTS.URL+ep, body)
		gotMiss := benchPost(t, onTS.URL+ep, body)
		gotHit := benchPost(t, onTS.URL+ep, body)
		if !bytes.Equal(want, gotMiss) || !bytes.Equal(want, gotHit) {
			identical = false
			t.Errorf("%s: cache-on response differs from cache-off\noff:  %s\nmiss: %s\nhit:  %s",
				ep, want, gotMiss, gotHit)
		}
	}

	run := func(ts *httptest.Server) loadgen.Report {
		rep, err := loadgen.Run(loadgen.Options{
			BaseURL:  ts.URL,
			Graph:    "fig1",
			Mix:      mix,
			Pool:     loadgen.Fig1Pool(),
			Clients:  clients,
			Duration: duration,
			Warmup:   warmup,
			Seed:     1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.ErrorRate != 0 {
			t.Fatalf("load run saw errors: %+v", rep.Status)
		}
		return rep
	}
	repOff := run(offTS)
	repOn := run(onTS)
	_ = offSrv

	var b serveBench
	b.GeneratedBy = "go test ./cmd/wqe-serve -run TestEmitServeBench (make bench-serve)"
	b.GOMAXPROCS = runtime.GOMAXPROCS(0)
	b.NumCPU = runtime.NumCPU()
	b.Workload = fmt.Sprintf("Fig 1 fixture, repeated-question closed loop: %d clients replay the "+
		"same (query, exemplar) across the ask/explain endpoints for %v (%v warmup excluded); "+
		"-answer-cache off vs on", clients, duration, warmup)
	b.Clients = clients
	b.DurationMS = float64(duration) / float64(time.Millisecond)
	b.WarmupMS = float64(warmup) / float64(time.Millisecond)
	b.Mix = mix
	b.CacheOff = repOff
	b.CacheOn = repOn
	b.ResponsesIdentical = identical

	ac := onSrv.graphs["fig1"].session.Counters().AnswerCache
	b.AnswerCache.Hits = ac.Hits
	b.AnswerCache.Misses = ac.Misses
	b.AnswerCache.Coalesced = ac.Coalesced
	if total := ac.Hits + ac.Misses + ac.Coalesced; total > 0 {
		b.AnswerCache.HitRate = float64(ac.Hits+ac.Coalesced) / float64(total)
	}
	if repOff.AchievedRPS > 0 {
		b.Speedup = repOn.AchievedRPS / repOff.AchievedRPS
	}

	bench.WarnSingleCore(t)
	switch {
	case b.GOMAXPROCS == 1:
		b.Note = "single-core run: the cached serve saves chase work but both modes are CPU-bound " +
			"on one core, so the speedup understates multi-core behavior; regenerate on >=4 cores"
		t.Logf("single-core run: speedup %.2fx recorded without the >=2x assertion", b.Speedup)
	default:
		b.Note = "repeated-question mix: after the first miss per (endpoint, question) key every " +
			"serve is a memo hit, so throughput is bounded by response encoding, not chasing"
		if b.Speedup < 2 {
			t.Errorf("answer cache speedup %.2fx on %d cores, want >= 2x on the repeated-question mix",
				b.Speedup, b.GOMAXPROCS)
		}
	}
	if !identical {
		t.Error("cache-on responses were not byte-identical to cache-off (see diffs above)")
	}

	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: off %.0f req/s, on %.0f req/s, speedup %.2fx, hit rate %.3f, coalesced %d",
		out, repOff.AchievedRPS, repOn.AchievedRPS, b.Speedup, b.AnswerCache.HitRate, b.AnswerCache.Coalesced)
}
