// Command wqe-serve is the long-lived Why-question server: it loads one
// or more attributed graphs, builds a chase.Session per graph (shared
// distance oracle, sharded star-view cache, helper-token budget), and
// serves Ask/AskFast/AskAll/Why/WhyEmpty/WhyMany over HTTP+JSON.
//
//	wqe-serve -addr :8080 -graph products=g.json
//	wqe-serve -graph big=big.snap          # binary snapshot, sniffed by magic
//	wqe-serve -graph a=a.json -graph b=b.json -slots 4 -queue 64
//	wqe-serve -smoke   # self-exercise every endpoint against the Fig 1 fixture, then exit
//
// -graph accepts either on-disk format: graph JSON or the binary
// snapshot written by wqe-datagen -snapshot / wqe -save-snapshot,
// recognized by its leading magic bytes. A snapshot with embedded PLL
// labels restores the distance index instead of rebuilding it, so a
// million-node graph cold-starts in seconds; /stats reports each
// graph's source format, snapshot version, and load time.
//
// Endpoints (see README "Serving" for payloads):
//
//	POST /ask       one Why-question; algo selectable (answ default)
//	POST /askfast   beam-search heuristic (interactive latency)
//	POST /why       AnsW + differential table + rendered explanation
//	POST /whyempty  removal-only Why-Empty rewrite
//	POST /whymany   Why-Many refinement
//	POST /askall    batch of questions over one shared session
//	GET  /graphs    resident graphs
//	GET  /stats     queue gauges, request counters, session/cache counters
//	GET  /healthz   liveness
//
// Operational contract: admission is bounded (-slots running jobs, up
// to -queue waiting; beyond that 429), every request's time budget is
// anchored at submission so queue wait counts against it, a
// disconnected client cancels its chase mid-beam within one claim
// iteration, and SIGINT/SIGTERM drains gracefully — no new job starts,
// every in-flight job finishes and is answered.
//
// The answer memo (-answer-cache, on by default) serves repeated
// questions from cache and coalesces identical concurrent requests onto
// one chase; memoized chases run detached from request deadlines, so a
// deadline-limited request served from the memo receives the complete
// answer rather than a best-so-far cut. /stats reports hit/miss/
// coalesced counters per graph and per-endpoint latency percentiles.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wqe/internal/chase"
	"wqe/internal/graphload"
	"wqe/internal/par"
)

// graphFlags collects repeated -graph name=path values.
type graphFlags []string

func (g *graphFlags) String() string { return strings.Join(*g, ",") }
func (g *graphFlags) Set(v string) error {
	*g = append(*g, v)
	return nil
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("wqe-serve", flag.ContinueOnError)
	var graphs graphFlags
	fs.Var(&graphs, "graph", "resident graph as name=path.json (repeatable)")
	var (
		addr        = fs.String("addr", "127.0.0.1:8080", "listen address")
		slots       = fs.Int("slots", 0, "max concurrently running jobs (0 = one per logical CPU)")
		queueCap    = fs.Int("queue", 64, "max jobs waiting beyond the running ones (admission bound)")
		timeout     = fs.Duration("timeout", 30*time.Second, "default per-request budget, anchored at submission (0 = unlimited)")
		budget      = fs.Float64("budget", 3, "operator cost budget B")
		theta       = fs.Float64("theta", 1, "vsim closeness threshold θ")
		lambda      = fs.Float64("lambda", 1, "irrelevant-match penalty λ")
		maxBound    = fs.Int("maxbound", 3, "edge bound cap b_m")
		workers     = fs.Int("workers", 0, "per-question evaluation workers (0 = one per logical CPU)")
		cacheShards = fs.Int("cache-shards", 0, "star-view cache lock stripes (0 = auto)")
		answerCache = fs.Int("answer-cache", 4096, "answer memo capacity in entries: identical requests are served from cache and identical concurrent requests coalesce onto one chase (0 disables)")
		smoke       = fs.Bool("smoke", false, "start on an ephemeral port, exercise every endpoint against the fixture graph, verify /stats, drain, and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := chase.DefaultConfig()
	cfg.Budget = *budget
	cfg.Theta = *theta
	cfg.Lambda = *lambda
	cfg.MaxBound = *maxBound
	cfg.Workers = *workers
	cfg.CacheShards = *cacheShards
	cfg.AnswerCache = *answerCache > 0
	cfg.AnswerCacheCap = *answerCache

	if *smoke {
		if err := runSmoke(cfg, *slots, *queueCap); err != nil {
			fmt.Fprintln(os.Stderr, "wqe-serve: smoke: FAIL:", err)
			return 1
		}
		fmt.Println("wqe-serve: smoke: PASS")
		return 0
	}

	if len(graphs) == 0 {
		fmt.Fprintln(os.Stderr, "wqe-serve: need at least one -graph name=path.json (or -smoke)")
		return 2
	}
	handles, err := loadHandles(graphs, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wqe-serve:", err)
		return 1
	}
	srv := newServer(handles, par.Workers(*slots), *queueCap, *timeout)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wqe-serve:", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.mux()}

	// The accept loop lives on a par.Group goroutine; the main
	// goroutine owns the signal-driven shutdown sequence and joins the
	// group before exiting, so the process never leaks its server.
	var group par.Group
	var serveErr error
	group.Go(func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			serveErr = err
		}
	})
	fmt.Printf("wqe-serve: listening on %s (%d graphs, %d slots, queue %d)\n",
		ln.Addr(), len(handles), par.Workers(*slots), *queueCap)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("wqe-serve: draining...")

	// Drain order matters: stop admitting and wait for in-flight jobs
	// first (their responses still need the connections), then shut the
	// HTTP server down — Shutdown waits for idle connections only.
	srv.drain()
	if err := httpSrv.Shutdown(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, "wqe-serve: shutdown:", err)
	}
	group.Wait()
	if serveErr != nil {
		fmt.Fprintln(os.Stderr, "wqe-serve:", serveErr)
		return 1
	}
	fmt.Println("wqe-serve: drained, bye")
	return 0
}

// loadHandles loads every -graph name=path pair (JSON or binary
// snapshot, sniffed) and builds its resident session — over the
// restored PLL index when the snapshot embeds one.
func loadHandles(specs []string, cfg chase.Config) ([]*graphHandle, error) {
	var out []*graphHandle
	seen := map[string]bool{}
	for _, spec := range specs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			return nil, fmt.Errorf("bad -graph %q: want name=path", spec)
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate -graph name %q", name)
		}
		seen[name] = true
		res, err := graphload.Open(path)
		if err != nil {
			return nil, fmt.Errorf("load graph %q: %w", name, err)
		}
		out = append(out, &graphHandle{
			name:        name,
			g:           res.G,
			session:     chase.NewSessionWithIndex(res.G, cfg, res.Index),
			source:      res.Source,
			snapVersion: res.SnapshotVersion,
			pllRestored: res.PLLRestored(),
			loadMS:      float64(res.Elapsed) / float64(time.Millisecond),
		})
	}
	return out, nil
}
