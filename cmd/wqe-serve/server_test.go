package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"wqe/internal/chase"
	"wqe/internal/datagen"
	"wqe/internal/distindex"
	"wqe/internal/graph"
)

// newTestServer builds a server over the Fig 1 fixture and an
// httptest listener in front of its mux.
func newTestServer(t *testing.T, slots, queue int) (*server, *httptest.Server) {
	t.Helper()
	f := datagen.NewFig1()
	cfg := chase.DefaultConfig()
	cfg.Budget = 4
	handles := []*graphHandle{{name: "fig1", g: f.G, session: chase.NewSession(f.G, cfg)}}
	srv := newServer(handles, slots, queue, 30*time.Second)
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestAdmissionBounds pins the admission state machine: a full waiting
// room rejects with 429, a queued caller whose context is already done
// bails with the client-gone status without ever holding a slot, a
// released slot is reusable, and after drain every acquire is 503.
func TestAdmissionBounds(t *testing.T) {
	a := newAdmission(1, 1)

	release, status := a.acquire(context.Background())
	if status != 0 || release == nil {
		t.Fatalf("first acquire: status %d", status)
	}

	// Slot held, waiting room sized 1: a second caller may wait, a
	// third is turned away at the door.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, st := a.acquire(ctx); st != statusClientGone {
		t.Errorf("queued caller with dead context: status %d, want %d", st, statusClientGone)
	}
	if w, r, _ := a.snapshot(); w != 0 || r != 1 {
		t.Errorf("gauges after bail: waiting=%d running=%d, want 0/1", w, r)
	}

	release()
	release2, status := a.acquire(context.Background())
	if status != 0 {
		t.Fatalf("reacquire after release: status %d", status)
	}
	if _, st := a.acquire(ctx); st != statusClientGone {
		t.Errorf("dead-context caller: status %d, want %d", st, statusClientGone)
	}
	release2()

	a.beginDrain()
	if _, st := a.acquire(context.Background()); st != http.StatusServiceUnavailable {
		t.Errorf("acquire after drain: status %d, want 503", st)
	}
	if _, _, draining := a.snapshot(); !draining {
		t.Error("snapshot does not report draining")
	}
}

// TestAdmissionQueueFull fills the waiting room through real blocked
// waiters and checks the 429 path, then verifies drain flushes every
// queued caller with 503.
func TestAdmissionQueueFull(t *testing.T) {
	a := newAdmission(1, 1)
	release, status := a.acquire(context.Background())
	if status != 0 {
		t.Fatalf("acquire: status %d", status)
	}

	// One caller blocks in the waiting room (capacity 1)...
	queued := make(chan int, 1)
	go func() {
		_, st := a.acquire(context.Background())
		queued <- st
	}()
	for {
		if w, _, _ := a.snapshot(); w == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// ...so the next caller is rejected at the door.
	if _, st := a.acquire(context.Background()); st != http.StatusTooManyRequests {
		t.Errorf("overflow caller: status %d, want 429", st)
	}

	// Drain flushes the queued caller with 503; the slot holder must
	// release before beginDrain can return.
	done := make(chan struct{})
	go func() {
		a.beginDrain()
		close(done)
	}()
	if st := <-queued; st != http.StatusServiceUnavailable {
		t.Errorf("queued caller after drain: status %d, want 503", st)
	}
	release()
	<-done
}

// TestCancelledClientStopsChase sends a request whose context is
// already cancelled. Depending on which select arm wins, the job either
// never starts (client-gone: nothing written) or runs with the cancel
// channel wired through to the chase — in which case it must stop
// before the uncancelled run's step count.
func TestCancelledClientStopsChase(t *testing.T) {
	srv, ts := newTestServer(t, 2, 8)

	status, b, err := smokePost(ts.URL+"/ask", smokeAskBody(""))
	if err != nil || status != http.StatusOK {
		t.Fatalf("baseline /ask: status %d err %v", status, err)
	}
	var baseline askResponse
	if err := json.Unmarshal(b, &baseline); err != nil {
		t.Fatalf("baseline decode: %v", err)
	}
	if baseline.Steps < 2 {
		t.Fatalf("fixture too small: baseline took %d steps", baseline.Steps)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/ask",
		strings.NewReader(string(smokeAskBody("")))).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.mux().ServeHTTP(rec, req)

	if rec.Body.Len() == 0 {
		// Client-gone path: the job never started and was only counted.
		if got := srv.stats.clientGone.Load(); got != 1 {
			t.Errorf("client_gone = %d, want 1", got)
		}
		return
	}
	var r askResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &r); err != nil {
		t.Fatalf("cancelled response decode: %v (body %q)", err, rec.Body.String())
	}
	if r.Steps >= baseline.Steps {
		t.Errorf("cancelled chase ran %d steps, baseline %d — cancel channel not wired through",
			r.Steps, baseline.Steps)
	}
}

// TestDrainStress is the graceful-shutdown race check (run under
// -race): concurrent clients hammer /ask while the server drains
// mid-flight. Invariants: every response is a complete 200 answer or a
// clean 429/503 rejection; every admitted job completes (none dropped);
// and no job is admitted after drain returns.
func TestDrainStress(t *testing.T) {
	srv, ts := newTestServer(t, 2, 64)
	body := smokeAskBody("")

	type outcome struct {
		status   int
		err      error
		complete bool // 200 bodies only: decoded to a full answer
	}
	var (
		mu       sync.Mutex
		outcomes []outcome
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				status, b, err := smokePost(ts.URL+"/ask", body)
				o := outcome{status: status, err: err}
				if err == nil && status == http.StatusOK {
					var r askResponse
					o.complete = json.Unmarshal(b, &r) == nil && r.Rewrite != ""
				}
				mu.Lock()
				outcomes = append(outcomes, o)
				mu.Unlock()
				if status == http.StatusServiceUnavailable {
					return // drained: this client is done
				}
			}
		}()
	}

	// Let real work get admitted, then drain mid-flight.
	for srv.stats.admitted.Load() < 16 {
		time.Sleep(time.Millisecond)
	}
	srv.drain()
	admitted := srv.stats.admitted.Load()
	completed := srv.stats.completed.Load()
	close(stop)
	wg.Wait()

	// When drain returns, every admitted job has already answered: the
	// counters are frozen and balanced (the fixture job cannot fail).
	if admitted != completed {
		t.Errorf("drain dropped in-flight jobs: admitted %d, completed %d", admitted, completed)
	}
	if errs := srv.stats.jobErrors.Load(); errs != 0 {
		t.Errorf("job errors under stress: %d", errs)
	}
	if now := srv.stats.admitted.Load(); now != admitted {
		t.Errorf("job admitted after drain returned: %d -> %d", admitted, now)
	}

	status, _, err := smokePost(ts.URL+"/ask", body)
	if err != nil || status != http.StatusServiceUnavailable {
		t.Errorf("post-drain probe: status %d err %v, want 503", status, err)
	}
	if now := srv.stats.admitted.Load(); now != admitted {
		t.Errorf("post-drain probe was admitted: %d -> %d", admitted, now)
	}

	for i, o := range outcomes {
		switch {
		case o.err != nil:
			t.Errorf("request %d: transport error %v", i, o.err)
		case o.status == http.StatusOK && !o.complete:
			t.Errorf("request %d: 200 with incomplete body", i)
		case o.status != http.StatusOK &&
			o.status != http.StatusTooManyRequests &&
			o.status != http.StatusServiceUnavailable:
			t.Errorf("request %d: unexpected status %d", i, o.status)
		}
	}
	if srv.stats.completed.Load() == 0 {
		t.Error("stress test exercised nothing: zero completed jobs")
	}
}

// TestSmokeEndToEnd runs the -smoke self-exercise, covering every
// endpoint, the /stats accounting, and the drain handshake in one go —
// once per answer-cache mode, since the exact accounting differs.
func TestSmokeEndToEnd(t *testing.T) {
	for _, on := range []bool{false, true} {
		cfg := chase.DefaultConfig()
		cfg.AnswerCache = on
		if err := runSmoke(cfg, 2, 8); err != nil {
			t.Fatalf("smoke (answer cache %v): %v", on, err)
		}
	}
}

// TestLoadHandlesSnapshot pins the resident-graph loading path over
// both on-disk formats: the same graph served from JSON and from a
// PLL-embedded binary snapshot, with /stats reporting each handle's
// provenance.
func TestLoadHandlesSnapshot(t *testing.T) {
	f := datagen.NewFig1()
	dir := t.TempDir()

	jsonPath := filepath.Join(dir, "g.json")
	var buf bytes.Buffer
	if err := f.G.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jsonPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "g.snap")
	buf.Reset()
	if err := f.G.WriteSnapshot(&buf, distindex.NewPLL(f.G).Marshal()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := chase.DefaultConfig()
	handles, err := loadHandles([]string{"j=" + jsonPath, "s=" + snapPath}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(handles) != 2 {
		t.Fatalf("got %d handles", len(handles))
	}
	for _, h := range handles {
		switch h.name {
		case "j":
			if h.source != "json" || h.snapVersion != 0 || h.pllRestored {
				t.Errorf("json handle provenance: %+v", h)
			}
		case "s":
			if h.source != "snapshot" || h.snapVersion != graph.SnapshotVersion || !h.pllRestored {
				t.Errorf("snapshot handle provenance: %+v", h)
			}
		}
		if h.g.NumNodes() != f.G.NumNodes() || h.g.NumEdges() != f.G.NumEdges() {
			t.Errorf("handle %q shape %v, want %v", h.name, h.g, f.G)
		}
	}

	srv := newServer(handles, 1, 4, 30*time.Second)
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	var stats statsResponse
	if err := smokeGet(ts.URL+"/stats", &stats); err != nil {
		t.Fatal(err)
	}
	s := stats.Graphs["s"]
	if s.Source != "snapshot" || s.SnapshotVersion != graph.SnapshotVersion || !s.PLLRestored {
		t.Errorf("/stats snapshot entry: %+v", s)
	}
	if s.Nodes != f.G.NumNodes() || s.Edges != f.G.NumEdges() || s.LoadMS < 0 {
		t.Errorf("/stats snapshot residency: %+v", s)
	}
	if j := stats.Graphs["j"]; j.Source != "json" || j.PLLRestored {
		t.Errorf("/stats json entry: %+v", j)
	}

	// Both residents answer the fixture question identically.
	for _, name := range []string{"j", "s"} {
		body := map[string]interface{}{
			"graph":    name,
			"query":    json.RawMessage(smokeQueryJSON),
			"exemplar": json.RawMessage(smokeExemplarJSON),
		}
		bb, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		var r askResponse
		if err := smokePostJSON(ts.URL+"/ask", bb, &r); err != nil {
			t.Fatalf("/ask over %q: %v", name, err)
		}
		if r.Steps < 1 || r.Rewrite == "" {
			t.Errorf("/ask over %q: empty outcome %+v", name, r)
		}
	}

	if _, err := loadHandles([]string{"bad"}, cfg); err == nil {
		t.Error("malformed -graph spec accepted")
	}
	if _, err := loadHandles([]string{"a=" + jsonPath, "a=" + snapPath}, cfg); err == nil {
		t.Error("duplicate -graph name accepted")
	}
	if _, err := loadHandles([]string{"x=" + filepath.Join(dir, "missing")}, cfg); err == nil {
		t.Error("missing graph file accepted")
	}
}
