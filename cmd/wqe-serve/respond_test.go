package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"testing"
	"time"
)

// nopResponseWriter is a sink ResponseWriter so the measurements below
// see only the encoding path, not a recorder's buffer growth.
type nopResponseWriter struct{ header http.Header }

func (w nopResponseWriter) Header() http.Header         { return w.header }
func (w nopResponseWriter) WriteHeader(int)             {}
func (w nopResponseWriter) Write(b []byte) (int, error) { return len(b), nil }

// sampleResponse is a realistic /ask body: the shape the hot path
// encodes thousands of times per second under load.
func sampleResponse() askResponse {
	return askResponse{
		Graph:     "fig1",
		Algo:      "answ",
		Rewrite:   "Q(u0) :- Cellphone(u0), Price(u0) >= 800, RAM(u0) >= 4, Carrier(u1), Sensor(u2)",
		Ops:       []string{"rlx(Price,840->800)", "rmE(u1->u0)"},
		Cost:      2.5,
		Closeness: 0.5,
		Satisfied: true,
		Matches:   []int64{3, 7, 12},
		Steps:     128,
		States:    64,
		ElapsedMS: 1.25,
	}
}

// naiveJSON is the pre-pool hot path kept as the regression baseline:
// a full Marshal allocating the output slice, plus the newline append.
func naiveJSON(v interface{}) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		return []byte(`{"error":"encode response"}`)
	}
	return append(b, '\n')
}

// respondNaive produces exactly respond's headers and body the way the
// old hot path did — Header().Set per header, Marshal per response —
// so the two closures below differ only in implementation, not output.
func respondNaive(rw http.ResponseWriter, v interface{}) {
	b := naiveJSON(v)
	rw.Header().Set("Content-Type", "application/json")
	rw.Header().Set("Content-Length", strconv.Itoa(len(b)))
	if _, err := rw.Write(b); err != nil {
		panic(err) // the sink writer cannot fail
	}
}

// TestRespondAllocsBelowNaive pins the satellite's alloc win: the
// pooled buffer+encoder path must allocate strictly less per response
// than the Marshal-per-response baseline it replaced, and the two must
// produce byte-identical bodies.
func TestRespondAllocsBelowNaive(t *testing.T) {
	s := &server{clock: time.Now}
	v := sampleResponse()

	var got bytes.Buffer
	captured := captureWriter{header: http.Header{}, buf: &got}
	s.respond(&captured, http.StatusOK, v)
	if want := naiveJSON(v); !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("pooled body differs from baseline:\n%q\nvs\n%q", got.Bytes(), want)
	}

	sink := nopResponseWriter{http.Header{}}
	// Warm the pool so the measurement sees steady state, not the first
	// Get's allocation.
	s.respond(sink, http.StatusOK, v)

	pooled := testing.AllocsPerRun(200, func() {
		s.respond(sink, http.StatusOK, v)
	})
	naive := testing.AllocsPerRun(200, func() {
		respondNaive(sink, v)
	})
	t.Logf("allocs/response: pooled=%.1f naive=%.1f", pooled, naive)
	if pooled >= naive {
		t.Errorf("pooled path allocates %.1f per response, baseline %.1f — the hot-path win regressed", pooled, naive)
	}
}

// captureWriter records the body for the byte-identity check.
type captureWriter struct {
	header http.Header
	buf    *bytes.Buffer
}

func (w *captureWriter) Header() http.Header { return w.header }
func (w *captureWriter) WriteHeader(int)     {}
func (w *captureWriter) Write(b []byte) (int, error) {
	return w.buf.Write(b)
}

// BenchmarkRespond pins the response hot path's allocation profile
// (b.ReportAllocs) for the pooled encoder against the old
// Marshal-per-response baseline.
func BenchmarkRespond(b *testing.B) {
	s := &server{clock: time.Now}
	v := sampleResponse()
	sink := nopResponseWriter{http.Header{}}

	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.respond(sink, http.StatusOK, v)
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			respondNaive(sink, v)
		}
	})
}
