package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"wqe/internal/chase"
	"wqe/internal/exemplar"
	"wqe/internal/graph"
	"wqe/internal/hist"
	"wqe/internal/query"
)

// askEndpoints are the serving endpoints whose latency /stats reports;
// the order is the stable /stats rendering order.
var askEndpoints = []string{"/ask", "/askall", "/askfast", "/why", "/whyempty", "/whymany"}

// statusClientGone is the non-standard status (nginx's 499) recorded
// when a request's client disconnected while the job waited for a
// slot. Nothing is written to the closed connection; the code only
// feeds stats.
const statusClientGone = 499

// graphHandle is one resident graph: its long-lived session (shared
// distance oracle, star-view cache, helper budget) plus the residency
// metadata /graphs and /stats report.
type graphHandle struct {
	name    string
	g       *graph.Graph
	session *chase.Session

	// Residency provenance for /stats: which on-disk format the graph
	// loaded from ("json", "snapshot", or "builtin" for fixtures), the
	// snapshot format version (0 for the others), whether the distance
	// index was restored from embedded PLL labels rather than built,
	// and the load wall time.
	source      string
	snapVersion uint32
	pllRestored bool
	loadMS      float64
}

// admission is the server's bounded job queue: maxRun execution slots
// plus a bounded waiting room. A request is admitted (or rejected with
// 429/503) in one locked step, then waits for a slot with its own
// context — so a client that gives up while queued frees its place
// without ever starting a chase, and drain can flush the whole waiting
// room at once.
type admission struct {
	slots chan struct{} // execution slots; buffered, cap = maxRun

	mu       sync.Mutex
	waiting  int  // admitted, not yet running (guarded by mu)
	running  int  // holding an execution slot (guarded by mu)
	maxQueue int  // waiting-room bound (immutable)
	draining bool // no admissions, no new job starts (guarded by mu)

	drain    chan struct{}  // closed when drain begins
	inflight sync.WaitGroup // one count per admitted request
}

func newAdmission(maxRun, maxQueue int) *admission {
	if maxRun < 1 {
		maxRun = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	a := &admission{
		slots:    make(chan struct{}, maxRun),
		maxQueue: maxQueue,
		drain:    make(chan struct{}),
	}
	for i := 0; i < maxRun; i++ {
		a.slots <- struct{}{}
	}
	return a
}

// acquire admits one request and waits for an execution slot. It
// returns a release func and HTTP status 0 on success; otherwise a nil
// release and the rejection status: 429 when the waiting room is full,
// 503 once drain began, statusClientGone when the caller's context
// ended first. The no-start-after-drain guarantee is exact: the final
// draining check happens under the same mutex beginDrain flips the flag
// under, so any job that proceeds was admitted to run strictly before
// drain began.
func (a *admission) acquire(ctx context.Context) (release func(), status int) {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return nil, http.StatusServiceUnavailable
	}
	if a.waiting >= a.maxQueue {
		a.mu.Unlock()
		return nil, http.StatusTooManyRequests
	}
	a.waiting++
	a.inflight.Add(1)
	a.mu.Unlock()

	leave := func() {
		a.mu.Lock()
		a.waiting--
		a.mu.Unlock()
		a.inflight.Done()
	}

	select {
	case <-a.slots:
	case <-ctx.Done():
		leave()
		return nil, statusClientGone
	case <-a.drain:
		leave()
		return nil, http.StatusServiceUnavailable
	}

	// Slot in hand — but drain may have begun while this request was
	// queued. Re-check under the lock so no job ever *starts* after
	// beginDrain returns ownership of the flag.
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		//lint:ignore ctxflow returning the slot token just taken into a buffered channel with guaranteed free capacity; never blocks
		a.slots <- struct{}{}
		leave()
		return nil, http.StatusServiceUnavailable
	}
	a.waiting--
	a.running++
	a.mu.Unlock()

	return func() {
		a.mu.Lock()
		a.running--
		a.mu.Unlock()
		a.slots <- struct{}{}
		a.inflight.Done()
	}, 0
}

// beginDrain stops admissions and new job starts, then waits for every
// in-flight request — running or queued — to finish or bail. When it
// returns, zero jobs are running and none can start.
func (a *admission) beginDrain() {
	a.mu.Lock()
	already := a.draining
	a.draining = true
	a.mu.Unlock()
	if !already {
		close(a.drain)
	}
	a.inflight.Wait()
}

// snapshot reads the queue gauges for /stats.
func (a *admission) snapshot() (waiting, running int, draining bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waiting, a.running, a.draining
}

// serverStats are the server-level atomic request counters (/stats).
type serverStats struct {
	admitted      atomic.Int64 // requests that got an execution slot
	completed     atomic.Int64 // jobs that ran to an HTTP response
	rejectedFull  atomic.Int64 // 429: waiting room full
	rejectedDrain atomic.Int64 // 503: drain in progress
	clientGone    atomic.Int64 // client vanished while queued
	badRequest    atomic.Int64 // malformed payloads
	jobErrors     atomic.Int64 // jobs whose chase returned an error
	writeErrs     atomic.Int64 // responses the client never received
}

// server routes Why-question requests over one or more resident graphs
// through a bounded admission queue into their sessions.
type server struct {
	graphs  map[string]*graphHandle
	names   []string // sorted graph names (stable /graphs, /stats order)
	queue   *admission
	clock   func() time.Time
	started time.Time
	// timeout is the default per-request budget when the payload sets
	// none; zero means unlimited. It anchors at submission (admission
	// into the queue), so queue wait counts against it.
	timeout time.Duration
	stats   serverStats
	// lat holds one latency histogram per serving endpoint (the
	// askEndpoints set), recording the full request wall time — queue
	// wait included, since that is what a client observes.
	lat map[string]*hist.Hist
}

func newServer(handles []*graphHandle, maxRun, maxQueue int, timeout time.Duration) *server {
	s := &server{
		graphs:  map[string]*graphHandle{},
		queue:   newAdmission(maxRun, maxQueue),
		clock:   time.Now,
		timeout: timeout,
		lat:     map[string]*hist.Hist{},
	}
	for _, ep := range askEndpoints {
		s.lat[ep] = &hist.Hist{}
	}
	s.started = s.clock()
	for _, h := range handles {
		s.graphs[h.name] = h
		s.names = append(s.names, h.name)
	}
	sort.Strings(s.names)
	return s
}

// mux builds the endpoint table. Every ask-like endpoint shares one
// handler parameterized by the algorithm override.
func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("GET /healthz", s.handleHealthz)
	m.HandleFunc("GET /graphs", s.handleGraphs)
	m.HandleFunc("GET /stats", s.handleStats)
	m.HandleFunc("POST /ask", s.timed("/ask", s.askHandler("", false)))
	m.HandleFunc("POST /askfast", s.timed("/askfast", s.askHandler("heu", false)))
	m.HandleFunc("POST /why", s.timed("/why", s.askHandler("answ", true)))
	m.HandleFunc("POST /whyempty", s.timed("/whyempty", s.askHandler("whyempty", true)))
	m.HandleFunc("POST /whymany", s.timed("/whymany", s.askHandler("whymany", true)))
	m.HandleFunc("POST /askall", s.timed("/askall", s.handleAskAll))
	return m
}

// timed wraps a serving handler to record its wall-clock latency into
// the endpoint's histogram. Every outcome counts — rejections and bad
// requests included — because the histogram reports what clients see.
func (s *server) timed(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(rw http.ResponseWriter, r *http.Request) {
		start := s.clock()
		h(rw, r)
		s.lat[endpoint].Observe(s.clock().Sub(start))
	}
}

// askRequest is the payload of every single-question endpoint. Query
// and Exemplar embed the same JSON schemas the CLI files use.
type askRequest struct {
	Graph    string          `json:"graph"`
	Query    json.RawMessage `json:"query"`
	Exemplar json.RawMessage `json:"exemplar"`
	// Algo picks the algorithm on /ask ("answ", "heu", "whymany",
	// "whyempty", "fmansw"); the dedicated endpoints override it.
	Algo string `json:"algo,omitempty"`
	Beam int    `json:"beam,omitempty"`
	// MaxSteps/TimeLimitMS override the session defaults per request.
	// The time limit is anchored at submission: waiting in the
	// admission queue spends it.
	MaxSteps    int `json:"max_steps,omitempty"`
	TimeLimitMS int `json:"time_limit_ms,omitempty"`
}

// askResponse is one answered Why-question.
type askResponse struct {
	Graph     string   `json:"graph"`
	Algo      string   `json:"algo"`
	Rewrite   string   `json:"rewrite"`
	Ops       []string `json:"ops"`
	Cost      float64  `json:"cost"`
	Closeness float64  `json:"closeness"`
	Satisfied bool     `json:"satisfied"`
	Matches   []int64  `json:"matches"`
	Steps     int      `json:"steps"`
	States    int      `json:"states"`
	ElapsedMS float64  `json:"elapsed_ms"`
	// Diff and Explanation are filled on the explaining endpoints
	// (/why, /whyempty, /whymany).
	Diff        []string `json:"diff,omitempty"`
	Explanation string   `json:"explanation,omitempty"`
}

// askHandler builds the handler for one single-question endpoint.
// forceAlgo overrides the payload's algo ("" keeps it); explain adds
// the differential table and rendered explanation to the response.
func (s *server) askHandler(forceAlgo string, explain bool) http.HandlerFunc {
	return func(rw http.ResponseWriter, r *http.Request) {
		submit := s.clock()
		var req askRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			s.badRequestf(rw, "decode request: %v", err)
			return
		}
		if forceAlgo != "" {
			req.Algo = forceAlgo
		}
		h, job, err := s.compileJob(&req, submit, r.Context().Done())
		if err != nil {
			s.badRequestf(rw, "%v", err)
			return
		}

		release, status := s.queue.acquire(r.Context())
		if status != 0 {
			s.reject(rw, status)
			return
		}
		defer release()
		s.stats.admitted.Add(1)

		res := h.session.Run(job)
		if res.Err != nil {
			s.stats.jobErrors.Add(1)
			s.writeError(rw, http.StatusUnprocessableEntity, res.Err.Error())
			return
		}
		s.stats.completed.Add(1)
		s.writeJSON(rw, answerJSON(h, &req, res, explain))
	}
}

// compileJob resolves the request's graph and parses its query and
// exemplar into a session job. cancel is the request context's done
// channel: it stops the chase mid-beam when the client disconnects.
func (s *server) compileJob(req *askRequest, submit time.Time, cancel <-chan struct{}) (*graphHandle, chase.BatchJob, error) {
	h, err := s.handleFor(req.Graph)
	if err != nil {
		return nil, chase.BatchJob{}, err
	}
	if len(req.Query) == 0 || len(req.Exemplar) == 0 {
		return nil, chase.BatchJob{}, fmt.Errorf("request needs both \"query\" and \"exemplar\"")
	}
	q, err := query.ReadJSON(bytes.NewReader(req.Query))
	if err != nil {
		return nil, chase.BatchJob{}, fmt.Errorf("parse query: %w", err)
	}
	e, err := exemplar.ReadJSON(bytes.NewReader(req.Exemplar))
	if err != nil {
		return nil, chase.BatchJob{}, fmt.Errorf("parse exemplar: %w", err)
	}
	job := chase.BatchJob{
		Q:        q,
		E:        e,
		Algo:     req.Algo,
		Beam:     req.Beam,
		MaxSteps: req.MaxSteps,
		Cancel:   cancel,
	}
	// Anchor the request budget at submission so queue wait counts.
	limit := s.timeout
	if req.TimeLimitMS > 0 {
		limit = time.Duration(req.TimeLimitMS) * time.Millisecond
	}
	if limit > 0 {
		job.Deadline = submit.Add(limit)
	}
	return h, job, nil
}

func (s *server) handleFor(name string) (*graphHandle, error) {
	if name == "" && len(s.names) == 1 {
		name = s.names[0] // single-tenant sugar: the graph is implied
	}
	h, ok := s.graphs[name]
	if !ok {
		return nil, fmt.Errorf("unknown graph %q (resident: %v)", name, s.names)
	}
	return h, nil
}

// answerJSON renders one batch result.
func answerJSON(h *graphHandle, req *askRequest, res chase.BatchResult, explain bool) askResponse {
	a := res.Answer
	out := askResponse{
		Graph:     h.name,
		Algo:      algoName(req),
		Rewrite:   a.Query.String(),
		Ops:       []string{},
		Cost:      a.Cost,
		Closeness: a.Closeness,
		Satisfied: a.Satisfied,
		Matches:   []int64{},
		Steps:     res.Steps,
		States:    res.States,
		ElapsedMS: float64(res.Elapsed) / float64(time.Millisecond),
	}
	for _, o := range a.Ops {
		out.Ops = append(out.Ops, o.String())
	}
	for _, v := range a.Matches {
		out.Matches = append(out.Matches, int64(v))
	}
	if explain {
		out.Diff = []string{}
		for _, d := range a.Diff {
			out.Diff = append(out.Diff, d.String())
		}
		out.Explanation = a.Explain(h.g)
	}
	return out
}

func algoName(req *askRequest) string {
	switch {
	case req.Algo != "":
		return req.Algo
	case req.Beam > 0:
		return "heu"
	}
	return "answ"
}

// askAllRequest is the /askall payload: one resident graph, many jobs.
type askAllRequest struct {
	Graph string `json:"graph"`
	// Workers bounds the cross-question fan-out (0 = one per CPU).
	Workers int          `json:"workers,omitempty"`
	Jobs    []askRequest `json:"jobs"`
}

type askAllResponse struct {
	Graph   string          `json:"graph"`
	Results []askAllResult  `json:"results"`
	Stats   askAllStatsJSON `json:"stats"`
}

// askAllResult is one slot of the batch outcome: the answer or the
// per-job error, in submission order.
type askAllResult struct {
	Error  string       `json:"error,omitempty"`
	Answer *askResponse `json:"answer,omitempty"`
}

type askAllStatsJSON struct {
	Jobs        int     `json:"jobs"`
	Failed      int     `json:"failed"`
	Cancelled   int     `json:"cancelled"`
	Workers     int     `json:"workers"`
	Steps       int64   `json:"steps"`
	States      int64   `json:"states"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	ElapsedMS   float64 `json:"elapsed_ms"`
}

func (s *server) handleAskAll(rw http.ResponseWriter, r *http.Request) {
	submit := s.clock()
	var req askAllRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.badRequestf(rw, "decode request: %v", err)
		return
	}
	if len(req.Jobs) == 0 {
		s.badRequestf(rw, "askall needs a non-empty \"jobs\" array")
		return
	}
	h, err := s.handleFor(req.Graph)
	if err != nil {
		s.badRequestf(rw, "%v", err)
		return
	}
	jobs := make([]chase.BatchJob, len(req.Jobs))
	for i := range req.Jobs {
		req.Jobs[i].Graph = h.name
		_, job, err := s.compileJob(&req.Jobs[i], submit, nil)
		if err != nil {
			s.badRequestf(rw, "job #%d: %v", i+1, err)
			return
		}
		jobs[i] = job
	}

	// One admission slot covers the whole batch: AskAll schedules its
	// jobs through the session's shared helper budget, so batch-inner
	// parallelism is already machine-bounded.
	release, status := s.queue.acquire(r.Context())
	if status != 0 {
		s.reject(rw, status)
		return
	}
	defer release()
	s.stats.admitted.Add(1)

	results, stats := h.session.AskAll(jobs, chase.BatchOptions{
		Workers: req.Workers,
		Cancel:  r.Context().Done(),
	})
	out := askAllResponse{
		Graph:   h.name,
		Results: make([]askAllResult, len(results)),
		Stats: askAllStatsJSON{
			Jobs:        stats.Jobs,
			Failed:      stats.Failed,
			Cancelled:   stats.Cancelled,
			Workers:     stats.Workers,
			Steps:       stats.Steps,
			States:      stats.States,
			CacheHits:   stats.CacheHits,
			CacheMisses: stats.CacheMisses,
			ElapsedMS:   float64(stats.Elapsed) / float64(time.Millisecond),
		},
	}
	for i, res := range results {
		if res.Err != nil {
			s.stats.jobErrors.Add(1)
			out.Results[i] = askAllResult{Error: res.Err.Error()}
			continue
		}
		a := answerJSON(h, &req.Jobs[i], res, false)
		out.Results[i] = askAllResult{Answer: &a}
	}
	s.stats.completed.Add(1)
	s.writeJSON(rw, out)
}

func (s *server) handleHealthz(rw http.ResponseWriter, r *http.Request) {
	s.writeJSON(rw, map[string]string{"status": "ok"})
}

// graphInfo is one /graphs row.
type graphInfo struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
}

func (s *server) handleGraphs(rw http.ResponseWriter, r *http.Request) {
	out := make([]graphInfo, 0, len(s.names))
	for _, name := range s.names {
		h := s.graphs[name]
		out = append(out, graphInfo{Name: name, Nodes: h.g.NumNodes(), Edges: h.g.NumEdges()})
	}
	s.writeJSON(rw, out)
}

// statsResponse is the /stats payload: queue gauges, request counters,
// and each resident graph's residency metadata plus its session's
// cumulative counters (questions, steps, and the star-view cache's
// full atomic set).
type statsResponse struct {
	UptimeMS float64                   `json:"uptime_ms"`
	Queue    queueStatsJSON            `json:"queue"`
	Requests requestStatsJSON          `json:"requests"`
	Graphs   map[string]graphStatsJSON `json:"graphs"`
	// Endpoints reports per-endpoint request latency (count, quantile
	// upper bounds in ms) from the same power-of-two histogram the load
	// generator uses, so server-side and client-side percentiles are
	// directly comparable.
	Endpoints map[string]endpointStatsJSON `json:"endpoints"`
}

// endpointStatsJSON is one endpoint's latency summary. The quantiles
// are upper bounds (power-of-two bucket edges) clamped to the observed
// max; see internal/hist.
type endpointStatsJSON struct {
	Count int64   `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

// endpointStats renders one histogram snapshot.
func endpointStats(h *hist.Hist) endpointStatsJSON {
	s := h.Snapshot()
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return endpointStatsJSON{
		Count: s.Count(),
		P50MS: ms(s.Quantile(0.50)),
		P95MS: ms(s.Quantile(0.95)),
		P99MS: ms(s.Quantile(0.99)),
		MaxMS: ms(s.Max()),
	}
}

// graphStatsJSON is one resident graph's /stats entry: size and load
// provenance alongside the session counters.
type graphStatsJSON struct {
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// Source is "json", "snapshot", or "builtin"; SnapshotVersion is
	// the binary format version when Source is "snapshot".
	Source          string  `json:"source"`
	SnapshotVersion uint32  `json:"snapshot_version,omitempty"`
	PLLRestored     bool    `json:"pll_restored"`
	LoadMS          float64 `json:"load_ms"`
	chase.SessionCounters
}

type queueStatsJSON struct {
	Slots    int  `json:"slots"`
	QueueCap int  `json:"queue_cap"`
	Waiting  int  `json:"waiting"`
	Running  int  `json:"running"`
	Draining bool `json:"draining"`
}

type requestStatsJSON struct {
	Admitted      int64 `json:"admitted"`
	Completed     int64 `json:"completed"`
	RejectedFull  int64 `json:"rejected_full"`
	RejectedDrain int64 `json:"rejected_drain"`
	ClientGone    int64 `json:"client_gone"`
	BadRequest    int64 `json:"bad_request"`
	JobErrors     int64 `json:"job_errors"`
	WriteErrors   int64 `json:"write_errors"`
}

func (s *server) handleStats(rw http.ResponseWriter, r *http.Request) {
	waiting, running, draining := s.queue.snapshot()
	out := statsResponse{
		UptimeMS: float64(s.clock().Sub(s.started)) / float64(time.Millisecond),
		Queue: queueStatsJSON{
			Slots:    cap(s.queue.slots),
			QueueCap: s.queue.maxQueue,
			Waiting:  waiting,
			Running:  running,
			Draining: draining,
		},
		Requests: requestStatsJSON{
			Admitted:      s.stats.admitted.Load(),
			Completed:     s.stats.completed.Load(),
			RejectedFull:  s.stats.rejectedFull.Load(),
			RejectedDrain: s.stats.rejectedDrain.Load(),
			ClientGone:    s.stats.clientGone.Load(),
			BadRequest:    s.stats.badRequest.Load(),
			JobErrors:     s.stats.jobErrors.Load(),
			WriteErrors:   s.stats.writeErrs.Load(),
		},
		Graphs:    map[string]graphStatsJSON{},
		Endpoints: map[string]endpointStatsJSON{},
	}
	for _, ep := range askEndpoints {
		out.Endpoints[ep] = endpointStats(s.lat[ep])
	}
	for _, name := range s.names {
		h := s.graphs[name]
		out.Graphs[name] = graphStatsJSON{
			Nodes:           h.g.NumNodes(),
			Edges:           h.g.NumEdges(),
			Source:          h.source,
			SnapshotVersion: h.snapVersion,
			PLLRestored:     h.pllRestored,
			LoadMS:          h.loadMS,
			SessionCounters: h.session.Counters(),
		}
	}
	s.writeJSON(rw, out)
}

// drain stops admissions and waits for every in-flight job; the
// SIGTERM path calls it before http.Server.Shutdown.
func (s *server) drain() { s.queue.beginDrain() }

// reject records and writes an admission rejection.
func (s *server) reject(rw http.ResponseWriter, status int) {
	switch status {
	case http.StatusTooManyRequests:
		s.stats.rejectedFull.Add(1)
		s.writeError(rw, status, "queue full, retry later")
	case http.StatusServiceUnavailable:
		s.stats.rejectedDrain.Add(1)
		s.writeError(rw, status, "server draining")
	case statusClientGone:
		// The client is gone; there is no one to write to.
		s.stats.clientGone.Add(1)
	}
}

func (s *server) badRequestf(rw http.ResponseWriter, format string, args ...interface{}) {
	s.stats.badRequest.Add(1)
	s.writeError(rw, http.StatusBadRequest, fmt.Sprintf(format, args...))
}

// writeError emits a JSON error envelope.
func (s *server) writeError(rw http.ResponseWriter, status int, msg string) {
	s.respond(rw, status, map[string]string{"error": msg})
}

// writeJSON emits a 200 JSON response.
func (s *server) writeJSON(rw http.ResponseWriter, v interface{}) {
	s.respond(rw, http.StatusOK, v)
}

// jsonBuf pairs a reusable buffer with an encoder bound to it, so the
// serving hot path allocates neither a marshal output slice nor an
// encoder per response.
type jsonBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonBufs = sync.Pool{New: func() interface{} {
	jb := &jsonBuf{}
	jb.enc = json.NewEncoder(&jb.buf)
	return jb
}}

// jsonContentType is the shared Content-Type header value, assigned
// directly (keys already canonical) so the hot path skips Set's
// per-response slice allocation. net/http only reads header values.
var jsonContentType = []string{"application/json"}

// respond renders v into a pooled buffer and sends it with an exact
// Content-Length. Encoder.Encode appends a trailing newline, preserving
// the body bytes of the old Marshal-plus-newline path. An encode
// failure is effectively dead code (every value the server encodes is a
// plain struct/map of encodable fields) but stays handled. A failed
// write means the client vanished mid-response, only worth counting.
func (s *server) respond(rw http.ResponseWriter, status int, v interface{}) {
	jb := jsonBufs.Get().(*jsonBuf)
	defer jsonBufs.Put(jb)
	jb.buf.Reset()
	if err := jb.enc.Encode(v); err != nil {
		jb.buf.Reset()
		jb.buf.WriteString("{\"error\":\"encode response\"}\n")
	}
	h := rw.Header()
	h["Content-Type"] = jsonContentType
	h["Content-Length"] = []string{strconv.Itoa(jb.buf.Len())}
	if status != http.StatusOK {
		rw.WriteHeader(status)
	}
	if _, err := rw.Write(jb.buf.Bytes()); err != nil {
		s.stats.writeErrs.Add(1)
	}
}
