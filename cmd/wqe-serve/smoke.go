package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"wqe/internal/chase"
	"wqe/internal/datagen"
	"wqe/internal/par"
)

// The Fig 1 cellphone fixture, inlined so -smoke runs from any
// directory: the paper's example query (cellphones ≥ $840 with ≥ 4GB
// RAM, sold by a carrier, with a sensor within 2 hops) and the exemplar
// preferring 6.2"/6.3" phones under $800.
const (
	smokeQueryJSON = `{
	 "focus": 0,
	 "nodes": [
	  {"label": "Cellphone", "literals": [
	   {"attr": "Price", "op": ">=", "value": 840},
	   {"attr": "RAM", "op": ">=", "value": 4}]},
	  {"label": "Carrier"},
	  {"label": "Sensor"}
	 ],
	 "edges": [
	  {"from": 1, "to": 0, "bound": 1},
	  {"from": 0, "to": 2, "bound": 2}
	 ]
	}`
	smokeExemplarJSON = `{
	 "tuples": [
	  {"Display": {"const": 6.2}, "Price": {"wildcard": true}, "Storage": {"var": "x1"}},
	  {"Display": {"const": 6.3}, "Price": {"var": "x3"}, "Storage": {"var": "x2"}}
	 ],
	 "constraints": [
	  {"left": "x3", "op": "<", "const": 800},
	  {"left": "x1", "op": ">", "right": "x2"}
	 ]
	}`
)

// runSmoke starts a real server on an ephemeral port, exercises every
// endpoint against the built-in Fig 1 graph, checks /stats accounting,
// then drains and shuts down cleanly. Every assertion is deterministic:
// the fixture's optimal rewrite has closeness 0.5 at budget 4, and the
// session counters are exact functions of the requests sent.
func runSmoke(cfg chase.Config, slots, queueCap int) error {
	f := datagen.NewFig1()
	cfg.Budget = 4 // the Fig 1 optimum needs the Example 3.3 budget
	handles := []*graphHandle{{name: "fig1", g: f.G, session: chase.NewSession(f.G, cfg), source: "builtin"}}
	srv := newServer(handles, par.Workers(slots), queueCap, 30*time.Second)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.mux()}
	var group par.Group
	var serveErr error
	group.Go(func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			serveErr = err
		}
	})
	base := "http://" + ln.Addr().String()
	fmt.Println("wqe-serve: smoke: listening on", base)

	smokeErr := smokeExercise(base)

	// Drain first: the listener is still up, so new admissions must now
	// be rejected with 503 — probe that before shutting the listener
	// down and joining the accept loop.
	srv.drain()
	if smokeErr == nil {
		status, _, err := smokePost(base+"/ask", smokeAskBody(""))
		switch {
		case err != nil:
			smokeErr = fmt.Errorf("post-drain probe: %w", err)
		case status != http.StatusServiceUnavailable:
			smokeErr = fmt.Errorf("post-drain /ask: got %d, want 503", status)
		default:
			fmt.Println("wqe-serve: smoke: post-drain 503 ok")
		}
	}
	if err := httpSrv.Shutdown(context.Background()); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	group.Wait()
	if smokeErr != nil {
		return smokeErr
	}
	if serveErr != nil {
		return fmt.Errorf("serve: %w", serveErr)
	}
	return nil
}

// smokeAskBody renders a single-question payload for the fixture.
func smokeAskBody(algo string) []byte {
	body := map[string]interface{}{
		"graph":    "fig1",
		"query":    json.RawMessage(smokeQueryJSON),
		"exemplar": json.RawMessage(smokeExemplarJSON),
	}
	if algo != "" {
		body["algo"] = algo
	}
	b, err := json.Marshal(body)
	if err != nil {
		// The payload is built from constants; this cannot fail.
		panic(err)
	}
	return b
}

// smokeExercise drives every endpoint once and checks the outcomes.
func smokeExercise(base string) error {
	// Liveness and residency.
	var health map[string]string
	if err := smokeGet(base+"/healthz", &health); err != nil {
		return err
	}
	if health["status"] != "ok" {
		return fmt.Errorf("/healthz: %v", health)
	}
	var graphs []graphInfo
	if err := smokeGet(base+"/graphs", &graphs); err != nil {
		return err
	}
	if len(graphs) != 1 || graphs[0].Name != "fig1" || graphs[0].Nodes == 0 {
		return fmt.Errorf("/graphs: %+v", graphs)
	}
	fmt.Printf("wqe-serve: smoke: /graphs ok (%s: %d nodes, %d edges)\n",
		graphs[0].Name, graphs[0].Nodes, graphs[0].Edges)

	// The exact search finds the paper's optimal rewrite.
	var ask askResponse
	if err := smokePostJSON(base+"/ask", smokeAskBody(""), &ask); err != nil {
		return fmt.Errorf("/ask: %w", err)
	}
	if ask.Closeness != 0.5 || !ask.Satisfied {
		return fmt.Errorf("/ask: closeness=%v satisfied=%v, want 0.5/true", ask.Closeness, ask.Satisfied)
	}
	fmt.Printf("wqe-serve: smoke: /ask ok (cl=%.2f, %d steps)\n", ask.Closeness, ask.Steps)

	// Each remaining algorithm endpoint answers and reports effort.
	for _, ep := range []string{"/askfast", "/why", "/whyempty", "/whymany"} {
		var r askResponse
		if err := smokePostJSON(base+ep, smokeAskBody(""), &r); err != nil {
			return fmt.Errorf("%s: %w", ep, err)
		}
		if r.Steps < 1 || r.Rewrite == "" {
			return fmt.Errorf("%s: empty outcome %+v", ep, r)
		}
		fmt.Printf("wqe-serve: smoke: %s ok (cl=%.2f)\n", ep, r.Closeness)
	}
	// /why must carry the explanation payload.
	var why askResponse
	if err := smokePostJSON(base+"/why", smokeAskBody(""), &why); err != nil {
		return err
	}
	if why.Explanation == "" || len(why.Diff) == 0 {
		return fmt.Errorf("/why: missing explanation/diff")
	}

	// Batch: three jobs over the shared session, answers in order.
	batch := map[string]interface{}{
		"graph": "fig1",
		"jobs": []interface{}{
			json.RawMessage(smokeAskBody("")),
			json.RawMessage(smokeAskBody("heu")),
			json.RawMessage(smokeAskBody("whymany")),
		},
	}
	bb, err := json.Marshal(batch)
	if err != nil {
		panic(err) // constants in, cannot fail
	}
	var all askAllResponse
	if err := smokePostJSON(base+"/askall", bb, &all); err != nil {
		return fmt.Errorf("/askall: %w", err)
	}
	if all.Stats.Jobs != 3 || all.Stats.Failed != 0 || len(all.Results) != 3 {
		return fmt.Errorf("/askall stats: %+v", all.Stats)
	}
	if all.Results[0].Answer == nil || all.Results[0].Answer.Closeness != 0.5 {
		return fmt.Errorf("/askall job 1: %+v", all.Results[0])
	}
	fmt.Printf("wqe-serve: smoke: /askall ok (%d jobs, %d steps)\n", all.Stats.Jobs, all.Stats.Steps)

	// Malformed payloads and unknown graphs are 400s, not crashes.
	if status, _, err := smokePost(base+"/ask", []byte(`{"graph":"nope"}`)); err != nil || status != http.StatusBadRequest {
		return fmt.Errorf("unknown graph: status=%d err=%v, want 400", status, err)
	}
	if status, _, err := smokePost(base+"/ask", []byte(`not json`)); err != nil || status != http.StatusBadRequest {
		return fmt.Errorf("bad payload: status=%d err=%v, want 400", status, err)
	}

	// /stats accounting: 6 single questions + 3 batch jobs ran, the
	// shared cache served repeats, and nothing was rejected.
	var stats statsResponse
	if err := smokeGet(base+"/stats", &stats); err != nil {
		return err
	}
	sc := stats.Graphs["fig1"]
	if sc.Nodes != graphs[0].Nodes || sc.Edges != graphs[0].Edges {
		return fmt.Errorf("/stats residency size %d/%d, want %d/%d",
			sc.Nodes, sc.Edges, graphs[0].Nodes, graphs[0].Edges)
	}
	if sc.Source != "builtin" || sc.SnapshotVersion != 0 || sc.PLLRestored {
		return fmt.Errorf("/stats residency provenance: %+v", sc)
	}
	if sc.Questions != 9 {
		return fmt.Errorf("/stats questions = %d, want 9", sc.Questions)
	}
	if sc.Steps < 9 {
		return fmt.Errorf("/stats steps = %d, want ≥ 9", sc.Steps)
	}
	if sc.Cache.Hits == 0 || sc.Cache.Size == 0 {
		return fmt.Errorf("/stats cache counters flat: %+v", sc.Cache)
	}
	if stats.Requests.BadRequest != 2 || stats.Requests.RejectedFull != 0 {
		return fmt.Errorf("/stats requests: %+v", stats.Requests)
	}
	fmt.Printf("wqe-serve: smoke: /stats ok (%d questions, %d steps, cache %d/%d hit/miss, %d evictions)\n",
		sc.Questions, sc.Steps, sc.Cache.Hits, sc.Cache.Misses, sc.Cache.Evictions)
	return nil
}

// smokeGet fetches a JSON endpoint into out.
func smokeGet(url string, out interface{}) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// smokePost posts a JSON body and returns status and response bytes.
func smokePost(url string, body []byte) (int, []byte, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, b, nil
}

// smokePostJSON posts and decodes a 200 JSON response into out.
func smokePostJSON(url string, body []byte, out interface{}) error {
	status, b, err := smokePost(url, body)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("POST %s: status %d: %s", url, status, bytes.TrimSpace(b))
	}
	return json.Unmarshal(b, out)
}
