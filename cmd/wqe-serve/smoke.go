package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"wqe/internal/chase"
	"wqe/internal/datagen"
	"wqe/internal/loadgen"
	"wqe/internal/par"
)

// The Fig 1 cellphone fixture, shared with wqe-loadgen and the serving
// benchmark so every serving-path tool exercises the same question.
const (
	smokeQueryJSON    = loadgen.Fig1QueryJSON
	smokeExemplarJSON = loadgen.Fig1ExemplarJSON
)

// runSmoke starts a real server on an ephemeral port, exercises every
// endpoint against the built-in Fig 1 graph, checks /stats accounting,
// then drains and shuts down cleanly. Every assertion is deterministic:
// the fixture's optimal rewrite has closeness 0.5 at budget 4, and the
// session counters are exact functions of the requests sent.
func runSmoke(cfg chase.Config, slots, queueCap int) error {
	f := datagen.NewFig1()
	cfg.Budget = 4 // the Fig 1 optimum needs the Example 3.3 budget
	handles := []*graphHandle{{name: "fig1", g: f.G, session: chase.NewSession(f.G, cfg), source: "builtin"}}
	srv := newServer(handles, par.Workers(slots), queueCap, 30*time.Second)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.mux()}
	var group par.Group
	var serveErr error
	group.Go(func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			serveErr = err
		}
	})
	base := "http://" + ln.Addr().String()
	fmt.Println("wqe-serve: smoke: listening on", base)

	smokeErr := smokeExercise(base, cfg.AnswerCache)

	// Drain first: the listener is still up, so new admissions must now
	// be rejected with 503 — probe that before shutting the listener
	// down and joining the accept loop.
	srv.drain()
	if smokeErr == nil {
		status, _, err := smokePost(base+"/ask", smokeAskBody(""))
		switch {
		case err != nil:
			smokeErr = fmt.Errorf("post-drain probe: %w", err)
		case status != http.StatusServiceUnavailable:
			smokeErr = fmt.Errorf("post-drain /ask: got %d, want 503", status)
		default:
			fmt.Println("wqe-serve: smoke: post-drain 503 ok")
		}
	}
	if err := httpSrv.Shutdown(context.Background()); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	group.Wait()
	if smokeErr != nil {
		return smokeErr
	}
	if serveErr != nil {
		return fmt.Errorf("serve: %w", serveErr)
	}
	return nil
}

// smokeAskBody renders a single-question payload for the fixture.
func smokeAskBody(algo string) []byte {
	body := map[string]interface{}{
		"graph":    "fig1",
		"query":    json.RawMessage(smokeQueryJSON),
		"exemplar": json.RawMessage(smokeExemplarJSON),
	}
	if algo != "" {
		body["algo"] = algo
	}
	b, err := json.Marshal(body)
	if err != nil {
		// The payload is built from constants; this cannot fail.
		panic(err)
	}
	return b
}

// smokeExercise drives every endpoint once and checks the outcomes.
// answerCache says whether the session memoizes answers, which changes
// the exact /stats accounting: the 9 memo-eligible jobs collapse onto 4
// distinct chases when it is on.
func smokeExercise(base string, answerCache bool) error {
	// Liveness and residency.
	var health map[string]string
	if err := smokeGet(base+"/healthz", &health); err != nil {
		return err
	}
	if health["status"] != "ok" {
		return fmt.Errorf("/healthz: %v", health)
	}
	var graphs []graphInfo
	if err := smokeGet(base+"/graphs", &graphs); err != nil {
		return err
	}
	if len(graphs) != 1 || graphs[0].Name != "fig1" || graphs[0].Nodes == 0 {
		return fmt.Errorf("/graphs: %+v", graphs)
	}
	fmt.Printf("wqe-serve: smoke: /graphs ok (%s: %d nodes, %d edges)\n",
		graphs[0].Name, graphs[0].Nodes, graphs[0].Edges)

	// The exact search finds the paper's optimal rewrite.
	var ask askResponse
	if err := smokePostJSON(base+"/ask", smokeAskBody(""), &ask); err != nil {
		return fmt.Errorf("/ask: %w", err)
	}
	if ask.Closeness != 0.5 || !ask.Satisfied {
		return fmt.Errorf("/ask: closeness=%v satisfied=%v, want 0.5/true", ask.Closeness, ask.Satisfied)
	}
	fmt.Printf("wqe-serve: smoke: /ask ok (cl=%.2f, %d steps)\n", ask.Closeness, ask.Steps)

	// Each remaining algorithm endpoint answers and reports effort.
	for _, ep := range []string{"/askfast", "/why", "/whyempty", "/whymany"} {
		var r askResponse
		if err := smokePostJSON(base+ep, smokeAskBody(""), &r); err != nil {
			return fmt.Errorf("%s: %w", ep, err)
		}
		if r.Steps < 1 || r.Rewrite == "" {
			return fmt.Errorf("%s: empty outcome %+v", ep, r)
		}
		fmt.Printf("wqe-serve: smoke: %s ok (cl=%.2f)\n", ep, r.Closeness)
	}
	// /why must carry the explanation payload.
	var why askResponse
	if err := smokePostJSON(base+"/why", smokeAskBody(""), &why); err != nil {
		return err
	}
	if why.Explanation == "" || len(why.Diff) == 0 {
		return fmt.Errorf("/why: missing explanation/diff")
	}

	// Batch: three jobs over the shared session, answers in order.
	batch := map[string]interface{}{
		"graph": "fig1",
		"jobs": []interface{}{
			json.RawMessage(smokeAskBody("")),
			json.RawMessage(smokeAskBody("heu")),
			json.RawMessage(smokeAskBody("whymany")),
		},
	}
	bb, err := json.Marshal(batch)
	if err != nil {
		panic(err) // constants in, cannot fail
	}
	var all askAllResponse
	if err := smokePostJSON(base+"/askall", bb, &all); err != nil {
		return fmt.Errorf("/askall: %w", err)
	}
	if all.Stats.Jobs != 3 || all.Stats.Failed != 0 || len(all.Results) != 3 {
		return fmt.Errorf("/askall stats: %+v", all.Stats)
	}
	if all.Results[0].Answer == nil || all.Results[0].Answer.Closeness != 0.5 {
		return fmt.Errorf("/askall job 1: %+v", all.Results[0])
	}
	fmt.Printf("wqe-serve: smoke: /askall ok (%d jobs, %d steps)\n", all.Stats.Jobs, all.Stats.Steps)

	// Malformed payloads and unknown graphs are 400s, not crashes.
	if status, _, err := smokePost(base+"/ask", []byte(`{"graph":"nope"}`)); err != nil || status != http.StatusBadRequest {
		return fmt.Errorf("unknown graph: status=%d err=%v, want 400", status, err)
	}
	if status, _, err := smokePost(base+"/ask", []byte(`not json`)); err != nil || status != http.StatusBadRequest {
		return fmt.Errorf("bad payload: status=%d err=%v, want 400", status, err)
	}

	// /stats accounting: 6 single questions + 3 batch jobs ran, the
	// shared cache served repeats, and nothing was rejected.
	var stats statsResponse
	if err := smokeGet(base+"/stats", &stats); err != nil {
		return err
	}
	sc := stats.Graphs["fig1"]
	if sc.Nodes != graphs[0].Nodes || sc.Edges != graphs[0].Edges {
		return fmt.Errorf("/stats residency size %d/%d, want %d/%d",
			sc.Nodes, sc.Edges, graphs[0].Nodes, graphs[0].Edges)
	}
	if sc.Source != "builtin" || sc.SnapshotVersion != 0 || sc.PLLRestored {
		return fmt.Errorf("/stats residency provenance: %+v", sc)
	}
	// 9 memo-eligible jobs were served (6 single questions + 3 batch
	// jobs). With the answer memo on they collapse onto 4 distinct
	// chases (ask/why/askall-answ share one key, askfast/askall-heu
	// another) and the memo counters must balance exactly; off, every
	// job chases and the memo counters stay flat.
	ac := sc.AnswerCache
	const memoJobs = 9
	if answerCache {
		if sc.Questions != 4 {
			return fmt.Errorf("/stats questions = %d, want 4 distinct chases with the answer cache on", sc.Questions)
		}
		if ac.Hits+ac.Misses+ac.Coalesced != memoJobs {
			return fmt.Errorf("answer cache hits+misses+coalesced = %d+%d+%d, want %d jobs served",
				ac.Hits, ac.Misses, ac.Coalesced, memoJobs)
		}
		if ac.Misses != 4 || ac.Hits != 5 || ac.Coalesced != 0 || ac.Size != 4 {
			return fmt.Errorf("answer cache counters: %+v, want 4 misses / 5 hits / 4 resident", ac)
		}
	} else {
		if sc.Questions != memoJobs {
			return fmt.Errorf("/stats questions = %d, want %d", sc.Questions, memoJobs)
		}
		if ac.Hits != 0 || ac.Misses != 0 || ac.Coalesced != 0 || ac.Size != 0 {
			return fmt.Errorf("answer cache counters with memo off: %+v, want all zero", ac)
		}
	}
	if sc.Steps < int64(sc.Questions) {
		return fmt.Errorf("/stats steps = %d, want ≥ %d", sc.Steps, sc.Questions)
	}
	if sc.Cache.Hits == 0 || sc.Cache.Size == 0 {
		return fmt.Errorf("/stats cache counters flat: %+v", sc.Cache)
	}
	if stats.Requests.BadRequest != 2 || stats.Requests.RejectedFull != 0 {
		return fmt.Errorf("/stats requests: %+v", stats.Requests)
	}

	// Per-endpoint latency histograms: every serving endpoint reports
	// the exact request count it saw (the two 400s count on /ask — a
	// rejection is still latency a client observed) with ordered,
	// max-clamped quantiles.
	wantCounts := map[string]int64{
		"/ask": 3, "/askfast": 1, "/why": 2, "/whyempty": 1, "/whymany": 1, "/askall": 1,
	}
	for _, ep := range askEndpoints {
		e, ok := stats.Endpoints[ep]
		if !ok {
			return fmt.Errorf("/stats endpoints missing %s: %+v", ep, stats.Endpoints)
		}
		if e.Count != wantCounts[ep] {
			return fmt.Errorf("/stats %s count = %d, want %d", ep, e.Count, wantCounts[ep])
		}
		if e.P50MS <= 0 || e.P50MS > e.P95MS || e.P95MS > e.P99MS || e.P99MS > e.MaxMS {
			return fmt.Errorf("/stats %s quantiles out of order: %+v", ep, e)
		}
	}

	fmt.Printf("wqe-serve: smoke: /stats ok (%d questions, %d steps, star cache %d/%d hit/miss, answer cache %d/%d/%d hit/miss/coalesced)\n",
		sc.Questions, sc.Steps, sc.Cache.Hits, sc.Cache.Misses, ac.Hits, ac.Misses, ac.Coalesced)
	return nil
}

// smokeGet fetches a JSON endpoint into out.
func smokeGet(url string, out interface{}) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// smokePost posts a JSON body and returns status and response bytes.
func smokePost(url string, body []byte) (int, []byte, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, b, nil
}

// smokePostJSON posts and decodes a 200 JSON response into out.
func smokePostJSON(url string, body []byte, out interface{}) error {
	status, b, err := smokePost(url, body)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("POST %s: status %d: %s", url, status, bytes.TrimSpace(b))
	}
	return json.Unmarshal(b, out)
}
