package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"wqe/internal/datagen"
)

// TestRunDemo drives the CLI's full pipeline on the built-in example.
func TestRunDemo(t *testing.T) {
	for _, algo := range []string{"answ", "topk", "heu", "whymany", "whyempty", "fmansw"} {
		if err := run("", "", "", algo, 2, 2, 4, 1, 1, 3, 0, true, ""); err != nil {
			t.Errorf("run(-demo, -algo %s): %v", algo, err)
		}
	}
	if err := run("", "", "", "bogus", 2, 2, 4, 1, 1, 3, 0, true, ""); err == nil {
		t.Error("unknown algorithm must error")
	}
	if err := run("", "", "", "answ", 2, 2, 4, 1, 1, 3, 0, false, ""); err == nil {
		t.Error("missing file flags must error")
	}
}

// TestRunFromFiles exercises the JSON loading path end to end.
func TestRunFromFiles(t *testing.T) {
	dir := t.TempDir()
	f := datagen.NewFig1()

	gPath := filepath.Join(dir, "g.json")
	gf, err := os.Create(gPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.G.WriteJSON(gf); err != nil {
		t.Fatal(err)
	}
	gf.Close()

	qPath := filepath.Join(dir, "q.json")
	qf, _ := os.Create(qPath)
	if err := f.Q.WriteJSON(qf); err != nil {
		t.Fatal(err)
	}
	qf.Close()

	ePath := filepath.Join(dir, "e.json")
	ef, _ := os.Create(ePath)
	if err := f.E.WriteJSON(ef); err != nil {
		t.Fatal(err)
	}
	ef.Close()

	if err := run(gPath, qPath, ePath, "answ", 2, 2, 4, 1, 1, 3, 2, false, ""); err != nil {
		t.Fatalf("run from files: %v", err)
	}
	if err := run(filepath.Join(dir, "missing.json"), qPath, ePath, "answ", 2, 2, 4, 1, 1, 3, 0, false, ""); err == nil {
		t.Error("missing graph file must error")
	}
}

// TestRunSnapshotRoundTrip converts the JSON graph to a binary
// snapshot (-save-snapshot alone), then answers the same question from
// the snapshot — the sniffing loader must accept both formats.
func TestRunSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	f := datagen.NewFig1()

	write := func(name string, emit func(io.Writer) error) string {
		t.Helper()
		p := filepath.Join(dir, name)
		fh, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := emit(fh); err != nil {
			t.Fatal(err)
		}
		if err := fh.Close(); err != nil {
			t.Fatal(err)
		}
		return p
	}
	gPath := write("g.json", f.G.WriteJSON)
	qPath := write("q.json", f.Q.WriteJSON)
	ePath := write("e.json", f.E.WriteJSON)

	snapPath := filepath.Join(dir, "g.snap")
	if err := run(gPath, "", "", "answ", 2, 2, 4, 1, 1, 3, 0, false, snapPath); err != nil {
		t.Fatalf("conversion run: %v", err)
	}
	if fi, err := os.Stat(snapPath); err != nil || fi.Size() == 0 {
		t.Fatalf("snapshot not written: %v", err)
	}
	if err := run(snapPath, qPath, ePath, "answ", 2, 2, 4, 1, 1, 3, 0, false, ""); err != nil {
		t.Fatalf("run from snapshot: %v", err)
	}
	// Snapshot-in, snapshot-out while answering in the same run.
	again := filepath.Join(dir, "g2.snap")
	if err := run(snapPath, qPath, ePath, "answ", 2, 2, 4, 1, 1, 3, 0, false, again); err != nil {
		t.Fatalf("answer+save run: %v", err)
	}
	a, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(again)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("snapshot → snapshot conversion not byte-identical")
	}
}

// TestRunBatch exercises the batch mode end to end: a jobs file with
// relative paths, mixed algorithms, per-job overrides, and a failing
// job that must not disturb the others.
func TestRunBatch(t *testing.T) {
	dir := t.TempDir()
	f := datagen.NewFig1()

	write := func(name string, emit func(io.Writer) error) string {
		t.Helper()
		p := filepath.Join(dir, name)
		fh, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := emit(fh); err != nil {
			t.Fatal(err)
		}
		if err := fh.Close(); err != nil {
			t.Fatal(err)
		}
		return p
	}
	gPath := write("g.json", f.G.WriteJSON)
	write("q.json", f.Q.WriteJSON)
	write("e.json", f.E.WriteJSON)

	jobs := write("jobs.json", func(fh io.Writer) error {
		_, err := io.WriteString(fh, `[
			{"query": "q.json", "exemplar": "e.json"},
			{"query": "q.json", "exemplar": "e.json", "beam": 2},
			{"query": "q.json", "exemplar": "e.json", "max_steps": 5, "time_limit_ms": 50}
		]`)
		return err
	})
	if err := runBatch(gPath, jobs, 2, 4, 4, 1, 1, 3); err != nil {
		t.Fatalf("runBatch: %v", err)
	}

	if err := runBatch("", jobs, 0, 0, 4, 1, 1, 3); err == nil {
		t.Error("batch without -graph must error")
	}
	if err := runBatch(gPath, filepath.Join(dir, "missing.json"), 0, 0, 4, 1, 1, 3); err == nil {
		t.Error("missing jobs file must error")
	}

	empty := write("empty.json", func(fh io.Writer) error {
		_, err := io.WriteString(fh, `[]`)
		return err
	})
	if err := runBatch(gPath, empty, 0, 0, 4, 1, 1, 3); err == nil {
		t.Error("empty jobs file must error")
	}

	badRef := write("badref.json", func(fh io.Writer) error {
		_, err := io.WriteString(fh, `[{"query": "nope.json", "exemplar": "e.json"}]`)
		return err
	})
	if err := runBatch(gPath, badRef, 0, 0, 4, 1, 1, 3); err == nil {
		t.Error("jobs referencing a missing query file must error")
	}
}
