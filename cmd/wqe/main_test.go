package main

import (
	"os"
	"path/filepath"
	"testing"

	"wqe/internal/datagen"
)

// TestRunDemo drives the CLI's full pipeline on the built-in example.
func TestRunDemo(t *testing.T) {
	for _, algo := range []string{"answ", "topk", "heu", "whymany", "whyempty", "fmansw"} {
		if err := run("", "", "", algo, 2, 2, 4, 1, 1, 3, true); err != nil {
			t.Errorf("run(-demo, -algo %s): %v", algo, err)
		}
	}
	if err := run("", "", "", "bogus", 2, 2, 4, 1, 1, 3, true); err == nil {
		t.Error("unknown algorithm must error")
	}
	if err := run("", "", "", "answ", 2, 2, 4, 1, 1, 3, false); err == nil {
		t.Error("missing file flags must error")
	}
}

// TestRunFromFiles exercises the JSON loading path end to end.
func TestRunFromFiles(t *testing.T) {
	dir := t.TempDir()
	f := datagen.NewFig1()

	gPath := filepath.Join(dir, "g.json")
	gf, err := os.Create(gPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.G.WriteJSON(gf); err != nil {
		t.Fatal(err)
	}
	gf.Close()

	qPath := filepath.Join(dir, "q.json")
	qf, _ := os.Create(qPath)
	if err := f.Q.WriteJSON(qf); err != nil {
		t.Fatal(err)
	}
	qf.Close()

	ePath := filepath.Join(dir, "e.json")
	ef, _ := os.Create(ePath)
	if err := f.E.WriteJSON(ef); err != nil {
		t.Fatal(err)
	}
	ef.Close()

	if err := run(gPath, qPath, ePath, "answ", 2, 2, 4, 1, 1, 3, false); err != nil {
		t.Fatalf("run from files: %v", err)
	}
	if err := run(filepath.Join(dir, "missing.json"), qPath, ePath, "answ", 2, 2, 4, 1, 1, 3, false); err == nil {
		t.Error("missing graph file must error")
	}
}
