package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"wqe/internal/chase"
	"wqe/internal/graphload"
)

// batchJobSpec is one entry of the -batch jobs file: paths to the
// question's query and exemplar, plus optional per-job overrides.
type batchJobSpec struct {
	Query    string `json:"query"`    // query JSON path
	Exemplar string `json:"exemplar"` // exemplar JSON path

	// Beam selects the algorithm: 0 = exact AnsW, >0 = AnsHeu with that
	// beam width.
	Beam int `json:"beam,omitempty"`
	// MaxSteps, when positive, overrides the session step budget for
	// this job.
	MaxSteps int `json:"max_steps,omitempty"`
	// TimeLimitMS, when positive, is this job's anytime deadline in
	// milliseconds.
	TimeLimitMS int `json:"time_limit_ms,omitempty"`
}

// loadBatchSpecs reads a -batch jobs file: a JSON array of job specs.
// Relative query/exemplar paths resolve against the jobs file's
// directory, so a jobs file can travel with its inputs.
func loadBatchSpecs(path string) ([]batchJobSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var specs []batchJobSpec
	if err := json.Unmarshal(data, &specs); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("%s: no jobs", path)
	}
	dir := filepath.Dir(path)
	for i := range specs {
		if specs[i].Query == "" || specs[i].Exemplar == "" {
			return nil, fmt.Errorf("%s: job #%d needs both \"query\" and \"exemplar\"", path, i+1)
		}
		if !filepath.IsAbs(specs[i].Query) {
			specs[i].Query = filepath.Join(dir, specs[i].Query)
		}
		if !filepath.IsAbs(specs[i].Exemplar) {
			specs[i].Exemplar = filepath.Join(dir, specs[i].Exemplar)
		}
	}
	return specs, nil
}

// runBatch answers every job in the jobs file concurrently over one
// shared session (graph, star-view cache, distance oracle) and prints
// the results in submission order followed by the aggregate statistics.
func runBatch(graphPath, batchPath string, workers, cacheShards int,
	budget, theta, lambda float64, maxBound int) error {

	if graphPath == "" {
		return fmt.Errorf("-batch needs -graph")
	}
	res, err := graphload.Open(graphPath)
	if err != nil {
		return err
	}
	g := res.G
	if res.PLLRestored() {
		fmt.Fprintln(os.Stderr, "wqe: restored PLL distance index from snapshot")
	}
	specs, err := loadBatchSpecs(batchPath)
	if err != nil {
		return err
	}

	cfg := chase.DefaultConfig()
	cfg.Budget = budget
	cfg.Theta = theta
	cfg.Lambda = lambda
	cfg.MaxBound = maxBound
	cfg.Cache = true
	cfg.CacheShards = cacheShards
	sess := chase.NewSessionWithIndex(g, cfg, res.Index)

	jobs := make([]chase.BatchJob, len(specs))
	for i, sp := range specs {
		q, err := loadQuery(sp.Query)
		if err != nil {
			return fmt.Errorf("job #%d: %w", i+1, err)
		}
		e, err := loadExemplar(sp.Exemplar)
		if err != nil {
			return fmt.Errorf("job #%d: %w", i+1, err)
		}
		jobs[i] = chase.BatchJob{
			Q: q, E: e,
			Beam:      sp.Beam,
			MaxSteps:  sp.MaxSteps,
			TimeLimit: time.Duration(sp.TimeLimitMS) * time.Millisecond,
		}
	}

	fmt.Println("graph:", g)
	fmt.Printf("batch: %d jobs over shared session\n\n", len(jobs))
	results, stats := sess.AskAll(jobs, chase.BatchOptions{Workers: workers})
	for i, r := range results {
		fmt.Printf("— job #%d (%s) —\n", i+1, filepath.Base(specs[i].Query))
		if r.Err != nil {
			fmt.Println("error:", r.Err)
			fmt.Println()
			continue
		}
		printAnswer(g, r.Answer)
		fmt.Printf("job search: %d chase steps, %d states\n\n", r.Steps, r.States)
	}
	printBatchStats(stats)
	return nil
}

func printBatchStats(st chase.BatchStats) {
	fmt.Printf("batch: %d jobs (%d failed), %d workers, %d total chase steps, %v elapsed\n",
		st.Jobs, st.Failed, st.Workers, st.Steps, st.Elapsed.Round(time.Microsecond))
	if st.CacheHits+st.CacheMisses > 0 {
		fmt.Printf("star-view cache: %d hits, %d misses (%.1f%% hit rate)\n",
			st.CacheHits, st.CacheMisses,
			100*float64(st.CacheHits)/float64(st.CacheHits+st.CacheMisses))
	}
}
