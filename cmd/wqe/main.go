// Command wqe answers a Why-question over an attributed graph: given a
// graph (JSON), a pattern query (JSON), and an exemplar (JSON), it
// computes a budgeted query rewrite whose answers are closest to the
// exemplar and prints the rewrite, its answers, and the differential
// table explaining every change.
//
//	wqe -graph g.json -query q.json -exemplar e.json -algo answ -budget 3
//	wqe -graph g.json -batch jobs.json -workers 4   # batch of questions
//	wqe -demo          # run the paper's Fig 1 cellphone example
//	wqe -graph g.json -save-snapshot g.snap         # convert to binary snapshot
//
// -graph accepts either on-disk format — graph JSON or the binary
// snapshot written by -save-snapshot / wqe-datagen -snapshot — sniffed
// from the file's leading bytes. A snapshot with embedded PLL labels
// also restores the distance index, skipping its construction.
//
// Algorithms: answ (exact anytime), topk, heu (beam search), whymany,
// whyempty, fmansw (baseline).
//
// Batch mode answers many Why-questions concurrently over one shared
// graph, star-view cache, and distance index. The jobs file is a JSON
// array of {"query": path, "exemplar": path} objects, each optionally
// carrying "beam", "max_steps", and "time_limit_ms" overrides; results
// print in submission order and are identical to running the jobs one
// at a time.
package main

import (
	"flag"
	"fmt"
	"os"

	"wqe/internal/chase"
	"wqe/internal/datagen"
	"wqe/internal/distindex"
	"wqe/internal/exemplar"
	"wqe/internal/graph"
	"wqe/internal/graphload"
	"wqe/internal/query"
)

func main() {
	var (
		graphPath    = flag.String("graph", "", "graph JSON file")
		queryPath    = flag.String("query", "", "pattern query JSON file")
		exemplarPath = flag.String("exemplar", "", "exemplar JSON file")
		algo         = flag.String("algo", "answ", "answ | topk | heu | whymany | whyempty | fmansw")
		k            = flag.Int("k", 3, "rewrites to return for -algo topk")
		beam         = flag.Int("beam", 3, "beam width for -algo heu")
		budget       = flag.Float64("budget", 3, "operator cost budget B")
		theta        = flag.Float64("theta", 1, "vsim closeness threshold θ")
		lambda       = flag.Float64("lambda", 1, "irrelevant-match penalty λ")
		maxBound     = flag.Int("maxbound", 3, "edge bound cap b_m")
		demo         = flag.Bool("demo", false, "run the built-in Fig 1 example")
		batchPath    = flag.String("batch", "", "jobs JSON file: answer a batch of Why-questions over one shared session")
		workers      = flag.Int("workers", 0, "batch worker count (0 = one per logical CPU)")
		cacheShards  = flag.Int("cache-shards", 0, "star-view cache lock stripes (0 = auto, 1 = unsharded; rounded up to a power of two)")
		saveSnapshot = flag.String("save-snapshot", "",
			"write the loaded -graph as a binary snapshot to this path (alone with -graph: convert and exit)")
	)
	flag.Parse()

	var err error
	if *batchPath != "" {
		if *saveSnapshot != "" {
			err = fmt.Errorf("-save-snapshot does not combine with -batch")
		} else {
			err = runBatch(*graphPath, *batchPath, *workers, *cacheShards,
				*budget, *theta, *lambda, *maxBound)
		}
	} else {
		err = run(*graphPath, *queryPath, *exemplarPath, *algo, *k, *beam,
			*budget, *theta, *lambda, *maxBound, *cacheShards, *demo, *saveSnapshot)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wqe:", err)
		os.Exit(1)
	}
}

func run(graphPath, queryPath, exemplarPath, algo string, k, beam int,
	budget, theta, lambda float64, maxBound, cacheShards int, demo bool,
	saveSnapshot string) error {

	var (
		g   *graph.Graph
		q   *query.Query
		e   *exemplar.Exemplar
		idx distindex.Index
	)
	if demo {
		f := datagen.NewFig1()
		g, q, e = f.G, f.Q, f.E
		if budget == 3 {
			budget = 4 // the Fig 1 optimum needs the Example 3.3 budget
		}
	} else {
		if graphPath == "" {
			return fmt.Errorf("need -graph, -query, and -exemplar (or -demo)")
		}
		res, err := graphload.Open(graphPath)
		if err != nil {
			return err
		}
		g, idx = res.G, res.Index
		if res.PLLRestored() {
			fmt.Fprintln(os.Stderr, "wqe: restored PLL distance index from snapshot")
		}
		if saveSnapshot != "" {
			if err := writeSnapshotFile(saveSnapshot, res); err != nil {
				return err
			}
			fmt.Fprintln(os.Stderr, "wqe: wrote snapshot", saveSnapshot)
			if queryPath == "" && exemplarPath == "" {
				return nil // conversion-only run
			}
		}
		if queryPath == "" || exemplarPath == "" {
			return fmt.Errorf("need -graph, -query, and -exemplar (or -demo)")
		}
		if q, err = loadQuery(queryPath); err != nil {
			return err
		}
		if e, err = loadExemplar(exemplarPath); err != nil {
			return err
		}
	}

	cfg := chase.DefaultConfig()
	cfg.Budget = budget
	cfg.Theta = theta
	cfg.Lambda = lambda
	cfg.MaxBound = maxBound
	cfg.CacheShards = cacheShards
	sess := chase.NewSessionWithIndex(g, cfg, idx)
	w, err := sess.Why(q, e)
	if err != nil {
		return err
	}

	fmt.Println("graph:   ", g)
	fmt.Println("query Q: ", q)
	fmt.Println("exemplar:", e)
	root := w.Matcher.Match(q)
	rm, im, rc, ic := w.Partition(root)
	fmt.Printf("Q(G) = %s\n", nodeList(g, root.Answer))
	fmt.Printf("relevance: |RM|=%d |IM|=%d |RC|=%d |IC|=%d  cl* = %.4f\n\n",
		len(rm), len(im), len(rc), len(ic), w.ClStar)

	var answers []chase.Answer
	switch algo {
	case "answ":
		answers = []chase.Answer{w.AnsW()}
	case "topk":
		answers = w.TopK(k)
	case "heu":
		answers = []chase.Answer{w.AnsHeu(beam)}
	case "whymany":
		answers = []chase.Answer{w.ApxWhyM()}
	case "whyempty":
		answers = []chase.Answer{w.AnsWE()}
	case "fmansw":
		answers = []chase.Answer{w.FMAnsW()}
	default:
		return fmt.Errorf("unknown -algo %q", algo)
	}

	for i, a := range answers {
		if len(answers) > 1 {
			fmt.Printf("— rewrite #%d —\n", i+1)
		}
		printAnswer(g, a)
	}
	fmt.Printf("search: %d chase steps, %d states, %v elapsed\n",
		w.Stats.Steps, w.Stats.States, w.Stats.Elapsed.Round(1000))
	return nil
}

func printAnswer(g *graph.Graph, a chase.Answer) {
	fmt.Println("rewrite Q':", a.Query)
	fmt.Printf("operators (cost %.2f):\n", a.Cost)
	for _, o := range a.Ops {
		fmt.Println("  ", o)
	}
	if len(a.Ops) == 0 {
		fmt.Println("   (none)")
	}
	fmt.Printf("closeness cl(Q'(G), E) = %.4f  satisfied=%v\n", a.Closeness, a.Satisfied)
	fmt.Printf("Q'(G) = %s\n", nodeList(g, a.Matches))
	if len(a.Diff) > 0 {
		fmt.Println("differential table:")
		for _, d := range a.Diff {
			fmt.Println("  ", d)
		}
	}
	fmt.Println("explanation:")
	fmt.Print(a.Explain(g))
	fmt.Println()
}

// nodeList renders nodes with their Name attribute when present.
func nodeList(g *graph.Graph, nodes []graph.NodeID) string {
	out := "{"
	for i, v := range nodes {
		if i > 0 {
			out += ", "
		}
		if name, ok := g.Attr(v, "Name"); ok {
			out += name.String()
		} else {
			out += fmt.Sprintf("#%d(%s)", v, g.Label(v))
		}
	}
	return out + "}"
}

// writeSnapshotFile writes the loaded graph as a binary snapshot,
// carrying any restored PLL labels through so the snapshot stays as
// capable as its source.
func writeSnapshotFile(path string, res *graphload.Result) error {
	var aux []byte
	if pll, ok := res.Index.(*distindex.PLL); ok {
		aux = pll.Marshal()
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := res.G.WriteSnapshot(f, aux)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

func loadQuery(path string) (*query.Query, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return query.ReadJSON(f)
}

func loadExemplar(path string) (*exemplar.Exemplar, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return exemplar.ReadJSON(f)
}
