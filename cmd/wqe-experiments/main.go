// Command wqe-experiments regenerates the paper's evaluation tables
// and figures (§7) over the synthetic dataset analogs.
//
//	wqe-experiments                  # run everything at default scale
//	wqe-experiments -exp 1a,2i       # only Fig 10(a) and Fig 10(i)
//	wqe-experiments -scale 20000 -queries 50
//
// Experiment ids: 1a-1h (Fig 10(a)-(h), efficiency), 2i-2k (Fig
// 10(i)-(k), effectiveness), 3 (Fig 10(l), anytime), 4a-4c (Fig 12,
// Why-Many/Why-Empty), 5 (simulated user study).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"wqe/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scale   = flag.Int("scale", 12000, "approximate nodes per dataset")
		queries = flag.Int("queries", 20, "Why-questions per measurement point")
		seed    = flag.Int64("seed", 7, "workload seed")
		steps   = flag.Int("maxsteps", 4000, "chase step cap per run")
		limit   = flag.Duration("timelimit", 0, "per-run anytime time limit (0 = none)")
	)
	flag.Parse()

	opts := bench.Options{
		Scale:     *scale,
		Queries:   *queries,
		Seed:      *seed,
		MaxSteps:  *steps,
		TimeLimit: *limit,
	}
	h := bench.New(opts)

	var ids []string
	if *exp == "all" {
		for _, e := range bench.Experiments {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	fmt.Printf("wqe-experiments: scale=%d queries=%d seed=%d maxsteps=%d\n\n",
		opts.Scale, opts.Queries, opts.Seed, opts.MaxSteps)
	for _, id := range ids {
		run, ok := bench.Lookup(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "wqe-experiments: unknown experiment %q\n", id)
			os.Exit(1)
		}
		start := time.Now()
		tbl := run(h)
		tbl.Fprint(os.Stdout)
		fmt.Printf("(generated in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
}
