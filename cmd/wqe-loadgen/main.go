// Command wqe-loadgen is the closed-loop load generator for wqe-serve:
// N concurrent clients each issue one Why-question, wait for the
// answer, and immediately issue the next, so offered load adapts to
// server capacity (the FalkorDB benchmark discipline). The run reports
// achieved throughput, per-endpoint p50/p95/p99/max latency from
// power-of-two histograms, and an error breakdown by status code, as
// JSON on stdout or -out.
//
//	wqe-loadgen -url http://127.0.0.1:8080 -graph fig1 -fig1 -clients 8 -duration 10s
//	wqe-loadgen -url ... -graph g -pool pool.json -mix '{"/ask":3,"/askfast":5,"/why":1}' -rps 200
//	wqe-loadgen -url ... -graph g -fig1 -mix @mix.json -seed 7 -out report.json
//
// The query mix is a JSON object of endpoint-to-ratio weights (inline
// or @file); endpoints are sampled per request through a seeded CDF, so
// a run is reproducible per -seed. The payload pool (-pool) is a JSON
// array of {"query":..., "exemplar":...} objects sampled uniformly;
// -fig1 uses the built-in Fig 1 fixture instead. A -warmup window is
// exercised but excluded from the report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"wqe/internal/loadgen"
)

// defaultMix mirrors an interactive exploration session: mostly fast
// asks, some exact asks, occasional explanation queries.
const defaultMix = `{"/ask": 3, "/askfast": 5, "/why": 1, "/whyempty": 0.5, "/whymany": 0.5}`

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("wqe-loadgen", flag.ContinueOnError)
	var (
		url      = fs.String("url", "http://127.0.0.1:8080", "base URL of the wqe-serve instance")
		graphArg = fs.String("graph", "", "resident graph to query (empty works for single-tenant servers)")
		clients  = fs.Int("clients", 8, "concurrent closed-loop clients")
		duration = fs.Duration("duration", 10*time.Second, "run length, warmup included")
		warmup   = fs.Duration("warmup", time.Second, "initial window exercised but excluded from the report")
		rps      = fs.Float64("rps", 0, "fleet-wide target requests/sec (0 = unthrottled closed loop)")
		maxReq   = fs.Int64("max-requests", 0, "stop after this many requests even if -duration remains (0 = off)")
		seed     = fs.Int64("seed", 1, "sampling seed; client i draws from seed+i")
		mixSpec  = fs.String("mix", defaultMix, "endpoint-to-ratio JSON object, inline or @file")
		poolPath = fs.String("pool", "", "payload pool: JSON array of {query, exemplar} objects")
		fig1     = fs.Bool("fig1", false, "use the built-in Fig 1 fixture payload instead of -pool")
		out      = fs.String("out", "", "write the JSON report here instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	mix, err := parseMix(*mixSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wqe-loadgen:", err)
		return 2
	}
	pool, err := loadPool(*poolPath, *fig1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wqe-loadgen:", err)
		return 2
	}

	rep, err := loadgen.Run(loadgen.Options{
		BaseURL:     strings.TrimRight(*url, "/"),
		Graph:       *graphArg,
		Mix:         mix,
		Pool:        pool,
		Clients:     *clients,
		Duration:    *duration,
		Warmup:      *warmup,
		TargetRPS:   *rps,
		MaxRequests: *maxReq,
		Seed:        *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wqe-loadgen:", err)
		return 1
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "wqe-loadgen: encode report:", err)
		return 1
	}
	b = append(b, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "wqe-loadgen:", err)
			return 1
		}
		fmt.Printf("wqe-loadgen: %d requests, %.1f req/s, error rate %.3f -> %s\n",
			rep.Requests, rep.AchievedRPS, rep.ErrorRate, *out)
		return 0
	}
	fmt.Print(string(b))
	return 0
}

// parseMix decodes the -mix spec: inline JSON, or @path to a file.
func parseMix(spec string) (map[string]float64, error) {
	raw := []byte(spec)
	if strings.HasPrefix(spec, "@") {
		b, err := os.ReadFile(spec[1:])
		if err != nil {
			return nil, fmt.Errorf("read mix: %w", err)
		}
		raw = b
	}
	var mix map[string]float64
	if err := json.Unmarshal(raw, &mix); err != nil {
		return nil, fmt.Errorf("parse mix %q: %w", spec, err)
	}
	return mix, nil
}

// loadPool resolves the payload pool from -pool or -fig1.
func loadPool(path string, fig1 bool) ([]loadgen.Payload, error) {
	switch {
	case fig1 && path != "":
		return nil, fmt.Errorf("-fig1 and -pool are mutually exclusive")
	case fig1:
		return loadgen.Fig1Pool(), nil
	case path == "":
		return nil, fmt.Errorf("need -pool file.json or -fig1")
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read pool: %w", err)
	}
	var pool []loadgen.Payload
	if err := json.Unmarshal(b, &pool); err != nil {
		return nil, fmt.Errorf("parse pool %s: %w", path, err)
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("pool %s is empty", path)
	}
	return pool, nil
}
