// Command wqe-datagen emits the synthetic dataset analogs used by the
// experiment harness, as graph JSON or as a binary snapshot.
//
//	wqe-datagen -dataset dbpedia-like -nodes 20000 -seed 7 -out g.json
//	wqe-datagen -dataset products -nodes 1120000 -seed 7 \
//	    -snapshot g.snap -embed-pll
//
// -snapshot writes the versioned binary format of
// internal/graph/snapshot.go (orders of magnitude faster to load than
// JSON at million-node sizes); -embed-pll additionally builds the PLL
// distance index and embeds its labels so a server cold-start skips
// index construction entirely. Both -out and -snapshot may be given to
// emit the two formats in one run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"wqe/internal/datagen"
	"wqe/internal/distindex"
	"wqe/internal/graph"
)

func main() {
	var (
		dataset = flag.String("dataset", datagen.DatasetKnowledge,
			"one of: "+strings.Join(datagen.AllDatasets(), ", "))
		nodes    = flag.Int("nodes", 20000, "approximate node count")
		seed     = flag.Int64("seed", 7, "generator seed")
		out      = flag.String("out", "", "JSON output file (default stdout when -snapshot is not given)")
		snapshot = flag.String("snapshot", "", "binary snapshot output file")
		embedPLL = flag.Bool("embed-pll", false,
			"build the PLL distance index and embed its labels in the snapshot (requires -snapshot)")
	)
	flag.Parse()

	if *embedPLL && *snapshot == "" {
		fail(fmt.Errorf("-embed-pll requires -snapshot"))
	}

	g, err := datagen.Generate(*dataset, *nodes, *seed)
	if err != nil {
		fail(err)
	}

	if *out != "" || *snapshot == "" {
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			w = f
		}
		if err := g.WriteJSON(w); err != nil {
			fail(err)
		}
	}

	if *snapshot != "" {
		var aux []byte
		if *embedPLL {
			start := time.Now()
			pll := distindex.NewPLLParallel(g, runtime.GOMAXPROCS(0))
			aux = pll.Marshal()
			fmt.Fprintf(os.Stderr, "built PLL (%d labels) in %v\n",
				pll.LabelSize(), time.Since(start).Round(time.Millisecond))
		}
		if err := writeSnapshotFile(*snapshot, g, aux); err != nil {
			fail(err)
		}
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", g)
}

func writeSnapshotFile(path string, g *graph.Graph, aux []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := g.WriteSnapshot(f, aux)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wqe-datagen:", err)
	os.Exit(1)
}
