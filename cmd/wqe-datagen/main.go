// Command wqe-datagen emits the synthetic dataset analogs used by the
// experiment harness as graph JSON files.
//
//	wqe-datagen -dataset dbpedia-like -nodes 20000 -seed 7 -out g.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wqe/internal/datagen"
)

func main() {
	var (
		dataset = flag.String("dataset", datagen.DatasetKnowledge,
			"one of: "+strings.Join(datagen.AllDatasets(), ", "))
		nodes = flag.Int("nodes", 20000, "approximate node count")
		seed  = flag.Int64("seed", 7, "generator seed")
		out   = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	g, err := datagen.Generate(*dataset, *nodes, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wqe-datagen:", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wqe-datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := g.WriteJSON(w); err != nil {
		fmt.Fprintln(os.Stderr, "wqe-datagen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", g)
}
