// Command wqe-lint runs the repo-specific static-analysis suite of
// internal/lint over the module: mapiter (deterministic map iteration),
// lockcheck (flow-sensitive mutex discipline with witness chains),
// lockorder (module-wide lock-acquisition-order cycles — AB-BA
// deadlocks with two-sided witness chains), atomicfield (fields mixing
// sync/atomic and plain access), detsource (no nondeterminism sources
// reachable from canonical-output packages), errdrop (no silently
// discarded errors in internal packages), panicfree (no panics in
// library code), floateq (no float ==/!= in ranking code), gobound (no
// goroutine spawns outside the internal/par worker pool), ctxflow
// (contexts threaded into every blocking operation), leakcheck
// (goroutines joined or cancellable), and lintignore (suppression
// directives must state a reason).
//
// Usage:
//
//	wqe-lint [-root dir] [-rules list] [-format text|github|sarif] [-workers n] [-callgraph] [-lockorder] [patterns...]
//
// Patterns select which packages findings are reported for: "./..."
// (everything, the default), or directory paths like ./internal/chase.
// The whole module is always loaded and type-checked regardless, since
// lock annotations and the call graph are collected module-wide.
//
// -callgraph skips the analyzers and dumps the module's static call
// graph (nodes, edges with dispatch kinds, SCCs) in its deterministic
// text form, for debugging interprocedural findings. -lockorder does
// the same for the module's lock-acquisition-order graph (lock
// identities, held-while-acquiring edges with witnesses, cycles).
//
// -workers sets how many analyzer goroutines run per-package passes
// concurrently (0 = GOMAXPROCS); the findings stream is byte-identical
// at every worker count.
//
// Output is one `file:line: rule: message` per finding; with
// -format=github each finding is instead a GitHub Actions workflow
// command (`::error file=…,line=…::…`), so CI failures annotate the
// offending lines in the pull-request diff; with -format=sarif the
// findings are a SARIF 2.1.0 log on stdout for code-scanning upload.
// The exit status is 1 when anything is reported, 2 on load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"wqe/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, loads the module,
// and prints findings (or the call graph) to stdout. Exit code 0 means
// clean, 1 means findings, 2 means usage or load errors.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wqe-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", "", "module root (default: walk up from cwd to go.mod)")
	rules := fs.String("rules", "", "comma-separated analyzer names to run (default: all)")
	format := fs.String("format", "text", "findings output: text (file:line: rule: message), github (workflow error annotations), or sarif (SARIF 2.1.0 log)")
	workers := fs.Int("workers", 0, "concurrent per-package analyzer goroutines (0 = GOMAXPROCS); output is identical at every count")
	dumpCG := fs.Bool("callgraph", false, "dump the module call graph instead of linting")
	dumpLO := fs.Bool("lockorder", false, "dump the module lock-acquisition-order graph instead of linting")
	fs.Usage = func() {
		//lint:ignore errdrop terminal output; a failed diagnostic write has no useful handler
		fmt.Fprintf(stderr, "usage: wqe-lint [-root dir] [-rules list] [-format text|github|sarif] [-workers n] [-callgraph] [-lockorder] [patterns...]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			//lint:ignore errdrop terminal output; a failed diagnostic write has no useful handler
			fmt.Fprintf(stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "github" && *format != "sarif" {
		return fail(stderr, fmt.Errorf("unknown -format %q (want text, github, or sarif)", *format))
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			return fail(stderr, err)
		}
	}
	// Findings carry absolute paths; the root must be absolute too so
	// rel() can shorten them.
	if abs, err := filepath.Abs(dir); err == nil {
		dir = abs
	}

	mod, err := lint.Load(dir)
	if err != nil {
		return fail(stderr, err)
	}

	if *dumpCG {
		//lint:ignore errdrop terminal output; a failed diagnostic write has no useful handler
		fmt.Fprint(stdout, lint.CallGraphOf(mod).Dump())
		return 0
	}
	if *dumpLO {
		//lint:ignore errdrop terminal output; a failed diagnostic write has no useful handler
		fmt.Fprint(stdout, lint.LockOrderOf(mod).Dump())
		return 0
	}

	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		return fail(stderr, err)
	}

	findings := lint.RunAllWorkers(mod, analyzers, *workers)
	findings = filterByPatterns(mod, findings, fs.Args())

	if *format == "sarif" {
		if err := writeSarif(stdout, dir, analyzers, findings); err != nil {
			return fail(stderr, err)
		}
		if len(findings) > 0 {
			//lint:ignore errdrop terminal output; a failed diagnostic write has no useful handler
			fmt.Fprintf(stderr, "wqe-lint: %d finding(s)\n", len(findings))
			return 1
		}
		return 0
	}

	for _, f := range findings {
		line := rel(dir, f)
		if *format == "github" {
			line = githubAnnotation(dir, f)
		}
		//lint:ignore errdrop terminal output; a failed diagnostic write has no useful handler
		fmt.Fprintln(stdout, line)
	}
	if len(findings) > 0 {
		//lint:ignore errdrop terminal output; a failed diagnostic write has no useful handler
		fmt.Fprintf(stderr, "wqe-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

func fail(stderr io.Writer, err error) int {
	//lint:ignore errdrop terminal output; a failed diagnostic write has no useful handler
	fmt.Fprintln(stderr, "wqe-lint:", err)
	return 2
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

func selectAnalyzers(spec string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if spec == "" {
		return all, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// filterByPatterns keeps findings under the directories the patterns
// name. "./..." and the empty pattern list select everything; a
// trailing "/..." selects a subtree. Relative patterns resolve against
// the module root, so `wqe-lint -root other/mod ./chase/...` means the
// chase directory of that module, not of the working directory.
func filterByPatterns(mod *lint.Module, findings []lint.Finding, patterns []string) []lint.Finding {
	if len(patterns) == 0 {
		return findings
	}
	var prefixes []string
	for _, p := range patterns {
		if p == "./..." || p == "..." {
			return findings
		}
		p = filepath.Clean(strings.TrimSuffix(p, "/..."))
		if !filepath.IsAbs(p) {
			p = filepath.Join(mod.Root, p)
		}
		prefixes = append(prefixes, p+string(filepath.Separator))
	}
	var out []lint.Finding
	for _, f := range findings {
		for _, pre := range prefixes {
			if strings.HasPrefix(f.Pos.Filename, pre) || filepath.Dir(f.Pos.Filename)+string(filepath.Separator) == pre {
				out = append(out, f)
				break
			}
		}
	}
	return out
}

// rel renders a finding with the file path relative to the module root
// (keeps CI logs readable).
func rel(root string, f lint.Finding) string {
	if r, err := filepath.Rel(root, f.Pos.Filename); err == nil {
		f.Pos.Filename = r
	}
	return f.String()
}

// githubAnnotation renders a finding as a GitHub Actions workflow
// command, so a failed lint job annotates the offending line in the
// pull-request diff instead of burying it in the job log.
func githubAnnotation(root string, f lint.Finding) string {
	file := f.Pos.Filename
	if r, err := filepath.Rel(root, file); err == nil {
		file = r
	}
	return fmt.Sprintf("::error file=%s,line=%d::%s",
		escapeProperty(filepath.ToSlash(file)), f.Pos.Line,
		escapeData(f.Rule+": "+f.Msg))
}

// escapeData escapes the message part of a workflow command.
func escapeData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// escapeProperty escapes a workflow-command property value, which
// additionally reserves the property and command separators.
func escapeProperty(s string) string {
	s = escapeData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}
