package main

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"

	"wqe/internal/lint"
)

// SARIF 2.1.0 output, built with the stdlib JSON encoder only. The
// structs cover exactly the subset code-scanning upload consumes: one
// run, the analyzer roster as reporting rules, one result per finding
// with a module-relative slash-separated URI. MarshalIndent over these
// fixed-shape structs is deterministic, so the SARIF stream inherits
// the byte-identity contract of the text formats.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSarif renders the findings as one SARIF run. Findings arrive in
// the deterministic RunAll order and are emitted as-is; rules follow
// the analyzer selection order.
func writeSarif(w io.Writer, root string, analyzers []*lint.Analyzer, findings []lint.Finding) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		uri := f.Pos.Filename
		if r, err := filepath.Rel(root, uri); err == nil {
			uri = r
		}
		results = append(results, sarifResult{
			RuleID:  f.Rule,
			Level:   "error",
			Message: sarifMessage{Text: f.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(uri)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "wqe-lint", Rules: rules}},
			Results: results,
		}},
	}
	data, err := json.MarshalIndent(&log, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", data)
	return err
}
