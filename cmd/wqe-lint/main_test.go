package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wqe/internal/lint"
)

func lintFinding(file string, line int, rule, msg string) lint.Finding {
	return lint.Finding{Pos: token.Position{Filename: file, Line: line}, Rule: rule, Msg: msg}
}

var update = flag.Bool("update", false, "rewrite golden files from current output")

// fixtureRoot is the lint package's marker-annotated fixture module —
// the CLI test reuses it so the golden file and the marker corpus can
// never drift apart silently.
const fixtureRoot = "../../internal/lint/testdata/src"

// runOnce invokes the CLI entry point and returns stdout, stderr, and
// the exit code.
func runOnce(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

// TestGoldenFixture pins the exact end-to-end findings text over the
// fixture module, and that two consecutive runs are byte-identical —
// the determinism contract CI relies on.
func TestGoldenFixture(t *testing.T) {
	out1, errText, code := runOnce(t, "-root", fixtureRoot)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings present); stderr:\n%s", code, errText)
	}
	if !strings.Contains(errText, "finding(s)") {
		t.Errorf("stderr should carry the findings summary, got %q", errText)
	}

	golden := filepath.Join("testdata", "fixture.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(out1), 0o644); err != nil {
			t.Fatalf("updating golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	if out1 != string(want) {
		t.Errorf("output differs from %s (rerun with -update after intended changes):\ngot:\n%s\nwant:\n%s", golden, out1, want)
	}

	out2, _, code2 := runOnce(t, "-root", fixtureRoot)
	if code2 != 1 || out2 != out1 {
		t.Errorf("second run differs (code %d): the findings stream must be byte-identical across runs", code2)
	}

	// Parallel per-package analysis must not reorder or alter anything:
	// the stream is byte-identical at every worker count.
	for _, w := range []string{"1", "4", "8"} {
		outW, _, codeW := runOnce(t, "-root", fixtureRoot, "-workers", w)
		if codeW != 1 || outW != out1 {
			t.Errorf("-workers %s run differs (code %d): output must be byte-identical at every worker count", w, codeW)
		}
	}
}

// TestGithubFormat pins the -format=github annotation stream: one
// workflow command per finding, same count and order as the text
// stream, byte-identical across runs.
func TestGithubFormat(t *testing.T) {
	text, _, _ := runOnce(t, "-root", fixtureRoot)
	out1, _, code := runOnce(t, "-root", fixtureRoot, "-format", "github")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	textLines := strings.Split(strings.TrimSpace(text), "\n")
	ghLines := strings.Split(strings.TrimSpace(out1), "\n")
	if len(ghLines) != len(textLines) {
		t.Fatalf("github stream has %d lines, text stream %d — formats must report identically",
			len(ghLines), len(textLines))
	}
	for _, line := range ghLines {
		if !strings.HasPrefix(line, "::error file=") || !strings.Contains(line, ",line=") {
			t.Errorf("malformed annotation: %s", line)
		}
		if strings.Contains(line, "\n") || strings.Contains(line, "\r") {
			t.Errorf("annotation must be a single line: %q", line)
		}
	}
	// The fixture messages contain colons after escaping-relevant text;
	// spot-check one known finding keeps its rule prefix in the message
	// part (after the :: separator).
	if !strings.Contains(out1, "::mapiter: ") {
		t.Errorf("annotations should carry 'rule: message' after the data separator:\n%.300s", out1)
	}
	out2, _, _ := runOnce(t, "-root", fixtureRoot, "-format", "github")
	if out2 != out1 {
		t.Error("github annotation stream must be byte-identical across runs")
	}
}

// TestGithubEscaping pins the workflow-command data escaping on a
// synthetic finding.
func TestGithubEscaping(t *testing.T) {
	f := lintFinding("a,b.go", 3, "rule", "100% broken\nsecond line")
	got := githubAnnotation("/", f)
	want := "::error file=a%2Cb.go,line=3::rule: 100%25 broken%0Asecond line"
	if got != want {
		t.Errorf("githubAnnotation = %q, want %q", got, want)
	}
}

// TestBadFormat pins exit 2 on an unknown -format value.
func TestBadFormat(t *testing.T) {
	_, errText, code := runOnce(t, "-root", fixtureRoot, "-format", "xml")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr:\n%s", code, errText)
	}
	if !strings.Contains(errText, "xml") {
		t.Errorf("error should name the unknown format, got %q", errText)
	}
}

// TestSarifFormat pins the -format=sarif stream: a parseable SARIF
// 2.1.0 log whose results mirror the text stream one-to-one, with
// module-relative slash URIs, byte-identical across runs.
func TestSarifFormat(t *testing.T) {
	text, _, _ := runOnce(t, "-root", fixtureRoot)
	out1, errText, code := runOnce(t, "-root", fixtureRoot, "-format", "sarif")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, errText)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out1), &log); err != nil {
		t.Fatalf("sarif output is not valid JSON: %v\n%.400s", err, out1)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("want one SARIF 2.1.0 run, got version %q with %d runs", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "wqe-lint" {
		t.Errorf("driver name = %q, want wqe-lint", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(lint.Analyzers()) {
		t.Errorf("rules roster has %d entries, want %d (one per analyzer)",
			len(run.Tool.Driver.Rules), len(lint.Analyzers()))
	}
	textLines := strings.Split(strings.TrimSpace(text), "\n")
	if len(run.Results) != len(textLines) {
		t.Fatalf("sarif has %d results, text stream %d lines — formats must report identically",
			len(run.Results), len(textLines))
	}
	for i, r := range run.Results {
		if r.Level != "error" || len(r.Locations) != 1 {
			t.Fatalf("result %d: level %q with %d locations, want error with 1", i, r.Level, len(r.Locations))
		}
		uri := r.Locations[0].PhysicalLocation.ArtifactLocation.URI
		if strings.Contains(uri, "\\") || filepath.IsAbs(uri) {
			t.Errorf("result %d: URI %q must be module-relative with forward slashes", i, uri)
		}
		prefix := fmt.Sprintf("%s:%d: %s: ", uri, r.Locations[0].PhysicalLocation.Region.StartLine, r.RuleID)
		if !strings.HasPrefix(textLines[i], prefix) {
			t.Errorf("result %d does not mirror text line:\nsarif: %s\ntext:  %s", i, prefix, textLines[i])
		}
	}
	out2, _, _ := runOnce(t, "-root", fixtureRoot, "-format", "sarif")
	if out2 != out1 {
		t.Error("sarif stream must be byte-identical across runs")
	}
}

// TestCleanModule pins exit 0 and empty output on a module with no
// findings.
func TestCleanModule(t *testing.T) {
	out, errText, code := runOnce(t, "-root", filepath.Join("testdata", "clean"))
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errText)
	}
	if out != "" {
		t.Errorf("clean module should print nothing, got:\n%s", out)
	}
}

// TestLoadError pins exit 2 when the root is not a module.
func TestLoadError(t *testing.T) {
	_, errText, code := runOnce(t, "-root", t.TempDir())
	if code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr:\n%s", code, errText)
	}
	if !strings.Contains(errText, "wqe-lint:") {
		t.Errorf("load errors must be reported on stderr, got %q", errText)
	}
}

// TestBadRule pins exit 2 on an unknown -rules entry.
func TestBadRule(t *testing.T) {
	_, errText, code := runOnce(t, "-root", fixtureRoot, "-rules", "nosuchrule")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr:\n%s", code, errText)
	}
	if !strings.Contains(errText, "nosuchrule") {
		t.Errorf("error should name the unknown rule, got %q", errText)
	}
}

// TestPatternFilter pins that positional patterns narrow the report
// without changing what is analyzed.
func TestPatternFilter(t *testing.T) {
	out, _, code := runOnce(t, "-root", fixtureRoot, "./det/...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "det/") {
			t.Errorf("pattern ./det/... leaked a foreign finding: %s", line)
		}
	}
	// The interprocedural chain from chase into det must survive the
	// filter: analysis is module-wide even when reporting is narrowed.
	if !strings.Contains(out, "chase.Pipeline → det.Hop1 → det.Hop2") {
		t.Errorf("expected the cross-package witness chain in filtered output:\n%s", out)
	}
}

// TestLockorderDump pins the -lockorder mode end to end against a
// golden file: the fixture module carries one genuine AB-BA cycle
// (order.A/order.B, one side through a helper) and one consistent-order
// pair (order.C before order.D everywhere, no cycle), and the dump must
// be byte-identical across runs.
func TestLockorderDump(t *testing.T) {
	out1, errText, code := runOnce(t, "-root", fixtureRoot, "-lockorder")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errText)
	}

	golden := filepath.Join("testdata", "lockorder.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(out1), 0o644); err != nil {
			t.Fatalf("updating golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	if out1 != string(want) {
		t.Errorf("dump differs from %s (rerun with -update after intended changes):\ngot:\n%s\nwant:\n%s",
			golden, out1, want)
	}

	if !strings.HasPrefix(out1, "lockorder:") {
		t.Errorf("dump should open with the summary header, got:\n%.120s", out1)
	}
	if !strings.Contains(out1, "cycle: order.A.mu order.B.mu") {
		t.Errorf("dump missing the A/B cycle line:\n%s", out1)
	}
	for _, line := range strings.Split(out1, "\n") {
		if strings.HasPrefix(line, "cycle: ") &&
			(strings.Contains(line, "order.C.mu") || strings.Contains(line, "order.D.mu")) {
			t.Errorf("consistent-order pair C/D must not be reported as a cycle: %s", line)
		}
	}

	out2, _, _ := runOnce(t, "-root", fixtureRoot, "-lockorder")
	if out2 != out1 {
		t.Error("lock-order dump must be byte-identical across runs")
	}
}

// TestCallgraphDump pins the -callgraph mode: deterministic across
// runs, exit 0, and containing a known cross-package edge.
func TestCallgraphDump(t *testing.T) {
	out1, _, code := runOnce(t, "-root", fixtureRoot, "-callgraph")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	out2, _, _ := runOnce(t, "-root", fixtureRoot, "-callgraph")
	if out1 != out2 {
		t.Error("call-graph dump must be byte-identical across runs")
	}
	if !strings.HasPrefix(out1, "callgraph:") {
		t.Errorf("dump should open with the summary header, got:\n%.120s", out1)
	}
	if !strings.Contains(out1, "det.Hop1\n  -> det.Hop2 [static]") {
		t.Errorf("dump missing expected static edge stanza:\n%.400s", out1)
	}
}
