// Package ok violates no lint rule; the clean module pins wqe-lint's
// exit-0 path.
package ok

import "sort"

// Keys returns the map's keys in sorted order — the collect-then-sort
// idiom every analyzer is happy with.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
