// Package par is the repo's single sanctioned concurrency primitive: a
// bounded worker pool for fanning independent work items out across the
// machine's cores.
//
// Every goroutine in the module is spawned here — the gobound analyzer
// (internal/lint) rejects `go` statements anywhere else. Concentrating
// the spawns buys three properties the Q-Chase engines rely on:
//
//   - Bounded parallelism: ForEach never runs more than the requested
//     number of workers, so a beam level with 10,000 candidates cannot
//     start 10,000 goroutines.
//   - Structured lifetime: ForEach returns only after every item
//     finished; no goroutine outlives its call, so callers never leak
//     workers or race with their own commit phase.
//   - Determinism by ordered commit: callers write results into
//     index-addressed slots and commit them sequentially afterwards,
//     which keeps parallel output byte-identical to sequential runs.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a configured worker count: values below 1 mean "one
// worker per logical CPU" (GOMAXPROCS), anything else is returned as
// given.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) using at most workers
// concurrent goroutines and returns once all calls completed. Items are
// claimed dynamically (an atomic cursor), so uneven item costs balance
// across workers; fn must therefore not depend on execution order.
//
// workers ≤ 1 or n ≤ 1 degrades to a plain sequential loop on the
// calling goroutine — the zero-overhead path the determinism tests pin
// against. A panic in fn is caught in the worker and re-raised on the
// calling goroutine (first one wins) so the failure surfaces in the
// caller's stack, not as a crashed worker.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		cursor  atomic.Int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panicV  interface{}
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicV == nil {
						panicV = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	rethrow(panicV)
}

// rethrow re-raises a panic value captured in a worker goroutine.
// invariant: library code in this module is panic-free (enforced by the
// panicfree analyzer); this fires only when a caller-supplied fn is
// buggy, and then the original panic must not be swallowed.
func rethrow(v interface{}) {
	if v != nil {
		panic(v)
	}
}

// Budget is a token budget for composing nested parallelism: an outer
// batch of Why-questions and the per-question candidate fan-out inside
// each of them draw helper tokens from one shared Budget, so the total
// number of concurrently running goroutines stays bounded no matter how
// the two levels nest.
//
// Tokens gate *helpers only*. The goroutine that calls ForEachIn always
// participates in its own loop without holding a token, which makes the
// scheme deadlock-free by construction: a caller that finds the budget
// drained simply runs its items sequentially — it never blocks waiting
// for a token that an ancestor of its own call stack is holding.
type Budget struct {
	// sem holds the free helper tokens. Buffered-channel semantics give
	// TryAcquire/Release without any state of our own to guard.
	sem chan struct{}
}

// NewBudget returns a budget with the given number of helper tokens.
// Zero (or negative) tokens is valid and means "no helpers anywhere":
// every ForEachIn against it degrades to a sequential loop.
func NewBudget(tokens int) *Budget {
	if tokens < 0 {
		tokens = 0
	}
	b := &Budget{sem: make(chan struct{}, tokens)}
	for i := 0; i < tokens; i++ {
		b.sem <- struct{}{}
	}
	return b
}

// TryAcquire takes one helper token if one is free. It never blocks —
// blocking here is exactly the nested-parallelism deadlock the Budget
// exists to prevent.
func (b *Budget) TryAcquire() bool {
	select {
	case <-b.sem:
		return true
	default:
		return false
	}
}

// Release returns a token taken by TryAcquire. Callers must pair it
// with a successful TryAcquire exactly once.
func (b *Budget) Release() {
	b.sem <- struct{}{}
}

// Cap reports the budget's total token count.
func (b *Budget) Cap() int { return cap(b.sem) }

var (
	sharedOnce   sync.Once
	sharedBudget *Budget
)

// SharedBudget returns the process-wide helper budget, sized
// GOMAXPROCS−1: with every submitting goroutine running for free and at
// most GOMAXPROCS−1 token-holding helpers beside it, the module's total
// runnable parallelism tracks the machine instead of multiplying outer
// (cross-question) by inner (per-question) worker counts. chase
// sessions schedule through it; a single-CPU machine gets a zero-token
// budget and therefore runs everything sequentially.
func SharedBudget() *Budget {
	sharedOnce.Do(func() {
		sharedBudget = NewBudget(runtime.GOMAXPROCS(0) - 1)
	})
	return sharedBudget
}

// ForEachIn is ForEach gated by a helper budget: fn(i) runs for every
// i in [0, n), on the calling goroutine plus up to workers−1 helper
// goroutines — but each helper must win a token from b, and releases it
// when the loop drains. A nil budget means ungated: plain ForEach.
//
// Like ForEach, items are claimed from an atomic cursor, so fn must not
// depend on execution order; determinism stays the callers' business
// (index-addressed slots, ordered commit). Helper panics are re-raised
// on the calling goroutine after all helpers joined; a panic in the
// caller's own fn unwinds only after the helpers joined too, so no
// goroutine ever outlives the call.
func ForEachIn(b *Budget, workers, n int, fn func(i int)) {
	if b == nil {
		ForEach(workers, n, fn)
		return
	}
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	helpers := 0
	if workers > 1 {
		for helpers < workers-1 && b.TryAcquire() {
			helpers++
		}
	}
	if helpers == 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		cursor  atomic.Int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panicV  interface{}
	)
	loop := func() {
		for {
			i := int(cursor.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	for h := 0; h < helpers; h++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer b.Release()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicV == nil {
						panicV = r
					}
					panicMu.Unlock()
				}
			}()
			loop()
		}()
	}
	func() {
		// Join the helpers even when the caller's own fn panics: the
		// deferred Wait runs while that panic unwinds, so ForEachIn keeps
		// the structured-lifetime guarantee on every path.
		defer wg.Wait()
		loop()
	}()
	rethrow(panicV)
}
