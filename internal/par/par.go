// Package par is the repo's single sanctioned concurrency primitive: a
// bounded worker pool for fanning independent work items out across the
// machine's cores.
//
// Every goroutine in the module is spawned here — the gobound analyzer
// (internal/lint) rejects `go` statements anywhere else. Concentrating
// the spawns buys three properties the Q-Chase engines rely on:
//
//   - Bounded parallelism: ForEach never runs more than the requested
//     number of workers, so a beam level with 10,000 candidates cannot
//     start 10,000 goroutines.
//   - Structured lifetime: ForEach returns only after every item
//     finished; no goroutine outlives its call, so callers never leak
//     workers or race with their own commit phase.
//   - Determinism by ordered commit: callers write results into
//     index-addressed slots and commit them sequentially afterwards,
//     which keeps parallel output byte-identical to sequential runs.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a configured worker count: values below 1 mean "one
// worker per logical CPU" (GOMAXPROCS), anything else is returned as
// given.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) using at most workers
// concurrent goroutines and returns once all calls completed. Items are
// claimed dynamically (an atomic cursor), so uneven item costs balance
// across workers; fn must therefore not depend on execution order.
//
// workers ≤ 1 or n ≤ 1 degrades to a plain sequential loop on the
// calling goroutine — the zero-overhead path the determinism tests pin
// against. A panic in fn is caught in the worker and re-raised on the
// calling goroutine (first one wins) so the failure surfaces in the
// caller's stack, not as a crashed worker.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		cursor  atomic.Int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panicV  interface{}
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicV == nil {
						panicV = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	rethrow(panicV)
}

// rethrow re-raises a panic value captured in a worker goroutine.
// invariant: library code in this module is panic-free (enforced by the
// panicfree analyzer); this fires only when a caller-supplied fn is
// buggy, and then the original panic must not be swallowed.
func rethrow(v interface{}) {
	if v != nil {
		panic(v)
	}
}
