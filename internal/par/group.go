package par

import "sync"

// Group is the sanctioned primitive for the handful of *long-lived*
// goroutines a resident process needs — an accept loop, a signal
// watcher — that don't fit ForEach's fork-join shape. It keeps the
// module's concurrency doctrine intact: every spawn still lives inside
// internal/par (gobound), and lifetime stays structured — the owner
// must call Wait before exiting, and Wait returns only after every
// spawned function has returned.
//
// Group deliberately has no Stop: cancellation is the spawned code's
// business (close a listener, signal a channel). A Group only
// guarantees the join, plus ForEach's panic contract — a panic in a
// spawned function is captured and re-raised on the goroutine that
// calls Wait, first one wins, so a crashed server loop fails the
// process instead of dying silently.
//
// The zero Group is ready to use. Go and Wait may not be called
// concurrently with each other from multiple goroutines (the usual
// owner pattern: one goroutine spawns, the same one waits).
type Group struct {
	wg sync.WaitGroup

	mu     sync.Mutex
	panicV interface{} // first captured panic, guarded by mu
}

// Go runs fn on a new goroutine tracked by the group.
func (g *Group) Go(fn func()) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				g.mu.Lock()
				if g.panicV == nil {
					g.panicV = r
				}
				g.mu.Unlock()
			}
		}()
		fn()
	}()
}

// Wait blocks until every spawned function returned, then re-raises
// the first captured panic, if any.
func (g *Group) Wait() {
	g.wg.Wait()
	g.mu.Lock()
	v := g.panicV
	g.panicV = nil
	g.mu.Unlock()
	rethrow(v)
}
