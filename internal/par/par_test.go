package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d, want 5", got)
	}
}

// TestForEachCoversEveryIndexOnce checks each index runs exactly once,
// across sequential and parallel configurations.
func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		for _, n := range []int{0, 1, 3, 100, 1000} {
			hits := make([]atomic.Int32, n)
			ForEach(workers, n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

// TestForEachBoundsConcurrency proves no more than the requested number
// of workers run simultaneously.
func TestForEachBoundsConcurrency(t *testing.T) {
	const workers, n = 4, 200
	var cur, max atomic.Int32
	ForEach(workers, n, func(int) {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		cur.Add(-1)
	})
	if m := max.Load(); m > workers {
		t.Fatalf("observed %d concurrent workers, want ≤ %d", m, workers)
	}
}

// TestForEachSequentialOrder pins the workers=1 contract: items run in
// index order on the calling goroutine, which is what makes a
// single-worker run byte-identical to the historical sequential code.
func TestForEachSequentialOrder(t *testing.T) {
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("workers=1 ran out of order: %v", order)
		}
	}
}

func TestBudgetTokens(t *testing.T) {
	b := NewBudget(2)
	if b.Cap() != 2 {
		t.Fatalf("Cap = %d, want 2", b.Cap())
	}
	if !b.TryAcquire() || !b.TryAcquire() {
		t.Fatal("two tokens should be available")
	}
	if b.TryAcquire() {
		t.Fatal("third TryAcquire should fail on a drained budget")
	}
	b.Release()
	if !b.TryAcquire() {
		t.Fatal("released token should be reacquirable")
	}

	zero := NewBudget(0)
	if zero.TryAcquire() {
		t.Fatal("zero-token budget must never grant a token")
	}
	neg := NewBudget(-5)
	if neg.Cap() != 0 {
		t.Fatalf("negative tokens should clamp to 0, got cap %d", neg.Cap())
	}
}

// TestForEachInCoversEveryIndexOnce mirrors the ForEach coverage
// contract across budget sizes, including a drained budget (sequential
// fallback) and a nil budget (plain ForEach).
func TestForEachInCoversEveryIndexOnce(t *testing.T) {
	budgets := []*Budget{nil, NewBudget(0), NewBudget(1), NewBudget(7)}
	for bi, b := range budgets {
		for _, workers := range []int{1, 2, 8} {
			for _, n := range []int{0, 1, 3, 250} {
				hits := make([]atomic.Int32, n)
				ForEachIn(b, workers, n, func(i int) { hits[i].Add(1) })
				for i := range hits {
					if got := hits[i].Load(); got != 1 {
						t.Fatalf("budget#%d workers=%d n=%d: index %d ran %d times",
							bi, workers, n, i, got)
					}
				}
			}
		}
	}
}

// TestForEachInSequentialWhenDrained pins the deadlock-freedom design:
// with no tokens free, the caller runs everything itself, in order.
func TestForEachInSequentialWhenDrained(t *testing.T) {
	b := NewBudget(0)
	var order []int
	ForEachIn(b, 8, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("drained budget ran out of order: %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("ran %d of 5 items", len(order))
	}
}

// TestForEachInBoundsConcurrency proves the token budget caps helpers:
// caller + tokens is the concurrency ceiling regardless of workers.
func TestForEachInBoundsConcurrency(t *testing.T) {
	const tokens, n = 3, 400
	b := NewBudget(tokens)
	var cur, max atomic.Int32
	ForEachIn(b, 16, n, func(int) {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		cur.Add(-1)
	})
	if m := max.Load(); m > tokens+1 {
		t.Fatalf("observed %d concurrent runners, want ≤ caller+%d tokens", m, tokens)
	}
}

// TestForEachInReleasesTokens: after the loop drains, every helper
// token is back in the budget.
func TestForEachInReleasesTokens(t *testing.T) {
	b := NewBudget(4)
	ForEachIn(b, 8, 100, func(int) {})
	got := 0
	for b.TryAcquire() {
		got++
	}
	if got != 4 {
		t.Fatalf("budget holds %d tokens after the loop, want 4", got)
	}
}

// TestForEachInNestedComposes: inner ForEachIn calls inside an outer
// one share the budget without deadlocking and still cover every item.
func TestForEachInNestedComposes(t *testing.T) {
	b := NewBudget(3)
	const outer, inner = 10, 50
	hits := make([]atomic.Int32, outer*inner)
	ForEachIn(b, 4, outer, func(o int) {
		ForEachIn(b, 4, inner, func(i int) {
			hits[o*inner+i].Add(1)
		})
	})
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("item %d ran %d times", i, got)
		}
	}
}

// TestForEachInPanicPropagates: a panic in fn (whether a helper or the
// caller hits it) resurfaces on the caller, helpers join, and the
// tokens all come back.
func TestForEachInPanicPropagates(t *testing.T) {
	b := NewBudget(3)
	func() {
		defer func() {
			if r := recover(); r != "bang" {
				t.Fatalf("recovered %v, want \"bang\"", r)
			}
		}()
		ForEachIn(b, 4, 64, func(i int) {
			if i == 11 {
				panic("bang")
			}
		})
		t.Fatal("ForEachIn returned instead of panicking")
	}()
	got := 0
	for b.TryAcquire() {
		got++
	}
	if got != 3 {
		t.Fatalf("budget holds %d tokens after panic, want 3", got)
	}
}

// TestForEachPanicPropagates checks a worker panic resurfaces on the
// caller and does not deadlock the pool.
func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want \"boom\"", r)
		}
	}()
	ForEach(4, 32, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
	t.Fatal("ForEach returned instead of panicking")
}
