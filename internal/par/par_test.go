package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d, want 5", got)
	}
}

// TestForEachCoversEveryIndexOnce checks each index runs exactly once,
// across sequential and parallel configurations.
func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		for _, n := range []int{0, 1, 3, 100, 1000} {
			hits := make([]atomic.Int32, n)
			ForEach(workers, n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

// TestForEachBoundsConcurrency proves no more than the requested number
// of workers run simultaneously.
func TestForEachBoundsConcurrency(t *testing.T) {
	const workers, n = 4, 200
	var cur, max atomic.Int32
	ForEach(workers, n, func(int) {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		cur.Add(-1)
	})
	if m := max.Load(); m > workers {
		t.Fatalf("observed %d concurrent workers, want ≤ %d", m, workers)
	}
}

// TestForEachSequentialOrder pins the workers=1 contract: items run in
// index order on the calling goroutine, which is what makes a
// single-worker run byte-identical to the historical sequential code.
func TestForEachSequentialOrder(t *testing.T) {
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("workers=1 ran out of order: %v", order)
		}
	}
}

// TestForEachPanicPropagates checks a worker panic resurfaces on the
// caller and does not deadlock the pool.
func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want \"boom\"", r)
		}
	}()
	ForEach(4, 32, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
	t.Fatal("ForEach returned instead of panicking")
}
