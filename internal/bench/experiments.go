package bench

import (
	"fmt"
	"math"
	"sort"
	"time"

	"wqe/internal/chase"
	"wqe/internal/datagen"
	"wqe/internal/graph"
	"wqe/internal/query"
)

// defaultBudget is the paper's default experimental cost bound B.
const defaultBudget = 3

// Experiments maps experiment ids to their drivers, in the paper's
// order.
var Experiments = []struct {
	ID  string
	Run func(*Harness) *Table
}{
	{"1a", (*Harness).Fig10a},
	{"1b", (*Harness).Fig10b},
	{"1c", (*Harness).Fig10c},
	{"1d", (*Harness).Fig10d},
	{"1e", (*Harness).Fig10e},
	{"1f", (*Harness).Fig10f},
	{"1g", (*Harness).Fig10g},
	{"1h", (*Harness).Fig10h},
	{"2i", (*Harness).Fig10i},
	{"2j", (*Harness).Fig10j},
	{"2k", (*Harness).Fig10k},
	{"3", (*Harness).Fig10l},
	{"4a", (*Harness).Fig12a},
	{"4b", (*Harness).Fig12b},
	{"4c", (*Harness).Fig12c},
	{"5", (*Harness).Exp5},
}

// Lookup finds an experiment driver by id.
func Lookup(id string) (func(*Harness) *Table, bool) {
	for _, e := range Experiments {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}

// timeRow measures mean wall time per algorithm on one workload.
func (h *Harness) timeRow(spec InstanceSpec, budget float64, algos []Algo) []string {
	g := h.GraphFor(spec.withDefaults(h).Dataset, spec.withDefaults(h).Scale)
	instances := h.Instances(spec)
	row := make([]string, 0, len(algos))
	for _, a := range algos {
		var times []time.Duration
		for _, inst := range instances {
			r, err := h.Run(a, g, inst, budget)
			if err != nil {
				continue
			}
			times = append(times, r.Elapsed)
		}
		row = append(row, secs(mean(times)))
	}
	return row
}

// closenessRow measures mean relative closeness (Jaccard vs ground
// truth) per algorithm on one workload.
func (h *Harness) closenessRow(spec InstanceSpec, budget float64, algos []Algo) []string {
	g := h.GraphFor(spec.withDefaults(h).Dataset, spec.withDefaults(h).Scale)
	instances := h.Instances(spec)
	row := make([]string, 0, len(algos))
	for _, a := range algos {
		var deltas []float64
		for _, inst := range instances {
			r, err := h.Run(a, g, inst, budget)
			if err != nil {
				continue
			}
			deltas = append(deltas, Jaccard(r.Answer.Matches, inst.AnswerStar))
		}
		row = append(row, f3(meanF(deltas)))
	}
	return row
}

// Fig10a — efficiency of the algorithm suite across the four datasets.
func (h *Harness) Fig10a() *Table {
	algos := []Algo{AlgoFMAnsW, AlgoAnsWb, AlgoAnsWnc, AlgoAnsW, AlgoAnsHeu}
	t := &Table{
		ID:     "Fig 10(a)",
		Title:  "Efficiency (mean seconds per Why-question)",
		Header: append([]string{"dataset"}, algoNames(algos)...),
	}
	for _, ds := range datagen.AllDatasets() {
		row := append([]string{ds}, h.timeRow(InstanceSpec{Dataset: ds}, defaultBudget, algos)...)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig10b — scalability: runtime vs graph size on the DBpedia analog.
func (h *Harness) Fig10b() *Table {
	algos := []Algo{AlgoAnsWb, AlgoAnsW, AlgoAnsHeu}
	t := &Table{
		ID:     "Fig 10(b)",
		Title:  "Scalability on " + datagen.DatasetKnowledge + " (mean seconds vs |G|)",
		Header: append([]string{"nodes"}, algoNames(algos)...),
	}
	base := h.Opts.Scale
	for _, frac := range []int{40, 55, 70, 85, 100} {
		scale := base * frac / 100
		spec := InstanceSpec{Dataset: datagen.DatasetKnowledge, Scale: scale}
		row := append([]string{fmt.Sprint(scale)}, h.timeRow(spec, defaultBudget, algos)...)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig10c — runtime vs query size |E_Q|.
func (h *Harness) Fig10c() *Table {
	algos := []Algo{AlgoAnsWb, AlgoAnsWnc, AlgoAnsW, AlgoAnsHeu}
	t := &Table{
		ID:     "Fig 10(c)",
		Title:  "Efficiency vs |E_Q| on " + datagen.DatasetKnowledge,
		Header: append([]string{"|E_Q|"}, algoNames(algos)...),
	}
	for edges := 1; edges <= 6; edges++ {
		spec := InstanceSpec{Dataset: datagen.DatasetKnowledge, Edges: edges}
		row := append([]string{fmt.Sprint(edges)}, h.timeRow(spec, defaultBudget, algos)...)
		t.Rows = append(t.Rows, row)
	}
	return t
}

func (h *Harness) budgetTable(id, dataset string) *Table {
	algos := []Algo{AlgoAnsWb, AlgoAnsWnc, AlgoAnsW, AlgoAnsHeu}
	t := &Table{
		ID:     id,
		Title:  "Efficiency vs budget B on " + dataset,
		Header: append([]string{"B"}, algoNames(algos)...),
	}
	for b := 1; b <= 5; b++ {
		spec := InstanceSpec{Dataset: dataset}
		row := append([]string{fmt.Sprint(b)}, h.timeRow(spec, float64(b), algos)...)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig10d — runtime vs budget on the DBpedia analog.
func (h *Harness) Fig10d() *Table { return h.budgetTable("Fig 10(d)", datagen.DatasetKnowledge) }

// Fig10e — runtime vs budget on the IMDB analog.
func (h *Harness) Fig10e() *Table { return h.budgetTable("Fig 10(e)", datagen.DatasetMovies) }

func (h *Harness) exemplarTable(id, dataset string) *Table {
	algos := []Algo{AlgoAnsWb, AlgoAnsWnc, AlgoAnsW, AlgoAnsHeu}
	t := &Table{
		ID:     id,
		Title:  "Efficiency vs |T| on " + dataset,
		Header: append([]string{"|T|"}, algoNames(algos)...),
	}
	for _, tuples := range []int{5, 10, 15, 20, 25} {
		spec := InstanceSpec{Dataset: dataset, Tuples: tuples}
		row := append([]string{fmt.Sprint(tuples)}, h.timeRow(spec, defaultBudget, algos)...)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig10f — runtime vs exemplar size on the DBpedia analog.
func (h *Harness) Fig10f() *Table { return h.exemplarTable("Fig 10(f)", datagen.DatasetKnowledge) }

// Fig10g — runtime vs exemplar size on the IMDB analog.
func (h *Harness) Fig10g() *Table { return h.exemplarTable("Fig 10(g)", datagen.DatasetMovies) }

// Fig10h — runtime vs query topology.
func (h *Harness) Fig10h() *Table {
	algos := []Algo{AlgoAnsWb, AlgoAnsW, AlgoAnsHeu}
	t := &Table{
		ID:     "Fig 10(h)",
		Title:  "Efficiency vs topology on " + datagen.DatasetProducts,
		Header: append([]string{"topology"}, algoNames(algos)...),
	}
	for _, shape := range []query.Topology{query.TopoStar, query.TopoTree, query.TopoCyclic} {
		edges := 3
		spec := InstanceSpec{Dataset: datagen.DatasetProducts, Shape: shape, Edges: edges}
		row := append([]string{shape.String()}, h.timeRow(spec, defaultBudget, algos)...)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig10i — relative closeness by algorithm (including AnsHeu beam
// sizes) per dataset.
func (h *Harness) Fig10i() *Table {
	algos := []Algo{AlgoFMAnsW, AlgoAnsHeuB, {Name: "AnsHeu", Beam: 1}, AlgoAnsHeu,
		{Name: "AnsHeu", Beam: 5}, AlgoAnsW}
	t := &Table{
		ID:     "Fig 10(i)",
		Title:  "Relative closeness δ (Jaccard vs ground truth)",
		Header: append([]string{"dataset"}, algoNames(algos)...),
	}
	for _, ds := range datagen.AllDatasets() {
		row := append([]string{ds}, h.closenessRow(InstanceSpec{Dataset: ds}, defaultBudget, algos)...)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig10j — relative closeness vs query size.
func (h *Harness) Fig10j() *Table {
	algos := []Algo{{Name: "AnsHeu", Beam: 1}, AlgoAnsHeu, {Name: "AnsHeu", Beam: 5}, AlgoAnsW}
	t := &Table{
		ID:     "Fig 10(j)",
		Title:  "Relative closeness vs |E_Q| on " + datagen.DatasetKnowledge,
		Header: append([]string{"|E_Q|"}, algoNames(algos)...),
	}
	for edges := 1; edges <= 6; edges++ {
		spec := InstanceSpec{Dataset: datagen.DatasetKnowledge, Edges: edges}
		row := append([]string{fmt.Sprint(edges)}, h.closenessRow(spec, defaultBudget, algos)...)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig10k — relative closeness vs budget.
func (h *Harness) Fig10k() *Table {
	algos := []Algo{AlgoAnsHeu, AlgoAnsW}
	t := &Table{
		ID:     "Fig 10(k)",
		Title:  "Relative closeness vs budget B on " + datagen.DatasetKnowledge,
		Header: append([]string{"B"}, algoNames(algos)...),
	}
	// Disturb harder (5 ops) so larger budgets have headroom to help.
	for b := 1; b <= 5; b++ {
		spec := InstanceSpec{Dataset: datagen.DatasetKnowledge, DisturbOps: 5}
		row := append([]string{fmt.Sprint(b)}, h.closenessRow(spec, float64(b), algos)...)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig10l — anytime performance: δ_t at increasing time checkpoints for
// AnsW vs the uninformed AnsHeuB.
func (h *Harness) Fig10l() *Table {
	t := &Table{
		ID:     "Fig 10(l)",
		Title:  "Anytime δ_t on " + datagen.DatasetKnowledge + " (fraction of final answer quality)",
		Header: []string{"checkpoint", "AnsW", "AnsHeuB"},
	}
	spec := InstanceSpec{Dataset: datagen.DatasetKnowledge}
	g := h.GraphFor(datagen.DatasetKnowledge, h.Opts.Scale)
	instances := h.Instances(spec)

	checkpoints := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	deltas := map[string][][]float64{} // algo → per checkpoint list

	for _, aName := range []string{"AnsW", "AnsHeuB"} {
		deltas[aName] = make([][]float64, len(checkpoints))
		for _, inst := range instances {
			type improvement struct {
				at time.Duration
				j  float64
			}
			var trace []improvement
			cfg := h.config(Algo{Name: aName, Beam: 3}, defaultBudget)
			start := time.Now()
			cfg.OnImprove = func(best chase.Answer) {
				trace = append(trace, improvement{at: time.Since(start), j: Jaccard(best.Matches, inst.AnswerStar)})
			}
			w, err := chase.NewWhy(g, inst.Q, inst.E, cfg)
			if err != nil {
				continue
			}
			var total time.Duration
			if aName == "AnsW" {
				w.AnsW()
			} else {
				w.AnsHeuB(3)
			}
			total = time.Since(start)
			base := Jaccard(inst.Answer, inst.AnswerStar)
			for ci, frac := range checkpoints {
				cutoff := time.Duration(float64(total) * frac)
				j := base
				for _, im := range trace {
					if im.at <= cutoff {
						j = im.j
					}
				}
				deltas[aName][ci] = append(deltas[aName][ci], j)
			}
		}
	}
	for ci, frac := range checkpoints {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%% time", frac*100),
			f3(meanF(deltas["AnsW"][ci])),
			f3(meanF(deltas["AnsHeuB"][ci])),
		})
	}
	return t
}

// Fig12a — Why-Many efficiency.
func (h *Harness) Fig12a() *Table {
	algos := []Algo{AlgoFMAnsW, AlgoAnsWb, AlgoAnsW, AlgoApxWhyM}
	t := &Table{
		ID:     "Fig 12(a)",
		Title:  "Why-Many efficiency (mean seconds)",
		Header: append([]string{"dataset"}, algoNames(algos)...),
	}
	for _, ds := range []string{datagen.DatasetKnowledge, datagen.DatasetMovies} {
		spec := InstanceSpec{Dataset: ds, RelaxOnly: true}
		row := append([]string{ds}, h.timeRow(spec, defaultBudget, algos)...)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig12b — Why-Many effectiveness: how many irrelevant matches remain.
func (h *Harness) Fig12b() *Table {
	algos := []Algo{AlgoAnsW, AlgoApxWhyM}
	t := &Table{
		ID:     "Fig 12(b)",
		Title:  "Why-Many effectiveness (mean |IM| before → after; δ vs ground truth)",
		Header: append([]string{"dataset", "|IM| before"}, algoNames(algos)...),
	}
	for _, ds := range []string{datagen.DatasetKnowledge, datagen.DatasetMovies} {
		spec := InstanceSpec{Dataset: ds, RelaxOnly: true}
		g := h.GraphFor(ds, h.Opts.Scale)
		instances := h.Instances(spec)
		var before []float64
		after := make([][]float64, len(algos))
		for _, inst := range instances {
			starSet := make(map[graph.NodeID]bool, len(inst.AnswerStar))
			for _, v := range inst.AnswerStar {
				starSet[v] = true
			}
			imCount := func(matches []graph.NodeID) float64 {
				n := 0
				for _, v := range matches {
					if !starSet[v] {
						n++
					}
				}
				return float64(n)
			}
			before = append(before, imCount(inst.Answer))
			for ai, a := range algos {
				r, err := h.Run(a, g, inst, defaultBudget)
				if err != nil {
					continue
				}
				after[ai] = append(after[ai], imCount(r.Answer.Matches))
			}
		}
		row := []string{ds, f3(meanF(before))}
		for ai := range algos {
			row = append(row, f3(meanF(after[ai])))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig12c — Why-Empty efficiency.
func (h *Harness) Fig12c() *Table {
	algos := []Algo{AlgoAnsWb, AlgoAnsW, AlgoAnsWE}
	t := &Table{
		ID:     "Fig 12(c)",
		Title:  "Why-Empty efficiency (mean seconds)",
		Header: append([]string{"dataset"}, algoNames(algos)...),
	}
	for _, ds := range []string{datagen.DatasetKnowledge, datagen.DatasetProducts} {
		spec := InstanceSpec{Dataset: ds, RefineOnly: true, DisturbOps: 4}
		row := append([]string{ds}, h.timeRow(spec, defaultBudget, algos)...)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Exp5 — simulated user study: nDCG@3 of AnsW's top-3 rewrites against
// the ground-truth relevance oracle, plus precision of the best
// rewrite's answers.
func (h *Harness) Exp5() *Table {
	t := &Table{
		ID:     "Exp-5",
		Title:  "Simulated user study (relevance oracle = ground-truth answers)",
		Header: []string{"dataset", "nDCG@3", "precision"},
	}
	for _, ds := range []string{datagen.DatasetKnowledge, datagen.DatasetProducts} {
		g := h.GraphFor(ds, h.Opts.Scale)
		instances := h.Instances(InstanceSpec{Dataset: ds})
		var ndcgs, precisions []float64
		for _, inst := range instances {
			w, err := chase.NewWhy(g, inst.Q, inst.E, h.config(AlgoAnsW, defaultBudget))
			if err != nil {
				continue
			}
			top := w.TopK(3)
			gains := make([]float64, len(top))
			for i, a := range top {
				gains[i] = Jaccard(a.Matches, inst.AnswerStar)
			}
			ndcgs = append(ndcgs, ndcg(gains))

			starSet := make(map[graph.NodeID]bool, len(inst.AnswerStar))
			for _, v := range inst.AnswerStar {
				starSet[v] = true
			}
			if len(top[0].Matches) > 0 {
				rel := 0
				for _, v := range top[0].Matches {
					if starSet[v] {
						rel++
					}
				}
				precisions = append(precisions, float64(rel)/float64(len(top[0].Matches)))
			}
		}
		t.Rows = append(t.Rows, []string{ds, f3(meanF(ndcgs)), f3(meanF(precisions))})
	}
	return t
}

// ndcg computes nDCG over a system-ordered gain list: DCG of the given
// order divided by DCG of the ideal (descending) order.
func ndcg(gains []float64) float64 {
	dcg := 0.0
	for i, g := range gains {
		dcg += g / math.Log2(float64(i)+2)
	}
	ideal := append([]float64(nil), gains...)
	sort.Sort(sort.Reverse(sort.Float64Slice(ideal)))
	idcg := 0.0
	for i, g := range ideal {
		idcg += g / math.Log2(float64(i)+2)
	}
	if idcg == 0 {
		return 1
	}
	return dcg / idcg
}

func algoNames(algos []Algo) []string {
	out := make([]string, len(algos))
	for i, a := range algos {
		out[i] = a.String()
	}
	return out
}
