// Package bench regenerates the paper's evaluation (§7): one driver per
// figure, each running the algorithm suite over generated Why-question
// workloads and reporting the same rows/series the paper plots.
// Absolute numbers differ from the paper's testbed; the comparisons
// (which algorithm wins, by roughly what factor, and how curves trend)
// are the reproduction target (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"wqe/internal/chase"
	"wqe/internal/datagen"
	"wqe/internal/distindex"
	"wqe/internal/graph"
	"wqe/internal/match"
	"wqe/internal/query"
)

// Options scales the experiment harness.
type Options struct {
	// Scale is the approximate node count per generated dataset.
	Scale int
	// Queries is the number of Why-questions per measurement point (the
	// paper uses 50).
	Queries int
	// Seed drives all generation.
	Seed int64
	// MaxSteps caps chase steps per run so unpruned variants terminate.
	MaxSteps int
	// TimeLimit caps each algorithm run (anytime cutoff); 0 = none.
	TimeLimit time.Duration
}

// DefaultOptions is sized for the CLI experiment runner.
func DefaultOptions() Options {
	return Options{Scale: 12000, Queries: 20, Seed: 7, MaxSteps: 4000}
}

// QuickOptions is sized for `go test -bench`: small enough that the
// full figure suite regenerates in a few minutes on one core.
func QuickOptions() Options {
	return Options{Scale: 1500, Queries: 3, Seed: 7, MaxSteps: 600}
}

// Harness caches generated graphs and workloads across experiments.
type Harness struct {
	Opts      Options
	graphs    map[string]*graph.Graph
	instances map[string][]*datagen.WhyInstance
}

// New returns a harness.
func New(opts Options) *Harness {
	if opts.Scale <= 0 {
		opts = DefaultOptions()
	}
	return &Harness{
		Opts:      opts,
		graphs:    map[string]*graph.Graph{},
		instances: map[string][]*datagen.WhyInstance{},
	}
}

// GraphFor returns (building and caching) the dataset graph at the
// harness scale.
//
// invariant: callers pass one of the datagen.Dataset* constants, for
// which Generate is total; the panic below is unreachable and exists to
// keep benchmark call sites free of error plumbing.
func (h *Harness) GraphFor(dataset string, scale int) *graph.Graph {
	key := fmt.Sprintf("%s/%d", dataset, scale)
	if g, ok := h.graphs[key]; ok {
		return g
	}
	g, err := datagen.Generate(dataset, scale, h.Opts.Seed)
	if err != nil {
		panic(err)
	}
	h.graphs[key] = g
	return g
}

// InstanceSpec pins down one workload point.
type InstanceSpec struct {
	Dataset    string
	Scale      int // 0 = harness scale
	Edges      int // |E_Q|; 0 = 2
	Shape      query.Topology
	Tuples     int // |T|; 0 = 5
	DisturbOps int // 0 = 3
	RefineOnly bool
	RelaxOnly  bool
}

func (s InstanceSpec) withDefaults(h *Harness) InstanceSpec {
	if s.Scale == 0 {
		s.Scale = h.Opts.Scale
	}
	if s.Edges == 0 {
		s.Edges = 2
	}
	if s.Shape == query.TopoSingleton {
		s.Shape = query.TopoTree
	}
	if s.Tuples == 0 {
		s.Tuples = 5
	}
	if s.DisturbOps == 0 {
		s.DisturbOps = 3
	}
	return s
}

func (s InstanceSpec) key() string {
	return fmt.Sprintf("%s/%d/e%d/s%d/t%d/d%d/r%v/x%v",
		s.Dataset, s.Scale, s.Edges, s.Shape, s.Tuples, s.DisturbOps, s.RefineOnly, s.RelaxOnly)
}

// Instances returns (generating and caching) the Why-question workload
// for a spec.
func (h *Harness) Instances(spec InstanceSpec) []*datagen.WhyInstance {
	spec = spec.withDefaults(h)
	key := spec.key()
	if inst, ok := h.instances[key]; ok {
		return inst
	}
	g := h.GraphFor(spec.Dataset, spec.Scale)
	m := match.NewMatcher(g, distindex.NewBFS(g), nil)
	rng := rand.New(rand.NewSource(h.Opts.Seed*131 + int64(len(key))))
	var out []*datagen.WhyInstance
	want := h.Opts.Queries
	for tries := 0; len(out) < want && tries < want*40; tries++ {
		inst, ok := datagen.GenWhy(g, m, datagen.WhySpec{
			Query: datagen.QuerySpec{
				Shape:         spec.Shape,
				Edges:         spec.Edges,
				MaxPredicates: 3,
				PathEdgeProb:  0.25,
			},
			DisturbOps: spec.DisturbOps,
			MaxTuples:  spec.Tuples,
			RefineOnly: spec.RefineOnly,
			RelaxOnly:  spec.RelaxOnly,
		}, rng)
		if ok {
			out = append(out, inst)
		}
	}
	h.instances[key] = out
	return out
}

// Algo names an algorithm configuration the experiments compare.
type Algo struct {
	Name string
	Beam int // AnsHeu/AnsHeuB beam width
}

// The algorithm suite of §7.
var (
	AlgoAnsW    = Algo{Name: "AnsW"}
	AlgoAnsWnc  = Algo{Name: "AnsWnc"}
	AlgoAnsWb   = Algo{Name: "AnsWb"}
	AlgoAnsHeu  = Algo{Name: "AnsHeu", Beam: 3}
	AlgoAnsHeuB = Algo{Name: "AnsHeuB", Beam: 3}
	AlgoFMAnsW  = Algo{Name: "FMAnsW"}
	AlgoApxWhyM = Algo{Name: "ApxWhyM"}
	AlgoAnsWE   = Algo{Name: "AnsWE"}
)

func (a Algo) String() string {
	if a.Beam > 0 && a.Beam != 3 {
		return fmt.Sprintf("%s(k=%d)", a.Name, a.Beam)
	}
	return a.Name
}

// config builds the chase configuration an algorithm variant uses.
func (h *Harness) config(a Algo, budget float64) chase.Config {
	cfg := chase.DefaultConfig()
	cfg.Budget = budget
	cfg.MaxSteps = h.Opts.MaxSteps
	cfg.TimeLimit = h.Opts.TimeLimit
	switch a.Name {
	case "AnsWnc":
		cfg.Cache = false
	case "AnsWb", "FMAnsW":
		cfg.Cache = false
		cfg.Prune = false
	}
	return cfg
}

// RunResult is one algorithm run over one instance.
type RunResult struct {
	Answer  chase.Answer
	Stats   chase.Stats
	Elapsed time.Duration
}

// Run executes an algorithm on one instance with the given budget.
func (h *Harness) Run(a Algo, g *graph.Graph, inst *datagen.WhyInstance, budget float64) (RunResult, error) {
	w, err := chase.NewWhy(g, inst.Q, inst.E, h.config(a, budget))
	if err != nil {
		return RunResult{}, err
	}
	start := time.Now()
	var ans chase.Answer
	switch a.Name {
	case "AnsW", "AnsWnc", "AnsWb":
		ans = w.AnsW()
	case "AnsHeu":
		ans = w.AnsHeu(a.Beam)
	case "AnsHeuB":
		ans = w.AnsHeuB(a.Beam)
	case "FMAnsW":
		ans = w.FMAnsW()
	case "ApxWhyM":
		ans = w.ApxWhyM()
	case "AnsWE":
		ans = w.AnsWE()
	default:
		return RunResult{}, fmt.Errorf("bench: unknown algorithm %q", a.Name)
	}
	return RunResult{Answer: ans, Stats: w.Stats, Elapsed: time.Since(start)}, nil
}

// Jaccard computes the relative-closeness surrogate of Exp-2: the
// Jaccard coefficient of an answer against the ground truth.
func Jaccard(a, b []graph.NodeID) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inA := make(map[graph.NodeID]bool, len(a))
	for _, v := range a {
		inA[v] = true
	}
	inter := 0
	for _, v := range b {
		if inA[v] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Table is one printable experiment result.
type Table struct {
	ID     string // e.g. "Fig 10(a)"
	Title  string
	Header []string
	Rows   [][]string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	var out strings.Builder
	fmt.Fprintf(&out, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		fmt.Fprintln(&out, strings.TrimRight(b.String(), " "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(&out)
	//lint:ignore errdrop table rendering is best-effort console output
	io.WriteString(w, out.String())
}

func secs(d time.Duration) string { return fmt.Sprintf("%.3fs", d.Seconds()) }
func f3(v float64) string         { return fmt.Sprintf("%.3f", v) }

func mean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range ds {
		total += d
	}
	return total / time.Duration(len(ds))
}

func meanF(fs []float64) float64 {
	if len(fs) == 0 {
		return 0
	}
	var total float64
	for _, f := range fs {
		total += f
	}
	return total / float64(len(fs))
}
