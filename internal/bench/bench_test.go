package bench

import (
	"strings"
	"testing"
	"time"

	"wqe/internal/datagen"
	"wqe/internal/graph"
	"wqe/internal/query"
)

// microOptions keeps experiment smoke tests fast.
func microOptions() Options {
	return Options{Scale: 900, Queries: 2, Seed: 3, MaxSteps: 400}
}

// TestExperimentRegistry: every listed experiment produces a non-empty,
// well-formed table at micro scale.
func TestExperimentRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are slow")
	}
	h := New(microOptions())
	for _, e := range Experiments {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl := e.Run(h)
			if tbl.ID == "" || tbl.Title == "" {
				t.Error("table missing identification")
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("table has no rows")
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Errorf("row width %d != header width %d", len(row), len(tbl.Header))
				}
			}
			var sb strings.Builder
			tbl.Fprint(&sb)
			if !strings.Contains(sb.String(), tbl.ID) {
				t.Error("printed table misses its id")
			}
		})
	}
	if _, ok := Lookup("1a"); !ok {
		t.Error("Lookup(1a) failed")
	}
	if _, ok := Lookup("zz"); ok {
		t.Error("Lookup(zz) should fail")
	}
}

func TestHarnessCaching(t *testing.T) {
	h := New(microOptions())
	g1 := h.GraphFor(datagen.DatasetProducts, 900)
	g2 := h.GraphFor(datagen.DatasetProducts, 900)
	if g1 != g2 {
		t.Error("graphs must be cached per dataset+scale")
	}
	spec := InstanceSpec{Dataset: datagen.DatasetProducts}
	i1 := h.Instances(spec)
	i2 := h.Instances(spec)
	if len(i1) == 0 {
		t.Fatal("no instances generated")
	}
	if &i1[0] == nil || len(i1) != len(i2) {
		t.Error("instances must be cached")
	}
	for i := range i1 {
		if i1[i] != i2[i] {
			t.Error("instance cache returned different objects")
		}
	}
}

func TestRunAlgorithms(t *testing.T) {
	h := New(microOptions())
	g := h.GraphFor(datagen.DatasetProducts, 900)
	instances := h.Instances(InstanceSpec{Dataset: datagen.DatasetProducts})
	if len(instances) == 0 {
		t.Skip("no instances at micro scale")
	}
	inst := instances[0]
	for _, a := range []Algo{AlgoAnsW, AlgoAnsWnc, AlgoAnsWb, AlgoAnsHeu, AlgoAnsHeuB, AlgoFMAnsW, AlgoApxWhyM, AlgoAnsWE} {
		r, err := h.Run(a, g, inst, 3)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if r.Elapsed <= 0 {
			t.Errorf("%s: no elapsed time", a)
		}
	}
	if _, err := h.Run(Algo{Name: "nope"}, g, inst, 3); err == nil {
		t.Error("unknown algorithm must error")
	}
}

func TestJaccard(t *testing.T) {
	n := func(ids ...graph.NodeID) []graph.NodeID { return ids }
	cases := []struct {
		a, b []graph.NodeID
		want float64
	}{
		{nil, nil, 1},
		{n(1, 2), nil, 0},
		{n(1, 2), n(1, 2), 1},
		{n(1, 2), n(2, 3), 1.0 / 3},
	}
	for _, c := range cases {
		if got := Jaccard(c.a, c.b); got != c.want {
			t.Errorf("Jaccard(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestNDCG(t *testing.T) {
	if got := ndcg([]float64{1, 0.5, 0.2}); got != 1 {
		t.Errorf("ideal order nDCG = %v, want 1", got)
	}
	if got := ndcg([]float64{0, 0, 0}); got != 1 {
		t.Errorf("all-zero gains nDCG = %v, want 1 (degenerate)", got)
	}
	rev := ndcg([]float64{0.2, 0.5, 1})
	if rev >= 1 || rev <= 0 {
		t.Errorf("reversed order nDCG = %v, want in (0,1)", rev)
	}
}

func TestTableFprint(t *testing.T) {
	tbl := &Table{
		ID:     "Fig X",
		Title:  "demo",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"xxxxx", "y"}},
	}
	var sb strings.Builder
	tbl.Fprint(&sb)
	out := sb.String()
	if !strings.Contains(out, "Fig X — demo") || !strings.Contains(out, "xxxxx") {
		t.Errorf("bad table rendering:\n%s", out)
	}
}

func TestInstanceSpecDefaults(t *testing.T) {
	h := New(microOptions())
	s := InstanceSpec{Dataset: datagen.DatasetMovies}.withDefaults(h)
	if s.Edges != 2 || s.Tuples != 5 || s.DisturbOps != 3 || s.Shape != query.TopoTree {
		t.Errorf("defaults wrong: %+v", s)
	}
	if s.Scale != 900 {
		t.Errorf("scale default wrong: %d", s.Scale)
	}
}

func TestMeanHelpers(t *testing.T) {
	if mean(nil) != 0 || meanF(nil) != 0 {
		t.Error("empty means must be zero")
	}
	if got := mean([]time.Duration{time.Second, 3 * time.Second}); got != 2*time.Second {
		t.Errorf("mean = %v", got)
	}
	if got := meanF([]float64{1, 2, 3}); got != 2 {
		t.Errorf("meanF = %v", got)
	}
}
