package bench

import (
	"fmt"
	"time"

	"wqe/internal/chase"
	"wqe/internal/datagen"
)

// The ablation experiments back the design choices DESIGN.md §5 calls
// out; they have no figure counterpart in the paper.
func init() {
	Experiments = append(Experiments,
		struct {
			ID  string
			Run func(*Harness) *Table
		}{"a1", (*Harness).AblationCacheCapacity},
		struct {
			ID  string
			Run func(*Harness) *Table
		}{"a2", (*Harness).AblationDistBackend},
		struct {
			ID  string
			Run func(*Harness) *Table
		}{"a3", (*Harness).AblationAnalysisCap},
	)
}

// AblationCacheCapacity sweeps the star-view cache size: runtime and
// hit rate of AnsW per capacity (0 disables caching).
func (h *Harness) AblationCacheCapacity() *Table {
	t := &Table{
		ID:     "Ablation A1",
		Title:  "Star-view cache capacity (AnsW on " + datagen.DatasetKnowledge + ")",
		Header: []string{"capacity", "mean time", "hit rate"},
	}
	spec := InstanceSpec{Dataset: datagen.DatasetKnowledge}
	g := h.GraphFor(datagen.DatasetKnowledge, h.Opts.Scale)
	instances := h.Instances(spec)
	for _, cap := range []int{0, 16, 128, 1024, 8192} {
		var times []time.Duration
		var hits, total int64
		for _, inst := range instances {
			cfg := h.config(AlgoAnsW, defaultBudget)
			cfg.Cache = cap > 0
			cfg.CacheCap = cap
			w, err := chase.NewWhy(g, inst.Q, inst.E, cfg)
			if err != nil {
				continue
			}
			start := time.Now()
			w.AnsW()
			times = append(times, time.Since(start))
			hits += w.Stats.CacheHits
			total += w.Stats.CacheHits + w.Stats.CacheMiss
		}
		rate := "-"
		if total > 0 {
			rate = fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(total))
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(cap), secs(mean(times)), rate})
	}
	return t
}

// AblationDistBackend compares the bounded-BFS oracle against Pruned
// Landmark Labeling, including the index build cost.
func (h *Harness) AblationDistBackend() *Table {
	t := &Table{
		ID:     "Ablation A2",
		Title:  "Distance oracle backend (AnsW on " + datagen.DatasetMovies + ")",
		Header: []string{"backend", "mean time", "setup time"},
	}
	spec := InstanceSpec{Dataset: datagen.DatasetMovies}
	g := h.GraphFor(datagen.DatasetMovies, h.Opts.Scale)
	instances := h.Instances(spec)
	for _, backend := range []string{"bfs", "pll"} {
		var times []time.Duration
		var setup time.Duration
		for i, inst := range instances {
			cfg := h.config(AlgoAnsW, defaultBudget)
			cfg.DistBackend = backend
			s0 := time.Now()
			w, err := chase.NewWhy(g, inst.Q, inst.E, cfg)
			if err != nil {
				continue
			}
			if i == 0 {
				setup = time.Since(s0) // dominated by index construction
			}
			start := time.Now()
			w.AnsW()
			times = append(times, time.Since(start))
		}
		t.Rows = append(t.Rows, []string{backend, secs(mean(times)), secs(setup)})
	}
	return t
}

// AblationAnalysisCap sweeps the per-state neighborhood-analysis cap:
// runtime vs answer quality.
func (h *Harness) AblationAnalysisCap() *Table {
	t := &Table{
		ID:     "Ablation A3",
		Title:  "Picky-generation analysis cap (AnsW on " + datagen.DatasetOffshore + ")",
		Header: []string{"cap", "mean time", "δ"},
	}
	spec := InstanceSpec{Dataset: datagen.DatasetOffshore}
	g := h.GraphFor(datagen.DatasetOffshore, h.Opts.Scale)
	instances := h.Instances(spec)
	for _, cap := range []int{15, 60, 240, 960} {
		var times []time.Duration
		var deltas []float64
		for _, inst := range instances {
			cfg := h.config(AlgoAnsW, defaultBudget)
			cfg.MaxAnalysis = cap
			w, err := chase.NewWhy(g, inst.Q, inst.E, cfg)
			if err != nil {
				continue
			}
			start := time.Now()
			a := w.AnsW()
			times = append(times, time.Since(start))
			deltas = append(deltas, Jaccard(a.Matches, inst.AnswerStar))
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(cap), secs(mean(times)), f3(meanF(deltas))})
	}
	return t
}
