// Shared conventions of the repo's benchmark emitters (the
// TestEmitXxxBench tests behind make bench-*): every artifact records
// "gomaxprocs", single-core runs are loudly flagged, and a single-core
// run never silently clobbers a multi-core recording. The helpers were
// grown in internal/chase's batch benchmark and are extracted here so
// the serving benchmark (cmd/wqe-serve) and future emitters share one
// guard instead of re-deriving it.

package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
)

// WarnSingleCore makes a one-core measurement impossible to misread:
// every speedup in the artifact is ~1.0x by construction on such a
// machine, and the artifact must be regenerated on a multi-core runner
// (CI does this) before its numbers mean anything.
func WarnSingleCore(t testing.TB) {
	t.Helper()
	if runtime.GOMAXPROCS(0) > 1 {
		return
	}
	t.Log("*** WARNING *********************************************************")
	t.Log("*** This benchmark ran with GOMAXPROCS=1: every parallel path     ***")
	t.Log("*** degenerates to sequential, so speedups are ~1.0x by           ***")
	t.Log("*** construction. Regenerate the JSON artifact on a machine with  ***")
	t.Log("*** >=4 cores (make bench-* targets run in CI).                   ***")
	t.Log("*********************************************************************")
}

// GuardSingleCoreOverwrite skips the emitter when it would replace an
// existing multi-core recording with a single-core one: a laptop or
// container run must not silently clobber CI's meaningful numbers with
// ~1.0x noise. Every bench JSON schema carries "gomaxprocs", so the
// guard reads it from the existing artifact. WQE_BENCH_FORCE=1
// overrides (for deliberately re-baselining on a small machine).
func GuardSingleCoreOverwrite(t testing.TB, out string) {
	t.Helper()
	if skip, prev := ShouldSkipOverwrite(out, runtime.GOMAXPROCS(0),
		os.Getenv("WQE_BENCH_FORCE") == "1"); skip {
		t.Skipf("refusing to overwrite %s (recorded with GOMAXPROCS=%d) from a single-core run; set WQE_BENCH_FORCE=1 to override", out, prev)
	}
}

// ShouldSkipOverwrite is the guard's decision: skip iff this run is
// single-core, unforced, and the existing artifact at out records a
// multi-core run (whose GOMAXPROCS it returns).
func ShouldSkipOverwrite(out string, gomaxprocs int, force bool) (bool, int) {
	if gomaxprocs > 1 || force {
		return false, 0
	}
	data, err := os.ReadFile(out)
	if err != nil {
		return false, 0 // nothing to clobber
	}
	var prev struct {
		GOMAXPROCS int `json:"gomaxprocs"`
	}
	if json.Unmarshal(data, &prev) != nil || prev.GOMAXPROCS <= 1 {
		return false, 0 // unreadable, or itself single-core: nothing of value lost
	}
	return true, prev.GOMAXPROCS
}
