// Package exemplar implements the exemplar model of Section 2.2: an
// exemplar E = (T, C) is a table T of tuple patterns over the graph's
// attributes (constants, variables, wildcards) plus a conjunction C of
// constraint literals over the variables. The package computes the
// representation rep(E, V) (the maximal node set satisfying E), the
// tuple/answer closeness measures of Section 3, and the RM/IM/RC/IC
// classification that drives query rewriting.
package exemplar

import (
	"fmt"
	"sort"
	"strings"

	"wqe/internal/graph"
)

// CellKind discriminates tuple pattern cells.
type CellKind uint8

const (
	// Const cells hold a constant the matching node must be close to.
	Const CellKind = iota
	// Var cells bind the node's attribute value to a named variable.
	Var
	// Wildcard cells ('_') match anything.
	Wildcard
)

// Cell is one entry t_i.A_j of a tuple pattern.
type Cell struct {
	Kind CellKind
	Val  graph.Value // for Const
	Var  string      // for Var
}

// C returns a constant cell.
func C(v graph.Value) Cell { return Cell{Kind: Const, Val: v} }

// V returns a variable cell.
func V(name string) Cell { return Cell{Kind: Var, Var: name} }

// W returns a wildcard cell.
func W() Cell { return Cell{Kind: Wildcard} }

// TuplePattern is one row of T: attribute → cell. Attributes absent
// from the map are implicit wildcards that do not count toward the
// closeness denominator |A(t)|.
type TuplePattern map[string]Cell

// Constraint is one literal of C: either a variable literal
// "x op y" (IsVar) or a constant literal "x op c".
type Constraint struct {
	Left  string // variable name
	Op    graph.Op
	IsVar bool
	Right string      // variable name when IsVar
	Val   graph.Value // constant when !IsVar
}

// String renders the constraint.
func (c Constraint) String() string {
	if c.IsVar {
		return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
	}
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Val)
}

// Exemplar is E = (T, C).
type Exemplar struct {
	Tuples      []TuplePattern
	Constraints []Constraint
}

// binding locates a variable: which tuple row and attribute it names.
type binding struct {
	tuple int
	attr  string
}

// bindings maps every variable to its (unique) cell. It errors on
// unbound constraint variables and on variables bound twice: the
// paper's variables x_ij name exactly one cell.
func (e *Exemplar) bindings() (map[string]binding, error) {
	b := make(map[string]binding)
	for ti, t := range e.Tuples {
		for _, attr := range t.SortedAttrs() {
			cell := t[attr]
			if cell.Kind != Var {
				continue
			}
			if prev, dup := b[cell.Var]; dup {
				return nil, fmt.Errorf("exemplar: variable %q bound at both t%d.%s and t%d.%s",
					cell.Var, prev.tuple, prev.attr, ti, attr)
			}
			b[cell.Var] = binding{tuple: ti, attr: attr}
		}
	}
	for _, c := range e.Constraints {
		if _, ok := b[c.Left]; !ok {
			return nil, fmt.Errorf("exemplar: constraint %s uses unbound variable %q", c, c.Left)
		}
		if c.IsVar {
			if _, ok := b[c.Right]; !ok {
				return nil, fmt.Errorf("exemplar: constraint %s uses unbound variable %q", c, c.Right)
			}
		}
	}
	return b, nil
}

// Validate checks the exemplar for well-formedness.
func (e *Exemplar) Validate() error {
	if len(e.Tuples) == 0 {
		return fmt.Errorf("exemplar: no tuple patterns")
	}
	_, err := e.bindings()
	return err
}

// String renders E compactly.
func (e *Exemplar) String() string {
	var b strings.Builder
	for i, t := range e.Tuples {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "t%d⟨", i)
		attrs := make([]string, 0, len(t))
		for a := range t {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		for j, a := range attrs {
			if j > 0 {
				b.WriteString(", ")
			}
			cell := t[a]
			switch cell.Kind {
			case Const:
				fmt.Fprintf(&b, "%s=%s", a, cell.Val)
			case Var:
				fmt.Fprintf(&b, "%s=%s", a, cell.Var)
			case Wildcard:
				fmt.Fprintf(&b, "%s=_", a)
			}
		}
		b.WriteString("⟩")
	}
	for _, c := range e.Constraints {
		fmt.Fprintf(&b, "; %s", c)
	}
	return b.String()
}

// FromEntities builds the "set of entities from G" form of an exemplar
// (§2.2 Remarks): one tuple pattern per entity, with constant cells for
// the listed attributes the entity carries. An empty attrs list copies
// the entity's whole tuple. Duplicate rows are merged.
func FromEntities(g *graph.Graph, entities []graph.NodeID, attrs []string) *Exemplar {
	e := &Exemplar{}
	seen := map[string]bool{}
	for _, v := range entities {
		t := TuplePattern{}
		if len(attrs) == 0 {
			for _, av := range g.Tuple(v) {
				t[g.Attrs.Name(av.Attr)] = C(av.Val)
			}
		} else {
			for _, a := range attrs {
				if val, ok := g.Attr(v, a); ok {
					t[a] = C(val)
				}
			}
		}
		if len(t) == 0 {
			continue
		}
		key := t.key()
		if !seen[key] {
			seen[key] = true
			e.Tuples = append(e.Tuples, t)
		}
	}
	return e
}

// SortedAttrs returns the pattern's attribute names in sorted order,
// the canonical iteration order everywhere tuple cells are visited
// (closeness sums, variable binding, serialization): raw map order
// would leak Go's iteration randomness into float rounding and error
// messages.
func (t TuplePattern) SortedAttrs() []string {
	attrs := make([]string, 0, len(t))
	for a := range t {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	return attrs
}

func (t TuplePattern) key() string {
	var b strings.Builder
	for _, a := range t.SortedAttrs() {
		cell := t[a]
		fmt.Fprintf(&b, "%s:%d:%s:%s|", a, cell.Kind, cell.Val, cell.Var)
	}
	return b.String()
}
