package exemplar

import (
	"wqe/internal/graph"
)

// Options tunes the vsim predicate and the closeness measure.
type Options struct {
	// Theta is the vsim threshold: v ~ t iff cl(v, t) ≥ Theta.
	// The default 1 requires exact constant matches (the paper's own
	// example predicate).
	Theta float64
	// Lambda is the irrelevant-match penalty factor λ of cl(Q(G), E).
	Lambda float64
}

// DefaultOptions mirrors the paper's running examples: exact matching
// and λ = 1.
func DefaultOptions() Options { return Options{Theta: 1, Lambda: 1} }

// cellSim computes cl(v.A, t.A) ∈ [0,1] for a constant cell: numeric
// values score 1 − |a−c| / range(A); strings score by normalized edit
// similarity (1 when equal).
func cellSim(have, want graph.Value, dom *graph.Domain) float64 {
	if have.Kind != want.Kind {
		return 0
	}
	if have.Kind == graph.Number {
		diff := have.Num - want.Num
		if diff < 0 {
			diff = -diff
		}
		s := 1 - diff/dom.Range()
		if s < 0 {
			return 0
		}
		return s
	}
	if have.Str == want.Str {
		return 1
	}
	return stringSim(have.Str, want.Str)
}

// stringSim is a normalized Levenshtein similarity: 1 − dist/maxLen.
func stringSim(a, b string) float64 {
	if a == b {
		return 1
	}
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			m := prev[j] + 1              // deletion
			if v := cur[j-1] + 1; v < m { // insertion
				m = v
			}
			if v := prev[j-1] + cost; v < m { // substitution
				m = v
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	maxLen := len(ra)
	if len(rb) > maxLen {
		maxLen = len(rb)
	}
	return 1 - float64(prev[len(rb)])/float64(maxLen)
}

// TupleCloseness computes cl(v, t) = Σ_A cl(v.A, t.A) / |A(t)| over the
// attributes A(t) explicitly present in the tuple pattern. Variable and
// wildcard cells contribute 1 when the node carries the attribute
// (variables must be evaluable); a missing attribute contributes 0 for
// Const and Var cells and 1 for explicit wildcards.
func TupleCloseness(g *graph.Graph, v graph.NodeID, t TuplePattern) float64 {
	if len(t) == 0 {
		return 0
	}
	// Sum in sorted attribute order: float addition rounds differently
	// under different orders, and closeness values are compared exactly
	// against θ and each other downstream.
	var total float64
	for _, attr := range t.SortedAttrs() {
		cell := t[attr]
		val, ok := g.Attr(v, attr)
		switch cell.Kind {
		case Wildcard:
			total++
		case Var:
			if ok {
				total++
			}
		case Const:
			if ok {
				total += cellSim(val, cell.Val, g.ActiveDomain(attr))
			}
		}
	}
	return total / float64(len(t))
}
