package exemplar

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"wqe/internal/graph"
)

// jsonExemplar is the on-disk shape used by the CLI tools:
//
//	{
//	  "tuples": [
//	    {"Display": {"const": 6.2}, "Storage": {"var": "x1"}, "Price": {"wildcard": true}},
//	    {"Display": {"const": 6.3}, "Storage": {"var": "x2"}, "Price": {"var": "x3"}}
//	  ],
//	  "constraints": [
//	    {"left": "x3", "op": "<", "const": 800},
//	    {"left": "x1", "op": ">", "right": "x2"}
//	  ]
//	}
type jsonExemplar struct {
	Tuples      []map[string]jsonCell `json:"tuples"`
	Constraints []jsonConstraint      `json:"constraints,omitempty"`
}

type jsonCell struct {
	Const    json.RawMessage `json:"const,omitempty"`
	Var      string          `json:"var,omitempty"`
	Wildcard bool            `json:"wildcard,omitempty"`
}

type jsonConstraint struct {
	Left  string          `json:"left"`
	Op    string          `json:"op"`
	Right string          `json:"right,omitempty"`
	Const json.RawMessage `json:"const,omitempty"`
}

// WriteJSON serializes the exemplar.
func (e *Exemplar) WriteJSON(w io.Writer) error {
	je := jsonExemplar{}
	for _, t := range e.Tuples {
		jt := map[string]jsonCell{}
		for _, attr := range t.SortedAttrs() {
			cell := t[attr]
			switch cell.Kind {
			case Const:
				raw, err := marshalValue(cell.Val)
				if err != nil {
					return err
				}
				jt[attr] = jsonCell{Const: raw}
			case Var:
				jt[attr] = jsonCell{Var: cell.Var}
			case Wildcard:
				jt[attr] = jsonCell{Wildcard: true}
			}
		}
		je.Tuples = append(je.Tuples, jt)
	}
	for _, c := range e.Constraints {
		jc := jsonConstraint{Left: c.Left, Op: c.Op.String()}
		if c.IsVar {
			jc.Right = c.Right
		} else {
			raw, err := marshalValue(c.Val)
			if err != nil {
				return err
			}
			jc.Const = raw
		}
		je.Constraints = append(je.Constraints, jc)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(je)
}

// ReadJSON parses an exemplar in the WriteJSON shape and validates it.
func ReadJSON(r io.Reader) (*Exemplar, error) {
	var je jsonExemplar
	if err := json.NewDecoder(r).Decode(&je); err != nil {
		return nil, fmt.Errorf("exemplar: decode: %w", err)
	}
	e := &Exemplar{}
	for ti, jt := range je.Tuples {
		t := TuplePattern{}
		// Sorted so a malformed cell always yields the same error.
		attrs := make([]string, 0, len(jt))
		for attr := range jt {
			attrs = append(attrs, attr)
		}
		sort.Strings(attrs)
		for _, attr := range attrs {
			jc := jt[attr]
			switch {
			case jc.Wildcard:
				t[attr] = W()
			case jc.Var != "":
				t[attr] = V(jc.Var)
			case jc.Const != nil:
				val, err := unmarshalValue(jc.Const)
				if err != nil {
					return nil, fmt.Errorf("exemplar: tuple %d attr %q: %w", ti, attr, err)
				}
				t[attr] = C(val)
			default:
				return nil, fmt.Errorf("exemplar: tuple %d attr %q: cell must set const, var, or wildcard", ti, attr)
			}
		}
		e.Tuples = append(e.Tuples, t)
	}
	for ci, jc := range je.Constraints {
		op, err := graph.ParseOp(jc.Op)
		if err != nil {
			return nil, fmt.Errorf("exemplar: constraint %d: %w", ci, err)
		}
		c := Constraint{Left: jc.Left, Op: op}
		switch {
		case jc.Right != "":
			c.IsVar = true
			c.Right = jc.Right
		case jc.Const != nil:
			val, err := unmarshalValue(jc.Const)
			if err != nil {
				return nil, fmt.Errorf("exemplar: constraint %d: %w", ci, err)
			}
			c.Val = val
		default:
			return nil, fmt.Errorf("exemplar: constraint %d: needs right or const", ci)
		}
		e.Constraints = append(e.Constraints, c)
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}

func marshalValue(v graph.Value) (json.RawMessage, error) {
	if v.Kind == graph.Number {
		return json.Marshal(v.Num)
	}
	return json.Marshal(v.Str)
}

func unmarshalValue(raw json.RawMessage) (graph.Value, error) {
	var num float64
	if err := json.Unmarshal(raw, &num); err == nil {
		return graph.N(num), nil
	}
	var s string
	if err := json.Unmarshal(raw, &s); err != nil {
		return graph.Value{}, fmt.Errorf("value is neither number nor string")
	}
	return graph.S(s), nil
}
