package exemplar

import (
	"math/rand"
	"testing"

	"wqe/internal/graph"
)

func benchGraph(n int) *graph.Graph {
	rng := rand.New(rand.NewSource(1))
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode("Phone", map[string]graph.Value{
			"Display": graph.N([]float64{5.5, 6.2, 6.3}[rng.Intn(3)]),
			"Storage": graph.N(float64(int(16) << rng.Intn(4))),
			"Price":   graph.N(float64(300 + 50*rng.Intn(14))),
		})
	}
	return g
}

func benchExemplar() *Exemplar {
	return &Exemplar{
		Tuples: []TuplePattern{
			{"Display": C(graph.N(6.2)), "Storage": V("x1"), "Price": W()},
			{"Display": C(graph.N(6.3)), "Storage": V("x2"), "Price": V("x3")},
		},
		Constraints: []Constraint{
			{Left: "x3", Op: graph.LT, Val: graph.N(800)},
			{Left: "x1", Op: graph.GT, IsVar: true, Right: "x2"},
		},
	}
}

// BenchmarkNewEval measures compiling an exemplar (scan + rep fixpoint)
// over a 10k-node graph.
func BenchmarkNewEval(b *testing.B) {
	g := benchGraph(10000)
	e := benchExemplar()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewEval(g, e, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSatisfiedBy measures the per-chase-step answer check.
func BenchmarkSatisfiedBy(b *testing.B) {
	g := benchGraph(10000)
	ev, err := NewEval(g, benchExemplar(), DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	answer := make([]graph.NodeID, 200)
	for i := range answer {
		answer[i] = graph.NodeID(i * 37 % 10000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.SatisfiedBy(answer)
	}
}

// BenchmarkCloseness measures the per-state closeness computation.
func BenchmarkCloseness(b *testing.B) {
	g := benchGraph(10000)
	ev, err := NewEval(g, benchExemplar(), DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	answer := make([]graph.NodeID, 500)
	for i := range answer {
		answer[i] = graph.NodeID(i * 13 % 10000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Closeness(answer, 10000)
	}
}

// BenchmarkTupleCloseness measures the vsim kernel.
func BenchmarkTupleCloseness(b *testing.B) {
	g := benchGraph(1000)
	t := benchExemplar().Tuples[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TupleCloseness(g, graph.NodeID(i%1000), t)
	}
}
