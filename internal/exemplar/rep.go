package exemplar

import (
	"math"
	"sort"

	"wqe/internal/graph"
)

// nodeMatch records which tuple patterns a node matches (vsim) and its
// closeness cl(v, E) = max over matched tuples of cl(v, t).
type nodeMatch struct {
	mask uint64 // bit i set ⇔ v ~ t_i
	cl   float64
}

// Eval is a compiled exemplar evaluator over one graph. Construction
// scans the graph once to find all tuple-pattern matches; afterwards
// rep computations over arbitrary node sets (Lemma 2.2) are cheap.
type Eval struct {
	G    *graph.Graph
	E    *Exemplar
	Opts Options

	binds map[string]binding
	match map[graph.NodeID]nodeMatch
	rep   map[graph.NodeID]float64 // rep(E, V) with cl values
}

// NewEval validates e and compiles it against g. The number of tuple
// patterns is limited to 64 (a bitmask width; the paper's workloads use
// at most 25).
func NewEval(g *graph.Graph, e *Exemplar, opts Options) (*Eval, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	binds, err := e.bindings()
	if err != nil {
		return nil, err
	}
	if len(e.Tuples) > 64 {
		return nil, errTooManyTuples
	}
	ev := &Eval{G: g, E: e, Opts: opts, binds: binds}
	ev.scan()
	set, ok := ev.repOver(nil)
	ev.rep = map[graph.NodeID]float64{}
	if ok {
		//lint:ignore mapiter map-to-map copy keyed per node, order-insensitive
		for v := range set {
			ev.rep[v] = ev.match[v].cl
		}
	}
	return ev, nil
}

type evalError string

func (e evalError) Error() string { return string(e) }

const errTooManyTuples = evalError("exemplar: more than 64 tuple patterns")

// scan finds every node matching at least one tuple pattern. With the
// default θ = 1 this enumerates exact matches; with θ < 1 it scores
// similarity matches.
func (ev *Eval) scan() {
	ev.match = map[graph.NodeID]nodeMatch{}
	n := ev.G.NumNodes()
	for i := 0; i < n; i++ {
		v := graph.NodeID(i)
		var mask uint64
		best := 0.0
		for ti, t := range ev.E.Tuples {
			cl := TupleCloseness(ev.G, v, t)
			if cl >= ev.Opts.Theta {
				mask |= 1 << uint(ti)
				if cl > best {
					best = cl
				}
			}
		}
		if mask != 0 {
			ev.match[v] = nodeMatch{mask: mask, cl: best}
		}
	}
}

// Matches reports v ~ t_i for some i (before constraint enforcement).
func (ev *Eval) Matches(v graph.NodeID) bool {
	_, ok := ev.match[v]
	return ok
}

// InRep reports whether v ∈ rep(E, V).
func (ev *Eval) InRep(v graph.NodeID) bool {
	_, ok := ev.rep[v]
	return ok
}

// Cl returns cl(v, E), the closeness of v to the exemplar (0 when v
// matches no tuple pattern).
func (ev *Eval) Cl(v graph.NodeID) float64 {
	if m, ok := ev.match[v]; ok {
		return m.cl
	}
	return 0
}

// Rep returns rep(E, V) as a node → cl map. Callers must not mutate it.
func (ev *Eval) Rep() map[graph.NodeID]float64 { return ev.rep }

// RepNodes returns rep(E, V) as a sorted slice.
func (ev *Eval) RepNodes() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(ev.rep))
	for v := range ev.rep {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Nontrivial reports rep(E, V) ≠ ∅ (§2.2: only nontrivial exemplars
// admit meaningful Why-questions).
func (ev *Eval) Nontrivial() bool { return len(ev.rep) > 0 }

// SatisfiedBy reports V_C ⊨ E for an arbitrary node set: rep(E, V_C) is
// nonempty, i.e. some subset of V_C matches every tuple pattern and
// satisfies every constraint (Lemma 2.2).
func (ev *Eval) SatisfiedBy(nodes []graph.NodeID) bool {
	restrict := make(map[graph.NodeID]bool, len(nodes))
	for _, v := range nodes {
		restrict[v] = true
	}
	_, ok := ev.repOver(restrict)
	return ok
}

// repOver computes rep(E, U) where U is the restriction set (nil means
// all of V). It returns the maximal satisfying subset and whether it is
// a satisfying set at all (every tuple pattern represented).
//
// Constraint enforcement removes violating nodes to the greatest
// fixpoint. Variable equality literals additionally pick the value
// class retaining the most nodes (documented interpretation of
// maximality, DESIGN.md §6).
func (ev *Eval) repOver(restrict map[graph.NodeID]bool) (map[graph.NodeID]bool, bool) {
	active := make(map[graph.NodeID]bool)
	//lint:ignore mapiter set build filtered per node, order-insensitive
	for v := range ev.match {
		if restrict == nil || restrict[v] {
			active[v] = true
		}
	}
	if len(active) == 0 {
		return nil, false
	}

	inGroup := func(v graph.NodeID, ti int) bool {
		return active[v] && ev.match[v].mask&(1<<uint(ti)) != 0
	}
	groupNodes := func(ti int) []graph.NodeID {
		var out []graph.NodeID
		//lint:ignore mapiter consumers delete per-node on value-only predicates, order-insensitive
		for v := range active {
			if inGroup(v, ti) {
				out = append(out, v)
			}
		}
		return out
	}

	for changed := true; changed; {
		changed = false
		for _, c := range ev.E.Constraints {
			lb := ev.binds[c.Left]
			if !c.IsVar {
				// Constant literal: every node matching the bound tuple
				// must satisfy v.A op c.
				for _, v := range groupNodes(lb.tuple) {
					val, ok := ev.G.Attr(v, lb.attr)
					if !ok || !c.Op.Holds(val, c.Val) {
						delete(active, v)
						changed = true
					}
				}
				continue
			}
			rb := ev.binds[c.Right]
			if c.Op == graph.EQ {
				if ev.enforceEquality(active, lb, rb) {
					changed = true
				}
				continue
			}
			if ev.enforceInequality(active, c.Op, lb, rb) {
				changed = true
			}
		}
	}

	// V_C ⊨ T: every tuple pattern must keep at least one match.
	for ti := range ev.E.Tuples {
		found := false
		//lint:ignore mapiter existence check, order-insensitive
		for v := range active {
			if inGroup(v, ti) {
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return active, true
}

// enforceEquality handles x = y between variables bound at (lb) and
// (rb): all pairs across the two groups must agree on the bound
// attributes, so all group members share one value. We keep the value
// class retaining the most nodes. Returns whether nodes were removed.
func (ev *Eval) enforceEquality(active map[graph.NodeID]bool, lb, rb binding) bool {
	type member struct {
		v    graph.NodeID
		val  graph.Value
		ok   bool
		both bool // member of both groups (must agree with itself too)
	}
	var members []member
	count := map[string]int{}
	valueOf := map[string]graph.Value{}
	// Per-member decisions below depend only on values; the winning value
	// class breaks ties over sorted keys.
	//lint:ignore mapiter order-insensitive, see above
	for v := range active {
		l := ev.match[v].mask&(1<<uint(lb.tuple)) != 0
		r := ev.match[v].mask&(1<<uint(rb.tuple)) != 0
		if !l && !r {
			continue
		}
		var vals []graph.Value
		if l {
			if val, ok := ev.G.Attr(v, lb.attr); ok {
				vals = append(vals, val)
			} else {
				members = append(members, member{v: v, ok: false})
				continue
			}
		}
		if r {
			if val, ok := ev.G.Attr(v, rb.attr); ok {
				vals = append(vals, val)
			} else {
				members = append(members, member{v: v, ok: false})
				continue
			}
		}
		// A node in both groups must carry equal values itself.
		if len(vals) == 2 && !vals[0].Equal(vals[1]) {
			members = append(members, member{v: v, ok: false})
			continue
		}
		m := member{v: v, val: vals[0], ok: true, both: len(vals) == 2}
		members = append(members, m)
		count[m.val.String()+"|"+kindTag(m.val)]++
		valueOf[m.val.String()+"|"+kindTag(m.val)] = m.val
	}
	if len(members) == 0 {
		return false
	}
	// Pick the value class with the most members (ties: smallest value,
	// for determinism).
	bestKey := ""
	bestN := -1
	keys := make([]string, 0, len(count))
	for k := range count {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if count[k] > bestN {
			bestN, bestKey = count[k], k
		}
	}
	best := valueOf[bestKey]
	removed := false
	for _, m := range members {
		if !m.ok || !m.val.Equal(best) {
			if active[m.v] {
				delete(active, m.v)
				removed = true
			}
		}
	}
	return removed
}

func kindTag(v graph.Value) string {
	if v.Kind == graph.Number {
		return "n"
	}
	return "s"
}

// enforceInequality handles x op y with op ∈ {<, ≤, >, ≥}: every node
// of the left group needs a partner in the right group satisfying
// v.A op v'.A', and symmetrically. One pass of removals; the caller
// iterates to the fixpoint.
//
// Existence of a partner only depends on the other group's extreme
// value (its minimum for >/≥, maximum for </≤), with the second
// extreme covering the self-partnering case, so each pass is linear —
// the naive pairwise check would make Lemma 2.2's quadratic bound
// tight on large groups.
// enforceInequality handles x op y with op ∈ {<, ≤, >, ≥}: every node
// of the left group needs a partner in the right group satisfying
// v.A op v'.A', and symmetrically. One pass of removals; the caller
// iterates to the fixpoint.
//
// Existence of a partner only depends on the other group's extreme
// value (its minimum for >/≥, maximum for </≤), with the runner-up
// covering the self-partnering case, so each pass is linear — the
// naive pairwise check would make Lemma 2.2's quadratic bound tight on
// large groups.
func (ev *Eval) enforceInequality(active map[graph.NodeID]bool, op graph.Op, lb, rb binding) bool {
	type member struct {
		v   graph.NodeID
		val graph.Value
		has bool
	}
	collect := func(b binding) []member {
		var out []member
		// Tied extreme witnesses carry equal values, so pruning decisions
		// depend only on values, not collection order.
		//lint:ignore mapiter order-insensitive, see above
		for v := range active {
			if ev.match[v].mask&(1<<uint(b.tuple)) == 0 {
				continue
			}
			val, ok := ev.G.Attr(v, b.attr)
			out = append(out, member{v, val, ok})
		}
		return out
	}
	// extremes returns the two best partner witnesses of a group: the
	// members whose values are most likely to satisfy the other side
	// (minimum for >/≥, maximum for </≤); the runner-up covers the case
	// where the best witness is the probing node itself.
	type witness struct {
		v   graph.NodeID
		val graph.Value
		ok  bool
	}
	extremes := func(ms []member, wantMin bool) (first, second witness) {
		for _, m := range ms {
			if !m.has {
				continue
			}
			better := func(a graph.Value, w witness) bool {
				if !w.ok {
					return true
				}
				if wantMin {
					return a.Compare(w.val) < 0
				}
				return a.Compare(w.val) > 0
			}
			switch {
			case better(m.val, first):
				second = first
				first = witness{m.v, m.val, true}
			case better(m.val, second):
				second = witness{m.v, m.val, true}
			}
		}
		return
	}
	removed := false
	prune := func(ms []member, o graph.Op, w1, w2 witness) {
		for _, m := range ms {
			if !active[m.v] {
				continue
			}
			if !m.has {
				delete(active, m.v)
				removed = true
				continue
			}
			w := w1
			if w.ok && w.v == m.v {
				w = w2
			}
			if !w.ok || !o.Holds(m.val, w.val) {
				delete(active, m.v)
				removed = true
			}
		}
	}

	wantMinRight := op == graph.GT || op == graph.GE // v op w favors small w
	r1, r2 := extremes(collect(rb), wantMinRight)
	prune(collect(lb), op, r1, r2)

	// Re-collect after the left pass: removed nodes must not witness.
	flip := op.Flip()
	wantMinLeft := flip == graph.GT || flip == graph.GE
	l1, l2 := extremes(collect(lb), wantMinLeft)
	prune(collect(rb), flip, l1, l2)
	return removed
}

// Closeness computes cl(answer, E) = (Σ_{v∈RM} cl(v,E) − λ·|IM|) /
// nFocusCands, where RM/IM partition the answer by membership in the
// global rep(E, V) (§3). nFocusCands is |V_{u_o}| of the original query
// and stays fixed across a chase.
func (ev *Eval) Closeness(answer []graph.NodeID, nFocusCands int) float64 {
	if nFocusCands <= 0 {
		return 0
	}
	var gain float64
	irrelevant := 0
	for _, v := range answer {
		if cl, ok := ev.rep[v]; ok {
			gain += cl
		} else {
			irrelevant++
		}
	}
	return (gain - ev.Opts.Lambda*float64(irrelevant)) / float64(nFocusCands)
}

// ClPlus computes cl⁺(answer, E), the relevant-match-only upper bound of
// Lemma 5.5 used for pruning: Σ_{v∈RM} cl(v,E) / nFocusCands.
func (ev *Eval) ClPlus(answer []graph.NodeID, nFocusCands int) float64 {
	if nFocusCands <= 0 {
		return 0
	}
	var gain float64
	for _, v := range answer {
		if cl, ok := ev.rep[v]; ok {
			gain += cl
		}
	}
	return gain / float64(nFocusCands)
}

// ClStar computes the theoretically optimal closeness cl* =
// Σ_{v ∈ rep(E,V) ∩ cands} cl(v,E) / |cands| achievable by any rewrite
// whose answers stay within the focus candidate pool.
func (ev *Eval) ClStar(cands []graph.NodeID) float64 {
	if len(cands) == 0 {
		return 0
	}
	var gain float64
	for _, v := range cands {
		if cl, ok := ev.rep[v]; ok {
			gain += cl
		}
	}
	return gain / float64(len(cands))
}

// Infinity guards: closeness values are finite by construction; this
// assertion helps catch NaNs from bad λ/θ configurations in tests.
func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }
