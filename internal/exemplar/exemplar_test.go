package exemplar

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"wqe/internal/graph"
)

// phones builds a small catalog: display/storage/price triples.
func phones(rows [][3]float64) *graph.Graph {
	g := graph.New()
	for _, r := range rows {
		g.AddNode("Phone", map[string]graph.Value{
			"Display": graph.N(r[0]),
			"Storage": graph.N(r[1]),
			"Price":   graph.N(r[2]),
		})
	}
	return g
}

func mustEval(t *testing.T, g *graph.Graph, e *Exemplar) *Eval {
	t.Helper()
	ev, err := NewEval(g, e, DefaultOptions())
	if err != nil {
		t.Fatalf("NewEval: %v", err)
	}
	return ev
}

func TestValidate(t *testing.T) {
	if (&Exemplar{}).Validate() == nil {
		t.Error("tuple-less exemplar must not validate")
	}
	dup := &Exemplar{Tuples: []TuplePattern{
		{"a": V("x")}, {"b": V("x")},
	}}
	if dup.Validate() == nil {
		t.Error("doubly-bound variable must not validate")
	}
	unbound := &Exemplar{
		Tuples:      []TuplePattern{{"a": C(graph.N(1))}},
		Constraints: []Constraint{{Left: "z", Op: graph.LT, Val: graph.N(5)}},
	}
	if unbound.Validate() == nil {
		t.Error("constraint on unbound variable must not validate")
	}
}

func TestTupleCloseness(t *testing.T) {
	g := phones([][3]float64{{6.2, 128, 800}})
	v := graph.NodeID(0)

	exact := TuplePattern{"Display": C(graph.N(6.2))}
	if cl := TupleCloseness(g, v, exact); cl != 1 {
		t.Errorf("exact constant: cl = %v, want 1", cl)
	}
	mixed := TuplePattern{"Display": C(graph.N(6.2)), "Storage": V("x"), "Price": W()}
	if cl := TupleCloseness(g, v, mixed); cl != 1 {
		t.Errorf("const+var+wildcard all satisfied: cl = %v, want 1", cl)
	}
	missingVar := TuplePattern{"Weight": V("w")}
	if cl := TupleCloseness(g, v, missingVar); cl != 0 {
		t.Errorf("variable on missing attribute: cl = %v, want 0", cl)
	}
	missingWild := TuplePattern{"Weight": W()}
	if cl := TupleCloseness(g, v, missingWild); cl != 1 {
		t.Errorf("explicit wildcard on missing attribute: cl = %v, want 1", cl)
	}
	half := TuplePattern{"Display": C(graph.N(6.2)), "Weight": C(graph.N(200))}
	if cl := TupleCloseness(g, v, half); cl != 0.5 {
		t.Errorf("half-matching tuple: cl = %v, want 0.5", cl)
	}
	if cl := TupleCloseness(g, v, TuplePattern{}); cl != 0 {
		t.Errorf("empty tuple: cl = %v, want 0", cl)
	}
}

// TestStringSimProperties checks the normalized-Levenshtein similarity
// invariants used for θ < 1 matching.
func TestStringSimProperties(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 || len(b) > 40 {
			return true
		}
		s := stringSim(a, b)
		if s < 0 || s > 1 {
			return false
		}
		if s != stringSim(b, a) {
			return false
		}
		if a == b && s != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	if got := stringSim("kitten", "sitting"); got <= 0.4 || got >= 0.8 {
		t.Errorf("stringSim(kitten,sitting) = %v, expected ≈ 1 - 3/7", got)
	}
}

func TestRepConstantConstraint(t *testing.T) {
	// Fig 1 semantics: phones matching the 6.3 pattern must be < 800.
	g := phones([][3]float64{
		{6.3, 64, 950}, // violates x3 < 800 → excluded entirely
		{6.3, 64, 790}, // fine
		{6.2, 128, 820},
	})
	e := &Exemplar{
		Tuples: []TuplePattern{
			{"Display": C(graph.N(6.3)), "Price": V("x3")},
		},
		Constraints: []Constraint{{Left: "x3", Op: graph.LT, Val: graph.N(800)}},
	}
	ev := mustEval(t, g, e)
	if ev.InRep(0) {
		t.Error("node 0 violates the constant constraint")
	}
	if !ev.InRep(1) {
		t.Error("node 1 should be in rep")
	}
	if ev.InRep(2) {
		t.Error("node 2 matches no tuple")
	}
}

func TestRepInequalityFixpoint(t *testing.T) {
	// x1 > x2 between group storages; partners must exist both ways.
	g := phones([][3]float64{
		{6.2, 128, 800}, // t1-group, storage 128
		{6.2, 32, 800},  // t1-group, storage 32 — no smaller t2 partner
		{6.3, 64, 700},  // t2-group, storage 64
	})
	e := &Exemplar{
		Tuples: []TuplePattern{
			{"Display": C(graph.N(6.2)), "Storage": V("x1")},
			{"Display": C(graph.N(6.3)), "Storage": V("x2")},
		},
		Constraints: []Constraint{{Left: "x1", Op: graph.GT, IsVar: true, Right: "x2"}},
	}
	ev := mustEval(t, g, e)
	if !ev.InRep(0) || !ev.InRep(2) {
		t.Errorf("rep should keep nodes 0 and 2: %v", ev.RepNodes())
	}
	if ev.InRep(1) {
		t.Error("node 1 (storage 32) has no t2 partner with smaller storage")
	}
}

func TestRepInequalityCascade(t *testing.T) {
	// Removing one node can strand its partner: fixpoint must cascade.
	g := phones([][3]float64{
		{6.2, 128, 900}, // t1: only partner is node 1
		{6.3, 64, 850},  // t2: fails price constraint → removed
	})
	e := &Exemplar{
		Tuples: []TuplePattern{
			{"Display": C(graph.N(6.2)), "Storage": V("x1")},
			{"Display": C(graph.N(6.3)), "Storage": V("x2"), "Price": V("x3")},
		},
		Constraints: []Constraint{
			{Left: "x3", Op: graph.LT, Val: graph.N(800)},
			{Left: "x1", Op: graph.GT, IsVar: true, Right: "x2"},
		},
	}
	ev := mustEval(t, g, e)
	if ev.Nontrivial() {
		t.Errorf("rep should be empty after the cascade, got %v", ev.RepNodes())
	}
}

func TestRepEqualityClass(t *testing.T) {
	// x = y across two groups: the maximal value class survives.
	g := graph.New()
	add := func(label string, color string) graph.NodeID {
		return g.AddNode(label, map[string]graph.Value{"Color": graph.S(color), "Kind": graph.S(label)})
	}
	add("A", "red")   // 0
	add("A", "red")   // 1
	add("A", "blue")  // 2
	add("B", "red")   // 3
	add("B", "green") // 4
	e := &Exemplar{
		Tuples: []TuplePattern{
			{"Kind": C(graph.S("A")), "Color": V("x")},
			{"Kind": C(graph.S("B")), "Color": V("y")},
		},
		Constraints: []Constraint{{Left: "x", Op: graph.EQ, IsVar: true, Right: "y"}},
	}
	ev := mustEval(t, g, e)
	want := map[graph.NodeID]bool{0: true, 1: true, 3: true}
	for v := graph.NodeID(0); v < 5; v++ {
		if ev.InRep(v) != want[v] {
			t.Errorf("node %d: InRep = %v, want %v (rep=%v)", v, ev.InRep(v), want[v], ev.RepNodes())
		}
	}
}

func TestSatisfiedBy(t *testing.T) {
	g := phones([][3]float64{
		{6.2, 128, 800},
		{6.3, 64, 700},
		{5.5, 16, 300},
	})
	e := &Exemplar{
		Tuples: []TuplePattern{
			{"Display": C(graph.N(6.2)), "Storage": V("x1")},
			{"Display": C(graph.N(6.3)), "Storage": V("x2")},
		},
		Constraints: []Constraint{{Left: "x1", Op: graph.GT, IsVar: true, Right: "x2"}},
	}
	ev := mustEval(t, g, e)
	if !ev.SatisfiedBy([]graph.NodeID{0, 1}) {
		t.Error("{0,1} should satisfy E")
	}
	if ev.SatisfiedBy([]graph.NodeID{0}) {
		t.Error("{0} lacks a t2 representative")
	}
	if ev.SatisfiedBy([]graph.NodeID{1}) {
		t.Error("{1} lacks a t1 representative")
	}
	if ev.SatisfiedBy([]graph.NodeID{2}) {
		t.Error("{2} matches nothing")
	}
	if !ev.SatisfiedBy([]graph.NodeID{0, 1, 2}) {
		t.Error("supersets of a satisfying set still satisfy (2 is ignorable)")
	}
}

// TestRepIsSatisfying: rep(E, V), when nonempty, must itself satisfy E
// (it is the maximal satisfying subset).
func TestRepIsSatisfying(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		rows := make([][3]float64, 8+rng.Intn(8))
		for i := range rows {
			rows[i] = [3]float64{
				[]float64{6.2, 6.3, 5.5}[rng.Intn(3)],
				float64(int(16) << rng.Intn(4)),
				float64(300 + 50*rng.Intn(14)),
			}
		}
		g := phones(rows)
		e := &Exemplar{
			Tuples: []TuplePattern{
				{"Display": C(graph.N(6.2)), "Storage": V("x1"), "Price": W()},
				{"Display": C(graph.N(6.3)), "Storage": V("x2"), "Price": V("x3")},
			},
			Constraints: []Constraint{
				{Left: "x3", Op: graph.LT, Val: graph.N(800)},
				{Left: "x1", Op: graph.GT, IsVar: true, Right: "x2"},
			},
		}
		ev := mustEval(t, g, e)
		if !ev.Nontrivial() {
			continue
		}
		if !ev.SatisfiedBy(ev.RepNodes()) {
			t.Fatalf("trial %d: rep %v does not satisfy its own exemplar", trial, ev.RepNodes())
		}
		// Monotone sanity: every rep member matches some tuple.
		for _, v := range ev.RepNodes() {
			if !ev.Matches(v) {
				t.Fatalf("trial %d: rep member %d matches no tuple", trial, v)
			}
			if ev.Cl(v) <= 0 {
				t.Fatalf("trial %d: rep member %d has non-positive closeness", trial, v)
			}
		}
	}
}

func TestClosenessMeasures(t *testing.T) {
	g := phones([][3]float64{
		{6.2, 128, 800}, // in rep
		{6.3, 64, 700},  // in rep
		{5.5, 16, 300},  // not
		{5.0, 16, 200},  // not
	})
	e := &Exemplar{Tuples: []TuplePattern{
		{"Display": C(graph.N(6.2))},
		{"Display": C(graph.N(6.3))},
	}}
	ev := mustEval(t, g, e)

	answer := []graph.NodeID{0, 2} // one relevant, one irrelevant
	if got := ev.Closeness(answer, 4); got != (1.0-1.0)/4 {
		t.Errorf("Closeness = %v, want 0", got)
	}
	if got := ev.ClPlus(answer, 4); got != 0.25 {
		t.Errorf("ClPlus = %v, want 0.25", got)
	}
	if got := ev.ClStar([]graph.NodeID{0, 1, 2, 3}); got != 0.5 {
		t.Errorf("ClStar = %v, want 0.5", got)
	}
	// cl ≤ cl⁺ ≤ cl* for answers within the candidate pool.
	if ev.Closeness(answer, 4) > ev.ClPlus(answer, 4) {
		t.Error("cl must not exceed cl⁺")
	}
	if got := ev.Closeness(nil, 0); got != 0 {
		t.Errorf("zero-candidate closeness = %v", got)
	}
	if !isFinite(ev.Closeness(answer, 4)) {
		t.Error("closeness must be finite")
	}
}

// TestClBounds property: for random answers, cl ≤ cl⁺, and cl⁺ of a
// subset of the pool never exceeds cl*·(pool size)/normalizer scaling.
func TestClBounds(t *testing.T) {
	g := phones([][3]float64{
		{6.2, 128, 800}, {6.3, 64, 700}, {5.5, 16, 300}, {6.2, 64, 500}, {6.3, 32, 100},
	})
	e := &Exemplar{Tuples: []TuplePattern{
		{"Display": C(graph.N(6.2))}, {"Display": C(graph.N(6.3))},
	}}
	ev := mustEval(t, g, e)
	pool := []graph.NodeID{0, 1, 2, 3, 4}
	f := func(mask uint8) bool {
		var answer []graph.NodeID
		for i, v := range pool {
			if mask&(1<<uint(i)) != 0 {
				answer = append(answer, v)
			}
		}
		cl := ev.Closeness(answer, len(pool))
		clp := ev.ClPlus(answer, len(pool))
		return cl <= clp+1e-12 && clp <= ev.ClStar(pool)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromEntities(t *testing.T) {
	g := phones([][3]float64{{6.2, 128, 800}, {6.2, 128, 800}, {6.3, 64, 700}})
	e := FromEntities(g, []graph.NodeID{0, 1, 2}, []string{"Display"})
	if len(e.Tuples) != 2 {
		t.Errorf("duplicate tuples should merge: got %d", len(e.Tuples))
	}
	all := FromEntities(g, []graph.NodeID{0}, nil)
	if len(all.Tuples) != 1 || len(all.Tuples[0]) != 3 {
		t.Errorf("nil attrs should copy the whole tuple: %v", all)
	}
	empty := FromEntities(g, []graph.NodeID{0}, []string{"Missing"})
	if len(empty.Tuples) != 0 {
		t.Error("entities without the requested attrs yield no tuples")
	}
}

func TestTooManyTuples(t *testing.T) {
	g := phones([][3]float64{{6.2, 128, 800}})
	e := &Exemplar{}
	for i := 0; i < 65; i++ {
		e.Tuples = append(e.Tuples, TuplePattern{"Display": C(graph.N(float64(i)))})
	}
	if _, err := NewEval(g, e, DefaultOptions()); err == nil {
		t.Error("more than 64 tuples must be rejected")
	}
}

func TestThetaSimilarityMatching(t *testing.T) {
	// Widen the Display active domain (5.0 … 7.0) so the 6.25 phone's
	// similarity is 1 − 0.05/2 = 0.975.
	g := phones([][3]float64{{6.2, 128, 800}, {6.25, 128, 800}, {5.0, 16, 100}, {7.0, 256, 999}})
	e := &Exemplar{Tuples: []TuplePattern{{"Display": C(graph.N(6.2))}}}

	strict := mustEval(t, g, e)
	if strict.InRep(1) {
		t.Error("θ=1 must reject near-misses")
	}
	loose, err := NewEval(g, e, Options{Theta: 0.9, Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !loose.InRep(1) {
		t.Error("θ=0.9 should accept the 6.25 phone (similarity ≈ 0.96)")
	}
}

func TestExemplarJSONRoundtrip(t *testing.T) {
	e := &Exemplar{
		Tuples: []TuplePattern{
			{"Display": C(graph.N(6.2)), "Storage": V("x1"), "Price": W()},
			{"Brand": C(graph.S("Samsung")), "Price": V("x3")},
		},
		Constraints: []Constraint{
			{Left: "x3", Op: graph.LT, Val: graph.N(800)},
			{Left: "x1", Op: graph.GT, IsVar: true, Right: "x3"},
		},
	}
	var buf bytes.Buffer
	if err := e.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	e2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if e.String() != e2.String() {
		t.Errorf("roundtrip changed exemplar:\n%s\nvs\n%s", e, e2)
	}
}

func TestExemplarJSONErrors(t *testing.T) {
	bad := []string{
		`{`,
		`{"tuples":[]}`,
		`{"tuples":[{"a":{}}]}`, // cell with nothing set
		`{"tuples":[{"a":{"var":"x"}}],"constraints":[{"left":"x","op":"<"}]}`,           // constraint without rhs
		`{"tuples":[{"a":{"var":"x"}}],"constraints":[{"left":"y","op":"<","const":1}]}`, // unbound var
	}
	for _, s := range bad {
		if _, err := ReadJSON(bytes.NewBufferString(s)); err == nil {
			t.Errorf("ReadJSON(%q) should fail", s)
		}
	}
}
