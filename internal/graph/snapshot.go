package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"math"
)

// Binary snapshot format (see DESIGN.md §15 for the field-width table).
//
// Everything is little-endian. The file is a 56-byte checksummed header
// followed by body sections in fixed order, closed by a body checksum:
//
//	header   magic[8] version:u32 flags:u32 nodes:u64 edges:u64
//	         attrEntries:u64 auxLen:u64 headerSum:u64(FNV-64a of the
//	         preceding 48 bytes)
//	body     labels interner · attrs interner · string-value table ·
//	         node labels · attr offsets · attr arena · out offsets ·
//	         out edges · in offsets · in edges · aux bytes
//	footer   bodySum:u64 (FNV-64a of every body byte)
//
// The writer iterates arenas in index order and interner tables in id
// order, so the encoding of a given graph is a pure function of its
// contents: write → read → write is byte-identical (pinned by test).
// The aux section is opaque to this package; callers use it to embed a
// serialized distance index (see internal/distindex) so a server
// cold-start can skip index construction.
const (
	// SnapshotVersion is the current format version. Version history:
	//   1 — initial layout as described above.
	SnapshotVersion = 1

	snapshotMagic = "WQESNAP\x00"
	snapHeaderLen = 56

	// snapFlagAux marks a non-empty aux section.
	snapFlagAux uint32 = 1 << 0
)

// maxSnapshotChunk bounds every single allocation made while reading a
// snapshot: big arrays grow by appending fixed-size chunks, so a
// corrupt or hostile header claiming absurd element counts runs out of
// input (and fails loudly) long before it can exhaust memory.
const maxSnapshotChunk = 4 << 20 // bytes

// SniffSnapshot reports whether the byte prefix looks like a binary
// snapshot (used by the CLIs to pick a loader without a format flag).
// len(prefix) may be shorter than the magic; short prefixes sniff false.
func SniffSnapshot(prefix []byte) bool {
	return len(prefix) >= len(snapshotMagic) && string(prefix[:len(snapshotMagic)]) == snapshotMagic
}

// Snapshot is the result of reading a snapshot file.
type Snapshot struct {
	G       *Graph
	Aux     []byte // opaque payload stored by the writer; nil if absent
	Version uint32 // format version of the file read
}

// WriteSnapshot writes the graph (and an optional opaque aux payload)
// in the binary snapshot format. The output is deterministic: the same
// graph contents always produce the same bytes.
func (g *Graph) WriteSnapshot(w io.Writer, aux []byte) error {
	g.ensure()
	n := g.NumNodes()

	var hdr [snapHeaderLen]byte
	copy(hdr[0:8], snapshotMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], SnapshotVersion)
	var flags uint32
	if len(aux) > 0 {
		flags |= snapFlagAux
	}
	binary.LittleEndian.PutUint32(hdr[12:16], flags)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(n))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(g.edges))
	binary.LittleEndian.PutUint64(hdr[32:40], uint64(len(g.attrArena)))
	binary.LittleEndian.PutUint64(hdr[40:48], uint64(len(aux)))
	hh := fnv.New64a()
	hashBytes(hh, hdr[:48])
	binary.LittleEndian.PutUint64(hdr[48:56], hh.Sum64())

	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("graph: snapshot write: %w", err)
	}

	sw := &snapWriter{bw: bw, h: fnv.New64a()}
	sw.interner(g.Labels)
	sw.interner(g.Attrs)

	// String-value table: distinct attribute strings in first-occurrence
	// order (an arena scan, so the order — and the encoding — is
	// deterministic; the map is only used for index lookups).
	strIdx := make(map[string]uint32)
	strs := make([]string, 0, 16)
	for _, av := range g.attrArena {
		if av.Val.Kind == String {
			if _, ok := strIdx[av.Val.Str]; !ok {
				strIdx[av.Val.Str] = uint32(len(strs))
				strs = append(strs, av.Val.Str)
			}
		}
	}
	sw.u32(uint32(len(strs)))
	for _, s := range strs {
		sw.str(s)
	}

	for _, l := range g.labels {
		sw.u32(uint32(l))
	}
	for _, o := range g.attrOff {
		sw.u32(uint32(o))
	}
	for _, av := range g.attrArena {
		sw.u32(uint32(av.Attr))
		if av.Val.Kind == Number {
			sw.u8(0)
			sw.u64(math.Float64bits(av.Val.Num))
		} else {
			sw.u8(1)
			sw.u64(uint64(strIdx[av.Val.Str]))
		}
	}
	for _, o := range g.outOff {
		sw.u32(uint32(o))
	}
	for _, e := range g.outEdges {
		sw.u32(uint32(e.To))
		sw.u32(uint32(e.Label))
	}
	for _, o := range g.inOff {
		sw.u32(uint32(o))
	}
	for _, e := range g.inEdges {
		sw.u32(uint32(e.To))
		sw.u32(uint32(e.Label))
	}
	sw.bytes(aux)
	if sw.err != nil {
		return fmt.Errorf("graph: snapshot write: %w", sw.err)
	}

	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], sw.h.Sum64())
	if _, err := bw.Write(sum[:]); err != nil {
		return fmt.Errorf("graph: snapshot write: %w", err)
	}
	return bw.Flush()
}

// ReadSnapshot reads a snapshot written by WriteSnapshot. It rejects
// foreign files (bad magic), version skew, truncation, and corruption
// (checksums, plus full structural validation of offsets and ids) with
// descriptive errors; a successfully read graph is immediately usable
// with no further construction work.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [snapHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: snapshot: short header: %w", err)
	}
	if !SniffSnapshot(hdr[:]) {
		return nil, fmt.Errorf("graph: snapshot: bad magic — not a wqe snapshot file")
	}
	version := binary.LittleEndian.Uint32(hdr[8:12])
	if version != SnapshotVersion {
		// Version check comes before the header checksum so a future
		// format (which may checksum differently) gets the clear error.
		return nil, fmt.Errorf("graph: snapshot: unsupported format version %d (this build reads version %d)",
			version, SnapshotVersion)
	}
	hh := fnv.New64a()
	hashBytes(hh, hdr[:48])
	if got := binary.LittleEndian.Uint64(hdr[48:56]); got != hh.Sum64() {
		return nil, fmt.Errorf("graph: snapshot: header checksum mismatch (corrupt file)")
	}
	flags := binary.LittleEndian.Uint32(hdr[12:16])
	if flags&^snapFlagAux != 0 {
		return nil, fmt.Errorf("graph: snapshot: unknown flags %#x", flags)
	}
	nodes64 := binary.LittleEndian.Uint64(hdr[16:24])
	edges64 := binary.LittleEndian.Uint64(hdr[24:32])
	attrs64 := binary.LittleEndian.Uint64(hdr[32:40])
	aux64 := binary.LittleEndian.Uint64(hdr[40:48])
	const maxCount = math.MaxInt32 - 1
	if nodes64 > maxCount || edges64 > maxCount || attrs64 > maxCount || aux64 > maxCount {
		return nil, fmt.Errorf("graph: snapshot: element counts exceed int32 limits (nodes=%d edges=%d attrs=%d aux=%d)",
			nodes64, edges64, attrs64, aux64)
	}
	if flags&snapFlagAux == 0 && aux64 != 0 {
		return nil, fmt.Errorf("graph: snapshot: aux length %d without aux flag", aux64)
	}
	n, edges, attrEntries, auxLen := int(nodes64), int(edges64), int(attrs64), int(aux64)

	sr := &snapReader{br: br, h: fnv.New64a()}
	labelsIn, err := sr.interner("labels")
	if err != nil {
		return nil, err
	}
	attrsIn, err := sr.interner("attrs")
	if err != nil {
		return nil, err
	}

	strCount := int(sr.u32())
	if strCount > attrEntries {
		return nil, fmt.Errorf("graph: snapshot: string table larger than attr arena (%d > %d)", strCount, attrEntries)
	}
	strs := sr.stringTable(strCount)

	labels := sr.int32s(n)
	for _, l := range labels {
		if l < 0 || int(l) >= labelsIn.Len() {
			return nil, fmt.Errorf("graph: snapshot: node label id %d out of range", l)
		}
	}
	attrOff := sr.int32s(n + 1)
	if err := validateOffsets("attr", attrOff, n, attrEntries); err != nil {
		return nil, errOr(sr.err, err)
	}
	// Attr entries are 13 wire bytes each (attr:u32 kind:u8 payload:u64);
	// decode whole chunks from one read rather than issuing three reads
	// per entry — at millions of entries the call overhead dominates.
	const attrWire = 13
	attrArena := make([]AttrValue, 0, minInt(attrEntries, maxSnapshotChunk/attrWire))
	for len(attrArena) < attrEntries && sr.err == nil {
		c := minInt(attrEntries-len(attrArena), maxSnapshotChunk/attrWire)
		p := sr.take(c * attrWire)
		if sr.err != nil {
			break
		}
		base := len(attrArena)
		attrArena = grown(attrArena, c, attrEntries)
		for i := 0; i < c; i++ {
			rec := p[i*attrWire : i*attrWire+attrWire]
			aid := int32(binary.LittleEndian.Uint32(rec))
			kind := rec[4]
			payload := binary.LittleEndian.Uint64(rec[5:])
			if aid < 0 || int(aid) >= attrsIn.Len() {
				return nil, fmt.Errorf("graph: snapshot: attr id %d out of range", aid)
			}
			var val Value
			switch kind {
			case 0:
				f := math.Float64frombits(payload)
				if math.IsNaN(f) {
					return nil, fmt.Errorf("graph: snapshot: NaN attribute value (entry %d)", base+i)
				}
				val = N(f)
			case 1:
				if payload >= uint64(len(strs)) {
					return nil, fmt.Errorf("graph: snapshot: string index %d out of range (table has %d)", payload, len(strs))
				}
				val = S(strs[payload])
			default:
				return nil, fmt.Errorf("graph: snapshot: unknown value kind %d (entry %d)", kind, base+i)
			}
			attrArena[base+i] = AttrValue{Attr: aid, Val: val}
		}
	}
	// Tuples must be strictly sorted by attr id — AttrByID binary-searches.
	for v := 0; v+1 <= n && sr.err == nil; v++ {
		seg := attrArena[attrOff[v]:attrOff[v+1]]
		for i := 1; i < len(seg); i++ {
			if seg[i-1].Attr >= seg[i].Attr {
				return nil, fmt.Errorf("graph: snapshot: tuple of node %d not strictly sorted by attr id", v)
			}
		}
	}

	outOff := sr.int32s(n + 1)
	if err := validateOffsets("out", outOff, n, edges); err != nil {
		return nil, errOr(sr.err, err)
	}
	outEdges, err := sr.edges(edges, n, labelsIn.Len())
	if err != nil {
		return nil, err
	}
	inOff := sr.int32s(n + 1)
	if err := validateOffsets("in", inOff, n, edges); err != nil {
		return nil, errOr(sr.err, err)
	}
	inEdges, err := sr.edges(edges, n, labelsIn.Len())
	if err != nil {
		return nil, err
	}

	var aux []byte
	if auxLen > 0 {
		// Read straight into the destination (no scratch round-trip);
		// geometric growth keeps the hostile-count memory bound.
		aux = make([]byte, 0, minInt(auxLen, maxSnapshotChunk))
		for len(aux) < auxLen && sr.err == nil {
			c := minInt(auxLen-len(aux), maxSnapshotChunk)
			base := len(aux)
			aux = grown(aux, c, auxLen)
			if _, err := io.ReadFull(br, aux[base:]); err != nil {
				sr.err = err
				break
			}
			hashBytes(sr.h, aux[base:])
		}
	}
	if sr.err != nil {
		return nil, fmt.Errorf("graph: snapshot: truncated body: %w", sr.err)
	}

	var sum [8]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return nil, fmt.Errorf("graph: snapshot: missing body checksum: %w", err)
	}
	if binary.LittleEndian.Uint64(sum[:]) != sr.h.Sum64() {
		return nil, fmt.Errorf("graph: snapshot: body checksum mismatch (corrupt file)")
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("graph: snapshot: trailing data after checksum")
	}

	g := &Graph{
		Labels:    labelsIn,
		Attrs:     attrsIn,
		labels:    labels,
		attrOff:   attrOff,
		attrArena: attrArena,
		outOff:    outOff,
		outEdges:  outEdges,
		inOff:     inOff,
		inEdges:   inEdges,
		edges:     edges,
		diam:      -1,
		uid:       graphUID.Add(1),
	}
	g.rebuildByLabel()
	// dirty stays false: the CSR view above IS current. edgeLog stays
	// empty; ensureEdgeLog synthesizes it if the graph is ever mutated.
	return &Snapshot{G: g, Aux: aux, Version: version}, nil
}

// snapWriter hashes everything it writes; errors are sticky.
type snapWriter struct {
	bw  *bufio.Writer
	h   hash.Hash64
	err error
	buf [8]byte
}

func (sw *snapWriter) bytes(p []byte) {
	if sw.err != nil {
		return
	}
	if _, err := sw.bw.Write(p); err != nil {
		sw.err = err
		return
	}
	hashBytes(sw.h, p)
}

func (sw *snapWriter) u8(v uint8) {
	sw.buf[0] = v
	sw.bytes(sw.buf[:1])
}

func (sw *snapWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(sw.buf[:4], v)
	sw.bytes(sw.buf[:4])
}

func (sw *snapWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(sw.buf[:8], v)
	sw.bytes(sw.buf[:8])
}

func (sw *snapWriter) str(s string) {
	sw.u32(uint32(len(s)))
	if sw.err == nil {
		if _, err := sw.bw.WriteString(s); err != nil {
			sw.err = err
			return
		}
		if _, err := io.WriteString(sw.h, s); err != nil {
			sw.err = err
		}
	}
}

// interner writes one interner table: count, then every name in id
// order (id 0 is always the empty wildcard).
func (sw *snapWriter) interner(in *Interner) {
	sw.u32(uint32(in.Len()))
	for i := int32(0); i < int32(in.Len()); i++ {
		sw.str(in.Name(i))
	}
}

// snapReader hashes everything it reads; errors are sticky.
type snapReader struct {
	br      *bufio.Reader
	h       hash.Hash64
	err     error
	scratch []byte
	buf     [8]byte
}

// take reads n body bytes into the shared scratch buffer. The returned
// slice is valid until the next read.
func (sr *snapReader) take(n int) []byte {
	if sr.err != nil {
		return nil
	}
	if cap(sr.scratch) < n {
		sr.scratch = make([]byte, n)
	}
	p := sr.scratch[:n]
	if _, err := io.ReadFull(sr.br, p); err != nil {
		sr.err = err
		return nil
	}
	hashBytes(sr.h, p)
	return p
}

func (sr *snapReader) u8() uint8 {
	if _, err := io.ReadFull(sr.br, sr.buf[:1]); err != nil {
		if sr.err == nil {
			sr.err = err
		}
		return 0
	}
	hashBytes(sr.h, sr.buf[:1])
	return sr.buf[0]
}

func (sr *snapReader) u32() uint32 {
	if _, err := io.ReadFull(sr.br, sr.buf[:4]); err != nil {
		if sr.err == nil {
			sr.err = err
		}
		return 0
	}
	hashBytes(sr.h, sr.buf[:4])
	return binary.LittleEndian.Uint32(sr.buf[:4])
}

func (sr *snapReader) u64() uint64 {
	if _, err := io.ReadFull(sr.br, sr.buf[:8]); err != nil {
		if sr.err == nil {
			sr.err = err
		}
		return 0
	}
	hashBytes(sr.h, sr.buf[:8])
	return binary.LittleEndian.Uint64(sr.buf[:8])
}

// stringTable reads count length-prefixed strings. It parses whole
// batches out of the buffered reader via Peek/Discard — two tiny reads
// per string would dominate at million-entry tables — hashing exactly
// the bytes it consumes, in stream order, so the body checksum is
// unchanged. A string that doesn't fit the peek window (or a short
// stream) falls back to the plain one-string path and its errors.
func (sr *snapReader) stringTable(count int) []string {
	out := make([]string, 0, minInt(count, maxSnapshotChunk/16))
	for len(out) < count && sr.err == nil {
		//lint:ignore errdrop a short peek (EOF) only shrinks the batch; real truncation is reported by the fallback path below
		p, _ := sr.br.Peek(1 << 16)
		pos := 0
		parsed := false
		for len(out) < count {
			if pos+4 > len(p) {
				break
			}
			n := int(binary.LittleEndian.Uint32(p[pos:]))
			if n > maxSnapshotChunk {
				sr.err = fmt.Errorf("string of %d bytes exceeds %d-byte limit", n, maxSnapshotChunk)
				break
			}
			if pos+4+n > len(p) {
				break
			}
			out = append(out, string(p[pos+4:pos+4+n]))
			pos += 4 + n
			parsed = true
		}
		if pos > 0 {
			hashBytes(sr.h, p[:pos])
			if _, err := sr.br.Discard(pos); err != nil {
				sr.err = err // unreachable: pos <= buffered bytes
			}
		}
		if sr.err != nil {
			break
		}
		if !parsed && len(out) < count {
			out = append(out, sr.str())
		}
	}
	return out
}

func (sr *snapReader) str() string {
	n := int(sr.u32())
	if n > maxSnapshotChunk {
		if sr.err == nil {
			sr.err = fmt.Errorf("string of %d bytes exceeds %d-byte limit", n, maxSnapshotChunk)
		}
		return ""
	}
	return string(sr.take(n))
}

// int32s reads count little-endian uint32s as int32s, decoding chunk
// at a time into pre-grown slots. Growth is geometric and only follows
// successful reads, so hostile counts fail on EOF having allocated at
// most ~2x the bytes actually present.
func (sr *snapReader) int32s(count int) []int32 {
	out := make([]int32, 0, minInt(count, maxSnapshotChunk/4))
	for len(out) < count && sr.err == nil {
		c := minInt(count-len(out), maxSnapshotChunk/4)
		p := sr.take(c * 4)
		if sr.err != nil {
			break
		}
		base := len(out)
		out = grown(out, c, count)
		for i := 0; i < c; i++ {
			out[base+i] = int32(binary.LittleEndian.Uint32(p[i*4:]))
		}
	}
	return out
}

// edges reads count (to, label) pairs, validating ids against the node
// count and label-table size.
func (sr *snapReader) edges(count, numNodes, numLabels int) ([]Edge, error) {
	out := make([]Edge, 0, minInt(count, maxSnapshotChunk/8))
	for len(out) < count && sr.err == nil {
		c := minInt(count-len(out), maxSnapshotChunk/8)
		p := sr.take(c * 8)
		if sr.err != nil {
			break
		}
		base := len(out)
		out = grown(out, c, count)
		for i := 0; i < c; i++ {
			// One u64 load per pair; the unsigned compares also catch
			// values whose sign bit is set (numNodes/numLabels are
			// int32-bounded, so any id ≥ 1<<31 reads as huge here).
			pair := binary.LittleEndian.Uint64(p[i*8:])
			to, label := uint32(pair), uint32(pair>>32)
			if to >= uint32(numNodes) {
				return nil, fmt.Errorf("graph: snapshot: edge endpoint %d out of range", int32(to))
			}
			if label >= uint32(numLabels) {
				return nil, fmt.Errorf("graph: snapshot: edge label id %d out of range", int32(label))
			}
			out[base+i] = Edge{To: NodeID(to), Label: int32(label)}
		}
	}
	if sr.err != nil {
		return nil, fmt.Errorf("graph: snapshot: truncated body: %w", sr.err)
	}
	return out, nil
}

// grown extends s by c slots (the next chunk's worth), growing capacity
// geometrically toward count. Callers grow only after a chunk has been
// read successfully, so a hostile count claiming far more elements than
// the file holds hits EOF after allocating at most ~2x the real data.
func grown[T any](s []T, c, count int) []T {
	need := len(s) + c
	if need <= cap(s) {
		return s[:need]
	}
	newCap := 2 * cap(s)
	if newCap < need {
		newCap = need
	}
	if newCap > count {
		newCap = count
	}
	g := make([]T, need, newCap)
	copy(g, s)
	return g
}

// interner reads one interner table and reconstructs the Interner.
func (sr *snapReader) interner(what string) (*Interner, error) {
	count := int(sr.u32())
	if sr.err != nil {
		return nil, fmt.Errorf("graph: snapshot: truncated %s interner: %w", what, sr.err)
	}
	if count < 1 || count > maxCountInterner {
		return nil, fmt.Errorf("graph: snapshot: %s interner has implausible size %d", what, count)
	}
	first := sr.str()
	if sr.err != nil {
		return nil, fmt.Errorf("graph: snapshot: truncated %s interner: %w", what, sr.err)
	}
	if first != "" {
		return nil, fmt.Errorf("graph: snapshot: %s interner entry 0 must be the empty wildcard, got %q", what, first)
	}
	in := NewInterner()
	for i := 1; i < count; i++ {
		name := sr.str()
		if sr.err != nil {
			return nil, fmt.Errorf("graph: snapshot: truncated %s interner: %w", what, sr.err)
		}
		if id := in.Intern(name); id != int32(i) {
			return nil, fmt.Errorf("graph: snapshot: duplicate %s interner entry %q", what, name)
		}
	}
	return in, nil
}

// maxCountInterner caps interner tables: label/attr name universes are
// tiny next to node counts; 1<<26 entries is far beyond any real graph
// and small enough that a hostile count fails fast.
const maxCountInterner = 1 << 26

func validateOffsets(what string, off []int32, n, total int) error {
	if len(off) != n+1 {
		return fmt.Errorf("graph: snapshot: %s offsets truncated", what)
	}
	if off[0] != 0 || off[n] != int32(total) {
		return fmt.Errorf("graph: snapshot: %s offsets do not span the arena (first=%d last=%d want 0..%d)",
			what, off[0], off[n], total)
	}
	for i := 0; i < n; i++ {
		if off[i] > off[i+1] {
			return fmt.Errorf("graph: snapshot: %s offsets not monotonic at %d", what, i)
		}
	}
	return nil
}

// hashBytes feeds p to h.
//
// invariant: hash.Hash documents that Write never returns an error, so
// the discarded result cannot carry one; this wrapper keeps that
// contract explicit in one place.
func hashBytes(h hash.Hash64, p []byte) {
	//lint:ignore errdrop hash.Hash documents that Write never returns an error
	_, _ = h.Write(p)
}

func errOr(a, b error) error {
	if a != nil {
		return fmt.Errorf("graph: snapshot: truncated body: %w", a)
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
