package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// chain builds 0 → 1 → … → n-1.
func chain(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode("N", map[string]Value{"idx": N(float64(i))})
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1), "next")
	}
	return g
}

// randomGraph builds a seeded random directed graph.
func randomGraph(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New()
	labels := []string{"A", "B", "C"}
	for i := 0; i < n; i++ {
		g.AddNode(labels[rng.Intn(len(labels))], map[string]Value{
			"x": N(float64(rng.Intn(10))),
			"s": S(labels[rng.Intn(len(labels))]),
		})
	}
	for i := 0; i < m; i++ {
		a, b := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if a != b {
			g.AddEdge(a, b, "e")
		}
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := New()
	a := g.AddNode("Person", map[string]Value{"Age": N(30), "Name": S("Ann")})
	b := g.AddNode("Person", map[string]Value{"Age": N(40)})
	c := g.AddNode("City", nil)
	g.AddEdge(a, c, "lives")
	g.AddEdge(b, c, "lives")

	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("size = (%d,%d), want (3,2)", g.NumNodes(), g.NumEdges())
	}
	if g.Label(a) != "Person" || g.Label(c) != "City" {
		t.Error("labels wrong")
	}
	if v, ok := g.Attr(a, "Age"); !ok || !v.Equal(N(30)) {
		t.Error("Attr(a, Age) wrong")
	}
	if _, ok := g.Attr(a, "Height"); ok {
		t.Error("missing attribute should miss")
	}
	if _, ok := g.Attr(c, "Age"); ok {
		t.Error("attr on attrless node should miss")
	}
	if len(g.NodesByLabel("Person")) != 2 {
		t.Error("NodesByLabel(Person) wrong")
	}
	if len(g.NodesByLabel("")) != 3 {
		t.Error("wildcard label should list all nodes")
	}
	if g.NodesByLabel("Country") != nil {
		t.Error("unknown label should be empty")
	}
	if g.Degree(c) != 2 || g.Degree(a) != 1 {
		t.Error("degrees wrong")
	}
	if len(g.Out(a)) != 1 || g.Out(a)[0].To != c {
		t.Error("out adjacency wrong")
	}
	if len(g.In(c)) != 2 {
		t.Error("in adjacency wrong")
	}
}

func TestSetAttr(t *testing.T) {
	g := New()
	a := g.AddNode("X", map[string]Value{"p": N(1)})
	g.SetAttr(a, "p", N(2))
	if v, _ := g.Attr(a, "p"); !v.Equal(N(2)) {
		t.Error("overwrite failed")
	}
	g.SetAttr(a, "q", S("new"))
	if v, ok := g.Attr(a, "q"); !ok || !v.Equal(S("new")) {
		t.Error("insert failed")
	}
	// Tuple must stay sorted by attribute id.
	tuple := g.Tuple(a)
	for i := 1; i < len(tuple); i++ {
		if tuple[i-1].Attr >= tuple[i].Attr {
			t.Error("tuple not sorted after SetAttr")
		}
	}
}

func TestTupleSortedProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(20, 30, seed)
		for i := 0; i < g.NumNodes(); i++ {
			tuple := g.Tuple(NodeID(i))
			for j := 1; j < len(tuple); j++ {
				if tuple[j-1].Attr >= tuple[j].Attr {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDistChain(t *testing.T) {
	g := chain(6)
	if d := g.Dist(0, 5, 10); d != 5 {
		t.Errorf("Dist(0,5) = %d, want 5", d)
	}
	if d := g.Dist(0, 5, 4); d != Unreachable {
		t.Errorf("bounded Dist should be unreachable, got %d", d)
	}
	if d := g.Dist(5, 0, 10); d != Unreachable {
		t.Errorf("reverse Dist on a directed chain should be unreachable, got %d", d)
	}
	if d := g.Dist(3, 3, 0); d != 0 {
		t.Errorf("Dist(v,v) = %d, want 0", d)
	}
}

// naiveDist is a reference implementation for property testing.
func naiveDist(g *Graph, from, to NodeID, dir Direction) int {
	dist := map[NodeID]int{from: 0}
	queue := []NodeID{from}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		var nbs []Edge
		if dir == Forward || dir == Both {
			nbs = append(nbs, g.Out(v)...)
		}
		if dir == Backward || dir == Both {
			nbs = append(nbs, g.In(v)...)
		}
		for _, e := range nbs {
			if _, seen := dist[e.To]; !seen {
				dist[e.To] = dist[v] + 1
				queue = append(queue, e.To)
			}
		}
	}
	if d, ok := dist[to]; ok {
		return d
	}
	return Unreachable
}

// TestBallMatchesNaive cross-checks Ball against a reference BFS in all
// three directions.
func TestBallMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := randomGraph(25, 50, seed)
		for _, dir := range []Direction{Forward, Backward, Both} {
			src := NodeID(int(seed) % g.NumNodes())
			ball := g.Ball(src, 4, dir)
			seen := map[NodeID]int32{}
			for _, nd := range ball {
				if _, dup := seen[nd.V]; dup {
					t.Fatalf("seed %d: Ball yields duplicate node %d", seed, nd.V)
				}
				seen[nd.V] = nd.D
			}
			for v := 0; v < g.NumNodes(); v++ {
				want := naiveDist(g, src, NodeID(v), dir)
				got, ok := seen[NodeID(v)]
				switch {
				case want <= 4 && (!ok || int(got) != want):
					t.Fatalf("seed %d dir %d: Ball dist(%d→%d) = %v (ok=%v), want %d",
						seed, dir, src, v, got, ok, want)
				case want > 4 && ok:
					t.Fatalf("seed %d dir %d: Ball includes node beyond bound", seed, dir)
				}
			}
		}
	}
}

// TestDistMatchesNaive cross-checks the bounded Dist.
func TestDistMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := randomGraph(20, 40, seed)
		for a := 0; a < g.NumNodes(); a += 3 {
			for b := 0; b < g.NumNodes(); b += 3 {
				want := naiveDist(g, NodeID(a), NodeID(b), Forward)
				got := g.Dist(NodeID(a), NodeID(b), g.NumNodes())
				if got != want {
					t.Fatalf("seed %d: Dist(%d,%d) = %d, want %d", seed, a, b, got, want)
				}
			}
		}
	}
}

func TestBallFirstEntryIsOrigin(t *testing.T) {
	g := chain(4)
	ball := g.Ball(1, 2, Forward)
	if len(ball) == 0 || ball[0].V != 1 || ball[0].D != 0 {
		t.Errorf("Ball must start with (origin, 0): %v", ball)
	}
}

func TestDiameter(t *testing.T) {
	g := chain(7)
	if d := g.Diameter(); d != 6 {
		t.Errorf("chain diameter = %d, want 6", d)
	}
	// Cached value survives repeated calls.
	if d := g.Diameter(); d != 6 {
		t.Errorf("cached diameter = %d, want 6", d)
	}
	// Mutation invalidates the cache.
	g.AddNode("N", nil)
	g.AddEdge(6, 7, "next")
	if d := g.Diameter(); d != 7 {
		t.Errorf("diameter after growth = %d, want 7", d)
	}
	empty := New()
	if d := empty.Diameter(); d != 1 {
		t.Errorf("empty graph diameter = %d, want 1 (cost-normalization floor)", d)
	}
}

func TestActiveDomain(t *testing.T) {
	g := New()
	g.AddNode("P", map[string]Value{"price": N(10), "tag": S("a")})
	g.AddNode("P", map[string]Value{"price": N(30), "tag": S("b")})
	g.AddNode("P", map[string]Value{"price": N(10), "tag": S("a")})

	d := g.ActiveDomain("price")
	if len(d.Values) != 2 {
		t.Fatalf("price domain = %v, want 2 distinct values", d.Values)
	}
	if d.Range() != 20 {
		t.Errorf("price range = %v, want 20", d.Range())
	}
	if !d.Contains(N(30)) || d.Contains(N(20)) {
		t.Error("Contains wrong")
	}
	if got := g.ActiveDomain("tag").Range(); got != 1 {
		t.Errorf("string attr range = %v, want fallback 1", got)
	}
	if got := g.ActiveDomain("missing"); len(got.Values) != 0 {
		t.Errorf("missing attribute domain should be empty")
	}
	// Domains must be sorted.
	for i := 1; i < len(d.Values); i++ {
		if d.Values[i-1].Compare(d.Values[i]) >= 0 {
			t.Error("domain values not sorted")
		}
	}
	// Mutation invalidates the cache.
	g.AddNode("P", map[string]Value{"price": N(99)})
	if d2 := g.ActiveDomain("price"); len(d2.Values) != 3 {
		t.Errorf("domain after mutation = %v, want 3 values", d2.Values)
	}
}

func TestJSONRoundtrip(t *testing.T) {
	g := randomGraph(15, 25, 99)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	g2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("roundtrip size mismatch: (%d,%d) vs (%d,%d)",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for i := 0; i < g.NumNodes(); i++ {
		v := NodeID(i)
		if g.Label(v) != g2.Label(v) {
			t.Fatalf("label mismatch at %d", i)
		}
		for _, av := range g.Tuple(v) {
			name := g.Attrs.Name(av.Attr)
			got, ok := g2.Attr(v, name)
			if !ok || !got.Equal(av.Val) {
				t.Fatalf("attr %q mismatch at node %d", name, i)
			}
		}
		if len(g.Out(v)) != len(g2.Out(v)) {
			t.Fatalf("out degree mismatch at %d", i)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	bad := []string{
		`{`,
		`{"nodes":[{"id":1,"label":"A"}],"edges":[]}`,                     // non-dense ids
		`{"nodes":[{"id":0,"label":"A"}],"edges":[{"src":0,"dst":5}]}`,    // edge out of range
		`{"nodes":[{"id":0,"label":"A","attrs":{"x":[1,2]}}],"edges":[]}`, // bad attr type
	}
	for _, s := range bad {
		if _, err := ReadJSON(bytes.NewBufferString(s)); err == nil {
			t.Errorf("ReadJSON(%q) should fail", s)
		}
	}
}
