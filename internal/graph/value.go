// Package graph implements the directed, attributed graph model of
// Section 2.1 of "Answering Why-questions by Exemplars in Attributed
// Graphs" (SIGMOD 2019): nodes and edges carry labels, and every node
// carries a tuple of attribute-value pairs drawn from a finite attribute
// set. The package also provides the graph-level quantities the paper's
// cost model depends on: the diameter D(G) and active domains adom(A, G).
package graph

import (
	"fmt"
	"strconv"
	"strings"
)

// ValueKind discriminates the two attribute value types the paper's
// examples use: numbers (prices, display sizes, years) and strings
// (names, categorical values such as "25%"-style discounts are parsed
// as numbers when possible).
type ValueKind uint8

const (
	// Number is a float64-valued attribute.
	Number ValueKind = iota
	// String is a text-valued attribute.
	String
)

// Value is a typed attribute value. The zero Value is the number 0.
type Value struct {
	Kind ValueKind
	Num  float64
	Str  string
}

// N returns a numeric Value.
func N(v float64) Value { return Value{Kind: Number, Num: v} }

// S returns a string Value.
func S(v string) Value { return Value{Kind: String, Str: v} }

// ParseValue interprets s as a Value. Numeric strings — optionally
// decorated with a leading currency symbol, a trailing percent sign, or
// thousands separators — become Number values ("$800" → 800, "25%" → 25,
// "6.2" → 6.2). Everything else stays a String.
func ParseValue(s string) Value {
	t := strings.TrimSpace(s)
	t = strings.TrimPrefix(t, "$")
	t = strings.TrimSuffix(t, "%")
	t = strings.ReplaceAll(t, ",", "")
	if t != "" {
		if f, err := strconv.ParseFloat(t, 64); err == nil {
			return N(f)
		}
	}
	return S(s)
}

// IsNumber reports whether the value is numeric.
func (v Value) IsNumber() bool { return v.Kind == Number }

// Equal reports value equality. A Number never equals a String even if
// the text renders identically.
func (v Value) Equal(w Value) bool {
	if v.Kind != w.Kind {
		return false
	}
	if v.Kind == Number {
		return v.Num == w.Num
	}
	return v.Str == w.Str
}

// Compare orders v against w: -1, 0, or +1. Numbers order numerically,
// strings lexicographically. Mixed kinds order Numbers before Strings so
// that sorting heterogeneous domains is deterministic.
func (v Value) Compare(w Value) int {
	if v.Kind != w.Kind {
		if v.Kind == Number {
			return -1
		}
		return 1
	}
	if v.Kind == Number {
		switch {
		case v.Num < w.Num:
			return -1
		case v.Num > w.Num:
			return 1
		}
		return 0
	}
	return strings.Compare(v.Str, w.Str)
}

// String renders the value for display.
func (v Value) String() string {
	if v.Kind == Number {
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	}
	return v.Str
}

// Op is a comparison operator from the paper's literal alphabet
// {>, >=, =, <=, <}.
type Op uint8

const (
	// EQ is "=".
	EQ Op = iota
	// LT is "<".
	LT
	// LE is "<=".
	LE
	// GT is ">".
	GT
	// GE is ">=".
	GE
)

// ParseOp parses a comparison operator token.
func ParseOp(s string) (Op, error) {
	switch strings.TrimSpace(s) {
	case "=", "==":
		return EQ, nil
	case "<":
		return LT, nil
	case "<=", "≤":
		return LE, nil
	case ">":
		return GT, nil
	case ">=", "≥":
		return GE, nil
	}
	return EQ, fmt.Errorf("graph: unknown comparison operator %q", s)
}

// String renders the operator.
func (op Op) String() string {
	switch op {
	case EQ:
		return "="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// Holds reports whether "a op b" is true under Compare ordering.
// Comparisons across kinds are false except for the total-order
// comparison used internally by Compare.
func (op Op) Holds(a, b Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	c := a.Compare(b)
	switch op {
	case EQ:
		return c == 0
	case LT:
		return c < 0
	case LE:
		return c <= 0
	case GT:
		return c > 0
	case GE:
		return c >= 0
	}
	return false
}

// Flip returns the operator with its operands swapped: a op b iff
// b op.Flip() a.
func (op Op) Flip() Op {
	switch op {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	}
	return op
}
