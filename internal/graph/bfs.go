package graph

import "sync"

// Unreachable is returned by distance queries when no path exists within
// the requested bound.
const Unreachable = int(^uint(0) >> 1) // max int

// Direction selects which adjacency a traversal follows.
type Direction uint8

const (
	// Forward follows out-edges (paths leaving the start node).
	Forward Direction = iota
	// Backward follows in-edges (paths arriving at the start node).
	Backward
	// Both ignores direction (undirected neighborhood exploration).
	Both
)

// NodeDist pairs a node with its BFS distance from a traversal origin.
type NodeDist struct {
	V NodeID
	D int32
}

// bfsScratch is an epoch-stamped visited array reused across BFS runs;
// clearing is O(1) per run (bump the stamp) instead of O(|V|).
type bfsScratch struct {
	seen  []uint32
	stamp uint32
}

var scratchPool = sync.Pool{New: func() interface{} { return &bfsScratch{} }}

func (g *Graph) scratch() *bfsScratch {
	sc := scratchPool.Get().(*bfsScratch)
	if len(sc.seen) < g.NumNodes() {
		sc.seen = make([]uint32, g.NumNodes())
		sc.stamp = 0
	}
	sc.stamp++
	if sc.stamp == 0 { // wrapped: hard reset
		for i := range sc.seen {
			sc.seen[i] = 0
		}
		sc.stamp = 1
	}
	return sc
}

// Ball returns every node within maxHops of v along the chosen
// direction with its BFS distance; the first entry is (v, 0) and
// entries appear in BFS order. The returned slice is freshly allocated
// and owned by the caller.
func (g *Graph) Ball(v NodeID, maxHops int, dir Direction) []NodeDist {
	g.ensure()
	sc := g.scratch()
	defer scratchPool.Put(sc)
	out := make([]NodeDist, 0, 16)
	out = append(out, NodeDist{V: v, D: 0})
	sc.seen[v] = sc.stamp
	start := 0
	for d := int32(1); d <= int32(maxHops); d++ {
		end := len(out)
		if start == end {
			break
		}
		for i := start; i < end; i++ {
			u := out[i].V
			if dir == Forward || dir == Both {
				for _, e := range g.outEdges[g.outOff[u]:g.outOff[u+1]] {
					if sc.seen[e.To] != sc.stamp {
						sc.seen[e.To] = sc.stamp
						out = append(out, NodeDist{V: e.To, D: d})
					}
				}
			}
			if dir == Backward || dir == Both {
				for _, e := range g.inEdges[g.inOff[u]:g.inOff[u+1]] {
					if sc.seen[e.To] != sc.stamp {
						sc.seen[e.To] = sc.stamp
						out = append(out, NodeDist{V: e.To, D: d})
					}
				}
			}
		}
		start = end
	}
	return out
}

// Dist returns the length of the shortest directed path from → to,
// searching at most maxHops hops. It returns Unreachable when no such
// path exists. Dist(v, v, _) is 0.
func (g *Graph) Dist(from, to NodeID, maxHops int) int {
	if from == to {
		return 0
	}
	if maxHops <= 0 {
		return Unreachable
	}
	g.ensure()
	sc := g.scratch()
	defer scratchPool.Put(sc)
	queue := make([]NodeID, 0, 16)
	queue = append(queue, from)
	sc.seen[from] = sc.stamp
	start := 0
	for d := 1; d <= maxHops; d++ {
		end := len(queue)
		if start == end {
			return Unreachable
		}
		for i := start; i < end; i++ {
			for _, e := range g.outEdges[g.outOff[queue[i]]:g.outOff[queue[i]+1]] {
				if sc.seen[e.To] == sc.stamp {
					continue
				}
				if e.To == to {
					return d
				}
				sc.seen[e.To] = sc.stamp
				queue = append(queue, e.To)
			}
		}
		start = end
	}
	return Unreachable
}

// eccentricity runs a full undirected BFS from v and returns the largest
// finite distance reached along with a node at that distance.
func (g *Graph) eccentricity(v NodeID) (int, NodeID) {
	ball := g.Ball(v, g.NumNodes(), Both)
	last := ball[len(ball)-1]
	return int(last.D), last.V
}

// Diameter returns an estimate of D(G), the diameter of the graph viewed
// undirected, computed by the double-sweep heuristic (exact on trees,
// a lower bound in general; the paper uses D(G) only to normalize
// edge-bound operator costs). The estimate is cached until the graph
// mutates, and is at least 1 on nonempty graphs so cost normalization
// never divides by zero.
//
// The BFS sweeps run outside lazyMu: Ball calls ensure, which takes the
// same mutex when the graph is dirty, so holding it across the sweeps
// would self-deadlock. Concurrent first callers may each compute the
// estimate; every computation over the same (immutable-while-read)
// graph yields the same value, so the racing stores agree.
func (g *Graph) Diameter() int {
	g.ensure()
	g.lazyMu.Lock()
	d := g.diam
	g.lazyMu.Unlock()
	if d >= 0 {
		return d
	}
	n := g.NumNodes()
	best := 1
	if n > 0 {
		// Double sweep: BFS from a few arbitrary seeds, then from the
		// farthest node each finds; the second sweep's eccentricity is
		// the classic double-sweep lower bound (exact on trees).
		seeds := []NodeID{0, NodeID(n / 2), NodeID(n - 1)}
		for _, s := range seeds {
			e1, far := g.eccentricity(s)
			if e1 > best {
				best = e1
			}
			e2, _ := g.eccentricity(far)
			if e2 > best {
				best = e2
			}
		}
	}
	g.lazyMu.Lock()
	// Keep whichever estimate landed first unless a mutation reset the
	// cache in between; all writers computed the same number anyway.
	if g.diam < 0 {
		g.diam = best
	}
	d = g.diam
	g.lazyMu.Unlock()
	return d
}
