package graph

import (
	"bytes"
	"io"
	"testing"
)

// benchGraph is sized so loader costs dominate fixed overheads while
// keeping `go test -bench` runs quick; the 1M-node end-to-end numbers
// live in internal/chase's TestEmitLoadBench.
func benchGraph(b *testing.B) *Graph {
	b.Helper()
	return randomGraph(20000, 60000, 7)
}

// BenchmarkReadJSON pins the streaming token decoder's allocation
// profile: the old whole-DOM decoder allocated every node, edge, and
// raw attr value up front before graph construction even began.
func BenchmarkReadJSON(b *testing.B) {
	var buf bytes.Buffer
	if err := benchGraph(b).WriteJSON(&buf); err != nil {
		b.Fatalf("WriteJSON: %v", err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			b.Fatalf("ReadJSON: %v", err)
		}
		if g.NumNodes() != 20000 {
			b.Fatalf("decoded %d nodes", g.NumNodes())
		}
	}
}

func BenchmarkReadSnapshot(b *testing.B) {
	var buf bytes.Buffer
	if err := benchGraph(b).WriteSnapshot(&buf, nil); err != nil {
		b.Fatalf("WriteSnapshot: %v", err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			b.Fatalf("ReadSnapshot: %v", err)
		}
		if snap.G.NumNodes() != 20000 {
			b.Fatalf("decoded %d nodes", snap.G.NumNodes())
		}
	}
}

func BenchmarkWriteSnapshot(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.WriteSnapshot(io.Discard, nil); err != nil {
			b.Fatalf("WriteSnapshot: %v", err)
		}
	}
}

// TestReadJSONStreamsEdgesBeforeNodes covers the buffered-edges path:
// hand-authored files may put the edges section first.
func TestReadJSONEdgesBeforeNodes(t *testing.T) {
	const doc = `{"edges":[{"src":0,"dst":1,"label":"e"}],` +
		`"nodes":[{"id":0,"label":"A"},{"id":1,"label":"B"}]}`
	g, err := ReadJSON(bytes.NewReader([]byte(doc)))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("size = (%d,%d)", g.NumNodes(), g.NumEdges())
	}
	if out := g.Out(0); len(out) != 1 || out[0].To != 1 {
		t.Fatalf("Out(0) = %v", out)
	}
}

// TestReadJSONIgnoresUnknownKeys: the meta header must be optional and
// unknown top-level keys skipped, so older files and hand-authored
// fixtures keep loading.
func TestReadJSONUnknownAndMetaKeys(t *testing.T) {
	const doc = `{"comment":"hi","meta":{"nodes":1,"edges":0,"attr_entries":1},` +
		`"nodes":[{"id":0,"label":"A","attrs":{"x":3}}],"edges":[]}`
	g, err := ReadJSON(bytes.NewReader([]byte(doc)))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if v, ok := g.Attr(0, "x"); !ok || !v.Equal(N(3)) {
		t.Fatalf("attr lost: %v %v", v, ok)
	}
}
