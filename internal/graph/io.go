package graph

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonNode / jsonEdge / jsonGraph define the on-disk JSON shape used by
// the CLI tools. Attribute values are serialized as raw JSON scalars:
// numbers stay numbers, everything else is a string.
type jsonNode struct {
	ID    int                        `json:"id"`
	Label string                     `json:"label"`
	Attrs map[string]json.RawMessage `json:"attrs,omitempty"`
}

type jsonEdge struct {
	Src   int    `json:"src"`
	Dst   int    `json:"dst"`
	Label string `json:"label,omitempty"`
}

type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

// WriteJSON serializes the graph.
func (g *Graph) WriteJSON(w io.Writer) error {
	jg := jsonGraph{
		Nodes: make([]jsonNode, g.NumNodes()),
		Edges: make([]jsonEdge, 0, g.NumEdges()),
	}
	for i := 0; i < g.NumNodes(); i++ {
		v := NodeID(i)
		attrs := make(map[string]json.RawMessage, len(g.Tuple(v)))
		for _, av := range g.Tuple(v) {
			var raw []byte
			var err error
			if av.Val.Kind == Number {
				raw, err = json.Marshal(av.Val.Num)
			} else {
				raw, err = json.Marshal(av.Val.Str)
			}
			if err != nil {
				return fmt.Errorf("graph: marshal attr %q of node %d: %w",
					g.Attrs.Name(av.Attr), i, err)
			}
			attrs[g.Attrs.Name(av.Attr)] = raw
		}
		jg.Nodes[i] = jsonNode{ID: i, Label: g.Label(v), Attrs: attrs}
		for _, e := range g.Out(v) {
			jg.Edges = append(jg.Edges, jsonEdge{
				Src: i, Dst: int(e.To), Label: g.Labels.Name(e.Label),
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(jg)
}

// ReadJSON parses a graph previously written by WriteJSON (or authored
// by hand in the same shape). Node ids must be 0..n-1.
func ReadJSON(r io.Reader) (*Graph, error) {
	var jg jsonGraph
	if err := json.NewDecoder(r).Decode(&jg); err != nil {
		return nil, fmt.Errorf("graph: decode: %w", err)
	}
	g := New()
	for i, n := range jg.Nodes {
		if n.ID != i {
			return nil, fmt.Errorf("graph: node ids must be dense 0..n-1, got %d at index %d", n.ID, i)
		}
		attrs := make(map[string]Value, len(n.Attrs))
		for name, raw := range n.Attrs {
			var num float64
			if err := json.Unmarshal(raw, &num); err == nil {
				attrs[name] = N(num)
				continue
			}
			var s string
			if err := json.Unmarshal(raw, &s); err != nil {
				return nil, fmt.Errorf("graph: attr %q of node %d is neither number nor string", name, i)
			}
			attrs[name] = S(s)
		}
		g.AddNode(n.Label, attrs)
	}
	for _, e := range jg.Edges {
		if e.Src < 0 || e.Src >= g.NumNodes() || e.Dst < 0 || e.Dst >= g.NumNodes() {
			return nil, fmt.Errorf("graph: edge %d→%d out of range", e.Src, e.Dst)
		}
		g.AddEdge(NodeID(e.Src), NodeID(e.Dst), e.Label)
	}
	return g, nil
}
