package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// jsonNode / jsonEdge define the on-disk JSON shape used by the CLI
// tools. Attribute values are serialized as raw JSON scalars: numbers
// stay numbers, everything else is a string.
type jsonNode struct {
	ID    int                        `json:"id"`
	Label string                     `json:"label"`
	Attrs map[string]json.RawMessage `json:"attrs,omitempty"`
}

type jsonEdge struct {
	Src   int    `json:"src"`
	Dst   int    `json:"dst"`
	Label string `json:"label,omitempty"`
}

// jsonMeta is the optional header WriteJSON emits first so ReadJSON can
// pre-size every arena before the first element arrives. Hand-authored
// files may omit it.
type jsonMeta struct {
	Nodes       int `json:"nodes"`
	Edges       int `json:"edges"`
	AttrEntries int `json:"attr_entries"`
}

// WriteJSON serializes the graph. Output is streamed — nodes and edges
// are encoded one element at a time, so the writer's memory is O(1) in
// the graph size — and deterministic (json.Marshal sorts map keys). A
// "meta" header with exact element counts comes first so ReadJSON can
// allocate the arenas up front.
func (g *Graph) WriteJSON(w io.Writer) error {
	sw := &stickyWriter{bw: bufio.NewWriterSize(w, 1<<16)}
	attrEntries := 0
	for i := 0; i < g.NumNodes(); i++ {
		attrEntries += len(g.Tuple(NodeID(i)))
	}
	sw.str(fmt.Sprintf("{\n \"meta\": {\"nodes\": %d, \"edges\": %d, \"attr_entries\": %d},\n \"nodes\": [",
		g.NumNodes(), g.NumEdges(), attrEntries))
	for i := 0; i < g.NumNodes(); i++ {
		v := NodeID(i)
		tuple := g.Tuple(v)
		attrs := make(map[string]json.RawMessage, len(tuple))
		for _, av := range tuple {
			var raw []byte
			var err error
			if av.Val.Kind == Number {
				raw, err = json.Marshal(av.Val.Num)
			} else {
				raw, err = json.Marshal(av.Val.Str)
			}
			if err != nil {
				return fmt.Errorf("graph: marshal attr %q of node %d: %w",
					g.Attrs.Name(av.Attr), i, err)
			}
			attrs[g.Attrs.Name(av.Attr)] = raw
		}
		enc, err := json.Marshal(jsonNode{ID: i, Label: g.Label(v), Attrs: attrs})
		if err != nil {
			return fmt.Errorf("graph: marshal node %d: %w", i, err)
		}
		if i > 0 {
			sw.str(",")
		}
		sw.str("\n  ")
		sw.raw(enc)
	}
	sw.str("\n ],\n \"edges\": [")
	wrote := 0
	for i := 0; i < g.NumNodes(); i++ {
		for _, e := range g.Out(NodeID(i)) {
			enc, err := json.Marshal(jsonEdge{Src: i, Dst: int(e.To), Label: g.Labels.Name(e.Label)})
			if err != nil {
				return fmt.Errorf("graph: marshal edge %d→%d: %w", i, e.To, err)
			}
			if wrote > 0 {
				sw.str(",")
			}
			wrote++
			sw.str("\n  ")
			sw.raw(enc)
		}
	}
	sw.str("\n ]\n}\n")
	if sw.err != nil {
		return fmt.Errorf("graph: write: %w", sw.err)
	}
	return sw.bw.Flush()
}

// stickyWriter wraps a bufio.Writer with first-error capture, so the
// hot emit loop stays straight-line and the error surfaces once at the
// end (bufio's own errors are sticky in the same way).
type stickyWriter struct {
	bw  *bufio.Writer
	err error
}

func (sw *stickyWriter) str(s string) {
	if sw.err == nil {
		_, sw.err = sw.bw.WriteString(s)
	}
}

func (sw *stickyWriter) raw(b []byte) {
	if sw.err == nil {
		_, sw.err = sw.bw.Write(b)
	}
}

// ReadJSON parses a graph previously written by WriteJSON (or authored
// by hand in the same shape). Node ids must be 0..n-1. The decode
// streams: elements are consumed one json.Decoder token group at a time
// instead of materializing the whole document, and when the optional
// "meta" header is present the node/edge/attribute arenas are allocated
// once, up front.
func ReadJSON(r io.Reader) (*Graph, error) {
	dec := json.NewDecoder(r)
	if err := expectDelim(dec, '{'); err != nil {
		return nil, fmt.Errorf("graph: decode: %w", err)
	}
	g := New()
	// Edges that arrive before the "nodes" section cannot be validated
	// or label-interned yet (interning them early would permute label
	// ids relative to the node-first order); buffer them.
	type pendingEdge struct {
		src, dst int
		label    string
	}
	var pending []pendingEdge
	nodesSeen := false
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("graph: decode: %w", err)
		}
		key, ok := tok.(string)
		if !ok {
			return nil, fmt.Errorf("graph: decode: unexpected token %v for object key", tok)
		}
		switch key {
		case "meta":
			var meta jsonMeta
			if err := dec.Decode(&meta); err != nil {
				return nil, fmt.Errorf("graph: decode meta: %w", err)
			}
			g.Reserve(meta.Nodes, meta.Edges, meta.AttrEntries)
		case "nodes":
			if err := readNodes(dec, g); err != nil {
				return nil, err
			}
			nodesSeen = true
		case "edges":
			if err := expectDelim(dec, '['); err != nil {
				return nil, fmt.Errorf("graph: decode edges: %w", err)
			}
			for dec.More() {
				var e jsonEdge
				if err := dec.Decode(&e); err != nil {
					return nil, fmt.Errorf("graph: decode edge: %w", err)
				}
				if nodesSeen {
					if err := addEdgeChecked(g, e.Src, e.Dst, e.Label); err != nil {
						return nil, err
					}
				} else {
					pending = append(pending, pendingEdge{e.Src, e.Dst, e.Label})
				}
			}
			if err := expectDelim(dec, ']'); err != nil {
				return nil, fmt.Errorf("graph: decode edges: %w", err)
			}
		default:
			var skip json.RawMessage
			if err := dec.Decode(&skip); err != nil {
				return nil, fmt.Errorf("graph: decode %q: %w", key, err)
			}
		}
	}
	if err := expectDelim(dec, '}'); err != nil {
		return nil, fmt.Errorf("graph: decode: %w", err)
	}
	for _, e := range pending {
		if err := addEdgeChecked(g, e.src, e.dst, e.label); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// readNodes consumes the "nodes" array one element at a time.
func readNodes(dec *json.Decoder, g *Graph) error {
	if err := expectDelim(dec, '['); err != nil {
		return fmt.Errorf("graph: decode nodes: %w", err)
	}
	var (
		names []string    // scratch, reused across nodes
		tuple []AttrValue // scratch, reused across nodes
	)
	for i := 0; dec.More(); i++ {
		var n jsonNode
		if err := dec.Decode(&n); err != nil {
			return fmt.Errorf("graph: decode node: %w", err)
		}
		if n.ID != i {
			return fmt.Errorf("graph: node ids must be dense 0..n-1, got %d at index %d", n.ID, i)
		}
		// Intern in sorted-name order — same id-assignment order as
		// AddNode, so a streamed load is interner-identical to a
		// DOM load of the same file.
		names = names[:0]
		for name := range n.Attrs {
			names = append(names, name)
		}
		sort.Strings(names)
		tuple = tuple[:0]
		for _, name := range names {
			val, err := parseAttrScalar(n.Attrs[name])
			if err != nil {
				return fmt.Errorf("graph: attr %q of node %d is neither number nor string", name, i)
			}
			tuple = append(tuple, AttrValue{Attr: g.Attrs.Intern(name), Val: val})
		}
		g.AddNodeTuple(n.Label, tuple)
	}
	if err := expectDelim(dec, ']'); err != nil {
		return fmt.Errorf("graph: decode nodes: %w", err)
	}
	return nil
}

// parseAttrScalar interprets one raw attribute value: numbers stay
// numbers, strings stay strings, anything else is an error.
func parseAttrScalar(raw json.RawMessage) (Value, error) {
	var num float64
	if err := json.Unmarshal(raw, &num); err == nil {
		return N(num), nil
	}
	var s string
	if err := json.Unmarshal(raw, &s); err != nil {
		return Value{}, err
	}
	return S(s), nil
}

func addEdgeChecked(g *Graph, src, dst int, label string) error {
	if src < 0 || src >= g.NumNodes() || dst < 0 || dst >= g.NumNodes() {
		return fmt.Errorf("graph: edge %d→%d out of range", src, dst)
	}
	g.AddEdge(NodeID(src), NodeID(dst), label)
	return nil
}

func expectDelim(dec *json.Decoder, want json.Delim) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if d, ok := tok.(json.Delim); !ok || d != want {
		return fmt.Errorf("expected %q, got %v", want, tok)
	}
	return nil
}
