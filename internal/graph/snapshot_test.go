package graph

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"strings"
	"testing"
)

// snapGraph builds a graph exercising every snapshot section: multiple
// labels, mixed number/string attributes (with sharing for the string
// table), parallel edges, labeled and unlabeled edges, attrless nodes.
func snapGraph(t testing.TB) *Graph {
	t.Helper()
	g := randomGraph(60, 150, 42)
	g.AddNode("Lonely", nil)
	g.AddNode("D", map[string]Value{"name": S("dup"), "alias": S("dup"), "z": N(-7.25)})
	g.AddEdge(0, NodeID(g.NumNodes()-1), "")
	g.AddEdge(0, NodeID(g.NumNodes()-1), "") // parallel edge
	g.SetAttr(3, "x", N(99))
	return g
}

func snapBytes(t testing.TB, g *Graph, aux []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf, aux); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return buf.Bytes()
}

// assertGraphsEqual compares every part of the public read surface.
func assertGraphsEqual(t *testing.T, want, got *Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("size = (%d,%d), want (%d,%d)", got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	for i := 0; i < want.NumNodes(); i++ {
		v := NodeID(i)
		if got.Label(v) != want.Label(v) {
			t.Fatalf("label mismatch at node %d: %q vs %q", i, got.Label(v), want.Label(v))
		}
		wt, gt := want.Tuple(v), got.Tuple(v)
		if len(wt) != len(gt) {
			t.Fatalf("tuple length mismatch at node %d", i)
		}
		for j := range wt {
			if want.Attrs.Name(wt[j].Attr) != got.Attrs.Name(gt[j].Attr) || !wt[j].Val.Equal(gt[j].Val) {
				t.Fatalf("tuple entry %d of node %d differs", j, i)
			}
		}
		wo, go_ := want.Out(v), got.Out(v)
		if len(wo) != len(go_) {
			t.Fatalf("out degree mismatch at node %d", i)
		}
		for j := range wo {
			if wo[j].To != go_[j].To || want.Labels.Name(wo[j].Label) != got.Labels.Name(go_[j].Label) {
				t.Fatalf("out edge %d of node %d differs", j, i)
			}
		}
		wi, gi := want.In(v), got.In(v)
		if len(wi) != len(gi) {
			t.Fatalf("in degree mismatch at node %d", i)
		}
		for j := range wi {
			if wi[j].To != gi[j].To || want.Labels.Name(wi[j].Label) != got.Labels.Name(gi[j].Label) {
				t.Fatalf("in edge %d of node %d differs", j, i)
			}
		}
	}
	for _, label := range []string{"", "A", "B", "C", "Lonely", "missing"} {
		wn, gn := want.NodesByLabel(label), got.NodesByLabel(label)
		if len(wn) != len(gn) {
			t.Fatalf("NodesByLabel(%q) size mismatch", label)
		}
		for j := range wn {
			if wn[j] != gn[j] {
				t.Fatalf("NodesByLabel(%q)[%d] differs", label, j)
			}
		}
	}
	if want.Diameter() != got.Diameter() {
		t.Fatalf("diameter mismatch: %d vs %d", got.Diameter(), want.Diameter())
	}
	d1, d2 := want.ActiveDomain("x"), got.ActiveDomain("x")
	if len(d1.Values) != len(d2.Values) || d1.Range() != d2.Range() {
		t.Fatalf("active domain mismatch")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	g := snapGraph(t)
	first := snapBytes(t, g, nil)

	snap, err := ReadSnapshot(bytes.NewReader(first))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if snap.Version != SnapshotVersion {
		t.Fatalf("Version = %d, want %d", snap.Version, SnapshotVersion)
	}
	if snap.Aux != nil {
		t.Fatalf("Aux should be nil when none was written")
	}
	assertGraphsEqual(t, g, snap.G)

	// Golden determinism: write → read → write is byte-identical.
	second := snapBytes(t, snap.G, nil)
	if !bytes.Equal(first, second) {
		t.Fatalf("re-written snapshot differs: %d vs %d bytes", len(first), len(second))
	}
}

func TestSnapshotAuxRoundTrip(t *testing.T) {
	g := snapGraph(t)
	aux := []byte("opaque index payload \x00\x01\x02")
	snap, err := ReadSnapshot(bytes.NewReader(snapBytes(t, g, aux)))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if !bytes.Equal(snap.Aux, aux) {
		t.Fatalf("aux mismatch: %q", snap.Aux)
	}
}

func TestSnapshotEmptyGraph(t *testing.T) {
	g := New()
	snap, err := ReadSnapshot(bytes.NewReader(snapBytes(t, g, nil)))
	if err != nil {
		t.Fatalf("ReadSnapshot(empty): %v", err)
	}
	if snap.G.NumNodes() != 0 || snap.G.NumEdges() != 0 {
		t.Fatalf("empty graph round-trip gained elements")
	}
}

func TestSnapshotMutateAfterRestore(t *testing.T) {
	g := snapGraph(t)
	snap, err := ReadSnapshot(bytes.NewReader(snapBytes(t, g, nil)))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	r := snap.G
	n := r.AddNode("New", map[string]Value{"k": N(1)})
	r.AddEdge(0, n, "fresh")
	if r.NumEdges() != g.NumEdges()+1 {
		t.Fatalf("NumEdges = %d, want %d", r.NumEdges(), g.NumEdges()+1)
	}
	out := r.Out(0)
	if out[len(out)-1].To != n {
		t.Fatalf("appended edge missing from Out(0)")
	}
	if got := r.In(n); len(got) != 1 || got[0].To != 0 {
		t.Fatalf("In(new) = %v", got)
	}
	// Pre-existing adjacency survives the log synthesis + recompaction.
	for j, e := range g.Out(0) {
		if out[j] != e {
			t.Fatalf("out edge %d of node 0 changed after mutation", j)
		}
	}
}

func TestSnapshotRejectsTruncation(t *testing.T) {
	full := snapBytes(t, snapGraph(t), []byte("aux"))
	for _, cut := range []int{0, 1, 7, 8, 55, snapHeaderLen, len(full) / 3, len(full) / 2, len(full) - 9, len(full) - 1} {
		if _, err := ReadSnapshot(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d/%d bytes not rejected", cut, len(full))
		}
	}
}

func TestSnapshotRejectsBitFlips(t *testing.T) {
	full := snapBytes(t, snapGraph(t), []byte("aux"))
	for i := range full {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0xFF
		if _, err := ReadSnapshot(bytes.NewReader(mut)); err == nil {
			t.Fatalf("flipped byte %d/%d not rejected", i, len(full))
		}
	}
}

func TestSnapshotRejectsTrailingGarbage(t *testing.T) {
	full := snapBytes(t, snapGraph(t), nil)
	if _, err := ReadSnapshot(bytes.NewReader(append(full, 0))); err == nil {
		t.Fatalf("trailing byte not rejected")
	}
}

func TestSnapshotRejectsVersionSkew(t *testing.T) {
	full := snapBytes(t, snapGraph(t), nil)
	mut := append([]byte(nil), full...)
	binary.LittleEndian.PutUint32(mut[8:12], SnapshotVersion+1)
	// Re-sign the header so version skew — not the checksum — is what
	// the reader reports.
	h := fnv.New64a()
	hashBytes(h, mut[:48])
	binary.LittleEndian.PutUint64(mut[48:56], h.Sum64())
	_, err := ReadSnapshot(bytes.NewReader(mut))
	if err == nil {
		t.Fatalf("future version not rejected")
	}
	if !strings.Contains(err.Error(), "unsupported format version") {
		t.Fatalf("version skew error not descriptive: %v", err)
	}
}

func TestSnapshotRejectsForeignFile(t *testing.T) {
	for _, data := range [][]byte{
		[]byte("{\"nodes\":[],\"edges\":[]}  pad pad pad pad pad pad pad pad pad pad"),
		bytes.Repeat([]byte{0xAB}, 200),
	} {
		_, err := ReadSnapshot(bytes.NewReader(data))
		if err == nil {
			t.Fatalf("foreign file not rejected")
		}
		if !strings.Contains(err.Error(), "magic") {
			t.Fatalf("foreign-file error not about magic: %v", err)
		}
	}
}

func TestSniffSnapshot(t *testing.T) {
	full := snapBytes(t, New(), nil)
	if !SniffSnapshot(full) || !SniffSnapshot(full[:8]) {
		t.Error("valid snapshot prefix should sniff true")
	}
	if SniffSnapshot(full[:4]) || SniffSnapshot([]byte("{\"nodes\"")) || SniffSnapshot(nil) {
		t.Error("non-snapshot prefixes should sniff false")
	}
}

func FuzzSnapshotReader(f *testing.F) {
	f.Add(snapBytes(f, snapGraph(f), []byte("aux")))
	f.Add(snapBytes(f, New(), nil))
	f.Add(snapBytes(f, chain(5), nil))
	f.Add([]byte(snapshotMagic))
	f.Add([]byte("not a snapshot at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return // rejected input: the only requirement is no panic/OOM
		}
		// Accepted input must satisfy the determinism contract:
		// re-encoding the graph reproduces the input exactly.
		var buf bytes.Buffer
		if err := snap.G.WriteSnapshot(&buf, snap.Aux); err != nil {
			t.Fatalf("re-encode of accepted snapshot failed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatalf("accepted snapshot does not round-trip: %d vs %d bytes", buf.Len(), len(data))
		}
	})
}
