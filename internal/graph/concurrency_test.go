package graph

import (
	"sync"
	"testing"
)

// TestConcurrentReads exercises parallel Ball/Dist/domain reads under
// the race detector (the scratch pool and warmed caches must be safe).
func TestConcurrentReads(t *testing.T) {
	g := randomGraph(200, 600, 7)
	g.WarmCaches()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				src := NodeID((seed*31 + i) % g.NumNodes())
				dst := NodeID((seed*17 + i*3) % g.NumNodes())
				g.Ball(src, 3, Direction(i%3))
				g.Dist(src, dst, 4)
				g.ActiveDomain("x")
				_ = g.Diameter()
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentLazyBuilds hits a cold graph from many goroutines
// without WarmCaches: the lazy diameter/domain builders would race each
// other unless lazyMu serializes them.
func TestConcurrentLazyBuilds(t *testing.T) {
	g := randomGraph(150, 450, 11)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				g.ActiveDomain("x")
				_ = g.Diameter()
			}
		}()
	}
	wg.Wait()
}
