package graph

// Interner maps strings to small dense integer ids and back. Labels and
// attribute names are interned so hot matching loops compare int32s
// instead of strings.
type Interner struct {
	byName map[string]int32
	names  []string
}

// NewInterner returns an empty interner. ID 0 is reserved for the empty
// string, which the query model uses as the wildcard label '⊥'.
func NewInterner() *Interner {
	in := &Interner{byName: make(map[string]int32)}
	in.Intern("")
	return in
}

// Intern returns the id for s, assigning a fresh one on first sight.
func (in *Interner) Intern(s string) int32 {
	if id, ok := in.byName[s]; ok {
		return id
	}
	id := int32(len(in.names))
	in.byName[s] = id
	in.names = append(in.names, s)
	return id
}

// Lookup returns the id for s and whether it has been interned.
func (in *Interner) Lookup(s string) (int32, bool) {
	id, ok := in.byName[s]
	return id, ok
}

// Name returns the string for id. It panics on ids never issued.
func (in *Interner) Name(id int32) string { return in.names[id] }

// Len returns the number of interned strings (including the empty one).
func (in *Interner) Len() int { return len(in.names) }
