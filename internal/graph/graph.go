package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// graphUID issues process-unique graph identities (used to key caches
// that must never serve tables built over a different graph).
var graphUID atomic.Uint64

// NodeID identifies a node in a Graph. IDs are dense and start at 0.
type NodeID int32

// Edge is one directed adjacency entry.
type Edge struct {
	To    NodeID // neighbor (head for out-edges, tail for in-edges)
	Label int32  // interned edge label; 0 means unlabeled
}

// rawEdge is one entry of the append-only edge log, the authoritative
// edge list in insertion order. The CSR adjacency arenas are derived
// from it by two stable counting sorts, so per-node out-edge order and
// per-node in-edge order both reproduce the exact orders the old
// slice-of-slices representation exposed.
type rawEdge struct {
	From, To NodeID
	Label    int32
}

// AttrValue is one attribute-value pair of a node tuple f_A(v).
type AttrValue struct {
	Attr int32 // interned attribute name
	Val  Value
}

// Graph is a directed, attributed graph G = (V, E, L, f_A) in a
// CSR-style layout: node labels, attribute tuples, and both adjacency
// directions live in flat arenas indexed by per-node offset arrays, so
// a million-node graph is a handful of large allocations instead of
// millions of small ones, and the whole structure serializes to a
// binary snapshot (see snapshot.go) with no pointer chasing.
//
// Graphs are built single-threaded; afterwards all read methods are
// safe for concurrent use. Mutations append to build-side logs and set
// an atomic dirty flag; the first read after a mutation compacts the
// logs into the CSR arenas under lazyMu (the same mutex that guards the
// lazily computed diameter and active-domain caches). Once compacted —
// and mutation-free graphs compact exactly once — every read is a flag
// check plus flat array indexing.
type Graph struct {
	// Labels interns node and edge labels; Attrs interns attribute names.
	Labels *Interner
	Attrs  *Interner

	// CSR read core, valid whenever dirty is false. labels, attrOff,
	// and attrArena are additionally maintained incrementally by
	// AddNode, so they are stale only between a SetAttr and the next
	// compaction (attrOver holds the pending patches).
	labels     []int32            // node label, indexed by NodeID
	attrOff    []int32            // len NumNodes()+1; tuple of v is attrArena[attrOff[v]:attrOff[v+1]]
	attrArena  []AttrValue        // all node tuples, each sorted by Attr
	outOff     []int32            // len NumNodes()+1
	outEdges   []Edge             // out-adjacency arena, grouped by source
	inOff      []int32            // len NumNodes()+1
	inEdges    []Edge             // in-adjacency arena, grouped by target
	byLabel    map[int32][]NodeID // label id → ascending-ID run of byLabelAll
	byLabelAll []NodeID           // runs concatenated in label-id order

	// Build-side state. edgeLog is retained after compaction for graphs
	// built through AddEdge so later mutations can recompact without
	// losing the original edge insertion order; snapshot-loaded graphs
	// synthesize it on first mutation (in source-major order — see
	// ensureEdgeLog).
	edgeLog  []rawEdge
	attrOver map[NodeID][]AttrValue // SetAttr patches awaiting compaction
	edges    int

	// dirty is set by every mutation and cleared by compact. Reads load
	// it with acquire semantics, so a reader that observes false also
	// observes the completed CSR arenas.
	dirty atomic.Bool

	// lazily computed caches, invalidated on mutation
	lazyMu sync.Mutex
	diam   int               // guarded by lazyMu
	adoms  map[int32]*Domain // guarded by lazyMu

	uid uint64
}

// New returns an empty graph.
func New() *Graph {
	g := &Graph{
		Labels:  NewInterner(),
		Attrs:   NewInterner(),
		attrOff: []int32{0},
		diam:    -1,
		uid:     graphUID.Add(1),
	}
	// Born dirty: the first read compacts, so the CSR arenas (offset
	// arrays in particular) are always materialized, even for an empty
	// graph.
	g.dirty.Store(true)
	return g
}

// UID returns a process-unique identity for this graph instance.
func (g *Graph) UID() uint64 { return g.uid }

// NumNodes returns |V|. It never triggers compaction.
func (g *Graph) NumNodes() int { return len(g.labels) }

// NumEdges returns |E|. It never triggers compaction.
func (g *Graph) NumEdges() int { return g.edges }

// Reserve pre-sizes the build-side arenas for a graph of known shape:
// nodes, edges, and total attribute-tuple entries (0 skips the arena it
// sizes). Loaders that know the counts up front — the JSON reader's
// meta header, the datagen generators — call it once so a million-node
// build does a handful of allocations instead of log-many regrowths.
func (g *Graph) Reserve(nodes, edges, attrEntries int) {
	if nodes > 0 && cap(g.labels)-len(g.labels) < nodes {
		g.labels = append(make([]int32, 0, len(g.labels)+nodes), g.labels...)
		g.attrOff = append(make([]int32, 0, len(g.labels)+nodes+1), g.attrOff...)
	}
	if edges > 0 && cap(g.edgeLog)-len(g.edgeLog) < edges {
		g.edgeLog = append(make([]rawEdge, 0, len(g.edgeLog)+edges), g.edgeLog...)
	}
	if attrEntries > 0 && cap(g.attrArena)-len(g.attrArena) < attrEntries {
		g.attrArena = append(make([]AttrValue, 0, len(g.attrArena)+attrEntries), g.attrArena...)
	}
}

// AddNode adds a node with the given label and attribute tuple and
// returns its id.
func (g *Graph) AddNode(label string, attrs map[string]Value) NodeID {
	// Intern in sorted-name order so attribute ids (and everything
	// derived from them) are deterministic across runs regardless of
	// map iteration order.
	names := make([]string, 0, len(attrs))
	for name := range attrs {
		names = append(names, name)
	}
	sort.Strings(names)
	tuple := make([]AttrValue, 0, len(attrs))
	for _, name := range names {
		tuple = append(tuple, AttrValue{Attr: g.Attrs.Intern(name), Val: attrs[name]})
	}
	return g.AddNodeTuple(label, tuple)
}

// AddNodeTuple is AddNode's allocation-light fast path: the tuple's
// attribute names are already interned through g.Attrs. The entries
// need not arrive sorted; duplicate attribute ids keep the last value.
// The tuple is copied into the graph's arena — the caller keeps
// ownership of (and may reuse) the slice.
func (g *Graph) AddNodeTuple(label string, tuple []AttrValue) NodeID {
	id := NodeID(len(g.labels))
	g.labels = append(g.labels, g.Labels.Intern(label))
	start := len(g.attrArena)
	g.attrArena = append(g.attrArena, tuple...)
	seg := g.attrArena[start:]
	sort.SliceStable(seg, func(i, j int) bool { return seg[i].Attr < seg[j].Attr })
	// Drop duplicate attribute ids, keeping the last occurrence (the
	// stable sort preserves input order within an id run).
	w := 0
	for i := 0; i < len(seg); i++ {
		if i+1 < len(seg) && seg[i+1].Attr == seg[i].Attr {
			continue
		}
		seg[w] = seg[i]
		w++
	}
	g.attrArena = g.attrArena[:start+w]
	g.attrOff = append(g.attrOff, int32(len(g.attrArena)))
	g.invalidate()
	return id
}

// SetAttr sets (or overwrites) one attribute of node v. The patch lands
// in an override table and is folded into the attribute arena at the
// next compaction.
func (g *Graph) SetAttr(v NodeID, name string, val Value) {
	aid := g.Attrs.Intern(name)
	var tuple []AttrValue
	if over, ok := g.attrOver[v]; ok {
		tuple = over
	} else {
		// Copy out of the arena: the override owns its slice.
		tuple = append([]AttrValue(nil), g.attrArena[g.attrOff[v]:g.attrOff[v+1]]...)
	}
	i := sort.Search(len(tuple), func(i int) bool { return tuple[i].Attr >= aid })
	if i < len(tuple) && tuple[i].Attr == aid {
		tuple[i].Val = val
	} else {
		tuple = append(tuple, AttrValue{})
		copy(tuple[i+1:], tuple[i:])
		tuple[i] = AttrValue{Attr: aid, Val: val}
	}
	if g.attrOver == nil {
		g.attrOver = map[NodeID][]AttrValue{}
	}
	g.attrOver[v] = tuple
	g.invalidate()
}

// AddEdge adds a directed edge from → to with an optional label.
func (g *Graph) AddEdge(from, to NodeID, label string) {
	g.ensureEdgeLog()
	g.edgeLog = append(g.edgeLog, rawEdge{From: from, To: to, Label: g.Labels.Intern(label)})
	g.edges++
	g.invalidate()
}

// ensureEdgeLog materializes the edge log for graphs whose CSR arenas
// did not come from one — snapshot restores drop the log because an
// unmutated graph never needs it. The synthesized log lists edges in
// source-major order (source id, then position in its out-list), which
// preserves every out-adjacency exactly; in-adjacency order after a
// later compaction is then source-major too, not the original global
// insertion order. JSON round-trips have always had this property —
// WriteJSON emits edges source-major — and no read path's semantics
// depend on in-edge order; only byte-identity against a never-restored
// graph would notice, and that comparison is only guaranteed for
// unmutated restores.
func (g *Graph) ensureEdgeLog() {
	if len(g.edgeLog) == g.edges {
		return
	}
	log := make([]rawEdge, 0, g.edges)
	for v := 0; v < len(g.outOff)-1; v++ {
		for _, e := range g.outEdges[g.outOff[v]:g.outOff[v+1]] {
			log = append(log, rawEdge{From: NodeID(v), To: e.To, Label: e.Label})
		}
	}
	g.edgeLog = log
}

// invalidate marks the CSR view and the lazy caches stale. The dirty
// flag is flipped under lazyMu so a concurrent compact cannot clear a
// flag set for a mutation it did not see — though mutations are
// single-threaded by contract, keeping the pairing locked makes the
// discipline local and checkable.
func (g *Graph) invalidate() {
	g.lazyMu.Lock()
	defer g.lazyMu.Unlock()
	g.diam = -1
	g.adoms = nil
	g.dirty.Store(true)
}

// ensure makes the CSR view current. The fast path — every read after
// construction settles — is one atomic load.
func (g *Graph) ensure() {
	if g.dirty.Load() {
		g.compact()
	}
}

// compact folds the build-side logs into the CSR arenas: attribute
// overrides splice into the attribute arena, the edge log counting-sorts
// into both adjacency arenas (stably, so per-node edge order reproduces
// the append order of the old slice-of-slices layout), and the by-label
// index rebuilds as ascending-ID runs over one backing slice. Readers
// that observe dirty == false afterwards observe the completed arenas —
// the atomic store publishes them.
func (g *Graph) compact() {
	g.lazyMu.Lock()
	defer g.lazyMu.Unlock()
	if !g.dirty.Load() {
		return // another reader compacted while this one waited
	}
	n := len(g.labels)

	if len(g.attrOver) > 0 {
		g.compactAttrsLocked(n)
	}

	// Adjacency: two stable counting sorts over the edge log.
	g.outOff = offsetsFor(n, g.edgeLog, func(e rawEdge) NodeID { return e.From })
	g.inOff = offsetsFor(n, g.edgeLog, func(e rawEdge) NodeID { return e.To })
	g.outEdges = make([]Edge, len(g.edgeLog))
	g.inEdges = make([]Edge, len(g.edgeLog))
	outCur := append([]int32(nil), g.outOff[:n]...)
	inCur := append([]int32(nil), g.inOff[:n]...)
	for _, e := range g.edgeLog {
		g.outEdges[outCur[e.From]] = Edge{To: e.To, Label: e.Label}
		outCur[e.From]++
		g.inEdges[inCur[e.To]] = Edge{To: e.From, Label: e.Label}
		inCur[e.To]++
	}

	g.rebuildByLabel()

	g.dirty.Store(false)
}

// rebuildByLabel rebuilds the by-label index: ascending-ID runs per
// label id, concatenated in label-id order over one backing slice. Node
// ids ascend with insertion, so each run reproduces the append order of
// the old per-label slices. Called from compact (under lazyMu) and from
// the snapshot reader (single-threaded construction).
func (g *Graph) rebuildByLabel() {
	n := len(g.labels)
	numLabels := g.Labels.Len()
	cnt := make([]int32, numLabels+1)
	for _, l := range g.labels {
		cnt[l+1]++
	}
	for i := 0; i < numLabels; i++ {
		cnt[i+1] += cnt[i]
	}
	g.byLabelAll = make([]NodeID, n)
	cur := append([]int32(nil), cnt[:numLabels]...)
	for v, l := range g.labels {
		g.byLabelAll[cur[l]] = NodeID(v)
		cur[l]++
	}
	g.byLabel = make(map[int32][]NodeID, numLabels)
	for l := 0; l < numLabels; l++ {
		if cnt[l] < cnt[l+1] {
			g.byLabel[int32(l)] = g.byLabelAll[cnt[l]:cnt[l+1]]
		}
	}
}

// compactAttrsLocked rebuilds the attribute arena with the SetAttr
// overrides spliced in. The caller must hold lazyMu.
func (g *Graph) compactAttrsLocked(n int) {
	sized := len(g.attrArena)
	//lint:ignore detsource sizing pass sums patch deltas; addition is order-independent
	for v, t := range g.attrOver {
		sized += len(t) - int(g.attrOff[v+1]-g.attrOff[v])
	}
	arena := make([]AttrValue, 0, sized)
	off := make([]int32, n+1)
	for v := 0; v < n; v++ {
		if t, ok := g.attrOver[NodeID(v)]; ok {
			arena = append(arena, t...)
		} else {
			arena = append(arena, g.attrArena[g.attrOff[v]:g.attrOff[v+1]]...)
		}
		off[v+1] = int32(len(arena))
	}
	g.attrArena, g.attrOff, g.attrOver = arena, off, nil
}

// offsetsFor builds the (n+1)-length offset array of a counting sort of
// the edge log under the given endpoint key.
func offsetsFor(n int, log []rawEdge, key func(rawEdge) NodeID) []int32 {
	off := make([]int32, n+1)
	for _, e := range log {
		off[key(e)+1]++
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	return off
}

// Freeze eagerly compacts the build-side logs into the CSR arenas.
// Purely a performance hook: loaders call it after construction so the
// first concurrent readers never stall behind the one-off compaction.
func (g *Graph) Freeze() { g.ensure() }

// Label returns the label of node v.
func (g *Graph) Label(v NodeID) string { return g.Labels.Name(g.labels[v]) }

// LabelID returns the interned label of node v.
func (g *Graph) LabelID(v NodeID) int32 { return g.labels[v] }

// Attr returns the value of attribute name on node v.
func (g *Graph) Attr(v NodeID, name string) (Value, bool) {
	aid, ok := g.Attrs.Lookup(name)
	if !ok {
		return Value{}, false
	}
	return g.AttrByID(v, aid)
}

// AttrByID returns the value of the interned attribute aid on node v.
func (g *Graph) AttrByID(v NodeID, aid int32) (Value, bool) {
	tuple := g.Tuple(v)
	i := sort.Search(len(tuple), func(i int) bool { return tuple[i].Attr >= aid })
	if i < len(tuple) && tuple[i].Attr == aid {
		return tuple[i].Val, true
	}
	return Value{}, false
}

// Tuple returns the attribute tuple f_A(v), sorted by attribute id.
// The caller must not mutate the returned slice.
func (g *Graph) Tuple(v NodeID) []AttrValue {
	g.ensure()
	return g.attrArena[g.attrOff[v]:g.attrOff[v+1]]
}

// Out returns the out-adjacency of v. The caller must not mutate it.
func (g *Graph) Out(v NodeID) []Edge {
	g.ensure()
	return g.outEdges[g.outOff[v]:g.outOff[v+1]]
}

// In returns the in-adjacency of v. The caller must not mutate it.
func (g *Graph) In(v NodeID) []Edge {
	g.ensure()
	return g.inEdges[g.inOff[v]:g.inOff[v+1]]
}

// Degree returns the total (in+out) degree of v.
func (g *Graph) Degree(v NodeID) int {
	g.ensure()
	return int(g.outOff[v+1] - g.outOff[v] + g.inOff[v+1] - g.inOff[v])
}

// NodesByLabel returns all nodes carrying the given label, or every node
// when label is the empty wildcard. The caller must not mutate the
// returned slice (except for the wildcard case, which is fresh).
func (g *Graph) NodesByLabel(label string) []NodeID {
	if label == "" {
		all := make([]NodeID, g.NumNodes())
		for i := range all {
			all[i] = NodeID(i)
		}
		return all
	}
	lid, ok := g.Labels.Lookup(label)
	if !ok {
		return nil
	}
	g.ensure()
	return g.byLabel[lid]
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(|V|=%d, |E|=%d, labels=%d, attrs=%d)",
		g.NumNodes(), g.NumEdges(), g.Labels.Len()-1, g.Attrs.Len()-1)
}
