package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// graphUID issues process-unique graph identities (used to key caches
// that must never serve tables built over a different graph).
var graphUID atomic.Uint64

// NodeID identifies a node in a Graph. IDs are dense and start at 0.
type NodeID int32

// Edge is one directed adjacency entry.
type Edge struct {
	To    NodeID // neighbor (head for out-edges, tail for in-edges)
	Label int32  // interned edge label; 0 means unlabeled
}

// AttrValue is one attribute-value pair of a node tuple f_A(v).
type AttrValue struct {
	Attr int32 // interned attribute name
	Val  Value
}

// Graph is a directed, attributed graph G = (V, E, L, f_A). Nodes and
// edges carry labels; each node carries a tuple of attribute-value
// pairs. Graphs are built single-threaded; afterwards all read methods
// are safe for concurrent use — the lazily computed diameter and
// active-domain caches are serialized by lazyMu.
type Graph struct {
	// Labels interns node and edge labels; Attrs interns attribute names.
	Labels *Interner
	Attrs  *Interner

	labels  []int32       // node label, indexed by NodeID
	attrs   [][]AttrValue // node tuple sorted by Attr, indexed by NodeID
	out, in [][]Edge
	byLabel map[int32][]NodeID
	edges   int

	// lazily computed caches, invalidated on mutation
	lazyMu sync.Mutex
	diam   int               // guarded by lazyMu
	adoms  map[int32]*Domain // guarded by lazyMu

	uid uint64
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		Labels:  NewInterner(),
		Attrs:   NewInterner(),
		byLabel: make(map[int32][]NodeID),
		diam:    -1,
		uid:     graphUID.Add(1),
	}
}

// UID returns a process-unique identity for this graph instance.
func (g *Graph) UID() uint64 { return g.uid }

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.labels) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return g.edges }

// AddNode adds a node with the given label and attribute tuple and
// returns its id.
func (g *Graph) AddNode(label string, attrs map[string]Value) NodeID {
	id := NodeID(len(g.labels))
	lid := g.Labels.Intern(label)
	g.labels = append(g.labels, lid)
	// Intern in sorted-name order so attribute ids (and everything
	// derived from them) are deterministic across runs regardless of
	// map iteration order.
	names := make([]string, 0, len(attrs))
	for name := range attrs {
		names = append(names, name)
	}
	sort.Strings(names)
	tuple := make([]AttrValue, 0, len(attrs))
	for _, name := range names {
		tuple = append(tuple, AttrValue{Attr: g.Attrs.Intern(name), Val: attrs[name]})
	}
	sort.Slice(tuple, func(i, j int) bool { return tuple[i].Attr < tuple[j].Attr })
	g.attrs = append(g.attrs, tuple)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.byLabel[lid] = append(g.byLabel[lid], id)
	g.invalidate()
	return id
}

// SetAttr sets (or overwrites) one attribute of node v.
func (g *Graph) SetAttr(v NodeID, name string, val Value) {
	aid := g.Attrs.Intern(name)
	tuple := g.attrs[v]
	i := sort.Search(len(tuple), func(i int) bool { return tuple[i].Attr >= aid })
	if i < len(tuple) && tuple[i].Attr == aid {
		tuple[i].Val = val
	} else {
		tuple = append(tuple, AttrValue{})
		copy(tuple[i+1:], tuple[i:])
		tuple[i] = AttrValue{Attr: aid, Val: val}
		g.attrs[v] = tuple
	}
	g.invalidate()
}

// AddEdge adds a directed edge from → to with an optional label.
func (g *Graph) AddEdge(from, to NodeID, label string) {
	lid := g.Labels.Intern(label)
	g.out[from] = append(g.out[from], Edge{To: to, Label: lid})
	g.in[to] = append(g.in[to], Edge{To: from, Label: lid})
	g.edges++
	g.invalidate()
}

func (g *Graph) invalidate() {
	g.lazyMu.Lock()
	defer g.lazyMu.Unlock()
	g.diam = -1
	g.adoms = nil
}

// Label returns the label of node v.
func (g *Graph) Label(v NodeID) string { return g.Labels.Name(g.labels[v]) }

// LabelID returns the interned label of node v.
func (g *Graph) LabelID(v NodeID) int32 { return g.labels[v] }

// Attr returns the value of attribute name on node v.
func (g *Graph) Attr(v NodeID, name string) (Value, bool) {
	aid, ok := g.Attrs.Lookup(name)
	if !ok {
		return Value{}, false
	}
	return g.AttrByID(v, aid)
}

// AttrByID returns the value of the interned attribute aid on node v.
func (g *Graph) AttrByID(v NodeID, aid int32) (Value, bool) {
	tuple := g.attrs[v]
	i := sort.Search(len(tuple), func(i int) bool { return tuple[i].Attr >= aid })
	if i < len(tuple) && tuple[i].Attr == aid {
		return tuple[i].Val, true
	}
	return Value{}, false
}

// Tuple returns the attribute tuple f_A(v), sorted by attribute id.
// The caller must not mutate the returned slice.
func (g *Graph) Tuple(v NodeID) []AttrValue { return g.attrs[v] }

// Out returns the out-adjacency of v. The caller must not mutate it.
func (g *Graph) Out(v NodeID) []Edge { return g.out[v] }

// In returns the in-adjacency of v. The caller must not mutate it.
func (g *Graph) In(v NodeID) []Edge { return g.in[v] }

// Degree returns the total (in+out) degree of v.
func (g *Graph) Degree(v NodeID) int { return len(g.out[v]) + len(g.in[v]) }

// NodesByLabel returns all nodes carrying the given label, or every node
// when label is the empty wildcard. The caller must not mutate the
// returned slice (except for the wildcard case, which is fresh).
func (g *Graph) NodesByLabel(label string) []NodeID {
	if label == "" {
		all := make([]NodeID, g.NumNodes())
		for i := range all {
			all[i] = NodeID(i)
		}
		return all
	}
	lid, ok := g.Labels.Lookup(label)
	if !ok {
		return nil
	}
	return g.byLabel[lid]
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(|V|=%d, |E|=%d, labels=%d, attrs=%d)",
		g.NumNodes(), g.NumEdges(), g.Labels.Len()-1, g.Attrs.Len()-1)
}
