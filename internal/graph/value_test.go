package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"800", N(800)},
		{"$800", N(800)},
		{"25%", N(25)},
		{"6.2", N(6.2)},
		{"-3.5", N(-3.5)},
		{"1,234", N(1234)},
		{" 42 ", N(42)},
		{"Samsung", S("Samsung")},
		{"", S("")},
		{"6.2inch", S("6.2inch")},
		{"$", S("$")},
	}
	for _, c := range cases {
		if got := ParseValue(c.in); !got.Equal(c.want) {
			t.Errorf("ParseValue(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestValueEqual(t *testing.T) {
	if N(1).Equal(S("1")) {
		t.Error("number 1 must not equal string \"1\"")
	}
	if !N(2.5).Equal(N(2.5)) || !S("x").Equal(S("x")) {
		t.Error("identical values must be equal")
	}
	if N(1).Equal(N(2)) || S("a").Equal(S("b")) {
		t.Error("different values must not be equal")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{N(1), N(2), -1},
		{N(2), N(1), 1},
		{N(2), N(2), 0},
		{S("a"), S("b"), -1},
		{S("b"), S("a"), 1},
		{S("a"), S("a"), 0},
		{N(99), S("a"), -1}, // numbers order before strings
		{S("a"), N(99), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestOpParseStringRoundtrip(t *testing.T) {
	for _, op := range []Op{EQ, LT, LE, GT, GE} {
		parsed, err := ParseOp(op.String())
		if err != nil {
			t.Fatalf("ParseOp(%q): %v", op.String(), err)
		}
		if parsed != op {
			t.Errorf("roundtrip %v → %q → %v", op, op.String(), parsed)
		}
	}
	if _, err := ParseOp("!="); err == nil {
		t.Error("ParseOp(\"!=\") should fail")
	}
	if _, err := ParseOp("=="); err != nil {
		t.Error("ParseOp(\"==\") should parse as EQ")
	}
}

func TestOpHolds(t *testing.T) {
	cases := []struct {
		a    Value
		op   Op
		b    Value
		want bool
	}{
		{N(840), GE, N(840), true},
		{N(799), GE, N(840), false},
		{N(799), LT, N(800), true},
		{N(800), LT, N(800), false},
		{S("Active"), EQ, S("Active"), true},
		{S("Active"), EQ, S("Closed"), false},
		{S("a"), LT, S("b"), true},
		{N(1), EQ, S("1"), false}, // cross-kind comparisons are false
	}
	for _, c := range cases {
		if got := c.op.Holds(c.a, c.b); got != c.want {
			t.Errorf("%v %v %v = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

// TestOpFlipProperty checks a op b ⟺ b flip(op) a and flip∘flip = id.
func TestOpFlipProperty(t *testing.T) {
	opsList := []Op{EQ, LT, LE, GT, GE}
	f := func(ai, bi float64, opIdx uint8) bool {
		if math.IsNaN(ai) || math.IsNaN(bi) {
			return true
		}
		op := opsList[int(opIdx)%len(opsList)]
		a, b := N(ai), N(bi)
		if op.Flip().Flip() != op {
			return false
		}
		return op.Holds(a, b) == op.Flip().Holds(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCompareTotalOrder checks antisymmetry and transitivity of Compare
// on random values.
func TestCompareTotalOrder(t *testing.T) {
	gen := func(i int64, s string) Value {
		if i%2 == 0 {
			return N(float64(i))
		}
		return S(s)
	}
	f := func(i1, i2, i3 int64, s1, s2, s3 string) bool {
		a, b, c := gen(i1, s1), gen(i2, s2), gen(i3, s3)
		if a.Compare(b) != -b.Compare(a) {
			return false
		}
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInterner(t *testing.T) {
	in := NewInterner()
	if got := in.Intern(""); got != 0 {
		t.Errorf("empty string should intern to 0, got %d", got)
	}
	a := in.Intern("alpha")
	b := in.Intern("beta")
	if a == b {
		t.Error("distinct strings interned to same id")
	}
	if again := in.Intern("alpha"); again != a {
		t.Errorf("re-interning changed id: %d vs %d", again, a)
	}
	if in.Name(a) != "alpha" || in.Name(b) != "beta" {
		t.Error("Name does not invert Intern")
	}
	if _, ok := in.Lookup("gamma"); ok {
		t.Error("Lookup of unseen string should miss")
	}
	if in.Len() != 3 {
		t.Errorf("Len = %d, want 3", in.Len())
	}
}
