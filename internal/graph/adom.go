package graph

import "sort"

// Domain describes the active domain adom(A, G) of one attribute: the
// finite set of distinct values A takes in G, plus the numeric range the
// paper's operator cost model normalizes literal modifications by
// (Table 1: cost of RxL/RfL is 1 + |c'−c| / range(A)).
type Domain struct {
	Attr    string
	Values  []Value // distinct, sorted by Value.Compare
	NumMin  float64
	NumMax  float64
	Numbers int // how many of Values are numeric
}

// Range returns the numeric spread max−min of the domain, or 1 when the
// domain has fewer than two numeric values, so cost normalization is
// always well defined.
func (d *Domain) Range() float64 {
	if d == nil || d.Numbers < 2 || d.NumMax <= d.NumMin {
		return 1
	}
	return d.NumMax - d.NumMin
}

// Contains reports whether v appears in the domain.
func (d *Domain) Contains(v Value) bool {
	i := sort.Search(len(d.Values), func(i int) bool {
		return d.Values[i].Compare(v) >= 0
	})
	return i < len(d.Values) && d.Values[i].Equal(v)
}

// ActiveDomain returns adom(A, G) for the attribute name, computing and
// caching it on first use. The result is shared; callers must not
// mutate it.
func (g *Graph) ActiveDomain(name string) *Domain {
	aid, ok := g.Attrs.Lookup(name)
	if !ok {
		return &Domain{Attr: name}
	}
	g.ensure() // before lazyMu: compaction takes the same mutex
	g.lazyMu.Lock()
	defer g.lazyMu.Unlock()
	if g.adoms == nil {
		g.buildDomainsLocked()
	}
	if d, ok := g.adoms[aid]; ok {
		return d
	}
	return &Domain{Attr: name}
}

// WarmCaches eagerly computes the lazily-built diameter and
// active-domain caches. The lazy builders are serialized by lazyMu, so
// this is purely a performance warm-up: call it once after construction
// so concurrent readers never stall behind a full domain scan.
func (g *Graph) WarmCaches() {
	g.Diameter() // calls ensure, so the arena scan below reads a current view
	g.lazyMu.Lock()
	defer g.lazyMu.Unlock()
	if g.adoms == nil {
		g.buildDomainsLocked()
	}
}

// buildDomainsLocked scans the attribute arena once and materializes all
// active domains. The caller must hold g.lazyMu and have ensured the
// arena is compacted (no pending SetAttr overrides).
func (g *Graph) buildDomainsLocked() {
	type seenKey struct {
		attr int32
		val  Value
	}
	seen := make(map[seenKey]struct{})
	doms := make(map[int32]*Domain)
	for _, av := range g.attrArena {
		k := seenKey{av.Attr, av.Val}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		d := doms[av.Attr]
		if d == nil {
			d = &Domain{Attr: g.Attrs.Name(av.Attr)}
			doms[av.Attr] = d
		}
		d.Values = append(d.Values, av.Val)
		if av.Val.Kind == Number {
			if d.Numbers == 0 || av.Val.Num < d.NumMin {
				d.NumMin = av.Val.Num
			}
			if d.Numbers == 0 || av.Val.Num > d.NumMax {
				d.NumMax = av.Val.Num
			}
			d.Numbers++
		}
	}
	//lint:ignore detsource each domain's values are sorted independently; visit order cannot matter
	for _, d := range doms {
		sort.Slice(d.Values, func(i, j int) bool {
			return d.Values[i].Compare(d.Values[j]) < 0
		})
	}
	g.adoms = doms
}
