package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PanicFree returns the panicfree analyzer: library packages (anything
// that is not a main package) must not call panic. A function whose doc
// comment contains an `invariant:` marker is exempt — that is the
// documented idiom for asserting states the type system cannot rule out
// but the algorithm guarantees unreachable.
func PanicFree() *Analyzer {
	return &Analyzer{
		Name: "panicfree",
		Doc:  "no panic() in library code outside `invariant:`-documented functions",
		Applies: func(pkg *Package) bool {
			return pkg.Name() != "main"
		},
		Run: runPanicFree,
	}
}

func runPanicFree(mod *Module, pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Doc != nil && strings.Contains(fd.Doc.Text(), "invariant:") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if pkg.Info.Uses[id] != types.Universe.Lookup("panic") {
					return true // a shadowing local, not the builtin
				}
				out = append(out, Finding{
					Pos:  pkg.Fset.Position(call.Pos()),
					Rule: "panicfree",
					Msg: "panic in library code; return an error instead, or document " +
						"the enclosing function with an `invariant:` note if this state " +
						"is provably unreachable",
				})
				return true
			})
		}
	}
	return out
}
