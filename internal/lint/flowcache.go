package lint

import "wqe/internal/lint/callgraph"

// flowCache memoizes the per-function lock-set flows of a module,
// shared by lockcheck, lockorder, and atomicfield — the flows are the
// single most expensive artifact the lint pass computes, and all three
// analyzers read the same ones. Populated from analyzer Prepare hooks
// (single-threaded, before the parallel per-package fan-out), read-only
// afterwards.
var flowCache = map[*Module]map[*callgraph.Node]*lockFlow{}

// lockFlowsOf returns (building once per module) the solved lock flow
// of every function body in the module, keyed by call-graph node.
func lockFlowsOf(mod *Module) map[*callgraph.Node]*lockFlow {
	if fl, ok := flowCache[mod]; ok {
		return fl
	}
	cg := CallGraphOf(mod)
	fl := make(map[*callgraph.Node]*lockFlow, len(cg.Nodes))
	for _, n := range cg.Nodes {
		if n.Decl.Body == nil {
			continue
		}
		fl[n] = newLockFlow(mod.Fset, n.Pkg.Info, n.Decl)
	}
	flowCache[mod] = fl
	return fl
}
