package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"wqe/internal/lint/cfg"
)

// This file is lockcheck v3's intra-function core: a flow-sensitive
// lock-set analysis over the internal/lint/cfg graphs, replacing v2's
// lexical "a Lock appears earlier in the body" scan. Three dataflow
// problems run per body:
//
//   - must-held (intersection meet): a lock in the set is held on
//     EVERY path reaching the point — this is what discharges guarded
//     accesses and callee requirements;
//   - may-held (union meet): held on SOME path — this is what makes a
//     re-acquisition a potential deadlock;
//   - pending (union meet, registration-sensitive): an acquisition
//     whose release has not yet been performed OR scheduled. A
//     `defer mu.Unlock()` discharges the obligation at its
//     REGISTRATION node — the point that is path-correlated with the
//     acquisition — rather than at the exit-edge replays. Replaying at
//     exit is wrong for a defer registered inside a loop body: the
//     zero-iteration path reaches the exit without ever registering
//     the unlock, yet the replay would kill it there and mask the
//     leak. Exit-leak findings come from the pending set at exit.
//
// For must/may, `defer mu.Unlock()` is still modeled by the CFG
// itself: every exit edge replays the deferred calls, so the kill
// lands exactly where the runtime performs it. Function literals are
// analyzed as separate bodies (a closure runs at another time); a
// query for a position inside a literal consults the literal's own
// flow first and falls back to the enclosing state where the literal
// was created.

// lockSet is a set of held lock keys: the rendered lock expression
// ("c.mu", "mu"), with read locks suffixed rlockSuffix.
type lockSet map[string]bool

const rlockSuffix = "#r"

// displayKey splits a lock key into its source expression and
// read-lock flag.
func displayKey(key string) (expr string, read bool) {
	if strings.HasSuffix(key, rlockSuffix) {
		return strings.TrimSuffix(key, rlockSuffix), true
	}
	return key, false
}

// lockOp is one acquire or release of a lock key at a position. reg
// marks a release scheduled by a defer registration: it discharges the
// pending obligation at the registration point but has no immediate
// effect on the held sets (the runtime release happens at exit, where
// the CFG's defer replays model it).
type lockOp struct {
	key     string
	x       ast.Expr // the lock expression (receiver of Lock/Unlock)
	acquire bool
	read    bool
	reg     bool
	pos     token.Pos
}

// lockOpOf decodes a call as a sync lock operation: a selector call
// named Lock/RLock/Unlock/RUnlock whose method (when type information
// resolves it) lives in package sync — so a domain type that happens
// to export a Lock method is not mistaken for a mutex.
func lockOpOf(fset *token.FileSet, info *types.Info, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	var acquire, read bool
	switch sel.Sel.Name {
	case "Lock":
		acquire = true
	case "RLock":
		acquire, read = true, true
	case "Unlock":
	case "RUnlock":
		read = true
	default:
		return lockOp{}, false
	}
	if info != nil {
		if obj, found := info.Uses[sel.Sel]; found {
			fn, isFn := obj.(*types.Func)
			if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
				return lockOp{}, false
			}
		}
	}
	key := exprString(fset, sel.X)
	if key == "" {
		return lockOp{}, false
	}
	if read {
		key += rlockSuffix
	}
	return lockOp{key: key, x: sel.X, acquire: acquire, read: read, pos: call.Pos()}, true
}

// lockOpsIn collects the lock operations of one CFG node in source
// order. A defer registration contributes its releases as reg ops (the
// pending analysis kills there); the held-set effect of the deferred
// call lands on the defer.fire replays. Reg extraction looks inside
// deferred function literals too — `defer func() { mu.Unlock() }()`
// schedules the release just as surely as the direct form. Elsewhere
// FuncLit interiors are opaque (a closure body gets its own bodyFlow).
func lockOpsIn(fset *token.FileSet, info *types.Info, n cfg.Node) []lockOp {
	if d, isReg := n.Ast.(*ast.DeferStmt); isReg && !n.Defer {
		var regs []lockOp
		ast.Inspect(d.Call, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if op, ok := lockOpOf(fset, info, call); ok && !op.acquire {
				op.reg = true
				regs = append(regs, op)
			}
			return true
		})
		return regs
	}
	// A range.head node carries the whole *ast.RangeStmt; only the
	// range operands run there — the body belongs to the body blocks'
	// own nodes, so inspecting it here would double-apply every lock op
	// in the loop (and kill held sets before the loop even runs).
	roots := []ast.Node{n.Ast}
	if r, isRange := n.Ast.(*ast.RangeStmt); isRange && !n.Defer {
		roots = roots[:0]
		for _, e := range []ast.Expr{r.Key, r.Value, r.X} {
			if e != nil {
				roots = append(roots, e)
			}
		}
	}
	var ops []lockOp
	for _, root := range roots {
		ast.Inspect(root, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if op, ok := lockOpOf(fset, info, call); ok {
				ops = append(ops, op)
			}
			return true
		})
	}
	return ops
}

// nodeFacts records the lock state immediately before one (non-defer)
// CFG node, keyed by the node's source span for position queries.
type nodeFacts struct {
	pos, end  token.Pos
	must, may lockSet
}

// lockRef is a held lock at a point: its key plus the source
// expression that named it (for module-wide identity resolution).
type lockRef struct {
	key string
	x   ast.Expr
}

// acqEvent is one lock acquisition with the may-held set observed
// immediately before it — the raw material of the acquisition-order
// graph. held is strictly this body's state: a closure's events do not
// inherit the creator's held set (the closure runs at another time,
// when the creator's locks may be long gone).
type acqEvent struct {
	key  string
	x    ast.Expr
	read bool
	pos  token.Pos
	held []lockRef
}

// bodyFlow is the solved lock state of one body: the facts before
// every node, the pending set at exit, the first-acquisition position
// per key, the releases that no path can pair with an acquisition, the
// re-acquisitions of a may-held key, the acquisition events, and the
// flows of the body's direct function literals.
type bodyFlow struct {
	graph       *cfg.Graph
	nodes       []nodeFacts
	exitPending lockSet
	gen         map[string]token.Pos
	exprs       map[string]ast.Expr
	orphans     []lockOp
	reacq       []lockOp
	events      []acqEvent
	lits        []*litFlow
}

type litFlow struct {
	lit  *ast.FuncLit
	flow *bodyFlow
}

func cloneLockSet(s lockSet) lockSet {
	out := make(lockSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func lockSetsEqual(a, b lockSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func newBodyFlow(fset *token.FileSet, info *types.Info, body *ast.BlockStmt) *bodyFlow {
	bf := &bodyFlow{graph: cfg.New(body), gen: map[string]token.Pos{}, exprs: map[string]ast.Expr{}}
	g := bf.graph

	// Universe of keys (the must-analysis Top), first-gen positions,
	// and a representative source expression per key.
	universe := lockSet{}
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			for _, op := range lockOpsIn(fset, info, n) {
				universe[op.key] = true
				if _, seen := bf.exprs[op.key]; !seen && op.x != nil {
					bf.exprs[op.key] = op.x
				}
				if op.acquire && !n.Defer {
					if p, ok := bf.gen[op.key]; !ok || op.pos < p {
						bf.gen[op.key] = op.pos
					}
				}
			}
		}
	}

	apply := func(set lockSet, op lockOp) {
		if op.acquire {
			set[op.key] = true
		} else {
			delete(set, op.key)
		}
	}
	// pending distinguishes the flow: held sets ignore reg ops and let
	// the defer.fire replays perform the release; the pending set kills
	// at the registration and ignores the replays.
	mkFlow := func(top lockSet, pending bool, merge func(a, b lockSet) lockSet) cfg.Flow[lockSet] {
		return cfg.Flow[lockSet]{
			Entry: lockSet{},
			Top:   top,
			Merge: merge,
			Transfer: func(_ *cfg.Block, n cfg.Node, in lockSet) lockSet {
				for _, op := range lockOpsIn(fset, info, n) {
					switch {
					case pending && n.Defer:
						// exit-edge replay: not a discharge
					case pending && op.reg:
						delete(in, op.key)
					case op.reg:
						// registration has no immediate held effect
					default:
						apply(in, op)
					}
				}
				return in
			},
			Equal: lockSetsEqual,
			Clone: cloneLockSet,
		}
	}
	interMerge := func(a, b lockSet) lockSet {
		out := lockSet{}
		for k := range a {
			if b[k] {
				out[k] = true
			}
		}
		return out
	}
	unionMerge := func(a, b lockSet) lockSet {
		for k := range b {
			a[k] = true
		}
		return a
	}
	mustFlow := mkFlow(universe, false, interMerge)
	mayFlow := mkFlow(lockSet{}, false, unionMerge)
	pendFlow := mkFlow(lockSet{}, true, unionMerge)
	must := cfg.Forward(g, mustFlow)
	may := cfg.Forward(g, mayFlow)
	pend := cfg.Forward(g, pendFlow)
	bf.exitPending = pend.In[g.Exit.Index]

	// Replay the must solution for the per-node facts...
	cfg.Replay(g, mustFlow, must, func(_ *cfg.Block, n cfg.Node, before lockSet) {
		if !n.Defer {
			bf.nodes = append(bf.nodes, nodeFacts{
				pos:  n.Ast.Pos(),
				end:  n.Ast.End(),
				must: cloneLockSet(before),
			})
		}
	})
	// ...and the may solution for the rest: the may half of each node
	// fact, release pairing, re-acquisitions, and acquisition events. A
	// release with its key absent from the may-held state — and a
	// matching acquisition somewhere in the body, so helpers releasing
	// a caller-held lock stay exempt — cannot pair with any Lock on any
	// path: a double release or a missing Lock. An acquisition with its
	// key possibly still held is a self-deadlock in the making. Defer
	// replays can duplicate one op across exit edges; report each
	// position once.
	idx := 0
	seenOrphan := map[string]bool{}
	seenReacq := map[string]bool{}
	// A deferred release is replayed on EVERY exit edge, including ones
	// from paths that never executed its registration (the defer stack
	// is syntactic). Such a replay finding its key unheld is not a
	// pairing bug — the registration path is the one that matters — so
	// replay orphans are judged across all replay sites: reported only
	// when no site can pair the release with a possible acquisition.
	deferOrphan := map[string]lockOp{}
	deferPaired := map[string]bool{}
	cfg.Replay(g, mayFlow, may, func(_ *cfg.Block, n cfg.Node, before lockSet) {
		if !n.Defer {
			bf.nodes[idx].may = cloneLockSet(before)
			idx++
		}
		wf := cloneLockSet(before)
		for _, op := range lockOpsIn(fset, info, n) {
			if op.reg {
				continue
			}
			if !op.acquire && n.Defer {
				if _, paired := bf.gen[op.key]; paired {
					id := fmt.Sprintf("%s@%d", op.key, op.pos)
					deferOrphan[id] = op
					deferPaired[id] = deferPaired[id] || wf[op.key]
				}
			}
			if !op.acquire && !n.Defer && !wf[op.key] {
				if _, paired := bf.gen[op.key]; paired {
					id := fmt.Sprintf("%s@%d", op.key, op.pos)
					if !seenOrphan[id] {
						seenOrphan[id] = true
						bf.orphans = append(bf.orphans, op)
					}
				}
			}
			if op.acquire && !n.Defer {
				bf.events = append(bf.events, acqEvent{
					key:  op.key,
					x:    op.x,
					read: op.read,
					pos:  op.pos,
					held: bf.refsOf(wf),
				})
				// Indexed bases (s.shards[i].mu) name a different
				// instance each iteration: re-acquisition across
				// iterations is the point of striping, not a deadlock.
				base, opRead := displayKey(op.key)
				if !strings.Contains(base, "[") {
					wHeld, rHeld := wf[base], wf[base+rlockSuffix]
					if (!opRead && (wHeld || rHeld)) || (opRead && wHeld) {
						id := fmt.Sprintf("%s@%d", op.key, op.pos)
						if !seenReacq[id] {
							seenReacq[id] = true
							bf.reacq = append(bf.reacq, op)
						}
					}
				}
			}
			apply(wf, op)
		}
	})
	for id, op := range deferOrphan {
		if !deferPaired[id] {
			bf.orphans = append(bf.orphans, op)
		}
	}
	sortOps := func(ops []lockOp) {
		sort.Slice(ops, func(i, j int) bool {
			if ops[i].pos != ops[j].pos {
				return ops[i].pos < ops[j].pos
			}
			return ops[i].key < ops[j].key
		})
	}
	sortOps(bf.orphans)
	sortOps(bf.reacq)
	sort.Slice(bf.events, func(i, j int) bool {
		if bf.events[i].pos != bf.events[j].pos {
			return bf.events[i].pos < bf.events[j].pos
		}
		return bf.events[i].key < bf.events[j].key
	})

	// Direct function literals get their own flows; nested literals
	// belong to their parent literal's bodyFlow.
	if body != nil {
		ast.Inspect(body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				bf.lits = append(bf.lits, &litFlow{lit: lit, flow: newBodyFlow(fset, info, lit.Body)})
				return false
			}
			return true
		})
	}
	return bf
}

// refsOf renders a held set as sorted lockRefs using the body's
// representative expressions.
func (bf *bodyFlow) refsOf(set lockSet) []lockRef {
	if len(set) == 0 {
		return nil
	}
	refs := make([]lockRef, 0, len(set))
	for _, key := range sortedKeys(set) {
		refs = append(refs, lockRef{key: key, x: bf.exprs[key]})
	}
	return refs
}

// factAt returns the facts before the innermost node containing pos,
// or nil when no node spans it (dead code, positions outside the body).
func (bf *bodyFlow) factAt(pos token.Pos) *nodeFacts {
	var best *nodeFacts
	for i := range bf.nodes {
		nf := &bf.nodes[i]
		if pos < nf.pos || pos >= nf.end {
			continue
		}
		if best == nil || nf.end-nf.pos < best.end-best.pos {
			best = nf
		}
	}
	return best
}

// held answers "is key (write- or read-) locked at pos", under the
// must lattice (every path) or the may lattice (some path). Positions
// inside a function literal consult the literal's own flow, falling
// back to the enclosing state where the literal was created — the
// closure either locks for itself or inherits the lock its creator
// held when building it (the `defer func() { ... }()` cleanup shape).
func (bf *bodyFlow) held(key string, pos token.Pos, mustHeld bool) bool {
	for _, lf := range bf.lits {
		if pos >= lf.lit.Body.Pos() && pos < lf.lit.Body.End() {
			return lf.flow.held(key, pos, mustHeld) || bf.held(key, lf.lit.Pos(), mustHeld)
		}
	}
	nf := bf.factAt(pos)
	if nf == nil {
		return false
	}
	set := nf.must
	if !mustHeld {
		set = nf.may
	}
	return set[key] || set[key+rlockSuffix]
}

// anyHeld reports whether any lock may be held at pos (same literal
// fallback as held).
func (bf *bodyFlow) anyHeld(pos token.Pos) bool {
	for _, lf := range bf.lits {
		if pos >= lf.lit.Body.Pos() && pos < lf.lit.Body.End() {
			return lf.flow.anyHeld(pos) || bf.anyHeld(lf.lit.Pos())
		}
	}
	nf := bf.factAt(pos)
	return nf != nil && len(nf.may) > 0
}

// mayRefs returns the may-held locks before the innermost node
// containing pos, strictly within the owning body: positions inside a
// literal consult only the literal's own flow (a closure's runtime
// held set owes nothing to its creator's). Feeds the lock-order graph.
func (bf *bodyFlow) mayRefs(pos token.Pos) []lockRef {
	for _, lf := range bf.lits {
		if pos >= lf.lit.Body.Pos() && pos < lf.lit.Body.End() {
			return lf.flow.mayRefs(pos)
		}
	}
	nf := bf.factAt(pos)
	if nf == nil {
		return nil
	}
	return bf.refsOf(nf.may)
}

// mustRefs returns the must-held locks before the innermost node
// containing pos, with the same creator fallback as held: a position
// inside a literal unions the literal's own state with the creator's
// state at the literal. Feeds atomicfield's guarded-by-mutex argument.
func (bf *bodyFlow) mustRefs(pos token.Pos) []lockRef {
	for _, lf := range bf.lits {
		if pos >= lf.lit.Body.Pos() && pos < lf.lit.Body.End() {
			refs := lf.flow.mustRefs(pos)
			refs = append(refs, bf.mustRefs(lf.lit.Pos())...)
			return refs
		}
	}
	nf := bf.factAt(pos)
	if nf == nil {
		return nil
	}
	return bf.refsOf(nf.must)
}

// allEvents flattens the acquisition events of this body and its
// literals, source order.
func (bf *bodyFlow) allEvents() []acqEvent {
	out := append([]acqEvent(nil), bf.events...)
	for _, lf := range bf.lits {
		out = append(out, lf.flow.allEvents()...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pos != out[j].pos {
			return out[i].pos < out[j].pos
		}
		return out[i].key < out[j].key
	})
	return out
}

// pairFindings emits the pairing findings of this body and its
// literals: a lock whose release is neither performed nor scheduled on
// some path reaching the exit (pending-set leak — a defer registered
// inside a loop body does not cover the zero-iteration path), a
// release no path can pair with an acquisition, and a re-acquisition
// of a lock that may already be held.
func (bf *bodyFlow) pairFindings(fset *token.FileSet) []Finding {
	var out []Finding
	for _, key := range sortedKeys(bf.exitPending) {
		genPos, ok := bf.gen[key]
		if !ok {
			continue
		}
		expr, read := displayKey(key)
		lockName, unlockName := "Lock", "Unlock"
		if read {
			lockName, unlockName = "RLock", "RUnlock"
		}
		out = append(out, Finding{
			Pos:  fset.Position(genPos),
			Rule: "lockcheck",
			Msg: fmt.Sprintf("%s.%s() is not released on every path out of the function "+
				"(defer %s.%s() or release before each return, or //lint:ignore lockcheck <reason>)",
				expr, lockName, expr, unlockName),
		})
	}
	for _, op := range bf.orphans {
		expr, read := displayKey(op.key)
		lockName, unlockName := "Lock", "Unlock"
		if read {
			lockName, unlockName = "RLock", "RUnlock"
		}
		out = append(out, Finding{
			Pos:  fset.Position(op.pos),
			Rule: "lockcheck",
			Msg: fmt.Sprintf("%s.%s() releases a lock not held on any path here "+
				"(double release or missing %s.%s(); fix the pairing, or //lint:ignore lockcheck <reason>)",
				expr, unlockName, expr, lockName),
		})
	}
	for _, op := range bf.reacq {
		expr, read := displayKey(op.key)
		lockName := "Lock"
		if read {
			lockName = "RLock"
		}
		out = append(out, Finding{
			Pos:  fset.Position(op.pos),
			Rule: "lockcheck",
			Msg: fmt.Sprintf("%s.%s() may run with %s already held on a path reaching here "+
				"(deferred unlocks run at function exit, not per loop iteration) — potential self-deadlock; "+
				"release before re-acquiring, or //lint:ignore lockcheck <reason>",
				expr, lockName, expr),
		})
	}
	for _, lf := range bf.lits {
		out = append(out, lf.flow.pairFindings(fset)...)
	}
	return out
}

// lockFlow is the per-function façade the interprocedural passes
// query: one bodyFlow for the declaration body plus the recursive
// literal flows hanging off it.
type lockFlow struct {
	root *bodyFlow
}

func newLockFlow(fset *token.FileSet, info *types.Info, fd *ast.FuncDecl) *lockFlow {
	return &lockFlow{root: newBodyFlow(fset, info, fd.Body)}
}

// heldAt reports whether <base>.<mu> is held on every path reaching
// pos (a read lock counts: guarded reads and writes are not
// distinguished, matching v2).
func (lf *lockFlow) heldAt(base, mu string, pos token.Pos) bool {
	return lf.root.held(lockKey(base, mu), pos, true)
}

// mayHeldAt reports whether <base>.<mu> is held on some path reaching
// pos — the test behind the deadlock check: one path re-acquiring is
// enough to hang.
func (lf *lockFlow) mayHeldAt(base, mu string, pos token.Pos) bool {
	return lf.root.held(lockKey(base, mu), pos, false)
}

// anyHeldAt reports whether any lock may be held at pos (feeds the
// dead-Locked-annotation check).
func (lf *lockFlow) anyHeldAt(pos token.Pos) bool {
	return lf.root.anyHeld(pos)
}

// eventsAll returns every acquisition event of the function, literals
// included.
func (lf *lockFlow) eventsAll() []acqEvent {
	return lf.root.allEvents()
}

// mayRefsAt returns the may-held locks before pos (strict, no creator
// fallback — see bodyFlow.mayRefs).
func (lf *lockFlow) mayRefsAt(pos token.Pos) []lockRef {
	return lf.root.mayRefs(pos)
}

// mustRefsAt returns the must-held locks before pos (with creator
// fallback for literals — see bodyFlow.mustRefs).
func (lf *lockFlow) mustRefsAt(pos token.Pos) []lockRef {
	return lf.root.mustRefs(pos)
}

// flowFindings returns the pairing findings of the whole function.
func (lf *lockFlow) flowFindings(fset *token.FileSet) []Finding {
	return lf.root.pairFindings(fset)
}

func lockKey(base, mu string) string {
	if base == "" {
		return mu
	}
	return base + "." + mu
}
