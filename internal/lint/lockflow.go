package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"wqe/internal/lint/cfg"
)

// This file is lockcheck v3's intra-function core: a flow-sensitive
// lock-set analysis over the internal/lint/cfg graphs, replacing v2's
// lexical "a Lock appears earlier in the body" scan. Two dataflow
// problems run per body:
//
//   - must-held (intersection meet): a lock in the set is held on
//     EVERY path reaching the point — this is what discharges guarded
//     accesses and callee requirements;
//   - may-held (union meet): held on SOME path — this is what makes a
//     re-acquisition a potential deadlock and a lock surviving to an
//     exit a leak.
//
// `defer mu.Unlock()` is modeled by the CFG itself: every exit edge
// replays the deferred calls, so the kill lands exactly where the
// runtime performs it. Function literals are analyzed as separate
// bodies (a closure runs at another time); a query for a position
// inside a literal consults the literal's own flow first and falls
// back to the enclosing state where the literal was created.

// lockSet is a set of held lock keys: the rendered lock expression
// ("c.mu", "mu"), with read locks suffixed rlockSuffix.
type lockSet map[string]bool

const rlockSuffix = "#r"

// displayKey splits a lock key into its source expression and
// read-lock flag.
func displayKey(key string) (expr string, read bool) {
	if strings.HasSuffix(key, rlockSuffix) {
		return strings.TrimSuffix(key, rlockSuffix), true
	}
	return key, false
}

// lockOp is one acquire or release of a lock key at a position.
type lockOp struct {
	key     string
	acquire bool
	read    bool
	pos     token.Pos
}

// lockOpOf decodes a call as a sync lock operation: a selector call
// named Lock/RLock/Unlock/RUnlock whose method (when type information
// resolves it) lives in package sync — so a domain type that happens
// to export a Lock method is not mistaken for a mutex.
func lockOpOf(fset *token.FileSet, info *types.Info, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	var acquire, read bool
	switch sel.Sel.Name {
	case "Lock":
		acquire = true
	case "RLock":
		acquire, read = true, true
	case "Unlock":
	case "RUnlock":
		read = true
	default:
		return lockOp{}, false
	}
	if info != nil {
		if obj, found := info.Uses[sel.Sel]; found {
			fn, isFn := obj.(*types.Func)
			if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
				return lockOp{}, false
			}
		}
	}
	key := exprString(fset, sel.X)
	if key == "" {
		return lockOp{}, false
	}
	if read {
		key += rlockSuffix
	}
	return lockOp{key: key, acquire: acquire, read: read, pos: call.Pos()}, true
}

// lockOpsIn collects the lock operations of one CFG node in source
// order. Defer registrations contribute nothing (their call's effect
// lands on the defer.fire replays), and FuncLit interiors are opaque
// (a closure body gets its own bodyFlow).
func lockOpsIn(fset *token.FileSet, info *types.Info, n cfg.Node) []lockOp {
	if _, isReg := n.Ast.(*ast.DeferStmt); isReg && !n.Defer {
		return nil
	}
	var ops []lockOp
	ast.Inspect(n.Ast, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, ok := lockOpOf(fset, info, call); ok {
			ops = append(ops, op)
		}
		return true
	})
	return ops
}

// nodeFacts records the lock state immediately before one (non-defer)
// CFG node, keyed by the node's source span for position queries.
type nodeFacts struct {
	pos, end  token.Pos
	must, may lockSet
}

// bodyFlow is the solved lock state of one body: the facts before
// every node, the may-held set at exit (after defer replays), the
// first-acquisition position per key, the releases that no path can
// pair with an acquisition, and the flows of the body's direct
// function literals.
type bodyFlow struct {
	graph   *cfg.Graph
	nodes   []nodeFacts
	exitMay lockSet
	gen     map[string]token.Pos
	orphans []lockOp
	lits    []*litFlow
}

type litFlow struct {
	lit  *ast.FuncLit
	flow *bodyFlow
}

func cloneLockSet(s lockSet) lockSet {
	out := make(lockSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func lockSetsEqual(a, b lockSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func newBodyFlow(fset *token.FileSet, info *types.Info, body *ast.BlockStmt) *bodyFlow {
	bf := &bodyFlow{graph: cfg.New(body), gen: map[string]token.Pos{}}
	g := bf.graph

	// Universe of keys (the must-analysis Top) and first-gen positions.
	universe := lockSet{}
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			for _, op := range lockOpsIn(fset, info, n) {
				universe[op.key] = true
				if op.acquire && !n.Defer {
					if p, ok := bf.gen[op.key]; !ok || op.pos < p {
						bf.gen[op.key] = op.pos
					}
				}
			}
		}
	}

	apply := func(set lockSet, op lockOp) {
		if op.acquire {
			set[op.key] = true
		} else {
			delete(set, op.key)
		}
	}
	flow := func(top lockSet, merge func(a, b lockSet) lockSet) *cfg.Result[lockSet] {
		return cfg.Forward(g, cfg.Flow[lockSet]{
			Entry: lockSet{},
			Top:   top,
			Merge: merge,
			Transfer: func(_ *cfg.Block, n cfg.Node, in lockSet) lockSet {
				for _, op := range lockOpsIn(fset, info, n) {
					apply(in, op)
				}
				return in
			},
			Equal: lockSetsEqual,
			Clone: cloneLockSet,
		})
	}
	must := flow(universe, func(a, b lockSet) lockSet {
		out := lockSet{}
		for k := range a {
			if b[k] {
				out[k] = true
			}
		}
		return out
	})
	may := flow(lockSet{}, func(a, b lockSet) lockSet {
		for k := range b {
			a[k] = true
		}
		return a
	})
	bf.exitMay = may.In[g.Exit.Index]

	// Replay every block for per-node facts and release pairing. A
	// release with its key absent from the may-held state — and a
	// matching acquisition somewhere in the body, so helpers releasing
	// a caller-held lock stay exempt — cannot pair with any Lock on
	// any path: a double release or a missing Lock. Defer replays can
	// duplicate one op across exit edges; report each position once.
	seenOrphan := map[string]bool{}
	for _, blk := range g.Blocks {
		mf := cloneLockSet(must.In[blk.Index])
		yf := cloneLockSet(may.In[blk.Index])
		for _, n := range blk.Nodes {
			if !n.Defer {
				bf.nodes = append(bf.nodes, nodeFacts{
					pos:  n.Ast.Pos(),
					end:  n.Ast.End(),
					must: cloneLockSet(mf),
					may:  cloneLockSet(yf),
				})
			}
			for _, op := range lockOpsIn(fset, info, n) {
				if !op.acquire && !yf[op.key] {
					if _, paired := bf.gen[op.key]; paired {
						id := fmt.Sprintf("%s@%d", op.key, op.pos)
						if !seenOrphan[id] {
							seenOrphan[id] = true
							bf.orphans = append(bf.orphans, op)
						}
					}
				}
				apply(mf, op)
				apply(yf, op)
			}
		}
	}
	sort.Slice(bf.orphans, func(i, j int) bool {
		if bf.orphans[i].pos != bf.orphans[j].pos {
			return bf.orphans[i].pos < bf.orphans[j].pos
		}
		return bf.orphans[i].key < bf.orphans[j].key
	})

	// Direct function literals get their own flows; nested literals
	// belong to their parent literal's bodyFlow.
	if body != nil {
		ast.Inspect(body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				bf.lits = append(bf.lits, &litFlow{lit: lit, flow: newBodyFlow(fset, info, lit.Body)})
				return false
			}
			return true
		})
	}
	return bf
}

// factAt returns the facts before the innermost node containing pos,
// or nil when no node spans it (dead code, positions outside the body).
func (bf *bodyFlow) factAt(pos token.Pos) *nodeFacts {
	var best *nodeFacts
	for i := range bf.nodes {
		nf := &bf.nodes[i]
		if pos < nf.pos || pos >= nf.end {
			continue
		}
		if best == nil || nf.end-nf.pos < best.end-best.pos {
			best = nf
		}
	}
	return best
}

// held answers "is key (write- or read-) locked at pos", under the
// must lattice (every path) or the may lattice (some path). Positions
// inside a function literal consult the literal's own flow, falling
// back to the enclosing state where the literal was created — the
// closure either locks for itself or inherits the lock its creator
// held when building it (the `defer func() { ... }()` cleanup shape).
func (bf *bodyFlow) held(key string, pos token.Pos, mustHeld bool) bool {
	for _, lf := range bf.lits {
		if pos >= lf.lit.Body.Pos() && pos < lf.lit.Body.End() {
			return lf.flow.held(key, pos, mustHeld) || bf.held(key, lf.lit.Pos(), mustHeld)
		}
	}
	nf := bf.factAt(pos)
	if nf == nil {
		return false
	}
	set := nf.must
	if !mustHeld {
		set = nf.may
	}
	return set[key] || set[key+rlockSuffix]
}

// anyHeld reports whether any lock may be held at pos (same literal
// fallback as held).
func (bf *bodyFlow) anyHeld(pos token.Pos) bool {
	for _, lf := range bf.lits {
		if pos >= lf.lit.Body.Pos() && pos < lf.lit.Body.End() {
			return lf.flow.anyHeld(pos) || bf.anyHeld(lf.lit.Pos())
		}
	}
	nf := bf.factAt(pos)
	return nf != nil && len(nf.may) > 0
}

// pairFindings emits the two pairing findings of this body and its
// literals: a lock still held on some path at exit (after the defer
// replays ran, so it is a real leak on that path), and a release no
// path can pair with an acquisition.
func (bf *bodyFlow) pairFindings(fset *token.FileSet) []Finding {
	var out []Finding
	for _, key := range sortedKeys(bf.exitMay) {
		genPos, ok := bf.gen[key]
		if !ok {
			continue
		}
		expr, read := displayKey(key)
		lockName, unlockName := "Lock", "Unlock"
		if read {
			lockName, unlockName = "RLock", "RUnlock"
		}
		out = append(out, Finding{
			Pos:  fset.Position(genPos),
			Rule: "lockcheck",
			Msg: fmt.Sprintf("%s.%s() is not released on every path out of the function "+
				"(defer %s.%s() or release before each return, or //lint:ignore lockcheck <reason>)",
				expr, lockName, expr, unlockName),
		})
	}
	for _, op := range bf.orphans {
		expr, read := displayKey(op.key)
		lockName, unlockName := "Lock", "Unlock"
		if read {
			lockName, unlockName = "RLock", "RUnlock"
		}
		out = append(out, Finding{
			Pos:  fset.Position(op.pos),
			Rule: "lockcheck",
			Msg: fmt.Sprintf("%s.%s() releases a lock not held on any path here "+
				"(double release or missing %s.%s(); fix the pairing, or //lint:ignore lockcheck <reason>)",
				expr, unlockName, expr, lockName),
		})
	}
	for _, lf := range bf.lits {
		out = append(out, lf.flow.pairFindings(fset)...)
	}
	return out
}

// lockFlow is the per-function façade the interprocedural pass
// queries: one bodyFlow for the declaration body plus the recursive
// literal flows hanging off it.
type lockFlow struct {
	root *bodyFlow
}

func newLockFlow(fset *token.FileSet, info *types.Info, fd *ast.FuncDecl) *lockFlow {
	return &lockFlow{root: newBodyFlow(fset, info, fd.Body)}
}

// heldAt reports whether <base>.<mu> is held on every path reaching
// pos (a read lock counts: guarded reads and writes are not
// distinguished, matching v2).
func (lf *lockFlow) heldAt(base, mu string, pos token.Pos) bool {
	return lf.root.held(lockKey(base, mu), pos, true)
}

// mayHeldAt reports whether <base>.<mu> is held on some path reaching
// pos — the test behind the deadlock check: one path re-acquiring is
// enough to hang.
func (lf *lockFlow) mayHeldAt(base, mu string, pos token.Pos) bool {
	return lf.root.held(lockKey(base, mu), pos, false)
}

// anyHeldAt reports whether any lock may be held at pos (feeds the
// dead-Locked-annotation check).
func (lf *lockFlow) anyHeldAt(pos token.Pos) bool {
	return lf.root.anyHeld(pos)
}

// flowFindings returns the pairing findings of the whole function.
func (lf *lockFlow) flowFindings(fset *token.FileSet) []Finding {
	return lf.root.pairFindings(fset)
}

func lockKey(base, mu string) string {
	if base == "" {
		return mu
	}
	return base + "." + mu
}
