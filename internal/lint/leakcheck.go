package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"wqe/internal/lint/cfg"
)

// LeakCheck returns the leakcheck analyzer: a go-spawned goroutine
// must be joined or cancellable. The module's concurrency doctrine
// (internal/par) already guarantees this for the sanctioned pool; the
// analyzer proves it stays true — in par itself and in any future
// exempted spawn site — instead of trusting the doctrine.
//
// For every `go func(){…}()` whose closure signals completion — a
// Done() on a function-local sync.WaitGroup, or a close/send on a
// function-local unbuffered channel — a may-analysis over the CFG
// tracks the pending signal from the spawn to every exit: if some path
// returns without consuming it (<-ch, range ch, wg.Wait(), or the
// signal variable escaping to another function that may join it), the
// spawn is flagged — on that path the goroutine outlives the call, and
// an unbuffered signal send blocks it forever. A spawned closure with
// no completion signal at all and no context in scope is flagged
// outright: nothing can ever join or cancel it.
//
// Spawns of named functions (`go worker(ch)`) and spawns whose signal
// lives outside the analyzed body are skipped — the closure over the
// signal variable is the analyzable shape, and it is the only shape
// the module uses.
func LeakCheck() *Analyzer {
	return &Analyzer{
		Name: "leakcheck",
		Doc:  "spawned goroutines must be joined (done-signal consumed on every path) or cancellable",
		Run:  runLeakCheck,
	}
}

func runLeakCheck(mod *Module, pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, leakCheckBody(pkg, fd.Body)...)
			}
		}
	}
	return out
}

// leakSpawn is one analyzable spawn: the GoStmt and the body-local
// signal objects its closure completes through.
type leakSpawn struct {
	stmt    *ast.GoStmt
	signals []types.Object
}

func leakCheckBody(pkg *Package, body *ast.BlockStmt) []Finding {
	info := pkg.Info
	g := cfg.New(body)

	// Classify the reachable top-level spawns. Spawns inside function
	// literals are analyzed against the literal's own body (recursion
	// below); a spawn joining across that boundary is skipped, not
	// guessed at.
	spawns := map[*ast.GoStmt]*leakSpawn{}
	var findings []Finding
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			gs, ok := n.Ast.(*ast.GoStmt)
			if !ok || n.Defer {
				continue
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				continue // named-function spawn: nothing to see inside
			}
			locals, any := signalObjs(info, body, lit)
			switch {
			case len(locals) > 0:
				spawns[gs] = &leakSpawn{stmt: gs, signals: locals}
			case !any && !mentionsContext(info, lit):
				findings = append(findings, Finding{
					Pos:  pkg.Fset.Position(gs.Pos()),
					Rule: "leakcheck",
					Msg: "spawned goroutine is neither joined (no completion signal) nor " +
						"cancellable (no context in the closure) — nothing can ever stop or " +
						"wait for it (add a done channel/WaitGroup or pass a context, " +
						"or //lint:ignore leakcheck <reason>)",
				})
			}
		}
	}
	if len(spawns) > 0 {
		findings = append(findings, leakFlow(pkg, g, spawns)...)
	}

	// Recurse into this body's direct literals.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			findings = append(findings, leakCheckBody(pkg, lit.Body)...)
			return false
		}
		return true
	})
	return findings
}

// leakFlow runs the may-pending analysis: a spawn's signal keys are
// generated at the GoStmt and killed by a consuming use; keys alive at
// exit on some path are leaks, reported at their spawn.
func leakFlow(pkg *Package, g *cfg.Graph, spawns map[*ast.GoStmt]*leakSpawn) []Finding {
	info := pkg.Info

	// Key the flow by signal object; remember each key's first spawn
	// for deterministic attribution.
	spawnPos := map[types.Object]token.Pos{}
	for _, sp := range spawns {
		for _, obj := range sp.signals {
			if p, ok := spawnPos[obj]; !ok || sp.stmt.Pos() < p {
				spawnPos[obj] = sp.stmt.Pos()
			}
		}
	}

	type objSet = map[types.Object]bool
	flow := cfg.Flow[objSet]{
		Entry: objSet{},
		Top:   objSet{},
		Merge: func(a, b objSet) objSet {
			for k := range b {
				a[k] = true
			}
			return a
		},
		Transfer: func(_ *cfg.Block, n cfg.Node, in objSet) objSet {
			if gs, ok := n.Ast.(*ast.GoStmt); ok && !n.Defer {
				if sp := spawns[gs]; sp != nil {
					for _, obj := range sp.signals {
						in[obj] = true
					}
				}
				return in
			}
			for obj := range in {
				if consumesSignal(info, n.Ast, obj) {
					delete(in, obj)
				}
			}
			return in
		},
		Equal: func(a, b objSet) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Clone: func(s objSet) objSet {
			out := make(objSet, len(s))
			for k := range s {
				out[k] = true
			}
			return out
		},
	}
	res := cfg.Forward(g, flow)

	pending := res.In[g.Exit.Index]
	var objs []types.Object
	for obj := range pending {
		objs = append(objs, obj)
	}
	// Deterministic order: by spawn position.
	for i := 1; i < len(objs); i++ {
		for j := i; j > 0 && spawnPos[objs[j]] < spawnPos[objs[j-1]]; j-- {
			objs[j], objs[j-1] = objs[j-1], objs[j]
		}
	}
	var out []Finding
	for _, obj := range objs {
		out = append(out, Finding{
			Pos:  pkg.Fset.Position(spawnPos[obj]),
			Rule: "leakcheck",
			Msg: fmt.Sprintf("goroutine spawned here signals completion on %s, but some path "+
				"returns without consuming the signal — the goroutine (and an unbuffered send) "+
				"outlives the call on that path (wait on every path, or //lint:ignore leakcheck <reason>)",
				obj.Name()),
		})
	}
	return out
}

// consumesSignal reports whether the node joins or takes over the
// signal: a receive or range from the channel, a Wait on the
// WaitGroup, or the variable escaping (call argument, return value,
// assignment source — some other function may join it). Spawn
// subtrees are excluded: the spawned goroutine producing the signal is
// not the consumer.
func consumesSignal(info *types.Info, node ast.Node, obj types.Object) bool {
	consumed := false
	ast.Inspect(node, func(x ast.Node) bool {
		if consumed {
			return false
		}
		switch x := x.(type) {
		case *ast.GoStmt:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && isObjIdent(info, x.X, obj) {
				consumed = true
			}
		case *ast.RangeStmt:
			if isObjIdent(info, x.X, obj) {
				consumed = true
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok &&
				sel.Sel.Name == "Wait" && isObjIdent(info, sel.X, obj) {
				consumed = true
				return false
			}
			for _, arg := range x.Args {
				if mentionsObj(info, arg, obj) {
					consumed = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if mentionsObj(info, r, obj) {
					consumed = true
					return false
				}
			}
		case *ast.AssignStmt:
			for _, r := range x.Rhs {
				if mentionsObj(info, r, obj) {
					consumed = true
					return false
				}
			}
		}
		return true
	})
	return consumed
}

func isObjIdent(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

func mentionsObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if id, ok := x.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}

// signalObjs scans a spawned closure for completion signals: locals
// holds the signal variables declared in the enclosing body (the
// analyzable case); any reports whether any signal mechanism exists at
// all, local or not (a non-local one means some other scope owns the
// join, so the spawn is not flagged as unjoinable).
func signalObjs(info *types.Info, encl *ast.BlockStmt, lit *ast.FuncLit) (locals []types.Object, any bool) {
	seen := map[types.Object]bool{}
	add := func(obj types.Object) {
		any = true
		if obj == nil || seen[obj] {
			return
		}
		if obj.Pos() < encl.Pos() || obj.Pos() >= encl.End() {
			return // declared outside this body: its owner joins it
		}
		seen[obj] = true
		locals = append(locals, obj)
	}
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CallExpr:
			switch fun := ast.Unparen(x.Fun).(type) {
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Done" && isWaitGroup(info, fun.X) {
					if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
						add(info.Uses[id])
					} else {
						any = true
					}
				}
			case *ast.Ident:
				if fun.Name == "close" && len(x.Args) == 1 {
					if obj := chanObjOf(info, x.Args[0]); obj != nil {
						if unbufferedChanMake(info, encl, obj) {
							add(obj)
						} else {
							any = true
						}
					}
				}
			}
		case *ast.SendStmt:
			if obj := chanObjOf(info, x.Chan); obj != nil {
				if unbufferedChanMake(info, encl, obj) {
					add(obj)
				} else {
					any = true
				}
			}
		}
		return true
	})
	return locals, any
}

// chanObjOf resolves a channel-typed identifier to its object.
func chanObjOf(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		return nil
	}
	if _, isChan := obj.Type().Underlying().(*types.Chan); !isChan {
		return nil
	}
	return obj
}

// isWaitGroup reports whether e is a sync.WaitGroup (possibly through
// a pointer).
func isWaitGroup(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// unbufferedChanMake reports whether obj is initialized in body by a
// make with no capacity (or explicit 0) — the blocking signal shape.
// A channel made elsewhere (or with a buffer) is someone else's
// protocol.
func unbufferedChanMake(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if found {
			return false
		}
		as, ok := x.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			def := info.Defs[id]
			if def == nil {
				def = info.Uses[id]
			}
			if def != obj {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok {
				continue
			}
			if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fn.Name != "make" {
				continue
			}
			if len(call.Args) == 1 {
				found = true
			} else if len(call.Args) == 2 {
				if lit, ok := ast.Unparen(call.Args[1]).(*ast.BasicLit); ok && lit.Value == "0" {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// mentionsContext reports whether the closure can see a context: any
// identifier of type context.Context in its body (captured or its own
// parameter).
func mentionsContext(info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit, func(x ast.Node) bool {
		if found {
			return false
		}
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj != nil && isContextType(obj.Type()) {
			found = true
		}
		return true
	})
	return found
}
