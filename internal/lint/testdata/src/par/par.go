// Package par is a lint fixture for gobound's exemption: the worker
// pool itself is the one place allowed to spawn goroutines.
package par

import "sync"

// ForEach spawns workers inside the approved pool package: not flagged.
func ForEach(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := 0
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
