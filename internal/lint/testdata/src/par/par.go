// Package par is a lint fixture for gobound's exemption: the worker
// pool itself is the one place allowed to spawn goroutines — both the
// fixed-size pool and the semaphore-gated budget path.
package par

import "sync"

// Budget is a helper-token semaphore mirroring the real pool's
// module-wide budget.
type Budget struct{ sem chan struct{} }

// NewBudget fills the semaphore with tokens.
func NewBudget(tokens int) *Budget {
	b := &Budget{sem: make(chan struct{}, tokens)}
	for i := 0; i < tokens; i++ {
		b.sem <- struct{}{}
	}
	return b
}

// TryAcquire takes a helper token without blocking.
func (b *Budget) TryAcquire() bool {
	select {
	case <-b.sem:
		return true
	default:
		return false
	}
}

// Release returns a helper token.
func (b *Budget) Release() { b.sem <- struct{}{} }

// ForEachIn spawns helpers only for tokens the budget grants — the
// semaphore-gated spawn path is still inside the approved pool package:
// not flagged by gobound, and clean for every other analyzer.
func ForEachIn(b *Budget, workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	helpers := 0
	for helpers < workers-1 && b.TryAcquire() {
		helpers++
	}
	if helpers == 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := 0
	var mu sync.Mutex
	loop := func() {
		for {
			mu.Lock()
			i := next
			next++
			mu.Unlock()
			if i >= n {
				return
			}
			fn(i)
		}
	}
	for h := 0; h < helpers; h++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer b.Release()
			loop()
		}()
	}
	loop()
	wg.Wait()
}

// ForEach spawns workers inside the approved pool package: not flagged.
func ForEach(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := 0
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
