// Command tool is a lint fixture: package main is outside panicfree's
// scope, so a top-level panic here is allowed — but errdrop applies to
// cmd/ packages, with terminal output exempt.
package main

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func fallible() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

func main() {
	panic("command binaries may panic")
}

// Dropped discards an error in a command main: flagged.
func Dropped() {
	fallible() // want errdrop
}

// Blanked blanks an error in a command main: flagged.
func Blanked() int {
	v, _ := pair() // want errdrop
	return v
}

// Terminal output cannot usefully report its own failure: not flagged.
func Terminal(b *strings.Builder) {
	fmt.Println("progress")
	fmt.Printf("%d%%\n", 50)
	fmt.Print("done\n")
	fmt.Fprintln(os.Stderr, "warning")
	fmt.Fprintf(os.Stdout, "result %d\n", 1)
	fmt.Fprintf(b, "buffered %d\n", 2)
}

// FileWrite targets an arbitrary writer, not a std stream: flagged.
func FileWrite(f *os.File) {
	fmt.Fprintln(f, "payload") // want errdrop
}

// Handled checks the error: not flagged.
func Handled() int {
	v, err := pair()
	if err != nil {
		return -1
	}
	return v
}
