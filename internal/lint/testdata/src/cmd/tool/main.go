// Command tool is a lint fixture: package main is outside panicfree's
// scope, so a top-level panic here is allowed.
package main

func main() {
	panic("command binaries may panic")
}
