// Package chase is a lint fixture: its name puts it in floateq's scope
// (closeness and ranking code) as well as mapiter's, and makes it a
// taint root for detsource — nondeterminism sources it can reach
// through any call chain (see fixture/det) are flagged.
package chase

import (
	"time"

	"fixture/det"
)

// Pipeline hands ranking work to a helper package; detsource follows
// the chain to the map range two hops down.
func Pipeline(m map[string]int) int { return det.Hop1(m) }

// Uses reaches each taint source in det; the findings land there.
func Uses(a, b chan int) int64 {
	det.Jitter()
	det.Seeded(7)
	det.Race(a, b)
	det.Justified()
	return det.Stamp()
}

// Clock reads the wall clock directly in a canonical-output package:
// flagged in place.
func Clock() int64 {
	return time.Now().UnixNano() // want detsource
}

// Score compares closeness values with exact equality: flagged.
func Score(a, b float64) bool {
	return a == b // want floateq
}

// Distinct is the != form: flagged.
func Distinct(a, b float64) bool {
	if a != b { // want floateq
		return true
	}
	return false
}

// Ordered comparisons are fine.
func Ordered(a, b float64) bool { return a < b }

// Ints may use exact equality.
func Ints(a, b int) bool { return a == b }

// Tolerated carries a justification for an exact sentinel compare.
func Tolerated(a float64) bool {
	//lint:ignore floateq comparing against an exact sentinel value
	return a == -1
}

// Mixed flags when only one operand is a float.
func Mixed(a float64) bool {
	return a == 0 // want floateq
}
