// Package chase is a lint fixture: its name puts it in floateq's scope
// (closeness and ranking code) as well as mapiter's.
package chase

// Score compares closeness values with exact equality: flagged.
func Score(a, b float64) bool {
	return a == b // want floateq
}

// Distinct is the != form: flagged.
func Distinct(a, b float64) bool {
	if a != b { // want floateq
		return true
	}
	return false
}

// Ordered comparisons are fine.
func Ordered(a, b float64) bool { return a < b }

// Ints may use exact equality.
func Ints(a, b int) bool { return a == b }

// Tolerated carries a justification for an exact sentinel compare.
func Tolerated(a float64) bool {
	//lint:ignore floateq comparing against an exact sentinel value
	return a == -1
}

// Mixed flags when only one operand is a float.
func Mixed(a float64) bool {
	return a == 0 // want floateq
}
