package cache

import "sync"

// Striped mirrors the sharded star-view cache: a slice of stripes, each
// owning its own mutex and guarded state. lockcheck must bind an
// element's guarded fields to that element's mutex — taking some other
// stripe's lock (or none) does not discharge the requirement.
type Striped struct {
	shards []stripe
}

// stripe is one lock stripe.
type stripe struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Add locks the owning stripe before touching its state: clean.
func (s *Striped) Add(i, d int) {
	sh := &s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.n += d
}

// Peek reads a stripe's guarded field with no lock at all: flagged at
// the access.
func (s *Striped) Peek(i int) int {
	return s.shards[i].n // want lockcheck
}

// bump relies on its caller holding the stripe's mutex; the call graph
// verifies every caller locks first.
func (sh *stripe) bump() {
	sh.n++
}

// Bump discharges bump's requirement at the callsite: clean.
func (s *Striped) Bump(i int) {
	sh := &s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.bump()
}

// BumpRacy calls the lock-requiring helper without any lock: flagged at
// the callsite with the witness chain.
func (s *Striped) BumpRacy(i int) {
	s.shards[i].bump() // want lockcheck
}

// Total documents why an unlocked sweep over the stripes is tolerated
// in the fixture (a real cache would use atomics for aggregates).
func (s *Striped) Total() int {
	t := 0
	for i := range s.shards {
		//lint:ignore lockcheck fixture for the striped suppression path
		t += s.shards[i].n
	}
	return t
}
