package cache

import "sync"

// Memo mirrors the answer cache's singleflight stripes: each stripe
// owns a mutex guarding its entry map, its in-flight map, and its
// invalidation generation. The owner computes outside the lock and
// publishes under it only if the generation is unchanged; waiters
// block on the flight's done channel outside the lock. lockcheck must
// accept that discipline and still flag any guarded touch that skips
// the stripe's own mutex.
type Memo struct {
	stripes []memoStripe
}

// memoStripe is one lock stripe of the memo.
type memoStripe struct {
	mu      sync.Mutex
	gen     uint64         // guarded by mu
	entries map[string]int // guarded by mu
	flights map[string]*memoFlight
}

// memoFlight is one in-progress computation; val is written once by
// the owner before close(done) and read by waiters only after it.
type memoFlight struct {
	done chan struct{}
	val  int
}

// Get is the clean singleflight lookup: every touch of the guarded
// state happens under the stripe's lock, the wait and the compute
// happen outside it, and the store re-checks the generation.
func (m *Memo) Get(i int, key string, compute func() int) int {
	st := &m.stripes[i]
	st.mu.Lock()
	if v, ok := st.entries[key]; ok {
		st.mu.Unlock()
		return v
	}
	if f, ok := st.flights[key]; ok {
		st.mu.Unlock()
		<-f.done
		return f.val
	}
	f := &memoFlight{done: make(chan struct{})}
	if st.flights == nil {
		st.flights = map[string]*memoFlight{}
	}
	st.flights[key] = f
	gen := st.gen
	st.mu.Unlock()

	f.val = compute()

	st.mu.Lock()
	if st.gen == gen {
		if st.entries == nil {
			st.entries = map[string]int{}
		}
		st.entries[key] = f.val
	}
	delete(st.flights, key)
	st.mu.Unlock()
	close(f.done)
	return f.val
}

// SeedRacy publishes a value without the stripe's lock: flagged at the
// guarded-map write.
func (m *Memo) SeedRacy(i int, key string, v int) {
	m.stripes[i].entries[key] = v // want lockcheck
}

// GenRacy reads the invalidation generation without the lock: flagged.
func (m *Memo) GenRacy(i int) uint64 {
	return m.stripes[i].gen // want lockcheck
}

// InvalidateAll bumps every stripe's generation and drops its entries
// under that stripe's own lock: clean.
func (m *Memo) InvalidateAll() {
	for i := range m.stripes {
		st := &m.stripes[i]
		st.mu.Lock()
		st.gen++
		st.entries = map[string]int{}
		st.mu.Unlock()
	}
}
