// Package cache is a lint fixture for lockcheck v2: fields annotated
// "guarded by <mu>" must be reached only on call paths that hold the
// mutex. Helpers relying on the caller's lock are verified through the
// call graph, unlocked chains are reported with a witness path, double
// acquisition is a potential deadlock, and a *Locked suffix that no
// lock-holding caller justifies is a dead annotation.
package cache

import "sync"

// Counter has one guarded field.
type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Inc takes the lock before touching n: not flagged.
func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Racy reads n without the lock and nobody locks for it: flagged at
// the access, as an unlocked entry path.
func (c *Counter) Racy() int {
	return c.n // want lockcheck
}

// get relies on its caller holding mu. No Locked suffix needed: the
// call graph verifies that every caller locks first.
func (c *Counter) get() int {
	return c.n
}

// Get discharges get's requirement by locking at the callsite: clean.
func (c *Counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.get()
}

// leaf/middle/Outer form a two-deep chain that never takes the lock;
// the finding lands on the access with the full witness chain.
func (c *Counter) leaf() int {
	return c.n // want lockcheck
}

func (c *Counter) middle() int { return c.leaf() }

// Outer is the unlocked entry point of the chain.
func (c *Counter) Outer() int { return c.middle() }

// DoubleLock holds mu and then calls Inc, which acquires it again:
// flagged at the callsite as a potential deadlock.
func (c *Counter) DoubleLock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Inc() // want lockcheck
}

// incVia acquires mu only transitively, through Inc.
func (c *Counter) incVia() { c.Inc() }

// DoubleLockDeep re-acquires through the transitive chain: flagged.
func (c *Counter) DoubleLockDeep() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.incVia() // want lockcheck
}

// bumpLocked keeps the v1 naming convention and is genuinely called
// with the lock held: clean.
func (c *Counter) bumpLocked() { c.n++ }

// Bump justifies bumpLocked's suffix.
func (c *Counter) Bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bumpLocked()
}

// mergeLocked claims a caller-held lock but has no callers at all:
// flagged as a dead or misleading annotation.
func (c *Counter) mergeLocked(d int) { // want lockcheck
	c.n += d
}

// Snapshot documents why an unlocked read is tolerated here.
func (c *Counter) Snapshot() int {
	//lint:ignore lockcheck fixture for the suppression path
	return c.n
}

// drainLocked touches guarded state through a parameter; the call
// graph cannot bind a foreign base to a caller's lock, so the Locked
// suffix keeps its v1 trust.
func drainLocked(c *Counter) int {
	return c.n
}

// Drain holds the lock across the drainLocked call: clean, and the
// callsite justifies drainLocked's suffix.
func Drain(c *Counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return drainLocked(c)
}

// Reach touches guarded state through a parameter without the lock and
// without the Locked contract: flagged at the access.
func Reach(c *Counter) int {
	return c.n // want lockcheck
}

// CallReach calls a lock-requiring method on a parameter without
// locking: flagged at the callsite with the witness chain.
func CallReach(c *Counter) int {
	return c.leaf() // want lockcheck
}

// Pair has two names declared in one guarded field.
type Pair struct {
	mu   sync.Mutex
	a, b int64 // guarded by mu
}

// Sum locks first: not flagged.
func (p *Pair) Sum() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.a + p.b
}

// Leak touches the second declared name without the lock: flagged.
func (p *Pair) Leak() int64 {
	return p.b // want lockcheck
}
