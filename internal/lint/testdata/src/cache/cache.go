// Package cache is a lint fixture for lockcheck: fields annotated
// "guarded by <mu>" must only be touched with that mutex held.
package cache

import "sync"

// Counter has one guarded field.
type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Inc takes the lock before touching n: not flagged.
func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Racy reads n without the lock: flagged.
func (c *Counter) Racy() int {
	return c.n // want lockcheck
}

// addLocked relies on the caller holding mu; the Locked suffix exempts
// it from the intraprocedural check.
func (c *Counter) addLocked(d int) {
	c.n += d
}

// Snapshot documents why an unlocked read is tolerated here.
func (c *Counter) Snapshot() int {
	//lint:ignore lockcheck fixture for the suppression path
	return c.n
}

// Pair has two names declared in one guarded field.
type Pair struct {
	mu   sync.Mutex
	a, b int64 // guarded by mu
}

// Sum locks first: not flagged.
func (p *Pair) Sum() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.a + p.b
}

// Leak touches the second declared name without the lock: flagged.
func (p *Pair) Leak() int64 {
	return p.b // want lockcheck
}
