package cache

import "sync"

// This file exercises lockcheck v3's flow-sensitive core: the lexical
// v2 scan (Lock-before-position, Unlock ignored) gets every function
// here wrong in one direction or the other.

// ReleaseEarly pins the v2 false-positive class the rewrite fixes:
// v2's lexical scan saw the Lock above the Inc callsite and flagged it
// as a re-acquisition deadlock, but no path reaches Inc with mu still
// held — both branches release first. v3 must stay silent.
func (c *Counter) ReleaseEarly(cond bool) {
	c.mu.Lock()
	if cond {
		c.n++
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	c.Inc()
}

// StaleRead re-reads the guarded field after releasing. v2's lexical
// scan waved it through (a Lock appears earlier); v3 knows the lock is
// not held on the path reaching the second read.
func (c *Counter) StaleRead() int {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	return v + c.n // want lockcheck
}

// LeakOnFail releases on the happy path only: the fail branch returns
// with mu still held. Reported at the acquisition.
func (c *Counter) LeakOnFail(fail bool) int {
	c.mu.Lock() // want lockcheck
	if fail {
		return -1
	}
	c.mu.Unlock()
	return 0
}

// DoubleRelease unlocks twice on the fall-through path: the second
// release pairs with no acquisition on any path reaching it.
func (c *Counter) DoubleRelease(cond bool) {
	c.mu.Lock()
	if cond {
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	c.mu.Unlock() // want lockcheck
}

// BothArms locks in both branches before the access: must-held at the
// join, so the flow-sensitive check accepts what any lexical
// single-Lock pattern match would model poorly.
func (c *Counter) BothArms(cond bool) int {
	if cond {
		c.mu.Lock()
	} else {
		c.mu.Lock()
	}
	defer c.mu.Unlock()
	return c.n
}

// release frees a lock its caller acquired: no acquisition in this
// body, so the unpaired-release check must exempt it (only releases
// with a matching Lock somewhere in the same body qualify). Deliberately
// not named *Locked — the dead-annotation check is a separate concern.
func (c *Counter) release() {
	c.mu.Unlock()
}

// Board carries a read-write lock so the R-variants get flow coverage.
type Board struct {
	rw sync.RWMutex
	v  int // guarded by rw
}

// Read holds the read lock on every path to the access: clean, and a
// read lock discharges a guarded read.
func (b *Board) Read() int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	return b.v
}

// ReadLeak drops the read lock on the early-return path.
func (b *Board) ReadLeak(skip bool) int {
	b.rw.RLock() // want lockcheck
	if skip {
		return 0
	}
	v := b.v
	b.rw.RUnlock()
	return v
}
