package cache

// This file pins the defer-in-loop interaction the exit-edge replay
// used to get wrong: a `defer mu.Unlock()` registered inside a loop
// body does NOT release per iteration (it runs at function exit), and
// it does not run at all on a zero-iteration path.

// LockThenLoop acquires before the loop and schedules the release
// inside the body. On a zero-iteration run the defer never registers
// and the lock leaks out of the function; replaying the defer on every
// exit edge masked exactly this, so the leak check now works off the
// registration-sensitive pending set.
func (c *Counter) LockThenLoop(items []int) {
	c.mu.Lock() // want lockcheck
	for range items {
		defer c.mu.Unlock()
	}
}

// IterDefer locks per iteration but defers the release: the deferred
// unlocks pile up until exit, so every iteration after the first
// re-acquires a lock the function still holds — a guaranteed
// self-deadlock on any two-element slice.
func (c *Counter) IterDefer(items []int) {
	for range items {
		c.mu.Lock() // want lockcheck
		defer c.mu.Unlock()
		c.n++
	}
}

// CondDefer registers the release on the same path that acquires: the
// pending kill at the registration is path-correlated, so neither arm
// leaks and the function is clean.
func (c *Counter) CondDefer(lock bool) int {
	if lock {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.n
	}
	return -1
}
