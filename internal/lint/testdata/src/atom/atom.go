// Package atom exercises the atomic-consistency analysis: fields
// mixing sync/atomic and plain access, typed atomics used directly,
// and the two exemptions — plain writes before publication and a
// mutex guarding every access.
package atom

import (
	"sync"
	"sync/atomic"
)

// Mixed updates hits atomically but reads it plain elsewhere: the
// classic torn read. n stays atomic-only and is clean.
type Mixed struct {
	hits int64
	n    int64
}

// Bump is the atomic writer.
func (m *Mixed) Bump() {
	atomic.AddInt64(&m.hits, 1)
	atomic.AddInt64(&m.n, 1)
}

// Report reads the atomically-updated field directly: flagged.
func (m *Mixed) Report() int64 {
	return m.hits // want atomicfield
}

// NewMixed initializes plainly before the value escapes: the local is
// provably unpublished at both writes, so the constructor is exempt.
func NewMixed() *Mixed {
	m := &Mixed{}
	m.hits = 0
	m.n = 1
	return m
}

// sink publishes whatever is stored into it.
var sink *Mixed

// NewMixedLeaky publishes first, then keeps writing plainly: after the
// escape another goroutine may already hold the pointer, so the write
// is flagged.
func NewMixedLeaky() *Mixed {
	m := &Mixed{}
	sink = m
	m.hits = 1 // want atomicfield
	return m
}

// Typed carries an atomic.Int64: the type itself declares the atomic
// regime, so a direct copy bypassing the API is flagged without any
// sync/atomic callsite as witness.
type Typed struct {
	v atomic.Int64
}

// Load uses the API: clean.
func (t *Typed) Load() int64 {
	return t.v.Load()
}

// Snapshot copies the atomic value wholesale: flagged.
func (t *Typed) Snapshot() int64 {
	plain := t.v // want atomicfield
	return plain.Load()
}

// Guarded mixes regimes but every access — the atomic writer included —
// holds mu: the mutex serializes them, so the mix is redundant rather
// than racy, and the analyzer stays silent.
type Guarded struct {
	mu sync.Mutex
	v  int64
}

// Add writes under the lock.
func (g *Guarded) Add(d int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	atomic.AddInt64(&g.v, d)
}

// Get reads under the same lock.
func (g *Guarded) Get() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Partial locks only the plain reader; the atomic writer bypasses the
// mutex, so the lock proves nothing and the read is flagged.
type Partial struct {
	mu sync.Mutex
	v  int64
}

// Add writes without the lock.
func (p *Partial) Add(d int64) {
	atomic.AddInt64(&p.v, d)
}

// Get holds the mutex, but the writer does not.
func (p *Partial) Get() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.v // want atomicfield
}

// Suppressed documents the escape hatch: a justified lint:ignore.
type Suppressed struct {
	c int64
}

// Inc is the atomic writer.
func (s *Suppressed) Inc() {
	atomic.AddInt64(&s.c, 1)
}

// Racy reads plainly but is suppressed with a reason.
func (s *Suppressed) Racy() int64 {
	//lint:ignore atomicfield fixture for the suppression path
	return s.c
}
