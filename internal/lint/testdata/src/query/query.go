// Package query is a lint fixture: its name puts it in mapiter's scope
// (packages whose iteration order can leak into canonical output).
package query

import "sort"

// Process ranges over a map and emits in iteration order: flagged.
func Process(m map[string]int) []string {
	out := []string{}
	for k, v := range m { // want mapiter
		if v > 0 {
			out = append(out, k)
		}
	}
	return out
}

// Sorted is the canonical fix: collect keys, sort, then iterate.
func Sorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Justified documents why order cannot matter.
func Justified(m map[string]int) int {
	total := 0
	//lint:ignore mapiter summing ints is exact and order-insensitive
	for _, v := range m {
		total += v
	}
	return total
}

// SliceRange iterates a slice, which is ordered: not flagged.
func SliceRange(xs []int) int {
	n := 0
	for range xs {
		n++
	}
	return n
}
