// Package par in fixture directory leak exercises leakcheck: a
// spawned goroutine must be joined (its completion signal consumed on
// every path) or cancellable. The package is named par so gobound's
// worker-pool exemption applies and the spawns test leakcheck alone.
package par

import (
	"errors"
	"sync"
)

var errNope = errors.New("nope")

// JoinAll waits on every path: clean.
func JoinAll(n int, fn func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(i)
		}()
	}
	wg.Wait()
}

// SkipJoin drops the WaitGroup on the early-return path: the workers
// outlive the call there.
func SkipJoin(n int, fn func(int), bail bool) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // want leakcheck
			defer wg.Done()
			fn(i)
		}()
	}
	if bail {
		return
	}
	wg.Wait()
}

// DoneDropped never receives from the done channel on the fail path:
// the close cannot complete a join nobody performs, and the goroutine
// is unreachable forever after.
func DoneDropped(work func(), fail bool) error {
	done := make(chan struct{})
	go func() { // want leakcheck
		work()
		close(done)
	}()
	if fail {
		return errNope
	}
	<-done
	return nil
}

// SendJoined signals on a local unbuffered channel received on every
// path: clean.
func SendJoined(compute func() int) int {
	out := make(chan int)
	go func() {
		out <- compute()
	}()
	return <-out
}

// HandOff passes the signal channel to another function: that function
// may own the join, so the escape counts as consumption.
func HandOff(work func(), join func(chan struct{})) {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	join(done)
}

// Buffered signals on a buffered channel: the send cannot block the
// goroutine, and the protocol belongs to whoever sized the buffer —
// leakcheck leaves it alone.
func Buffered(fn func()) {
	done := make(chan struct{}, 1)
	go func() {
		fn()
		done <- struct{}{}
	}()
}

// Fire spawns a goroutine with no completion signal and no context in
// the closure: nothing can ever join or cancel it.
func Fire(fn func()) {
	go func() { // want leakcheck
		fn()
	}()
}

// Suppressed uses the inline escape hatch.
func Suppressed(fn func()) {
	//lint:ignore leakcheck fixture for the suppression path
	go func() {
		fn()
	}()
}
