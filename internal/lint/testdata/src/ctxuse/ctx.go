// Package par in fixture directory ctxuse exercises ctxflow: a
// function that receives a context.Context must thread it into every
// blocking or spawning operation. The package is named par so gobound's
// worker-pool exemption applies and the spawn cases test ctxflow alone.
package par

import (
	"context"
	"sync"
	"time"
)

// SendUnguarded blocks on a send the context cannot interrupt.
func SendUnguarded(ctx context.Context, ch chan int) {
	ch <- 1 // want ctxflow
}

// SendGuarded wraps the send in a select watching ctx.Done: clean.
func SendGuarded(ctx context.Context, ch chan int) {
	select {
	case ch <- 1:
	case <-ctx.Done():
	}
}

// TrySend uses a default arm: the send is non-blocking, clean.
func TrySend(ctx context.Context, ch chan int) bool {
	select {
	case ch <- 1:
		return true
	default:
		return false
	}
}

// RecvUnguarded blocks on a receive with no cancellation path.
func RecvUnguarded(ctx context.Context, ch chan int) int {
	return <-ch // want ctxflow
}

type ctxKey struct{}

// RecvDerived receives under a derived context's Done channel: the
// context.WithValue result counts as the threaded context.
func RecvDerived(ctx context.Context, ch chan int) int {
	sub := context.WithValue(ctx, ctxKey{}, 1)
	select {
	case v := <-ch:
		return v
	case <-sub.Done():
		return 0
	}
}

// DrainAll ranges over a channel: no cancellation path can interrupt
// the implicit receives.
func DrainAll(ctx context.Context, ch chan int) (sum int) {
	for v := range ch { // want ctxflow
		sum += v
	}
	return sum
}

// Nap sleeps straight through any cancellation.
func Nap(ctx context.Context) {
	time.Sleep(time.Millisecond) // want ctxflow
}

// FreshRoot manufactures a new root while a context is in hand,
// detaching the downstream call tree from cancellation.
func FreshRoot(ctx context.Context) context.Context {
	return context.Background() // want ctxflow
}

// SpawnDropsCtx launches a goroutine the context cannot reach. The
// caller-owned WaitGroup keeps leakcheck satisfied (another scope owns
// the join); ctxflow still flags the context-blind spawn.
func SpawnDropsCtx(ctx context.Context, wg *sync.WaitGroup, fn func()) {
	wg.Add(1)
	go func() { // want ctxflow
		defer wg.Done()
		fn()
	}()
}

// SpawnThreaded passes the context into the closure: cancellation can
// reach the goroutine, clean.
func SpawnThreaded(ctx context.Context, wg *sync.WaitGroup, fn func(context.Context)) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		fn(ctx)
	}()
}

// Suppressed uses the inline escape hatch.
func Suppressed(ctx context.Context) {
	//lint:ignore ctxflow fixture for the suppression path
	time.Sleep(time.Millisecond)
}

// NoCtx receives no context, so ctxflow does not apply: the bare
// receive is fine here.
func NoCtx(ch chan int) int {
	return <-ch
}
