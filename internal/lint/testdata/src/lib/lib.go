// Package lib is a lint fixture for panicfree: ordinary library code
// (any non-main, non-test package) must not panic.
package lib

import "errors"

// Fail panics from library code: flagged.
func Fail() {
	panic("boom") // want panicfree
}

// MustIndex documents its precondition, exempting the panic.
// invariant: callers bound i by len(xs); the panic is unreachable.
func MustIndex(xs []int, i int) int {
	if i < 0 || i >= len(xs) {
		panic("index out of range")
	}
	return xs[i]
}

// Quiet returns an error instead of panicking: not flagged.
func Quiet(ok bool) error {
	if !ok {
		return errors.New("not ok")
	}
	return nil
}

// Suppressed uses the inline escape hatch.
func Suppressed() {
	//lint:ignore panicfree fixture for the suppression path
	panic("boom")
}

// DropOutsideInternal discards an error, but lib is not an internal
// package, so errdrop does not apply here.
func DropOutsideInternal() {
	Quiet(false)
}
