// Package errs is a lint fixture for errdrop: internal packages must
// not silently discard error returns.
package errs

import (
	"errors"
	"fmt"
	"strings"
)

func fallible() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

// Bare drops the error by ignoring the whole result: flagged.
func Bare() {
	fallible() // want errdrop
}

// Blank assigns the error to the blank identifier: flagged.
func Blank() {
	_ = fallible() // want errdrop
}

// BlankPair blanks the error half of a tuple: flagged.
func BlankPair() int {
	v, _ := pair() // want errdrop
	return v
}

// Handled checks the error: not flagged.
func Handled() int {
	v, err := pair()
	if err != nil {
		return -1
	}
	return v
}

// Builder writes to strings.Builder and fmt.Fprintf over it; both are
// documented never to fail: not flagged.
func Builder() string {
	var b strings.Builder
	b.WriteString("x")
	fmt.Fprintf(&b, "%d", 1)
	return b.String()
}

// Deferred drops are exempt only for Close/Unlock-shaped cleanups: a
// deferred flush hides a real failure and is flagged.
func Deferred() {
	defer fallible() // want errdrop
}

// closer mimics an io.Closer-shaped resource.
type closer struct{}

func (closer) Close() error { return errors.New("late") }

// DeferredClose is the idiomatic best-effort cleanup: not flagged.
func DeferredClose() {
	var c closer
	defer c.Close()
}

// DeferredLit wraps drops in a deferred literal: the body is walked
// like ordinary code, so the non-cleanup drop and the blanked error
// are still flagged while the Close stays exempt.
func DeferredLit() {
	var c closer
	defer func() {
		c.Close()
		fallible()     // want errdrop
		_ = fallible() // want errdrop
	}()
}

// Suppressed documents an intentional fire-and-forget.
func Suppressed() {
	//lint:ignore errdrop fixture for the suppression path
	fallible()
}
