// Package pool is a lint fixture for gobound: goroutine spawns outside
// the approved worker-pool package are flagged.
package pool

import "sync"

// Spawn launches a raw goroutine: flagged.
func Spawn(fn func()) {
	go fn() // want gobound
}

// SpawnJoined is flagged too — even a properly joined goroutine must go
// through the worker pool so fan-out stays bounded and auditable.
func SpawnJoined(fns []func()) {
	var wg sync.WaitGroup
	for _, fn := range fns {
		wg.Add(1)
		go func() { // want gobound
			defer wg.Done()
			fn()
		}()
	}
	wg.Wait()
}

// Suppressed uses the inline escape hatch.
func Suppressed(fn func()) {
	//lint:ignore gobound fixture for the suppression path
	go fn()
}

// Sequential spawns nothing: not flagged.
func Sequential(fns []func()) {
	for _, fn := range fns {
		fn()
	}
}
