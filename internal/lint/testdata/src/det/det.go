// Package det is a lint fixture for detsource: it is NOT a
// canonical-output package, so its nondeterminism sources are flagged
// only where a call chain from chase (see fixture/chase) reaches them.
package det

import (
	"math/rand"
	"time"
)

// Hop1 merely forwards; the tainted range lives one hop further down.
func Hop1(m map[string]int) int { return Hop2(m) }

// Hop2 ranges a map in iteration order and is reachable from
// chase.Pipeline via Hop1: flagged, with the witness chain.
func Hop2(m map[string]int) int {
	total := 0
	for _, v := range m { // want detsource
		if v > 0 {
			total += v
		}
	}
	return total
}

// Orphan has the same tainted shape but no path from canonical output
// reaches it: not flagged.
func Orphan(m map[string]int) int {
	total := 0
	for _, v := range m {
		if v > 0 {
			total += v
		}
	}
	return total
}

// Stamp reads the wall clock: flagged through the chain from chase.
func Stamp() int64 {
	return time.Now().UnixNano() // want detsource
}

// Jitter draws from the global math/rand source: flagged.
func Jitter() int {
	return rand.Intn(10) // want detsource
}

// Seeded uses an explicitly seeded private source, which is
// reproducible: not flagged.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// Race lets the runtime pick among ready cases: flagged.
func Race(a, b chan int) int {
	select { // want detsource
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// TryRecv is the non-blocking receive: one comm case plus default.
// The spec's pseudo-random arbitration never applies (default cannot
// race a comm case), so this is deterministic: not flagged.
func TryRecv(a chan int) (int, bool) {
	select {
	case v := <-a:
		return v, true
	default:
		return 0, false
	}
}

// Justified documents why the randomness is acceptable here.
func Justified() int {
	//lint:ignore detsource fixture for the suppression path
	return rand.Intn(10)
}
