// Package ign is a lint fixture for lintignore: every lint:ignore
// directive must carry a justification after its rule list. A bare
// directive is itself flagged and suppresses nothing, so the finding it
// tried to waive surfaces too.
package ign

// Unjustified carries a rule but no reason: the directive is flagged
// and the panic it tried to waive is reported anyway.
func Unjustified() {
	//lint:ignore panicfree // want lintignore
	panic("boom") // want panicfree
}

// NoRule names no rule at all.
func NoRule() {
	//lint:ignore // want lintignore
	panic("boom") // want panicfree
}

// Justified is the well-formed escape hatch: it suppresses and is not
// itself flagged.
func Justified() {
	//lint:ignore panicfree fixture for the justified path
	panic("boom")
}
