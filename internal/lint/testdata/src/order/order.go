// Package order exercises the module-wide lock-acquisition-order
// analysis: A and B are taken in both orders on different call paths —
// a genuine AB-BA cycle, one side witnessed through a helper — while C
// and D are taken in one consistent order everywhere, which must not
// be reported even though both locks appear in several functions.
package order

import "sync"

// A and B form the cycle.
type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

// LockAB holds a.mu and takes b.mu through a helper: the A→B side,
// with an interprocedural witness chain. The finding lands on the
// callsite that completes the cycle.
func LockAB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	grabB(b) // want lockorder
}

// grabB performs the nested acquisition for LockAB.
func grabB(b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
}

// LockBA takes the same pair in the opposite order: the B→A side.
func LockBA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	defer a.mu.Unlock()
}

// X, Y, and Z close a three-lock rotation: no pair is taken in both
// orders, so no two-sided witness exists, but X→Y, Y→Z, and Z→X
// together can deadlock three goroutines. The finding walks the
// shortest cycle and anchors on the acquisition completing the first
// edge from the alphabetically-first lock.
type X struct{ mu sync.Mutex }
type Y struct{ mu sync.Mutex }
type Z struct{ mu sync.Mutex }

// StepXY contributes X→Y.
func StepXY(x *X, y *Y) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock() // want lockorder
	defer y.mu.Unlock()
}

// StepYZ contributes Y→Z.
func StepYZ(y *Y, z *Z) {
	y.mu.Lock()
	defer y.mu.Unlock()
	z.mu.Lock()
	defer z.mu.Unlock()
}

// StepZX closes the rotation with Z→X.
func StepZX(z *Z, x *X) {
	z.mu.Lock()
	defer z.mu.Unlock()
	x.mu.Lock()
	defer x.mu.Unlock()
}

// C and D are always ordered C before D: consistent, clean.
type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

// First nests D inside C with the defer idiom.
func First(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
}

// Second repeats the same order with explicit releases.
func Second(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}
