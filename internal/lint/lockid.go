package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
)

// Lock identity resolution: the module-wide name of the lock a source
// expression denotes, shared by lockorder and atomicfield.
//
// The identity deliberately abstracts instances to declarations:
//
//   - a struct-field mutex resolves to "pkg.Type.field", so every
//     instance of the type — and every element of a stripe array
//     (`s.shards[i].mu` selects the same field object for every i) —
//     summarizes to a single graph node;
//   - a package-level lock resolves to "pkg.var";
//   - a bare identifier whose type is a module struct (promoted Lock
//     through an embedded mutex) resolves to "pkg.Type";
//   - a function-local or parameter mutex resolves to its declaration
//     position ("file.go:12.mu") — distinct declarations stay
//     distinct, and a lock the resolver cannot name at all is dropped
//     rather than guessed.
//
// Summarizing a stripe array to one identity means same-identity
// nesting (shard i locked while shard j is held) cannot be told apart
// from true self-deadlock, so the order graph excludes self-edges;
// lockflow's re-acquisition check covers the single-instance case and
// itself skips indexed bases for the same reason.

type lockIDs struct {
	mod *Module
	// fieldOwner maps every struct-field object declared at a package
	// scope to its "pkg.Type.field" display.
	fieldOwner map[types.Object]string
	pkgOf      map[*types.Package]*Package
}

var idsCache = map[*Module]*lockIDs{}

// lockIDsOf builds (once per module) the identity resolver.
func lockIDsOf(mod *Module) *lockIDs {
	if ids, ok := idsCache[mod]; ok {
		return ids
	}
	ids := &lockIDs{
		mod:        mod,
		fieldOwner: map[types.Object]string{},
		pkgOf:      map[*types.Package]*Package{},
	}
	for _, pkg := range mod.Pkgs {
		ids.pkgOf[pkg.Types] = pkg
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names is sorted: first-wins is deterministic
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			prefix := displayPath(mod, pkg) + "." + tn.Name()
			for i := 0; i < st.NumFields(); i++ {
				fld := st.Field(i)
				if _, taken := ids.fieldOwner[fld]; !taken {
					ids.fieldOwner[fld] = prefix + "." + fld.Name()
				}
			}
		}
	}
	idsCache[mod] = ids
	return ids
}

// fieldDisplay names a struct-field object, falling back to its
// declaration position for fields of unnamed or function-local struct
// types.
func (ids *lockIDs) fieldDisplay(obj types.Object) string {
	if d, ok := ids.fieldOwner[obj]; ok {
		return d
	}
	return ids.posDisplay(obj)
}

func (ids *lockIDs) posDisplay(obj types.Object) string {
	pos := ids.mod.Fset.Position(obj.Pos())
	return fmt.Sprintf("%s:%d.%s", filepath.Base(pos.Filename), pos.Line, obj.Name())
}

// pkgDisplay renders the module-relative display of a types package,
// or its bare name for packages outside the module.
func (ids *lockIDs) pkgDisplay(p *types.Package) string {
	if lp, ok := ids.pkgOf[p]; ok {
		return displayPath(ids.mod, lp)
	}
	if p != nil {
		return p.Name()
	}
	return "?"
}

// identityOf resolves a lock expression (the receiver of a
// Lock/Unlock call, as recorded by lockflow) to its module-wide
// identity. ok is false when no declaration-level name exists — the
// callers skip such locks rather than fabricate edges.
func (ids *lockIDs) identityOf(info *types.Info, e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	if st, isStar := e.(*ast.StarExpr); isStar {
		e = ast.Unparen(st.X)
	}
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return ids.fieldDisplay(sel.Obj()), true
		}
		// Package-qualified variable: otherpkg.Mu.
		if obj, ok := info.Uses[x.Sel].(*types.Var); ok && obj.Pkg() != nil &&
			obj.Parent() == obj.Pkg().Scope() {
			return ids.pkgDisplay(obj.Pkg()) + "." + obj.Name(), true
		}
	case *ast.IndexExpr:
		// mus[i].Lock() over a bare mutex slice: summarize all elements
		// to the slice's own identity.
		if id, ok := ids.identityOf(info, x.X); ok {
			return id + "[*]", true
		}
	case *ast.Ident:
		obj, ok := info.Uses[x].(*types.Var)
		if !ok {
			if obj, ok = info.Defs[x].(*types.Var); !ok {
				return "", false
			}
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return ids.pkgDisplay(obj.Pkg()) + "." + obj.Name(), true
		}
		// A bare local/param: either the lock IS the variable (a
		// sync.Mutex value) or the variable embeds one (promoted
		// c.Lock()). An embedded mutex is identified by the named
		// struct type — all instances summarized, like fields.
		t := obj.Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			if _, isStruct := named.Underlying().(*types.Struct); isStruct && named.Obj().Pkg() != nil {
				if _, inModule := ids.pkgOf[named.Obj().Pkg()]; inModule {
					return ids.pkgDisplay(named.Obj().Pkg()) + "." + named.Obj().Name(), true
				}
			}
		}
		return ids.posDisplay(obj), true
	}
	return "", false
}
