package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"wqe/internal/par"
)

// Package is one type-checked module package: the unit analyzers run on.
// Test files are excluded — the analyzers police library code, and the
// policies (panic-freedom, sorted iteration) deliberately do not bind
// tests.
type Package struct {
	// PkgPath is the import path ("wqe/internal/chase").
	PkgPath string
	// Dir is the absolute directory holding the package sources.
	Dir string
	// Fset is the file set shared by every package of one Load.
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types and Info carry the go/types results.
	Types *types.Package
	Info  *types.Info
}

// Name returns the package name ("chase").
func (p *Package) Name() string { return p.Types.Name() }

// Module is a loaded, fully type-checked module tree.
type Module struct {
	// Root is the absolute module root (the directory with go.mod).
	Root string
	// Path is the module path declared in go.mod.
	Path string
	Fset *token.FileSet
	// Pkgs lists the module packages in dependency (topological) order.
	Pkgs []*Package
}

// Load parses and type-checks every package under root (the directory
// containing go.mod), using only the standard library: module-internal
// imports are resolved against the packages loaded here, and everything
// else (the standard library) through the source importer. Directories
// named testdata, hidden directories, and _test.go files are skipped.
func Load(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	m := &Module{Root: root, Path: modPath, Fset: fset}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	// Parse every package first so the import graph is known before any
	// type checking starts. Directories parse concurrently into indexed
	// slots (token.FileSet is safe for concurrent AddFile); the merge
	// walks the slots in the sorted directory order, so the package set
	// and the first reported error are schedule-independent. File base
	// offsets inside the FileSet DO vary with scheduling — nothing
	// downstream may compare raw token.Pos values across files, only
	// rendered Positions.
	slots := make([]*Package, len(dirs))
	errs := make([]error, len(dirs))
	par.ForEach(par.Workers(0), len(dirs), func(i int) {
		slots[i], errs[i] = parseDir(fset, root, modPath, dirs[i])
	})
	parsed := make(map[string]*Package) // by import path
	for i, pkg := range slots {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if pkg != nil {
			parsed[pkg.PkgPath] = pkg
		}
	}

	order, err := topoOrder(parsed)
	if err != nil {
		return nil, err
	}

	imp := &moduleImporter{
		local:    make(map[string]*types.Package),
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	for _, pkg := range order {
		if err := typeCheck(pkg, imp); err != nil {
			return nil, err
		}
		imp.local[pkg.PkgPath] = pkg.Types
		m.Pkgs = append(m.Pkgs, pkg)
	}
	return m, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			if unq, err := strconv.Unquote(p); err == nil {
				p = unq
			}
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// packageDirs walks root collecting directories that hold .go files.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

// parseDir parses the non-test sources of one directory into a Package
// (nil when the directory holds no non-test Go files).
func parseDir(fset *token.FileSet, root, modPath, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	pkgPath := modPath
	if rel != "." {
		pkgPath = modPath + "/" + filepath.ToSlash(rel)
	}
	return &Package{PkgPath: pkgPath, Dir: dir, Fset: fset, Files: files}, nil
}

// imports returns the module-internal import paths of a parsed package.
func imports(pkg *Package, local map[string]*Package) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range pkg.Files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if _, ok := local[path]; ok && !seen[path] {
				seen[path] = true
				out = append(out, path)
			}
		}
	}
	sort.Strings(out)
	return out
}

// topoOrder sorts packages so every package follows its module-internal
// dependencies.
func topoOrder(pkgs map[string]*Package) ([]*Package, error) {
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(pkgs))
	var order []*Package
	var visit func(path string) error
	visit = func(path string) error {
		switch color[path] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		color[path] = gray
		for _, dep := range imports(pkgs[path], pkgs) {
			if err := visit(dep); err != nil {
				return err
			}
		}
		color[path] = black
		order = append(order, pkgs[path])
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter serves module-internal packages from the current Load
// and everything else from the stdlib source importer.
type moduleImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (im *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.local[path]; ok {
		return p, nil
	}
	return im.fallback.Import(path)
}

// typeCheck runs go/types over one parsed package.
func typeCheck(pkg *Package, imp types.Importer) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkg.PkgPath, pkg.Fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", pkg.PkgPath, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}
