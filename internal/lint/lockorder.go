package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"

	"wqe/internal/lint/callgraph"
)

// LockOrderCheck returns the module-wide lock-acquisition-order
// analyzer.
//
// It consumes lockcheck v3's per-function flow solutions (every
// acquisition event carries the may-held set observed immediately
// before it) plus the static call graph, and builds a directed graph
// over lock identities (see lockid.go): an edge A→B means some
// function acquires B — directly, or transitively through a static
// callee — while holding A on some path. Acquire summaries propagate
// callees-first over the SCC condensation, exactly like lockcheck's
// requirement propagation, and every edge keeps the first witness
// chain that created it.
//
// A cycle in this graph is a potential AB-BA deadlock: thread 1 runs
// the A→B witness, thread 2 the B→A witness, and each waits on the
// lock the other holds. Tarjan's SCCs find every cycle; mutual pairs
// inside a component are reported with both witnesses, longer
// rotations with the full cycle. Self-edges are excluded: identities
// summarize all instances of a declaration (a stripe array is one
// node), so same-identity nesting is indistinguishable from the
// intended shard-i-then-shard-j pattern — lockflow's re-acquisition
// check covers the genuine single-instance case.
//
// Closure acquisitions are attributed to the declaring function (the
// call graph has no literal nodes) but with the closure's own held
// state only — a `defer func() { mu.Unlock() }()` cleanup does not
// inherit the creator's held set, which would fabricate edges for
// locks long released when the closure actually runs.
func LockOrderCheck() *Analyzer {
	facts := make(map[*Module][]Finding)
	prepare := func(mod *Module) {
		if _, ok := facts[mod]; !ok {
			facts[mod] = LockOrderOf(mod).findings()
		}
	}
	return &Analyzer{
		Name:    "lockorder",
		Doc:     "lock acquisition order must be consistent module-wide (no AB-BA cycles)",
		Prepare: prepare,
		Run: func(mod *Module, pkg *Package) []Finding {
			prepare(mod)
			return findingsIn(facts[mod], pkg)
		},
	}
}

// orderWitness is the provenance of one order edge: the call chain
// (node IDs, holder first) through which the acquisition happened, and
// the position in the outermost function (the direct acquisition, or
// the callsite that leads to it).
type orderWitness struct {
	chain []string
	pos   token.Pos
}

// LockOrder is the module's lock-acquisition-order graph.
type LockOrder struct {
	fset *token.FileSet
	// locks is every resolved lock identity acquired anywhere in the
	// module, sorted; edges[from][to] keeps the first witness.
	locks []string
	edges map[string]map[string]*orderWitness
}

var orderCache = map[*Module]*LockOrder{}

// LockOrderOf builds (once per module) the acquisition-order graph.
func LockOrderOf(mod *Module) *LockOrder {
	if lo, ok := orderCache[mod]; ok {
		return lo
	}
	lo := buildLockOrder(mod)
	orderCache[mod] = lo
	return lo
}

func buildLockOrder(mod *Module) *LockOrder {
	cg := CallGraphOf(mod)
	flows := lockFlowsOf(mod)
	ids := lockIDsOf(mod)
	lo := &LockOrder{fset: mod.Fset, edges: map[string]map[string]*orderWitness{}}

	// Per-function acquire summaries: identity → first witness chain
	// rooted at this function. Seeded from the direct events, then
	// closed transitively callees-first.
	type acqSum struct {
		chain []string
		pos   token.Pos
	}
	sums := make(map[*callgraph.Node]map[string]acqSum, len(cg.Nodes))
	lockSeen := map[string]bool{}
	for _, n := range cg.Nodes {
		sums[n] = map[string]acqSum{}
		fl := flows[n]
		if fl == nil {
			continue
		}
		for _, ev := range fl.eventsAll() {
			id, ok := ids.identityOf(n.Pkg.Info, ev.x)
			if !ok {
				continue
			}
			if !lockSeen[id] {
				lockSeen[id] = true
				lo.locks = append(lo.locks, id)
			}
			if _, have := sums[n][id]; !have {
				sums[n][id] = acqSum{chain: []string{n.ID}, pos: ev.pos}
			}
		}
	}
	sort.Strings(lo.locks)
	for _, comp := range cg.SCCs() {
		for changed := true; changed; {
			changed = false
			for _, n := range comp {
				for _, e := range n.Out {
					if e.Kind != callgraph.Static {
						continue
					}
					for _, id := range sortedKeys(sums[e.Callee]) {
						if _, have := sums[n][id]; have {
							continue
						}
						ca := sums[e.Callee][id]
						sums[n][id] = acqSum{
							chain: append([]string{n.ID}, ca.chain...),
							pos:   e.Pos,
						}
						changed = true
					}
				}
			}
		}
	}

	addEdge := func(from, to string, w orderWitness) {
		if from == to {
			return
		}
		m := lo.edges[from]
		if m == nil {
			m = map[string]*orderWitness{}
			lo.edges[from] = m
		}
		if m[to] == nil {
			m[to] = &orderWitness{chain: w.chain, pos: w.pos}
		}
	}
	// Edge emission, deterministic: nodes in ID order; within a
	// function, direct events then callsites, each in position order.
	// First witness wins.
	for _, n := range cg.Nodes {
		fl := flows[n]
		if fl == nil {
			continue
		}
		info := n.Pkg.Info
		for _, ev := range fl.eventsAll() {
			to, ok := ids.identityOf(info, ev.x)
			if !ok {
				continue
			}
			for _, hr := range ev.held {
				from, ok := ids.identityOf(info, hr.x)
				if !ok {
					continue
				}
				addEdge(from, to, orderWitness{chain: []string{n.ID}, pos: ev.pos})
			}
		}
		for _, e := range n.Out {
			if e.Kind != callgraph.Static {
				continue
			}
			held := fl.mayRefsAt(e.Pos)
			if len(held) == 0 {
				continue
			}
			for _, to := range sortedKeys(sums[e.Callee]) {
				ca := sums[e.Callee][to]
				for _, hr := range held {
					from, ok := ids.identityOf(info, hr.x)
					if !ok {
						continue
					}
					addEdge(from, to, orderWitness{
						chain: append([]string{n.ID}, ca.chain...),
						pos:   e.Pos,
					})
				}
			}
		}
	}
	return lo
}

// succs returns the sorted out-neighbors of a lock node.
func (lo *LockOrder) succs(id string) []string {
	return sortedKeys(lo.edges[id])
}

// sccs runs Tarjan's algorithm over the lock graph (iterative, like
// callgraph's), returning components in deterministic order. Nodes are
// visited in sorted identity order and successors likewise, so the
// output is stable.
func (lo *LockOrder) sccs() [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var comps [][]string
	next := 0

	type frame struct {
		id    string
		succs []string
		i     int
	}
	var visit func(root string)
	visit = func(root string) {
		frames := []frame{{id: root, succs: lo.succs(root)}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.succs) {
				s := f.succs[f.i]
				f.i++
				if _, seen := index[s]; !seen {
					index[s] = next
					low[s] = next
					next++
					stack = append(stack, s)
					onStack[s] = true
					frames = append(frames, frame{id: s, succs: lo.succs(s)})
				} else if onStack[s] && index[s] < low[f.id] {
					low[f.id] = index[s]
				}
				continue
			}
			if low[f.id] == index[f.id] {
				var comp []string
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					comp = append(comp, top)
					if top == f.id {
						break
					}
				}
				sort.Strings(comp)
				comps = append(comps, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[f.id] < low[p.id] {
					low[p.id] = low[f.id]
				}
			}
		}
	}
	for _, id := range lo.locks {
		if _, seen := index[id]; !seen {
			visit(id)
		}
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// witness renders one edge's provenance in the `f: A → g: B` form: the
// outermost function holding A, the chain down to the function that
// performs the acquisition of B.
func (lo *LockOrder) witness(from, to string) string {
	w := lo.edges[from][to]
	if w == nil {
		return ""
	}
	if len(w.chain) == 1 {
		return fmt.Sprintf("%s: %s → %s", w.chain[0], from, to)
	}
	var mid string
	if len(w.chain) > 2 {
		mid = " → " + strings.Join(w.chain[1:len(w.chain)-1], " → ")
	}
	return fmt.Sprintf("%s: %s%s → %s: %s", w.chain[0], from, mid, w.chain[len(w.chain)-1], to)
}

// cyclicComponents returns the SCCs that actually contain a cycle
// (size > 1; self-edges are never added).
func (lo *LockOrder) cyclicComponents() [][]string {
	var out [][]string
	for _, comp := range lo.sccs() {
		if len(comp) > 1 {
			out = append(out, comp)
		}
	}
	return out
}

// findings reports every potential deadlock cycle. Mutual pairs (A→B
// and B→A both present) get one finding each with the two-sided
// witness; a component with no mutual pair is a longer rotation and
// gets one finding walking its shortest cycle.
func (lo *LockOrder) findings() []Finding {
	var out []Finding
	for _, comp := range lo.cyclicComponents() {
		inComp := map[string]bool{}
		for _, id := range comp {
			inComp[id] = true
		}
		paired := false
		for i, a := range comp {
			for _, b := range comp[i+1:] {
				ab, ba := lo.edges[a][b], lo.edges[b][a]
				if ab == nil || ba == nil {
					continue
				}
				paired = true
				out = append(out, Finding{
					Pos:  lo.fset.Position(ab.pos),
					Rule: "lockorder",
					Msg: fmt.Sprintf("lock-order cycle between %s and %s: %s, but %s "+
						"— potential AB-BA deadlock; acquire them in one consistent order everywhere, "+
						"or //lint:ignore lockorder <reason>",
						a, b, lo.witness(a, b), lo.witness(b, a)),
				})
			}
		}
		if paired {
			continue
		}
		cycle := lo.shortestCycle(comp[0], inComp)
		if len(cycle) < 2 {
			continue
		}
		var wits []string
		for i, id := range cycle {
			wits = append(wits, lo.witness(id, cycle[(i+1)%len(cycle)]))
		}
		first := lo.edges[cycle[0]][cycle[1]]
		out = append(out, Finding{
			Pos:  lo.fset.Position(first.pos),
			Rule: "lockorder",
			Msg: fmt.Sprintf("lock-order cycle: %s → %s (%s) — potential deadlock; "+
				"acquire these locks in one consistent order everywhere, or //lint:ignore lockorder <reason>",
				strings.Join(cycle, " → "), cycle[0], strings.Join(wits, "; ")),
		})
	}
	return out
}

// shortestCycle BFSes from root within the component and returns the
// shortest root → ... → root cycle as a node list (root once).
func (lo *LockOrder) shortestCycle(root string, inComp map[string]bool) []string {
	parent := map[string]string{root: ""}
	queue := []string{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, s := range lo.succs(cur) {
			if s == root {
				cycle := []string{cur}
				for cur != root {
					cur = parent[cur]
					cycle = append(cycle, cur)
				}
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return cycle
			}
			if !inComp[s] {
				continue
			}
			if _, seen := parent[s]; !seen {
				parent[s] = cur
				queue = append(queue, s)
			}
		}
	}
	return nil
}

// Dump renders the acquisition-order graph in a stable, line-oriented
// text form mirroring callgraph.Dump: a summary line, one stanza per
// lock with its out-edges and witnesses, then every cycle. Two builds
// over identical sources produce identical bytes.
func (lo *LockOrder) Dump() string {
	var b strings.Builder
	edges := 0
	for _, from := range lo.locks {
		edges += len(lo.edges[from])
	}
	comps := lo.sccs()
	cyclic := len(lo.cyclicComponents())
	fmt.Fprintf(&b, "lockorder: %d locks, %d edges, %d sccs (%d cyclic)\n",
		len(lo.locks), edges, len(comps), cyclic)
	for _, from := range lo.locks {
		b.WriteString(from)
		b.WriteByte('\n')
		for _, to := range lo.succs(from) {
			w := lo.edges[from][to]
			pos := lo.fset.Position(w.pos)
			fmt.Fprintf(&b, "  -> %s [%s] %s:%d\n",
				to, lo.witness(from, to), filepath.Base(pos.Filename), pos.Line)
		}
	}
	for _, comp := range lo.cyclicComponents() {
		fmt.Fprintf(&b, "cycle: %s\n", strings.Join(comp, " "))
	}
	return b.String()
}
