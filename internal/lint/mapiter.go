package lint

import (
	"go/ast"
	"go/types"
)

// canonicalOutputPkgs are the packages whose computation feeds
// canonical, user-visible output (ranked operator lists, rewrite keys,
// JSON renderings). Raw map iteration there makes top-k tie-breaking
// depend on Go's randomized map order.
var canonicalOutputPkgs = map[string]bool{
	"query":    true,
	"ops":      true,
	"chase":    true,
	"exemplar": true,
}

// MapIter returns the mapiter analyzer: it flags `for range` over a map
// in canonical-output packages unless the loop merely collects keys or
// values into a slice (the collect-then-sort idiom), whose order the
// author is then forced to fix explicitly.
func MapIter() *Analyzer {
	return &Analyzer{
		Name: "mapiter",
		Doc:  "flag nondeterministic map iteration in canonical-output packages",
		Applies: func(pkg *Package) bool {
			return canonicalOutputPkgs[pkg.Name()]
		},
		Run: runMapIter,
	}
}

func runMapIter(mod *Module, pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pkg.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if collectOnlyBody(pkg.Info, rs) {
				return true
			}
			out = append(out, Finding{
				Pos:  pkg.Fset.Position(rs.Pos()),
				Rule: "mapiter",
				Msg: "range over map has nondeterministic order; collect keys " +
					"and sort them first (or //lint:ignore mapiter <why order cannot matter>)",
			})
			return true
		})
	}
	return out
}

// collectOnlyBody reports whether every statement of a range-over-map
// body only gathers the iteration variables into slices via append —
// the first half of the collect-then-sort idiom, which is safe because
// the subsequent sort re-establishes a canonical order.
func collectOnlyBody(info *types.Info, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) == 0 {
		return false
	}
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return false
		}
		if obj := info.Uses[fn]; obj != nil && obj != types.Universe.Lookup("append") {
			return false
		}
	}
	return true
}
