package lint

import (
	"fmt"
)

// LintIgnore returns the lintignore analyzer: every `//lint:ignore`
// directive must carry a justification after the rule list. A bare
// directive reads as "trust me" — six months later nobody, including
// the author, knows whether the waived finding was a false positive or
// a deferred bug. Such a directive suppresses nothing (see ignoresOf)
// and is itself a finding, so the build surfaces both the unexplained
// waiver and whatever it tried to hide.
func LintIgnore() *Analyzer {
	return &Analyzer{
		Name: "lintignore",
		Doc:  "lint:ignore directives must state a reason; a bare directive suppresses nothing",
		Run:  runLintIgnore,
	}
}

func runLintIgnore(mod *Module, pkg *Package) []Finding {
	var out []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				fields, ok := directiveFields(c.Text)
				if !ok || len(fields) >= 2 {
					continue // not a directive, or well-formed
				}
				what := "names no rule"
				if len(fields) == 1 {
					what = fmt.Sprintf("waives %q without a justification", fields[0])
				}
				out = append(out, Finding{
					Pos:  pkg.Fset.Position(c.Pos()),
					Rule: "lintignore",
					Msg: fmt.Sprintf("lint:ignore directive %s; it suppresses nothing — "+
						"write //lint:ignore <rule> <reason>", what),
				})
			}
		}
	}
	return out
}
