package lint

import (
	"strconv"
	"strings"
)

// ignoreSet records, per file and line, the rules a `//lint:ignore`
// directive waives. A directive written on its own line suppresses
// findings on the next line; written as a trailing comment it
// suppresses findings on its own line.
type ignoreSet struct {
	// byLine maps filename:line to the set of ignored rule names. The
	// special rule "*" ignores everything on that line.
	byLine map[string]map[string]bool
}

// ignorePrefix is the directive marker. Form:
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// The reason is mandatory: a directive without one suppresses nothing
// and is itself reported by the lintignore analyzer.
const ignorePrefix = "lint:ignore"

func ignoresOf(pkg *Package) *ignoreSet {
	ig := &ignoreSet{byLine: map[string]map[string]bool{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				fields, ok := directiveFields(c.Text)
				if !ok {
					continue
				}
				if len(fields) < 2 {
					// No rule, or no justification after the rule list:
					// an unexplained waiver earns no suppression.
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				// A standalone directive precedes the offending line; a
				// trailing directive shares it. Register both so the
				// author may use either placement.
				for _, line := range []int{pos.Line, pos.Line + 1} {
					ig.add(pos.Filename, line, strings.Split(fields[0], ","))
				}
			}
		}
	}
	return ig
}

// directiveFields parses a comment's text as a lint:ignore directive,
// returning its whitespace-separated fields (rule list first, then the
// justification words). The second result is false when the comment is
// not a directive at all. A nested `//` comment embedded in the text is
// stripped first — another comment marker is not a justification.
func directiveFields(commentText string) ([]string, bool) {
	text := strings.TrimSpace(strings.TrimPrefix(commentText, "//"))
	rest, ok := strings.CutPrefix(text, ignorePrefix)
	if !ok {
		return nil, false
	}
	if i := strings.Index(rest, " //"); i >= 0 {
		rest = rest[:i]
	}
	return strings.Fields(rest), true
}

func (ig *ignoreSet) add(file string, line int, rules []string) {
	key := lineKey(file, line)
	set := ig.byLine[key]
	if set == nil {
		set = map[string]bool{}
		ig.byLine[key] = set
	}
	for _, r := range rules {
		if r = strings.TrimSpace(r); r != "" {
			set[r] = true
		}
	}
}

func (ig *ignoreSet) suppressed(f Finding) bool {
	set := ig.byLine[lineKey(f.Pos.Filename, f.Pos.Line)]
	return set != nil && (set[f.Rule] || set["*"])
}

func lineKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}
