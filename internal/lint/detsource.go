package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"wqe/internal/lint/callgraph"
)

// DetSource returns the detsource analyzer: a taint-style reachability
// check from canonical-output packages (query, ops, chase, exemplar) to
// nondeterminism sources anywhere in the module.
//
// mapiter polices map ranges inside the canonical packages themselves;
// detsource closes the interprocedural gap: a helper three calls away
// that ranges a map, reads the wall clock, draws from the global
// math/rand, or races a multi-way select still perturbs canonical
// output, and each finding carries the witness call chain that proves
// the reachability. Code not reachable from a canonical package is
// deliberately left alone.
func DetSource() *Analyzer {
	facts := make(map[*Module][]Finding)
	prepare := func(mod *Module) {
		if _, ok := facts[mod]; !ok {
			facts[mod] = runDetSourceModule(mod)
		}
	}
	return &Analyzer{
		Name:    "detsource",
		Doc:     "nondeterminism sources must not be reachable from canonical-output packages",
		Prepare: prepare,
		Run: func(mod *Module, pkg *Package) []Finding {
			prepare(mod)
			return findingsIn(facts[mod], pkg)
		},
	}
}

func runDetSourceModule(mod *Module) []Finding {
	cg := CallGraphOf(mod)
	var roots []*callgraph.Node
	for _, n := range cg.Nodes {
		if canonicalOutputPkgs[n.Pkg.Name] {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		return nil
	}
	parent := cg.ReachableFrom(roots)

	var out []Finding
	for _, n := range cg.Nodes {
		if _, reachable := parent[n]; !reachable || n.Decl.Body == nil {
			continue
		}
		via := pathDesc(callgraph.PathTo(parent, n))
		out = append(out, scanDetSources(mod.Fset, n, via)...)
	}
	return out
}

// pathDesc renders a witness path for the diagnostic: the chain of
// calls from a canonical-output package, or just the package when the
// tainted function lives there directly.
func pathDesc(path []*callgraph.Node) string {
	if len(path) == 1 {
		return fmt.Sprintf("in canonical-output package %s", path[0].Pkg.Name)
	}
	ids := make([]string, len(path))
	for i, n := range path {
		ids[i] = n.ID
	}
	return "reached from canonical output via " + strings.Join(ids, " → ")
}

// scanDetSources walks one reachable function body for the four source
// kinds. Map ranges inside canonical packages are mapiter's to report;
// everything else is flagged here regardless of package.
func scanDetSources(fset *token.FileSet, n *callgraph.Node, via string) []Finding {
	var out []Finding
	info := n.Pkg.Info
	canonical := canonicalOutputPkgs[n.Pkg.Name]
	ast.Inspect(n.Decl, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.RangeStmt:
			if canonical {
				return true
			}
			t := info.TypeOf(node.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if collectOnlyBody(info, node) {
				return true
			}
			out = append(out, Finding{
				Pos:  fset.Position(node.Pos()),
				Rule: "detsource",
				Msg: fmt.Sprintf("range over map has nondeterministic order, %s; "+
					"collect keys and sort them first, or //lint:ignore detsource <reason>", via),
			})
		case *ast.SelectorExpr:
			pkgPath, name, ok := stdlibUse(info, node)
			if !ok {
				return true
			}
			switch {
			case pkgPath == "time" && name == "Now":
				out = append(out, Finding{
					Pos:  fset.Position(node.Pos()),
					Rule: "detsource",
					Msg: fmt.Sprintf("time.Now reads the wall clock, %s; "+
						"inject a clock, or //lint:ignore detsource <reason>", via),
				})
			case pkgPath == "math/rand" && name != "New" && name != "NewSource":
				out = append(out, Finding{
					Pos:  fset.Position(node.Pos()),
					Rule: "detsource",
					Msg: fmt.Sprintf("math/rand.%s draws from the global random source, %s; "+
						"use rand.New(rand.NewSource(seed)), or //lint:ignore detsource <reason>", name, via),
				})
			}
		case *ast.SelectStmt:
			// Randomness needs two comm cases ready at once. A single comm
			// case — with or without a default (the non-blocking try) — is
			// deterministic: the spec's pseudo-random choice only arbitrates
			// between ready comm cases, and default never races.
			comm := 0
			for _, clause := range node.Body.List {
				if c, ok := clause.(*ast.CommClause); ok && c.Comm != nil {
					comm++
				}
			}
			if comm < 2 {
				return true
			}
			out = append(out, Finding{
				Pos:  fset.Position(node.Pos()),
				Rule: "detsource",
				Msg: fmt.Sprintf("select with multiple cases picks a ready case at random, %s; "+
					"restructure, or //lint:ignore detsource <reason>", via),
			})
		}
		return true
	})
	return out
}

// stdlibUse resolves a selector to (package path, name) when it names a
// package-level function or value of an imported package.
func stdlibUse(info *types.Info, sel *ast.SelectorExpr) (string, string, bool) {
	if _, isMethod := info.Selections[sel]; isMethod {
		return "", "", false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), true
}
