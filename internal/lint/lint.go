// Package lint implements wqe's repo-specific static-analysis suite
// using only the standard library's go/parser, go/ast, and go/types.
//
// Twelve analyzers enforce the invariants the paper's algorithms
// depend on for reproducible output. The interprocedural ones
// (lockcheck, lockorder, atomicfield, detsource) share a module-wide
// static call graph built by internal/lint/callgraph, and the
// flow-sensitive ones (lockcheck, lockorder, atomicfield, ctxflow,
// leakcheck) share the control-flow graphs and dataflow solver of
// internal/lint/cfg:
//
//   - mapiter: no raw `for range` over maps in canonical-output
//     packages (query, ops, chase, exemplar) — Go randomizes map
//     iteration order, which silently breaks tie-broken top-k ranking;
//     collect keys and sort them first.
//   - lockcheck: struct fields annotated `// guarded by <mu>` must be
//     reached only on call paths that hold the mutex. Intra-function
//     facts come from a flow-sensitive lock-set analysis (must-held
//     discharges accesses, may-held detects deadlocks, deferred
//     unlocks fire on exit edges); per-function summaries propagate
//     along the call graph, so helpers that rely on the caller's lock
//     are verified rather than name-trusted. Findings carry the
//     witness call chain; locks whose release is neither performed nor
//     scheduled on some exit path, releases with no pairing
//     acquisition, and re-acquisitions of a may-held lock are reported
//     on every function.
//   - lockorder: a module-wide lock-acquisition-order graph — nodes
//     are lock identities (struct-field mutexes with stripe arrays
//     summarized per field, package-level locks), an edge A→B means
//     "B was acquired while A was held", propagated through the call
//     graph with witness chains. Every cycle is a potential AB-BA
//     deadlock and is reported with a two-sided witness.
//   - atomicfield: a struct field accessed through sync/atomic (or
//     typed atomic.Int64-family) anywhere must be accessed that way
//     everywhere — plain reads tear against atomic writers. Plain
//     access is exempt before publication (constructor bodies prior to
//     first escape) and under a mutex held at every access.
//   - detsource: nondeterminism sources (raw map range, time.Now,
//     global math/rand, multi-way select) must not be reachable from
//     canonical-output packages, along any call chain.
//   - errdrop: internal packages must not silently discard error
//     returns (`_ =` or bare call statements).
//   - panicfree: library code must not panic; only functions whose doc
//     comment carries an `invariant:` marker may, to assert genuinely
//     unreachable states.
//   - floateq: no ==/!= on floating-point operands in closeness/ranking
//     code (chase, exemplar) — compare with explicit </> arms instead.
//   - gobound: no raw `go` statements outside internal/par — all
//     fan-out goes through the bounded, joined, panic-propagating
//     worker pool, keeping output independent of completion order.
//   - ctxflow: a function that receives a context.Context must thread
//     it into every blocking or spawning operation on every path —
//     bare sends/receives, time.Sleep, fresh context roots, and
//     context-blind spawns are flagged.
//   - leakcheck: a spawned goroutine must be joined or cancellable;
//     a completion signal (WaitGroup.Done, close/send on a local
//     unbuffered channel) dropped on some path to return is a leak.
//   - lintignore: a `//lint:ignore` directive must carry a
//     justification; a bare directive is itself a finding and
//     suppresses nothing.
//
// Any finding can be suppressed with a trailing or preceding
// `//lint:ignore <rule> <reason>` comment — the reason is mandatory.
package lint

import (
	"fmt"
	"go/token"
	"sort"

	"wqe/internal/par"
)

// Finding is one analyzer report.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the canonical file:line: rule: message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Analyzer is one lint pass. Run receives a fully type-checked package
// and the whole module (for cross-package facts such as guarded-field
// declarations) and reports findings; suppression via lint:ignore is
// applied by the driver.
type Analyzer struct {
	Name string
	Doc  string
	// Applies reports whether the analyzer runs on the package at all.
	Applies func(pkg *Package) bool
	// Prepare computes module-wide facts (call graph, lock flows,
	// propagated summaries) before any Run call. RunAll invokes every
	// Prepare sequentially, so the per-module caches are written
	// single-threaded and are read-only by the time the per-package
	// Run calls fan out across workers.
	Prepare func(mod *Module)
	Run     func(mod *Module, pkg *Package) []Finding
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapIter(),
		LockCheck(),
		LockOrderCheck(),
		AtomicField(),
		DetSource(),
		ErrDrop(),
		PanicFree(),
		FloatEq(),
		GoBound(),
		CtxFlow(),
		LeakCheck(),
		LintIgnore(),
	}
}

// RunAll loads nothing itself: it applies every analyzer to every
// package of an already-loaded module, filters suppressed findings, and
// returns the remainder sorted by position. Single-worker convenience
// wrapper around RunAllWorkers.
func RunAll(mod *Module, analyzers []*Analyzer) []Finding {
	return RunAllWorkers(mod, analyzers, 1)
}

// RunAllWorkers is RunAll with the per-package analyzer execution
// spread over a bounded worker pool (workers < 1 means GOMAXPROCS).
// Module-wide facts are computed up front by the Prepare hooks, then
// packages are analyzed concurrently into indexed slots, so the merged
// output is byte-identical for every worker count: the slot order is
// the package order, and the final sort is by position, rule, and
// message — nothing depends on scheduling.
func RunAllWorkers(mod *Module, analyzers []*Analyzer, workers int) []Finding {
	for _, a := range analyzers {
		if a.Prepare != nil {
			a.Prepare(mod)
		}
	}
	slots := make([][]Finding, len(mod.Pkgs))
	par.ForEach(par.Workers(workers), len(mod.Pkgs), func(i int) {
		pkg := mod.Pkgs[i]
		ig := ignoresOf(pkg)
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg) {
				continue
			}
			for _, f := range a.Run(mod, pkg) {
				if ig.suppressed(f) {
					continue
				}
				slots[i] = append(slots[i], f)
			}
		}
	})
	var out []Finding
	for _, s := range slots {
		out = append(out, s...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return out
}
