package cfg

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden dump")

const fixturePath = "testdata/funcs.go.src"
const goldenPath = "testdata/dump.golden"

func parseFixture(t *testing.T) (*token.FileSet, []*ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, fixturePath, nil, 0)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	var fds []*ast.FuncDecl
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			fds = append(fds, fd)
		}
	}
	if len(fds) == 0 {
		t.Fatal("fixture has no functions")
	}
	return fset, fds
}

func dumpAll(fset *token.FileSet, fds []*ast.FuncDecl) string {
	var sb strings.Builder
	for _, fd := range fds {
		fmt.Fprintf(&sb, "== %s\n", fd.Name.Name)
		sb.WriteString(New(fd.Body).Dump(fset))
	}
	return sb.String()
}

// TestGoldenDump pins the block/edge structure of every control-flow
// construct the builder handles. Regenerate with -update after
// deliberate builder changes.
func TestGoldenDump(t *testing.T) {
	fset, fds := parseFixture(t)
	got := dumpAll(fset, fds)

	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("dump differs from %s:\n--- got ---\n%s--- want ---\n%s", filepath.Base(goldenPath), got, want)
	}
}

// TestDeterminism builds every fixture CFG twice and requires
// byte-identical dumps — the contract the flow-sensitive analyzers
// (and the module's byte-identical lint output) rest on.
func TestDeterminism(t *testing.T) {
	fset, fds := parseFixture(t)
	first := dumpAll(fset, fds)
	second := dumpAll(fset, fds)
	if first != second {
		t.Fatal("double build is not byte-identical")
	}
}

// TestGraphInvariants checks structural well-formedness on every
// fixture graph: dense entry-first/exit-last numbering, symmetric
// succ/pred lists, no duplicate edges, all blocks reachable from
// entry (except possibly exit), and terminators only at block ends.
func TestGraphInvariants(t *testing.T) {
	fset, fds := parseFixture(t)
	for _, fd := range fds {
		g := New(fd.Body)
		if g.Blocks[0] != g.Entry {
			t.Errorf("%s: entry is not block 0", fd.Name.Name)
		}
		if g.Blocks[len(g.Blocks)-1] != g.Exit {
			t.Errorf("%s: exit is not the last block", fd.Name.Name)
		}
		if len(g.Exit.Succs) != 0 {
			t.Errorf("%s: exit has successors", fd.Name.Name)
		}
		for i, blk := range g.Blocks {
			if blk.Index != i {
				t.Errorf("%s: block %d has Index %d", fd.Name.Name, i, blk.Index)
			}
			seen := map[*Block]bool{}
			for _, s := range blk.Succs {
				if seen[s] {
					t.Errorf("%s: b%d has duplicate edge to b%d", fd.Name.Name, blk.Index, s.Index)
				}
				seen[s] = true
				found := false
				for _, p := range s.Preds {
					if p == blk {
						found = true
					}
				}
				if !found {
					t.Errorf("%s: edge b%d->b%d missing from preds", fd.Name.Name, blk.Index, s.Index)
				}
			}
		}
		// Reachability from entry covers every block except (maybe)
		// the exit of a function that never falls through.
		reach := map[*Block]bool{g.Entry: true}
		queue := []*Block{g.Entry}
		for len(queue) > 0 {
			blk := queue[0]
			queue = queue[1:]
			for _, s := range blk.Succs {
				if !reach[s] {
					reach[s] = true
					queue = append(queue, s)
				}
			}
		}
		for _, blk := range g.Blocks {
			if !reach[blk] && blk != g.Exit {
				t.Errorf("%s: b%d (%s) unreachable after pruning", fd.Name.Name, blk.Index, blk.Kind)
			}
		}
	}
	_ = fset
}

// TestNilBody covers declarations without bodies (assembly stubs).
func TestNilBody(t *testing.T) {
	g := New(nil)
	if len(g.Blocks) != 2 {
		t.Fatalf("nil body: got %d blocks, want 2", len(g.Blocks))
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatal("nil body: entry must flow straight to exit")
	}
}

// TestForwardReachingLocks runs a tiny must-analysis (lock held on
// every path) over the deferred() fixture and checks the solver's
// answers at entry and exit — an end-to-end smoke test of Forward
// with a non-trivial lattice.
func TestForwardReachingLocks(t *testing.T) {
	fset, fds := parseFixture(t)
	var fd *ast.FuncDecl
	for _, d := range fds {
		if d.Name.Name == "deferred" {
			fd = d
		}
	}
	if fd == nil {
		t.Fatal("fixture deferred() missing")
	}
	g := New(fd.Body)

	type set = map[string]bool
	univ := set{"mu": true}
	flow := Flow[set]{
		Entry: set{},
		Top:   univ,
		Merge: func(a, b set) set {
			out := set{}
			for k := range a {
				if b[k] {
					out[k] = true
				}
			}
			return out
		},
		Transfer: func(_ *Block, n Node, in set) set {
			call, ok := n.Ast.(*ast.ExprStmt)
			var c ast.Expr
			if ok {
				c = call.X
			} else if ce, ok2 := n.Ast.(*ast.CallExpr); ok2 {
				c = ce
			}
			if c != nil {
				if ce, ok := c.(*ast.CallExpr); ok {
					if sel, ok := ce.Fun.(*ast.SelectorExpr); ok {
						switch sel.Sel.Name {
						case "Lock":
							in["mu"] = true
						case "Unlock":
							delete(in, "mu")
						}
					}
				}
			}
			return in
		},
		Equal: func(a, b set) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Clone: func(a set) set {
			out := set{}
			for k := range a {
				out[k] = true
			}
			return out
		},
	}
	res := Forward(g, flow)

	if res.In[g.Entry.Index]["mu"] {
		t.Error("lock held at entry")
	}
	// Every path releases through the deferred Unlock replayed on the
	// exit edges, so nothing is held at exit.
	if len(res.In[g.Exit.Index]) != 0 {
		t.Errorf("lock still held at exit: %v", res.In[g.Exit.Index])
	}
	_ = fset
}
