package cfg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// maxNodeRunes caps a dumped node's source rendering so one giant
// composite literal cannot swamp a golden file.
const maxNodeRunes = 60

// Dump renders the graph in a stable text form for golden tests: one
// stanza per block with its index, kind, nodes (line number plus a
// whitespace-collapsed source excerpt, deferred replays prefixed
// "defer.fire"), and successor list. Building the same syntax twice
// dumps byte-identically.
func (g *Graph) Dump(fset *token.FileSet) string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s\n", blk.Index, blk.Kind)
		for _, n := range blk.Nodes {
			tag := ""
			if n.Defer {
				tag = "defer.fire "
			}
			fmt.Fprintf(&sb, "\t%sL%d %s\n", tag, fset.Position(n.Ast.Pos()).Line, render(fset, n.Ast))
		}
		if len(blk.Succs) > 0 {
			var succs []string
			for _, s := range blk.Succs {
				succs = append(succs, fmt.Sprintf("b%d", s.Index))
			}
			fmt.Fprintf(&sb, "\t-> %s\n", strings.Join(succs, " "))
		}
	}
	return sb.String()
}

// render prints one AST node as collapsed single-line source text.
// Range statements are summarized from their parts — printing the
// whole *ast.RangeStmt would inline the loop body.
func render(fset *token.FileSet, n ast.Node) string {
	if r, ok := n.(*ast.RangeStmt); ok {
		s := "range " + render(fset, r.X)
		if r.Key != nil {
			kv := render(fset, r.Key)
			if r.Value != nil {
				kv += ", " + render(fset, r.Value)
			}
			s = kv + " " + r.Tok.String() + " " + s
		}
		return s
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	out := strings.Join(strings.Fields(buf.String()), " ")
	runes := []rune(out)
	if len(runes) > maxNodeRunes {
		out = string(runes[:maxNodeRunes]) + "…"
	}
	return out
}
