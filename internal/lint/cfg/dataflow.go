package cfg

// Flow is a forward dataflow problem over a Graph. The fact type F is
// whatever the client needs (lock sets, pending-goroutine sets, ...);
// the framework only requires the four operations below plus an
// equality test for the fixpoint check.
//
// The usual lattice split maps onto Merge's handling of Top:
//
//   - must-analyses ("the lock is held on EVERY path") merge by
//     intersection and seed unvisited predecessors with Top = the
//     universe, so a back edge from a not-yet-visited block does not
//     drain facts that every real path establishes;
//   - may-analyses ("held on SOME path") merge by union and use an
//     empty Top.
type Flow[F any] struct {
	// Entry is the fact at the function entry; Top seeds blocks not
	// yet reached during iteration (see above).
	Entry, Top F
	// Merge combines two incoming edge facts. It must be commutative
	// and associative.
	Merge func(a, b F) F
	// Transfer applies one node's effect. It may mutate and return
	// `in` — the framework clones before calling.
	Transfer func(blk *Block, n Node, in F) F
	// Equal reports whether two facts are equal (fixpoint check).
	Equal func(a, b F) bool
	// Clone deep-copies a fact so Transfer can mutate freely.
	Clone func(F) F
}

// Result holds the fixpoint solution: the fact at each block's entry
// and exit, indexed by Block.Index.
type Result[F any] struct {
	In, Out []F
}

// Forward iterates the problem to a fixpoint, visiting blocks in index
// order (deterministic; index order approximates reverse post-order
// closely enough that typical graphs converge in two or three sweeps).
// Clients needing per-node facts replay Transfer from In[blk.Index]
// over the block's nodes — the same computation the solver ran; Replay
// packages that loop.
// Replay walks every block in index order re-running Transfer from the
// solved entry fact, invoking visit with the fact as it stood BEFORE
// each node's effect. This is the summary-export hook: analyses that
// need per-node facts (lock sets at a callsite, publication state at a
// field access) replay the fixpoint instead of storing a fact per node
// during iteration. The fact passed to visit is live — clone it if it
// must survive the callback.
func Replay[F any](g *Graph, f Flow[F], res *Result[F], visit func(blk *Block, n Node, before F)) {
	for _, blk := range g.Blocks {
		cur := f.Clone(res.In[blk.Index])
		for _, node := range blk.Nodes {
			visit(blk, node, cur)
			cur = f.Transfer(blk, node, cur)
		}
	}
}

func Forward[F any](g *Graph, f Flow[F]) *Result[F] {
	n := len(g.Blocks)
	res := &Result[F]{In: make([]F, n), Out: make([]F, n)}
	visited := make([]bool, n)

	for changed := true; changed; {
		changed = false
		for _, blk := range g.Blocks {
			var in F
			if blk == g.Entry {
				in = f.Clone(f.Entry)
			} else {
				in = f.Clone(f.Top)
				seen := false
				for _, p := range blk.Preds {
					if !visited[p.Index] {
						continue
					}
					if !seen {
						in = f.Clone(res.Out[p.Index])
						seen = true
					} else {
						in = f.Merge(in, res.Out[p.Index])
					}
				}
			}
			out := f.Clone(in)
			for _, node := range blk.Nodes {
				out = f.Transfer(blk, node, out)
			}
			if !visited[blk.Index] || !f.Equal(res.In[blk.Index], in) || !f.Equal(res.Out[blk.Index], out) {
				changed = true
			}
			visited[blk.Index] = true
			res.In[blk.Index] = in
			res.Out[blk.Index] = out
		}
	}
	return res
}
