// Package cfg builds intra-function control-flow graphs over go/ast
// function bodies, using only the standard library. It is the substrate
// the flow-sensitive lint analyzers (lockcheck v3, ctxflow, leakcheck)
// share: where the v2 analyzers reasoned lexically ("a Lock appears
// earlier in the body"), the CFG lets them reason per path ("the lock
// is held on every path reaching this access").
//
// The builder covers the constructs a real body can branch on:
// if/else chains, for and range loops, switch and type-switch with
// fallthrough, select, short-circuit && and || in branch conditions,
// break/continue (plain and labeled), goto and labels, return, and
// calls to the panic builtin. Statements are never split below
// statement granularity except for branch conditions, whose
// short-circuit operands each get their own block so a dataflow fact
// can distinguish "b evaluated" from "b skipped".
//
// Deferred calls are modeled as a defer stack replayed on every exit
// edge: each return (and the fall-off-the-end exit) gets its own
// defer.fire block holding the deferred calls in LIFO order, marked
// Defer so analyses can tell a replay from the registration point. The
// stack is the syntactic over-approximation — a defer registered under
// a condition is replayed on every later exit — which is exact for the
// dominant `mu.Lock(); defer mu.Unlock()` idiom and conservative
// elsewhere.
//
// Function literals are opaque: a FuncLit is part of the node that
// mentions it, never inlined, because its body runs at another time
// (or never). Analyses that care build a separate Graph per literal.
//
// Everything is deterministic: blocks are numbered in construction
// order, renumbered densely after unreachable-block pruning, and Dump
// renders the whole graph in a stable text form — two builds over the
// same syntax are byte-identical, which the golden tests pin.
package cfg

import (
	"go/ast"
	"go/token"
)

// Node is one evaluation point inside a block: a leaf statement or a
// branch-condition operand. Defer marks a deferred call replayed on an
// exit edge (Ast is then the deferred *ast.CallExpr, positioned at the
// original defer statement).
type Node struct {
	Ast   ast.Node
	Defer bool
}

// Block is a maximal straight-line run of nodes. Control enters only
// at the first node and leaves only after the last, along Succs.
type Block struct {
	// Index is the block's position in Graph.Blocks after pruning;
	// entry is always 0 and exit always last.
	Index int
	// Kind names what the block models ("entry", "exit", "if.then",
	// "for.head", "defer.fire", ...) — documentation for dumps and
	// tests, never consulted by analyses.
	Kind  string
	Nodes []Node
	Succs []*Block
	Preds []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry and Exit bracket every path: Entry has no Preds, Exit no
	// Succs. A body that cannot fall through (infinite loop, all paths
	// return) still keeps its Exit block as the defer-replay anchor.
	Entry, Exit *Block
	// Blocks lists every reachable block in deterministic order:
	// Entry first, then construction order, Exit last.
	Blocks []*Block
}

// New builds the CFG of one function body (a FuncDecl's or FuncLit's).
// A nil body yields a two-block graph (declaration without body).
func New(body *ast.BlockStmt) *Graph {
	b := &builder{
		entry: &Block{Kind: "entry"},
		exit:  &Block{Kind: "exit"},
	}
	b.blocks = []*Block{b.entry}
	b.cur = b.entry
	b.labels = map[string]*labelInfo{}
	if body != nil {
		b.stmtList(body.List)
	}
	// Falling off the end is an exit path of its own.
	b.fireDefersTo(b.exit)
	return b.finish()
}

// builder carries the construction state of one Graph.
type builder struct {
	entry, exit *Block
	blocks      []*Block
	// cur is the block under construction; nil after a terminator
	// (return/break/goto/panic) until the next statement opens a new —
	// then unreachable — block.
	cur *Block
	// defers lists the defer statements seen so far in syntactic
	// order; every exit edge replays them in reverse.
	defers []*ast.DeferStmt
	// breaks stacks every breakable construct (for/range/switch/
	// select) in nesting order — an unlabeled break binds to the top;
	// loops stacks only continue targets. label is non-empty under a
	// LabeledStmt.
	loops  []loopCtx
	breaks []breakCtx
	// fallthroughTo is the next case-body block while building a
	// switch clause.
	fallthroughTo *Block
	labels        map[string]*labelInfo
}

type loopCtx struct {
	label      string
	continueTo *Block
}

type breakCtx struct {
	label   string
	breakTo *Block
}

type labelInfo struct {
	block   *Block
	pending []*Block // gotos seen before the label
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Kind: kind}
	b.blocks = append(b.blocks, blk)
	return blk
}

// use makes blk the current block, opening it as an (unreachable, and
// later pruned) continuation when the previous statement terminated.
func (b *builder) use(blk *Block) { b.cur = blk }

// edge links from → to, skipping duplicates so a condition with equal
// true/false targets keeps a single successor.
func edge(from, to *Block) {
	if from == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// emit appends a node to the current block, opening a fresh block when
// the previous statement terminated the path (dead code still gets a
// structure; pruning drops it when nothing jumps back in).
func (b *builder) emit(n ast.Node) {
	if b.cur == nil {
		b.use(b.newBlock("dead"))
	}
	b.cur.Nodes = append(b.cur.Nodes, Node{Ast: n})
}

// fireDefersTo replays the defer stack seen so far (LIFO) on an edge
// from the current block to target, interposing a defer.fire block
// when the stack is non-empty; it does not change b.cur.
func (b *builder) fireDefersTo(target *Block) {
	if b.cur == nil {
		return
	}
	if len(b.defers) == 0 {
		edge(b.cur, target)
		return
	}
	fire := b.newBlock("defer.fire")
	for i := len(b.defers) - 1; i >= 0; i-- {
		fire.Nodes = append(fire.Nodes, Node{Ast: b.defers[i].Call, Defer: true})
	}
	edge(b.cur, fire)
	edge(fire, target)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ReturnStmt:
		b.emit(s)
		b.fireDefersTo(b.exit)
		b.cur = nil

	case *ast.DeferStmt:
		b.emit(s)
		b.defers = append(b.defers, s)

	case *ast.ExprStmt:
		b.emit(s)
		if isPanicCall(s.X) {
			b.fireDefersTo(b.exit)
			b.cur = nil
		}

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s, "")

	case *ast.RangeStmt:
		b.rangeStmt(s, "")

	case *ast.SwitchStmt:
		b.switchStmt(s, "")

	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, "")

	case *ast.SelectStmt:
		b.selectStmt(s, "")

	case *ast.LabeledStmt:
		b.labeledStmt(s)

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.EmptyStmt:
		// no node

	default:
		// Assign, IncDec, Send, Go, Decl, ...: one leaf node.
		b.emit(s)
	}
}

// isPanicCall reports a direct call of an identifier named panic —
// syntactic on purpose, since the builder has no type information; a
// shadowed panic only costs an over-eager exit edge.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// cond builds the short-circuit decomposition of a branch condition:
// every && / || operand gets its own block with edges to the then/else
// targets, so "right operand evaluated" is a path fact.
func (b *builder) cond(e ast.Expr, t, f *Block) {
	switch x := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			mid := b.newBlock("cond.and")
			b.cond(x.X, mid, f)
			b.use(mid)
			b.cond(x.Y, t, f)
			return
		case token.LOR:
			mid := b.newBlock("cond.or")
			b.cond(x.X, t, mid)
			b.use(mid)
			b.cond(x.Y, t, f)
			return
		}
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(x.X, f, t)
			return
		}
	}
	b.emit(e)
	edge(b.cur, t)
	edge(b.cur, f)
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.emit(s.Init)
	}
	then := b.newBlock("if.then")
	join := b.newBlock("if.join")
	if s.Else != nil {
		els := b.newBlock("if.else")
		b.cond(s.Cond, then, els)
		b.use(then)
		b.stmt(s.Body)
		edge(b.cur, join)
		b.use(els)
		b.stmt(s.Else)
		edge(b.cur, join)
	} else {
		b.cond(s.Cond, then, join)
		b.use(then)
		b.stmt(s.Body)
		edge(b.cur, join)
	}
	b.use(join)
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.emit(s.Init)
	}
	head := b.newBlock("for.head")
	body := b.newBlock("for.body")
	after := b.newBlock("for.after")
	edge(b.cur, head)

	continueTo := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		post.Nodes = append(post.Nodes, Node{Ast: s.Post})
		edge(post, head)
		continueTo = post
	}

	b.use(head)
	if s.Cond != nil {
		b.cond(s.Cond, body, after)
	} else {
		edge(head, body)
	}

	b.loops = append(b.loops, loopCtx{label: label, continueTo: continueTo})
	b.breaks = append(b.breaks, breakCtx{label: label, breakTo: after})
	b.use(body)
	b.stmt(s.Body)
	edge(b.cur, continueTo)
	b.loops = b.loops[:len(b.loops)-1]
	b.breaks = b.breaks[:len(b.breaks)-1]

	b.use(after)
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock("range.head")
	body := b.newBlock("range.body")
	after := b.newBlock("range.after")
	edge(b.cur, head)
	head.Nodes = append(head.Nodes, Node{Ast: s})
	edge(head, body)
	edge(head, after)

	b.loops = append(b.loops, loopCtx{label: label, continueTo: head})
	b.breaks = append(b.breaks, breakCtx{label: label, breakTo: after})
	b.use(body)
	b.stmt(s.Body)
	edge(b.cur, head)
	b.loops = b.loops[:len(b.loops)-1]
	b.breaks = b.breaks[:len(b.breaks)-1]

	b.use(after)
}

func (b *builder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.emit(s.Init)
	}
	if s.Tag != nil {
		b.emit(s.Tag)
	}
	b.caseClauses(s.Body, label, func(cc *ast.CaseClause, blk *Block) {
		for _, e := range cc.List {
			blk.Nodes = append(blk.Nodes, Node{Ast: e})
		}
	})
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.emit(s.Init)
	}
	b.emit(s.Assign)
	b.caseClauses(s.Body, label, func(cc *ast.CaseClause, blk *Block) {
		// Type cases bind no evaluated expressions; the head's Assign
		// node already covers the scrutinee.
	})
}

// caseClauses builds the shared switch shape: a head fan-out to one
// block per clause, fallthrough edges between consecutive bodies, and
// a join that doubles as the break target. Without a default clause
// the head also flows straight to the join.
func (b *builder) caseClauses(body *ast.BlockStmt, label string, fill func(*ast.CaseClause, *Block)) {
	head := b.cur
	if head == nil {
		head = b.newBlock("dead")
		b.use(head)
	}
	join := b.newBlock("switch.join")

	var clauses []*ast.CaseClause
	for _, st := range body.List {
		if cc, ok := st.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		kind := "switch.case"
		if cc.List == nil {
			kind = "switch.default"
			hasDefault = true
		}
		blks[i] = b.newBlock(kind)
		fill(cc, blks[i])
		edge(head, blks[i])
	}
	if !hasDefault {
		edge(head, join)
	}

	b.breaks = append(b.breaks, breakCtx{label: label, breakTo: join})
	for i, cc := range clauses {
		b.use(blks[i])
		saved := b.fallthroughTo
		if i+1 < len(blks) {
			b.fallthroughTo = blks[i+1]
		} else {
			b.fallthroughTo = nil
		}
		b.stmtList(cc.Body)
		b.fallthroughTo = saved
		edge(b.cur, join)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.use(join)
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	if head == nil {
		head = b.newBlock("dead")
		b.use(head)
	}
	join := b.newBlock("select.join")

	var clauses []*ast.CommClause
	for _, st := range s.Body.List {
		if cc, ok := st.(*ast.CommClause); ok {
			clauses = append(clauses, cc)
		}
	}
	if len(clauses) == 0 {
		// select{} blocks forever: no successor, the path ends here.
		b.cur = nil
		return
	}

	b.breaks = append(b.breaks, breakCtx{label: label, breakTo: join})
	for _, cc := range clauses {
		kind := "select.case"
		if cc.Comm == nil {
			kind = "select.default"
		}
		blk := b.newBlock(kind)
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, Node{Ast: cc.Comm})
		}
		edge(head, blk)
		b.use(blk)
		b.stmtList(cc.Body)
		edge(b.cur, join)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.use(join)
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	name := s.Label.Name
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{}
		b.labels[name] = li
	}
	lb := b.newBlock("label." + name)
	li.block = lb
	for _, from := range li.pending {
		edge(from, lb)
	}
	li.pending = nil
	edge(b.cur, lb)
	b.use(lb)

	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		b.forStmt(inner, name)
	case *ast.RangeStmt:
		b.rangeStmt(inner, name)
	case *ast.SwitchStmt:
		b.switchStmt(inner, name)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(inner, name)
	case *ast.SelectStmt:
		b.selectStmt(inner, name)
	default:
		b.stmt(s.Stmt)
	}
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if t := b.breakTarget(label); t != nil {
			edge(b.cur, t)
		}
		b.cur = nil
	case token.CONTINUE:
		if t := b.continueTarget(label); t != nil {
			edge(b.cur, t)
		}
		b.cur = nil
	case token.GOTO:
		li := b.labels[label]
		if li == nil {
			li = &labelInfo{}
			b.labels[label] = li
		}
		if li.block != nil {
			edge(b.cur, li.block)
		} else if b.cur != nil {
			li.pending = append(li.pending, b.cur)
		}
		b.cur = nil
	case token.FALLTHROUGH:
		if b.fallthroughTo != nil {
			edge(b.cur, b.fallthroughTo)
		}
		b.cur = nil
	}
}

// breakTarget resolves break against the unified stack of breakable
// constructs: unlabeled break takes the innermost, labeled break the
// construct carrying that label.
func (b *builder) breakTarget(label string) *Block {
	for i := len(b.breaks) - 1; i >= 0; i-- {
		if label == "" || b.breaks[i].label == label {
			return b.breaks[i].breakTo
		}
	}
	return nil
}

func (b *builder) continueTarget(label string) *Block {
	for i := len(b.loops) - 1; i >= 0; i-- {
		if label == "" || b.loops[i].label == label {
			return b.loops[i].continueTo
		}
	}
	return nil
}

// finish prunes unreachable blocks, derives Preds, and assigns the
// final deterministic numbering (entry first, exit last).
func (b *builder) finish() *Graph {
	reachable := map[*Block]bool{b.entry: true}
	queue := []*Block{b.entry}
	for len(queue) > 0 {
		blk := queue[0]
		queue = queue[1:]
		for _, s := range blk.Succs {
			if !reachable[s] {
				reachable[s] = true
				queue = append(queue, s)
			}
		}
	}

	var kept []*Block
	for _, blk := range b.blocks {
		if blk != b.exit && reachable[blk] {
			kept = append(kept, blk)
		}
	}
	kept = append(kept, b.exit) // exit survives even if no path reaches it

	for i, blk := range kept {
		blk.Index = i
		blk.Preds = nil
	}
	for _, blk := range kept {
		var succs []*Block
		for _, s := range blk.Succs {
			if reachable[s] || s == b.exit {
				succs = append(succs, s)
			}
		}
		blk.Succs = succs
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return &Graph{Entry: b.entry, Exit: b.exit, Blocks: kept}
}
