package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// rankingPkgs hold the closeness and pickiness arithmetic whose
// comparisons decide ranked output.
var rankingPkgs = map[string]bool{
	"chase":    true,
	"exemplar": true,
}

// FloatEq returns the floateq analyzer: closeness/ranking code must not
// compare floats with == or !=. Scores are sums of decayed, normalized
// terms; exact equality there is either accidentally true (and then the
// tie-break hides an order dependency) or numerically fragile. Write
// explicit < / > arms instead.
func FloatEq() *Analyzer {
	return &Analyzer{
		Name: "floateq",
		Doc:  "no ==/!= on floats in closeness/ranking code",
		Applies: func(pkg *Package) bool {
			return rankingPkgs[pkg.Name()]
		},
		Run: runFloatEq,
	}
}

func runFloatEq(mod *Module, pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pkg.Info.TypeOf(be.X)) && !isFloat(pkg.Info.TypeOf(be.Y)) {
				return true
			}
			out = append(out, Finding{
				Pos:  pkg.Fset.Position(be.OpPos),
				Rule: "floateq",
				Msg: "floating-point " + be.Op.String() + " in ranking code; " +
					"use explicit </> comparison arms so ties are decided deliberately",
			})
			return true
		})
	}
	return out
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
