package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"wqe/internal/lint/cfg"
)

// CtxFlow returns the ctxflow analyzer: a function that receives a
// context.Context must thread it into every blocking or spawning
// operation on every reachable path. This is the serving-layer
// discipline Session.AskAll and the future wqe-serve handlers depend
// on — a handler that blocks where its context cannot reach it keeps a
// goroutine (and the request's resources) alive after the caller gave
// up.
//
// Within a context-carrying function the analyzer walks the reachable
// CFG nodes and reports:
//
//   - a channel send, receive, or range-over-channel with no
//     cancellation path — i.e. not a comm case of a select that also
//     watches <-ctx.Done() (or has a default arm, which makes the
//     operation non-blocking). Receiving from ctx.Done() itself is the
//     cancellation and is always fine;
//   - time.Sleep, which no context can interrupt (use a timer or
//     context.WithTimeout and select);
//   - context.Background()/context.TODO() manufactured while a context
//     is already in hand — the fresh root silently detaches the whole
//     downstream call tree from cancellation;
//   - a `go` spawn whose function never receives the context (no
//     derived-context mention in the closure body or call arguments):
//     the goroutine is unreachable by cancellation.
//
// Contexts derived via context.With* or aliased locally count as
// threaded. Function literal bodies are not walked for blocking ops
// (a closure blocks on its own caller's schedule); spawned literals
// are judged as spawns.
func CtxFlow() *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc:  "context-carrying functions must thread ctx into every blocking or spawning operation",
		Run:  runCtxFlow,
	}
}

func runCtxFlow(mod *Module, pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, ctxFlowFunc(pkg, fd)...)
			}
		}
	}
	return out
}

func ctxFlowFunc(pkg *Package, fd *ast.FuncDecl) []Finding {
	derived := ctxParamObjs(pkg.Info, fd)
	if len(derived) == 0 {
		return nil
	}
	growDerivedCtx(pkg.Info, fd.Body, derived)
	parents := parentMap(fd.Body)

	var out []Finding
	seen := map[token.Pos]bool{}
	report := func(pos token.Pos, msg string) {
		if seen[pos] {
			return
		}
		seen[pos] = true
		out = append(out, Finding{Pos: pkg.Fset.Position(pos), Rule: "ctxflow", Msg: msg})
	}

	g := cfg.New(fd.Body)
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if n.Defer {
				continue
			}
			ctxScanNode(pkg.Info, parents, derived, n.Ast, report)
		}
	}
	return out
}

// ctxScanNode inspects one CFG node for unthreaded blocking/spawning
// operations. FuncLit interiors are opaque (spawned ones are judged at
// their GoStmt); RangeStmt bodies are their own nodes.
func ctxScanNode(info *types.Info, parents map[ast.Node]ast.Node, derived map[types.Object]bool, node ast.Node, report func(token.Pos, string)) {
	ast.Inspect(node, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false

		case *ast.GoStmt:
			if !mentionsDerivedCtx(info, derived, x.Call) {
				report(x.Pos(), "goroutine spawned without the context in scope: cancellation "+
					"cannot reach it (pass ctx into the closure or its arguments, "+
					"or //lint:ignore ctxflow <reason>)")
			}
			return false

		case *ast.RangeStmt:
			if isChanExpr(info, x.X) {
				report(x.Pos(), "range over a channel has no cancellation path "+
					"(receive in a select with <-ctx.Done() instead, "+
					"or //lint:ignore ctxflow <reason>)")
			}
			return false

		case *ast.SendStmt:
			if !selectCancellable(info, parents, derived, x) {
				report(x.Pos(), "blocking send the context cannot interrupt "+
					"(wrap in select { case ch <- v: case <-ctx.Done(): }, "+
					"or //lint:ignore ctxflow <reason>)")
			}

		case *ast.UnaryExpr:
			if x.Op != token.ARROW {
				return true
			}
			if isDoneCall(info, derived, x.X) {
				return true
			}
			if !selectCancellable(info, parents, derived, x) {
				report(x.Pos(), "blocking receive the context cannot interrupt "+
					"(select over it together with <-ctx.Done(), "+
					"or //lint:ignore ctxflow <reason>)")
			}

		case *ast.CallExpr:
			if fn := calledFunc(info, x); fn != nil && fn.Pkg() != nil {
				switch {
				case fn.Pkg().Path() == "time" && fn.Name() == "Sleep":
					report(x.Pos(), "time.Sleep ignores the context "+
						"(use context.WithTimeout or a timer in a select with <-ctx.Done(), "+
						"or //lint:ignore ctxflow <reason>)")
				case fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO"):
					report(x.Pos(), fmt.Sprintf("context.%s() manufactured while a context is already "+
						"in scope: the fresh root detaches this call tree from cancellation "+
						"(thread the incoming ctx, or //lint:ignore ctxflow <reason>)", fn.Name()))
				}
			}
		}
		return true
	})
}

// selectCancellable reports whether op is a comm case of a select that
// can always proceed or be cancelled: a default arm (the op becomes a
// try-op) or a <-ctx.Done() comm on a derived context.
func selectCancellable(info *types.Info, parents map[ast.Node]ast.Node, derived map[types.Object]bool, op ast.Node) bool {
	for n := parents[op]; n != nil; n = parents[n] {
		cc, ok := n.(*ast.CommClause)
		if !ok {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			continue
		}
		if cc.Comm == nil || op.Pos() < cc.Comm.Pos() || op.End() > cc.Comm.End() {
			// Inside a clause body, not the comm op itself: the select
			// already committed, no protection.
			return false
		}
		sel, ok := parents[parents[cc]].(*ast.SelectStmt)
		if !ok {
			return false
		}
		for _, st := range sel.Body.List {
			other, ok := st.(*ast.CommClause)
			if !ok || other == cc {
				continue
			}
			if other.Comm == nil {
				return true // default arm: non-blocking
			}
			if commWatchesDone(info, derived, other.Comm) {
				return true
			}
		}
		return false
	}
	return false
}

// commWatchesDone reports whether a select comm statement receives
// from a derived context's Done channel.
func commWatchesDone(info *types.Info, derived map[types.Object]bool, comm ast.Stmt) bool {
	var e ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		e = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			e = s.Rhs[0]
		}
	}
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op != token.ARROW {
		return false
	}
	return isDoneCall(info, derived, u.X)
}

// isDoneCall matches `<derived ctx>.Done()`.
func isDoneCall(info *types.Info, derived map[types.Object]bool, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && derived[info.Uses[id]]
}

// mentionsDerivedCtx reports whether any identifier under n resolves
// to a derived context object.
func mentionsDerivedCtx(info *types.Info, derived map[types.Object]bool, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if id, ok := x.(*ast.Ident); ok && derived[info.Uses[id]] {
			found = true
		}
		return true
	})
	return found
}

// ctxParamObjs collects the function's context.Context parameters
// (including the receiver, for completeness).
func ctxParamObjs(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if fd.Type.Params == nil {
		return out
	}
	for _, fld := range fd.Type.Params.List {
		for _, name := range fld.Names {
			if obj := info.Defs[name]; obj != nil && isContextType(obj.Type()) {
				out[obj] = true
			}
		}
	}
	return out
}

// growDerivedCtx extends the derived set with locals assigned from a
// derived context or a context.With* call, iterating to a fixpoint so
// chains of derivations (sub := context.WithValue(ctx, …); s2 := sub)
// all count as threaded.
func growDerivedCtx(info *types.Info, body *ast.BlockStmt, derived map[types.Object]bool) {
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(x ast.Node) bool {
			as, ok := x.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				return true
			}
			if !derivesCtx(info, derived, as.Rhs[0]) {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil && isContextType(obj.Type()) && !derived[obj] {
					derived[obj] = true
					changed = true
				}
			}
			return true
		})
	}
}

// derivesCtx reports whether e evaluates to (a tuple containing) a
// context derived from one already in the set: a derived identifier or
// a context.With* call whose first argument mentions one.
func derivesCtx(info *types.Info, derived map[types.Object]bool, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return derived[info.Uses[x]]
	case *ast.CallExpr:
		fn := calledFunc(info, x)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return false
		}
		return len(x.Args) > 0 && mentionsDerivedCtx(info, derived, x.Args[0])
	}
	return false
}

// calledFunc resolves a call's target to its *types.Func, or nil for
// dynamic and builtin calls.
func calledFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isChanExpr reports whether e has a channel type.
func isChanExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// parentMap records each node's syntactic parent under root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
