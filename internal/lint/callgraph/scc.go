package callgraph

import "sort"

// SCCs returns the strongly connected components of the call graph in
// callees-first order: by the time a component is emitted, every
// component it calls into has already been emitted. Interprocedural
// analyses exploit this directly — process components in slice order
// and each function's callees already carry their final summaries
// (iterating to a local fixpoint inside cyclic components).
//
// The result is deterministic: Tarjan's algorithm is driven off the
// sorted node list and sorted out-edges, and each component's nodes
// are sorted by ID.
func (g *Graph) SCCs() [][]*Node {
	s := &sccState{
		index:   make(map[*Node]int, len(g.Nodes)),
		low:     make(map[*Node]int, len(g.Nodes)),
		onStack: make(map[*Node]bool, len(g.Nodes)),
	}
	for _, n := range g.Nodes {
		if _, seen := s.index[n]; !seen {
			s.strongConnect(n)
		}
	}
	return s.out
}

type sccState struct {
	next    int
	index   map[*Node]int
	low     map[*Node]int
	onStack map[*Node]bool
	stack   []*Node
	out     [][]*Node
}

func (s *sccState) strongConnect(n *Node) {
	s.index[n] = s.next
	s.low[n] = s.next
	s.next++
	s.stack = append(s.stack, n)
	s.onStack[n] = true
	for _, e := range n.Out {
		m := e.Callee
		if _, seen := s.index[m]; !seen {
			s.strongConnect(m)
			if s.low[m] < s.low[n] {
				s.low[n] = s.low[m]
			}
		} else if s.onStack[m] && s.index[m] < s.low[n] {
			s.low[n] = s.index[m]
		}
	}
	if s.low[n] != s.index[n] {
		return
	}
	var comp []*Node
	for {
		m := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		s.onStack[m] = false
		comp = append(comp, m)
		if m == n {
			break
		}
	}
	sort.Slice(comp, func(i, j int) bool { return comp[i].ID < comp[j].ID })
	s.out = append(s.out, comp)
}
