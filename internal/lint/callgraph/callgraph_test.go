package callgraph

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// load type-checks one synthetic package per (name, source) pair, in
// order, resolving earlier packages as imports of later ones, and
// returns the callgraph input.
func load(t *testing.T, fset *token.FileSet, srcs [][2]string) []Package {
	t.Helper()
	local := make(map[string]*types.Package)
	imp := testImporter{local: local, fallback: importer.ForCompiler(fset, "source", nil)}
	var pkgs []Package
	for _, s := range srcs {
		name, src := s[0], s[1]
		file, err := parser.ParseFile(fset, name+".go", src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(name, fset, []*ast.File{file}, info)
		if err != nil {
			t.Fatalf("type-checking %s: %v", name, err)
		}
		local[name] = tpkg
		pkgs = append(pkgs, Package{Path: name, Name: tpkg.Name(), Files: []*ast.File{file}, Info: info})
	}
	return pkgs
}

type testImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (im testImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.local[path]; ok {
		return p, nil
	}
	return im.fallback.Import(path)
}

func build(t *testing.T, srcs [][2]string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	return Build(fset, load(t, fset, srcs))
}

func (g *Graph) node(t *testing.T, id string) *Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.ID == id {
			return n
		}
	}
	t.Fatalf("node %q not in graph; have %v", id, ids(g.Nodes))
	return nil
}

func ids(nodes []*Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.ID
	}
	return out
}

func hasEdge(n *Node, calleeID string, kind Kind) bool {
	for _, e := range n.Out {
		if e.Callee.ID == calleeID && e.Kind == kind {
			return true
		}
	}
	return false
}

const basicSrc = `package basic

type T struct{ n int }

func (t *T) Method() int { return Helper() }

func Helper() int { return 1 }

func Entry() int {
	var t T
	return t.Method()
}

func Closure() func() int {
	return func() int { return Helper() }
}
`

func TestStaticEdges(t *testing.T) {
	g := build(t, [][2]string{{"basic", basicSrc}})
	entry := g.node(t, "basic.Entry")
	if !hasEdge(entry, "basic.(*T).Method", Static) {
		t.Errorf("Entry should call (*T).Method statically; edges: %v", dumpEdges(entry))
	}
	method := g.node(t, "basic.(*T).Method")
	if !hasEdge(method, "basic.Helper", Static) {
		t.Errorf("(*T).Method should call Helper statically; edges: %v", dumpEdges(method))
	}
	// The closure's call is attributed to the declaring function.
	cl := g.node(t, "basic.Closure")
	if !hasEdge(cl, "basic.Helper", Static) {
		t.Errorf("Closure body calls should belong to Closure; edges: %v", dumpEdges(cl))
	}
}

func dumpEdges(n *Node) []string {
	var out []string
	for _, e := range n.Out {
		out = append(out, e.Callee.ID+"["+e.Kind.String()+"]")
	}
	return out
}

const ifaceSrc = `package iface

type Runner interface{ Run() int }

type A struct{}
func (A) Run() int { return 1 }

type B struct{}
func (*B) Run() int { return 2 }

type C struct{}
func (C) Walk() int { return 3 }

func Drive(r Runner) int { return r.Run() }
`

func TestInterfaceEdges(t *testing.T) {
	g := build(t, [][2]string{{"iface", ifaceSrc}})
	drive := g.node(t, "iface.Drive")
	if !hasEdge(drive, "iface.(A).Run", Interface) {
		t.Errorf("Drive should link to value-receiver impl A.Run; edges: %v", dumpEdges(drive))
	}
	if !hasEdge(drive, "iface.(*B).Run", Interface) {
		t.Errorf("Drive should link to pointer-receiver impl (*B).Run; edges: %v", dumpEdges(drive))
	}
	if hasEdge(drive, "iface.(C).Walk", Interface) {
		t.Errorf("Drive must not link to a method that is not in the interface")
	}
}

const dynamicSrc = `package dyn

func Target() int { return 1 }
func Decoy(x int) int { return x }
func Unreferenced() int { return 2 }

func Apply(f func() int) int { return f() }

func Entry() int { return Apply(Target) }
`

func TestDynamicEdges(t *testing.T) {
	g := build(t, [][2]string{{"dyn", dynamicSrc}})
	if !g.node(t, "dyn.Target").AddrTaken {
		t.Error("Target is passed as a value and must be addr-taken")
	}
	if g.node(t, "dyn.Unreferenced").AddrTaken {
		t.Error("Unreferenced must not be addr-taken")
	}
	apply := g.node(t, "dyn.Apply")
	if !hasEdge(apply, "dyn.Target", Dynamic) {
		t.Errorf("Apply's f() should link to the addr-taken, signature-identical Target; edges: %v", dumpEdges(apply))
	}
	if hasEdge(apply, "dyn.Decoy", Dynamic) {
		t.Error("Apply must not link to Decoy: its signature differs")
	}
	if hasEdge(apply, "dyn.Unreferenced", Dynamic) {
		t.Error("Apply must not link to Unreferenced: its address never escapes")
	}
}

const namedDynSrc = `package ndyn

type Handler func() int
type Probe func() int

func HandlerImpl() int { return 1 }
func TableImpl() int { return 2 }
func ProbeImpl() int { return 3 }
func SliceImpl() int { return 4 }
func FreeImpl() int { return 5 }
func ConvImpl() int { return 6 }

var h Handler = HandlerImpl
var p Probe = ProbeImpl
var f = FreeImpl
var viaConv = Probe(ConvImpl)

var handlers = map[string]Handler{"t": TableImpl}
var probes = []Probe{SliceImpl}

func RunHandler() int { return h() }
func RunProbe() int { return p() }
func RunFree() int { return f() }
`

// TestDynamicNamedTypePrecision pins the address-taken-into-matching-
// use refinement: a call through a defined function type only links
// functions that escaped into that type (or into a structural context,
// which is assignable either way) — never functions held by a
// different defined type.
func TestDynamicNamedTypePrecision(t *testing.T) {
	g := build(t, [][2]string{{"ndyn", namedDynSrc}})
	runHandler := g.node(t, "ndyn.RunHandler")
	runProbe := g.node(t, "ndyn.RunProbe")
	runFree := g.node(t, "ndyn.RunFree")

	// Handler-typed callsite: Handler escapees (var decl and map
	// value) and the structural escapee match; Probe escapees do not.
	for _, want := range []string{"ndyn.HandlerImpl", "ndyn.TableImpl", "ndyn.FreeImpl"} {
		if !hasEdge(runHandler, want, Dynamic) {
			t.Errorf("RunHandler should link %s; edges: %v", want, dumpEdges(runHandler))
		}
	}
	for _, not := range []string{"ndyn.ProbeImpl", "ndyn.SliceImpl", "ndyn.ConvImpl"} {
		if hasEdge(runHandler, not, Dynamic) {
			t.Errorf("RunHandler must not link %s (escaped into Probe, a distinct defined type); edges: %v",
				not, dumpEdges(runHandler))
		}
	}

	// Probe-typed callsite: the conversion Probe(ConvImpl) records an
	// escape into Probe, so the converted function is a candidate here.
	for _, want := range []string{"ndyn.ProbeImpl", "ndyn.SliceImpl", "ndyn.ConvImpl", "ndyn.FreeImpl"} {
		if !hasEdge(runProbe, want, Dynamic) {
			t.Errorf("RunProbe should link %s; edges: %v", want, dumpEdges(runProbe))
		}
	}
	if hasEdge(runProbe, "ndyn.HandlerImpl", Dynamic) {
		t.Errorf("RunProbe must not link HandlerImpl; edges: %v", dumpEdges(runProbe))
	}

	// Structural callsite: assignable from every defined type, so all
	// escapees with the signature remain candidates.
	for _, want := range []string{"ndyn.HandlerImpl", "ndyn.ProbeImpl", "ndyn.FreeImpl"} {
		if !hasEdge(runFree, want, Dynamic) {
			t.Errorf("RunFree should link %s; edges: %v", want, dumpEdges(runFree))
		}
	}
}

const crossSrc1 = `package low

func Leaf() int { return 1 }
`

const crossSrc2 = `package high

import "low"

func Call() int { return low.Leaf() }
`

func TestCrossPackageEdges(t *testing.T) {
	g := build(t, [][2]string{{"low", crossSrc1}, {"high", crossSrc2}})
	call := g.node(t, "high.Call")
	if !hasEdge(call, "low.Leaf", Static) {
		t.Errorf("cross-package call should resolve statically; edges: %v", dumpEdges(call))
	}
}

const sccSrc = `package rec

func A() { B() }
func B() { A() }
func C() { A() }
func Lone() {}
`

func TestSCCsCalleesFirst(t *testing.T) {
	g := build(t, [][2]string{{"rec", sccSrc}})
	sccs := g.SCCs()
	pos := make(map[string]int)
	for i, comp := range sccs {
		for _, n := range comp {
			pos[n.ID] = i
		}
	}
	if pos["rec.A"] != pos["rec.B"] {
		t.Errorf("A and B are mutually recursive and must share a component")
	}
	if pos["rec.C"] <= pos["rec.A"] {
		t.Errorf("caller C (comp %d) must come after callee component of A (comp %d)", pos["rec.C"], pos["rec.A"])
	}
}

func TestReachableFromWitnessPath(t *testing.T) {
	g := build(t, [][2]string{{"low", crossSrc1}, {"high", crossSrc2}})
	call := g.node(t, "high.Call")
	leaf := g.node(t, "low.Leaf")
	parent := g.ReachableFrom([]*Node{call})
	path := PathTo(parent, leaf)
	if len(path) != 2 || path[0] != call || path[1] != leaf {
		t.Errorf("witness path = %v, want [high.Call low.Leaf]", ids(path))
	}
	if PathTo(parent, call) == nil {
		t.Error("a root must be reachable from itself")
	}
}

// TestDumpDeterministic pins the byte-identical-output contract: two
// independent builds over the same sources dump identically.
func TestDumpDeterministic(t *testing.T) {
	srcs := [][2]string{{"low", crossSrc1}, {"high", crossSrc2}, {"rec", sccSrc}, {"iface", ifaceSrc}}
	d1 := build(t, srcs).Dump()
	d2 := build(t, srcs).Dump()
	if d1 != d2 {
		t.Errorf("dump differs between builds:\n--- first\n%s\n--- second\n%s", d1, d2)
	}
	if !strings.Contains(d1, "high.Call\n  -> low.Leaf [static]") {
		t.Errorf("dump missing expected edge stanza:\n%s", d1)
	}
}
