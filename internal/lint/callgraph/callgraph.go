// Package callgraph builds a module-wide static call graph from
// go/ast and go/types results — no external analysis frameworks. It is
// the shared substrate of the interprocedural lint analyzers: lockcheck
// propagates lock-holder summaries along its edges, and detsource runs
// taint-style reachability over it from the canonical-output packages.
//
// Resolution policy, most to least precise:
//
//   - Static: direct calls to package functions and method calls on
//     concrete receivers resolve to exactly one node.
//   - Interface: a call through an interface method links to every
//     module method with that name whose receiver type implements the
//     interface (class-hierarchy analysis).
//   - Dynamic: a call through a function value links to every
//     address-taken module function whose value escaped into a use of
//     a compatible type — identical underlying signature, and not a
//     distinct defined function type (a Handler-typed table entry is
//     not a candidate for a call through a differently named type,
//     because crossing defined types takes an explicit conversion,
//     which the escape scan records as its own use).
//
// Function literals are not separate nodes: their bodies belong to the
// enclosing declaration, so a closure's calls are attributed to the
// function that created it.
//
// Everything is deterministically ordered — nodes by ID, edges by
// callsite position — so two builds over the same sources dump
// byte-identically and every analyzer consuming the graph inherits
// reproducible output.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Package is the slice of one type-checked package the builder needs.
// Path is a display path (the lint driver passes module-relative paths
// so node IDs stay short); Name is the package name used for
// policy-by-package decisions downstream.
type Package struct {
	Path  string
	Name  string
	Files []*ast.File
	Info  *types.Info
}

// Kind classifies how a call edge was resolved.
type Kind int

const (
	// Static is a direct call to a known function or concrete method.
	Static Kind = iota
	// Interface is a call through an interface method, resolved to
	// every implementing module method.
	Interface
	// Dynamic is a call through a function value, resolved to every
	// address-taken module function with an identical signature.
	Dynamic
)

func (k Kind) String() string {
	switch k {
	case Static:
		return "static"
	case Interface:
		return "interface"
	case Dynamic:
		return "dynamic"
	}
	return "unknown"
}

// Edge is one resolved call from Caller to Callee.
type Edge struct {
	Caller, Callee *Node
	// Pos is the callsite position (start of the call expression).
	Pos  token.Pos
	Kind Kind
	// Site is the syntactic call. Shared by every edge of a callsite
	// that resolves to multiple candidates.
	Site *ast.CallExpr
}

// Node is one function or method declaration in the module.
type Node struct {
	// ID is the stable display identity: "pkg.Func" or
	// "pkg.(*Type).Method". Duplicate names (multiple init functions)
	// are disambiguated with a "#n" suffix in declaration order.
	ID   string
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Out and In are the call edges, sorted by callsite position then
	// callee/caller ID.
	Out []*Edge
	In  []*Edge
	// AddrTaken reports that the function's value escapes a direct
	// call position (assigned, passed, or stored), making it a
	// candidate target of Dynamic edges.
	AddrTaken bool
	// AddrTakenInto lists the types the escaping value flowed into —
	// the declared type of the variable, parameter, field, or element
	// receiving it (the function's own type when the context is not
	// statically evident). Dynamic resolution matches callsites against
	// this list, so a function stored only in Handler-typed tables is
	// never a candidate for calls through unrelated defined types.
	AddrTakenInto []types.Type
}

// addEscapeType records one escape-context type, deduplicated, in
// first-appearance order (the scan order is deterministic, so the list
// is too).
func (n *Node) addEscapeType(t types.Type) {
	if t == nil {
		return
	}
	for _, have := range n.AddrTakenInto {
		if types.Identical(have, t) {
			return
		}
	}
	n.AddrTakenInto = append(n.AddrTakenInto, t)
}

// Graph is the module call graph. Nodes is sorted by ID.
type Graph struct {
	Nodes []*Node
	Fset  *token.FileSet
	byFn  map[*types.Func]*Node
}

// NodeOf returns the node declaring fn (normalized through Origin for
// generic instantiations), or nil for functions outside the module.
func (g *Graph) NodeOf(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.byFn[fn.Origin()]
}

// Build constructs the call graph over the given packages. The packages
// must share fset and have complete types.Info (Defs, Uses, Selections,
// Types filled in).
func Build(fset *token.FileSet, pkgs []Package) *Graph {
	g := &Graph{Fset: fset, byFn: make(map[*types.Func]*Node)}
	b := &builder{g: g}
	for i := range pkgs {
		b.collectNodes(&pkgs[i])
	}
	disambiguate(g.Nodes)
	sort.Slice(g.Nodes, func(i, j int) bool { return g.Nodes[i].ID < g.Nodes[j].ID })
	for i := range pkgs {
		b.markAddrTaken(&pkgs[i])
	}
	for i := range pkgs {
		b.collectEdges(&pkgs[i])
	}
	for _, n := range g.Nodes {
		sort.Slice(n.Out, func(i, j int) bool {
			a, c := n.Out[i], n.Out[j]
			if a.Pos != c.Pos {
				return a.Pos < c.Pos
			}
			return a.Callee.ID < c.Callee.ID
		})
	}
	// In-edges are derived after Out ordering is fixed so both sides
	// list edges in one canonical order.
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			e.Callee.In = append(e.Callee.In, e)
		}
	}
	for _, n := range g.Nodes {
		sort.Slice(n.In, func(i, j int) bool {
			a, c := n.In[i], n.In[j]
			if a.Caller.ID != c.Caller.ID {
				return a.Caller.ID < c.Caller.ID
			}
			return a.Pos < c.Pos
		})
	}
	return g
}

type builder struct {
	g *Graph
}

func (b *builder) collectNodes(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &Node{ID: nodeID(pkg.Path, fn), Fn: fn, Decl: fd, Pkg: pkg}
			b.g.byFn[fn] = n
			b.g.Nodes = append(b.g.Nodes, n)
		}
	}
}

// nodeID renders the display identity of one function object.
func nodeID(path string, fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		return path + "." + fn.Name()
	}
	rt := recv.Type()
	star := ""
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
		star = "*"
	}
	name := "?"
	if named, ok := rt.(*types.Named); ok {
		name = named.Obj().Name()
	}
	return path + ".(" + star + name + ")." + fn.Name()
}

// disambiguate appends "#n" to IDs that collide (several init functions
// in one package), in declaration order.
func disambiguate(nodes []*Node) {
	count := make(map[string]int, len(nodes))
	for _, n := range nodes {
		count[n.ID]++
	}
	seen := make(map[string]int)
	for _, n := range nodes {
		if count[n.ID] < 2 {
			continue
		}
		seen[n.ID]++
		n.ID = fmt.Sprintf("%s#%d", n.ID, seen[n.ID])
	}
}

// markAddrTaken flags every module function whose identifier is used
// outside the callee position of a call — assigned, passed as an
// argument, stored in a struct, or taken as a method value — and
// records the type of the context receiving the value.
func (b *builder) markAddrTaken(pkg *Package) {
	for _, file := range pkg.Files {
		// First pass: remember which identifiers are the callee of a
		// call expression; every other use is an escape.
		calleeIdent := make(map[*ast.Ident]bool)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := unwrapFun(call.Fun).(type) {
			case *ast.Ident:
				calleeIdent[fun] = true
			case *ast.SelectorExpr:
				calleeIdent[fun.Sel] = true
			}
			return true
		})
		parents := parentsOf(file)
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || calleeIdent[id] {
				return true
			}
			fn, ok := pkg.Info.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			if node := b.g.NodeOf(fn); node != nil {
				node.AddrTaken = true
				node.addEscapeType(escapeContextType(pkg.Info, parents, id, fn))
			}
			return true
		})
	}
}

// parentsOf records each node's syntactic parent under root.
func parentsOf(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// escapeContextType resolves the declared type of the position an
// escaping function value flows into: the matching assignment target,
// declared variable, call parameter, conversion result, or composite
// element. When the context cannot be read off statically the
// function's own type is recorded — the conservative answer that
// matches any compatible callsite.
func escapeContextType(info *types.Info, parents map[ast.Node]ast.Node, id *ast.Ident, fn *types.Func) types.Type {
	if t := escapeContextTypeOrNil(info, parents, id, fn); t != nil {
		return t
	}
	return fn.Type()
}

func escapeContextTypeOrNil(info *types.Info, parents map[ast.Node]ast.Node, id *ast.Ident, fn *types.Func) types.Type {
	// Widen the escaping expression through its selector (method
	// values) and parens so the parent inspected is the consumer.
	var e ast.Expr = id
	for {
		switch p := parents[e].(type) {
		case *ast.SelectorExpr:
			if p.Sel != e {
				return fn.Type()
			}
			e = p
		case *ast.ParenExpr:
			e = p
		default:
			goto widened
		}
	}
widened:
	switch p := parents[e].(type) {
	case *ast.AssignStmt:
		if len(p.Lhs) == len(p.Rhs) {
			for i, r := range p.Rhs {
				if r == e {
					return lhsType(info, p.Lhs[i])
				}
			}
		}
	case *ast.ValueSpec:
		for i, v := range p.Values {
			if v == e && i < len(p.Names) {
				if obj := info.Defs[p.Names[i]]; obj != nil {
					return obj.Type()
				}
			}
		}
	case *ast.CallExpr:
		if tv, ok := info.Types[p.Fun]; ok && tv.IsType() {
			return tv.Type // conversion: Handler(fn)
		}
		sig, ok := info.TypeOf(p.Fun).(*types.Signature)
		if !ok {
			break
		}
		for i, a := range p.Args {
			if a != e {
				continue
			}
			if sig.Variadic() && i >= sig.Params().Len()-1 {
				if sl, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok {
					return sl.Elem()
				}
				break
			}
			if i < sig.Params().Len() {
				return sig.Params().At(i).Type()
			}
		}
	case *ast.KeyValueExpr:
		if p.Value == e {
			if lit, ok := parents[p].(*ast.CompositeLit); ok {
				return keyedElemType(info, lit, p)
			}
		}
	case *ast.CompositeLit:
		return positionalElemType(info, p, e)
	}
	return nil
}

// lhsType resolves the declared type of an assignment target; for a
// `:=` definition the identifier is in Defs, not Types.
func lhsType(info *types.Info, lhs ast.Expr) types.Type {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if obj := info.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return info.TypeOf(lhs)
}

// keyedElemType resolves the expected type of a keyed composite
// element: map values and named struct fields.
func keyedElemType(info *types.Info, lit *ast.CompositeLit, kv *ast.KeyValueExpr) types.Type {
	t := info.TypeOf(lit)
	if t == nil {
		return nil
	}
	switch u := t.Underlying().(type) {
	case *types.Map:
		return u.Elem()
	case *types.Slice:
		return u.Elem()
	case *types.Array:
		return u.Elem()
	case *types.Struct:
		if key, ok := kv.Key.(*ast.Ident); ok {
			if obj, ok := info.Uses[key].(*types.Var); ok {
				return obj.Type()
			}
		}
	}
	return nil
}

// positionalElemType resolves the expected type of an unkeyed
// composite element.
func positionalElemType(info *types.Info, lit *ast.CompositeLit, e ast.Expr) types.Type {
	t := info.TypeOf(lit)
	if t == nil {
		return nil
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return u.Elem()
	case *types.Array:
		return u.Elem()
	case *types.Struct:
		for i, el := range lit.Elts {
			if el == e && i < u.NumFields() {
				return u.Field(i).Type()
			}
		}
	}
	return nil
}

func (b *builder) collectEdges(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			caller, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			node := b.g.NodeOf(caller)
			if node == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					b.resolveCall(pkg, node, call)
				}
				return true
			})
		}
	}
}

// unwrapFun strips parens and generic instantiation indices from a call
// target expression.
func unwrapFun(e ast.Expr) ast.Expr {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		default:
			return t
		}
	}
}

func (b *builder) resolveCall(pkg *Package, caller *Node, call *ast.CallExpr) {
	fun := unwrapFun(call.Fun)
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[f].(type) {
		case *types.Func:
			b.addStatic(caller, obj, call)
		case *types.Var:
			b.addDynamic(caller, pkg.Info.TypeOf(f), call)
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[f]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				callee, ok := sel.Obj().(*types.Func)
				if !ok {
					return
				}
				if types.IsInterface(sel.Recv()) {
					b.addInterface(caller, callee, sel.Recv(), call)
				} else {
					b.addStatic(caller, callee, call)
				}
			case types.MethodExpr:
				if callee, ok := sel.Obj().(*types.Func); ok {
					b.addStatic(caller, callee, call)
				}
			case types.FieldVal:
				b.addDynamic(caller, pkg.Info.TypeOf(f), call)
			}
			return
		}
		// Package-qualified call (pkg.Fn) or a conversion; only the
		// former resolves to a function object.
		if obj, ok := pkg.Info.Uses[f.Sel].(*types.Func); ok {
			b.addStatic(caller, obj, call)
		}
	case *ast.FuncLit:
		// The literal's body is walked as part of the enclosing
		// declaration; an immediate call adds nothing.
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.StructType,
		*ast.InterfaceType, *ast.FuncType, *ast.StarExpr:
		// Conversion to a composite type, not a call.
	default:
		// A call through an arbitrary expression (slice element,
		// returned closure): dynamic by signature.
		b.addDynamic(caller, pkg.Info.TypeOf(fun), call)
	}
}

func (b *builder) addStatic(caller *Node, callee *types.Func, call *ast.CallExpr) {
	node := b.g.NodeOf(callee)
	if node == nil {
		return // outside the module
	}
	caller.Out = append(caller.Out, &Edge{
		Caller: caller, Callee: node, Pos: call.Pos(), Kind: Static, Site: call,
	})
}

// addInterface links an interface method call to every module method
// with the same name whose receiver type implements the interface.
func (b *builder) addInterface(caller *Node, ifaceMethod *types.Func, recv types.Type, call *ast.CallExpr) {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return
	}
	for _, cand := range b.g.Nodes {
		sig := cand.Fn.Type().(*types.Signature)
		crecv := sig.Recv()
		if crecv == nil || cand.Fn.Name() != ifaceMethod.Name() {
			continue
		}
		// Unexported interface methods only match implementations from
		// the interface's own package.
		if !ifaceMethod.Exported() && cand.Fn.Pkg() != ifaceMethod.Pkg() {
			continue
		}
		if !implementsEither(crecv.Type(), iface) {
			continue
		}
		caller.Out = append(caller.Out, &Edge{
			Caller: caller, Callee: cand, Pos: call.Pos(), Kind: Interface, Site: call,
		})
	}
}

// implementsEither reports whether the receiver type — or, for a value
// receiver, its pointer form — implements the interface. The pointer
// form matters because a value-receiver method stays callable on a *T
// stored in the interface.
func implementsEither(recv types.Type, iface *types.Interface) bool {
	if types.Implements(recv, iface) {
		return true
	}
	if _, isPtr := recv.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(recv), iface)
	}
	return false
}

// addDynamic links a call through a function value to every
// address-taken module function whose value escaped into a use the
// called value could be: identical underlying signature, and not held
// apart by two distinct defined function types.
func (b *builder) addDynamic(caller *Node, t types.Type, call *ast.CallExpr) {
	if t == nil {
		return
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return
	}
	want := stripRecv(sig)
	for _, cand := range b.g.Nodes {
		if !cand.AddrTaken {
			continue
		}
		if !types.Identical(want, stripRecv(cand.Fn.Type().(*types.Signature))) {
			continue
		}
		if !escapesIntoCompatible(t, cand) {
			continue
		}
		caller.Out = append(caller.Out, &Edge{
			Caller: caller, Callee: cand, Pos: call.Pos(), Kind: Dynamic, Site: call,
		})
	}
}

// escapesIntoCompatible reports whether some recorded escape context of
// the candidate could hold the value called through type t. Underlying
// signatures are already known identical; the remaining question is
// nominal: a value inside a defined function type A only becomes a
// value of a different defined type B through an explicit conversion,
// which the escape scan records as an escape into B — so two distinct
// defined types exclude each other, and everything else (either side
// structural) is assignable and matches.
func escapesIntoCompatible(t types.Type, cand *Node) bool {
	for _, u := range cand.AddrTakenInto {
		us, ok := u.Underlying().(*types.Signature)
		if !ok {
			continue
		}
		if !types.Identical(stripRecv(t.Underlying().(*types.Signature)), stripRecv(us)) {
			continue
		}
		if isDefinedType(t) && isDefinedType(u) && !types.Identical(t, u) {
			continue
		}
		return true
	}
	return false
}

// isDefinedType reports whether t is a defined (named) type rather
// than a structural function type.
func isDefinedType(t types.Type) bool {
	_, ok := t.(*types.Named)
	return ok
}

// stripRecv normalizes a signature to its receiver-less form so method
// values compare equal to plain functions with the same shape.
func stripRecv(sig *types.Signature) *types.Signature {
	if sig.Recv() == nil && sig.TypeParams() == nil {
		return sig
	}
	return types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
}

// ReachableFrom runs a breadth-first search along call edges from the
// given roots and returns, for every reachable node, the edge by which
// the search first arrived (nil for roots). Roots are seeded in graph
// (ID) order and out-edges explored in their sorted order, so parent
// chains — the witness paths analyzers print — are deterministic.
func (g *Graph) ReachableFrom(roots []*Node) map[*Node]*Edge {
	parent := make(map[*Node]*Edge)
	queue := make([]*Node, 0, len(roots))
	ordered := append([]*Node(nil), roots...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })
	for _, r := range ordered {
		if _, seen := parent[r]; !seen {
			parent[r] = nil
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if _, seen := parent[e.Callee]; seen {
				continue
			}
			parent[e.Callee] = e
			queue = append(queue, e.Callee)
		}
	}
	return parent
}

// PathTo reconstructs the witness path (root first, n last) from a
// ReachableFrom parent map. It returns nil when n was not reached.
func PathTo(parent map[*Node]*Edge, n *Node) []*Node {
	e, ok := parent[n]
	if !ok {
		return nil
	}
	path := []*Node{n}
	for e != nil {
		n = e.Caller
		path = append(path, n)
		e = parent[n]
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Dump renders the whole graph in a stable, line-oriented text form:
// one node per stanza with its out-edges, then every non-trivial
// strongly connected component. Two builds over identical sources
// produce identical bytes.
func (g *Graph) Dump() string {
	var b strings.Builder
	edges := 0
	for _, n := range g.Nodes {
		edges += len(n.Out)
	}
	sccs := g.SCCs()
	cycles := 0
	for _, comp := range sccs {
		if len(comp) > 1 {
			cycles++
		}
	}
	fmt.Fprintf(&b, "callgraph: %d nodes, %d edges, %d sccs (%d cyclic)\n",
		len(g.Nodes), edges, len(sccs), cycles)
	for _, n := range g.Nodes {
		b.WriteString(n.ID)
		if n.AddrTaken {
			b.WriteString(" [addr-taken]")
		}
		b.WriteByte('\n')
		for _, e := range n.Out {
			pos := g.Fset.Position(e.Pos)
			fmt.Fprintf(&b, "  -> %s [%s] %s:%d\n",
				e.Callee.ID, e.Kind, filepath.Base(pos.Filename), pos.Line)
		}
	}
	for _, comp := range sccs {
		if len(comp) < 2 {
			continue
		}
		ids := make([]string, len(comp))
		for i, n := range comp {
			ids[i] = n.ID
		}
		fmt.Fprintf(&b, "scc: %s\n", strings.Join(ids, " "))
	}
	return b.String()
}
