package lint

import (
	"path/filepath"
	"strings"

	"wqe/internal/lint/callgraph"
)

// cgCache memoizes one call graph per loaded module. RunAll and the
// CLI are single-threaded, so a plain map suffices (the same pattern
// the per-analyzer fact caches use).
var cgCache = map[*Module]*callgraph.Graph{}

// CallGraphOf builds (once per module) the interprocedural call graph
// shared by the lockcheck and detsource analyzers; cmd/wqe-lint's
// -callgraph mode dumps it for debugging. Node IDs use module-relative
// package paths so diagnostics stay short.
func CallGraphOf(mod *Module) *callgraph.Graph {
	if g, ok := cgCache[mod]; ok {
		return g
	}
	pkgs := make([]callgraph.Package, 0, len(mod.Pkgs))
	for _, p := range mod.Pkgs {
		pkgs = append(pkgs, callgraph.Package{
			Path:  displayPath(mod, p),
			Name:  p.Name(),
			Files: p.Files,
			Info:  p.Info,
		})
	}
	g := callgraph.Build(mod.Fset, pkgs)
	cgCache[mod] = g
	return g
}

// displayPath shortens a package import path to its module-relative
// form ("wqe/internal/chase" → "internal/chase"); the root package is
// shown by name.
func displayPath(mod *Module, p *Package) string {
	if p.PkgPath == mod.Path {
		return p.Name()
	}
	return strings.TrimPrefix(p.PkgPath, mod.Path+"/")
}

// findingsIn returns the findings whose position falls inside the
// given package's directory — how module-wide analyses split their
// results back into the per-package Run contract.
func findingsIn(all []Finding, pkg *Package) []Finding {
	var out []Finding
	for _, f := range all {
		if filepath.Dir(f.Pos.Filename) == pkg.Dir {
			out = append(out, f)
		}
	}
	return out
}
