package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"

	"wqe/internal/lint/cfg"
)

// AtomicField returns the module-wide atomic-consistency analyzer.
//
// A struct field accessed through sync/atomic anywhere — a
// `atomic.AddInt64(&x.f, 1)` call, or a method call on an
// atomic.Int64-family typed field — must be accessed that way
// everywhere: a plain read can tear against an atomic writer, and the
// race detector only catches the schedules it happens to see. The
// analyzer classifies every access to such fields module-wide and
// flags the plain ones, with two exemptions argued from the CFG:
//
//   - publication safety: a plain access through a local the function
//     itself allocated (`x := &T{}`, `var x T`, `new(T)`) is exempt
//     while the local is provably unpublished — no path from the
//     allocation has let the value escape (assigned away, passed to a
//     call, address taken, captured by a closure). Before the first
//     escape exactly one goroutine can reach the memory, so
//     constructor-style plain initialization is safe. The analysis is
//     a forward must-flow (escape on SOME path kills the exemption on
//     every later access), and accesses inside closures are never
//     exempt — the closure may run after publication.
//   - mutex exemption: a field whose every access (plain AND atomic)
//     runs under one common must-held lock identity is serialized by
//     that lock; the atomic calls are then redundant rather than
//     racy, which is not this analyzer's complaint.
//
// Fields with a sync/atomic type are additionally flagged on any
// direct use (copy, assignment, comparison): the type declares the
// atomic regime, and a copy bypasses the API entirely. Taking a
// field's address outside a sync/atomic argument is deliberately out
// of scope (tracked by neither regime).
func AtomicField() *Analyzer {
	facts := make(map[*Module][]Finding)
	prepare := func(mod *Module) {
		if _, ok := facts[mod]; !ok {
			facts[mod] = runAtomicFieldModule(mod)
		}
	}
	return &Analyzer{
		Name:    "atomicfield",
		Doc:     "a field accessed via sync/atomic anywhere must not mix in plain access",
		Prepare: prepare,
		Run: func(mod *Module, pkg *Package) []Finding {
			prepare(mod)
			return findingsIn(facts[mod], pkg)
		},
	}
}

// fieldAccess is one classified access to an atomic-regime field.
type fieldAccess struct {
	pos    token.Pos
	atomic bool
	// locks is the set of must-held lock identities at the access.
	locks map[string]bool
	// exempt marks a plain access proven publication-safe.
	exempt bool
}

// fieldInfo accumulates a field's accesses module-wide.
type fieldInfo struct {
	obj   types.Object
	typed bool // the field's type lives in sync/atomic
	accs  []fieldAccess
}

func runAtomicFieldModule(mod *Module) []Finding {
	cg := CallGraphOf(mod)
	flows := lockFlowsOf(mod)
	ids := lockIDsOf(mod)

	// Field universe: every field with a sync/atomic type, plus every
	// field whose address reaches a sync/atomic function call.
	fields := map[types.Object]*fieldInfo{}
	fieldFor := func(obj types.Object) *fieldInfo {
		fi := fields[obj]
		if fi == nil {
			fi = &fieldInfo{obj: obj}
			fields[obj] = fi
		}
		return fi
	}
	for obj := range lockIDsOf(mod).fieldOwner {
		if isAtomicType(obj.Type()) {
			fieldFor(obj).typed = true
		}
	}
	for _, pkg := range mod.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicFuncCall(pkg.Info, call) {
					return true
				}
				if obj := atomicArgField(pkg.Info, call); obj != nil {
					fieldFor(obj)
				}
				return true
			})
		}
	}
	if len(fields) == 0 {
		return nil
	}

	// Classify every access inside every function body. The call graph
	// gives deterministic function order and the per-function lock
	// flows; publication flows are built lazily per body.
	for _, n := range cg.Nodes {
		if n.Decl.Body == nil {
			continue
		}
		info := n.Pkg.Info
		fl := flows[n]
		var pub *pubFlow
		litSpans := funcLitSpans(n.Decl.Body)
		parents := parentsIn(n.Decl)
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			sel, ok := x.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := info.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			fi := fields[selection.Obj()]
			if fi == nil {
				return true
			}
			kind := classifyAccess(info, parents, sel, fi.typed)
			if kind == accNeutral {
				return true
			}
			acc := fieldAccess{pos: sel.Sel.Pos(), atomic: kind == accAtomic}
			if fl != nil {
				acc.locks = map[string]bool{}
				for _, hr := range fl.mustRefsAt(sel.Pos()) {
					if id, ok := ids.identityOf(info, hr.x); ok {
						acc.locks[id] = true
					}
				}
			}
			if !acc.atomic && !inSpans(litSpans, sel.Pos()) {
				if pub == nil {
					pub = newPubFlow(info, n.Decl.Body)
				}
				if root := rootIdent(sel.X); root != nil {
					if obj := identObj(info, root); obj != nil && pub.unpublishedAt(obj, sel.Pos()) {
						acc.exempt = true
					}
				}
			}
			fi.accs = append(fi.accs, acc)
			return true
		})
	}

	// Verdicts, in deterministic field order.
	type namedField struct {
		display string
		fi      *fieldInfo
	}
	var ordered []namedField
	for obj, fi := range fields {
		ordered = append(ordered, namedField{display: ids.fieldDisplay(obj), fi: fi})
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].display != ordered[j].display {
			return ordered[i].display < ordered[j].display
		}
		return ordered[i].fi.obj.Pos() < ordered[j].fi.obj.Pos()
	})
	var out []Finding
	for _, nf := range ordered {
		fi := nf.fi
		// Order accesses by rendered position, not raw token.Pos: file
		// base offsets depend on parse order, positions do not.
		sort.Slice(fi.accs, func(i, j int) bool {
			a, b := mod.Fset.Position(fi.accs[i].pos), mod.Fset.Position(fi.accs[j].pos)
			if a.Filename != b.Filename {
				return a.Filename < b.Filename
			}
			if a.Line != b.Line {
				return a.Line < b.Line
			}
			return a.Column < b.Column
		})
		var plains []fieldAccess
		var firstAtomic token.Pos
		hasAtomic := false
		for _, a := range fi.accs {
			if a.atomic {
				if !hasAtomic {
					hasAtomic = true
					firstAtomic = a.pos
				}
			} else if !a.exempt {
				plains = append(plains, a)
			}
		}
		// A plain-typed field needs a witnessed atomic access to be in
		// the atomic regime; an atomic-typed field is in it by
		// declaration.
		if len(plains) == 0 || (!fi.typed && !hasAtomic) {
			continue
		}
		// Common-mutex exemption: one lock identity must-held at every
		// access, atomic ones included.
		common := map[string]bool(nil)
		for i, a := range fi.accs {
			if a.exempt {
				continue
			}
			if i == 0 || common == nil {
				common = map[string]bool{}
				for id := range a.locks {
					common[id] = true
				}
				continue
			}
			for id := range common {
				if !a.locks[id] {
					delete(common, id)
				}
			}
		}
		if len(common) > 0 {
			continue
		}
		for _, a := range plains {
			msg := ""
			if fi.typed {
				msg = fmt.Sprintf("field %s has an atomic type but is accessed directly here "+
					"(a copy or assignment bypasses the atomic API); use its Load/Store/Add methods, "+
					"or //lint:ignore atomicfield <reason>", nf.display)
			} else {
				msg = fmt.Sprintf("field %s mixes atomic and plain access: updated via sync/atomic "+
					"(e.g. %s) but accessed directly here — a plain access can tear against atomic "+
					"writers; use sync/atomic everywhere, guard every access with one mutex, "+
					"or //lint:ignore atomicfield <reason>", nf.display, shortPos(mod.Fset, firstAtomic))
			}
			out = append(out, Finding{Pos: mod.Fset.Position(a.pos), Rule: "atomicfield", Msg: msg})
		}
	}
	return out
}

func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

type accessKind int

const (
	accPlain accessKind = iota
	accAtomic
	accNeutral
)

// classifyAccess decides what regime one field selector participates
// in: an argument of a sync/atomic call or a receiver of an atomic
// method is atomic; a bare address-take is neutral (out of scope);
// everything else is plain.
func classifyAccess(info *types.Info, parents map[ast.Node]ast.Node, sel *ast.SelectorExpr, typed bool) accessKind {
	p := parents[sel]
	for {
		pe, ok := p.(*ast.ParenExpr)
		if !ok {
			break
		}
		p = parents[pe]
	}
	switch pp := p.(type) {
	case *ast.UnaryExpr:
		if pp.Op != token.AND {
			return accPlain
		}
		q := parents[pp]
		for {
			pe, ok := q.(*ast.ParenExpr)
			if !ok {
				break
			}
			q = parents[pe]
		}
		if call, ok := q.(*ast.CallExpr); ok && isAtomicFuncCall(info, call) {
			return accAtomic
		}
		return accNeutral
	case *ast.SelectorExpr:
		// c.hits.Add(1): the field selector is the X of a method
		// selector resolving into sync/atomic.
		if typed && pp.X == sel {
			if fn, ok := info.Uses[pp.Sel].(*types.Func); ok &&
				fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
				return accAtomic
			}
		}
	}
	return accPlain
}

// isAtomicFuncCall reports a call to a sync/atomic package function
// (atomic.AddInt64, atomic.StorePointer, ...).
func isAtomicFuncCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" && fn.Type().(*types.Signature).Recv() == nil
}

// atomicArgField resolves the struct-field object whose address is the
// first argument of a sync/atomic call, or nil.
func atomicArgField(info *types.Info, call *ast.CallExpr) types.Object {
	if len(call.Args) == 0 {
		return nil
	}
	un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if selection, ok := info.Selections[sel]; ok && selection.Kind() == types.FieldVal {
		return selection.Obj()
	}
	return nil
}

// isAtomicType reports whether t (or *t) is a type declared in
// sync/atomic (atomic.Int64, atomic.Value, ...).
func isAtomicType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync/atomic"
}

// rootIdent unwraps a selector base chain (x.a.b, s.shards[i], (*p).f)
// to its root identifier, or nil when the base is not rooted in a
// plain variable (a call result, a map index of a call, ...).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// funcLitSpans collects the source spans of every function literal
// under body — accesses inside them never get the publication
// exemption (the closure may run after the value escapes).
func funcLitSpans(body *ast.BlockStmt) [][2]token.Pos {
	var spans [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			spans = append(spans, [2]token.Pos{lit.Body.Pos(), lit.Body.End()})
		}
		return true
	})
	return spans
}

func inSpans(spans [][2]token.Pos, pos token.Pos) bool {
	for _, s := range spans {
		if pos >= s[0] && pos < s[1] {
			return true
		}
	}
	return false
}

// parentsIn records each node's syntactic parent under root (the same
// helper shape callgraph uses, local to avoid exporting it there).
func parentsIn(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// --- publication flow -------------------------------------------------

// pubSet is the set of locals proven unpublished on every path.
type pubSet map[types.Object]bool

// pubFlow solves "which locally-allocated values have not escaped yet"
// as a forward must-analysis over the body's CFG: an allocation gens
// its variable, any escaping use (bare identifier outside a selector
// base, address of the whole value, capture by a closure) kills it on
// that path, and the intersection merge demands safety on every path.
type pubFlow struct {
	nodes []pubNodeFact
}

type pubNodeFact struct {
	pos, end token.Pos
	set      pubSet
}

func newPubFlow(info *types.Info, body *ast.BlockStmt) *pubFlow {
	g := cfg.New(body)

	// Universe: every local the body allocates freshly.
	universe := pubSet{}
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			for _, obj := range pubGens(info, n.Ast) {
				universe[obj] = true
			}
		}
	}
	pf := &pubFlow{}
	if len(universe) == 0 {
		return pf
	}
	flow := cfg.Flow[pubSet]{
		Entry: pubSet{},
		Top:   universe,
		Merge: func(a, b pubSet) pubSet {
			out := pubSet{}
			for k := range a {
				if b[k] {
					out[k] = true
				}
			}
			return out
		},
		Transfer: func(_ *cfg.Block, n cfg.Node, in pubSet) pubSet {
			for _, obj := range pubGens(info, n.Ast) {
				in[obj] = true
			}
			for _, obj := range pubKills(info, n.Ast, universe) {
				delete(in, obj)
			}
			return in
		},
		Equal: func(a, b pubSet) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Clone: func(s pubSet) pubSet {
			out := make(pubSet, len(s))
			for k := range s {
				out[k] = true
			}
			return out
		},
	}
	res := cfg.Forward(g, flow)
	cfg.Replay(g, flow, res, func(_ *cfg.Block, n cfg.Node, before pubSet) {
		if n.Defer {
			return
		}
		pf.nodes = append(pf.nodes, pubNodeFact{
			pos: n.Ast.Pos(),
			end: n.Ast.End(),
			set: flow.Clone(before),
		})
	})
	return pf
}

// unpublishedAt reports whether obj is provably unpublished before the
// innermost node containing pos.
func (pf *pubFlow) unpublishedAt(obj types.Object, pos token.Pos) bool {
	var best *pubNodeFact
	for i := range pf.nodes {
		nf := &pf.nodes[i]
		if pos < nf.pos || pos >= nf.end {
			continue
		}
		if best == nil || nf.end-nf.pos < best.end-best.pos {
			best = nf
		}
	}
	return best != nil && best.set[obj]
}

// pubGens returns the locals freshly allocated by one statement:
// `x := &T{}`, `x := T{}`, `x := new(T)`, `var x T` (zero value).
func pubGens(info *types.Info, stmt ast.Node) []types.Object {
	var out []types.Object
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) != len(s.Rhs) {
			return nil
		}
		for i, rh := range s.Rhs {
			if !isFreshAlloc(info, rh) {
				continue
			}
			if id, ok := ast.Unparen(s.Lhs[i]).(*ast.Ident); ok {
				if obj := identObj(info, id); obj != nil {
					out = append(out, obj)
				}
			}
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return nil
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				fresh := len(vs.Values) == 0 // var x T: zero value, unshared
				if i < len(vs.Values) {
					fresh = isFreshAlloc(info, vs.Values[i])
				}
				if !fresh {
					continue
				}
				if obj := info.Defs[name]; obj != nil {
					out = append(out, obj)
				}
			}
		}
	}
	return out
}

// isFreshAlloc reports an expression that produces memory no one else
// can reference yet.
func isFreshAlloc(info *types.Info, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op != token.AND {
			return false
		}
		_, lit := ast.Unparen(x.X).(*ast.CompositeLit)
		return lit
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok {
				return b.Name() == "new"
			}
		}
	}
	return false
}

// pubKills returns the tracked locals one statement publishes. Any use
// of a tracked identifier is an escape except: the base of a field
// selector (`x.f`, `x.f = v` — reading or writing through the local
// stays local), and the defining left-hand side of its own allocation.
// Uses inside function literals always kill (capture is publication).
func pubKills(info *types.Info, stmt ast.Node, universe pubSet) []types.Object {
	genLhs := map[types.Object]bool{}
	for _, obj := range pubGens(info, stmt) {
		genLhs[obj] = true
	}
	var out []types.Object
	parents := parentsIn(stmt)
	ast.Inspect(stmt, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := identObj(info, id)
		if obj == nil || !universe[obj] {
			return true
		}
		if escapesUse(info, parents, id) && !isDefSite(info, parents, id, genLhs[obj]) {
			out = append(out, obj)
		}
		return true
	})
	return out
}

// escapesUse decides whether one identifier occurrence lets the value
// escape: everything except serving as the base of a selector whose
// address is not taken for a non-atomic purpose.
func escapesUse(info *types.Info, parents map[ast.Node]ast.Node, id *ast.Ident) bool {
	p := parents[id]
	for {
		pe, ok := p.(*ast.ParenExpr)
		if !ok {
			break
		}
		p = parents[pe]
	}
	sel, ok := p.(*ast.SelectorExpr)
	if !ok || sel.X != id {
		// Bare use: assignment source, call argument, return value,
		// &x, map key, comparison — all publication or aliasing.
		return true
	}
	// x.f...: safe unless &x.f flows into a non-atomic call (a pointer
	// to the field escapes).
	q := parents[sel]
	for {
		switch qq := q.(type) {
		case *ast.ParenExpr:
			q = parents[qq]
			continue
		case *ast.SelectorExpr:
			if qq.X != sel {
				return false
			}
			sel = qq
			q = parents[qq]
			continue
		}
		break
	}
	if un, ok := q.(*ast.UnaryExpr); ok && un.Op == token.AND {
		if call, ok := parents[un].(*ast.CallExpr); ok && isAtomicFuncCall(info, call) {
			return false
		}
		return true
	}
	return false
}

// isDefSite exempts the allocation's own left-hand identifier.
func isDefSite(info *types.Info, parents map[ast.Node]ast.Node, id *ast.Ident, genHere bool) bool {
	if !genHere {
		return false
	}
	switch p := parents[id].(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == id {
				return true
			}
		}
	case *ast.ValueSpec:
		for _, name := range p.Names {
			if name == id {
				return true
			}
		}
	}
	return false
}
