package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"wqe/internal/lint/callgraph"
)

// guardedRe matches the field annotation the analyzer enforces:
//
//	entries map[string]*entry // guarded by mu
var guardedRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// LockCheck returns the interprocedural lockcheck analyzer (v3).
//
// Fields annotated `// guarded by <mu>` must be reached only on call
// paths that hold the mutex. v2 computed per-function summaries
// ("this method needs <recv>.mu held at entry", "this method acquires
// <recv>.mu") and propagated them along the module call graph,
// callees first over the SCC condensation:
//
//   - A helper that touches a guarded field through its receiver
//     without locking is accepted when every caller holds the mutex at
//     the callsite — verified, not name-trusted.
//   - A call path that reaches a guarded access with the lock never
//     taken is reported once, with the witness chain (a → b → c) in
//     the message.
//   - Calling a method that (transitively) acquires a mutex while
//     already holding it is reported as a potential deadlock, with the
//     chain to the re-acquisition.
//   - A *Locked-suffixed function that is never called with any lock
//     held is reported as a dead or misleading annotation.
//
// v3 replaces v2's lexical intra-function test (a Lock/RLock earlier
// in the body, Unlock ignored) with the flow-sensitive lock-set
// analysis in lockflow.go: a guarded access or callee requirement is
// discharged only when the lock is held on *every* CFG path reaching
// it, and a re-acquisition is a deadlock when the lock is held on
// *some* path. That kills the v2 false-positive class — a guarded
// call after an early Unlock-and-return no longer counts as "lock
// held" — and catches accesses after a release, which the lexical
// scan waved through. Two pairing checks ride on the same flows and
// run on every function, annotations or not: a lock still held on
// some exit path (leak) and a release no path can pair with an
// acquisition (double release). `go test -race` still proves the
// protocol dynamically.
func LockCheck() *Analyzer {
	facts := make(map[*Module][]Finding)
	prepare := func(mod *Module) {
		if _, ok := facts[mod]; !ok {
			facts[mod] = runLockCheckModule(mod)
		}
	}
	return &Analyzer{
		Name:    "lockcheck",
		Doc:     "accesses to `guarded by` fields must hold the named mutex on every call path",
		Prepare: prepare,
		Run: func(mod *Module, pkg *Package) []Finding {
			prepare(mod)
			return findingsIn(facts[mod], pkg)
		},
	}
}

// collectGuarded scans every package for annotated struct fields and
// maps each field object to its guarding mutex's field name.
func collectGuarded(mod *Module) map[types.Object]string {
	guarded := map[types.Object]string{}
	for _, pkg := range mod.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, fld := range st.Fields.List {
					mu := guardAnnotation(fld)
					if mu == "" {
						continue
					}
					for _, name := range fld.Names {
						if obj := pkg.Info.Defs[name]; obj != nil {
							guarded[obj] = mu
						}
					}
				}
				return true
			})
		}
	}
	return guarded
}

// guardAnnotation extracts the mutex name from a field's doc or line
// comment, or "".
func guardAnnotation(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// lockReq records that a function needs <recv>.<mu> held at entry,
// with the witness chain from the function down to the access that
// created the requirement.
type lockReq struct {
	mu         string
	chain      []string // node IDs, this function first, access function last
	accessPos  token.Pos
	accessDesc string // "c.entries"
}

// lockAcq records that a function acquires <recv>.<mu> on some path,
// directly or through a same-receiver callee.
type lockAcq struct {
	mu    string
	chain []string // node IDs down to the function holding the Lock call
}

// lockCall is one statically resolved callsite inside a function.
type lockCall struct {
	callee *callgraph.Node
	base   string // rendered receiver expression; "" for plain calls
	pos    token.Pos
}

// lockSummary is the per-function state the propagation works on.
type lockSummary struct {
	node     *callgraph.Node
	recvName string
	locked   bool // name carries the *Locked caller-holds convention
	flow     *lockFlow
	requires map[string]*lockReq
	acquires map[string]*lockAcq
	calls    []lockCall
	// called/heldCalled feed the dead-annotation check: heldCalled is
	// set when some callsite runs with a lock held or hands the
	// obligation further up the chain.
	called     bool
	heldCalled bool
}

func runLockCheckModule(mod *Module) []Finding {
	guarded := collectGuarded(mod)
	cg := CallGraphOf(mod)
	flows := lockFlowsOf(mod)
	sums := make(map[*callgraph.Node]*lockSummary, len(cg.Nodes))

	var findings []Finding

	// Local pass: the flow-sensitive lock-set solution (shared with
	// lockorder and atomicfield via lockFlowsOf), its pairing findings
	// (leak on some exit path, unpairable release, re-acquisition —
	// these run on every function, guarded fields or not), then the
	// per-function accesses, acquisitions, and callsites.
	for _, n := range cg.Nodes {
		s := newLockSummary(mod.Fset, n)
		sums[n] = s
		if n.Decl.Body == nil {
			continue
		}
		s.flow = flows[n]
		findings = append(findings, s.flow.flowFindings(mod.Fset)...)
		if len(guarded) > 0 {
			findings = append(findings, s.localPass(mod.Fset, n.Pkg.Info, guarded)...)
		}
	}
	if len(guarded) == 0 {
		return findings
	}

	// Propagation: callees first over the SCC condensation; cyclic
	// components iterate to a fixpoint.
	for _, comp := range cg.SCCs() {
		for changed := true; changed; {
			changed = false
			for _, n := range comp {
				if sums[n].propagate(sums) {
					changed = true
				}
			}
		}
	}

	// Emission: callsite violations, unlocked-entry chains, deadlock
	// candidates, dead annotations — in deterministic graph order.
	for _, n := range cg.Nodes {
		findings = append(findings, sums[n].emit(mod.Fset, sums)...)
	}
	return findings
}

func newLockSummary(fset *token.FileSet, n *callgraph.Node) *lockSummary {
	s := &lockSummary{
		node:     n,
		locked:   strings.HasSuffix(n.Decl.Name.Name, "Locked"),
		requires: map[string]*lockReq{},
		acquires: map[string]*lockAcq{},
	}
	if n.Decl.Recv != nil && len(n.Decl.Recv.List) == 1 && len(n.Decl.Recv.List[0].Names) == 1 {
		s.recvName = n.Decl.Recv.List[0].Names[0].Name
	}
	for _, e := range n.Out {
		if e.Kind != callgraph.Static {
			continue
		}
		s.calls = append(s.calls, lockCall{
			callee: e.Callee,
			base:   callBase(fset, e.Site),
			pos:    e.Pos,
		})
	}
	return s
}

// callBase renders the receiver expression of a method callsite ("" for
// plain function calls). Method expressions (T.M)(x, ...) take the
// receiver from the first argument.
func callBase(fset *token.FileSet, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return exprString(fset, sel.X)
}

// localPass classifies every guarded-field access of the function:
// flow-protected (the mutex is must-held at the access), receiver-based
// (becomes a requirement the callers must discharge), or foreign-base
// unprotected (an immediate finding, since no call-graph fact can
// establish a foreign lock). It also records which receiver mutexes
// the function acquires.
func (s *lockSummary) localPass(fset *token.FileSet, info *types.Info, guarded map[types.Object]string) []Finding {
	fd := s.node.Decl
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if base, mu, ok := lockAcquisition(fset, n); ok && s.recvName != "" && base == s.recvName {
				if s.acquires[mu] == nil {
					s.acquires[mu] = &lockAcq{mu: mu, chain: []string{s.node.ID}}
				}
			}
		case *ast.SelectorExpr:
			selection, ok := info.Selections[n]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			mu, ok := guarded[selection.Obj()]
			if !ok {
				return true
			}
			base := exprString(fset, n.X)
			desc := base + "." + n.Sel.Name
			if s.flow.heldAt(base, mu, n.Pos()) {
				return true
			}
			if s.recvName != "" && base == s.recvName {
				if s.requires[mu] == nil {
					s.requires[mu] = &lockReq{
						mu:         mu,
						chain:      []string{s.node.ID},
						accessPos:  n.Pos(),
						accessDesc: desc,
					}
				}
				return true
			}
			if s.locked {
				// A *Locked function touching guarded state through a
				// parameter or field path keeps v1's trust: the call
				// graph cannot bind a foreign base to a caller's lock.
				return true
			}
			out = append(out, Finding{
				Pos:  fset.Position(n.Pos()),
				Rule: "lockcheck",
				Msg: fmt.Sprintf("%s is guarded by %s.%s, which is not held here "+
					"(call %s.%s.Lock() first, or //lint:ignore lockcheck <reason>)",
					desc, base, mu, base, mu),
			})
		}
		return true
	})
	return out
}

// propagate folds callee summaries into this function: requirements a
// callee imposes on a shared receiver bubble up when this function does
// not discharge them (flow-sensitively: a callsite where the lock is
// must-held discharges the callee's need), and so do transitive
// acquisitions (for deadlock detection). Reports whether the summary
// changed.
func (s *lockSummary) propagate(sums map[*callgraph.Node]*lockSummary) bool {
	if s.node.Decl.Body == nil {
		return false
	}
	changed := false
	for _, c := range s.calls {
		cs := sums[c.callee]
		if cs == nil {
			continue
		}
		if !cs.called {
			cs.called = true
			changed = true
		}
		if !cs.heldCalled && (s.flow.anyHeldAt(c.pos) ||
			(s.recvName != "" && c.base == s.recvName)) {
			cs.heldCalled = true
			changed = true
		}
		if s.recvName == "" || c.base != s.recvName {
			continue
		}
		for _, mu := range sortedKeys(cs.requires) {
			if s.requires[mu] != nil || s.flow.heldAt(c.base, mu, c.pos) {
				continue
			}
			req := cs.requires[mu]
			s.requires[mu] = &lockReq{
				mu:         mu,
				chain:      append([]string{s.node.ID}, req.chain...),
				accessPos:  req.accessPos,
				accessDesc: req.accessDesc,
			}
			changed = true
		}
		for _, mu := range sortedKeys(cs.acquires) {
			if s.acquires[mu] != nil {
				continue
			}
			s.acquires[mu] = &lockAcq{
				mu:    mu,
				chain: append([]string{s.node.ID}, cs.acquires[mu].chain...),
			}
			changed = true
		}
	}
	return changed
}

// emit produces this function's findings after propagation settled.
func (s *lockSummary) emit(fset *token.FileSet, sums map[*callgraph.Node]*lockSummary) []Finding {
	var out []Finding
	fd := s.node.Decl
	for _, c := range s.calls {
		cs := sums[c.callee]
		if cs == nil || c.base == "" {
			continue
		}
		propagates := s.recvName != "" && c.base == s.recvName
		for _, mu := range sortedKeys(cs.requires) {
			held := s.flow.heldAt(c.base, mu, c.pos)
			if held || propagates {
				continue
			}
			req := cs.requires[mu]
			out = append(out, Finding{
				Pos:  fset.Position(c.pos),
				Rule: "lockcheck",
				Msg: fmt.Sprintf("calling %s requires %s.%s held: it reaches %s via %s "+
					"(call %s.%s.Lock() first, or //lint:ignore lockcheck <reason>)",
					c.callee.ID, c.base, mu, req.accessDesc, chainString(req.chain),
					c.base, mu),
			})
		}
		// One path re-acquiring is enough to hang, so the deadlock
		// test is may-held — while requirement discharge above is
		// must-held (the access needs the lock on every path).
		for _, mu := range sortedKeys(cs.acquires) {
			if !s.flow.mayHeldAt(c.base, mu, c.pos) {
				continue
			}
			acq := cs.acquires[mu]
			out = append(out, Finding{
				Pos:  fset.Position(c.pos),
				Rule: "lockcheck",
				Msg: fmt.Sprintf("%s.%s is already held here, and %s acquires it again "+
					"(via %s) — potential deadlock; restructure or //lint:ignore lockcheck <reason>",
					c.base, mu, c.callee.ID, chainString(acq.chain)),
			})
		}
	}
	// A function whose requirement nobody can check — no module
	// callers, no Locked contract — is an unlocked entry path.
	if !s.locked && !s.called {
		for _, mu := range sortedKeys(s.requires) {
			req := s.requires[mu]
			out = append(out, Finding{
				Pos:  fset.Position(req.accessPos),
				Rule: "lockcheck",
				Msg: fmt.Sprintf("%s is guarded by %s, which is not held on the path %s "+
					"(lock it, suffix the entry function with Locked, or //lint:ignore lockcheck <reason>)",
					req.accessDesc, muDesc(req), chainString(req.chain)),
			})
		}
	}
	// Dead or misleading *Locked annotation: the suffix promises
	// callers hold a lock, but no callsite ever does.
	if s.locked && !s.heldCalled {
		out = append(out, Finding{
			Pos:  fset.Position(fd.Pos()),
			Rule: "lockcheck",
			Msg: fmt.Sprintf("%s has the Locked suffix but is never called with a lock held "+
				"(dead or misleading annotation); lock in a caller, drop the suffix, "+
				"or //lint:ignore lockcheck <reason>", s.node.ID),
		})
	}
	return out
}

// muDesc renders the lock a requirement names, using the access's own
// base so the message reads "c.n is guarded by c.mu".
func muDesc(req *lockReq) string {
	if i := strings.LastIndexByte(req.accessDesc, '.'); i >= 0 {
		return req.accessDesc[:i] + "." + req.mu
	}
	return req.mu
}

func chainString(chain []string) string {
	return strings.Join(chain, " → ")
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// lockAcquisition decodes a `<base>.<mu>.Lock()` or RLock call into its
// base expression and mutex name.
func lockAcquisition(fset *token.FileSet, call *ast.CallExpr) (base, mu string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
		return "", "", false
	}
	muSel, isSel := sel.X.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	return exprString(fset, muSel.X), muSel.Sel.Name, true
}

// exprString renders an expression as written, for base-path matching.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}
