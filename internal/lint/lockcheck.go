package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// guardedRe matches the field annotation the analyzer enforces:
//
//	entries map[string]*entry // guarded by mu
var guardedRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// LockCheck returns the lockcheck analyzer: any access to a struct
// field annotated `// guarded by <mu>` must appear after a
// `<base>.<mu>.Lock()` (or RLock) call in the same function, unless the
// function's name ends in "Locked" (the caller-holds-the-lock
// convention) or the access carries a lint:ignore directive.
//
// The check is intraprocedural and lexical: it does not track Unlock or
// aliasing. It exists to catch the common mistake — touching shared
// cache state in a new method without taking the mutex — not to prove
// the locking protocol correct (that is what `go test -race` is for).
func LockCheck() *Analyzer {
	facts := make(map[*Module]map[types.Object]string)
	return &Analyzer{
		Name: "lockcheck",
		Doc:  "accesses to `guarded by` fields must hold the named mutex",
		Run: func(mod *Module, pkg *Package) []Finding {
			guarded, ok := facts[mod]
			if !ok {
				guarded = collectGuarded(mod)
				facts[mod] = guarded
			}
			return runLockCheck(pkg, guarded)
		},
	}
}

// collectGuarded scans every package for annotated struct fields and
// maps each field object to its guarding mutex's field name.
func collectGuarded(mod *Module) map[types.Object]string {
	guarded := map[types.Object]string{}
	for _, pkg := range mod.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, fld := range st.Fields.List {
					mu := guardAnnotation(fld)
					if mu == "" {
						continue
					}
					for _, name := range fld.Names {
						if obj := pkg.Info.Defs[name]; obj != nil {
							guarded[obj] = mu
						}
					}
				}
				return true
			})
		}
	}
	return guarded
}

// guardAnnotation extracts the mutex name from a field's doc or line
// comment, or "".
func guardAnnotation(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func runLockCheck(pkg *Package, guarded map[types.Object]string) []Finding {
	if len(guarded) == 0 {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			out = append(out, checkFuncLocks(pkg, fd, guarded)...)
		}
	}
	return out
}

// checkFuncLocks reports guarded-field accesses in one function that
// are not lexically preceded by a matching Lock/RLock call.
func checkFuncLocks(pkg *Package, fd *ast.FuncDecl, guarded map[types.Object]string) []Finding {
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pkg.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		mu, ok := guarded[selection.Obj()]
		if !ok {
			return true
		}
		base := exprString(pkg.Fset, sel.X)
		if lockHeldBefore(pkg, fd, base, mu, sel.Pos()) {
			return true
		}
		out = append(out, Finding{
			Pos:  pkg.Fset.Position(sel.Pos()),
			Rule: "lockcheck",
			Msg: fmt.Sprintf("%s.%s is guarded by %s.%s, which is not held here "+
				"(call %s.%s.Lock() first, suffix the function name with Locked, "+
				"or //lint:ignore lockcheck <reason>)",
				base, sel.Sel.Name, base, mu, base, mu),
		})
		return true
	})
	return out
}

// lockHeldBefore reports whether `<base>.<mu>.Lock()` or RLock appears
// in fd's body lexically before pos.
func lockHeldBefore(pkg *Package, fd *ast.FuncDecl, base, mu string, pos token.Pos) bool {
	held := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if held {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok || muSel.Sel.Name != mu {
			return true
		}
		if exprString(pkg.Fset, muSel.X) == base {
			held = true
			return false
		}
		return true
	})
	return held
}

// exprString renders an expression as written, for base-path matching.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}
