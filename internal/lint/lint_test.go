package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRe matches expectation markers in fixture sources:
//
//	for k := range m { // want mapiter
var wantRe = regexp.MustCompile(`// want ([a-z]+)`)

// mark is one expected (or observed) finding location.
type mark struct {
	file string // relative to the fixture root
	line int
	rule string
}

func (m mark) String() string { return fmt.Sprintf("%s:%d: %s", m.file, m.line, m.rule) }

func sortMarks(ms []mark) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		return a.rule < b.rule
	})
}

// fixtureMarks scans every fixture source for want markers.
func fixtureMarks(t *testing.T, root string) []mark {
	t.Helper()
	var marks []mark
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				marks = append(marks, mark{file: rel, line: i + 1, rule: m[1]})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scanning fixture corpus: %v", err)
	}
	return marks
}

// findingMarks converts analyzer output into comparable marks.
func findingMarks(t *testing.T, root string, findings []Finding) []mark {
	t.Helper()
	abs, err := filepath.Abs(root)
	if err != nil {
		t.Fatalf("resolving fixture root: %v", err)
	}
	ms := make([]mark, 0, len(findings))
	for _, f := range findings {
		rel, err := filepath.Rel(abs, f.Pos.Filename)
		if err != nil {
			t.Fatalf("finding outside fixture root: %v", err)
		}
		ms = append(ms, mark{file: rel, line: f.Pos.Line, rule: f.Rule})
	}
	return ms
}

func diffMarks(t *testing.T, want, got []mark) {
	t.Helper()
	sortMarks(want)
	sortMarks(got)
	gotSet := map[mark]bool{}
	for _, m := range got {
		gotSet[m] = true
	}
	wantSet := map[mark]bool{}
	for _, m := range want {
		wantSet[m] = true
	}
	for _, m := range want {
		if !gotSet[m] {
			t.Errorf("missing finding: %s", m)
		}
	}
	for _, m := range got {
		if !wantSet[m] {
			t.Errorf("unexpected finding: %s", m)
		}
	}
}

const fixtureRoot = "testdata/src"

// TestFixtureCorpus runs every analyzer over the fixture module and
// compares the findings against the // want markers, exactly.
func TestFixtureCorpus(t *testing.T) {
	mod, err := Load(fixtureRoot)
	if err != nil {
		t.Fatalf("loading fixture corpus: %v", err)
	}
	findings := RunAll(mod, Analyzers())
	if len(findings) == 0 {
		t.Fatal("fixture corpus produced no findings; wqe-lint must exit non-zero on it")
	}
	diffMarks(t, fixtureMarks(t, fixtureRoot), findingMarks(t, fixtureRoot, findings))
}

// TestAnalyzersIndividually reruns each analyzer alone and checks it
// reports exactly the markers carrying its rule name — i.e. no analyzer
// leaks findings into another's scope.
func TestAnalyzersIndividually(t *testing.T) {
	mod, err := Load(fixtureRoot)
	if err != nil {
		t.Fatalf("loading fixture corpus: %v", err)
	}
	all := fixtureMarks(t, fixtureRoot)
	for _, a := range Analyzers() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			var want []mark
			for _, m := range all {
				if m.rule == a.Name {
					want = append(want, m)
				}
			}
			if len(want) == 0 {
				t.Fatalf("fixture corpus has no markers for rule %q", a.Name)
			}
			got := findingMarks(t, fixtureRoot, RunAll(mod, []*Analyzer{a}))
			diffMarks(t, want, got)
		})
	}
}

// TestFindingString pins the file:line: rule: message output contract.
func TestFindingString(t *testing.T) {
	f := Finding{
		Pos:  token.Position{Filename: "a/b.go", Line: 7, Column: 3},
		Rule: "mapiter",
		Msg:  "map iteration order leaks",
	}
	if got, want := f.String(), "a/b.go:7: mapiter: map iteration order leaks"; got != want {
		t.Errorf("Finding.String() = %q, want %q", got, want)
	}
}

// TestModuleIsClean lints the wqe module itself: the tree must stay
// free of findings, so the lint gate is enforced by go test ./... too.
func TestModuleIsClean(t *testing.T) {
	mod, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading wqe module: %v", err)
	}
	for _, f := range RunAll(mod, Analyzers()) {
		t.Errorf("%s", f)
	}
}
