package lint

import "go/ast"

// GoBound returns the gobound analyzer: it flags every `go` statement
// outside the approved worker-pool package (par). The module's
// concurrency model routes all fan-out through par.ForEach, which
// guarantees structured lifetime (workers join before the call
// returns), bounded parallelism, and panic propagation; a raw goroutine
// anywhere else escapes those guarantees and — worse for this codebase
// — tempts completion-order-dependent commits that break byte-identical
// output across worker counts.
func GoBound() *Analyzer {
	return &Analyzer{
		Name: "gobound",
		Doc:  "flag goroutine spawns outside the approved worker pool (internal/par)",
		Applies: func(pkg *Package) bool {
			return pkg.Name() != "par"
		},
		Run: runGoBound,
	}
}

func runGoBound(mod *Module, pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			out = append(out, Finding{
				Pos:  pkg.Fset.Position(gs.Pos()),
				Rule: "gobound",
				Msg: "raw goroutine outside internal/par; use par.ForEach so fan-out " +
					"stays bounded, joined, and deterministic to commit " +
					"(or //lint:ignore gobound <why this spawn is safe>)",
			})
			return true
		})
	}
	return out
}
