package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop returns the errdrop analyzer: it flags silently discarded
// error returns in internal packages and command mains — a bare call
// statement whose result includes an error, and `_ =`/`v, _ :=`
// assignments that blank an error-typed result.
//
// Methods on strings.Builder and bytes.Buffer (and fmt.Fprint* writing
// into one) are documented never to fail and are exempt. In command
// mains, terminal output — fmt.Print/Printf/Println and fmt.Fprint* to
// os.Stdout or os.Stderr — is also exempt: a CLI cannot usefully report
// that its own reporting failed. Deferred calls are exempt only when
// they are Close/Unlock-shaped cleanups — the one idiomatic
// best-effort drop; `defer flush()` hides a real failure and is
// flagged, and a deferred function literal is walked like ordinary
// code. A drop that is genuinely intended gets a
// `//lint:ignore errdrop <reason>`.
func ErrDrop() *Analyzer {
	return &Analyzer{
		Name: "errdrop",
		Doc:  "error returns in internal packages and command mains must be handled, not discarded",
		Applies: func(pkg *Package) bool {
			if pkg.Name() != "main" && isInternalPath(pkg.PkgPath) {
				return true
			}
			return isCmdPath(pkg.PkgPath)
		},
		Run: runErrDrop,
	}
}

func isInternalPath(path string) bool {
	return strings.HasPrefix(path, "internal/") || strings.Contains(path, "/internal/")
}

func isCmdPath(path string) bool {
	return strings.HasPrefix(path, "cmd/") || strings.Contains(path, "/cmd/")
}

func runErrDrop(mod *Module, pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				out = append(out, deferredDrops(pkg, n)...)
				return false
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok || neverFails(pkg.Info, call) {
					return true
				}
				if desc, ok := droppedError(pkg.Info, call); ok {
					out = append(out, Finding{
						Pos:  pkg.Fset.Position(call.Pos()),
						Rule: "errdrop",
						Msg: fmt.Sprintf("result of %s includes an error that is silently discarded; "+
							"handle it or //lint:ignore errdrop <reason>", desc),
					})
				}
			case *ast.AssignStmt:
				out = append(out, blankedErrors(pkg, n)...)
			}
			return true
		})
	}
	return out
}

// deferredDrops checks one defer statement. A deferred best-effort
// cleanup — a call named Close, Unlock, or RUnlock — is the one
// idiomatic place to drop an error; any other deferred call is held to
// the same standard as straight-line code. A deferred function literal
// is walked like ordinary code (with the same cleanup exemption for
// the calls inside it), so wrapping a drop in `defer func() { … }()`
// hides nothing.
func deferredDrops(pkg *Package, ds *ast.DeferStmt) []Finding {
	lit, ok := ast.Unparen(ds.Call.Fun).(*ast.FuncLit)
	if !ok {
		call := ds.Call
		if isCleanupCall(call) || neverFails(pkg.Info, call) {
			return nil
		}
		if desc, ok := droppedError(pkg.Info, call); ok {
			return []Finding{{
				Pos:  pkg.Fset.Position(call.Pos()),
				Rule: "errdrop",
				Msg: fmt.Sprintf("deferred call to %s discards its error; only Close/Unlock-shaped "+
					"cleanups may defer a drop (handle it in a deferred closure, "+
					"or //lint:ignore errdrop <reason>)", desc),
			}}
		}
		return nil
	}
	var out []Finding
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			out = append(out, deferredDrops(pkg, n)...)
			return false
		case *ast.ExprStmt:
			call, ok := n.X.(*ast.CallExpr)
			if !ok || isCleanupCall(call) || neverFails(pkg.Info, call) {
				return true
			}
			if desc, ok := droppedError(pkg.Info, call); ok {
				out = append(out, Finding{
					Pos:  pkg.Fset.Position(call.Pos()),
					Rule: "errdrop",
					Msg: fmt.Sprintf("result of %s includes an error that is silently discarded; "+
						"handle it or //lint:ignore errdrop <reason>", desc),
				})
			}
		case *ast.AssignStmt:
			out = append(out, blankedErrors(pkg, n)...)
		}
		return true
	})
	return out
}

// isCleanupCall reports whether the call target is named like a
// best-effort cleanup: Close, Unlock, or RUnlock.
func isCleanupCall(call *ast.CallExpr) bool {
	var name string
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
	default:
		return false
	}
	return name == "Close" || name == "Unlock" || name == "RUnlock"
}

// droppedError reports whether the call returns an error (alone or as
// the trailing element of a tuple) and renders the callee for the
// message.
func droppedError(info *types.Info, call *ast.CallExpr) (string, bool) {
	t := info.TypeOf(call)
	if t == nil {
		return "", false
	}
	errish := false
	switch t := t.(type) {
	case *types.Tuple:
		errish = t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		errish = isErrorType(t)
	}
	if !errish {
		return "", false
	}
	return calleeDesc(call), true
}

// blankedErrors flags `_` targets bound to error-typed call results.
func blankedErrors(pkg *Package, as *ast.AssignStmt) []Finding {
	var out []Finding
	flag := func(pos ast.Node, call *ast.CallExpr) {
		if neverFails(pkg.Info, call) {
			return
		}
		out = append(out, Finding{
			Pos:  pkg.Fset.Position(pos.Pos()),
			Rule: "errdrop",
			Msg: fmt.Sprintf("error from %s is assigned to _; "+
				"handle it or //lint:ignore errdrop <reason>", calleeDesc(call)),
		})
	}
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// v, _ := f()
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return nil
		}
		tuple, ok := pkg.Info.TypeOf(call).(*types.Tuple)
		if !ok {
			return nil
		}
		for i, lhs := range as.Lhs {
			if isBlank(lhs) && i < tuple.Len() && isErrorType(tuple.At(i).Type()) {
				flag(lhs, call)
			}
		}
		return out
	}
	if len(as.Rhs) != len(as.Lhs) {
		return nil
	}
	for i, lhs := range as.Lhs {
		if !isBlank(lhs) {
			continue
		}
		call, ok := as.Rhs[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		if t := pkg.Info.TypeOf(call); t != nil && isErrorType(t) {
			flag(lhs, call)
		}
	}
	return out
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// neverFails recognizes error returns that cannot be usefully handled:
// methods on strings.Builder / bytes.Buffer and fmt.Fprint* targeting
// one of those (documented never to fail), plus terminal output —
// fmt.Print/Printf/Println and fmt.Fprint* to os.Stdout / os.Stderr —
// where the only possible reaction to a failed write is another write
// to the same stream.
func neverFails(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if selection, isMethod := info.Selections[sel]; isMethod {
		return isBuilderOrBuffer(selection.Recv())
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" {
		return false
	}
	if strings.HasPrefix(obj.Name(), "Print") {
		return true // fmt.Print/Printf/Println write to stdout
	}
	if !strings.HasPrefix(obj.Name(), "Fprint") || len(call.Args) == 0 {
		return false
	}
	if isStdStream(info, call.Args[0]) {
		return true
	}
	if t := info.TypeOf(call.Args[0]); t != nil {
		return isBuilderOrBuffer(t)
	}
	return false
}

// isStdStream reports whether the expression is the os.Stdout or
// os.Stderr package variable.
func isStdStream(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "os" &&
		(obj.Name() == "Stdout" || obj.Name() == "Stderr")
}

func isBuilderOrBuffer(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path, name := obj.Pkg().Path(), obj.Name()
	return (path == "strings" && name == "Builder") || (path == "bytes" && name == "Buffer")
}

// calleeDesc renders the called function compactly for diagnostics.
func calleeDesc(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	default:
		return "call"
	}
}
