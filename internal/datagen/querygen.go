package datagen

import (
	"math/rand"

	"wqe/internal/graph"
	"wqe/internal/query"
)

// QuerySpec parameterizes ground-truth query generation, mirroring the
// paper's benchmark instantiation: templates of a given shape and edge
// count, up to MaxPredicates search predicates per node, and occasional
// bound-2 path edges.
type QuerySpec struct {
	Shape         query.Topology // TopoStar, TopoTree (chains/trees) or TopoCyclic
	Edges         int            // |E_Q| ≥ 1 (cyclic needs ≥ 3)
	MaxPredicates int            // per node, the benchmarks use ≤ 3
	PathEdgeProb  float64        // probability an edge gets bound 2
	FocusAtSeed   bool           // pin the focus to the walk seed instead of a random node
	FocusLabel    string         // require the focus to carry this label ("" = any)
	// MinFocusPredicates forces at least this many predicates on the
	// focus node (the paper's benchmark templates always constrain the
	// focus). Capped by the witness's attribute count.
	MinFocusPredicates int
}

// GenQuery samples a connected subgraph of g matching the spec and
// abstracts it into a pattern query whose witness images guarantee a
// nonempty isomorphic answer (the paper instantiates templates "such
// that [each query] has isomorphic answer in G"). It returns the query,
// the witness image nodes (parallel to query nodes), and ok=false when
// no suitable subgraph was found.
func GenQuery(g *graph.Graph, spec QuerySpec, rng *rand.Rand) (*query.Query, []graph.NodeID, bool) {
	if spec.Edges < 1 {
		spec.Edges = 1
	}
	wantNodes := spec.Edges + 1
	treeEdges := spec.Edges
	if spec.Shape == query.TopoCyclic {
		if spec.Edges < 3 {
			spec.Edges = 3
		}
		wantNodes = spec.Edges // a cycle closes over existing nodes
		treeEdges = spec.Edges - 1
	}

	for attempt := 0; attempt < 60; attempt++ {
		images, patEdges, ok := growSubgraph(g, spec, rng, wantNodes, treeEdges)
		if !ok {
			continue
		}
		q := abstract(g, spec, rng, images, patEdges)
		if q != nil {
			return q, images, true
		}
	}
	return nil, nil, false
}

// patEdge is one sampled pattern edge: indices into the image slice and
// the direction the underlying graph edge has.
type patEdge struct {
	from, to int
}

func growSubgraph(g *graph.Graph, spec QuerySpec, rng *rand.Rand, wantNodes, treeEdges int) ([]graph.NodeID, []patEdge, bool) {
	n := g.NumNodes()
	if n == 0 {
		return nil, nil, false
	}
	seed := graph.NodeID(rng.Intn(n))
	if g.Degree(seed) == 0 {
		return nil, nil, false
	}
	images := []graph.NodeID{seed}
	used := map[graph.NodeID]bool{seed: true}
	var edges []patEdge

	for len(edges) < treeEdges {
		// Pick the expansion anchor per the desired shape.
		var anchorIdx int
		switch spec.Shape {
		case query.TopoStar:
			anchorIdx = 0
		default:
			anchorIdx = rng.Intn(len(images))
		}
		anchor := images[anchorIdx]
		out, in := g.Out(anchor), g.In(anchor)
		total := len(out) + len(in)
		if total == 0 {
			return nil, nil, false
		}
		found := false
		for tries := 0; tries < 12 && !found; tries++ {
			pick := rng.Intn(total)
			var nb graph.NodeID
			outDir := pick < len(out)
			if outDir {
				nb = out[pick].To
			} else {
				nb = in[pick-len(out)].To
			}
			if used[nb] {
				continue
			}
			used[nb] = true
			images = append(images, nb)
			if outDir {
				edges = append(edges, patEdge{from: anchorIdx, to: len(images) - 1})
			} else {
				edges = append(edges, patEdge{from: len(images) - 1, to: anchorIdx})
			}
			found = true
		}
		if !found {
			return nil, nil, false
		}
		if len(images) == wantNodes && len(edges) < treeEdges {
			return nil, nil, false
		}
	}

	if spec.Shape == query.TopoCyclic {
		// Close a cycle: find a real graph edge between two images not
		// yet connected in the pattern.
		adj := map[[2]int]bool{}
		for _, e := range edges {
			adj[[2]int{e.from, e.to}] = true
			adj[[2]int{e.to, e.from}] = true
		}
		closed := false
	cycle:
		for i := range images {
			for _, ge := range g.Out(images[i]) {
				for j := range images {
					if i == j || adj[[2]int{i, j}] {
						continue
					}
					if ge.To == images[j] {
						edges = append(edges, patEdge{from: i, to: j})
						closed = true
						break cycle
					}
				}
			}
		}
		if !closed {
			return nil, nil, false
		}
	}
	return images, edges, true
}

// abstract turns images into a pattern query: labels from the images,
// predicates anchored at the images' own attribute values, bounds
// mostly 1.
func abstract(g *graph.Graph, spec QuerySpec, rng *rand.Rand, images []graph.NodeID, edges []patEdge) *query.Query {
	q := query.New()
	for _, img := range images {
		q.AddNode(g.Label(img))
	}

	// Pick the focus before generating predicates: the focus honors
	// both the label requirement and the minimum predicate count.
	switch {
	case spec.FocusLabel != "":
		q.Focus = query.NodeID(-1)
		for u, n := range q.Nodes {
			if n.Label == spec.FocusLabel {
				q.Focus = query.NodeID(u)
				break
			}
		}
		if q.Focus < 0 {
			return nil
		}
	case spec.FocusAtSeed:
		q.Focus = 0
	default:
		q.Focus = query.NodeID(rng.Intn(len(q.Nodes)))
	}

	for ui, img := range images {
		u := query.NodeID(ui)
		tuple := g.Tuple(img)
		if spec.MaxPredicates <= 0 || len(tuple) == 0 {
			continue
		}
		nPred := rng.Intn(spec.MaxPredicates + 1)
		if u == q.Focus && nPred < spec.MinFocusPredicates {
			nPred = spec.MinFocusPredicates
		}
		perm := rng.Perm(len(tuple))
		for _, ti := range perm {
			if nPred == 0 {
				break
			}
			av := tuple[ti]
			attr := g.Attrs.Name(av.Attr)
			if q.FindLiteral(u, attr, graph.EQ) >= 0 ||
				q.FindLiteral(u, attr, graph.GE) >= 0 ||
				q.FindLiteral(u, attr, graph.LE) >= 0 {
				continue
			}
			// Near-unique string attributes (names, ids) make degenerate
			// equality predicates; realistic benchmark queries select on
			// categorical or numeric attributes.
			if av.Val.Kind == graph.String {
				if dom := g.ActiveDomain(attr); len(dom.Values) > 100 {
					continue
				}
			}
			var lit query.Literal
			if av.Val.Kind == graph.Number {
				if rng.Intn(2) == 0 {
					lit = query.Literal{Attr: attr, Op: graph.GE, Val: av.Val}
				} else {
					lit = query.Literal{Attr: attr, Op: graph.LE, Val: av.Val}
				}
			} else {
				lit = query.Literal{Attr: attr, Op: graph.EQ, Val: av.Val}
			}
			q.Nodes[u].Literals = append(q.Nodes[u].Literals, lit)
			nPred--
		}
	}

	// The focus must reach its predicate quota; witnesses whose focus
	// lacks usable attributes are rejected so GenQuery retries.
	if len(q.Nodes[q.Focus].Literals) < spec.MinFocusPredicates {
		return nil
	}

	for _, e := range edges {
		bound := 1
		if rng.Float64() < spec.PathEdgeProb {
			bound = 2
		}
		q.AddEdge(query.NodeID(e.from), query.NodeID(e.to), bound)
	}
	if err := q.Validate(); err != nil {
		return nil
	}
	return q
}
