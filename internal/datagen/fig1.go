// Package datagen builds the synthetic graphs, query workloads, and
// Why-question instances behind the experimental evaluation (§7). The
// paper's real datasets (DBpedia, IMDB, ICIJ Offshore, WatDiv) are
// replaced by seeded generators that preserve their structural regimes
// (see DESIGN.md §4); the Fig 1/2 running example is reproduced
// exactly.
package datagen

import (
	"wqe/internal/exemplar"
	"wqe/internal/graph"
	"wqe/internal/query"
)

// Fig1 bundles the paper's running example: the product knowledge
// graph of Fig 2, the original query Q of Fig 1, and the exemplar
// E = (T, C) of Example 2.3.
type Fig1 struct {
	G *graph.Graph
	Q *query.Query
	E *exemplar.Exemplar

	// Named nodes for assertions and demos.
	Phones   map[string]graph.NodeID // "P1".."P6"
	Carriers map[string]graph.NodeID
}

// NewFig1 constructs the running example. Ground truth facts it
// reproduces (Examples 2.1, 2.3, 3.1, 3.3):
//
//   - V_Cellphone has six candidates P1..P6;
//   - Q(G) = {P1, P2, P5};
//   - rep(E, V) = {P3, P4, P5} with cl = 1 each;
//   - the optimal rewrite under budget 4 applies
//     AddL(Carrier.Discount=25), RmE((Cellphone,Sensor), 2) and
//     RxL(Price ≥ 840 → Price ≥ 790), reaching Q'(G) = {P3, P4, P5}
//     and closeness 1/2.
func NewFig1() *Fig1 {
	g := graph.New()
	phone := func(name string, display, storage, price, ram float64) graph.NodeID {
		return g.AddNode("Cellphone", map[string]graph.Value{
			"Name":    graph.S(name),
			"Display": graph.N(display),
			"Storage": graph.N(storage),
			"Price":   graph.N(price),
			"RAM":     graph.N(ram),
		})
	}
	p1 := phone("S9+", 5.8, 64, 840, 6)
	p2 := phone("Note8", 6.3, 64, 950, 6)
	p3 := phone("S9+v2", 6.2, 128, 799, 6)
	p4 := phone("Note8v2", 6.3, 64, 790, 4)
	p5 := phone("S8+", 6.2, 128, 840, 4)
	p6 := phone("J7", 5.5, 16, 300, 2)

	carrier := func(name string, discount float64) graph.NodeID {
		return g.AddNode("Carrier", map[string]graph.Value{
			"Name":     graph.S(name),
			"Discount": graph.N(discount),
		})
	}
	sprint := carrier("Sprint", 25)
	att := carrier("ATT", 10)
	tmobile := carrier("TMobile", 25)

	// Carriers sell cellphones. 25%-discount carriers do not sell P1/P2.
	g.AddEdge(att, p1, "sells")
	g.AddEdge(att, p2, "sells")
	g.AddEdge(sprint, p3, "sells")
	g.AddEdge(sprint, p5, "sells")
	g.AddEdge(tmobile, p4, "sells")
	g.AddEdge(att, p6, "sells")

	// Wearables and sensors: P1, P2, P5 reach a Sensor within two hops;
	// P3 and P4 have none (P3 "has no wearable sensors").
	wear := g.AddNode("Wearable", map[string]graph.Value{"Name": graph.S("GearS3")})
	sensor := g.AddNode("Sensor", map[string]graph.Value{"Name": graph.S("HeartRate")})
	g.AddEdge(wear, sensor, "has")
	g.AddEdge(p1, wear, "pairs")
	g.AddEdge(p2, wear, "pairs")
	g.AddEdge(p5, wear, "pairs")

	// Query Q (Fig 1): find Cellphones priced ≥ 840 with ≥ 4GB RAM,
	// sold by a Carrier, with a Sensor within two hops.
	q := query.New()
	cell := q.AddNode("Cellphone",
		query.Literal{Attr: "Price", Op: graph.GE, Val: graph.N(840)},
		query.Literal{Attr: "RAM", Op: graph.GE, Val: graph.N(4)},
	)
	car := q.AddNode("Carrier")
	sen := q.AddNode("Sensor")
	q.AddEdge(car, cell, 1)
	q.AddEdge(cell, sen, 2)
	q.Focus = cell

	// Exemplar (Example 2.3): t1 = ⟨Display=6.2, Storage=x1, Price=_⟩,
	// t2 = ⟨Display=6.3, Storage=x2, Price=x3⟩, C = {x3 < 800, x1 > x2}.
	e := &exemplar.Exemplar{
		Tuples: []exemplar.TuplePattern{
			{
				"Display": exemplar.C(graph.N(6.2)),
				"Storage": exemplar.V("x1"),
				"Price":   exemplar.W(),
			},
			{
				"Display": exemplar.C(graph.N(6.3)),
				"Storage": exemplar.V("x2"),
				"Price":   exemplar.V("x3"),
			},
		},
		Constraints: []exemplar.Constraint{
			{Left: "x3", Op: graph.LT, Val: graph.N(800)},
			{Left: "x1", Op: graph.GT, IsVar: true, Right: "x2"},
		},
	}

	return &Fig1{
		G: g, Q: q, E: e,
		Phones: map[string]graph.NodeID{
			"P1": p1, "P2": p2, "P3": p3, "P4": p4, "P5": p5, "P6": p6,
		},
		Carriers: map[string]graph.NodeID{
			"Sprint": sprint, "ATT": att, "TMobile": tmobile,
		},
	}
}
