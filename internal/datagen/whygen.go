package datagen

import (
	"math/rand"
	"sort"

	"wqe/internal/exemplar"
	"wqe/internal/graph"
	"wqe/internal/match"
	"wqe/internal/ops"
	"wqe/internal/query"
)

// WhySpec parameterizes Why-question generation (§7 "Generating
// Why-Questions"): a ground-truth query spec, how many atomic operators
// disturb it, and how many tuple patterns the exemplar carries.
type WhySpec struct {
	Query QuerySpec
	// DisturbOps is the maximum number of injected operators (the paper
	// injects "up to 5"); the actual count is 1..DisturbOps.
	DisturbOps int
	// MaxTuples caps |T|. Default 5.
	MaxTuples int
	// MaxBound is b_m for disturbance operators. Default 3.
	MaxBound int
	// RefineOnly (resp. RelaxOnly) restricts disturbance to refinements
	// (creates Why-Not/Why-Empty flavors: answers go missing) or to
	// relaxations (creates Why-Many flavor: extra answers appear).
	RefineOnly bool
	RelaxOnly  bool
}

// WhyInstance is one generated Why-question with its ground truth.
type WhyInstance struct {
	Qstar      *query.Query // ground-truth query
	Q          *query.Query // disturbed query given to the algorithms
	Injected   ops.Sequence // the disturbance
	E          *exemplar.Exemplar
	AnswerStar []graph.NodeID // Q*(G), the desired answers
	Answer     []graph.NodeID // Q(G)
}

// GenWhy generates one Why-question over g. The matcher m computes the
// ground-truth and disturbed answers (pass a cache-less matcher; the
// instances must not pollute algorithm caches). It retries internally
// and reports ok=false when the graph yields no usable instance.
func GenWhy(g *graph.Graph, m *match.Matcher, spec WhySpec, rng *rand.Rand) (*WhyInstance, bool) {
	if spec.DisturbOps <= 0 {
		spec.DisturbOps = 5
	}
	if spec.MaxTuples <= 0 {
		spec.MaxTuples = 5
	}
	if spec.MaxBound <= 0 {
		spec.MaxBound = 3
	}
	if spec.Query.MinFocusPredicates == 0 && spec.Query.MaxPredicates > 0 {
		// The exemplar characterizes desired answers through the
		// focus's predicate attributes; queries that leave the focus
		// unconstrained make the Why-question ill-posed.
		spec.Query.MinFocusPredicates = 1
	}
	for attempt := 0; attempt < 30; attempt++ {
		qstar, _, ok := GenQuery(g, spec.Query, rng)
		if !ok {
			continue
		}
		ansStar := m.Match(qstar).Answer
		if len(ansStar) == 0 {
			continue
		}
		k := 1 + rng.Intn(spec.DisturbOps)
		q, injected, ok := disturb(g, qstar, k, spec, rng)
		if !ok {
			continue
		}
		ans := m.Match(q).Answer

		// T prioritizes the missing desired answers, then retained ones.
		missing := diffNodes(ansStar, ans)
		if len(missing) == 0 && !spec.RelaxOnly {
			continue // the disturbance must hide something (why-not)
		}
		sample := missing
		for _, v := range ansStar {
			if len(sample) >= spec.MaxTuples {
				break
			}
			if !containsNode(sample, v) {
				sample = append(sample, v)
			}
		}
		if len(sample) > spec.MaxTuples {
			sample = sample[:spec.MaxTuples]
		}
		e := exemplar.FromEntities(g, sample, TupleAttrs(g, qstar))
		if len(e.Tuples) == 0 {
			continue
		}
		return &WhyInstance{
			Qstar: qstar, Q: q, Injected: injected, E: e,
			AnswerStar: ansStar, Answer: ans,
		}, true
	}
	return nil, false
}

// TupleAttrs picks the attributes tuple patterns constrain: the
// attributes the ground-truth query predicates on at its focus —
// exactly what characterizes the desired answers — padded with up to
// two low-cardinality attributes of the focus label so the exemplar is
// never attribute-free.
func TupleAttrs(g *graph.Graph, qstar *query.Query) []string {
	var attrs []string
	seen := map[string]bool{}
	for _, l := range qstar.Nodes[qstar.Focus].Literals {
		if !seen[l.Attr] {
			seen[l.Attr] = true
			attrs = append(attrs, l.Attr)
		}
	}
	if len(attrs) >= 1 {
		return attrs
	}
	// Fall back to discriminative-but-general attributes of the focus
	// label: small active domains generalize across entities.
	cands := qstar.Candidates(g, qstar.Focus)
	counts := map[string]bool{}
	for i, v := range cands {
		if i >= 50 {
			break
		}
		for _, av := range g.Tuple(v) {
			counts[g.Attrs.Name(av.Attr)] = true
		}
	}
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if len(attrs) >= 2 {
			break
		}
		if dom := g.ActiveDomain(name); len(dom.Values) > 0 && len(dom.Values) <= 60 {
			attrs = append(attrs, name)
		}
	}
	if len(attrs) == 0 && len(names) > 0 {
		attrs = append(attrs, names[0])
	}
	return attrs
}

// disturb applies k random applicable operators to q*.
func disturb(g *graph.Graph, qstar *query.Query, k int, spec WhySpec, rng *rand.Rand) (*query.Query, ops.Sequence, bool) {
	params := ops.Params{MaxBound: spec.MaxBound}
	q := qstar.Clone()
	var seq ops.Sequence
	for len(seq) < k {
		o, ok := randomOp(g, q, spec, rng)
		if !ok {
			break
		}
		if !o.Applicable(q, params) {
			continue
		}
		q2, err := o.Apply(q)
		if err != nil {
			continue
		}
		q = q2
		seq = append(seq, o)
	}
	if len(seq) == 0 {
		return nil, nil, false
	}
	return q, seq, true
}

// randomOp draws one disturbance operator. Refinements dominate unless
// RelaxOnly: hiding answers is what creates Why-questions.
func randomOp(g *graph.Graph, q *query.Query, spec WhySpec, rng *rand.Rand) (ops.Op, bool) {
	for tries := 0; tries < 40; tries++ {
		refine := !spec.RelaxOnly && (spec.RefineOnly || rng.Intn(4) != 0)
		if refine {
			if o, ok := randomRefine(g, q, spec, rng); ok {
				return o, true
			}
			continue
		}
		if o, ok := randomRelax(g, q, spec, rng); ok {
			return o, true
		}
	}
	return ops.Op{}, false
}

func randomRefine(g *graph.Graph, q *query.Query, spec WhySpec, rng *rand.Rand) (ops.Op, bool) {
	switch rng.Intn(3) {
	case 0: // RfL: tighten a numeric literal past a random domain value
		u := query.NodeID(rng.Intn(len(q.Nodes)))
		for _, l := range q.Nodes[u].Literals {
			if l.Val.Kind != graph.Number {
				continue
			}
			dom := g.ActiveDomain(l.Attr)
			if dom.Numbers < 2 {
				continue
			}
			v := dom.Values[rng.Intn(len(dom.Values))]
			if v.Kind != graph.Number {
				continue
			}
			switch l.Op {
			case graph.GE, graph.GT:
				if v.Num > l.Val.Num {
					return ops.Op{Kind: ops.RfL, U: u, Lit: l,
						NewLit: query.Literal{Attr: l.Attr, Op: graph.GE, Val: v}}, true
				}
			case graph.LE, graph.LT:
				if v.Num < l.Val.Num {
					return ops.Op{Kind: ops.RfL, U: u, Lit: l,
						NewLit: query.Literal{Attr: l.Attr, Op: graph.LE, Val: v}}, true
				}
			}
		}
	case 1: // AddL: equality on a random attribute value of a random candidate
		u := query.NodeID(rng.Intn(len(q.Nodes)))
		cands := q.Candidates(g, u)
		if len(cands) == 0 {
			return ops.Op{}, false
		}
		c := cands[rng.Intn(len(cands))]
		tuple := g.Tuple(c)
		if len(tuple) == 0 {
			return ops.Op{}, false
		}
		av := tuple[rng.Intn(len(tuple))]
		return ops.Op{Kind: ops.AddL, U: u,
			Lit: query.Literal{Attr: g.Attrs.Name(av.Attr), Op: graph.EQ, Val: av.Val}}, true
	default: // RfE: tighten an edge bound
		if len(q.Edges) == 0 {
			return ops.Op{}, false
		}
		e := q.Edges[rng.Intn(len(q.Edges))]
		if e.Bound > 1 {
			return ops.Op{Kind: ops.RfE, U: e.From, U2: e.To, Bound: e.Bound, NewBound: e.Bound - 1}, true
		}
	}
	return ops.Op{}, false
}

func randomRelax(g *graph.Graph, q *query.Query, spec WhySpec, rng *rand.Rand) (ops.Op, bool) {
	switch rng.Intn(3) {
	case 0: // RmL
		u := query.NodeID(rng.Intn(len(q.Nodes)))
		if lits := q.Nodes[u].Literals; len(lits) > 0 {
			return ops.Op{Kind: ops.RmL, U: u, Lit: lits[rng.Intn(len(lits))]}, true
		}
	case 1: // RxL: loosen a numeric literal
		u := query.NodeID(rng.Intn(len(q.Nodes)))
		for _, l := range q.Nodes[u].Literals {
			if l.Val.Kind != graph.Number {
				continue
			}
			dom := g.ActiveDomain(l.Attr)
			v := dom.Values[rng.Intn(max(1, len(dom.Values)))]
			if v.Kind != graph.Number {
				continue
			}
			switch l.Op {
			case graph.GE, graph.GT:
				if v.Num < l.Val.Num {
					return ops.Op{Kind: ops.RxL, U: u, Lit: l,
						NewLit: query.Literal{Attr: l.Attr, Op: graph.GE, Val: v}}, true
				}
			case graph.LE, graph.LT:
				if v.Num > l.Val.Num {
					return ops.Op{Kind: ops.RxL, U: u, Lit: l,
						NewLit: query.Literal{Attr: l.Attr, Op: graph.LE, Val: v}}, true
				}
			}
		}
	default: // RxE or RmE
		if len(q.Edges) == 0 {
			return ops.Op{}, false
		}
		e := q.Edges[rng.Intn(len(q.Edges))]
		if e.Bound < spec.MaxBound && rng.Intn(2) == 0 {
			return ops.Op{Kind: ops.RxE, U: e.From, U2: e.To, Bound: e.Bound, NewBound: e.Bound + 1}, true
		}
		if len(q.Edges) > 1 {
			return ops.Op{Kind: ops.RmE, U: e.From, U2: e.To, Bound: e.Bound}, true
		}
	}
	return ops.Op{}, false
}

func diffNodes(a, b []graph.NodeID) []graph.NodeID {
	inB := make(map[graph.NodeID]bool, len(b))
	for _, v := range b {
		inB[v] = true
	}
	var out []graph.NodeID
	for _, v := range a {
		if !inB[v] {
			out = append(out, v)
		}
	}
	return out
}

func containsNode(s []graph.NodeID, v graph.NodeID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
