package datagen

import (
	"fmt"
	"math/rand"

	"wqe/internal/graph"
)

// Dataset names used throughout the experiment harness.
const (
	DatasetKnowledge = "dbpedia-like"
	DatasetMovies    = "imdb-like"
	DatasetOffshore  = "offshore-like"
	DatasetProducts  = "watdiv-like"
)

// Generate builds the named dataset at roughly n nodes with a seeded
// generator.
func Generate(name string, n int, seed int64) (*graph.Graph, error) {
	switch name {
	case DatasetKnowledge:
		return Knowledge(n, seed), nil
	case DatasetMovies:
		return Movies(n, seed), nil
	case DatasetOffshore:
		return Offshore(n, seed), nil
	case DatasetProducts:
		return Products(n, seed), nil
	}
	return nil, fmt.Errorf("datagen: unknown dataset %q", name)
}

// AllDatasets lists the four dataset analogs in the paper's order.
func AllDatasets() []string {
	return []string{DatasetKnowledge, DatasetMovies, DatasetOffshore, DatasetProducts}
}

// zipfIdx draws an index in [0, n) with a heavy head (≈ 1/(i+1) mass),
// matching the label/degree skew of real knowledge graphs.
func zipfIdx(rng *rand.Rand, n int) int {
	if n <= 1 {
		return 0
	}
	// Inverse-CDF on the harmonic distribution, approximated by
	// exponentiating a uniform draw.
	u := rng.Float64()
	idx := int(float64(n) * u * u * u)
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// prefAttach draws an edge endpoint with preferential attachment from
// the running endpoint multiset; with probability eps it draws
// uniformly instead (keeps the tail connected).
func prefAttach(rng *rand.Rand, ends []graph.NodeID, numNodes int, eps float64) graph.NodeID {
	if len(ends) == 0 || rng.Float64() < eps {
		return graph.NodeID(rng.Intn(numNodes))
	}
	return ends[rng.Intn(len(ends))]
}

// Knowledge builds the DBpedia analog: a power-law multigraph with many
// labels and ~9 attributes per node drawn from per-label schemas.
func Knowledge(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	labelCount := n / 400
	if labelCount < 20 {
		labelCount = 20
	}
	if labelCount > 120 {
		labelCount = 120
	}

	// Shared attribute pool; each label uses a contiguous window of it,
	// so labels share some attributes (as DBpedia types do).
	const attrPool = 40
	attrName := func(i int) string { return fmt.Sprintf("attr%02d", i%attrPool) }
	catValues := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}

	for i := 0; i < n; i++ {
		li := zipfIdx(rng, labelCount)
		label := fmt.Sprintf("Type%02d", li)
		nAttrs := 6 + rng.Intn(4) // 6..9
		attrs := make(map[string]graph.Value, nAttrs)
		for a := 0; a < nAttrs; a++ {
			name := attrName(li*3 + a)
			if a%3 == 2 {
				attrs[name] = graph.S(catValues[rng.Intn(len(catValues))])
			} else {
				// Label-specific numeric range so active domains differ.
				base := float64(li * 100)
				attrs[name] = graph.N(base + float64(rng.Intn(1000)))
			}
		}
		g.AddNode(label, attrs)
	}

	relations := []string{"linksTo", "relatedTo", "partOf", "locatedIn", "knows"}
	m := 3 * n
	var ends []graph.NodeID
	for i := 0; i < m; i++ {
		src := graph.NodeID(rng.Intn(n))
		dst := prefAttach(rng, ends, n, 0.2)
		if src == dst {
			continue
		}
		g.AddEdge(src, dst, relations[rng.Intn(len(relations))])
		ends = append(ends, src, dst)
	}
	return g
}

// Movies builds the IMDB analog: movies, people, genres, and studios
// with ~6 attributes and hub actors.
func Movies(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	nMovies := n * 45 / 100
	nActors := n * 35 / 100
	nDirectors := n * 10 / 100
	nStudios := n * 5 / 100
	nGenres := 18

	genres := make([]graph.NodeID, nGenres)
	for i := range genres {
		genres[i] = g.AddNode("Genre", map[string]graph.Value{
			"Name": graph.S(fmt.Sprintf("genre-%02d", i)),
		})
	}
	studios := make([]graph.NodeID, nStudios)
	for i := range studios {
		studios[i] = g.AddNode("Studio", map[string]graph.Value{
			"Name":    graph.S(fmt.Sprintf("studio-%03d", i)),
			"Founded": graph.N(float64(1900 + rng.Intn(120))),
		})
	}
	movies := make([]graph.NodeID, nMovies)
	for i := range movies {
		movies[i] = g.AddNode("Movie", map[string]graph.Value{
			"Title":   graph.S(fmt.Sprintf("movie-%05d", i)),
			"Year":    graph.N(float64(1950 + rng.Intn(74))),
			"Rating":  graph.N(float64(rng.Intn(100)) / 10),
			"Votes":   graph.N(float64(rng.Intn(1000000))),
			"Runtime": graph.N(float64(60 + rng.Intn(120))),
			"Budget":  graph.N(float64(rng.Intn(200000000))),
		})
		g.AddEdge(movies[i], genres[zipfIdx(rng, nGenres)], "hasGenre")
		if nStudios > 0 {
			g.AddEdge(studios[zipfIdx(rng, nStudios)], movies[i], "produced")
		}
	}
	for i := 0; i < nActors; i++ {
		a := g.AddNode("Actor", map[string]graph.Value{
			"Name":       graph.S(fmt.Sprintf("actor-%05d", i)),
			"BirthYear":  graph.N(float64(1930 + rng.Intn(80))),
			"Popularity": graph.N(float64(rng.Intn(100))),
		})
		roles := 1 + zipfIdx(rng, 8) // hub actors act in many movies
		for r := 0; r <= roles && nMovies > 0; r++ {
			g.AddEdge(a, movies[rng.Intn(nMovies)], "actedIn")
		}
	}
	for i := 0; i < nDirectors; i++ {
		d := g.AddNode("Director", map[string]graph.Value{
			"Name":      graph.S(fmt.Sprintf("director-%04d", i)),
			"BirthYear": graph.N(float64(1930 + rng.Intn(70))),
			"Awards":    graph.N(float64(rng.Intn(20))),
		})
		for r := 0; r <= rng.Intn(4) && nMovies > 0; r++ {
			g.AddEdge(d, movies[rng.Intn(nMovies)], "directed")
		}
	}
	return g
}

// Offshore builds the ICIJ Offshore analog: entities, officers,
// intermediaries, addresses, and jurisdictions with sparse temporal
// attributes.
func Offshore(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	nEntities := n * 45 / 100
	nOfficers := n * 30 / 100
	nInterm := n * 10 / 100
	nAddresses := n * 14 / 100
	nCountries := 40

	statuses := []string{"Active", "Defaulted", "Dissolved", "Struck"}

	countries := make([]graph.NodeID, nCountries)
	for i := range countries {
		countries[i] = g.AddNode("Country", map[string]graph.Value{
			"Name": graph.S(fmt.Sprintf("country-%02d", i)),
			"Code": graph.N(float64(i)),
		})
	}
	addresses := make([]graph.NodeID, nAddresses)
	for i := range addresses {
		addresses[i] = g.AddNode("Address", map[string]graph.Value{
			"Street": graph.S(fmt.Sprintf("street-%04d", i)),
			"Zip":    graph.N(float64(10000 + rng.Intn(90000))),
		})
		g.AddEdge(addresses[i], countries[zipfIdx(rng, nCountries)], "inCountry")
	}
	entities := make([]graph.NodeID, nEntities)
	for i := range entities {
		inc := 1975 + rng.Intn(40)
		attrs := map[string]graph.Value{
			"Name":        graph.S(fmt.Sprintf("entity-%05d", i)),
			"IncorpYear":  graph.N(float64(inc)),
			"Status":      graph.S(statuses[rng.Intn(len(statuses))]),
			"Shareholder": graph.N(float64(rng.Intn(50))),
		}
		if rng.Intn(3) == 0 {
			attrs["CloseYear"] = graph.N(float64(inc + rng.Intn(30)))
		}
		entities[i] = g.AddNode("Entity", attrs)
		if nAddresses > 0 {
			g.AddEdge(entities[i], addresses[rng.Intn(nAddresses)], "registeredAt")
		}
		g.AddEdge(entities[i], countries[zipfIdx(rng, nCountries)], "jurisdiction")
	}
	for i := 0; i < nOfficers; i++ {
		o := g.AddNode("Officer", map[string]graph.Value{
			"Name":  graph.S(fmt.Sprintf("officer-%05d", i)),
			"Since": graph.N(float64(1980 + rng.Intn(40))),
		})
		for r := 0; r <= zipfIdx(rng, 5) && nEntities > 0; r++ {
			g.AddEdge(o, entities[rng.Intn(nEntities)], "officerOf")
		}
	}
	for i := 0; i < nInterm; i++ {
		m := g.AddNode("Intermediary", map[string]graph.Value{
			"Name":   graph.S(fmt.Sprintf("intermediary-%04d", i)),
			"Volume": graph.N(float64(rng.Intn(10000))),
		})
		for r := 0; r <= 1+zipfIdx(rng, 10) && nEntities > 0; r++ {
			g.AddEdge(m, entities[rng.Intn(nEntities)], "arranged")
		}
	}
	return g
}

// Products builds the WatDiv analog: an e-commerce purchase graph with
// users, products, retailers, reviews, and categories.
func Products(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	nProducts := n * 35 / 100
	nUsers := n * 25 / 100
	nReviews := n * 25 / 100
	nRetailers := n * 5 / 100
	nCategories := 24
	nBrands := 30

	categories := make([]graph.NodeID, nCategories)
	for i := range categories {
		categories[i] = g.AddNode("Category", map[string]graph.Value{
			"Name": graph.S(fmt.Sprintf("category-%02d", i)),
		})
	}
	brands := make([]graph.NodeID, nBrands)
	for i := range brands {
		brands[i] = g.AddNode("Brand", map[string]graph.Value{
			"Name":    graph.S(fmt.Sprintf("brand-%02d", i)),
			"Founded": graph.N(float64(1950 + rng.Intn(70))),
		})
	}
	products := make([]graph.NodeID, nProducts)
	for i := range products {
		products[i] = g.AddNode("Product", map[string]graph.Value{
			"Name":   graph.S(fmt.Sprintf("product-%05d", i)),
			"Price":  graph.N(float64(5 + rng.Intn(1500))),
			"Rating": graph.N(float64(rng.Intn(50)) / 10),
			"Stock":  graph.N(float64(rng.Intn(500))),
			"Year":   graph.N(float64(2005 + rng.Intn(20))),
		})
		g.AddEdge(products[i], categories[zipfIdx(rng, nCategories)], "inCategory")
		g.AddEdge(products[i], brands[zipfIdx(rng, nBrands)], "brandedBy")
	}
	retailers := make([]graph.NodeID, nRetailers)
	for i := range retailers {
		retailers[i] = g.AddNode("Retailer", map[string]graph.Value{
			"Name":     graph.S(fmt.Sprintf("retailer-%03d", i)),
			"Discount": graph.N(float64(5 * rng.Intn(7))),
			"Ships":    graph.N(float64(1 + rng.Intn(14))),
		})
		listings := 4 + zipfIdx(rng, 40)
		for l := 0; l < listings && nProducts > 0; l++ {
			g.AddEdge(retailers[i], products[rng.Intn(nProducts)], "sells")
		}
	}
	users := make([]graph.NodeID, nUsers)
	for i := range users {
		users[i] = g.AddNode("User", map[string]graph.Value{
			"Name": graph.S(fmt.Sprintf("user-%05d", i)),
			"Age":  graph.N(float64(18 + rng.Intn(60))),
		})
		for p := 0; p <= zipfIdx(rng, 6) && nProducts > 0; p++ {
			g.AddEdge(users[i], products[rng.Intn(nProducts)], "purchased")
		}
	}
	for i := 0; i < nReviews; i++ {
		r := g.AddNode("Review", map[string]graph.Value{
			"Score":   graph.N(float64(1 + rng.Intn(5))),
			"Helpful": graph.N(float64(rng.Intn(200))),
		})
		if nUsers > 0 {
			g.AddEdge(users[rng.Intn(nUsers)], r, "wrote")
		}
		if nProducts > 0 {
			g.AddEdge(r, products[rng.Intn(nProducts)], "reviews")
		}
	}
	return g
}
