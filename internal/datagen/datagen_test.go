package datagen

import (
	"math/rand"
	"testing"

	"wqe/internal/distindex"
	"wqe/internal/graph"
	"wqe/internal/match"
	"wqe/internal/ops"
	"wqe/internal/query"
)

func TestGenerateDatasets(t *testing.T) {
	for _, name := range AllDatasets() {
		name := name
		t.Run(name, func(t *testing.T) {
			g, err := Generate(name, 2000, 1)
			if err != nil {
				t.Fatal(err)
			}
			n := g.NumNodes()
			if n < 1000 || n > 3000 {
				t.Errorf("node count %d far from requested 2000", n)
			}
			if g.NumEdges() < n/2 {
				t.Errorf("suspiciously few edges: %d", g.NumEdges())
			}
			if g.Labels.Len() < 3 {
				t.Error("dataset should have several labels")
			}
			// Some nodes must carry attributes.
			attrs := 0
			for i := 0; i < n; i++ {
				attrs += len(g.Tuple(graph.NodeID(i)))
			}
			if attrs < n {
				t.Errorf("only %d attribute values over %d nodes", attrs, n)
			}
		})
	}
	if _, err := Generate("nope", 100, 1); err == nil {
		t.Error("unknown dataset name must error")
	}
}

// TestGenerateDeterminism: the same seed must produce the identical
// graph (experiments depend on reproducibility).
func TestGenerateDeterminism(t *testing.T) {
	for _, name := range AllDatasets() {
		a, _ := Generate(name, 800, 42)
		b, _ := Generate(name, 800, 42)
		if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
			t.Fatalf("%s: sizes differ across runs", name)
		}
		for i := 0; i < a.NumNodes(); i++ {
			v := graph.NodeID(i)
			if a.Label(v) != b.Label(v) {
				t.Fatalf("%s: labels differ at node %d", name, i)
			}
			ta, tb := a.Tuple(v), b.Tuple(v)
			if len(ta) != len(tb) {
				t.Fatalf("%s: tuples differ at node %d", name, i)
			}
			for j := range ta {
				if !ta[j].Val.Equal(tb[j].Val) {
					t.Fatalf("%s: attr values differ at node %d", name, i)
				}
			}
			if len(a.Out(v)) != len(b.Out(v)) {
				t.Fatalf("%s: adjacency differs at node %d", name, i)
			}
		}
		c, _ := Generate(name, 800, 43)
		if c.NumEdges() == a.NumEdges() && c.NumNodes() == a.NumNodes() {
			// Sizes may coincide, but attribute streams should not.
			same := true
			for i := 0; i < a.NumNodes() && same; i++ {
				ta, tc := a.Tuple(graph.NodeID(i)), c.Tuple(graph.NodeID(i))
				if len(ta) != len(tc) {
					same = false
					break
				}
				for j := range ta {
					if !ta[j].Val.Equal(tc[j].Val) {
						same = false
						break
					}
				}
			}
			if same {
				t.Errorf("%s: different seeds produced identical graphs", name)
			}
		}
	}
}

// TestGenQueryWitness: generated queries carry a witness image that is
// a real match, so Q*(G) is never empty (the benchmark guarantee).
func TestGenQueryWitness(t *testing.T) {
	g := Products(2000, 7)
	m := match.NewMatcher(g, distindex.NewBFS(g), nil)
	rng := rand.New(rand.NewSource(3))
	generated := 0
	for trial := 0; trial < 60 && generated < 25; trial++ {
		spec := QuerySpec{
			Shape:         []query.Topology{query.TopoStar, query.TopoTree, query.TopoCyclic}[trial%3],
			Edges:         1 + trial%4,
			MaxPredicates: 2,
			PathEdgeProb:  0.3,
		}
		q, witness, ok := GenQuery(g, spec, rng)
		if !ok {
			continue
		}
		generated++
		if err := q.Validate(); err != nil {
			t.Fatalf("generated query invalid: %v", err)
		}
		res := m.Match(q)
		if len(res.Answer) == 0 {
			t.Fatalf("generated query has empty answer: %s", q)
		}
		if !res.Has(witness[q.Focus]) {
			t.Fatalf("witness focus image %d not in answer of %s", witness[q.Focus], q)
		}
		// Shape requirement (cyclic needs ≥3 edges by construction).
		if spec.Shape == query.TopoCyclic && q.Shape() != query.TopoCyclic {
			t.Errorf("requested cyclic, got %v: %s", q.Shape(), q)
		}
	}
	if generated < 15 {
		t.Fatalf("only %d queries generated", generated)
	}
}

func TestGenQueryFocusLabel(t *testing.T) {
	g := Products(1500, 9)
	rng := rand.New(rand.NewSource(5))
	found := 0
	for trial := 0; trial < 30; trial++ {
		q, _, ok := GenQuery(g, QuerySpec{Edges: 2, FocusLabel: "Product", MaxPredicates: 1}, rng)
		if !ok {
			continue
		}
		found++
		if q.Nodes[q.Focus].Label != "Product" {
			t.Fatalf("focus label = %q", q.Nodes[q.Focus].Label)
		}
	}
	if found == 0 {
		t.Fatal("no Product-focused queries generated")
	}
}

func TestGenQueryMinFocusPredicates(t *testing.T) {
	g := Movies(1500, 9)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		q, _, ok := GenQuery(g, QuerySpec{Edges: 2, MaxPredicates: 3, MinFocusPredicates: 2}, rng)
		if !ok {
			continue
		}
		if len(q.Nodes[q.Focus].Literals) < 2 {
			t.Fatalf("focus has %d predicates, want ≥ 2: %s", len(q.Nodes[q.Focus].Literals), q)
		}
	}
}

// TestGenWhyInvariants: generated Why-questions respect the paper's
// construction — the injected sequence is applicable, T is nonempty,
// and the exemplar matches the ground-truth answers it samples.
func TestGenWhyInvariants(t *testing.T) {
	g := Knowledge(2500, 11)
	m := match.NewMatcher(g, distindex.NewBFS(g), nil)
	rng := rand.New(rand.NewSource(13))
	params := ops.Params{MaxBound: 3}
	got := 0
	for trial := 0; trial < 40 && got < 10; trial++ {
		inst, ok := GenWhy(g, m, WhySpec{
			Query:      QuerySpec{Edges: 2, MaxPredicates: 2},
			DisturbOps: 4,
			MaxTuples:  5,
		}, rng)
		if !ok {
			continue
		}
		got++
		if len(inst.E.Tuples) == 0 || len(inst.E.Tuples) > 5 {
			t.Fatalf("|T| = %d out of range", len(inst.E.Tuples))
		}
		if len(inst.AnswerStar) == 0 {
			t.Fatal("ground truth answer empty")
		}
		// Replaying the injected sequence on Q* must yield Q.
		q2, err := inst.Injected.Apply(inst.Qstar, params)
		if err != nil {
			t.Fatalf("injected sequence not applicable: %v", err)
		}
		if q2.Key() != inst.Q.Key() {
			t.Fatal("injected sequence does not reproduce the disturbed query")
		}
		// The disturbance hid at least one desired answer.
		missing := diffNodes(inst.AnswerStar, inst.Answer)
		if len(missing) == 0 {
			t.Fatal("nothing went missing; not a why-not question")
		}
	}
	if got < 5 {
		t.Fatalf("only %d instances generated", got)
	}
}

func TestGenWhyRelaxOnly(t *testing.T) {
	g := Offshore(2500, 17)
	m := match.NewMatcher(g, distindex.NewBFS(g), nil)
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 30; trial++ {
		inst, ok := GenWhy(g, m, WhySpec{
			Query:      QuerySpec{Edges: 2, MaxPredicates: 3},
			DisturbOps: 2,
			MaxTuples:  5,
			RelaxOnly:  true,
		}, rng)
		if !ok {
			continue
		}
		for _, o := range inst.Injected {
			if !o.Kind.IsRelax() {
				t.Fatalf("RelaxOnly produced %s", o)
			}
		}
		return
	}
	t.Skip("no relax-only instance generated on this seed")
}

func TestFig1Deterministic(t *testing.T) {
	a, b := NewFig1(), NewFig1()
	if a.G.NumNodes() != b.G.NumNodes() || a.Q.Key() != b.Q.Key() {
		t.Error("Fig1 must be deterministic")
	}
	if len(a.Phones) != 6 || len(a.Carriers) != 3 {
		t.Error("Fig1 handles incomplete")
	}
}

func TestTupleAttrs(t *testing.T) {
	g := Products(1000, 21)
	q := query.New()
	u := q.AddNode("Product",
		query.Literal{Attr: "Price", Op: graph.GE, Val: graph.N(100)},
		query.Literal{Attr: "Rating", Op: graph.GE, Val: graph.N(3)},
	)
	q.Focus = u
	attrs := TupleAttrs(g, q)
	if len(attrs) != 2 || attrs[0] != "Price" || attrs[1] != "Rating" {
		t.Errorf("TupleAttrs should echo the focus predicate attrs, got %v", attrs)
	}
	// Without focus literals: falls back to low-cardinality attributes.
	q2 := query.New()
	q2.Focus = q2.AddNode("Product")
	fallback := TupleAttrs(g, q2)
	if len(fallback) == 0 {
		t.Error("fallback attrs empty")
	}
}
