// Package anscache is the serving-path answer memo: a bounded,
// sharded-stripe cache with singleflight request coalescing, keyed by a
// caller-supplied canonical digest. Production why-question traffic is
// highly repetitive — the same exemplar pairs get asked against the
// same resident graph — so the single biggest serving win is to stop
// recomputing identical chases: N concurrent identical requests execute
// exactly one compute and all receive the same value, and finished
// answers stay resident for later identical requests.
//
// The synchronization discipline is inherited from the star-view cache
// in internal/match: keys hash (FNV-1a) onto a power-of-two number of
// shards, each shard owns its own mutex, logical tick clock, entry map,
// and in-flight singleflight table, eviction removes the least-hit
// entry of the full shard with ties broken on the smallest key (fully
// deterministic), and a panicking compute never wedges its waiters —
// the failed flight wakes them and the first retrier becomes the new
// owner, so waiters only ever inherit a panic from their own compute
// attempt.
//
// Statistics live in atomic counters (hits, misses, coalesced waits,
// evictions, size, invalidations) so snapshots never take a shard lock.
package anscache

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// maxDecayAge caps the closed-form hit-decay exponent exactly as the
// star-view cache does: past it, decay^age underflows any meaningful
// hit mass, so the count flushes outright.
const maxDecayAge = 1 << 12

// decay is the per-tick hit decay factor. Matching internal/match's
// default keeps the two caches' eviction temperament identical.
const decay = 0.95

// Outcome classifies one GetOrCompute call.
type Outcome uint8

// GetOrCompute outcomes.
const (
	// Hit: the value was resident; no compute ran.
	Hit Outcome = iota
	// Miss: this caller ran the compute (and possibly stored the value).
	Miss
	// Coalesced: an identical request was already in flight; this caller
	// waited on it and shares its value — no second compute ran.
	Coalesced
)

// Cache is a sharded answer memo holding values of type V. V should be
// treated as immutable once stored: every hit and every coalesced
// waiter receives the same value.
type Cache[V any] struct {
	// shards has power-of-two length; mask == len(shards)-1.
	shards []shard[V]
	mask   uint32

	hits          atomic.Int64
	misses        atomic.Int64
	coalesced     atomic.Int64
	evictions     atomic.Int64
	size          atomic.Int64
	invalidations atomic.Int64
}

// shard is one stripe: an independent decaying map with its own lock,
// logical clock, generation counter, and singleflight table.
type shard[V any] struct {
	cap int // immutable after construction

	// mu guards every mutable field below.
	mu       sync.Mutex
	tick     int64                // guarded by mu
	gen      int64                // guarded by mu; bumped by InvalidateAll
	entries  map[string]*entry[V] // guarded by mu
	inflight map[string]*flight[V]
}

type entry[V any] struct {
	val      V
	hits     float64
	lastTick int64
}

// flight is one in-progress compute other callers can wait on. val and
// failed are written exactly once, before done is closed; waiters read
// them only after <-done, so the handoff is race-free without a lock.
// failed marks a compute that panicked: its waiters must not trust val
// and instead retry with a fresh flight.
type flight[V any] struct {
	done   chan struct{}
	val    V
	failed bool
}

// defaultShards mirrors match.DefaultShards: nextPow2(4×GOMAXPROCS).
func defaultShards() int {
	return nextPow2(4 * runtime.GOMAXPROCS(0))
}

// nextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// New returns a cache holding at most capacity values, striped over
// shards stripes (0 means auto: nextPow2(4×GOMAXPROCS); other values
// round up to a power of two). Capacity splits as capacity/N per shard
// with the remainder to the low shards, floor one entry per shard, so
// the effective total capacity is max(capacity, N).
func New[V any](capacity, shards int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	if shards <= 0 {
		shards = defaultShards()
	}
	shards = nextPow2(shards)
	c := &Cache[V]{
		shards: make([]shard[V], shards),
		mask:   uint32(shards - 1),
	}
	base, rem := capacity/shards, capacity%shards
	for i := range c.shards {
		sc := base
		if i < rem {
			sc++
		}
		if sc < 1 {
			sc = 1
		}
		c.shards[i] = shard[V]{
			cap:      sc,
			entries:  map[string]*entry[V]{},
			inflight: map[string]*flight[V]{},
		}
	}
	return c
}

// Shards returns the cache's shard count (a power of two).
func (c *Cache[V]) Shards() int { return len(c.shards) }

// Len returns the number of resident values, from the atomic size
// counter — it never takes a shard lock.
func (c *Cache[V]) Len() int { return int(c.size.Load()) }

// shardFor maps a key onto its owning shard with inlined 32-bit FNV-1a
// (the hash/fnv wrapper would allocate a hasher per lookup).
func (c *Cache[V]) shardFor(key string) *shard[V] {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return &c.shards[h&c.mask]
}

// lookupState is the locked phase's verdict.
type lookupState uint8

const (
	lookupHit lookupState = iota
	lookupWait
	lookupOwner
)

// GetOrCompute returns the value for key, running compute on a miss.
// Concurrent callers missing on the same key share one compute: the
// first caller runs it (outside any cache lock), the rest block until
// it finishes and return the same value with Outcome Coalesced.
// compute's second return value says whether the result should be
// stored (false keeps it a pure pass-through — e.g. an errored answer
// is still delivered to every coalesced waiter but never memoized).
//
// A panicking compute does not poison the key: the failed flight wakes
// its waiters, which race for a fresh flight (the first retrier becomes
// the new owner), while the panic continues to the compute's own
// caller. Exactly one of the three outcomes is counted per call.
func (c *Cache[V]) GetOrCompute(key string, compute func() (V, bool)) (V, Outcome) {
	s := c.shardFor(key)
	for {
		v, f, gen, state := s.lookup(key)
		switch state {
		case lookupHit:
			c.hits.Add(1)
			return v, Hit
		case lookupOwner:
			c.misses.Add(1)
			return s.runFlight(c, key, gen, f, compute), Miss
		default:
			<-f.done
			if !f.failed {
				c.coalesced.Add(1)
				return f.val, Coalesced
			}
			// The owner panicked; race for a fresh flight.
		}
	}
}

// lookup is GetOrCompute's locked phase: a hit returns the value; a
// miss returns the flight to wait on, or a freshly registered flight
// (plus the shard generation it must commit against) when this caller
// must run the compute.
func (s *shard[V]) lookup(key string) (v V, f *flight[V], gen int64, state lookupState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tick++
	if e, ok := s.entries[key]; ok {
		s.bumpLocked(e)
		return e.val, nil, 0, lookupHit
	}
	if in, ok := s.inflight[key]; ok {
		return v, in, 0, lookupWait
	}
	f = &flight[V]{done: make(chan struct{})}
	s.inflight[key] = f
	return v, f, s.gen, lookupOwner
}

// runFlight executes one singleflight compute (outside the shard lock)
// and publishes its outcome: on success the flight resolves to the
// value and — if compute said to store it and no InvalidateAll ran
// since the flight registered — the entry is inserted; on panic the
// deferred handler marks the flight failed, closes it, and deletes the
// in-flight entry, waking every waiter, before the panic continues to
// the caller.
func (s *shard[V]) runFlight(c *Cache[V], key string, gen int64, f *flight[V], compute func() (V, bool)) V {
	committed := false
	defer func() {
		if committed {
			return
		}
		f.failed = true
		close(f.done)
		s.mu.Lock()
		delete(s.inflight, key)
		s.mu.Unlock()
	}()

	v, store := compute()

	f.val = v
	close(f.done)
	s.mu.Lock()
	delete(s.inflight, key)
	s.tick++
	// The generation check is the InvalidateAll seam: a flight that
	// started before an invalidation must not re-seed the cleared map
	// with a stale answer. Its waiters still receive the value — they
	// joined a computation that began under the old state — but the
	// memo stays empty for requests arriving after the invalidation.
	if store && s.gen == gen {
		s.putLocked(c, key, v)
	}
	s.mu.Unlock()
	committed = true
	return v
}

// bumpLocked applies the closed-form time decay then counts one hit
// (see match.Cache.bumpLocked for why the closed form matters). The
// caller must hold s.mu.
func (s *shard[V]) bumpLocked(e *entry[V]) {
	if age := s.tick - e.lastTick; age > maxDecayAge {
		e.hits = 0
	} else if age > 0 {
		e.hits *= math.Pow(decay, float64(age))
	}
	e.hits++
	e.lastTick = s.tick
}

// putLocked inserts or refreshes an entry, evicting the shard's
// least-hit entry when the shard is full. Ties break on the smallest
// key so eviction is deterministic: identical request streams leave
// identical cache contents. The caller must hold s.mu.
func (s *shard[V]) putLocked(c *Cache[V], key string, v V) {
	if e, ok := s.entries[key]; ok {
		e.val = v
		s.bumpLocked(e)
		return
	}
	if len(s.entries) >= s.cap {
		s.evictWorstLocked(c)
	}
	s.entries[key] = &entry[V]{val: v, hits: 1, lastTick: s.tick}
	c.size.Add(1)
}

// evictWorstLocked evicts the least-hit entry, ties broken on the
// smallest key. The caller must hold s.mu.
func (s *shard[V]) evictWorstLocked(c *Cache[V]) {
	worstKey := ""
	worst := 0.0
	first := true
	//lint:ignore detsource eviction scans the whole shard map and tie-breaks on smallest key, so order cannot matter
	for k, e := range s.entries {
		switch {
		case first:
			worstKey, worst, first = k, e.hits, false
		case e.hits < worst:
			worstKey, worst = k, e.hits
		case e.hits > worst:
		case k < worstKey: // equal hits: smallest key loses
			worstKey = k
		}
	}
	if first {
		return
	}
	delete(s.entries, worstKey)
	c.size.Add(-1)
	c.evictions.Add(1)
}

// InvalidateAll drops every resident value and bumps each shard's
// generation so in-flight computes cannot re-seed the map with stale
// answers. This is the seam the dynamic-graphs work will call on every
// mutation batch: a graph update invalidates all memoized answers at
// once, and the next identical request recomputes against the new
// state. In-flight waiters still receive their flight's value — they
// joined a computation that began before the invalidation.
func (c *Cache[V]) InvalidateAll() {
	dropped := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.gen++
		dropped += len(s.entries)
		s.entries = map[string]*entry[V]{}
		s.mu.Unlock()
	}
	c.size.Add(int64(-dropped))
	c.invalidations.Add(1)
}

// Counters is the cache's full atomic counter set, snapshot lock-free.
// Hits+Misses+Coalesced equals the number of completed GetOrCompute
// calls (a panicking compute counts its Miss but delivers no value).
// Size is the current resident entry count; the rest are cumulative.
type Counters struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Coalesced     int64 `json:"coalesced"`
	Evictions     int64 `json:"evictions"`
	Size          int64 `json:"size"`
	Invalidations int64 `json:"invalidations"`
}

// Counters snapshots every counter without taking a shard lock. Like
// the star-view cache's snapshot, it is per-counter exact but not a
// cross-counter instant under concurrent traffic.
func (c *Cache[V]) Counters() Counters {
	return Counters{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Coalesced:     c.coalesced.Load(),
		Evictions:     c.evictions.Load(),
		Size:          c.size.Load(),
		Invalidations: c.invalidations.Load(),
	}
}
