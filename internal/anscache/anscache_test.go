package anscache

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"wqe/internal/par"
)

// TestHitMissStore pins the basic memo contract: first access computes,
// second is a hit with the same value, and store=false keeps the value
// out of the memo.
func TestHitMissStore(t *testing.T) {
	c := New[string](8, 1)
	computes := 0
	get := func(key, val string, store bool) (string, Outcome) {
		return c.GetOrCompute(key, func() (string, bool) {
			computes++
			return val, store
		})
	}

	v, o := get("k", "answer", true)
	if v != "answer" || o != Miss || computes != 1 {
		t.Fatalf("first access: v=%q o=%v computes=%d", v, o, computes)
	}
	v, o = get("k", "SHOULD NOT RUN", true)
	if v != "answer" || o != Hit || computes != 1 {
		t.Fatalf("second access: v=%q o=%v computes=%d", v, o, computes)
	}

	v, o = get("err", "transient", false)
	if v != "transient" || o != Miss {
		t.Fatalf("unstored access: v=%q o=%v", v, o)
	}
	v, o = get("err", "recomputed", false)
	if v != "recomputed" || o != Miss || computes != 3 {
		t.Fatalf("unstored re-access: v=%q o=%v computes=%d (store=false must not memoize)", v, o, computes)
	}

	got := c.Counters()
	if got.Hits != 1 || got.Misses != 3 || got.Coalesced != 0 || got.Size != 1 {
		t.Fatalf("counters = %+v", got)
	}
}

// TestCoalescing: concurrent identical requests share exactly one
// compute and all receive the same value. The owner's compute blocks on
// a gate so the other callers pile up as waiters; whatever the
// interleaving, exactly one compute runs and every caller gets the
// owner's value (late arrivals after commit are hits, which is equally
// correct).
func TestCoalescing(t *testing.T) {
	c := New[int](8, 1)
	var computes atomic.Int64
	gate := make(chan struct{})
	entered := make(chan struct{})

	const K = 8
	vals := make([]int, K)
	var g par.Group
	for i := 0; i < K; i++ {
		i := i
		g.Go(func() {
			v, _ := c.GetOrCompute("q", func() (int, bool) {
				computes.Add(1)
				close(entered)
				<-gate
				return 42, true
			})
			vals[i] = v
		})
	}
	<-entered
	// Give the remaining callers time to reach the flight wait; the
	// strict assertions below hold for any interleaving regardless.
	time.Sleep(100 * time.Millisecond)
	close(gate)
	g.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("computes = %d, want exactly 1", n)
	}
	for i, v := range vals {
		if v != 42 {
			t.Fatalf("caller %d got %d, want 42", i, v)
		}
	}
	got := c.Counters()
	if got.Misses != 1 || got.Hits+got.Coalesced != K-1 {
		t.Fatalf("counters = %+v, want 1 miss and %d hits+coalesced", got, K-1)
	}
	if got.Coalesced < 1 {
		t.Fatalf("counters = %+v, want at least one coalesced waiter", got)
	}
}

// TestPanicSafety: a panicking compute propagates to its own caller,
// wakes the waiters, and the first retrier becomes the new owner — the
// key is never poisoned (the regression the star-view cache fixed in
// PR 5, inherited here).
func TestPanicSafety(t *testing.T) {
	c := New[int](8, 1)
	gate := make(chan struct{})
	entered := make(chan struct{})

	var g par.Group
	panicked := make(chan interface{}, 1)
	g.Go(func() {
		defer func() { panicked <- recover() }()
		c.GetOrCompute("q", func() (int, bool) {
			close(entered)
			<-gate
			panic("compute exploded")
		})
	})
	<-entered

	waiterDone := make(chan int, 1)
	g.Go(func() {
		v, _ := c.GetOrCompute("q", func() (int, bool) { return 7, true })
		waiterDone <- v
	})
	time.Sleep(50 * time.Millisecond)
	close(gate)

	if r := <-panicked; r != "compute exploded" {
		t.Fatalf("owner recover = %v, want its own panic", r)
	}
	select {
	case v := <-waiterDone:
		if v != 7 {
			t.Fatalf("waiter got %d, want 7 from its retry", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter wedged after owner panic — flight not cleaned up")
	}
	g.Wait()

	if v, o := c.GetOrCompute("q", func() (int, bool) { return -1, true }); v != 7 || o != Hit {
		t.Fatalf("after retry: v=%d o=%v, want resident 7", v, o)
	}
}

// TestEvictionDeterministic pins the smallest-key tie-break: with a
// full single-shard cache of equal-hit entries, inserting one more must
// evict the smallest key, and replaying the same sequence leaves the
// same residents.
func TestEvictionDeterministic(t *testing.T) {
	run := func() (evicted, kept Outcome) {
		c := New[int](2, 1)
		get := func(k string) Outcome {
			_, o := c.GetOrCompute(k, func() (int, bool) { return 1, true })
			return o
		}
		get("x")
		get("y")
		get("z") // full shard, x and y tied at one hit each: x (smallest) evicted
		if got := c.Counters(); got.Evictions != 1 || got.Size != 2 {
			t.Fatalf("counters after overflow = %+v", got)
		}
		// Probe the survivor first: probing the evicted key re-inserts it
		// and would evict the survivor before we checked it.
		kept = get("y")
		evicted = get("x")
		return evicted, kept
	}
	e1, k1 := run()
	e2, k2 := run()
	if e1 != Miss || k1 != Hit {
		t.Fatalf("after overflow: x=%v y=%v, want x evicted (Miss) and y resident (Hit)", e1, k1)
	}
	if e1 != e2 || k1 != k2 {
		t.Fatalf("replay diverged: (%v,%v) vs (%v,%v)", e1, k1, e2, k2)
	}
}

// TestInvalidateAll: resident answers drop, and a flight that started
// before the invalidation delivers its value to waiters but does not
// re-seed the cleared map (the dynamic-graphs seam).
func TestInvalidateAll(t *testing.T) {
	c := New[int](8, 1)
	c.GetOrCompute("old", func() (int, bool) { return 1, true })

	gate := make(chan struct{})
	entered := make(chan struct{})
	var g par.Group
	var flightVal int
	g.Go(func() {
		flightVal, _ = c.GetOrCompute("inflight", func() (int, bool) {
			close(entered)
			<-gate
			return 2, true
		})
	})
	<-entered

	c.InvalidateAll()
	if got := c.Counters(); got.Size != 0 || got.Invalidations != 1 {
		t.Fatalf("after invalidate: %+v", got)
	}

	close(gate)
	g.Wait()
	if flightVal != 2 {
		t.Fatalf("in-flight caller got %d, want its flight's value 2", flightVal)
	}
	// The stale flight must not have re-seeded the map.
	if _, o := c.GetOrCompute("inflight", func() (int, bool) { return 3, true }); o != Miss {
		t.Fatalf("post-invalidation access = %v, want Miss (stale flight must not commit)", o)
	}
	if _, o := c.GetOrCompute("old", func() (int, bool) { return 4, true }); o != Miss {
		t.Fatalf("old key after invalidation = %v, want Miss", o)
	}
}

// TestConcurrentStress hammers a small cache from many workers with
// overlapping keys, evictions, and periodic invalidations — the -race
// sweep for the stripe discipline. Every caller must get the value its
// key's compute produces.
func TestConcurrentStress(t *testing.T) {
	c := New[int](16, 4)
	const workers, iters, keys = 8, 500, 32
	par.ForEach(workers, workers, func(w int) {
		rng := rand.New(rand.NewSource(int64(w) + 1))
		for i := 0; i < iters; i++ {
			k := rng.Intn(keys)
			key := fmt.Sprintf("k%02d", k)
			v, _ := c.GetOrCompute(key, func() (int, bool) { return k * 10, true })
			if v != k*10 {
				t.Errorf("key %s got %d, want %d", key, v, k*10)
				return
			}
			if i%100 == 99 && w == 0 {
				c.InvalidateAll()
			}
		}
	})
	got := c.Counters()
	if got.Hits+got.Misses+got.Coalesced != workers*iters {
		t.Fatalf("outcome counters %+v don't sum to %d calls", got, workers*iters)
	}
	if got.Size > 16+4 { // cap may round up by shard floors only
		t.Fatalf("size %d exceeds capacity", got.Size)
	}
}
