// Package graphload opens attributed-graph files for the CLIs,
// accepting either on-disk format: the binary snapshot of
// internal/graph (recognized by its magic bytes) or graph JSON. A
// snapshot carrying embedded PLL labels also restores the distance
// index, so callers can hand it straight to
// chase.NewSessionWithIndex and skip index construction on cold start.
package graphload

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"time"

	"wqe/internal/distindex"
	"wqe/internal/graph"
)

// Source values reported in Result.Source.
const (
	SourceJSON     = "json"
	SourceSnapshot = "snapshot"
)

// sniffLen is how many leading bytes identify a snapshot (the magic).
const sniffLen = 8

// Result is one loaded graph plus the residency metadata a serving
// layer reports (/stats): where the graph came from and how long the
// load took.
type Result struct {
	G *graph.Graph
	// Index is the distance oracle restored from the snapshot's
	// embedded PLL labels; nil when the file carried none (callers
	// fall back to building one).
	Index distindex.Index
	// Source is SourceJSON or SourceSnapshot; SnapshotVersion is the
	// binary format version read (0 for JSON).
	Source          string
	SnapshotVersion uint32
	// Elapsed is the wall time spent reading and validating the file,
	// including PLL restoration when labels were embedded.
	Elapsed time.Duration
}

// PLLRestored reports whether the load restored a distance index from
// embedded labels instead of leaving construction to the caller.
func (r *Result) PLLRestored() bool { return r.Index != nil }

// Open loads the graph at path, sniffing the format from its leading
// bytes — no format flag needed.
func Open(path string) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return res, nil
}

// Read is Open over an arbitrary reader.
func Read(r io.Reader) (*Result, error) {
	start := time.Now()
	br := bufio.NewReaderSize(r, 1<<16)
	prefix, err := br.Peek(sniffLen)
	if err != nil && err != io.EOF {
		return nil, err
	}
	// A file shorter than the magic cannot be a snapshot; fall through
	// and let the JSON reader report what it is.
	if graph.SniffSnapshot(prefix) {
		snap, err := graph.ReadSnapshot(br)
		if err != nil {
			return nil, err
		}
		res := &Result{
			G:               snap.G,
			Source:          SourceSnapshot,
			SnapshotVersion: snap.Version,
		}
		if len(snap.Aux) > 0 {
			pll, err := distindex.UnmarshalPLL(snap.G, snap.Aux)
			if err != nil {
				return nil, fmt.Errorf("embedded PLL labels: %w", err)
			}
			res.Index = pll
		}
		res.Elapsed = time.Since(start)
		return res, nil
	}
	g, err := graph.ReadJSON(br)
	if err != nil {
		return nil, err
	}
	return &Result{G: g, Source: SourceJSON, Elapsed: time.Since(start)}, nil
}
