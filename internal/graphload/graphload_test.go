package graphload

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wqe/internal/datagen"
	"wqe/internal/distindex"
	"wqe/internal/graph"
)

// writeFixtures renders the Fig 1 graph in every on-disk format:
// JSON, bare snapshot, and snapshot with embedded PLL labels.
func writeFixtures(t *testing.T) (jsonPath, snapPath, pllPath string, g *graph.Graph) {
	t.Helper()
	g = datagen.NewFig1().G
	dir := t.TempDir()

	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	jsonPath = filepath.Join(dir, "g.json")
	if err := os.WriteFile(jsonPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	buf.Reset()
	if err := g.WriteSnapshot(&buf, nil); err != nil {
		t.Fatal(err)
	}
	snapPath = filepath.Join(dir, "g.snap")
	if err := os.WriteFile(snapPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	buf.Reset()
	if err := g.WriteSnapshot(&buf, distindex.NewPLL(g).Marshal()); err != nil {
		t.Fatal(err)
	}
	pllPath = filepath.Join(dir, "g.pll.snap")
	if err := os.WriteFile(pllPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return jsonPath, snapPath, pllPath, g
}

func TestOpenSniffsBothFormats(t *testing.T) {
	jsonPath, snapPath, pllPath, g := writeFixtures(t)

	jr, err := Open(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if jr.Source != SourceJSON || jr.SnapshotVersion != 0 || jr.PLLRestored() {
		t.Fatalf("JSON load metadata: %+v", jr)
	}
	if jr.G.NumNodes() != g.NumNodes() || jr.G.NumEdges() != g.NumEdges() {
		t.Fatalf("JSON load shape: %v, want %v", jr.G, g)
	}

	sr, err := Open(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Source != SourceSnapshot || sr.SnapshotVersion != graph.SnapshotVersion || sr.PLLRestored() {
		t.Fatalf("snapshot load metadata: %+v", sr)
	}
	if sr.G.NumNodes() != g.NumNodes() || sr.G.NumEdges() != g.NumEdges() {
		t.Fatalf("snapshot load shape: %v, want %v", sr.G, g)
	}

	pr, err := Open(pllPath)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.PLLRestored() {
		t.Fatal("embedded PLL labels not restored")
	}
	// The restored oracle answers distances over the restored graph.
	fresh := distindex.NewPLL(g)
	for u := 0; u < g.NumNodes(); u++ {
		for v := 0; v < g.NumNodes(); v++ {
			got := pr.Index.Dist(graph.NodeID(u), graph.NodeID(v))
			want := fresh.Dist(graph.NodeID(u), graph.NodeID(v))
			if got != want {
				t.Fatalf("restored Dist(%d,%d) = %d, want %d", u, v, got, want)
			}
		}
	}
}

func TestOpenRejectsCorruptEmbeddedPLL(t *testing.T) {
	g := datagen.NewFig1().G
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf, []byte("not a PLL blob, long enough to try")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bad.snap")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil || !strings.Contains(err.Error(), "PLL") {
		t.Fatalf("corrupt aux accepted: err=%v", err)
	}
}

func TestOpenErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	short := filepath.Join(dir, "short")
	if err := os.WriteFile(short, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(short); err == nil {
		t.Fatal("one-byte file accepted")
	}
	empty := filepath.Join(dir, "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(empty); err == nil {
		t.Fatal("empty file accepted")
	}
}
