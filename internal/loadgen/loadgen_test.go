package loadgen

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// stubServer counts requests per path and answers with the configured
// status per path (default 200).
type stubServer struct {
	mu     sync.Mutex
	counts map[string]int
	status map[string]int
}

func newStub() *stubServer {
	return &stubServer{counts: map[string]int{}, status: map[string]int{}}
}

func (s *stubServer) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	if _, err := io.Copy(io.Discard, r.Body); err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	s.mu.Lock()
	s.counts[r.URL.Path]++
	status := s.status[r.URL.Path]
	s.mu.Unlock()
	if status != 0 && status != http.StatusOK {
		http.Error(rw, "stub error", status)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	if _, err := rw.Write([]byte(`{"ok":true}` + "\n")); err != nil {
		return
	}
}

func (s *stubServer) count(path string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[path]
}

func testOptions(url string) Options {
	return Options{
		BaseURL:     url,
		Graph:       "g",
		Mix:         map[string]float64{"/ask": 3, "/why": 1},
		Pool:        Fig1Pool(),
		Clients:     4,
		Duration:    30 * time.Second, // MaxRequests stops the run first
		MaxRequests: 200,
		Seed:        7,
	}
}

// TestRunBasics drives the stub and checks the report's accounting:
// every issued request is recorded (no warmup here), the mix hits both
// endpoints with /ask dominating, counters balance, and quantiles are
// ordered and clamped.
func TestRunBasics(t *testing.T) {
	stub := newStub()
	ts := httptest.NewServer(stub)
	defer ts.Close()

	rep, err := Run(testOptions(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 200 {
		t.Fatalf("requests = %d, want exactly MaxRequests 200", rep.Requests)
	}
	if rep.ErrorRate != 0 || rep.Status["200"] != 200 {
		t.Fatalf("status accounting: rate=%v status=%v", rep.ErrorRate, rep.Status)
	}
	ask, why := rep.Endpoints["/ask"], rep.Endpoints["/why"]
	if ask.Count+why.Count != 200 {
		t.Fatalf("endpoint counts %d+%d don't sum to 200", ask.Count, why.Count)
	}
	if ask.Count <= why.Count {
		t.Errorf("mix ignored: /ask %d vs /why %d with 3:1 ratios", ask.Count, why.Count)
	}
	if int(ask.Count) != stub.count("/ask") || int(why.Count) != stub.count("/why") {
		t.Errorf("report counts (%d, %d) disagree with server (%d, %d)",
			ask.Count, why.Count, stub.count("/ask"), stub.count("/why"))
	}
	for ep, er := range map[string]EndpointReport{"/ask": ask, "/why": why} {
		if er.P50MS <= 0 || er.P50MS > er.P95MS || er.P95MS > er.P99MS || er.P99MS > er.MaxMS {
			t.Errorf("%s quantiles out of order: %+v", ep, er)
		}
	}
	if rep.AchievedRPS <= 0 {
		t.Errorf("achieved RPS = %v", rep.AchievedRPS)
	}
}

// TestRunDeterministicSampling: the same seed replays the same
// endpoint draws — with one client the per-endpoint counts are exact
// replicas across runs.
func TestRunDeterministicSampling(t *testing.T) {
	run := func() (int64, int64) {
		ts := httptest.NewServer(newStub())
		defer ts.Close()
		opt := testOptions(ts.URL)
		opt.Clients = 1
		opt.MaxRequests = 100
		rep, err := Run(opt)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Endpoints["/ask"].Count, rep.Endpoints["/why"].Count
	}
	a1, w1 := run()
	a2, w2 := run()
	if a1 != a2 || w1 != w2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", a1, w1, a2, w2)
	}
}

// TestRunErrorBreakdown: non-200 responses land in the status map and
// the per-endpoint error counts, and never in the latency histograms.
func TestRunErrorBreakdown(t *testing.T) {
	stub := newStub()
	stub.status["/why"] = http.StatusUnprocessableEntity
	ts := httptest.NewServer(stub)
	defer ts.Close()

	rep, err := Run(testOptions(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	why := rep.Endpoints["/why"]
	if why.Errors != why.Count || why.Count == 0 {
		t.Fatalf("/why errors = %d of %d, want all", why.Errors, why.Count)
	}
	if rep.Status["422"] != why.Count {
		t.Fatalf("status map: %v, want %d 422s", rep.Status, why.Count)
	}
	if why.MaxMS != 0 {
		t.Errorf("failed requests leaked into the latency histogram: %+v", why)
	}
	wantRate := float64(why.Count) / float64(rep.Requests)
	if rep.ErrorRate != wantRate {
		t.Errorf("error rate %v, want %v", rep.ErrorRate, wantRate)
	}
}

// TestRunWarmupExcluded: with MaxRequests only slightly above what the
// warmup window absorbs, recorded requests are strictly fewer than
// issued ones.
func TestRunWarmupExcluded(t *testing.T) {
	ts := httptest.NewServer(newStub())
	defer ts.Close()
	opt := testOptions(ts.URL)
	opt.Clients = 2
	opt.MaxRequests = 50
	opt.Warmup = 50 * time.Millisecond
	opt.Duration = 30 * time.Second
	rep, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests >= 50 {
		t.Fatalf("recorded %d of 50 issued — warmup window excluded nothing", rep.Requests)
	}
}

// TestRunPacer: a throttled run must not exceed its target rate by more
// than bucket slack.
func TestRunPacer(t *testing.T) {
	ts := httptest.NewServer(newStub())
	defer ts.Close()
	opt := testOptions(ts.URL)
	opt.TargetRPS = 100
	opt.MaxRequests = 60
	opt.Duration = 30 * time.Second
	start := time.Now()
	rep, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if rep.Requests != 60 {
		t.Fatalf("requests = %d", rep.Requests)
	}
	// 60 requests at 100 rps need ≥ ~590ms; unthrottled the stub would
	// serve them in a few ms.
	if elapsed < 500*time.Millisecond {
		t.Errorf("pacer did not throttle: 60 requests at 100 rps finished in %v", elapsed)
	}
}

// TestRunValidation pins the error paths.
func TestRunValidation(t *testing.T) {
	base := Options{
		BaseURL: "http://127.0.0.1:1", Graph: "g",
		Mix: map[string]float64{"/ask": 1}, Pool: Fig1Pool(), MaxRequests: 1,
	}
	cases := []struct {
		name string
		mut  func(*Options)
		want error
	}{
		{"no url", func(o *Options) { o.BaseURL = "" }, errNoBaseURL},
		{"no pool", func(o *Options) { o.Pool = nil }, errNoPool},
		{"no mix", func(o *Options) { o.Mix = nil }, errNoMix},
		{"zero ratios", func(o *Options) { o.Mix = map[string]float64{"/ask": 0} }, errNoMix},
		{"no stop", func(o *Options) { o.MaxRequests = 0; o.Duration = 0 }, errNoStop},
	}
	for _, tc := range cases {
		opt := base
		tc.mut(&opt)
		if _, err := Run(opt); err != tc.want {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}

	// Transport failures are counted, not fatal: port 1 refuses.
	rep, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status["error"] != rep.Requests || rep.ErrorRate != 1 {
		t.Errorf("transport errors not accounted: %+v", rep)
	}
}

// TestBuildCDF pins normalization and slash-prefix handling.
func TestBuildCDF(t *testing.T) {
	cdf, err := buildCDF(map[string]float64{"ask": 1, "/why": 3, "/skip": 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(cdf) != 2 || cdf[0].endpoint != "/ask" || cdf[1].endpoint != "/why" {
		t.Fatalf("cdf = %+v", cdf)
	}
	if cdf[1].cum != 1 {
		t.Fatalf("cdf not normalized: %+v", cdf)
	}
	if got := sample(cdf, 0.1); got != "/ask" {
		t.Errorf("sample(0.1) = %s", got)
	}
	if got := sample(cdf, 0.9); got != "/why" {
		t.Errorf("sample(0.9) = %s", got)
	}
	if got := sample(cdf, 1.0); got != "/why" {
		t.Errorf("sample(1.0) = %s", got)
	}
}

// TestFig1PoolParses: the shared fixture must stay valid JSON.
func TestFig1PoolParses(t *testing.T) {
	for _, p := range Fig1Pool() {
		var q, e interface{}
		if err := json.Unmarshal(p.Query, &q); err != nil {
			t.Errorf("query: %v", err)
		}
		if err := json.Unmarshal(p.Exemplar, &e); err != nil {
			t.Errorf("exemplar: %v", err)
		}
	}
}
