// Package loadgen is the closed-loop HTTP load generator behind
// cmd/wqe-loadgen and the serving benchmark: N concurrent clients each
// issue one request, wait for the response, and immediately issue the
// next (the closed-loop discipline of the FalkorDB benchmark harness —
// offered load adapts to server capacity instead of piling up).
//
// Each client draws its endpoints from a query-mix spec (ratios over
// the serving endpoints, sampled through a CDF with a per-client seeded
// generator, so runs are reproducible per seed) and its payloads
// uniformly from a pool. An optional target-RPS pacer throttles the
// fleet globally; a warmup window excludes cold-start requests from the
// report. Latency is recorded into the same power-of-two histograms the
// server's /stats uses (internal/hist), so client-side and server-side
// percentiles are directly comparable.
package loadgen

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"wqe/internal/hist"
	"wqe/internal/par"
)

// Payload is one (query, exemplar) pair a client can ask about.
type Payload struct {
	Query    json.RawMessage `json:"query"`
	Exemplar json.RawMessage `json:"exemplar"`
}

// Options configures one load-generation run.
type Options struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Graph names the resident graph every request targets.
	Graph string
	// Mix maps endpoints (with or without the leading slash) to relative
	// ratios, e.g. {"/ask": 3, "/why": 1}. Ratios are normalized; they
	// need not sum to anything.
	Mix map[string]float64
	// Pool is the payload set clients sample uniformly. At least one.
	Pool []Payload
	// Clients is the number of concurrent closed-loop clients (≥ 1).
	Clients int
	// Duration is the total run length, warmup included.
	Duration time.Duration
	// Warmup excludes the run's first window from the report: requests
	// *started* before it ends are issued but not recorded.
	Warmup time.Duration
	// TargetRPS, when positive, paces the whole fleet to the target
	// request rate; zero runs the closed loop unthrottled.
	TargetRPS float64
	// MaxRequests, when positive, stops the run after that many requests
	// have been issued fleet-wide, even if Duration remains.
	MaxRequests int64
	// Seed makes the endpoint/payload sampling reproducible: client i
	// uses Seed+i.
	Seed int64
	// Client is the HTTP client to use; nil builds one with sensible
	// keep-alive defaults for Clients connections.
	Client *http.Client
}

// EndpointReport is one endpoint's share of the run. Quantiles are
// upper bounds in ms (power-of-two buckets clamped to the observed
// max) and cover successful (HTTP 200) requests only.
type EndpointReport struct {
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Report is the run's outcome: achieved throughput over the measured
// (post-warmup) window, the error-rate breakdown by status code
// (transport failures count under "error"), and per-endpoint latency.
type Report struct {
	Clients     int                       `json:"clients"`
	DurationMS  float64                   `json:"duration_ms"`
	WarmupMS    float64                   `json:"warmup_ms"`
	TargetRPS   float64                   `json:"target_rps,omitempty"`
	Seed        int64                     `json:"seed"`
	Requests    int64                     `json:"requests"`
	AchievedRPS float64                   `json:"achieved_rps"`
	ErrorRate   float64                   `json:"error_rate"`
	Status      map[string]int64          `json:"status"`
	Endpoints   map[string]EndpointReport `json:"endpoints"`
}

var (
	errNoMix     = errors.New("loadgen: mix needs at least one endpoint with a positive ratio")
	errNoPool    = errors.New("loadgen: payload pool is empty")
	errNoBaseURL = errors.New("loadgen: base URL is empty")
	errNoStop    = errors.New("loadgen: need a positive duration or max request count")
)

// mixEntry is one endpoint's slot in the sampling CDF.
type mixEntry struct {
	endpoint string
	cum      float64 // cumulative normalized ratio, ascending
}

// buildCDF normalizes the mix into a cumulative distribution over
// endpoints sorted by name, so sampling is reproducible regardless of
// map iteration order.
func buildCDF(mix map[string]float64) ([]mixEntry, error) {
	ratios := make(map[string]float64, len(mix))
	for name, ratio := range mix {
		if ratio <= 0 {
			continue
		}
		if len(name) == 0 || name[0] != '/' {
			name = "/" + name
		}
		ratios[name] += ratio
	}
	names := make([]string, 0, len(ratios))
	for name := range ratios {
		names = append(names, name)
	}
	sort.Strings(names)
	total := 0.0
	entries := make([]mixEntry, 0, len(names))
	for _, name := range names {
		total += ratios[name]
		entries = append(entries, mixEntry{endpoint: name, cum: total})
	}
	if len(entries) == 0 {
		return nil, errNoMix
	}
	for i := range entries {
		entries[i].cum /= total
	}
	return entries, nil
}

// sample picks an endpoint by CDF inversion.
func sample(entries []mixEntry, r float64) string {
	for i := range entries {
		if r < entries[i].cum {
			return entries[i].endpoint
		}
	}
	return entries[len(entries)-1].endpoint
}

// tally is one client's private accounting, merged after the run so
// the request loop touches no shared locks (the shared histograms are
// lock-free).
type tally struct {
	status    map[string]int64
	count     map[string]int64
	errors    map[string]int64
	requests  int64
	errsTotal int64
}

func newTally() *tally {
	return &tally{status: map[string]int64{}, count: map[string]int64{}, errors: map[string]int64{}}
}

// Run executes one closed-loop load generation against a live server
// and returns the measured report.
func Run(opt Options) (Report, error) {
	if opt.BaseURL == "" {
		return Report{}, errNoBaseURL
	}
	if len(opt.Pool) == 0 {
		return Report{}, errNoPool
	}
	if opt.Duration <= 0 && opt.MaxRequests <= 0 {
		return Report{}, errNoStop
	}
	cdf, err := buildCDF(opt.Mix)
	if err != nil {
		return Report{}, err
	}
	clients := opt.Clients
	if clients < 1 {
		clients = 1
	}
	httpc := opt.Client
	if httpc == nil {
		tr := &http.Transport{MaxIdleConns: clients, MaxIdleConnsPerHost: clients}
		httpc = &http.Client{Transport: tr}
	}

	// Pre-render every payload's request body once; the loop only reads.
	bodies := make([][]byte, len(opt.Pool))
	for i, p := range opt.Pool {
		body, err := json.Marshal(struct {
			Graph    string          `json:"graph"`
			Query    json.RawMessage `json:"query"`
			Exemplar json.RawMessage `json:"exemplar"`
		}{opt.Graph, p.Query, p.Exemplar})
		if err != nil {
			return Report{}, err
		}
		bodies[i] = body
	}

	hists := map[string]*hist.Hist{}
	for _, e := range cdf {
		hists[e.endpoint] = &hist.Hist{}
	}

	//lint:ignore detsource load generation measures wall-clock latency; timestamps never influence ranking
	now := time.Now
	start := now()
	warmupEnd := start.Add(opt.Warmup)
	deadline := start.Add(opt.Duration)
	var issued atomic.Int64 // fleet-wide, feeds the pacer and MaxRequests

	tallies := make([]*tally, clients)
	par.ForEach(clients, clients, func(c int) {
		rng := rand.New(rand.NewSource(opt.Seed + int64(c)))
		t := newTally()
		tallies[c] = t
		for {
			n := issued.Add(1) - 1
			if opt.MaxRequests > 0 && n >= opt.MaxRequests {
				return
			}
			if opt.TargetRPS > 0 {
				// Global pacer: request n is due at start + n/RPS; sleep
				// out any lead the fleet has built up.
				due := start.Add(time.Duration(float64(n) / opt.TargetRPS * float64(time.Second)))
				if lead := due.Sub(now()); lead > 0 {
					time.Sleep(lead)
				}
			}
			reqStart := now()
			if opt.Duration > 0 && !reqStart.Before(deadline) {
				return
			}
			endpoint := sample(cdf, rng.Float64())
			body := bodies[rng.Intn(len(bodies))]

			resp, err := httpc.Post(opt.BaseURL+endpoint, "application/json", bytes.NewReader(body))
			var status string
			ok := false
			if err != nil {
				status = "error"
			} else {
				status = strconv.Itoa(resp.StatusCode)
				ok = resp.StatusCode == http.StatusOK
				// Drain so the connection is reusable; a short read only
				// costs that reuse, never correctness.
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					ok = false
					status = "error"
				}
				if err := resp.Body.Close(); err != nil && ok {
					ok = false
					status = "error"
				}
			}
			if reqStart.Before(warmupEnd) {
				continue // warmup: issued but not recorded
			}
			t.requests++
			t.status[status]++
			t.count[endpoint]++
			if ok {
				hists[endpoint].Observe(now().Sub(reqStart))
			} else {
				t.errors[endpoint]++
				t.errsTotal++
			}
		}
	})
	end := now()

	rep := Report{
		Clients:    clients,
		DurationMS: float64(end.Sub(start)) / float64(time.Millisecond),
		WarmupMS:   float64(opt.Warmup) / float64(time.Millisecond),
		TargetRPS:  opt.TargetRPS,
		Seed:       opt.Seed,
		Status:     map[string]int64{},
		Endpoints:  map[string]EndpointReport{},
	}
	var errsTotal int64
	for _, t := range tallies {
		rep.Requests += t.requests
		errsTotal += t.errsTotal
		for status, n := range t.status {
			rep.Status[status] += n
		}
	}
	for _, e := range cdf {
		er := EndpointReport{}
		for _, t := range tallies {
			er.Count += t.count[e.endpoint]
			er.Errors += t.errors[e.endpoint]
		}
		s := hists[e.endpoint].Snapshot()
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		er.P50MS = ms(s.Quantile(0.50))
		er.P95MS = ms(s.Quantile(0.95))
		er.P99MS = ms(s.Quantile(0.99))
		er.MaxMS = ms(s.Max())
		rep.Endpoints[e.endpoint] = er
	}
	if window := end.Sub(warmupEnd); window > 0 && rep.Requests > 0 {
		rep.AchievedRPS = float64(rep.Requests) / window.Seconds()
	}
	if rep.Requests > 0 {
		rep.ErrorRate = float64(errsTotal) / float64(rep.Requests)
	}
	return rep, nil
}
