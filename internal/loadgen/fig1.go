package loadgen

import "encoding/json"

// The paper's Fig 1 cellphone fixture payload, shared by wqe-serve's
// -smoke, wqe-loadgen's -fig1, and the serving benchmark: the example
// query (cellphones ≥ $840 with ≥ 4GB RAM, sold by a carrier, with a
// sensor within 2 hops) and the exemplar preferring 6.2"/6.3" phones
// under $800.
const (
	Fig1QueryJSON = `{
	 "focus": 0,
	 "nodes": [
	  {"label": "Cellphone", "literals": [
	   {"attr": "Price", "op": ">=", "value": 840},
	   {"attr": "RAM", "op": ">=", "value": 4}]},
	  {"label": "Carrier"},
	  {"label": "Sensor"}
	 ],
	 "edges": [
	  {"from": 1, "to": 0, "bound": 1},
	  {"from": 0, "to": 2, "bound": 2}
	 ]
	}`
	Fig1ExemplarJSON = `{
	 "tuples": [
	  {"Display": {"const": 6.2}, "Price": {"wildcard": true}, "Storage": {"var": "x1"}},
	  {"Display": {"const": 6.3}, "Price": {"var": "x3"}, "Storage": {"var": "x2"}}
	 ],
	 "constraints": [
	  {"left": "x3", "op": "<", "const": 800},
	  {"left": "x1", "op": ">", "right": "x2"}
	 ]
	}`
)

// Fig1Pool returns the built-in single-payload pool over the Fig 1
// fixture — the repeated-question workload the answer cache is built
// for.
func Fig1Pool() []Payload {
	return []Payload{{
		Query:    json.RawMessage(Fig1QueryJSON),
		Exemplar: json.RawMessage(Fig1ExemplarJSON),
	}}
}
