// Package ops implements the eight atomic query-rewriting operator
// classes of Table 1 — relaxations RmL, RmE, RxL, RxE and refinements
// AddL, AddE, RfL, RfE — plus the empty operator, with the paper's unit
// cost model c(o) ∈ [1, 2], applicability checks, and application
// (Q ⊕ o). It also implements operator sequences: validity,
// canonicality (no cancel-outs), and the normal-form transformation of
// Lemma 4.1.
package ops

import (
	"fmt"

	"wqe/internal/graph"
	"wqe/internal/query"
)

// Kind enumerates the operator classes.
type Kind uint8

// Operator classes. The first four relax (can only add matches), the
// last four refine (can only remove matches).
const (
	Empty Kind = iota
	RmL        // remove literal
	RmE        // remove edge
	RxL        // relax literal constant
	RxE        // relax edge bound
	AddL       // add literal
	AddE       // add edge (optionally with a fresh pattern node)
	RfL        // refine literal constant
	RfE        // refine edge bound
)

// String renders the class name.
func (k Kind) String() string {
	switch k {
	case Empty:
		return "∅"
	case RmL:
		return "RmL"
	case RmE:
		return "RmE"
	case RxL:
		return "RxL"
	case RxE:
		return "RxE"
	case AddL:
		return "AddL"
	case AddE:
		return "AddE"
	case RfL:
		return "RfL"
	case RfE:
		return "RfE"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsRelax reports whether the class is a relaxation.
func (k Kind) IsRelax() bool { return k >= RmL && k <= RxE }

// IsRefine reports whether the class is a refinement.
func (k Kind) IsRefine() bool { return k >= AddL && k <= RfE }

// NewNodeSpec describes the fresh pattern node an AddE may introduce
// (Appendix B, rule 2 of AddE generation).
type NewNodeSpec struct {
	Label string
}

// Op is one atomic operator. Which fields are meaningful depends on
// Kind:
//
//	RmL:  U, Lit
//	AddL: U, Lit
//	RxL:  U, Lit (old), NewLit
//	RfL:  U, Lit (old), NewLit
//	RmE:  U, U2 (edge U→U2), Bound
//	AddE: U, U2, Bound; NewNode non-nil when U2 is a fresh node
//	RxE:  U, U2, Bound (old), NewBound
//	RfE:  U, U2, Bound (old), NewBound
type Op struct {
	Kind     Kind
	U, U2    query.NodeID
	Lit      query.Literal
	NewLit   query.Literal
	Bound    int
	NewBound int
	NewNode  *NewNodeSpec
}

// String renders the operator compactly.
func (o Op) String() string {
	switch o.Kind {
	case Empty:
		return "∅"
	case RmL:
		return fmt.Sprintf("RmL(u%d, %s)", o.U, o.Lit)
	case AddL:
		return fmt.Sprintf("AddL(u%d, %s)", o.U, o.Lit)
	case RxL:
		return fmt.Sprintf("RxL(u%d.%s, %s → %s %s)", o.U, o.Lit.Attr, o.Lit, o.NewLit.Op, o.NewLit.Val)
	case RfL:
		return fmt.Sprintf("RfL(u%d.%s, %s → %s %s)", o.U, o.Lit.Attr, o.Lit, o.NewLit.Op, o.NewLit.Val)
	case RmE:
		return fmt.Sprintf("RmE((u%d,u%d), %d)", o.U, o.U2, o.Bound)
	case AddE:
		if o.NewNode != nil {
			return fmt.Sprintf("AddE((u%d,+%q), %d)", o.U, o.NewNode.Label, o.Bound)
		}
		return fmt.Sprintf("AddE((u%d,u%d), %d)", o.U, o.U2, o.Bound)
	case RxE:
		return fmt.Sprintf("RxE((u%d,u%d), %d → %d)", o.U, o.U2, o.Bound, o.NewBound)
	case RfE:
		return fmt.Sprintf("RfE((u%d,u%d), %d → %d)", o.U, o.U2, o.Bound, o.NewBound)
	}
	return "op?"
}

// Cost returns c(o) per Table 1: unit cost 1 plus a relative-difference
// term normalized by range(A) for literal modifications and by D(G) for
// edge-bound updates. Costs always land in [1, 2] (the normalizing
// denominators dominate the numerators by construction); Empty costs 0.
func (o Op) Cost(g *graph.Graph) float64 {
	switch o.Kind {
	case Empty:
		return 0
	case RmL, AddL:
		return 1
	case RmE, AddE:
		return 1 + clamp01(float64(o.Bound)/float64(g.Diameter()))
	case RxE, RfE:
		diff := o.Bound - o.NewBound
		if diff < 0 {
			diff = -diff
		}
		return 1 + clamp01(float64(diff)/float64(g.Diameter()))
	case RxL, RfL:
		if o.Lit.Val.Kind != graph.Number || o.NewLit.Val.Kind != graph.Number {
			return 2 // categorical rewrite: maximal relative difference
		}
		dom := g.ActiveDomain(o.Lit.Attr)
		diff := o.NewLit.Val.Num - o.Lit.Val.Num
		if diff < 0 {
			diff = -diff
		}
		return 1 + clamp01(diff/dom.Range())
	}
	return 1
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// numericRegion returns the half-open numeric satisfaction interval
// [lo, hi] of a literal (using ±inf sentinels) for weakness comparison.
// ok is false for non-numeric or equality-on-string literals, which
// have no interval semantics.
func numericRegion(l query.Literal) (lo, hi float64, loOpen, hiOpen, ok bool) {
	if l.Val.Kind != graph.Number {
		return 0, 0, false, false, false
	}
	const inf = 1e308
	c := l.Val.Num
	switch l.Op {
	case graph.EQ:
		return c, c, false, false, true
	case graph.LT:
		return -inf, c, false, true, true
	case graph.LE:
		return -inf, c, false, false, true
	case graph.GT:
		return c, inf, true, false, true
	case graph.GE:
		return c, inf, false, false, true
	}
	return 0, 0, false, false, false
}

// Weaker reports whether literal b is at least as weak as literal a on
// the same attribute: every value satisfying a satisfies b. Only
// numeric literals compare; anything else is reported not-weaker.
func Weaker(a, b query.Literal) bool {
	if a.Attr != b.Attr {
		return false
	}
	alo, ahi, aloOpen, ahiOpen, ok := numericRegion(a)
	if !ok {
		return false
	}
	blo, bhi, bloOpen, bhiOpen, ok := numericRegion(b)
	if !ok {
		return false
	}
	loOK := blo < alo || (blo == alo && (!bloOpen || aloOpen))
	hiOK := bhi > ahi || (bhi == ahi && (!bhiOpen || ahiOpen))
	return loOK && hiOK
}

// Params carries global rewrite limits.
type Params struct {
	// MaxBound is b_m, the cap on any pattern-edge hop bound.
	MaxBound int
}

// DefaultParams uses b_m = 3, the largest bound the paper's examples
// pose.
func DefaultParams() Params { return Params{MaxBound: 3} }

// Applicable reports whether o can be applied to q: Q ⊕ {o} must be a
// pattern query different from Q (§2.2).
func (o Op) Applicable(q *query.Query, p Params) bool {
	inRange := func(u query.NodeID) bool { return int(u) >= 0 && int(u) < len(q.Nodes) }
	switch o.Kind {
	case Empty:
		return true
	case RmL:
		return inRange(o.U) && q.HasLiteral(o.U, o.Lit)
	case AddL:
		if !inRange(o.U) || q.HasLiteral(o.U, o.Lit) {
			return false
		}
		// Refuse a second literal with the same attribute+operator: the
		// pair would either be redundant or contradictory.
		return q.FindLiteral(o.U, o.Lit.Attr, o.Lit.Op) < 0
	case RxL:
		if !inRange(o.U) || !q.HasLiteral(o.U, o.Lit) {
			return false
		}
		return !o.Lit.Equal(o.NewLit) && Weaker(o.Lit, o.NewLit)
	case RfL:
		if !inRange(o.U) || !q.HasLiteral(o.U, o.Lit) {
			return false
		}
		return !o.Lit.Equal(o.NewLit) && Weaker(o.NewLit, o.Lit)
	case RmE:
		if !inRange(o.U) || !inRange(o.U2) {
			return false
		}
		i := q.FindEdge(o.U, o.U2)
		return i >= 0 && q.Edges[i].Bound == o.Bound
	case AddE:
		if !inRange(o.U) {
			return false
		}
		if o.Bound < 1 || o.Bound > p.MaxBound {
			return false
		}
		if o.NewNode != nil {
			return true
		}
		if !inRange(o.U2) || o.U == o.U2 {
			return false
		}
		return q.FindEdge(o.U, o.U2) < 0
	case RxE:
		if !inRange(o.U) || !inRange(o.U2) {
			return false
		}
		i := q.FindEdge(o.U, o.U2)
		return i >= 0 && q.Edges[i].Bound == o.Bound &&
			o.NewBound > o.Bound && o.NewBound <= p.MaxBound
	case RfE:
		if !inRange(o.U) || !inRange(o.U2) {
			return false
		}
		i := q.FindEdge(o.U, o.U2)
		return i >= 0 && q.Edges[i].Bound == o.Bound &&
			o.NewBound >= 1 && o.NewBound < o.Bound
	}
	return false
}

// Apply returns Q ⊕ {o} as a fresh query, or an error when the
// operator does not structurally fit q (its literal or edge is absent).
// Callers that checked Applicable first never see the error, but the
// chase propagates it rather than trusting that discipline blindly.
//
// RmE may leave a non-focus pattern node isolated. The node stays in
// the query (so node indices remain stable across operator reordering,
// which the Lemma 4.1 normal form depends on), but isolated non-focus
// nodes do not constrain matches (query.IsolatedIgnored): the
// NP-hardness proof of Theorem 3.2 relies on edge removal detaching the
// constraint the removed edge's endpoint posed.
func (o Op) Apply(q *query.Query) (*query.Query, error) {
	c := q.Clone()
	switch o.Kind {
	case Empty:
		return c, nil
	case RmL:
		lits := c.Nodes[o.U].Literals
		for i, l := range lits {
			if l.Equal(o.Lit) {
				c.Nodes[o.U].Literals = append(lits[:i:i], lits[i+1:]...)
				return c, nil
			}
		}
		return nil, fmt.Errorf("ops: RmL literal not found: %s", o)
	case AddL:
		c.Nodes[o.U].Literals = append(c.Nodes[o.U].Literals, o.Lit)
		return c, nil
	case RxL, RfL:
		lits := c.Nodes[o.U].Literals
		for i, l := range lits {
			if l.Equal(o.Lit) {
				lits[i] = o.NewLit
				return c, nil
			}
		}
		return nil, fmt.Errorf("ops: %s literal not found: %s", o.Kind, o)
	case RmE:
		i := c.FindEdge(o.U, o.U2)
		if i < 0 {
			return nil, fmt.Errorf("ops: RmE edge not found: %s", o)
		}
		c.Edges = append(c.Edges[:i:i], c.Edges[i+1:]...)
		return c, nil
	case AddE:
		to := o.U2
		if o.NewNode != nil {
			to = c.AddNode(o.NewNode.Label)
		}
		c.AddEdge(o.U, to, o.Bound)
		return c, nil
	case RxE, RfE:
		i := c.FindEdge(o.U, o.U2)
		if i < 0 {
			return nil, fmt.Errorf("ops: %s edge not found: %s", o.Kind, o)
		}
		c.Edges[i].Bound = o.NewBound
		return c, nil
	}
	return nil, fmt.Errorf("ops: unknown operator kind %d", o.Kind)
}
