package ops

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wqe/internal/graph"
	"wqe/internal/query"
)

// fixture builds the Fig 1 query and a graph with known diameter and
// price range for cost assertions.
func fixture() (*graph.Graph, *query.Query) {
	g := graph.New()
	// A 4-chain fixes the (undirected) diameter at 3.
	for i := 0; i < 4; i++ {
		g.AddNode("Cellphone", map[string]graph.Value{
			"Price": graph.N(float64(750 + 50*i)), // range 150
			"RAM":   graph.N(float64(2 + 2*i)),
		})
	}
	for i := 0; i+1 < 4; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), "")
	}

	q := query.New()
	cell := q.AddNode("Cellphone",
		query.Literal{Attr: "Price", Op: graph.GE, Val: graph.N(840)},
		query.Literal{Attr: "RAM", Op: graph.GE, Val: graph.N(4)},
	)
	car := q.AddNode("Carrier")
	sen := q.AddNode("Sensor")
	q.AddEdge(car, cell, 1)
	q.AddEdge(cell, sen, 2)
	q.Focus = cell
	return g, q
}

func lit(attr string, op graph.Op, v float64) query.Literal {
	return query.Literal{Attr: attr, Op: op, Val: graph.N(v)}
}

// TestCostsExample31 reproduces the cost table of Example 3.1 (with
// this fixture's D(G)=3 and range(Price)=150).
func TestCostsExample31(t *testing.T) {
	g, _ := fixture()
	if d := g.Diameter(); d != 3 {
		t.Fatalf("fixture diameter = %d, want 3", d)
	}
	cases := []struct {
		o    Op
		want float64
	}{
		{Op{Kind: AddL, U: 1, Lit: lit("Discount", graph.EQ, 25)}, 1},
		{Op{Kind: RmE, U: 0, U2: 2, Bound: 2}, 1 + 2.0/3},
		{Op{Kind: RxL, U: 0, Lit: lit("Price", graph.GE, 840), NewLit: lit("Price", graph.GE, 790)}, 1 + 50.0/150},
		{Op{Kind: RxL, U: 0, Lit: lit("Price", graph.GE, 840), NewLit: lit("Price", graph.GE, 750)}, 1 + 90.0/150},
		{Op{Kind: RmL, U: 0, Lit: lit("Price", graph.GE, 840)}, 1},
		{Op{Kind: RxE, U: 0, U2: 2, Bound: 2, NewBound: 3}, 1 + 1.0/3},
		{Op{Kind: RfE, U: 0, U2: 2, Bound: 2, NewBound: 1}, 1 + 1.0/3},
		{Op{Kind: Empty}, 0},
	}
	for _, c := range cases {
		if got := c.o.Cost(g); !close(got, c.want) {
			t.Errorf("cost(%s) = %v, want %v", c.o, got, c.want)
		}
	}
}

func close(a, b float64) bool { d := a - b; return d < 1e-9 && d > -1e-9 }

// TestCostRange: every non-empty operator costs within [1, 2].
func TestCostRange(t *testing.T) {
	g, q := fixture()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		o := randomOp(q, rng)
		if o.Kind == Empty {
			continue
		}
		c := o.Cost(g)
		if c < 1 || c > 2 {
			t.Fatalf("cost(%s) = %v out of [1,2]", o, c)
		}
	}
}

// randomOp fabricates a structurally plausible operator (not
// necessarily applicable).
func randomOp(q *query.Query, rng *rand.Rand) Op {
	kinds := []Kind{RmL, RmE, RxL, RxE, AddL, AddE, RfL, RfE}
	k := kinds[rng.Intn(len(kinds))]
	u := query.NodeID(rng.Intn(len(q.Nodes)))
	price := float64(700 + rng.Intn(400))
	price2 := float64(700 + rng.Intn(400))
	switch k {
	case RmL, AddL:
		return Op{Kind: k, U: u, Lit: lit("Price", graph.GE, price)}
	case RxL, RfL:
		return Op{Kind: k, U: u, Lit: lit("Price", graph.GE, price), NewLit: lit("Price", graph.GE, price2)}
	case RmE, AddE:
		return Op{Kind: k, U: 0, U2: 2, Bound: 1 + rng.Intn(3)}
	default:
		return Op{Kind: k, U: 0, U2: 2, Bound: 2, NewBound: 1 + rng.Intn(3)}
	}
}

func TestWeaker(t *testing.T) {
	ge := func(c float64) query.Literal { return lit("p", graph.GE, c) }
	le := func(c float64) query.Literal { return lit("p", graph.LE, c) }
	eq := func(c float64) query.Literal { return lit("p", graph.EQ, c) }
	gt := func(c float64) query.Literal { return lit("p", graph.GT, c) }
	lt := func(c float64) query.Literal { return lit("p", graph.LT, c) }

	cases := []struct {
		a, b query.Literal
		want bool
	}{
		{ge(840), ge(790), true},  // lower bound moved down = weaker
		{ge(790), ge(840), false}, // tightened
		{le(100), le(200), true},
		{le(200), le(100), false},
		{eq(5), ge(4), true}, // point to half-line containing it
		{eq(5), ge(6), false},
		{eq(5), le(5), true},
		{gt(10), ge(10), true}, // open to closed at same bound
		{ge(10), gt(10), false},
		{lt(10), le(10), true},
		{le(10), lt(10), false},
		{ge(5), le(5), false},                 // incomparable directions
		{ge(5), lit("q", graph.GE, 1), false}, // different attrs never compare
	}
	for _, c := range cases {
		if got := Weaker(c.a, c.b); got != c.want {
			t.Errorf("Weaker(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	// Strings have no interval semantics.
	s := query.Literal{Attr: "p", Op: graph.EQ, Val: graph.S("x")}
	if Weaker(s, s) {
		t.Error("string literals must not compare as weaker")
	}
}

func TestApplicability(t *testing.T) {
	_, q := fixture()
	p := DefaultParams()
	priceLit := lit("Price", graph.GE, 840)

	good := []Op{
		{Kind: RmL, U: 0, Lit: priceLit},
		{Kind: RxL, U: 0, Lit: priceLit, NewLit: lit("Price", graph.GE, 790)},
		{Kind: RfL, U: 0, Lit: priceLit, NewLit: lit("Price", graph.GE, 900)},
		{Kind: AddL, U: 1, Lit: lit("Discount", graph.EQ, 25)},
		{Kind: RmE, U: 1, U2: 0, Bound: 1},
		{Kind: RxE, U: 0, U2: 2, Bound: 2, NewBound: 3},
		{Kind: RfE, U: 0, U2: 2, Bound: 2, NewBound: 1},
		{Kind: AddE, U: 1, U2: 2, Bound: 1},
		{Kind: AddE, U: 0, Bound: 2, NewNode: &NewNodeSpec{Label: "Shop"}},
		{Kind: Empty},
	}
	for _, o := range good {
		if !o.Applicable(q, p) {
			t.Errorf("%s should be applicable", o)
		}
	}

	bad := []Op{
		{Kind: RmL, U: 0, Lit: lit("Weight", graph.GE, 1)},                    // no such literal
		{Kind: RxL, U: 0, Lit: priceLit, NewLit: lit("Price", graph.GE, 900)}, // stronger, not weaker
		{Kind: RfL, U: 0, Lit: priceLit, NewLit: lit("Price", graph.GE, 700)}, // weaker, not stronger
		{Kind: RxL, U: 0, Lit: priceLit, NewLit: priceLit},                    // no-op
		{Kind: AddL, U: 0, Lit: lit("Price", graph.GE, 1000)},                 // duplicate attr+op
		{Kind: RmE, U: 0, U2: 1, Bound: 1},                                    // wrong direction
		{Kind: RmE, U: 1, U2: 0, Bound: 2},                                    // wrong bound
		{Kind: RxE, U: 0, U2: 2, Bound: 2, NewBound: 9},                       // beyond b_m
		{Kind: RxE, U: 0, U2: 2, Bound: 2, NewBound: 2},                       // not larger
		{Kind: RfE, U: 0, U2: 2, Bound: 2, NewBound: 0},                       // below 1
		{Kind: AddE, U: 1, U2: 0, Bound: 1},                                   // edge exists
		{Kind: AddE, U: 1, U2: 1, Bound: 1},                                   // self-loop
		{Kind: AddE, U: 0, U2: 1, Bound: 9},                                   // bound beyond b_m
		{Kind: RmL, U: 99, Lit: priceLit},                                     // node out of range
	}
	for _, o := range bad {
		if o.Applicable(q, p) {
			t.Errorf("%s should NOT be applicable", o)
		}
	}
}

func TestApplyLiteralOps(t *testing.T) {
	_, q := fixture()
	priceLit := lit("Price", graph.GE, 840)

	q2 := mustApply(t, Op{Kind: RmL, U: 0, Lit: priceLit}, q)
	if q2.HasLiteral(0, priceLit) {
		t.Error("RmL did not remove the literal")
	}
	if !q.HasLiteral(0, priceLit) {
		t.Error("Apply mutated the original query")
	}

	q3 := mustApply(t, Op{Kind: RxL, U: 0, Lit: priceLit, NewLit: lit("Price", graph.GE, 790)}, q)
	if !q3.HasLiteral(0, lit("Price", graph.GE, 790)) || q3.HasLiteral(0, priceLit) {
		t.Error("RxL did not replace the literal")
	}

	q4 := mustApply(t, Op{Kind: AddL, U: 1, Lit: lit("Discount", graph.EQ, 25)}, q)
	if !q4.HasLiteral(1, lit("Discount", graph.EQ, 25)) {
		t.Error("AddL did not add the literal")
	}
}

func TestApplyEdgeOps(t *testing.T) {
	_, q := fixture()

	// RmE keeps the now-isolated sensor node (indices stay stable for
	// operator reordering) but the node no longer constrains matching.
	q2 := mustApply(t, Op{Kind: RmE, U: 0, U2: 2, Bound: 2}, q)
	if len(q2.Nodes) != 3 || len(q2.Edges) != 1 {
		t.Fatalf("RmE should keep nodes and drop one edge: %s", q2)
	}
	if !q2.IsolatedIgnored(2) {
		t.Error("detached sensor node should be ignored by matching")
	}
	if q2.IsolatedIgnored(q2.Focus) {
		t.Error("focus is never ignored")
	}

	q3 := mustApply(t, Op{Kind: RxE, U: 0, U2: 2, Bound: 2, NewBound: 3}, q)
	if q3.Edges[q3.FindEdge(0, 2)].Bound != 3 {
		t.Error("RxE did not relax the bound")
	}

	q4 := mustApply(t, Op{Kind: AddE, U: 0, Bound: 2, NewNode: &NewNodeSpec{Label: "Shop"}}, q)
	if len(q4.Nodes) != 4 || q4.Nodes[3].Label != "Shop" {
		t.Error("AddE with NewNode did not create the node")
	}
	if q4.FindEdge(0, 3) < 0 {
		t.Error("AddE with NewNode did not create the edge")
	}
}

func TestRmEIsolatesBothEndpoints(t *testing.T) {
	q := query.New()
	a := q.AddNode("A")
	b := q.AddNode("B")
	q.AddEdge(a, b, 1)
	q.Focus = b
	// Removing the only edge isolates both; the non-focus endpoint is
	// ignored, the focus keeps constraining.
	q2 := mustApply(t, Op{Kind: RmE, U: a, U2: b, Bound: 1}, q)
	if !q2.IsolatedIgnored(a) {
		t.Error("detached non-focus endpoint should be ignored")
	}
	if q2.IsolatedIgnored(b) {
		t.Error("the focus must keep constraining even when isolated")
	}
}

func TestSequenceCanonical(t *testing.T) {
	priceLit := lit("Price", graph.GE, 840)
	relax := Op{Kind: RmL, U: 0, Lit: priceLit}
	refineSame := Op{Kind: AddL, U: 0, Lit: lit("Price", graph.EQ, 700)}
	other := Op{Kind: AddL, U: 1, Lit: lit("Discount", graph.EQ, 25)}

	if !(Sequence{relax, other}).Canonical() {
		t.Error("independent targets should be canonical")
	}
	if (Sequence{relax, refineSame}).Canonical() {
		t.Error("cancel-out pair (same node+attr) should not be canonical")
	}
	if (Sequence{relax, relax}).Canonical() {
		t.Error("repeated target should not be canonical")
	}
	if !(Sequence{{Kind: Empty}, relax}).Canonical() {
		t.Error("empty operators never break canonicality")
	}
	// AddE with fresh nodes never collides.
	newE := Op{Kind: AddE, U: 0, Bound: 1, NewNode: &NewNodeSpec{Label: "X"}}
	if !(Sequence{newE, newE}).Canonical() {
		t.Error("fresh-node AddE ops should be canonical together")
	}
}

// TestNormalFormEquivalence is the Lemma 4.1 property: a canonical
// sequence and its normal form produce identical rewrites.
func TestNormalFormEquivalence(t *testing.T) {
	g, q := fixture()
	p := DefaultParams()
	rng := rand.New(rand.NewSource(7))

	for trial := 0; trial < 300; trial++ {
		seq := randomCanonicalSequence(q, rng)
		if len(seq) == 0 {
			continue
		}
		applied, err := seq.Apply(q, p)
		if err != nil {
			continue // the random sequence was not applicable; skip
		}
		norm, err := seq.NormalForm()
		if err != nil {
			t.Fatalf("trial %d: canonical sequence rejected: %v", trial, err)
		}
		if !norm.IsNormalForm() {
			t.Fatalf("trial %d: NormalForm output not in normal form: %v", trial, norm)
		}
		applied2, err := norm.Apply(q, p)
		if err != nil {
			t.Fatalf("trial %d: normal form not applicable: %v (orig %v)", trial, err, seq)
		}
		if applied.Key() != applied2.Key() {
			t.Fatalf("trial %d: normal form changed the rewrite:\n%s\nvs\n%s\nseq=%v norm=%v",
				trial, applied, applied2, seq, norm)
		}
		if !close(seq.Cost(g), norm.Cost(g)) {
			t.Fatalf("trial %d: normal form changed the cost", trial)
		}
	}
}

// randomCanonicalSequence draws operators with disjoint targets from
// the fixture query's rewrite space.
func randomCanonicalSequence(q *query.Query, rng *rand.Rand) Sequence {
	pool := []Op{
		{Kind: RmL, U: 0, Lit: lit("Price", graph.GE, 840)},
		{Kind: RxL, U: 0, Lit: lit("Price", graph.GE, 840), NewLit: lit("Price", graph.GE, 790)},
		{Kind: RfL, U: 0, Lit: lit("RAM", graph.GE, 4), NewLit: lit("RAM", graph.GE, 6)},
		{Kind: RmL, U: 0, Lit: lit("RAM", graph.GE, 4)},
		{Kind: AddL, U: 1, Lit: lit("Discount", graph.EQ, 25)},
		{Kind: RmE, U: 1, U2: 0, Bound: 1},
		{Kind: RmE, U: 0, U2: 2, Bound: 2},
		{Kind: RxE, U: 0, U2: 2, Bound: 2, NewBound: 3},
		{Kind: RfE, U: 0, U2: 2, Bound: 2, NewBound: 1},
		{Kind: AddE, U: 1, U2: 2, Bound: 1},
		{Kind: Empty},
	}
	perm := rng.Perm(len(pool))
	var seq Sequence
	used := map[string]bool{}
	n := 1 + rng.Intn(4)
	for _, i := range perm {
		if len(seq) == n {
			break
		}
		o := pool[i]
		tgt := o.target(i)
		if o.Kind != Empty && used[tgt] {
			continue
		}
		used[tgt] = true
		seq = append(seq, o)
	}
	return seq
}

// TestSequenceApplyValidates: sequences fail loudly on inapplicable
// steps.
func TestSequenceApplyValidates(t *testing.T) {
	_, q := fixture()
	seq := Sequence{
		{Kind: RmL, U: 0, Lit: lit("Price", graph.GE, 840)},
		{Kind: RmL, U: 0, Lit: lit("Price", graph.GE, 840)}, // already removed
	}
	if _, err := seq.Apply(q, DefaultParams()); err == nil {
		t.Error("double removal must fail")
	}
}

func TestNormalFormRejectsNonCanonical(t *testing.T) {
	seq := Sequence{
		{Kind: RmL, U: 0, Lit: lit("Price", graph.GE, 840)},
		{Kind: AddL, U: 0, Lit: lit("Price", graph.EQ, 1)},
	}
	if _, err := seq.NormalForm(); err == nil {
		t.Error("cancel-out sequence must be rejected")
	}
}

// TestKindClassesProperty: exactly one of IsRelax/IsRefine holds for
// real operators; neither for Empty.
func TestKindClassesProperty(t *testing.T) {
	f := func(k uint8) bool {
		kind := Kind(k % 9)
		if kind == Empty {
			return !kind.IsRelax() && !kind.IsRefine()
		}
		return kind.IsRelax() != kind.IsRefine()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// mustApply applies o to q, failing the test on a structural error.
func mustApply(t *testing.T, o Op, q *query.Query) *query.Query {
	t.Helper()
	q2, err := o.Apply(q)
	if err != nil {
		t.Fatalf("Apply(%s): %v", o, err)
	}
	return q2
}

// TestApplyStructuralErrors: Apply reports — rather than panics on —
// operators that do not fit the query.
func TestApplyStructuralErrors(t *testing.T) {
	_, q := fixture()
	bad := []Op{
		{Kind: RmL, U: 0, Lit: lit("NoSuchAttr", graph.GE, 1)},
		{Kind: RxL, U: 0, Lit: lit("NoSuchAttr", graph.GE, 1), NewLit: lit("NoSuchAttr", graph.GE, 0)},
		{Kind: RfL, U: 0, Lit: lit("NoSuchAttr", graph.GE, 1), NewLit: lit("NoSuchAttr", graph.GE, 2)},
		{Kind: RmE, U: 1, U2: 2, Bound: 1}, // no such edge
		{Kind: RxE, U: 1, U2: 2, Bound: 1, NewBound: 2},
		{Kind: RfE, U: 1, U2: 2, Bound: 2, NewBound: 1},
		{Kind: Kind(42)},
	}
	for _, o := range bad {
		if q2, err := o.Apply(q); err == nil {
			t.Errorf("Apply(%s) = %s, want structural error", o, q2)
		}
	}
}
