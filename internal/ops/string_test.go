package ops

import (
	"strings"
	"testing"

	"wqe/internal/graph"
	"wqe/internal/query"
)

// TestOpStrings: every operator class renders a distinctive string.
func TestOpStrings(t *testing.T) {
	priceLit := lit("Price", graph.GE, 840)
	cases := []struct {
		o    Op
		want string
	}{
		{Op{Kind: Empty}, "∅"},
		{Op{Kind: RmL, U: 0, Lit: priceLit}, "RmL(u0"},
		{Op{Kind: AddL, U: 1, Lit: priceLit}, "AddL(u1"},
		{Op{Kind: RxL, U: 0, Lit: priceLit, NewLit: lit("Price", graph.GE, 790)}, "RxL(u0.Price"},
		{Op{Kind: RfL, U: 0, Lit: priceLit, NewLit: lit("Price", graph.GE, 900)}, "RfL(u0.Price"},
		{Op{Kind: RmE, U: 0, U2: 2, Bound: 2}, "RmE((u0,u2), 2)"},
		{Op{Kind: AddE, U: 1, U2: 2, Bound: 1}, "AddE((u1,u2), 1)"},
		{Op{Kind: AddE, U: 0, Bound: 2, NewNode: &NewNodeSpec{Label: "Shop"}}, `AddE((u0,+"Shop"), 2)`},
		{Op{Kind: RxE, U: 0, U2: 2, Bound: 2, NewBound: 3}, "RxE((u0,u2), 2 → 3)"},
		{Op{Kind: RfE, U: 0, U2: 2, Bound: 2, NewBound: 1}, "RfE((u0,u2), 2 → 1)"},
	}
	seen := map[string]bool{}
	for _, c := range cases {
		s := c.o.String()
		if !strings.Contains(s, c.want) {
			t.Errorf("String(%v) = %q, want substring %q", c.o.Kind, s, c.want)
		}
		if seen[s] {
			t.Errorf("duplicate rendering %q", s)
		}
		seen[s] = true
	}
	for _, k := range []Kind{Empty, RmL, RmE, RxL, RxE, AddL, AddE, RfL, RfE} {
		if k.String() == "" {
			t.Errorf("Kind %d has empty name", k)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind should render its number")
	}
}

// TestCostCategoricalLiteral: categorical RxL/RfL cost the maximum 2.
func TestCostCategoricalLiteral(t *testing.T) {
	g, _ := fixture()
	o := Op{Kind: RxL, U: 0,
		Lit:    query.Literal{Attr: "Brand", Op: graph.EQ, Val: graph.S("Samsung")},
		NewLit: query.Literal{Attr: "Brand", Op: graph.EQ, Val: graph.S("Apple")}}
	if got := o.Cost(g); got != 2 {
		t.Errorf("categorical RxL cost = %v, want 2", got)
	}
}

// TestEmptyOpApply: the empty operator clones without change.
func TestEmptyOpApply(t *testing.T) {
	_, q := fixture()
	q2 := mustApply(t, Op{Kind: Empty}, q)
	if q2.Key() != q.Key() {
		t.Error("empty operator changed the query")
	}
	if q2 == q {
		t.Error("Apply must return a fresh query")
	}
}

// TestSequenceCost: cost sums.
func TestSequenceCost(t *testing.T) {
	g, _ := fixture()
	seq := Sequence{
		{Kind: RmL, U: 0, Lit: lit("Price", graph.GE, 840)},
		{Kind: Empty},
		{Kind: AddL, U: 1, Lit: lit("Discount", graph.EQ, 25)},
	}
	if got := seq.Cost(g); got != 2 {
		t.Errorf("sequence cost = %v, want 2", got)
	}
}
