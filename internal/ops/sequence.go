package ops

import (
	"fmt"
	"sort"

	"wqe/internal/graph"
	"wqe/internal/query"
)

// Sequence is an ordered list of atomic operators O = {o_1, …, o_m}.
type Sequence []Op

// Cost returns c(O) = Σ c(o).
func (s Sequence) Cost(g *graph.Graph) float64 {
	var total float64
	for _, o := range s {
		total += o.Cost(g)
	}
	return total
}

// Apply computes Q ⊕ O, verifying applicability of every step. It
// returns an error naming the first inapplicable operator.
func (s Sequence) Apply(q *query.Query, p Params) (*query.Query, error) {
	cur := q
	for i, o := range s {
		if !o.Applicable(cur, p) {
			return nil, fmt.Errorf("ops: operator %d (%s) not applicable to %s", i, o, cur)
		}
		next, err := o.Apply(cur)
		if err != nil {
			return nil, fmt.Errorf("ops: operator %d: %w", i, err)
		}
		cur = next
	}
	return cur, nil
}

// target identifies what an operator touches, for cancel-out detection.
// Literal operators on the same (node, attribute) share a target; edge
// operators on the same endpoint pair share a target. AddE with a fresh
// node gets a unique target (it can never cancel against prior ops).
func (o Op) target(seq int) string {
	switch o.Kind {
	case Empty:
		return fmt.Sprintf("empty:%d", seq)
	case RmL, AddL:
		return fmt.Sprintf("L:%d:%s", o.U, o.Lit.Attr)
	case RxL, RfL:
		return fmt.Sprintf("L:%d:%s", o.U, o.Lit.Attr)
	case RmE, RxE, RfE:
		return fmt.Sprintf("E:%d:%d", o.U, o.U2)
	case AddE:
		if o.NewNode != nil {
			return fmt.Sprintf("E:new:%d", seq)
		}
		return fmt.Sprintf("E:%d:%d", o.U, o.U2)
	}
	return "?"
}

// Canonical reports whether the sequence is canonical (§4): no target is
// touched by both a relaxation and a refinement (they would cancel out),
// and no target is touched twice by the same class (redundant — a
// single operator expresses the combined effect).
func (s Sequence) Canonical() bool {
	kinds := map[string]Kind{}
	for i, o := range s {
		if o.Kind == Empty {
			continue
		}
		t := o.target(i)
		if _, seen := kinds[t]; seen {
			return false
		}
		kinds[t] = o.Kind
	}
	return true
}

// normalRank orders operators within a normal form per the constructive
// proof of Lemma 4.1: relaxations first (RxL, RxE, RmL, then RmE), then
// refinements (AddE, AddL, RfE, RfL). This ordering keeps every prefix
// applicable: bound relaxations and literal removals precede edge
// removals, and edge additions precede the literals/bounds that refer
// to them.
func normalRank(k Kind) int {
	switch k {
	case RxL:
		return 0
	case RxE:
		return 1
	case RmL:
		return 2
	case RmE:
		return 3
	case AddE:
		return 4
	case AddL:
		return 5
	case RfE:
		return 6
	case RfL:
		return 7
	}
	return 8 // Empty sorts last and is dropped by NormalForm
}

// NormalForm returns an equivalent sequence in normal form (Lemma 4.1):
// a relaxation-only prefix followed by a refinement-only suffix, with
// empty operators dropped. The receiver must be canonical; NormalForm
// returns an error otherwise (non-canonical sequences have cancel-outs
// whose removal is the caller's responsibility).
func (s Sequence) NormalForm() (Sequence, error) {
	if !s.Canonical() {
		return nil, fmt.Errorf("ops: sequence is not canonical")
	}
	out := make(Sequence, 0, len(s))
	for _, o := range s {
		if o.Kind != Empty {
			out = append(out, o)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return normalRank(out[i].Kind) < normalRank(out[j].Kind)
	})
	return out, nil
}

// IsNormalForm reports whether the sequence already has the
// relax-prefix/refine-suffix shape.
func (s Sequence) IsNormalForm() bool {
	seenRefine := false
	for _, o := range s {
		switch {
		case o.Kind == Empty:
		case o.Kind.IsRefine():
			seenRefine = true
		case o.Kind.IsRelax() && seenRefine:
			return false
		}
	}
	return true
}
