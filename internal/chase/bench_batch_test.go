package chase_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"wqe/internal/bench"
	"wqe/internal/chase"
	"wqe/internal/datagen"
	"wqe/internal/distindex"
	"wqe/internal/graph"
)

// The single-core warning and overwrite guard live in internal/bench,
// shared with the serving benchmark; these wrappers keep this package's
// historical call sites unchanged.
func warnSingleCore(t *testing.T) { t.Helper(); bench.WarnSingleCore(t) }

func guardSingleCoreOverwrite(t *testing.T, out string) {
	t.Helper()
	bench.GuardSingleCoreOverwrite(t, out)
}

func shouldSkipOverwrite(out string, gomaxprocs int, force bool) (bool, int) {
	return bench.ShouldSkipOverwrite(out, gomaxprocs, force)
}

// batchBench is the BENCH_batch.json schema: cross-question batch
// throughput (jobs/sec, sequential vs batched over one shared session)
// and PLL index construction (sequential vs parallel build), plus the
// provenance needed to interpret the numbers.
type batchBench struct {
	GeneratedBy  string `json:"generated_by"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	NumCPU       int    `json:"num_cpu"`
	BatchWorkers int    `json:"batch_workers"`
	Workload     string `json:"workload"`

	SequentialMS      float64 `json:"sequential_ms"`
	BatchedMS         float64 `json:"batched_ms"`
	SeqJobsPerSec     float64 `json:"seq_jobs_per_sec"`
	BatchedJobsPerSec float64 `json:"batched_jobs_per_sec"`
	Speedup           float64 `json:"speedup"`
	OutputIdentical   bool    `json:"output_identical"`

	PLLNodes      int     `json:"pll_nodes"`
	PLLSeqMS      float64 `json:"pll_seq_build_ms"`
	PLLParallelMS float64 `json:"pll_parallel_build_ms"`
	PLLSpeedup    float64 `json:"pll_build_speedup"`
	PLLIdentical  bool    `json:"pll_identical"`

	Note string `json:"note"`
}

// TestEmitBatchBench measures the cross-question batch engine (AskAll
// over one shared session, Workers=1 vs Workers=GOMAXPROCS) and the
// parallel PLL construction, and writes BENCH_batch.json. Gated behind
// WQE_BATCH_BENCH_JSON: set it to 1 to write the repo default, or to an
// explicit output path. `make bench-batch` wraps this.
func TestEmitBatchBench(t *testing.T) {
	out := os.Getenv("WQE_BATCH_BENCH_JSON")
	if out == "" {
		t.Skip("set WQE_BATCH_BENCH_JSON=1 (or to an output path) to emit BENCH_batch.json")
	}
	if out == "1" {
		out = filepath.Join("..", "..", "BENCH_batch.json")
	}
	guardSingleCoreOverwrite(t, out)

	const nJobs = 8
	const workload = "products n=4000: 8 Why-questions batched over one shared session " +
		"(AnsHeu(4), MaxSteps=2000, cache on), AskAll Workers=1 vs Workers=GOMAXPROCS"
	g, instances := genInstances(t, datagen.DatasetProducts, 4000, nJobs, 11)
	jobs := make([]chase.BatchJob, len(instances))
	for i, inst := range instances {
		jobs[i] = chase.BatchJob{Q: inst.Q, E: inst.E, Beam: 4, MaxSteps: 2000}
	}

	// Each run gets a fresh session so the star-view cache starts cold
	// both times; within a run, the batch shares it exactly as a user's
	// exploratory session would.
	run := func(workers int) (time.Duration, string) {
		cfg := chase.DefaultConfig()
		cfg.MaxSteps = 2000
		cfg.Cache = true
		sess := chase.NewSession(g, cfg)
		start := time.Now()
		results, _ := sess.AskAll(jobs, chase.BatchOptions{Workers: workers})
		dur := time.Since(start)
		transcript := ""
		for _, r := range results {
			if r.Err != nil {
				t.Fatalf("batch job failed: %v", r.Err)
			}
			transcript += renderAnswer(r.Answer) + "\n"
		}
		return dur, transcript
	}

	run(1) // warm allocator and OS caches once
	seqDur, seqOut := run(1)
	batchDur, batchOut := run(0)

	// PLL construction: sequential vs parallel build over the same
	// product graph. Identity is asserted the strong way in the
	// distindex package tests (label-for-label); here we record the
	// observable contract: same label mass, same distances.
	pllStart := time.Now()
	seqPLL := distindex.NewPLL(g)
	pllSeqDur := time.Since(pllStart)
	pllStart = time.Now()
	parPLL := distindex.NewPLLParallel(g, 0)
	pllParDur := time.Since(pllStart)
	forcedPLL := distindex.NewPLLParallel(g, 4) // exercise the batched path even on 1 core
	pllIdentical := seqPLL.LabelSize() == parPLL.LabelSize() &&
		seqPLL.LabelSize() == forcedPLL.LabelSize()
	nNodes := g.NumNodes()
	for i := 0; i < nNodes && pllIdentical; i += 13 {
		for j := 1; j < nNodes; j += 101 {
			a, b := graph.NodeID(i), graph.NodeID((i+j)%nNodes)
			if seqPLL.Dist(a, b) != parPLL.Dist(a, b) || seqPLL.Dist(a, b) != forcedPLL.Dist(a, b) {
				pllIdentical = false
				break
			}
		}
	}

	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	jps := func(d time.Duration) float64 { return float64(nJobs) / d.Seconds() }
	b := batchBench{
		GeneratedBy:       "WQE_BATCH_BENCH_JSON=1 go test ./internal/chase -run TestEmitBatchBench (make bench-batch)",
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		NumCPU:            runtime.NumCPU(),
		BatchWorkers:      runtime.GOMAXPROCS(0),
		Workload:          workload,
		SequentialMS:      ms(seqDur),
		BatchedMS:         ms(batchDur),
		SeqJobsPerSec:     jps(seqDur),
		BatchedJobsPerSec: jps(batchDur),
		Speedup:           float64(seqDur) / float64(batchDur),
		OutputIdentical:   seqOut == batchOut,
		PLLNodes:          g.NumNodes(),
		PLLSeqMS:          ms(pllSeqDur),
		PLLParallelMS:     ms(pllParDur),
		PLLSpeedup:        float64(pllSeqDur) / float64(pllParDur),
		PLLIdentical:      pllIdentical,
		Note: "throughput target is >=2x batched-over-sequential on >=4 cores; " +
			"single-core runners record ~1.0x because the helper-token budget is empty " +
			"and every batch degenerates to submission-order execution",
	}
	if !b.OutputIdentical {
		t.Fatalf("batched output diverged from sequential:\n--- seq\n%s--- batched\n%s", seqOut, batchOut)
	}
	if !b.PLLIdentical {
		t.Fatal("parallel PLL index diverged from sequential build")
	}
	warnSingleCore(t)

	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatalf("writing %s: %v", out, err)
	}
	t.Logf("wrote %s: batch %.0fms->%.0fms (%.2fx, %.1f jobs/sec), PLL build %.0fms->%.0fms (%.2fx) on %d core(s)",
		out, b.SequentialMS, b.BatchedMS, b.Speedup, b.BatchedJobsPerSec,
		b.PLLSeqMS, b.PLLParallelMS, b.PLLSpeedup, b.GOMAXPROCS)
}
