package chase_test

import (
	"os"
	"path/filepath"
	"testing"
)

// TestShouldSkipOverwrite pins the bench-artifact guard: a single-core
// run must refuse to overwrite a multi-core recording, and nothing
// else — missing artifacts, unreadable JSON, single-core artifacts,
// multi-core runs, and the WQE_BENCH_FORCE override all write through.
func TestShouldSkipOverwrite(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	multi := write("multi.json", `{"gomaxprocs": 8, "speedup": 3.1}`)
	single := write("single.json", `{"gomaxprocs": 1, "speedup": 1.0}`)
	garbage := write("garbage.json", `not json`)
	missing := filepath.Join(dir, "missing.json")

	cases := []struct {
		name       string
		out        string
		gomaxprocs int
		force      bool
		wantSkip   bool
		wantPrev   int
	}{
		{"single-core over multi-core recording", multi, 1, false, true, 8},
		{"forced single-core over multi-core", multi, 1, true, false, 0},
		{"multi-core over multi-core", multi, 8, false, false, 0},
		{"single-core over single-core recording", single, 1, false, false, 0},
		{"single-core over unreadable artifact", garbage, 1, false, false, 0},
		{"single-core with no artifact", missing, 1, false, false, 0},
	}
	for _, tc := range cases {
		skip, prev := shouldSkipOverwrite(tc.out, tc.gomaxprocs, tc.force)
		if skip != tc.wantSkip || prev != tc.wantPrev {
			t.Errorf("%s: shouldSkipOverwrite = (%v, %d), want (%v, %d)",
				tc.name, skip, prev, tc.wantSkip, tc.wantPrev)
		}
	}
}
