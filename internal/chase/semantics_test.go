package chase_test

import (
	"testing"

	"wqe/internal/chase"
	"wqe/internal/datagen"
	"wqe/internal/ops"
)

// TestAnswerIsValidChaseResult checks the Theorem 4.3 direction we can
// test mechanically: every answer the algorithms return corresponds to
// a terminal canonical Q-Chase sequence in normal form — the operator
// sequence is canonical, normal-form, within budget, applicable to Q,
// reproduces the reported rewrite, and its answers satisfy E when the
// answer claims so.
func TestAnswerIsValidChaseResult(t *testing.T) {
	g, instances := genInstances(t, "watdiv-like", 2500, 4, 61)
	params := ops.Params{MaxBound: 3}
	for _, inst := range instances {
		for _, algoName := range []string{"AnsW", "AnsHeu"} {
			w, err := chase.NewWhy(g, inst.Q, inst.E, chase.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			var a chase.Answer
			if algoName == "AnsW" {
				a = w.AnsW()
			} else {
				a = w.AnsHeu(3)
			}

			if !a.Ops.Canonical() {
				t.Errorf("%s: non-canonical sequence %v", algoName, a.Ops)
			}
			if !a.Ops.IsNormalForm() {
				t.Errorf("%s: sequence not in normal form %v", algoName, a.Ops)
			}
			if a.Cost > w.Cfg.Budget+1e-9 {
				t.Errorf("%s: cost %v over budget", algoName, a.Cost)
			}
			rebuilt, err := a.Ops.Apply(inst.Q, params)
			if err != nil {
				t.Errorf("%s: sequence not applicable to Q: %v", algoName, err)
				continue
			}
			if rebuilt.Key() != a.Query.Key() {
				t.Errorf("%s: Q ⊕ O ≠ reported rewrite:\n%s\nvs\n%s",
					algoName, rebuilt, a.Query)
			}
			// Re-evaluate independently: answers and satisfaction agree.
			res := w.Matcher.Match(a.Query)
			if len(res.Answer) != len(a.Matches) {
				t.Errorf("%s: reported %d matches, re-evaluation has %d",
					algoName, len(a.Matches), len(res.Answer))
			}
			if got := w.Satisfied(res.Answer); got != a.Satisfied {
				t.Errorf("%s: satisfaction mismatch: reported %v, actual %v",
					algoName, a.Satisfied, got)
			}
			if got := w.Closeness(res.Answer); !almostEqual(got, a.Closeness) {
				t.Errorf("%s: closeness mismatch: %v vs %v", algoName, a.Closeness, got)
			}
		}
	}
}

// TestChaseStepSemantics traces the Fig 6 simulation on the running
// example: a relaxation step adds relevant candidates to the answer, a
// refinement step removes irrelevant matches, and the final pair
// satisfies the exemplar.
func TestChaseStepSemantics(t *testing.T) {
	f := datagen.NewFig1()
	cfg := chase.DefaultConfig()
	cfg.Budget = 4
	w, err := chase.NewWhy(f.G, f.Q, f.E, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := w.AnsW()

	// Replay the chase steps: relaxations must never shrink RM, and
	// refinements must never add matches.
	prev := w.Matcher.Match(f.Q)
	q := f.Q
	for _, d := range a.Diff {
		q2 := mustApply(t, d.Op, q)
		next := w.Matcher.Match(q2)
		if d.Op.Kind.IsRelax() {
			for _, v := range prev.Answer {
				if !next.Has(v) {
					t.Errorf("relaxation %s removed match %d", d.Op, v)
				}
			}
		}
		if d.Op.Kind.IsRefine() {
			for _, v := range next.Answer {
				if !prev.Has(v) {
					t.Errorf("refinement %s added match %d", d.Op, v)
				}
			}
		}
		prev, q = next, q2
	}
	if !w.Satisfied(prev.Answer) {
		t.Error("replayed terminal pair does not satisfy E")
	}
}

// TestRelaxMonotone property: applying any generated relaxation never
// removes answers; any generated refinement never adds them (the
// operator-class semantics underlying the Q-Chase step rules).
func TestRelaxMonotone(t *testing.T) {
	g, instances := genInstances(t, "offshore-like", 2000, 2, 67)
	for _, inst := range instances {
		w, err := chase.NewWhy(g, inst.Q, inst.E, chase.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		res := w.Matcher.Match(inst.Q)
		for i, s := range w.GenRelax(inst.Q, res, map[string]bool{}, 3) {
			if i >= 8 {
				break
			}
			res2 := w.Matcher.Match(mustApply(t, s.Op, inst.Q))
			for _, v := range res.Answer {
				if !res2.Has(v) {
					t.Errorf("relaxation %s dropped match %d", s.Op, v)
				}
			}
		}
		for i, s := range w.GenRefine(inst.Q, res, map[string]bool{}, 3) {
			if i >= 8 {
				break
			}
			res2 := w.Matcher.Match(mustApply(t, s.Op, inst.Q))
			for _, v := range res2.Answer {
				if !res.Has(v) {
					t.Errorf("refinement %s added match %d", s.Op, v)
				}
			}
		}
	}
}
