package chase

import (
	"testing"

	"wqe/internal/datagen"
	"wqe/internal/exemplar"
	"wqe/internal/par"
	"wqe/internal/query"
)

// TestCancelStopsSearchEarly pins the cancellation plumbing: a
// Why-question whose Cancel channel is already closed performs the root
// evaluation, then stops at the first claim iteration — far short of
// both the unlimited run and MaxSteps — and still returns a usable
// best-so-far answer (the anytime contract).
func TestCancelStopsSearchEarly(t *testing.T) {
	f := datagen.NewFig1()
	cfg := DefaultConfig()
	cfg.Budget = 4

	done := make(chan struct{})
	close(done)
	for _, algo := range []struct {
		name string
		run  func(w *Why) Answer
	}{
		{"AnsW", func(w *Why) Answer { return w.AnsW() }},
		{"AnsHeu", func(w *Why) Answer { return w.AnsHeu(8) }},
		{"ApxWhyM", func(w *Why) Answer { return w.ApxWhyM() }},
		{"AnsWE", func(w *Why) Answer { return w.AnsWE() }},
		{"FMAnsW", func(w *Why) Answer { return w.FMAnsW() }},
	} {
		full, err := NewWhy(f.G, f.Q, f.E, cfg)
		if err != nil {
			t.Fatalf("%s: NewWhy: %v", algo.name, err)
		}
		algo.run(full)

		ccfg := cfg
		ccfg.Cancel = done
		w, err := NewWhy(f.G, f.Q, f.E, ccfg)
		if err != nil {
			t.Fatalf("%s: NewWhy: %v", algo.name, err)
		}
		ans := algo.run(w)
		if ans.Query == nil {
			t.Errorf("%s: anytime contract broken: cancelled run returned no answer", algo.name)
		}
		// The poll sits at the top of each algorithm's claim/selection
		// loop, so a pre-cancelled run gets its setup evaluations in
		// (the root; for ApxWhyM/FMAnsW also the seed pool) but never
		// reaches the search proper.
		if w.Stats.Steps >= full.Stats.Steps {
			t.Errorf("%s: cancelled run took %d steps, uncancelled %d — cancellation did not cut the search",
				algo.name, w.Stats.Steps, full.Stats.Steps)
		}
		if w.Stats.Steps >= w.Cfg.MaxSteps {
			t.Errorf("%s: cancelled run exhausted MaxSteps", algo.name)
		}
	}
}

// TestCancelMidBeamReleasesBudgetTokens cancels a chase *while it is
// running* — the OnImprove anytime hook fires mid-search, on the
// algorithm goroutine, making the cancellation point deterministic —
// and proves that (a) the search stops before its uncancelled step
// count and (b) every helper token the question's evaluation fan-out
// held is back in the budget when the algorithm returns: a cancelled
// chase cannot strand capacity other questions need.
func TestCancelMidBeamReleasesBudgetTokens(t *testing.T) {
	f := datagen.NewFig1()
	const tokens = 3
	budget := par.NewBudget(tokens)

	fullCfg := DefaultConfig()
	fullCfg.Budget = 4
	full, err := NewWhy(f.G, f.Q, f.E, fullCfg)
	if err != nil {
		t.Fatalf("NewWhy: %v", err)
	}
	full.AnsHeu(8)

	cancel := make(chan struct{})
	cfg := DefaultConfig()
	cfg.Budget = 4
	cfg.Workers = 4 // fan evaluations out so helpers actually draw tokens
	cfg.Cancel = cancel
	improved := 0
	cfg.OnImprove = func(Answer) {
		improved++
		if improved == 1 {
			close(cancel) // cancel at the first improvement: mid-search by construction
		}
	}
	w, err := newWhyWith(f.G, f.Q, f.E, cfg, nil, nil, budget)
	if err != nil {
		t.Fatalf("newWhyWith: %v", err)
	}
	ans := w.AnsHeu(8)
	if improved == 0 {
		t.Fatal("OnImprove never fired; cancellation point never reached")
	}
	if ans.Query == nil {
		t.Fatal("cancelled mid-beam run returned no best-so-far answer")
	}
	if w.Stats.Steps >= full.Stats.Steps {
		t.Errorf("cancellation did not cut the search: %d steps vs %d uncancelled",
			w.Stats.Steps, full.Stats.Steps)
	}

	// Every helper token must be free again: the claim loop exited, the
	// evaluation workers joined, ForEachIn released what it acquired.
	got := 0
	for budget.TryAcquire() {
		got++
	}
	if got != tokens {
		t.Errorf("budget leaked: %d of %d tokens free after cancelled chase", got, tokens)
	}
}

// TestAskAllCancelFailsQueuedJobsFast: a batch cancelled before its
// jobs start reports ErrCancelled per slot without running any search,
// and the batch stats count the cancellations.
func TestAskAllCancelFailsQueuedJobsFast(t *testing.T) {
	f := datagen.NewFig1()
	cfg := DefaultConfig()
	cfg.Budget = 4
	s := NewSession(f.G, cfg)

	done := make(chan struct{})
	close(done)
	jobs := []BatchJob{
		{Q: f.Q, E: f.E},
		{Q: f.Q, E: f.E, Beam: 3},
	}
	results, stats := s.AskAll(jobs, BatchOptions{Workers: 1, Cancel: done})
	for i, r := range results {
		if r.Err != ErrCancelled {
			t.Errorf("job %d: err = %v, want ErrCancelled", i, r.Err)
		}
		if r.Steps != 0 {
			t.Errorf("job %d: ran %d steps after batch cancel", i, r.Steps)
		}
	}
	if stats.Cancelled != len(jobs) || stats.Failed != len(jobs) {
		t.Errorf("stats = %+v, want %d cancelled/failed", stats, len(jobs))
	}
	if got := s.Counters().Questions; got != 0 {
		t.Errorf("session counted %d questions for cancelled batch", got)
	}
}

// TestSessionRunAlgoDispatch: Session.Run routes every Algo value to
// its engine, rejects unknown ones per job, and keeps the historical
// meaning of a bare Beam job.
func TestSessionRunAlgoDispatch(t *testing.T) {
	f := datagen.NewFig1()
	cfg := DefaultConfig()
	cfg.Budget = 4
	s := NewSession(f.G, cfg)

	for _, algo := range []string{"", "answ", "heu", "whymany", "whyempty", "fmansw"} {
		res := s.Run(BatchJob{Q: f.Q, E: f.E, Algo: algo})
		if res.Err != nil {
			t.Errorf("algo %q: %v", algo, res.Err)
			continue
		}
		if res.Answer.Query == nil || res.Steps < 1 {
			t.Errorf("algo %q: empty outcome %+v", algo, res)
		}
	}
	if res := s.Run(BatchJob{Q: f.Q, E: f.E, Algo: "nope"}); res.Err == nil {
		t.Error("unknown algo must fail the job")
	}
	// "" with Beam keeps the historical meaning: beam search.
	if res := s.Run(BatchJob{Q: f.Q, E: f.E, Beam: 3}); res.Err != nil {
		t.Errorf("bare Beam job: %v", res.Err)
	}

	c := s.Counters()
	if c.Questions != 7 {
		t.Errorf("session questions = %d, want 7", c.Questions)
	}
	if c.Steps < c.Questions {
		t.Errorf("session steps = %d, want ≥ %d", c.Steps, c.Questions)
	}
}

// TestSessionAskMultiFocusSharesState: the session multi-focus path
// runs every focus through the shared star-view cache (a repeated focus
// hits stars the first pass materialized), counts its questions, and
// the deprecated standalone AnsWMultiFocus delegates with identical
// answers.
func TestSessionAskMultiFocusSharesState(t *testing.T) {
	f := datagen.NewFig1()
	cfg := DefaultConfig()
	cfg.Budget = 4

	s := NewSession(f.G, cfg)
	foci := []query.NodeID{f.Q.Focus, f.Q.Focus} // repeat: the second must reuse cached stars
	exemplars := []*exemplar.Exemplar{f.E, f.E}
	answers, err := s.AskMultiFocus(f.Q, foci, exemplars)
	if err != nil {
		t.Fatalf("AskMultiFocus: %v", err)
	}
	if len(answers) != len(foci) {
		t.Fatalf("got %d answers, want %d", len(answers), len(foci))
	}
	for i, a := range answers {
		if a.Focus != foci[i] || a.Answer.Query == nil {
			t.Errorf("answer %d: %+v", i, a)
		}
	}
	if answers[0].Answer.Closeness != answers[1].Answer.Closeness {
		t.Errorf("identical foci diverged: %v vs %v",
			answers[0].Answer.Closeness, answers[1].Answer.Closeness)
	}

	c := s.Counters()
	if c.Questions != int64(len(foci)) {
		t.Errorf("session questions = %d, want %d", c.Questions, len(foci))
	}
	if c.Cache.Hits == 0 {
		t.Error("second focus shared no star-view cache state with the first")
	}

	if _, err := s.AskMultiFocus(f.Q, foci, exemplars[:1]); err == nil {
		t.Error("mismatched foci/exemplars slices must error")
	}

	legacy, err := AnsWMultiFocus(f.G, f.Q, foci, exemplars, cfg)
	if err != nil {
		t.Fatalf("AnsWMultiFocus: %v", err)
	}
	for i := range legacy {
		if legacy[i].Answer.Closeness != answers[i].Answer.Closeness ||
			legacy[i].Answer.Cost != answers[i].Answer.Cost {
			t.Errorf("deprecated path diverged at %d: %+v vs %+v",
				i, legacy[i].Answer, answers[i].Answer)
		}
	}
}
