package chase

import (
	"container/heap"
	"time"

	"wqe/internal/match"
	"wqe/internal/ops"
	"wqe/internal/query"
)

// state is one node (Q_i, E_i) of the simulated Q-Chase tree: a
// verified query rewrite with its evaluation, plus the secondary
// priority queue Q.O of pending picky operators (generated lazily on
// first visit).
type state struct {
	q          *query.Query
	seq        ops.Sequence
	cost       float64
	res        *match.Result
	cl         float64
	clPlus     float64
	sat        bool // the state satisfies the exemplar
	refineOnly bool // the normal form forbids relaxing after refining
	queue      []scoredOp
	generated  bool
	diff       []DiffEntry
	id         int // insertion order, for deterministic tie-breaking

	// spec caches speculative sibling evaluations by rewrite key: when
	// the best-first search evaluates this state's top pending operator,
	// idle workers prefetch the next few siblings' Match results. A
	// Match result depends only on the rewrite (the key), never on which
	// operator produced it, so consuming a cached entry is exact — and
	// entries that are never consumed never count as steps, so the
	// MaxSteps schedule matches the sequential one candidate-for-
	// candidate.
	spec map[string]*match.Result
}

// prio is the frontier priority: the state's closeness plus the
// pickiness of its best pending operator. Pickiness over-approximates
// the one-step closeness gain (Lemma 5.2), so prio is an optimistic
// one-step lookahead that lets the best-first search cross plateaus
// (operator chains whose payoff needs several steps).
func (s *state) prio() float64 {
	if len(s.queue) == 0 {
		return s.cl
	}
	best := s.queue[0].Pick
	if best < 0 {
		best = 0
	}
	return s.cl + best
}

// ensure generates the state's picky operators on first visit
// (procedure NextOp, Fig 7).
func (s *state) ensure(w *Why, kthBestCl float64) {
	if s.generated {
		return
	}
	s.generated = true
	used := opTargets(s.seq)
	budgetLeft := w.Cfg.Budget - s.cost

	refineCond := hasIM(w, s.res)
	relaxCond := !s.refineOnly
	if w.Cfg.Prune {
		// Lemma 5.5: refine only when removing IM can still beat the
		// best known rewrite; relax only while cl⁺ can still grow.
		refineCond = refineCond && s.clPlus > kthBestCl
		relaxCond = relaxCond && s.clPlus < w.ClStar-1e-12
	}
	if refineCond {
		s.queue = append(s.queue, w.GenRefine(s.q, s.res, used, budgetLeft)...)
	}
	if relaxCond {
		s.queue = append(s.queue, w.GenRelax(s.q, s.res, used, budgetLeft)...)
	}
	// Merge keeps each generator's order; globally re-rank by
	// pickiness (stable, so equal scores keep generator priority).
	sortScored(s.queue)
}

// next pops the best pending operator. It returns ok=false when the
// state is exhausted — the caller then backtracks.
func (s *state) next(w *Why, kthBestCl float64) (scoredOp, bool) {
	s.ensure(w, kthBestCl)
	if len(s.queue) > 0 {
		op := s.queue[0]
		s.queue = s.queue[1:]
		return op, true
	}
	return scoredOp{}, false
}

func sortScored(q []scoredOp) {
	// Insertion sort by descending pickiness. Ties order relaxations
	// before refinements (the normal form relaxes first; refinements
	// that pay the same remain reachable afterwards, the reverse is
	// not), then cheaper operators first (same estimated gain, more
	// budget preserved). Queues are small and mostly sorted already.
	phase := func(o scoredOp) int {
		if o.Op.Kind.IsRelax() {
			return 0
		}
		return 1
	}
	better := func(a, b scoredOp) bool {
		switch {
		case a.Pick > b.Pick:
			return true
		case a.Pick < b.Pick:
			return false
		}
		if pa, pb := phase(a), phase(b); pa != pb {
			return pa < pb
		}
		return a.Cost < b.Cost
	}
	for i := 1; i < len(q); i++ {
		for j := i; j > 0 && better(q[j], q[j-1]); j-- {
			q[j], q[j-1] = q[j-1], q[j]
		}
	}
}

func hasIM(w *Why, res *match.Result) bool {
	for _, v := range res.Answer {
		if !w.Eval.InRep(v) {
			return true
		}
	}
	return false
}

// stateHeap is the primary priority queue P, ranked by closeness, then
// by remaining potential cl⁺, then depth-first: on plateaus (operators
// that only pay off after further steps) the traversal keeps extending
// the current Q-Chase sequence to its terminal before backtracking,
// exactly as the paper's simulation in Example 5.1 proceeds.
type stateHeap []*state

func (h stateHeap) Len() int { return len(h) }
func (h stateHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	switch pa, pb := a.prio(), b.prio(); {
	case pa > pb:
		return true
	case pa < pb:
		return false
	}
	switch {
	case a.cl > b.cl:
		return true
	case a.cl < b.cl:
		return false
	}
	switch {
	case a.clPlus > b.clPlus:
		return true
	case a.clPlus < b.clPlus:
		return false
	}
	return a.id > b.id // most recent first: depth-first on plateaus
}
func (h stateHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *stateHeap) Push(x interface{}) { *h = append(*h, x.(*state)) }
func (h *stateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// AnsW computes the optimal query rewrite for the Why-question
// (Algorithm AnsW, Fig 5): an anytime best-first traversal of the
// Q-Chase tree with backtracking, picky-operator generation, cl⁺
// pruning, and early termination at the theoretical optimum cl*.
func (w *Why) AnsW() Answer {
	return w.TopK(1)[0]
}

// TopK returns the k best query rewrites (§6.2), best first. The slice
// always has k entries; when fewer satisfying rewrites exist, the
// remaining entries hold the best-closeness rewrites found (their
// Satisfied field reports the difference), falling back to the original
// query.
func (w *Why) TopK(k int) []Answer {
	if k < 1 {
		k = 1
	}
	start := w.clock()
	w.beginRun()
	defer w.endRun(start)
	workers := w.workers()

	rootAns, rootRes := w.evaluate(w.Q, nil)
	root := &state{
		q:      w.Q,
		res:    rootRes,
		cl:     rootAns.Closeness,
		clPlus: w.ClPlus(rootRes.Answer),
	}

	best := newTopList(k, rootAns)
	if rootAns.Satisfied {
		best.offer(rootAns)
	}

	visited := map[string]bool{w.Q.Key(): true}
	var pq stateHeap
	heap.Init(&pq)
	heap.Push(&pq, root)
	w.Stats.States++
	nextID := 1

	deadline := w.deadline(w.clock())

	for pq.Len() > 0 {
		if w.stepsUsed() >= w.Cfg.MaxSteps {
			break
		}
		if w.stop(deadline) {
			break
		}
		s := pq[0] // peek
		op, ok := s.next(w, best.kthCl())
		if !ok {
			heap.Pop(&pq) // backtrack: terminal sequence at s
			continue
		}
		heap.Fix(&pq, 0) // popping an op lowered s's lookahead priority
		if s.cost+op.Op.Cost(w.G) > w.Cfg.Budget+1e-9 {
			continue
		}
		q2, err := op.Op.Apply(s.q)
		if err != nil {
			continue // generator emitted an op that no longer fits s.q
		}
		key := q2.Key()
		if visited[key] {
			continue
		}
		visited[key] = true

		seq2 := append(append(ops.Sequence{}, s.seq...), op.Op)
		ans2, res2 := w.evaluateTop(s, op, key, q2, seq2, visited, workers)
		s2 := &state{
			q:          q2,
			seq:        seq2,
			cost:       ans2.Cost,
			res:        res2,
			cl:         ans2.Closeness,
			clPlus:     w.ClPlus(res2.Answer),
			refineOnly: s.refineOnly || op.Op.Kind.IsRefine(),
			id:         nextID,
		}
		nextID++
		s2.diff = append(append([]DiffEntry{}, s.diff...),
			w.diffEntry(op.Op, op.PickyEdge, s.res.Answer, res2.Answer))
		ans2.Diff = s2.diff

		// Prune: a refinement-only subtree can never exceed its cl⁺
		// (Lemma 5.5(2)).
		if w.Cfg.Prune && s2.refineOnly && s2.clPlus <= best.kthCl()+1e-12 {
			w.Stats.Pruned++
			best.offerUnsat(ans2)
			continue
		}

		if best.offer(ans2) {
			w.Stats.Trajectory = append(w.Stats.Trajectory,
				Sample{At: time.Since(start), Closeness: best.bestCl()})
			if w.Cfg.OnImprove != nil {
				w.Cfg.OnImprove(best.list[0])
			}
		}

		// Theoretically optimal: stop (line 13 of Fig 5; for k > 1 the
		// whole list must be saturated). This is one of the pruning
		// strategies, so the AnsWb ablation (Prune off) runs without it.
		if w.Cfg.Prune && best.full() && best.kthCl() >= w.ClStar-1e-12 {
			break
		}

		s2.ensure(w, best.kthCl()) // generate ops now: prio needs the lookahead
		heap.Push(&pq, s2)
		w.Stats.States++
	}
	return best.results()
}

// evaluateTop evaluates the operator the best-first search just popped
// from state s. With a parallel pool it additionally prefetches s's next
// pending siblings: whichever sibling rewrites pass the same budget/
// visited screens the search applies at consumption time are Matched on
// idle workers and parked in s.spec, keyed by rewrite key. Control flow
// never depends on speculative results — they are a pure evaluation
// cache, consumed (and only then counted as a step) if and when the
// search pops that sibling — so the traversal is byte-identical to the
// sequential one.
func (w *Why) evaluateTop(s *state, op scoredOp, key string, q2 *query.Query,
	seq2 ops.Sequence, visited map[string]bool, workers int) (Answer, *match.Result) {
	if res, ok := s.spec[key]; ok {
		w.steps.Add(1) // consumption is the step, not the prefetch
		return w.answerFor(q2, seq2, res), res
	}
	if workers <= 1 {
		ans, res := w.evaluate(q2, seq2)
		return ans, res
	}

	batch := []*beamCand{{q2: q2, seq2: seq2, key: key}}
	seen := map[string]bool{key: true}
	for _, sib := range s.queue {
		if len(batch) >= workers {
			break
		}
		if s.cost+sib.Op.Cost(w.G) > w.Cfg.Budget+1e-9 {
			continue
		}
		qs, err := sib.Op.Apply(s.q)
		if err != nil {
			continue
		}
		ks := qs.Key()
		if seen[ks] || visited[ks] {
			continue
		}
		if _, ok := s.spec[ks]; ok {
			continue
		}
		seen[ks] = true
		batch = append(batch, &beamCand{q2: qs, key: ks})
	}
	w.forEach(workers, len(batch), func(i int) {
		c := batch[i]
		if i == 0 {
			c.ans, c.res = w.evaluate(c.q2, c.seq2)
			return
		}
		_, c.res = w.evaluateUncounted(c.q2, nil)
	})
	if len(batch) > 1 {
		if s.spec == nil {
			s.spec = make(map[string]*match.Result, len(batch)-1)
		}
		for _, c := range batch[1:] {
			s.spec[c.key] = c.res
		}
	}
	return batch[0].ans, batch[0].res
}

// topList maintains the k best satisfying answers plus a fallback for
// unsatisfying ones.
type topList struct {
	k        int
	list     []Answer // satisfied, sorted by closeness desc
	fallback Answer   // best-closeness rewrite regardless of satisfaction
	root     Answer
}

func newTopList(k int, root Answer) *topList {
	t := &topList{k: k, root: root, fallback: root}
	return t
}

// offer inserts a satisfied answer; it returns whether the best entry
// improved. Unsatisfied answers only update the fallback.
func (t *topList) offer(a Answer) bool {
	t.offerUnsat(a)
	if !a.Satisfied {
		return false
	}
	pos := len(t.list)
	for i, b := range t.list {
		if a.Closeness > b.Closeness {
			pos = i
			break
		}
	}
	if pos >= t.k {
		return false
	}
	t.list = append(t.list, Answer{})
	copy(t.list[pos+1:], t.list[pos:])
	t.list[pos] = a
	if len(t.list) > t.k {
		t.list = t.list[:t.k]
	}
	return pos == 0
}

func (t *topList) offerUnsat(a Answer) {
	if a.Closeness > t.fallback.Closeness {
		t.fallback = a
	}
}

// kthCl returns cl(Q*_k): the k-th best satisfied closeness, or the
// root closeness when fewer entries exist (§6.2's pruning threshold).
func (t *topList) kthCl() float64 {
	if len(t.list) == t.k {
		return t.list[t.k-1].Closeness
	}
	return t.root.Closeness
}

func (t *topList) bestCl() float64 {
	if len(t.list) > 0 {
		return t.list[0].Closeness
	}
	return t.fallback.Closeness
}

func (t *topList) full() bool { return len(t.list) == t.k }

// results pads the list to k entries with the fallback/root.
func (t *topList) results() []Answer {
	out := append([]Answer{}, t.list...)
	for len(out) < t.k {
		if len(out) == 0 {
			out = append(out, t.fallback)
		} else {
			out = append(out, t.root)
		}
	}
	return out
}
