package chase

import (
	"testing"
	"time"

	"wqe/internal/datagen"
)

// fakeClock advances a fixed step on every read, making TimeLimit
// expiry a deterministic function of how many deadline checks ran.
func fakeClock(step time.Duration) func() time.Time {
	now := time.Unix(0, 0)
	return func() time.Time {
		now = now.Add(step)
		return now
	}
}

// TestBeamDeadlineCheckedPerCandidate pins the TimeLimit bugfix: the
// beam search re-checks the deadline for every claimed candidate, not
// just once per frontier state, so a single state with a large operator
// pool can no longer blow past the limit by a whole beam width.
//
// The fake clock advances 4ms per read against a 10ms limit anchored at
// the first read: the first level's claim loop gets through at most one
// candidate before its next per-candidate check expires. The old
// per-state-only check would have claimed the full beam.
func TestBeamDeadlineCheckedPerCandidate(t *testing.T) {
	f := datagen.NewFig1()

	full, err := NewWhy(f.G, f.Q, f.E, DefaultConfig())
	if err != nil {
		t.Fatalf("NewWhy: %v", err)
	}
	full.AnsHeu(8)
	if full.Stats.Steps <= 3 {
		t.Fatalf("fixture too small: unlimited run took only %d steps", full.Stats.Steps)
	}

	cfg := DefaultConfig()
	cfg.TimeLimit = 10 * time.Millisecond
	w, err := NewWhy(f.G, f.Q, f.E, cfg)
	if err != nil {
		t.Fatalf("NewWhy: %v", err)
	}
	w.clock = fakeClock(4 * time.Millisecond)
	ans := w.AnsHeu(8)

	if w.Stats.Steps >= full.Stats.Steps {
		t.Fatalf("deadline did not cut the search: %d steps, unlimited run %d",
			w.Stats.Steps, full.Stats.Steps)
	}
	// Root evaluation plus at most one level-1 candidate: expiring after
	// that proves the check sits inside the expansion loop.
	if w.Stats.Steps > 2 {
		t.Fatalf("deadline should expire mid-expansion after at most 2 steps, got %d", w.Stats.Steps)
	}
	if ans.Query == nil {
		t.Fatal("anytime contract broken: no best-so-far answer returned")
	}
}

// TestAbsoluteDeadlineWinsOverTimeLimit pins the Config.Deadline
// contract both ways: an early absolute deadline cuts the search even
// under a generous TimeLimit, and a far-future deadline lets the search
// run to completion even when the relative TimeLimit alone would have
// expired immediately.
func TestAbsoluteDeadlineWinsOverTimeLimit(t *testing.T) {
	f := datagen.NewFig1()

	full, err := NewWhy(f.G, f.Q, f.E, DefaultConfig())
	if err != nil {
		t.Fatalf("NewWhy: %v", err)
	}
	full.AnsW()
	if full.Stats.Steps <= 2 {
		t.Fatalf("fixture too small: unlimited run took only %d steps", full.Stats.Steps)
	}

	// Early Deadline, generous TimeLimit: the deadline must cut.
	cfg := DefaultConfig()
	cfg.TimeLimit = time.Hour
	cfg.Deadline = time.Unix(0, 0).Add(6 * time.Millisecond)
	w, err := NewWhy(f.G, f.Q, f.E, cfg)
	if err != nil {
		t.Fatalf("NewWhy: %v", err)
	}
	w.clock = fakeClock(4 * time.Millisecond)
	ans := w.AnsW()
	if w.Stats.Steps >= full.Stats.Steps {
		t.Errorf("absolute deadline lost to the hour-long TimeLimit: %d steps", w.Stats.Steps)
	}
	if ans.Query == nil {
		t.Error("anytime contract broken: no best-so-far answer returned")
	}

	// Far-future Deadline, instantly-expiring TimeLimit: the deadline
	// must win, letting the search finish like the unlimited run.
	cfg = DefaultConfig()
	cfg.TimeLimit = time.Nanosecond
	cfg.Deadline = time.Unix(0, 0).Add(time.Hour)
	w, err = NewWhy(f.G, f.Q, f.E, cfg)
	if err != nil {
		t.Fatalf("NewWhy: %v", err)
	}
	w.clock = fakeClock(4 * time.Millisecond)
	w.AnsW()
	if w.Stats.Steps != full.Stats.Steps {
		t.Errorf("far-future deadline still expired: %d steps, want %d",
			w.Stats.Steps, full.Stats.Steps)
	}
}

// TestAskAllAnchorsTimeLimitAtSubmission pins the queue-wait bugfix:
// per-job TimeLimits anchor at the AskAll call, so a job that waits in
// the slot queue behind another job pays for the wait. Two identical
// jobs share one submission instant on the session's fake clock; with
// Workers=1 the second starts after the first has consumed clock time,
// so it must get strictly fewer steps in before the shared deadline.
func TestAskAllAnchorsTimeLimitAtSubmission(t *testing.T) {
	f := datagen.NewFig1()
	s := NewSession(f.G, DefaultConfig())
	s.clock = fakeClock(time.Millisecond)

	job := BatchJob{Q: f.Q, E: f.E, TimeLimit: 10 * time.Millisecond}
	results, stats := s.AskAll([]BatchJob{job, job}, BatchOptions{Workers: 1})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.Answer.Query == nil || r.Steps < 1 {
			t.Fatalf("job %d: empty outcome %+v", i, r)
		}
	}
	if results[1].Steps >= results[0].Steps {
		t.Errorf("queued job was not charged its wait: %d steps vs %d for the first job",
			results[1].Steps, results[0].Steps)
	}
	if stats.Failed != 0 || stats.Jobs != 2 {
		t.Errorf("stats = %+v", stats)
	}

	// An explicit absolute Deadline wins over the anchored TimeLimit:
	// with a far-future deadline the same queued job runs unclamped.
	free := job
	free.Deadline = time.Unix(0, 0).Add(time.Hour)
	results2, _ := s.AskAll([]BatchJob{job, free}, BatchOptions{Workers: 1})
	if results2[1].Err != nil {
		t.Fatalf("free job: %v", results2[1].Err)
	}
	if results2[1].Steps <= results[1].Steps {
		t.Errorf("explicit Deadline did not override the anchored TimeLimit: %d steps vs %d clamped",
			results2[1].Steps, results[1].Steps)
	}
}

// TestTopKDeadlineDeterministic checks the best-first search against the
// same fake clock: expiry stops the traversal early and still returns
// the best rewrite found so far.
func TestTopKDeadlineDeterministic(t *testing.T) {
	f := datagen.NewFig1()

	full, err := NewWhy(f.G, f.Q, f.E, DefaultConfig())
	if err != nil {
		t.Fatalf("NewWhy: %v", err)
	}
	full.AnsW()

	cfg := DefaultConfig()
	cfg.TimeLimit = 10 * time.Millisecond
	w, err := NewWhy(f.G, f.Q, f.E, cfg)
	if err != nil {
		t.Fatalf("NewWhy: %v", err)
	}
	w.clock = fakeClock(4 * time.Millisecond)
	ans := w.AnsW()

	if w.Stats.Steps >= full.Stats.Steps {
		t.Fatalf("deadline did not cut the search: %d steps, unlimited run %d",
			w.Stats.Steps, full.Stats.Steps)
	}
	if ans.Query == nil {
		t.Fatal("anytime contract broken: no best-so-far answer returned")
	}
}
