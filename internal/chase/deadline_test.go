package chase

import (
	"testing"
	"time"

	"wqe/internal/datagen"
)

// fakeClock advances a fixed step on every read, making TimeLimit
// expiry a deterministic function of how many deadline checks ran.
func fakeClock(step time.Duration) func() time.Time {
	now := time.Unix(0, 0)
	return func() time.Time {
		now = now.Add(step)
		return now
	}
}

// TestBeamDeadlineCheckedPerCandidate pins the TimeLimit bugfix: the
// beam search re-checks the deadline for every claimed candidate, not
// just once per frontier state, so a single state with a large operator
// pool can no longer blow past the limit by a whole beam width.
//
// The fake clock advances 4ms per read against a 10ms limit anchored at
// the first read: the first level's claim loop gets through at most one
// candidate before its next per-candidate check expires. The old
// per-state-only check would have claimed the full beam.
func TestBeamDeadlineCheckedPerCandidate(t *testing.T) {
	f := datagen.NewFig1()

	full, err := NewWhy(f.G, f.Q, f.E, DefaultConfig())
	if err != nil {
		t.Fatalf("NewWhy: %v", err)
	}
	full.AnsHeu(8)
	if full.Stats.Steps <= 3 {
		t.Fatalf("fixture too small: unlimited run took only %d steps", full.Stats.Steps)
	}

	cfg := DefaultConfig()
	cfg.TimeLimit = 10 * time.Millisecond
	w, err := NewWhy(f.G, f.Q, f.E, cfg)
	if err != nil {
		t.Fatalf("NewWhy: %v", err)
	}
	w.clock = fakeClock(4 * time.Millisecond)
	ans := w.AnsHeu(8)

	if w.Stats.Steps >= full.Stats.Steps {
		t.Fatalf("deadline did not cut the search: %d steps, unlimited run %d",
			w.Stats.Steps, full.Stats.Steps)
	}
	// Root evaluation plus at most one level-1 candidate: expiring after
	// that proves the check sits inside the expansion loop.
	if w.Stats.Steps > 2 {
		t.Fatalf("deadline should expire mid-expansion after at most 2 steps, got %d", w.Stats.Steps)
	}
	if ans.Query == nil {
		t.Fatal("anytime contract broken: no best-so-far answer returned")
	}
}

// TestTopKDeadlineDeterministic checks the best-first search against the
// same fake clock: expiry stops the traversal early and still returns
// the best rewrite found so far.
func TestTopKDeadlineDeterministic(t *testing.T) {
	f := datagen.NewFig1()

	full, err := NewWhy(f.G, f.Q, f.E, DefaultConfig())
	if err != nil {
		t.Fatalf("NewWhy: %v", err)
	}
	full.AnsW()

	cfg := DefaultConfig()
	cfg.TimeLimit = 10 * time.Millisecond
	w, err := NewWhy(f.G, f.Q, f.E, cfg)
	if err != nil {
		t.Fatalf("NewWhy: %v", err)
	}
	w.clock = fakeClock(4 * time.Millisecond)
	ans := w.AnsW()

	if w.Stats.Steps >= full.Stats.Steps {
		t.Fatalf("deadline did not cut the search: %d steps, unlimited run %d",
			w.Stats.Steps, full.Stats.Steps)
	}
	if ans.Query == nil {
		t.Fatal("anytime contract broken: no best-so-far answer returned")
	}
}
