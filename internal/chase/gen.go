package chase

import (
	"fmt"
	"sort"

	"wqe/internal/graph"
	"wqe/internal/match"
	"wqe/internal/ops"
	"wqe/internal/query"
)

// scoredOp is one generated picky operator with its pickiness score and
// the relevance-delta estimate backing the score (kept for differential
// tables).
type scoredOp struct {
	Op   ops.Op
	Pick float64
	// Cost caches c(o); pickiness ties break toward cheaper operators
	// (same estimated gain, more budget preserved).
	Cost float64
	// Gain is RC̄(o) for relaxations (relevant candidates the operator
	// may convert to matches) or the certainly-removed IM set for
	// refinements.
	Gain []graph.NodeID
	// PickyEdge is the pattern edge that induced the operator, or -1.
	PickyEdge int
}

// opTargets returns the cancel-out target keys of a sequence, used to
// keep generated chase sequences canonical: a target touched once is
// never touched again.
func opTargets(seq ops.Sequence) map[string]bool {
	t := map[string]bool{}
	for _, o := range seq {
		switch o.Kind {
		case ops.RmL, ops.AddL, ops.RxL, ops.RfL:
			t[fmt.Sprintf("L:%d:%s", o.U, o.Lit.Attr)] = true
		case ops.RmE, ops.RxE, ops.RfE:
			t[fmt.Sprintf("E:%d:%d", o.U, o.U2)] = true
		case ops.AddE:
			if o.NewNode == nil {
				t[fmt.Sprintf("E:%d:%d", o.U, o.U2)] = true
			}
		}
	}
	return t
}

func litTarget(u query.NodeID, attr string) string { return fmt.Sprintf("L:%d:%s", u, attr) }
func edgeTarget(a, b query.NodeID) string          { return fmt.Sprintf("E:%d:%d", a, b) }

// rcBlame is the per-RC-node failure analysis that drives picky
// relaxation: which local conditions of Q keep the node out of Q(G).
type rcBlame struct {
	v graph.NodeID
	// failedLits are the focus literals v itself violates.
	failedLits []query.Literal
	// edgeFail records, per focus-incident pattern edge index, how far
	// the nearest candidate partner is (graph.Unreachable when none
	// within b_m).
	edgeFail map[int]int
	// litBlock records partner-side literal blocking: pattern edges
	// whose bound is satisfiable by a correctly-labeled neighbor that
	// fails literals of the other endpoint. Keyed by edge index; values
	// are the blocking literals with the nearest unblocking value.
	litBlock map[int][]blockedLit
	// deep is set when no local failure explains the miss (the node
	// fails a non-focus-local constraint or injectivity).
	deep bool
}

type blockedLit struct {
	u   query.NodeID
	lit query.Literal
	val graph.Value // a nearby value that would satisfy a relaxed literal
}

// analyzeRC inspects why RC node v fails q locally.
func (w *Why) analyzeRC(q *query.Query, v graph.NodeID) rcBlame {
	b := rcBlame{v: v, edgeFail: map[int]int{}, litBlock: map[int][]blockedLit{}}
	focus := q.Focus

	for _, l := range q.Nodes[focus].Literals {
		if !l.Sat(w.G, v) {
			b.failedLits = append(b.failedLits, l)
		}
	}

	var fwd, bwd []graph.NodeDist
	ballFor := func(dir graph.Direction) []graph.NodeDist {
		if dir == graph.Forward {
			if fwd == nil {
				fwd = w.G.Ball(v, w.Cfg.MaxBound, graph.Forward)
			}
			return fwd
		}
		if bwd == nil {
			bwd = w.G.Ball(v, w.Cfg.MaxBound, graph.Backward)
		}
		return bwd
	}

	for ei, e := range q.Edges {
		var other query.NodeID
		var dir graph.Direction
		switch focus {
		case e.From:
			other, dir = e.To, graph.Forward
		case e.To:
			other, dir = e.From, graph.Backward
		default:
			continue
		}
		nearestCand := graph.Unreachable
		var blocked []blockedLit
		otherLabel := q.Nodes[other].Label
		for _, nd := range ballFor(dir) {
			if nd.D == 0 {
				continue
			}
			nb, d := nd.V, int(nd.D)
			if q.IsCandidate(w.G, other, nb) {
				if d < nearestCand {
					nearestCand = d
				}
				continue
			}
			// A correctly-labeled neighbor within the current bound that
			// fails literals of the other endpoint blames those literals.
			if d <= e.Bound && (otherLabel == "" || w.G.Label(nb) == otherLabel) {
				for _, l := range q.Nodes[other].Literals {
					if !l.Sat(w.G, nb) {
						bl := blockedLit{u: other, lit: l}
						if val, ok := w.G.Attr(nb, l.Attr); ok {
							bl.val = val
						}
						blocked = append(blocked, bl)
					}
				}
			}
		}
		if nearestCand > e.Bound {
			b.edgeFail[ei] = nearestCand
			if len(blocked) > 0 {
				b.litBlock[ei] = blocked
			}
		}
	}

	if len(b.failedLits) == 0 && len(b.edgeFail) == 0 {
		b.deep = true
	}
	return b
}

// GenRelax implements GenRx (§5.3 + Appendix B): it analyzes every RC
// node's local failures, derives picky edges and picky operators (RmL,
// RxL, RmE, RxE on both focus-incident and deeper edges), scores each
// operator by pickiness p(o) = Σ_{v ∈ RC̄(o)} cl(v, E) / |V_{u_o}|
// (Lemma 5.2), and returns them best-first.
func (w *Why) GenRelax(q *query.Query, res *match.Result, used map[string]bool, budgetLeft float64) []scoredOp {
	_, _, rc, _ := w.Partition(res)
	if len(rc) == 0 {
		return nil
	}
	// Blame analysis runs bounded BFS per RC node; cap the analyzed set
	// (highest-closeness first) so generation stays within the bounded
	// delay of §5.4. Pickiness then scores against the sample.
	rc = sampleByCl(w, rc, w.Cfg.MaxAnalysis)

	// acc accumulates RC̄ per candidate operator, keyed by the
	// operator's identity.
	acc := map[opIdent]*accum{}
	add := func(o ops.Op, pickyEdge int, v graph.NodeID) {
		if !o.Applicable(q, w.params) || o.Cost(w.G) > budgetLeft {
			return
		}
		key := identOf(o)
		a := acc[key]
		if a == nil {
			a = &accum{op: scoredOp{Op: o, PickyEdge: pickyEdge}, gain: map[graph.NodeID]bool{}}
			acc[key] = a
		}
		if !a.gain[v] {
			a.gain[v] = true
			a.total += w.Eval.Cl(v)
		}
	}

	focus := q.Focus
	// Per-literal failing-value pools for the RxL discretization rule.
	type litKey struct {
		u    query.NodeID
		attr string
	}
	failVals := map[litKey]map[float64][]graph.NodeID{}
	noteVal := func(u query.NodeID, attr string, val graph.Value, v graph.NodeID) {
		if val.Kind != graph.Number {
			return
		}
		k := litKey{u, attr}
		if failVals[k] == nil {
			failVals[k] = map[float64][]graph.NodeID{}
		}
		failVals[k][val.Num] = append(failVals[k][val.Num], v)
	}

	var deepRC []graph.NodeID
	for _, v := range rc {
		blame := w.analyzeRC(q, v)

		for _, l := range blame.failedLits {
			if !used[litTarget(focus, l.Attr)] {
				add(ops.Op{Kind: ops.RmL, U: focus, Lit: l}, -1, v)
				if val, ok := w.G.Attr(v, l.Attr); ok {
					noteVal(focus, l.Attr, val, v)
				}
			}
		}
		// Iterate failed edges in index order: operator insertion order
		// decides identOf-map accumulation and, downstream, tie-broken
		// top-k output.
		failedEdges := make([]int, 0, len(blame.edgeFail))
		for ei := range blame.edgeFail {
			failedEdges = append(failedEdges, ei)
		}
		sort.Ints(failedEdges)
		for _, ei := range failedEdges {
			nearest := blame.edgeFail[ei]
			e := q.Edges[ei]
			if !used[edgeTarget(e.From, e.To)] {
				add(ops.Op{Kind: ops.RmE, U: e.From, U2: e.To, Bound: e.Bound}, ei, v)
				// Step-wise bound relaxation (Appendix B); the RC node
				// only counts when one step suffices.
				if e.Bound < w.Cfg.MaxBound && nearest <= e.Bound+1 {
					add(ops.Op{Kind: ops.RxE, U: e.From, U2: e.To, Bound: e.Bound, NewBound: e.Bound + 1}, ei, v)
				}
				// Direct relaxation to the needed bound when farther.
				if nearest != graph.Unreachable && nearest > e.Bound+1 && nearest <= w.Cfg.MaxBound {
					add(ops.Op{Kind: ops.RxE, U: e.From, U2: e.To, Bound: e.Bound, NewBound: nearest}, ei, v)
				}
			}
			for _, bl := range blame.litBlock[ei] {
				if used[litTarget(bl.u, bl.lit.Attr)] {
					continue
				}
				add(ops.Op{Kind: ops.RmL, U: bl.u, Lit: bl.lit}, ei, v)
				noteVal(bl.u, bl.lit.Attr, bl.val, v)
			}
		}
		if blame.deep {
			deepRC = append(deepRC, v)
		}
	}

	// Deep failures blame every non-focus-incident edge (the paper's
	// rule (2): paths {(u,u'),(u',u_o)} — an overestimate).
	for _, v := range deepRC {
		for ei, e := range q.Edges {
			if e.From == focus || e.To == focus {
				continue
			}
			if used[edgeTarget(e.From, e.To)] {
				continue
			}
			add(ops.Op{Kind: ops.RmE, U: e.From, U2: e.To, Bound: e.Bound}, ei, v)
			if e.Bound < w.Cfg.MaxBound {
				add(ops.Op{Kind: ops.RxE, U: e.From, U2: e.To, Bound: e.Bound, NewBound: e.Bound + 1}, ei, v)
			}
		}
	}

	// RxL discretization: for each blamed numeric literal (in pattern-node
	// then attribute order, for deterministic generation), sort the
	// failing values and generate one RxL per distinct value — relaxing
	// up to that value admits every RC node at or before it.
	blamedLits := make([]litKey, 0, len(failVals))
	for k := range failVals {
		blamedLits = append(blamedLits, k)
	}
	sort.Slice(blamedLits, func(i, j int) bool {
		if blamedLits[i].u != blamedLits[j].u {
			return blamedLits[i].u < blamedLits[j].u
		}
		return blamedLits[i].attr < blamedLits[j].attr
	})
	for _, k := range blamedLits {
		vals := failVals[k]
		li := -1
		for _, op := range []graph.Op{graph.GE, graph.GT, graph.LE, graph.LT, graph.EQ} {
			if i := q.FindLiteral(k.u, k.attr, op); i >= 0 {
				li = i
				break
			}
		}
		if li < 0 {
			continue
		}
		l := q.Nodes[k.u].Literals[li]
		if l.Val.Kind != graph.Number {
			continue
		}
		nums := make([]float64, 0, len(vals))
		for n := range vals {
			nums = append(nums, n)
		}
		sort.Float64s(nums)
		const maxRxLValues = 8
		switch l.Op {
		case graph.GE, graph.GT, graph.EQ:
			// Failing values lie below c; relax the lower bound downward,
			// nearest first.
			count := 0
			for i := len(nums) - 1; i >= 0 && count < maxRxLValues; i-- {
				a := nums[i]
				if a >= l.Val.Num {
					continue
				}
				o := ops.Op{Kind: ops.RxL, U: k.u, Lit: l,
					NewLit: query.Literal{Attr: k.attr, Op: graph.GE, Val: graph.N(a)}}
				for _, n := range nums[i:] {
					if n >= a && n < l.Val.Num {
						for _, v := range vals[n] {
							add(o, -1, v)
						}
					}
				}
				count++
			}
		}
		switch l.Op {
		case graph.LE, graph.LT, graph.EQ:
			count := 0
			for i := 0; i < len(nums) && count < maxRxLValues; i++ {
				a := nums[i]
				if a <= l.Val.Num {
					continue
				}
				o := ops.Op{Kind: ops.RxL, U: k.u, Lit: l,
					NewLit: query.Literal{Attr: k.attr, Op: graph.LE, Val: graph.N(a)}}
				for _, n := range nums[:i+1] {
					if n <= a && n > l.Val.Num {
						for _, v := range vals[n] {
							add(o, -1, v)
						}
					}
				}
				count++
			}
		}
	}

	return w.finishScored(acc)
}

// opIdent is a comparable operator identity used as a map key (cheaper
// than rendering operator strings in hot loops). AddE-with-fresh-node
// operators are identified by their label.
type opIdent struct {
	kind            ops.Kind
	u, u2           query.NodeID
	lit, newLit     query.Literal
	bound, newBound int
	newLabel        string
	hasNew          bool
}

func identOf(o ops.Op) opIdent {
	id := opIdent{
		kind: o.Kind, u: o.U, u2: o.U2,
		lit: o.Lit, newLit: o.NewLit,
		bound: o.Bound, newBound: o.NewBound,
	}
	if o.NewNode != nil {
		id.hasNew = true
		id.newLabel = o.NewNode.Label
	}
	return id
}

// sortIdents orders operator identities deterministically.
func sortIdents(ids []opIdent) {
	sort.Slice(ids, func(i, j int) bool { return identLess(ids[i], ids[j]) })
}

func identLess(a, b opIdent) bool {
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.u != b.u {
		return a.u < b.u
	}
	if a.u2 != b.u2 {
		return a.u2 < b.u2
	}
	if a.lit != b.lit {
		return litLess(a.lit, b.lit)
	}
	if a.newLit != b.newLit {
		return litLess(a.newLit, b.newLit)
	}
	if a.bound != b.bound {
		return a.bound < b.bound
	}
	if a.newBound != b.newBound {
		return a.newBound < b.newBound
	}
	return a.newLabel < b.newLabel
}

func litLess(a, b query.Literal) bool {
	if a.Attr != b.Attr {
		return a.Attr < b.Attr
	}
	if a.Op != b.Op {
		return a.Op < b.Op
	}
	return a.Val.Compare(b.Val) < 0
}

// finishScored converts accumulated operators into a pickiness-sorted,
// per-class-capped slice.
func (w *Why) finishScored(acc map[opIdent]*accum) []scoredOp {
	out := make([]scoredOp, 0, len(acc))
	keys := make([]opIdent, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sortIdents(keys) // determinism
	for _, k := range keys {
		a := acc[k]
		a.op.Pick = a.total / float64(len(w.FocusCands))
		a.op.Cost = a.op.Op.Cost(w.G)
		a.op.Gain = make([]graph.NodeID, 0, len(a.gain))
		for v := range a.gain {
			a.op.Gain = append(a.op.Gain, v)
		}
		sortNodes(a.op.Gain)
		out = append(out, a.op)
	}
	sort.SliceStable(out, func(i, j int) bool {
		switch {
		case out[i].Pick > out[j].Pick:
			return true
		case out[i].Pick < out[j].Pick:
			return false
		}
		return out[i].Cost < out[j].Cost
	})
	out = capPerClass(out, w.Cfg.MaxOpsPerClass)
	return out
}

// accum is shared by GenRelax and GenRefine via finishScored.
type accum struct {
	op    scoredOp
	gain  map[graph.NodeID]bool
	total float64
}

// sampleByCl keeps at most n nodes, preferring higher closeness (ties
// break by id for determinism).
func sampleByCl(w *Why, nodes []graph.NodeID, n int) []graph.NodeID {
	if n <= 0 || len(nodes) <= n {
		return nodes
	}
	out := append([]graph.NodeID(nil), nodes...)
	sort.SliceStable(out, func(i, j int) bool {
		switch ci, cj := w.Eval.Cl(out[i]), w.Eval.Cl(out[j]); {
		case ci > cj:
			return true
		case ci < cj:
			return false
		}
		return out[i] < out[j]
	})
	return out[:n]
}

// capPerClass keeps at most n operators of each class, preserving order.
func capPerClass(in []scoredOp, n int) []scoredOp {
	count := map[ops.Kind]int{}
	out := in[:0]
	for _, s := range in {
		if count[s.Op.Kind] >= n {
			continue
		}
		count[s.Op.Kind]++
		out = append(out, s)
	}
	return out
}
