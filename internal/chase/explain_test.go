package chase_test

import (
	"strings"
	"testing"

	"wqe/internal/chase"
	"wqe/internal/datagen"
)

func TestExplain(t *testing.T) {
	f := datagen.NewFig1()
	cfg := chase.DefaultConfig()
	cfg.Budget = 4
	w, err := chase.NewWhy(f.G, f.Q, f.E, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := w.AnsW()
	report := a.Explain(f.G)

	for _, want := range []string{
		"Rewrote the query",
		"Final answers: 3 entities",
		"closeness 0.5000",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("explanation misses %q:\n%s", want, report)
		}
	}
	// Entity names must appear (the rewrite brings in the v2 phones).
	if !strings.Contains(report, "S9+v2") && !strings.Contains(report, "Note8v2") {
		t.Errorf("explanation names no entities:\n%s", report)
	}
	// Every applied operator is described.
	for _, o := range a.Ops {
		if !strings.Contains(report, o.String()) {
			t.Errorf("explanation misses operator %s:\n%s", o, report)
		}
	}
}

func TestExplainUnchanged(t *testing.T) {
	f := datagen.NewFig1()
	cfg := chase.DefaultConfig()
	cfg.Budget = 0.5 // too small for any operator
	w, err := chase.NewWhy(f.G, f.Q, f.E, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := w.AnsW()
	report := a.Explain(f.G)
	if !strings.Contains(report, "kept unchanged") {
		t.Errorf("zero-op explanation wrong:\n%s", report)
	}
}
