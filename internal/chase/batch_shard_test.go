package chase_test

import (
	"testing"

	"wqe/internal/chase"
	"wqe/internal/datagen"
)

// TestBatchIdenticalAcrossShardCounts is the sharded-cache determinism
// gate: AskAll output (rendered rewrite, matches, step and state
// counts) must be byte-identical for every shard-count × worker-count
// combination, against an unsharded single-worker reference. Sharding
// may only change which star tables get rebuilt — a cached table is a
// pure function of its key — so no cache layout is allowed to leak into
// answers. Beam and exact jobs are mixed so both algorithms cross the
// striped cache concurrently.
func TestBatchIdenticalAcrossShardCounts(t *testing.T) {
	g, instances := genInstances(t, datagen.DatasetProducts, 1200, 6, 5)
	jobs := make([]chase.BatchJob, len(instances))
	for i, inst := range instances {
		jobs[i] = chase.BatchJob{Q: inst.Q, E: inst.E, MaxSteps: 400}
		if i%2 == 1 {
			jobs[i].Beam = 3
		}
	}

	type rendered struct {
		answer        string
		steps, states int
	}
	run := func(shards, workers int) []rendered {
		cfg := chase.DefaultConfig()
		cfg.MaxSteps = 400
		cfg.Cache = true
		cfg.CacheShards = shards
		sess := chase.NewSession(g, cfg)
		results, stats := sess.AskAll(jobs, chase.BatchOptions{Workers: workers})
		out := make([]rendered, len(results))
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("shards=%d workers=%d job %d: %v", shards, workers, i, r.Err)
			}
			out[i] = rendered{renderAnswer(r.Answer), r.Steps, r.States}
		}
		if stats.Failed != 0 {
			t.Fatalf("shards=%d workers=%d: %d jobs failed", shards, workers, stats.Failed)
		}
		return out
	}

	ref := run(1, 1)
	for _, shards := range []int{1, 4, 16} {
		for _, workers := range []int{1, 4, 8} {
			if shards == 1 && workers == 1 {
				continue
			}
			got := run(shards, workers)
			for i := range ref {
				if got[i] != ref[i] {
					t.Errorf("shards=%d workers=%d job %d diverged:\nref %+v\ngot %+v",
						shards, workers, i, ref[i], got[i])
				}
			}
		}
	}
}
