package chase

import (
	"fmt"
	"strings"

	"wqe/internal/graph"
	"wqe/internal/ops"
)

// Explain renders the answer's lineage as a human-readable
// why-provenance report (§5.4): one paragraph per applied operator
// describing what it did and which entities it brought in or pushed
// out, with entity names resolved from the graph's "Name" attribute
// when present.
func (a Answer) Explain(g *graph.Graph) string {
	var b strings.Builder
	if len(a.Ops) == 0 {
		b.WriteString("The original query was kept unchanged")
		if a.Satisfied {
			b.WriteString("; its answers already satisfy the exemplar.\n")
		} else {
			b.WriteString("; no affordable rewrite satisfied the exemplar.\n")
		}
		return b.String()
	}
	fmt.Fprintf(&b, "Rewrote the query with %d operator(s), total cost %.2f:\n",
		len(a.Ops), a.Cost)
	for _, d := range a.Diff {
		fmt.Fprintf(&b, "  • %s — %s", d.Op, describeOp(d.Op))
		var added, removed []string
		for _, n := range d.Delta {
			name := entityName(g, n.V)
			if n.Added {
				added = append(added, fmt.Sprintf("%s (%s)", name, n.Rel))
			} else {
				removed = append(removed, fmt.Sprintf("%s (%s)", name, n.Rel))
			}
		}
		if len(added) > 0 {
			fmt.Fprintf(&b, "; brought in %s", strings.Join(added, ", "))
		}
		if len(removed) > 0 {
			fmt.Fprintf(&b, "; pushed out %s", strings.Join(removed, ", "))
		}
		if len(added) == 0 && len(removed) == 0 {
			b.WriteString("; no immediate answer change (enables later steps)")
		}
		b.WriteString(".\n")
	}
	fmt.Fprintf(&b, "Final answers: %d entities, closeness %.4f.\n",
		len(a.Matches), a.Closeness)
	return b.String()
}

// describeOp turns an operator into a short English clause.
func describeOp(o ops.Op) string {
	switch o.Kind {
	case ops.RmL:
		return fmt.Sprintf("dropped the condition %q on node u%d", o.Lit.String(), o.U)
	case ops.RxL:
		return fmt.Sprintf("loosened %q to %q on node u%d", o.Lit.String(), o.NewLit.String(), o.U)
	case ops.RfL:
		return fmt.Sprintf("tightened %q to %q on node u%d", o.Lit.String(), o.NewLit.String(), o.U)
	case ops.AddL:
		return fmt.Sprintf("required %q on node u%d", o.Lit.String(), o.U)
	case ops.RmE:
		return fmt.Sprintf("no longer requires u%d to connect to u%d", o.U, o.U2)
	case ops.RxE:
		return fmt.Sprintf("allows u%d to reach u%d within %d hops instead of %d", o.U, o.U2, o.NewBound, o.Bound)
	case ops.RfE:
		return fmt.Sprintf("requires u%d to reach u%d within %d hops instead of %d", o.U, o.U2, o.NewBound, o.Bound)
	case ops.AddE:
		if o.NewNode != nil {
			return fmt.Sprintf("requires a %q within %d hops of u%d", o.NewNode.Label, o.Bound, o.U)
		}
		return fmt.Sprintf("requires u%d to reach u%d within %d hops", o.U, o.U2, o.Bound)
	}
	return "no change"
}

// entityName resolves a display name for a node.
func entityName(g *graph.Graph, v graph.NodeID) string {
	for _, attr := range []string{"Name", "Title", "Model"} {
		if val, ok := g.Attr(v, attr); ok {
			return val.String()
		}
	}
	return fmt.Sprintf("#%d(%s)", v, g.Label(v))
}
