package chase_test

import (
	"testing"

	"wqe/internal/chase"
	"wqe/internal/datagen"
	"wqe/internal/par"
)

func memoConfig() chase.Config {
	cfg := chase.DefaultConfig()
	cfg.Cache = true
	cfg.MaxSteps = 300
	cfg.AnswerCache = true
	return cfg
}

// TestMemoCountingOracle is the coalescing gate: K concurrent identical
// requests execute exactly one chase — the session Questions counter is
// the oracle, since only real chases increment it — and every caller
// receives an identical answer.
func TestMemoCountingOracle(t *testing.T) {
	g, instances := genInstances(t, datagen.DatasetProducts, 800, 1, 3)
	sess := chase.NewSession(g, memoConfig())
	job := chase.BatchJob{Q: instances[0].Q, E: instances[0].E}

	const K = 8
	results := make([]chase.BatchResult, K)
	var grp par.Group
	for i := 0; i < K; i++ {
		i := i
		grp.Go(func() { results[i] = sess.Run(job) })
	}
	grp.Wait()

	sc := sess.Counters()
	if sc.Questions != 1 {
		t.Fatalf("Questions = %d, want exactly 1 chase for %d identical requests", sc.Questions, K)
	}
	ac := sc.AnswerCache
	if ac.Misses != 1 || ac.Hits+ac.Coalesced != K-1 {
		t.Fatalf("answer cache counters = %+v, want 1 miss and %d hits+coalesced", ac, K-1)
	}
	ref := results[0]
	if ref.Err != nil {
		t.Fatalf("request failed: %v", ref.Err)
	}
	refR := renderAnswer(ref.Answer)
	for i := 1; i < K; i++ {
		if results[i].Err != nil {
			t.Fatalf("request %d failed: %v", i, results[i].Err)
		}
		if r := renderAnswer(results[i].Answer); r != refR ||
			results[i].Steps != ref.Steps || results[i].States != ref.States {
			t.Errorf("request %d diverged from request 0:\n%s\nvs\n%s", i, r, refR)
		}
	}
}

// TestMemoOffIdentical pins that the memo is invisible in the answers:
// the same job stream through a cache-on and a cache-off session
// renders identical rewrites, steps, and states (only wall-clock
// Elapsed may differ).
func TestMemoOffIdentical(t *testing.T) {
	g, instances := genInstances(t, datagen.DatasetProducts, 800, 3, 3)
	// Repeat every question so the memo path actually serves hits.
	var jobs []chase.BatchJob
	for _, inst := range instances {
		j := chase.BatchJob{Q: inst.Q, E: inst.E}
		jobs = append(jobs, j, j)
	}

	on := memoConfig()
	off := memoConfig()
	off.AnswerCache = false

	run := func(cfg chase.Config) []chase.BatchResult {
		sess := chase.NewSession(g, cfg)
		out := make([]chase.BatchResult, len(jobs))
		for i, j := range jobs {
			out[i] = sess.Run(j)
		}
		sc := sess.Counters()
		if cfg.AnswerCache {
			if sc.Questions != int64(len(instances)) || sc.AnswerCache.Hits != int64(len(instances)) {
				t.Fatalf("cache-on counters = %+v, want %d chases and as many hits", sc, len(instances))
			}
		} else if sc.Questions != int64(len(jobs)) {
			t.Fatalf("cache-off Questions = %d, want %d", sc.Questions, len(jobs))
		}
		return out
	}

	rOn, rOff := run(on), run(off)
	for i := range jobs {
		if rOn[i].Err != nil || rOff[i].Err != nil {
			t.Fatalf("job %d errs: on=%v off=%v", i, rOn[i].Err, rOff[i].Err)
		}
		if renderAnswer(rOn[i].Answer) != renderAnswer(rOff[i].Answer) ||
			rOn[i].Steps != rOff[i].Steps || rOn[i].States != rOff[i].States {
			t.Errorf("job %d: cache-on answer differs from cache-off", i)
		}
	}
}

// TestMemoWaiterCancelDetached: a cancelled requester must not truncate
// the flight the other waiters share. Flights run detached, so even a
// request whose Cancel is already closed at submission receives the
// complete memoized answer, identical to everyone else's.
func TestMemoWaiterCancelDetached(t *testing.T) {
	g, instances := genInstances(t, datagen.DatasetProducts, 800, 1, 3)
	sess := chase.NewSession(g, memoConfig())
	cancelled := make(chan struct{})
	close(cancelled)

	const K = 6
	results := make([]chase.BatchResult, K)
	var grp par.Group
	for i := 0; i < K; i++ {
		i := i
		j := chase.BatchJob{Q: instances[0].Q, E: instances[0].E}
		if i%2 == 1 {
			j.Cancel = cancelled
		}
		grp.Go(func() { results[i] = sess.Run(j) })
	}
	grp.Wait()

	if sc := sess.Counters(); sc.Questions != 1 {
		t.Fatalf("Questions = %d, want 1 shared chase", sc.Questions)
	}
	ref := renderAnswer(results[0].Answer)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
		if renderAnswer(r.Answer) != ref {
			t.Errorf("request %d (cancel=%v) diverged from the shared flight", i, i%2 == 1)
		}
	}
}

// TestMemoKeying pins the canonical-key contract: algorithm aliases
// ("" vs "answ"; Beam>0 vs explicit "heu") share entries, different
// algorithms do not, and unknown algorithms bypass the memo entirely.
func TestMemoKeying(t *testing.T) {
	g, instances := genInstances(t, datagen.DatasetProducts, 800, 1, 3)
	sess := chase.NewSession(g, memoConfig())
	q, e := instances[0].Q, instances[0].E

	// "" and "answ" are the same algorithm — one chase.
	sess.Run(chase.BatchJob{Q: q, E: e})
	sess.Run(chase.BatchJob{Q: q, E: e, Algo: "answ"})
	if sc := sess.Counters(); sc.Questions != 1 || sc.AnswerCache.Hits != 1 {
		t.Fatalf("answ alias: %+v, want 1 chase + 1 hit", sc)
	}

	// Bare Beam=3, "heu" with Beam=3, and "heu" with the default width
	// all resolve to heu:3 — one more chase, two more hits.
	sess.Run(chase.BatchJob{Q: q, E: e, Beam: 3})
	sess.Run(chase.BatchJob{Q: q, E: e, Algo: "heu", Beam: 3})
	sess.Run(chase.BatchJob{Q: q, E: e, Algo: "heu"})
	if sc := sess.Counters(); sc.Questions != 2 || sc.AnswerCache.Hits != 3 {
		t.Fatalf("heu alias: %+v, want 2 chases + 3 hits", sc)
	}

	// A different beam width is a different question.
	sess.Run(chase.BatchJob{Q: q, E: e, Beam: 5})
	if sc := sess.Counters(); sc.Questions != 3 {
		t.Fatalf("beam width not in key: %+v", sc)
	}

	// Unknown algorithm: an error, and no memo traffic at all.
	before := sess.Counters().AnswerCache
	if r := sess.Run(chase.BatchJob{Q: q, E: e, Algo: "bogus"}); r.Err == nil {
		t.Fatal("unknown algo must fail")
	}
	after := sess.Counters().AnswerCache
	if before != after {
		t.Fatalf("unknown algo touched the memo: %+v vs %+v", before, after)
	}
}

// TestMemoInvalidateAnswers: the dynamic-graphs seam. After an
// invalidation the same question chases again.
func TestMemoInvalidateAnswers(t *testing.T) {
	g, instances := genInstances(t, datagen.DatasetProducts, 800, 1, 3)
	sess := chase.NewSession(g, memoConfig())
	job := chase.BatchJob{Q: instances[0].Q, E: instances[0].E}

	r1 := sess.Run(job)
	sess.InvalidateAnswers()
	r2 := sess.Run(job)
	sc := sess.Counters()
	if sc.Questions != 2 || sc.AnswerCache.Misses != 2 || sc.AnswerCache.Invalidations != 1 {
		t.Fatalf("counters = %+v, want 2 chases, 2 misses, 1 invalidation", sc)
	}
	// The graph did not actually change, so the recomputed answer is
	// byte-identical — determinism across invalidation.
	if renderAnswer(r1.Answer) != renderAnswer(r2.Answer) {
		t.Error("recomputed answer diverged from the original")
	}
}

// TestMemoAskAll routes the batch path through the memo too: a batch of
// repeated jobs executes one chase per distinct question for every
// worker count, with results identical to the memo-off batch.
func TestMemoAskAll(t *testing.T) {
	g, instances := genInstances(t, datagen.DatasetProducts, 800, 2, 3)
	var jobs []chase.BatchJob
	for _, inst := range instances {
		j := chase.BatchJob{Q: inst.Q, E: inst.E}
		jobs = append(jobs, j, j, j)
	}

	off := memoConfig()
	off.AnswerCache = false
	refResults, _ := chase.NewSession(g, off).AskAll(jobs, chase.BatchOptions{Workers: 1})

	for _, workers := range []int{1, 4} {
		sess := chase.NewSession(g, memoConfig())
		results, stats := sess.AskAll(jobs, chase.BatchOptions{Workers: workers})
		if stats.Failed != 0 {
			t.Fatalf("workers=%d: %d failed jobs", workers, stats.Failed)
		}
		if sc := sess.Counters(); sc.Questions != int64(len(instances)) {
			t.Errorf("workers=%d: %d chases, want %d", workers, sc.Questions, len(instances))
		}
		for i := range jobs {
			if renderAnswer(results[i].Answer) != renderAnswer(refResults[i].Answer) ||
				results[i].Steps != refResults[i].Steps {
				t.Errorf("workers=%d job %d diverged from memo-off reference", workers, i)
			}
		}
	}
}
