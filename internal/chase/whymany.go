package chase

import (
	"wqe/internal/graph"
	"wqe/internal/match"
	"wqe/internal/ops"
	"wqe/internal/query"
)

// ApxWhyM answers Why-Many questions (§6.1, Fig 9): refine Q with
// refinement-only operators of total cost ≤ B so that as many
// irrelevant matches as possible disappear, maximizing closeness. It is
// a greedy budgeted weighted set-cover over seed operators (SeedRf) and
// carries the fixed-parameter ½(1−1/e) approximation of Theorem 6.1.
func (w *Why) ApxWhyM() Answer {
	start := w.clock()
	w.beginRun()
	defer w.endRun(start)
	deadline := w.deadline(start)

	rootAns, rootRes := w.evaluate(w.Q, nil)
	if !hasIM(w, rootRes) {
		return rootAns // nothing to remove
	}

	seeds := w.seedRf(rootRes)
	if len(seeds) == 0 {
		return rootAns
	}

	// Exact per-seed coverage: evaluate Q ⊕ {o} once per seed and record
	// which irrelevant (and relevant) matches it removes. This "ensures
	// the removal of IM(o)" as the paper requires of SeedRf. The seed
	// evaluations are independent of one another, so they run on the
	// worker pool: applicability is decided sequentially first, and the
	// coverage sets are committed in seed order, keeping the greedy
	// selection's input — and hence the result — byte-identical for any
	// worker count.
	type seedCand struct {
		op  ops.Op
		q2  *query.Query
		ans Answer
		res *match.Result
	}
	var pending []*seedCand
	for _, s := range seeds {
		q2, err := s.Op.Apply(w.Q)
		if err != nil {
			continue // seed op no longer fits Q
		}
		pending = append(pending, &seedCand{op: s.Op, q2: q2})
	}
	w.forEach(w.workers(), len(pending), func(i int) {
		c := pending[i]
		c.ans, c.res = w.evaluate(c.q2, ops.Sequence{c.op})
	})

	type seed struct {
		op        ops.Op
		cost      float64
		removedIM map[graph.NodeID]bool
		removedRM map[graph.NodeID]bool
		single    Answer
	}
	var evaluated []seed
	for _, c := range pending {
		sd := seed{op: c.op, cost: c.op.Cost(w.G), single: c.ans,
			removedIM: map[graph.NodeID]bool{}, removedRM: map[graph.NodeID]bool{}}
		for _, v := range rootRes.Answer {
			if c.res.Has(v) {
				continue
			}
			if w.Eval.InRep(v) {
				sd.removedRM[v] = true
			} else {
				sd.removedIM[v] = true
			}
		}
		if len(sd.removedIM) == 0 {
			continue // covers nothing
		}
		evaluated = append(evaluated, sd)
	}
	if len(evaluated) == 0 {
		return rootAns
	}

	nf := float64(len(w.FocusCands))
	weight := func(im, rm map[graph.NodeID]bool) float64 {
		// Sum closeness in sorted node order: float addition rounds
		// differently under different orders, and the greedy selection
		// below compares these sums.
		ids := make([]graph.NodeID, 0, len(rm))
		for v := range rm {
			ids = append(ids, v)
		}
		sortNodes(ids)
		var loss float64
		for _, v := range ids {
			loss += w.Eval.Cl(v)
		}
		return (w.Cfg.Lambda*float64(len(im)) - loss) / nf
	}

	// O2: the single best seed within budget (line 3 of Fig 9).
	best2 := -1
	for i, s := range evaluated {
		if s.cost > w.Cfg.Budget {
			continue
		}
		if best2 < 0 || weight(s.removedIM, s.removedRM) > weight(evaluated[best2].removedIM, evaluated[best2].removedRM) {
			best2 = i
		}
	}

	// O1: greedy marginal-gain-per-cost selection (lines 4-8).
	var o1 []int
	usedTargets := map[string]bool{}
	coveredIM := map[graph.NodeID]bool{}
	coveredRM := map[graph.NodeID]bool{}
	cost1 := 0.0
	remaining := make([]bool, len(evaluated))
	for i := range remaining {
		remaining[i] = true
	}
	for {
		// The greedy selection is pure bookkeeping over already-committed
		// evaluations, but each round scans every seed; poll the cutoff
		// so a cancelled or expired question returns its best-so-far
		// cover instead of finishing the set-cover loop.
		if w.stop(deadline) {
			break
		}
		bestIdx, bestRatio := -1, 0.0
		base := weight(coveredIM, coveredRM)
		for i, s := range evaluated {
			if !remaining[i] || cost1+s.cost > w.Cfg.Budget {
				continue
			}
			if conflicts(usedTargets, s.op) {
				continue
			}
			im2 := unionSet(coveredIM, s.removedIM)
			rm2 := unionSet(coveredRM, s.removedRM)
			ratio := (weight(im2, rm2) - base) / s.cost
			if bestIdx < 0 || ratio > bestRatio {
				bestIdx, bestRatio = i, ratio
			}
		}
		if bestIdx < 0 || bestRatio <= 0 {
			break
		}
		s := evaluated[bestIdx]
		remaining[bestIdx] = false
		o1 = append(o1, bestIdx)
		cost1 += s.cost
		markTargets(usedTargets, s.op)
		//lint:ignore mapiter set union: each iteration only inserts true, order-insensitive
		for v := range s.removedIM {
			coveredIM[v] = true
		}
		//lint:ignore mapiter set union: each iteration only inserts true, order-insensitive
		for v := range s.removedRM {
			coveredRM[v] = true
		}
		if cost1 >= w.Cfg.Budget {
			break
		}
	}

	// Construct both candidate rewrites and keep the better (line 9).
	result := rootAns
	if len(o1) > 0 {
		seq := make(ops.Sequence, 0, len(o1))
		for _, i := range o1 {
			seq = append(seq, evaluated[i].op)
		}
		if q1, err := seq.Apply(w.Q, w.params); err == nil {
			ans1, _ := w.evaluate(q1, seq)
			if ans1.Closeness > result.Closeness {
				result = ans1
			}
		}
	}
	if best2 >= 0 && evaluated[best2].single.Closeness > result.Closeness {
		result = evaluated[best2].single
	}
	return result
}

// seedRf produces the Why-Many seed operator set: the picky refinement
// pool plus neighborhood-derived AddE/AddL/RfL operators (Appendix C).
// GenRefine already explores the B-hop neighborhoods of relevant
// matches for AddE and value-based AddL/RfL, so it serves as SeedRf
// with a wider cap.
func (w *Why) seedRf(res *match.Result) []scoredOp {
	pool := w.GenRefine(w.Q, res, map[string]bool{}, w.Cfg.Budget)
	const maxSeeds = 48
	if len(pool) > maxSeeds {
		pool = pool[:maxSeeds]
	}
	return pool
}

func conflicts(used map[string]bool, o ops.Op) bool {
	for _, t := range targetsOf(o) {
		if used[t] {
			return true
		}
	}
	return false
}

func markTargets(used map[string]bool, o ops.Op) {
	for _, t := range targetsOf(o) {
		used[t] = true
	}
}

func targetsOf(o ops.Op) []string {
	switch o.Kind {
	case ops.RmL, ops.AddL, ops.RxL, ops.RfL:
		return []string{litTarget(o.U, o.Lit.Attr)}
	case ops.RmE, ops.RxE, ops.RfE:
		return []string{edgeTarget(o.U, o.U2)}
	case ops.AddE:
		if o.NewNode == nil {
			return []string{edgeTarget(o.U, o.U2)}
		}
	}
	return nil
}

func unionSet(a, b map[graph.NodeID]bool) map[graph.NodeID]bool {
	out := make(map[graph.NodeID]bool, len(a)+len(b))
	//lint:ignore mapiter set union: each iteration only inserts true, order-insensitive
	for v := range a {
		out[v] = true
	}
	//lint:ignore mapiter set union: each iteration only inserts true, order-insensitive
	for v := range b {
		out[v] = true
	}
	return out
}
