package chase

import (
	"sort"

	"wqe/internal/graph"
	"wqe/internal/ops"
	"wqe/internal/query"
)

// AnsWE answers removal-only Why-Empty questions (§6.1, Lemma 6.2):
// given a query with no relevant matches, find RmL/RmE operators of
// total cost ≤ B whose removal makes at least one relevant candidate a
// match.
//
// Per the lemma's proof, the query is decomposed into atomic-condition
// fragments — each focus literal, each non-focus node's connection to
// the focus, and each non-focus literal — and every relevant candidate
// is associated with the relaxation operators of the fragments it
// fails. The cheapest candidate within budget wins. The lemma covers
// star queries exactly; for deeper shapes the chosen rewrite is
// verified by evaluation and the next candidate is tried on failure.
func (w *Why) AnsWE() Answer {
	start := w.clock()
	w.beginRun()
	defer w.endRun(start)
	deadline := w.deadline(start)

	rootAns, _ := w.evaluate(w.Q, nil)
	q := w.Q
	focus := q.Focus

	// Branch edges: for every non-focus node, the first pattern edge on
	// its (undirected) path toward the focus; removing it detaches the
	// node's branch.
	branch := branchEdges(q)

	// Relevant candidates: rep members carrying the focus label.
	var rc []graph.NodeID
	for _, v := range w.FocusCands {
		if w.Eval.InRep(v) {
			rc = append(rc, v)
		}
	}
	if len(rc) == 0 {
		return rootAns
	}

	type plan struct {
		v    graph.NodeID
		ops  ops.Sequence
		cost float64
	}
	var plans []plan
	for _, v := range rc {
		var seq ops.Sequence
		seen := map[string]bool{}
		addOp := func(o ops.Op) {
			k := o.String()
			if !seen[k] {
				seen[k] = true
				seq = append(seq, o)
			}
		}

		// Fragment class 1: focus literals.
		for _, l := range q.Nodes[focus].Literals {
			if !l.Sat(w.G, v) {
				addOp(ops.Op{Kind: ops.RmL, U: focus, Lit: l})
			}
		}

		// Fragment classes 2 and 3: per non-focus node, its connection
		// and its literals, each evaluated via a bounded neighborhood of
		// the candidate.
		detached := map[int]bool{} // edges already scheduled for removal
		for ui := range q.Nodes {
			u := query.NodeID(ui)
			if u == focus {
				continue
			}
			be, ok := branch[u]
			if !ok {
				continue // already disconnected from the focus
			}
			pd := q.PatternDist(focus, u)
			if pd == graph.Unreachable || pd > 2*w.Cfg.MaxBound {
				pd = 2 * w.Cfg.MaxBound
			}
			ball := w.G.Ball(v, pd, graph.Both)

			// Class 2: does any label-compatible node sit within range?
			label := q.Nodes[u].Label
			connected := false
			for _, nd := range ball {
				if nd.D == 0 {
					continue
				}
				if label == "" || w.G.Label(nd.V) == label {
					connected = true
					break
				}
			}
			if !connected {
				if !detached[be] {
					detached[be] = true
					e := q.Edges[be]
					addOp(ops.Op{Kind: ops.RmE, U: e.From, U2: e.To, Bound: e.Bound})
				}
				continue // literals on a detached branch are moot
			}
			// Class 3: per-literal fragments.
			for _, l := range q.Nodes[u].Literals {
				sat := false
				for _, nd := range ball {
					if nd.D == 0 {
						continue
					}
					if (label == "" || w.G.Label(nd.V) == label) && l.Sat(w.G, nd.V) {
						sat = true
						break
					}
				}
				if !sat {
					addOp(ops.Op{Kind: ops.RmL, U: u, Lit: l})
				}
			}
		}
		plans = append(plans, plan{v: v, ops: seq, cost: seq.Cost(w.G)})
	}

	sort.SliceStable(plans, func(i, j int) bool { return plans[i].cost < plans[j].cost })
	for _, p := range plans {
		if p.cost > w.Cfg.Budget {
			break
		}
		// One verification evaluation per plan: this is the loop a
		// cancelled or deadline-expired Why-Empty question must leave.
		if w.stop(deadline) {
			break
		}
		if len(p.ops) == 0 {
			continue // already a match locally but not globally: skip
		}
		q2, err := p.ops.Apply(q, w.params)
		if err != nil {
			continue
		}
		ans2, res2 := w.evaluate(q2, p.ops)
		if res2.Has(p.v) {
			return ans2
		}
	}
	return rootAns
}

// branchEdges maps every non-focus pattern node to the edge index that
// connects its branch toward the focus (BFS tree over the undirected
// pattern).
func branchEdges(q *query.Query) map[query.NodeID]int {
	branch := map[query.NodeID]int{}
	visited := make([]bool, len(q.Nodes))
	visited[q.Focus] = true
	frontier := []query.NodeID{q.Focus}
	for len(frontier) > 0 {
		var next []query.NodeID
		for _, u := range frontier {
			for ei, e := range q.Edges {
				var nb query.NodeID
				switch u {
				case e.From:
					nb = e.To
				case e.To:
					nb = e.From
				default:
					continue
				}
				if !visited[nb] {
					visited[nb] = true
					if _, hasRoot := branch[u]; hasRoot {
						// Deeper nodes inherit the root edge of their
						// branch: removing it detaches them too.
						branch[nb] = branch[u]
					} else {
						branch[nb] = ei
					}
					next = append(next, nb)
				}
			}
		}
		frontier = next
	}
	return branch
}
