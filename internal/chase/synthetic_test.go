package chase_test

import (
	"math/rand"
	"testing"

	"wqe/internal/chase"
	"wqe/internal/datagen"
	"wqe/internal/distindex"
	"wqe/internal/graph"
	"wqe/internal/match"
	"wqe/internal/ops"
	"wqe/internal/query"
)

// genInstances builds n Why-question instances over a dataset.
func genInstances(t *testing.T, dataset string, nodes, count int, seed int64) (*graph.Graph, []*datagen.WhyInstance) {
	t.Helper()
	g, err := datagen.Generate(dataset, nodes, seed)
	if err != nil {
		t.Fatalf("generate %s: %v", dataset, err)
	}
	m := match.NewMatcher(g, distindex.NewBFS(g), nil)
	rng := rand.New(rand.NewSource(seed + 7))
	var out []*datagen.WhyInstance
	for tries := 0; len(out) < count && tries < count*20; tries++ {
		inst, ok := datagen.GenWhy(g, m, datagen.WhySpec{
			Query:      datagen.QuerySpec{Shape: query.TopoTree, Edges: 2, MaxPredicates: 2, PathEdgeProb: 0.2},
			DisturbOps: 3,
			MaxTuples:  5,
		}, rng)
		if ok {
			out = append(out, inst)
		}
	}
	if len(out) < count {
		t.Fatalf("only generated %d/%d instances on %s", len(out), count, dataset)
	}
	return g, out
}

func jaccard(a, b []graph.NodeID) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inA := map[graph.NodeID]bool{}
	for _, v := range a {
		inA[v] = true
	}
	inter := 0
	for _, v := range b {
		if inA[v] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// TestSyntheticEndToEnd runs AnsW and AnsHeu over generated
// Why-questions on every dataset and checks the algorithms improve on
// the disturbed query's answers.
func TestSyntheticEndToEnd(t *testing.T) {
	for _, ds := range datagen.AllDatasets() {
		ds := ds
		t.Run(ds, func(t *testing.T) {
			g, instances := genInstances(t, ds, 3000, 5, 42)
			var base, ansW, ansHeu float64
			for _, inst := range instances {
				cfg := chase.DefaultConfig()
				cfg.MaxSteps = 1500
				w, err := chase.NewWhy(g, inst.Q, inst.E, cfg)
				if err != nil {
					t.Fatalf("NewWhy: %v", err)
				}
				a := w.AnsW()
				if a.Cost > cfg.Budget+1e-9 {
					t.Errorf("AnsW exceeded budget: %v", a.Cost)
				}
				base += jaccard(inst.Answer, inst.AnswerStar)
				ansW += jaccard(a.Matches, inst.AnswerStar)

				w2, err := chase.NewWhy(g, inst.Q, inst.E, cfg)
				if err != nil {
					t.Fatalf("NewWhy: %v", err)
				}
				h := w2.AnsHeu(3)
				ansHeu += jaccard(h.Matches, inst.AnswerStar)
			}
			n := float64(len(instances))
			t.Logf("%s: relative closeness (Jaccard vs Q*): disturbed=%.3f AnsW=%.3f AnsHeu=%.3f",
				ds, base/n, ansW/n, ansHeu/n)
			if ansW < base-1e-9 {
				t.Errorf("AnsW made answers worse on average: base %.3f vs %.3f", base/n, ansW/n)
			}
		})
	}
}

// mustApply applies o to q, failing the test on a structural error.
func mustApply(t *testing.T, o ops.Op, q *query.Query) *query.Query {
	t.Helper()
	q2, err := o.Apply(q)
	if err != nil {
		t.Fatalf("Apply(%s): %v", o, err)
	}
	return q2
}
