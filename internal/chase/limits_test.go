package chase_test

import (
	"sync"
	"testing"
	"time"

	"wqe/internal/chase"
	"wqe/internal/datagen"
)

// TestMaxStepsRespected: the search stops at the step cap and still
// returns an answer.
func TestMaxStepsRespected(t *testing.T) {
	g, instances := genInstances(t, "watdiv-like", 2000, 1, 91)
	cfg := chase.DefaultConfig()
	cfg.MaxSteps = 10
	cfg.Prune = false // keep it from terminating early for other reasons
	w, err := chase.NewWhy(g, instances[0].Q, instances[0].E, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := w.AnsW()
	if w.Stats.Steps > 10 {
		t.Errorf("took %d steps, cap was 10", w.Stats.Steps)
	}
	if a.Query == nil {
		t.Error("no answer under step cap")
	}
}

// TestTimeLimitRespected: the anytime cutoff stops the search promptly.
func TestTimeLimitRespected(t *testing.T) {
	g, instances := genInstances(t, "dbpedia-like", 3000, 1, 93)
	cfg := chase.DefaultConfig()
	cfg.TimeLimit = 30 * time.Millisecond
	cfg.Prune = false
	w, err := chase.NewWhy(g, instances[0].Q, instances[0].E, cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	a := w.AnsW()
	elapsed := time.Since(start)
	// Generous envelope: one in-flight step may overshoot the limit.
	if elapsed > time.Second {
		t.Errorf("time limit ignored: ran %v", elapsed)
	}
	if a.Query == nil {
		t.Error("no answer under time limit")
	}
}

// TestConcurrentWhyQuestions: independent Why-questions over one graph
// run concurrently (exercised under -race in CI runs).
func TestConcurrentWhyQuestions(t *testing.T) {
	g, instances := genInstances(t, "watdiv-like", 2000, 3, 95)
	var wg sync.WaitGroup
	errs := make(chan error, len(instances))
	for _, inst := range instances {
		inst := inst
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := chase.DefaultConfig()
			cfg.MaxSteps = 200
			w, err := chase.NewWhy(g, inst.Q, inst.E, cfg)
			if err != nil {
				errs <- err
				return
			}
			w.AnsW()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestBadDistBackend: config validation.
func TestBadDistBackend(t *testing.T) {
	f := datagen.NewFig1()
	cfg := chase.DefaultConfig()
	cfg.DistBackend = "quantum"
	if _, err := chase.NewWhy(f.G, f.Q, f.E, cfg); err == nil {
		t.Error("unknown distance backend must be rejected")
	}
	cfg.DistBackend = "pll"
	if _, err := chase.NewWhy(f.G, f.Q, f.E, cfg); err != nil {
		t.Errorf("pll backend rejected: %v", err)
	}
}
