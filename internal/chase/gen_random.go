package chase

import (
	"sort"

	"wqe/internal/graph"
	"wqe/internal/ops"
	"wqe/internal/query"
)

// GenRandom produces applicable operators scored by coin flips instead
// of pickiness — the uninformed generator behind AnsHeuB. The pool
// covers every operator class: structural operators are enumerated
// exhaustively, literal operators sample constants from active domains.
func (w *Why) GenRandom(q *query.Query, used map[string]bool, budgetLeft float64) []scoredOp {
	var pool []ops.Op
	consider := func(o ops.Op) {
		switch o.Kind {
		case ops.RmL, ops.AddL, ops.RxL, ops.RfL:
			if used[litTarget(o.U, o.Lit.Attr)] {
				return
			}
		case ops.RmE, ops.RxE, ops.RfE:
			if used[edgeTarget(o.U, o.U2)] {
				return
			}
		case ops.AddE:
			if o.NewNode == nil && used[edgeTarget(o.U, o.U2)] {
				return
			}
		}
		if o.Applicable(q, w.params) && o.Cost(w.G) <= budgetLeft {
			pool = append(pool, o)
		}
	}

	for ui := range q.Nodes {
		u := query.NodeID(ui)
		for _, l := range q.Nodes[u].Literals {
			consider(ops.Op{Kind: ops.RmL, U: u, Lit: l})
			if l.Val.Kind == graph.Number {
				dom := w.G.ActiveDomain(l.Attr)
				for tries := 0; tries < 3 && dom.Numbers > 0; tries++ {
					v := dom.Values[w.rng.Intn(len(dom.Values))]
					if v.Kind != graph.Number {
						continue
					}
					switch l.Op {
					case graph.GE, graph.GT:
						if v.Num < l.Val.Num {
							consider(ops.Op{Kind: ops.RxL, U: u, Lit: l,
								NewLit: query.Literal{Attr: l.Attr, Op: graph.GE, Val: v}})
						} else if v.Num > l.Val.Num {
							consider(ops.Op{Kind: ops.RfL, U: u, Lit: l,
								NewLit: query.Literal{Attr: l.Attr, Op: graph.GE, Val: v}})
						}
					case graph.LE, graph.LT:
						if v.Num > l.Val.Num {
							consider(ops.Op{Kind: ops.RxL, U: u, Lit: l,
								NewLit: query.Literal{Attr: l.Attr, Op: graph.LE, Val: v}})
						} else if v.Num < l.Val.Num {
							consider(ops.Op{Kind: ops.RfL, U: u, Lit: l,
								NewLit: query.Literal{Attr: l.Attr, Op: graph.LE, Val: v}})
						}
					}
				}
			}
		}
		// Random AddL: sample attribute values from candidates of u.
		cands := q.Candidates(w.G, u)
		for tries := 0; tries < 3 && len(cands) > 0; tries++ {
			c := cands[w.rng.Intn(len(cands))]
			tuple := w.G.Tuple(c)
			if len(tuple) == 0 {
				continue
			}
			av := tuple[w.rng.Intn(len(tuple))]
			attr := w.G.Attrs.Name(av.Attr)
			consider(ops.Op{Kind: ops.AddL, U: u,
				Lit: query.Literal{Attr: attr, Op: graph.EQ, Val: av.Val}})
		}
	}

	for _, e := range q.Edges {
		consider(ops.Op{Kind: ops.RmE, U: e.From, U2: e.To, Bound: e.Bound})
		if e.Bound < w.Cfg.MaxBound {
			consider(ops.Op{Kind: ops.RxE, U: e.From, U2: e.To, Bound: e.Bound, NewBound: e.Bound + 1})
		}
		if e.Bound > 1 {
			consider(ops.Op{Kind: ops.RfE, U: e.From, U2: e.To, Bound: e.Bound, NewBound: e.Bound - 1})
		}
	}

	// Random AddE between existing unconnected pairs, and to a random
	// fresh label.
	for ai := range q.Nodes {
		for bi := range q.Nodes {
			a, b := query.NodeID(ai), query.NodeID(bi)
			if a == b || q.FindEdge(a, b) >= 0 {
				continue
			}
			consider(ops.Op{Kind: ops.AddE, U: a, U2: b, Bound: 1 + w.rng.Intn(w.Cfg.MaxBound)})
		}
	}
	if n := w.G.Labels.Len(); n > 1 {
		name := w.G.Labels.Name(int32(1 + w.rng.Intn(n-1)))
		if name != "" {
			consider(ops.Op{Kind: ops.AddE, U: q.Focus, Bound: 1 + w.rng.Intn(w.Cfg.MaxBound),
				NewNode: &ops.NewNodeSpec{Label: name}})
		}
	}

	out := make([]scoredOp, len(pool))
	for i, o := range pool {
		out[i] = scoredOp{Op: o, Pick: w.rng.Float64(), Cost: o.Cost(w.G), PickyEdge: -1}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pick > out[j].Pick })
	return capPerClass(out, w.Cfg.MaxOpsPerClass)
}
