package chase_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"wqe/internal/chase"
	"wqe/internal/datagen"
	"wqe/internal/match"
)

// shardWidth is one row of the BENCH_shard.json width sweep: AskAll
// throughput at one worker width, striped cache versus a single shard.
type shardWidth struct {
	Width             int     `json:"width"`
	UnshardedMS       float64 `json:"unsharded_ms"`
	ShardedMS         float64 `json:"sharded_ms"`
	UnshardedJobsPerS float64 `json:"unsharded_jobs_per_sec"`
	ShardedJobsPerS   float64 `json:"sharded_jobs_per_sec"`
	Speedup           float64 `json:"speedup"`
	OutputIdentical   bool    `json:"output_identical"`
}

// shardBench is the BENCH_shard.json schema: the AskAll width sweep
// plus a GetOrBuild hit-path microbenchmark (the contended operation the
// stripes exist for), with provenance.
type shardBench struct {
	GeneratedBy string `json:"generated_by"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	AutoShards  int    `json:"auto_shards"`
	Workload    string `json:"workload"`

	Widths []shardWidth `json:"widths"`

	Micro1ShardNsOp  int64   `json:"micro_getorbuild_1shard_ns_op"`
	MicroShardedNsOp int64   `json:"micro_getorbuild_sharded_ns_op"`
	MicroAllocsPerOp int64   `json:"micro_getorbuild_allocs_per_op"`
	MicroSpeedup     float64 `json:"micro_speedup"`

	Note string `json:"note"`
}

// TestEmitShardBench measures the sharded star-view cache against the
// single-shard (un-striped) cache — AskAll jobs/sec at batch widths
// 1/4/8/16 and a contended GetOrBuild hit microbenchmark — and writes
// BENCH_shard.json. Gated behind WQE_SHARD_BENCH_JSON: set it to 1 to
// write the repo default, or to an explicit output path. `make
// bench-shard` wraps this.
func TestEmitShardBench(t *testing.T) {
	out := os.Getenv("WQE_SHARD_BENCH_JSON")
	if out == "" {
		t.Skip("set WQE_SHARD_BENCH_JSON=1 (or to an output path) to emit BENCH_shard.json")
	}
	if out == "1" {
		out = filepath.Join("..", "..", "BENCH_shard.json")
	}
	guardSingleCoreOverwrite(t, out)

	const nJobs = 16
	const workload = "products n=2000: 16 Why-questions batched over one shared session " +
		"(AnsHeu(4), MaxSteps=1000, cache on), AskAll at Workers=1/4/8/16, " +
		"CacheShards=1 (un-striped) vs CacheShards=0 (auto)"
	g, instances := genInstances(t, datagen.DatasetProducts, 2000, nJobs, 11)
	jobs := make([]chase.BatchJob, len(instances))
	for i, inst := range instances {
		jobs[i] = chase.BatchJob{Q: inst.Q, E: inst.E, Beam: 4, MaxSteps: 1000}
	}

	run := func(shards, workers int) (time.Duration, string) {
		cfg := chase.DefaultConfig()
		cfg.MaxSteps = 1000
		cfg.Cache = true
		cfg.CacheShards = shards
		sess := chase.NewSession(g, cfg)
		start := time.Now()
		results, _ := sess.AskAll(jobs, chase.BatchOptions{Workers: workers})
		dur := time.Since(start)
		transcript := ""
		for _, r := range results {
			if r.Err != nil {
				t.Fatalf("batch job failed: %v", r.Err)
			}
			transcript += renderAnswer(r.Answer) + "\n"
		}
		return dur, transcript
	}

	run(1, 1) // warm allocator and OS caches once
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	jps := func(d time.Duration) float64 { return float64(nJobs) / d.Seconds() }
	var widths []shardWidth
	for _, w := range []int{1, 4, 8, 16} {
		flatDur, flatOut := run(1, w)
		shDur, shOut := run(0, w)
		widths = append(widths, shardWidth{
			Width:             w,
			UnshardedMS:       ms(flatDur),
			ShardedMS:         ms(shDur),
			UnshardedJobsPerS: jps(flatDur),
			ShardedJobsPerS:   jps(shDur),
			Speedup:           float64(flatDur) / float64(shDur),
			OutputIdentical:   flatOut == shOut,
		})
		if flatOut != shOut {
			t.Fatalf("width %d: sharded output diverged from single-shard", w)
		}
	}

	// Microbenchmark: the pure GetOrBuild hit path under RunParallel
	// contention — the operation whose mutex the stripes split.
	micro := func(shards int) testing.BenchmarkResult {
		c := match.NewCacheSharded(256, 0.95, shards)
		keys := make([]string, 64)
		for i := range keys {
			keys[i] = fmt.Sprintf("g1|star|c=phone|e%d>store@2", i)
			c.Put(keys[i], &match.StarTable{})
		}
		// The working set is warm; build must never run.
		build := func() *match.StarTable { t.Fail(); return &match.StarTable{} }
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if c.GetOrBuild(keys[i&63], build) == nil {
						b.Fail()
					}
					i++
				}
			})
		})
	}
	flat := micro(1)
	striped := micro(0)

	b := shardBench{
		GeneratedBy:      "WQE_SHARD_BENCH_JSON=1 go test ./internal/chase -run TestEmitShardBench (make bench-shard)",
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		NumCPU:           runtime.NumCPU(),
		AutoShards:       match.DefaultShards(),
		Workload:         workload,
		Widths:           widths,
		Micro1ShardNsOp:  flat.NsPerOp(),
		MicroShardedNsOp: striped.NsPerOp(),
		MicroAllocsPerOp: striped.AllocsPerOp(),
		MicroSpeedup:     float64(flat.NsPerOp()) / float64(striped.NsPerOp()),
		Note: "throughput target is >=1.5x sharded-over-unsharded at width 8 on >=4 cores; " +
			"single-core runners record ~1.0x because one worker never contends with itself",
	}
	warnSingleCore(t)

	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatalf("writing %s: %v", out, err)
	}
	for _, w := range widths {
		t.Logf("width %2d: unsharded %.0fms (%.1f jobs/s) -> sharded %.0fms (%.1f jobs/s), %.2fx",
			w.Width, w.UnshardedMS, w.UnshardedJobsPerS, w.ShardedMS, w.ShardedJobsPerS, w.Speedup)
	}
	t.Logf("wrote %s: GetOrBuild hit %dns -> %dns (%.2fx, %d allocs/op) on %d core(s)",
		out, b.Micro1ShardNsOp, b.MicroShardedNsOp, b.MicroSpeedup, b.MicroAllocsPerOp, b.GOMAXPROCS)
}
