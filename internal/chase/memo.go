package chase

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"
	"strings"
	"time"
)

// This file is the session's answer memo: the serving-path cache that
// stops identical Why-questions from recomputing identical chases.
// Session.Run and AskAll route batch jobs through runMemo, which keys
// each job by a canonical digest of everything that determines its
// answer — graph identity, resolved algorithm, query, exemplar, and
// every search knob — and shares one singleflight chase among identical
// concurrent requests (internal/anscache holds the stripe discipline).
//
// Deadlines, time limits, and cancel signals are deliberately EXCLUDED
// from both the key and the flight: a memoized chase runs detached
// (bounded only by MaxSteps), so the stored answer is a pure function
// of the key and one waiter's disconnect can never truncate the answer
// every other waiter receives. The trade-off is anytime semantics: a
// deadline-limited request served from the memo gets the complete
// answer rather than a best-so-far cut, which is never worse for the
// caller but is observable. Callers that need exact per-call anytime
// behavior leave Config.AnswerCache off.

// keySep separates canonical key fields; it cannot appear in the
// numeric fields and query/exemplar encodings close over their own
// structure, so the concatenation is unambiguous.
const keySep = "\x1f"

// answerKey builds the canonical digest for one batch job, or ok=false
// when the job must bypass the memo (unknown algo — let runJob report
// the error; memoizing errors would hide config typos behind hits).
func (s *Session) answerKey(j BatchJob) (key string, ok bool) {
	// Resolve the algorithm exactly as runJob dispatches it, so "" with
	// a positive beam and an explicit "heu" with the same beam share an
	// entry, and beam widths below one collapse onto the default 3.
	var algo string
	switch {
	case j.Algo == "" && j.Beam > 0, j.Algo == "heu":
		beam := j.Beam
		if beam < 1 {
			beam = 3
		}
		algo = "heu:" + strconv.Itoa(beam)
	case j.Algo == "", j.Algo == "answ":
		algo = "answ"
	case j.Algo == "whymany", j.Algo == "whyempty", j.Algo == "fmansw":
		algo = j.Algo
	default:
		return "", false
	}
	maxSteps := s.Cfg.MaxSteps
	if j.MaxSteps > 0 {
		maxSteps = j.MaxSteps
	}

	var b strings.Builder
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, part := range []string{
		strconv.FormatUint(s.G.UID(), 16),
		algo,
		strconv.Itoa(maxSteps),
		f(s.Cfg.Budget),
		strconv.Itoa(s.Cfg.MaxBound),
		f(s.Cfg.Theta),
		f(s.Cfg.Lambda),
		strconv.FormatBool(s.Cfg.Prune),
		strconv.Itoa(s.Cfg.MaxOpsPerClass),
		strconv.Itoa(s.Cfg.MaxAnalysis),
		strconv.FormatInt(s.Cfg.Seed, 10),
		j.Q.Key(),
		j.E.String(),
	} {
		b.WriteString(part)
		b.WriteString(keySep)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:]), true
}

// runMemo is the memo-aware front of runJob. With the answer cache off
// (or for jobs the memo cannot key) it is runJob verbatim. With it on,
// identical jobs coalesce onto one detached chase and hits return the
// stored result without touching the search at all — the session's
// Questions counter therefore counts *chases executed*, which is the
// counting oracle the coalescing tests assert against.
func (s *Session) runMemo(j BatchJob, submit time.Time, batchCancel <-chan struct{}) BatchResult {
	if s.ans == nil || j.Q == nil || j.E == nil || s.Cfg.OnImprove != nil {
		// No memo, unanswerable job (runJob reports errNilJob), or a
		// streaming OnImprove hook that must observe every improvement.
		return s.runJob(j, submit, batchCancel, false)
	}
	key, ok := s.answerKey(j)
	if !ok {
		return s.runJob(j, submit, batchCancel, false)
	}
	res, _ := s.ans.GetOrCompute(key, func() (BatchResult, bool) {
		// Detached flight: deadlines/cancel stripped (see file comment),
		// so the stored answer is complete and deterministic. Errors are
		// delivered to every coalesced waiter but never stored — the
		// next identical request retries.
		r := s.runJob(j, submit, nil, true)
		return r, r.Err == nil
	})
	return res
}

// InvalidateAnswers drops every memoized answer and fences in-flight
// chases from re-seeding the memo — the seam a future dynamic-graphs
// layer calls after each mutation batch. No-op without an answer cache.
func (s *Session) InvalidateAnswers() {
	if s.ans != nil {
		s.ans.InvalidateAll()
	}
}
