package chase_test

import (
	"testing"

	"wqe/internal/chase"
)

// TestDiagSearchEffort logs how much work each variant does on one
// dataset — a development diagnostic, always passing.
func TestDiagSearchEffort(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	g, instances := genInstances(t, "dbpedia-like", 3000, 3, 42)
	for _, tc := range []struct {
		name  string
		cache bool
		prune bool
	}{
		{"AnsW", true, true},
		{"AnsWnc", false, true},
		{"AnsWb", false, false},
	} {
		for i, inst := range instances {
			cfg := chase.DefaultConfig()
			cfg.Cache = tc.cache
			cfg.Prune = tc.prune
			cfg.MaxSteps = 30000
			w, err := chase.NewWhy(g, inst.Q, inst.E, cfg)
			if err != nil {
				t.Fatal(err)
			}
			a := w.AnsW()
			t.Logf("%s inst%d: steps=%d states=%d pruned=%d elapsed=%v cl=%.4f cl*=%.4f jac=%.3f cacheHit=%d/%d",
				tc.name, i, w.Stats.Steps, w.Stats.States, w.Stats.Pruned, w.Stats.Elapsed,
				a.Closeness, w.ClStar, jaccard(a.Matches, inst.AnswerStar),
				w.Stats.CacheHits, w.Stats.CacheHits+w.Stats.CacheMiss)
		}
	}
}
