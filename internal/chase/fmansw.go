package chase

import (
	"sort"

	"wqe/internal/graph"
	"wqe/internal/query"
)

// FMAnsW is the comparison baseline of §7: a frequent-pattern-mining
// query suggester in the spirit of Mottin et al. (KDD 2015). It mines
// frequent features — attribute values on focus candidates and labeled
// neighbors within two hops — around the desired entities, assembles
// candidate star queries from frequent feature combinations, evaluates
// each, and returns the one with the best closeness. It suggests whole
// queries rather than rewrites (Ops is empty) and serves as the slow,
// example-agnostic baseline.
func (w *Why) FMAnsW() Answer {
	start := w.clock()
	w.beginRun()
	defer w.endRun(start)
	deadline := w.deadline(start)

	rootAns, _ := w.evaluate(w.Q, nil)
	focusLabel := w.Q.Nodes[w.Q.Focus].Label

	// Mine features "around V_{u_o}" (§7): the whole focus candidate
	// pool, weighting desired entities (rep members) double so frequent
	// features lean toward the exemplar. Mining over every candidate's
	// two-hop neighborhood is what makes this baseline expensive.
	pool := w.FocusCands
	const maxMined = 4000
	if len(pool) > maxMined {
		pool = pool[:maxMined]
	}

	type feature struct {
		// literal feature when attr != ""; neighbor-label feature
		// otherwise.
		attr  string
		val   graph.Value
		label string
		dist  int
		out   bool
		count int
	}
	counts := map[string]*feature{}
	weight := 1
	bump := func(key string, f feature) {
		if ex := counts[key]; ex != nil {
			ex.count += weight
			return
		}
		f.count = weight
		counts[key] = &f
	}
	for _, v := range pool {
		weight = 1
		if w.Eval.InRep(v) {
			weight = 3 // lean the mined features toward desired entities
		}
		for _, av := range w.G.Tuple(v) {
			attr := w.G.Attrs.Name(av.Attr)
			bump("a:"+attr+"="+av.Val.String()+kindOf(av.Val),
				feature{attr: attr, val: av.Val})
		}
		for _, nd := range w.G.Ball(v, 2, graph.Forward) {
			if nd.D == 0 {
				continue
			}
			l := w.G.Label(nd.V)
			bump("o:"+l+string(rune('0'+nd.D)), feature{label: l, dist: int(nd.D), out: true})
		}
		for _, nd := range w.G.Ball(v, 2, graph.Backward) {
			if nd.D == 0 {
				continue
			}
			l := w.G.Label(nd.V)
			bump("i:"+l+string(rune('0'+nd.D)), feature{label: l, dist: int(nd.D), out: false})
		}
	}

	feats := make([]*feature, 0, len(counts))
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		feats = append(feats, counts[k])
	}
	sort.SliceStable(feats, func(i, j int) bool { return feats[i].count > feats[j].count })
	const maxFeatures = 10
	if len(feats) > maxFeatures {
		feats = feats[:maxFeatures]
	}

	// Assemble candidate queries: all feature subsets up to size 3.
	build := func(subset []*feature) *query.Query {
		q := query.New()
		f := q.AddNode(focusLabel)
		q.Focus = f
		for _, ft := range subset {
			if ft.attr != "" {
				q.Nodes[f].Literals = append(q.Nodes[f].Literals,
					query.Literal{Attr: ft.attr, Op: graph.EQ, Val: ft.val})
			} else {
				n := q.AddNode(ft.label)
				if ft.out {
					q.AddEdge(f, n, ft.dist)
				} else {
					q.AddEdge(n, f, ft.dist)
				}
			}
		}
		return q
	}

	best := rootAns
	consider := func(subset []*feature) {
		q := build(subset)
		ans, _ := w.evaluate(q, nil)
		ans.Ops = nil
		if ans.Closeness > best.Closeness {
			best = ans
		}
	}
	const maxQueries = 200
	evaluatedQ := 0
	n := len(feats)
	for i := 0; i < n && evaluatedQ < maxQueries; i++ {
		if w.stop(deadline) {
			break
		}
		consider([]*feature{feats[i]})
		evaluatedQ++
		for j := i + 1; j < n && evaluatedQ < maxQueries && !w.stop(deadline); j++ {
			consider([]*feature{feats[i], feats[j]})
			evaluatedQ++
			for k := j + 1; k < n && evaluatedQ < maxQueries && !w.stop(deadline); k++ {
				consider([]*feature{feats[i], feats[j], feats[k]})
				evaluatedQ++
			}
		}
	}
	return best
}
