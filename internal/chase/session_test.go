package chase_test

import (
	"testing"

	"wqe/internal/chase"
	"wqe/internal/datagen"
	"wqe/internal/exemplar"
	"wqe/internal/graph"
	"wqe/internal/query"
)

// TestSessionReusesCache: consecutive Why-questions in one session hit
// the shared star-view cache.
func TestSessionReusesCache(t *testing.T) {
	f := datagen.NewFig1()
	cfg := chase.DefaultConfig()
	cfg.Budget = 4
	s := chase.NewSession(f.G, cfg)

	a1, err := s.Ask(f.Q, f.E)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Closeness != 0.5 {
		t.Fatalf("session AnsW closeness = %v", a1.Closeness)
	}
	h0, m0 := s.CacheStats()

	// The follow-up session re-asks from the rewrite; the cache must
	// serve some of its stars.
	e2 := exemplar.FromEntities(f.G,
		[]graph.NodeID{f.Phones["P3"], f.Phones["P5"]}, []string{"Display"})
	a2, err := s.AskFast(a1.Query, e2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Query == nil {
		t.Fatal("second session returned nothing")
	}
	h1, m1 := s.CacheStats()
	if h1 <= h0 {
		t.Errorf("second session gained no cache hits: %d/%d → %d/%d", h0, m0, h1, m1)
	}
}

func TestSessionRejectsTrivialExemplar(t *testing.T) {
	f := datagen.NewFig1()
	s := chase.NewSession(f.G, chase.DefaultConfig())
	bad := &exemplar.Exemplar{Tuples: []exemplar.TuplePattern{{
		"Display": exemplar.C(graph.N(1234)),
	}}}
	if _, err := s.Ask(f.Q, bad); err == nil {
		t.Error("trivial exemplar must be rejected by sessions too")
	}
}

// TestAnsWMultiFocus: the appendix extension answers one Why-question
// per focus node.
func TestAnsWMultiFocus(t *testing.T) {
	f := datagen.NewFig1()
	cfg := chase.DefaultConfig()
	cfg.Budget = 4

	carrierExemplar := &exemplar.Exemplar{Tuples: []exemplar.TuplePattern{{
		"Discount": exemplar.C(graph.N(25)),
	}}}

	answers, err := chase.AnsWMultiFocus(f.G, f.Q,
		[]query.NodeID{0, 1}, // cellphone and carrier
		[]*exemplar.Exemplar{f.E, carrierExemplar}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 2 {
		t.Fatalf("got %d answers", len(answers))
	}
	if answers[0].Focus != 0 || answers[1].Focus != 1 {
		t.Error("focus bookkeeping wrong")
	}
	if answers[0].Answer.Closeness != 0.5 {
		t.Errorf("cellphone-focus closeness = %v, want 0.5", answers[0].Answer.Closeness)
	}
	// The carrier-focused question wants 25%-discount carriers.
	for _, v := range answers[1].Answer.Matches {
		if d, ok := f.G.Attr(v, "Discount"); !ok || !d.Equal(graph.N(25)) {
			t.Errorf("carrier-focus answer %d has discount %v", v, d)
		}
	}

	if _, err := chase.AnsWMultiFocus(f.G, f.Q, []query.NodeID{0},
		[]*exemplar.Exemplar{f.E, carrierExemplar}, cfg); err == nil {
		t.Error("mismatched foci/exemplars must error")
	}
}
