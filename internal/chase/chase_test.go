package chase_test

import (
	"math/rand"
	"reflect"
	"testing"

	"wqe/internal/chase"
	"wqe/internal/datagen"
	"wqe/internal/distindex"
	"wqe/internal/exemplar"
	"wqe/internal/graph"
	"wqe/internal/match"
	"wqe/internal/ops"
	"wqe/internal/query"
)

// TestPartitionCoversCandidates: RM ∪ IM ∪ RC ∪ IC partitions V_{u_o}.
func TestPartitionCoversCandidates(t *testing.T) {
	f := datagen.NewFig1()
	w, err := chase.NewWhy(f.G, f.Q, f.E, chase.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := w.Matcher.Match(f.Q)
	rm, im, rc, ic := w.Partition(res)
	total := len(rm) + len(im) + len(rc) + len(ic)
	if total != len(w.FocusCands) {
		t.Fatalf("partition covers %d of %d candidates", total, len(w.FocusCands))
	}
	seen := map[graph.NodeID]int{}
	for _, s := range [][]graph.NodeID{rm, im, rc, ic} {
		for _, v := range s {
			seen[v]++
		}
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("candidate %d appears in %d classes", v, n)
		}
	}
}

// TestGeneratedOpsApplicable: every picky operator is applicable,
// within budget, and respects the canonical-target discipline.
func TestGeneratedOpsApplicable(t *testing.T) {
	f := datagen.NewFig1()
	cfg := chase.DefaultConfig()
	cfg.Budget = 4
	w, err := chase.NewWhy(f.G, f.Q, f.E, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := w.Matcher.Match(f.Q)
	params := ops.Params{MaxBound: cfg.MaxBound}

	relax := w.GenRelax(f.Q, res, map[string]bool{}, cfg.Budget)
	if len(relax) == 0 {
		t.Fatal("no relaxations generated despite RC nodes")
	}
	for _, s := range relax {
		if !s.Op.Kind.IsRelax() {
			t.Errorf("GenRelax produced non-relaxation %s", s.Op)
		}
		if !s.Op.Applicable(f.Q, params) {
			t.Errorf("inapplicable op generated: %s", s.Op)
		}
		if c := s.Op.Cost(f.G); c > cfg.Budget {
			t.Errorf("over-budget op generated: %s (%.2f)", s.Op, c)
		}
		if s.Pick <= 0 {
			t.Errorf("non-positive pickiness on %s", s.Op)
		}
	}

	refine := w.GenRefine(f.Q, res, map[string]bool{}, cfg.Budget)
	if len(refine) == 0 {
		t.Fatal("no refinements generated despite IM nodes")
	}
	for _, s := range refine {
		if !s.Op.Kind.IsRefine() {
			t.Errorf("GenRefine produced non-refinement %s", s.Op)
		}
		if !s.Op.Applicable(f.Q, params) {
			t.Errorf("inapplicable op generated: %s", s.Op)
		}
	}

	// Used targets must be honored.
	used := map[string]bool{"L:0:Price": true}
	for _, s := range w.GenRelax(f.Q, res, used, cfg.Budget) {
		if s.Op.U == f.Q.Focus && s.Op.Lit.Attr == "Price" {
			t.Errorf("generator reused a spent target: %s", s.Op)
		}
	}
}

// TestPickinessBoundsGain is the Lemma 5.2 property: for every
// generated relaxation o, p(o) ≥ cl(Q ⊕ o) − cl(Q).
func TestPickinessBoundsGain(t *testing.T) {
	f := datagen.NewFig1()
	cfg := chase.DefaultConfig()
	cfg.Budget = 4
	w, err := chase.NewWhy(f.G, f.Q, f.E, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := w.Matcher.Match(f.Q)
	base := w.Closeness(res.Answer)
	for _, s := range w.GenRelax(f.Q, res, map[string]bool{}, cfg.Budget) {
		q2 := mustApply(t, s.Op, f.Q)
		res2 := w.Matcher.Match(q2)
		gain := w.Closeness(res2.Answer) - base
		if s.Pick < gain-1e-9 {
			t.Errorf("pickiness %f underestimates gain %f for %s", s.Pick, gain, s.Op)
		}
	}
}

// TestPickinessBoundsGainSynthetic extends the Lemma 5.2 check to
// generated instances.
func TestPickinessBoundsGainSynthetic(t *testing.T) {
	g, instances := genInstances(t, "watdiv-like", 2000, 3, 77)
	for _, inst := range instances {
		w, err := chase.NewWhy(g, inst.Q, inst.E, chase.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		res := w.Matcher.Match(inst.Q)
		base := w.Closeness(res.Answer)
		pool := w.GenRelax(inst.Q, res, map[string]bool{}, 3)
		for i, s := range pool {
			if i >= 10 {
				break // checking the top of the queue suffices
			}
			res2 := w.Matcher.Match(mustApply(t, s.Op, inst.Q))
			gain := w.Closeness(res2.Answer) - base
			if s.Pick < gain-1e-9 {
				t.Errorf("pickiness %f underestimates gain %f for %s", s.Pick, gain, s.Op)
			}
		}
	}
}

// TestAnsWBudget: answers never exceed the budget, across budgets.
func TestAnsWBudget(t *testing.T) {
	f := datagen.NewFig1()
	for _, b := range []float64{1, 2, 3, 4, 5} {
		cfg := chase.DefaultConfig()
		cfg.Budget = b
		w, err := chase.NewWhy(f.G, f.Q, f.E, cfg)
		if err != nil {
			t.Fatal(err)
		}
		a := w.AnsW()
		if a.Cost > b+1e-9 {
			t.Errorf("budget %v: cost %v", b, a.Cost)
		}
		if got := a.Ops.Cost(f.G); !almostEqual(got, a.Cost) {
			t.Errorf("reported cost %v disagrees with sequence cost %v", a.Cost, got)
		}
	}
}

// TestAnsWMonotoneInBudget: a larger budget never yields a worse
// optimal closeness (the search space grows monotonically).
func TestAnsWMonotoneInBudget(t *testing.T) {
	f := datagen.NewFig1()
	prev := -1.0
	for _, b := range []float64{1, 2, 3, 4, 5} {
		cfg := chase.DefaultConfig()
		cfg.Budget = b
		w, _ := chase.NewWhy(f.G, f.Q, f.E, cfg)
		a := w.AnsW()
		if a.Closeness < prev-1e-9 {
			t.Errorf("budget %v decreased closeness: %v < %v", b, a.Closeness, prev)
		}
		prev = a.Closeness
	}
}

// TestAnsWDeterministic: identical inputs give identical rewrites.
func TestAnsWDeterministic(t *testing.T) {
	g, instances := genInstances(t, "offshore-like", 2000, 2, 31)
	for _, inst := range instances {
		var keys []string
		var cls []float64
		for run := 0; run < 2; run++ {
			w, err := chase.NewWhy(g, inst.Q, inst.E, chase.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			a := w.AnsW()
			keys = append(keys, a.Query.Key())
			cls = append(cls, a.Closeness)
		}
		if keys[0] != keys[1] || cls[0] != cls[1] {
			t.Fatalf("nondeterministic AnsW: %v vs %v (cl %v vs %v)", keys[0], keys[1], cls[0], cls[1])
		}
	}
}

// TestDiffTableConsistency: replaying the rewrite's operator deltas
// reconstructs the final answer from the original one.
func TestDiffTableConsistency(t *testing.T) {
	f := datagen.NewFig1()
	cfg := chase.DefaultConfig()
	cfg.Budget = 4
	w, _ := chase.NewWhy(f.G, f.Q, f.E, cfg)
	root := w.Matcher.Match(f.Q)
	a := w.AnsW()

	cur := map[graph.NodeID]bool{}
	for _, v := range root.Answer {
		cur[v] = true
	}
	for _, d := range a.Diff {
		for _, n := range d.Delta {
			if n.Added {
				cur[n.V] = true
			} else {
				delete(cur, n.V)
			}
		}
	}
	want := map[graph.NodeID]bool{}
	for _, v := range a.Matches {
		want[v] = true
	}
	if !reflect.DeepEqual(cur, want) {
		t.Errorf("diff replay = %v, want %v", cur, want)
	}
}

// TestApxWhyM: the Why-Many answer uses refinement-only operators
// within budget and does not add irrelevant matches.
func TestApxWhyM(t *testing.T) {
	g, instances := genInstancesSpec(t, "offshore-like", 2500, 3, 51, datagen.WhySpec{
		Query:      datagen.QuerySpec{Edges: 2, MaxPredicates: 3},
		DisturbOps: 2,
		MaxTuples:  5,
		RelaxOnly:  true,
	})
	improved := 0
	for _, inst := range instances {
		w, err := chase.NewWhy(g, inst.Q, inst.E, chase.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		root := w.Matcher.Match(inst.Q)
		_, imBefore, _, _ := w.Partition(root)
		a := w.ApxWhyM()
		for _, o := range a.Ops {
			if !o.Kind.IsRefine() {
				t.Errorf("ApxWhyM applied non-refinement %s", o)
			}
		}
		if a.Cost > w.Cfg.Budget+1e-9 {
			t.Errorf("ApxWhyM exceeded budget: %v", a.Cost)
		}
		imAfter := 0
		for _, v := range a.Matches {
			if !w.Eval.InRep(v) {
				imAfter++
			}
		}
		if imAfter > len(imBefore) {
			t.Errorf("ApxWhyM increased |IM|: %d → %d", len(imBefore), imAfter)
		}
		if imAfter < len(imBefore) {
			improved++
		}
		if a.Closeness < w.Closeness(root.Answer)-1e-9 {
			t.Errorf("ApxWhyM decreased closeness")
		}
	}
	if improved == 0 {
		t.Error("ApxWhyM never removed an irrelevant match")
	}
}

// TestAnsWE: removal-only Why-Empty rewriting on a constructed case.
func TestAnsWE(t *testing.T) {
	g := graph.New()
	brand := g.AddNode("Brand", map[string]graph.Value{"Name": graph.S("Apple")})
	l1 := g.AddNode("Laptop", map[string]graph.Value{
		"Year": graph.N(2018), "GPU": graph.S("AMD"), "RAM": graph.N(32),
	})
	g.AddEdge(l1, brand, "madeBy")
	l2 := g.AddNode("Laptop", map[string]graph.Value{
		"Year": graph.N(2017), "GPU": graph.S("NVidia"), "RAM": graph.N(16),
	})
	g.AddEdge(l2, brand, "madeBy")

	q := query.New()
	lap := q.AddNode("Laptop",
		query.Literal{Attr: "Year", Op: graph.GE, Val: graph.N(2018)},
		query.Literal{Attr: "GPU", Op: graph.EQ, Val: graph.S("NVidia")},
	)
	br := q.AddNode("Brand")
	q.AddEdge(lap, br, 1)
	q.Focus = lap

	e := &exemplar.Exemplar{Tuples: []exemplar.TuplePattern{{
		"RAM": exemplar.C(graph.N(32)),
	}}}

	w, err := chase.NewWhy(g, q, e, chase.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	root := w.Matcher.Match(q)
	if len(root.Answer) != 0 {
		t.Fatalf("setup broken: Q(G) = %v", root.Answer)
	}
	a := w.AnsWE()
	if len(a.Matches) == 0 {
		t.Fatal("AnsWE found no rewrite")
	}
	found := false
	for _, v := range a.Matches {
		if v == l1 {
			found = true
		}
	}
	if !found {
		t.Errorf("AnsWE answer %v misses the relevant laptop", a.Matches)
	}
	for _, o := range a.Ops {
		if o.Kind != ops.RmL && o.Kind != ops.RmE {
			t.Errorf("AnsWE used non-removal operator %s", o)
		}
	}
	// Exactly the GPU literal was responsible.
	if len(a.Ops) != 1 || a.Ops[0].Lit.Attr != "GPU" {
		t.Errorf("expected the single GPU removal, got %v", a.Ops)
	}
}

// TestAnsHeuBRandomSeedStability: AnsHeuB is random but seeded.
func TestAnsHeuBRandomSeedStability(t *testing.T) {
	f := datagen.NewFig1()
	cfg := chase.DefaultConfig()
	cfg.Budget = 4
	cfg.Seed = 5
	w1, _ := chase.NewWhy(f.G, f.Q, f.E, cfg)
	w2, _ := chase.NewWhy(f.G, f.Q, f.E, cfg)
	a1, a2 := w1.AnsHeuB(3), w2.AnsHeuB(3)
	if a1.Query.Key() != a2.Query.Key() {
		t.Error("same seed should reproduce AnsHeuB results")
	}
}

// TestFMAnsWReturnsQuery: the baseline always yields an evaluable query.
func TestFMAnsWReturnsQuery(t *testing.T) {
	f := datagen.NewFig1()
	cfg := chase.DefaultConfig()
	cfg.Budget = 4
	w, _ := chase.NewWhy(f.G, f.Q, f.E, cfg)
	a := w.FMAnsW()
	if a.Query == nil {
		t.Fatal("nil suggestion")
	}
	res := w.Matcher.Match(a.Query)
	if got := w.Closeness(res.Answer); !almostEqual(got, a.Closeness) {
		t.Errorf("reported closeness %v, re-evaluated %v", a.Closeness, got)
	}
}

// TestTrivialExemplarRejected: rep(E, V) = ∅ must be refused.
func TestTrivialExemplarRejected(t *testing.T) {
	f := datagen.NewFig1()
	e := &exemplar.Exemplar{Tuples: []exemplar.TuplePattern{{
		"Display": exemplar.C(graph.N(99)),
	}}}
	if _, err := chase.NewWhy(f.G, f.Q, e, chase.DefaultConfig()); err == nil {
		t.Error("trivial exemplar must be rejected")
	}
}

// TestAnytimeTrajectory: improvements are recorded monotonically.
func TestAnytimeTrajectory(t *testing.T) {
	f := datagen.NewFig1()
	cfg := chase.DefaultConfig()
	cfg.Budget = 4
	var improvements []float64
	cfg.OnImprove = func(best chase.Answer) {
		improvements = append(improvements, best.Closeness)
	}
	w, _ := chase.NewWhy(f.G, f.Q, f.E, cfg)
	w.AnsW()
	if len(improvements) == 0 {
		t.Fatal("no improvements reported")
	}
	for i := 1; i < len(improvements); i++ {
		if improvements[i] < improvements[i-1] {
			t.Error("anytime improvements must be monotone")
		}
	}
	if len(w.Stats.Trajectory) != len(improvements) {
		t.Errorf("trajectory length %d vs callbacks %d", len(w.Stats.Trajectory), len(improvements))
	}
}

// genInstancesSpec is genInstances with a custom WhySpec.
func genInstancesSpec(t *testing.T, dataset string, nodes, count int, seed int64, spec datagen.WhySpec) (*graph.Graph, []*datagen.WhyInstance) {
	t.Helper()
	g, err := datagen.Generate(dataset, nodes, seed)
	if err != nil {
		t.Fatal(err)
	}
	m := newTestMatcher(g)
	rng := rand.New(rand.NewSource(seed + 7))
	var out []*datagen.WhyInstance
	for tries := 0; len(out) < count && tries < count*30; tries++ {
		if inst, ok := datagen.GenWhy(g, m, spec, rng); ok {
			out = append(out, inst)
		}
	}
	if len(out) < count {
		t.Skipf("only generated %d/%d instances", len(out), count)
	}
	return g, out
}

func newTestMatcher(g *graph.Graph) *match.Matcher {
	return match.NewMatcher(g, distindex.NewBFS(g), nil)
}
