package chase_test

import (
	"fmt"
	"strings"
	"testing"

	"wqe/internal/chase"
	"wqe/internal/datagen"
)

// renderAnswer serializes the observable result of a run — headline
// (cost, closeness, ops), plus the exact match set — so two runs can be
// compared byte for byte.
func renderAnswer(a chase.Answer) string {
	return fmt.Sprintf("%s matches=%v", a, a.Matches)
}

// TestAnsHeuDeterministicFig1 rebuilds the running example from scratch
// and re-runs AnsHeu: identical inputs must produce byte-identical
// output. This is the regression gate for the map-iteration and
// float-summation nondeterminism wqe-lint's mapiter/floateq rules
// exist to prevent.
func TestAnsHeuDeterministicFig1(t *testing.T) {
	run := func() string {
		f := datagen.NewFig1()
		w, err := chase.NewWhy(f.G, f.Q, f.E, chase.DefaultConfig())
		if err != nil {
			t.Fatalf("NewWhy: %v", err)
		}
		return renderAnswer(w.AnsHeu(3))
	}
	first := run()
	for i := 1; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("AnsHeu output changed between identical runs:\nfirst:  %s\nrun %d: %s", first, i+1, got)
		}
	}
}

// TestAnsHeuDeterministicSynthetic repeats the check on generated
// Why-questions over a synthetic dataset, where the greedy tie-breaks
// and float sums have far more chances to diverge.
func TestAnsHeuDeterministicSynthetic(t *testing.T) {
	run := func() string {
		g, instances := genInstances(t, datagen.DatasetProducts, 1500, 3, 9)
		var b strings.Builder
		for i, inst := range instances {
			cfg := chase.DefaultConfig()
			cfg.MaxSteps = 800
			w, err := chase.NewWhy(g, inst.Q, inst.E, cfg)
			if err != nil {
				t.Fatalf("NewWhy: %v", err)
			}
			fmt.Fprintf(&b, "instance %d: %s\n", i, renderAnswer(w.AnsHeu(3)))
		}
		return b.String()
	}
	first := run()
	if second := run(); second != first {
		t.Fatalf("AnsHeu output changed between identical runs:\n--- first\n%s--- second\n%s", first, second)
	}
}
