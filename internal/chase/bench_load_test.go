package chase_test

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"wqe/internal/chase"
	"wqe/internal/datagen"
	"wqe/internal/distindex"
	"wqe/internal/graph"
	"wqe/internal/graphload"
	"wqe/internal/match"
	"wqe/internal/query"
)

// genWhyOn builds count Why-question instances over an existing graph
// using the given distance index (genInstances builds its own graph;
// this variant lets the load bench reuse the one it just generated).
func genWhyOn(t *testing.T, g *graph.Graph, idx distindex.Index, count int, seed int64) []*datagen.WhyInstance {
	t.Helper()
	m := match.NewMatcher(g, idx, nil)
	rng := rand.New(rand.NewSource(seed + 7))
	var out []*datagen.WhyInstance
	for tries := 0; len(out) < count && tries < count*20; tries++ {
		inst, ok := datagen.GenWhy(g, m, datagen.WhySpec{
			Query:      datagen.QuerySpec{Shape: query.TopoTree, Edges: 2, MaxPredicates: 2, PathEdgeProb: 0.2},
			DisturbOps: 3,
			MaxTuples:  5,
		}, rng)
		if ok {
			out = append(out, inst)
		}
	}
	if len(out) < count {
		t.Fatalf("only generated %d/%d instances", len(out), count)
	}
	return out
}

// askTranscript runs every job through the session and renders the
// answers into one comparable string.
func askTranscript(t *testing.T, sess *chase.Session, jobs []chase.BatchJob) string {
	t.Helper()
	results, _ := sess.AskAll(jobs, chase.BatchOptions{})
	var b strings.Builder
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job #%d failed: %v", i+1, r.Err)
		}
		b.WriteString(renderAnswer(r.Answer))
		b.WriteByte('\n')
	}
	return b.String()
}

// snapshotRoundTrip writes g (plus the index's labels) to the snapshot
// format and reads it back, returning the restored graph and index.
func snapshotRoundTrip(t *testing.T, dir string, g *graph.Graph, pll *distindex.PLL) (*graph.Graph, *distindex.PLL) {
	t.Helper()
	path := filepath.Join(dir, "g.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteSnapshot(f, pll.Marshal()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := graphload.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	restored, ok := res.Index.(*distindex.PLL)
	if !ok || !res.PLLRestored() {
		t.Fatalf("snapshot did not restore a PLL index: %+v", res)
	}
	return res.G, restored
}

// TestSnapshotRestoredAnswersByteIdentical is the acceptance bar for
// the binary snapshot path: a fixed Why-question workload answered
// over a snapshot-restored graph (with its restored PLL index) must be
// byte-identical to the same workload over the freshly built graph.
// This runs unconditionally — the 1M-node emitter below repeats it at
// scale when invoked.
func TestSnapshotRestoredAnswersByteIdentical(t *testing.T) {
	g, err := datagen.Generate(datagen.DatasetProducts, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	pll := distindex.NewPLL(g)
	instances := genWhyOn(t, g, pll, 3, 7)
	jobs := make([]chase.BatchJob, len(instances))
	for i, inst := range instances {
		jobs[i] = chase.BatchJob{Q: inst.Q, E: inst.E, Beam: 4, MaxSteps: 800}
	}
	cfg := chase.DefaultConfig()
	cfg.MaxSteps = 800

	fresh := askTranscript(t, chase.NewSessionWithIndex(g, cfg, pll), jobs)
	g2, pll2 := snapshotRoundTrip(t, t.TempDir(), g, pll)
	restored := askTranscript(t, chase.NewSessionWithIndex(g2, cfg, pll2), jobs)
	if fresh != restored {
		t.Fatalf("restored-session answers diverged from fresh-session answers:\n--- fresh\n%s--- restored\n%s", fresh, restored)
	}
	if fresh == "" {
		t.Fatal("empty transcript: workload exercised nothing")
	}
}

// loadBench is the BENCH_load.json schema: cold-start cost of the two
// on-disk formats at million-node scale — load wall time, bytes on
// disk, heap residency, PLL build vs restore — plus the answered
// workload proving the restored graph is answer-identical.
type loadBench struct {
	GeneratedBy string `json:"generated_by"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	Workload    string `json:"workload"`

	Nodes int `json:"nodes"`
	Edges int `json:"edges"`

	JSONBytes     int64   `json:"json_bytes"`
	SnapshotBytes int64   `json:"snapshot_bytes"`
	JSONLoadMS    float64 `json:"json_load_ms"`
	SnapLoadMS    float64 `json:"snapshot_load_ms"`
	LoadSpeedup   float64 `json:"load_speedup"`

	// Heap deltas (HeapAlloc after GC, minus the pre-load baseline):
	// the JSON figure is the graph alone; the snapshot figure includes
	// the restored PLL index.
	JSONHeapMB float64 `json:"json_heap_mb"`
	SnapHeapMB float64 `json:"snapshot_heap_mb"`

	PLLLabels    int     `json:"pll_labels"`
	PLLBuildMS   float64 `json:"pll_build_ms"`
	PLLRestoreMS float64 `json:"pll_restore_ms"`
	PLLSpeedup   float64 `json:"pll_restore_speedup"`

	AskJobs         int     `json:"ask_jobs"`
	AskMS           float64 `json:"ask_ms"`
	AskJobsPerSec   float64 `json:"ask_jobs_per_sec"`
	OutputIdentical bool    `json:"output_identical"`

	Note string `json:"note"`
}

// heapMB runs a GC and returns the live heap in MB.
func heapMB() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}

// TestEmitLoadBench measures snapshot vs JSON cold start at 1M+ nodes
// and writes BENCH_load.json. Gated behind WQE_LOAD_BENCH_JSON: set it
// to 1 to write the repo default, or to an explicit output path;
// WQE_LOAD_BENCH_NODES overrides the instance size. `make bench-load`
// wraps this. The <1/10-of-JSON load-time criterion and the
// byte-identical-answers criterion are asserted, not just recorded.
func TestEmitLoadBench(t *testing.T) {
	out := os.Getenv("WQE_LOAD_BENCH_JSON")
	if out == "" {
		t.Skip("set WQE_LOAD_BENCH_JSON=1 (or to an output path) to emit BENCH_load.json")
	}
	if out == "1" {
		out = filepath.Join("..", "..", "BENCH_load.json")
	}
	guardSingleCoreOverwrite(t, out)

	// Products yields ~0.9 nodes per requested node; 1,120,000 lands
	// the instance just above the million-node bar.
	nodes := 1_120_000
	if s := os.Getenv("WQE_LOAD_BENCH_NODES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad WQE_LOAD_BENCH_NODES=%q", s)
		}
		nodes = n
	}
	const nJobs = 3
	dir := t.TempDir()

	g, err := datagen.Generate(datagen.DatasetProducts, nodes, 7)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("generated %s", g)

	jsonPath := filepath.Join(dir, "g.json")
	jf, err := os.Create(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteJSON(jf); err != nil {
		t.Fatal(err)
	}
	if err := jf.Close(); err != nil {
		t.Fatal(err)
	}

	buildStart := time.Now()
	pll := distindex.NewPLLParallel(g, 0)
	buildDur := time.Since(buildStart)
	t.Logf("built PLL (%d labels) in %v", pll.LabelSize(), buildDur.Round(time.Millisecond))

	snapPath := filepath.Join(dir, "g.snap")
	sf, err := os.Create(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteSnapshot(sf, pll.Marshal()); err != nil {
		t.Fatal(err)
	}
	if err := sf.Close(); err != nil {
		t.Fatal(err)
	}
	jsonSize := fileSize(t, jsonPath)
	snapSize := fileSize(t, snapPath)

	// Cold loads. Heap deltas are measured GC-to-GC around each load so
	// the generator graph held above cancels out.
	base := heapMB()
	jsonStart := time.Now()
	jres, err := graphload.Open(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	jsonDur := time.Since(jsonStart)
	jsonHeap := heapMB() - base
	if jres.G.NumNodes() != g.NumNodes() || jres.G.NumEdges() != g.NumEdges() {
		t.Fatalf("JSON load shape %v, want %v", jres.G, g)
	}
	jres = nil // release before the snapshot measurement

	base = heapMB()
	snapStart := time.Now()
	sfh, err := os.Open(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := graph.ReadSnapshot(sfh)
	if err != nil {
		t.Fatal(err)
	}
	if err := sfh.Close(); err != nil {
		t.Fatal(err)
	}
	snapDur := time.Since(snapStart)
	restoreStart := time.Now()
	restoredPLL, err := distindex.UnmarshalPLL(snap.G, snap.Aux)
	if err != nil {
		t.Fatal(err)
	}
	restoreDur := time.Since(restoreStart)
	snapHeap := heapMB() - base
	if snap.G.NumNodes() != g.NumNodes() || snap.G.NumEdges() != g.NumEdges() {
		t.Fatalf("snapshot load shape %v, want %v", snap.G, g)
	}

	// The answered workload: identical jobs over the freshly built
	// session and the snapshot-restored one, compared byte for byte;
	// the restored run's wall time is the recorded throughput.
	instances := genWhyOn(t, g, pll, nJobs, 7)
	jobs := make([]chase.BatchJob, len(instances))
	for i, inst := range instances {
		jobs[i] = chase.BatchJob{Q: inst.Q, E: inst.E, Beam: 3, MaxSteps: 50}
	}
	cfg := chase.DefaultConfig()
	cfg.MaxSteps = 50
	fresh := askTranscript(t, chase.NewSessionWithIndex(g, cfg, pll), jobs)
	askStart := time.Now()
	restored := askTranscript(t, chase.NewSessionWithIndex(snap.G, cfg, restoredPLL), jobs)
	askDur := time.Since(askStart)

	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	b := loadBench{
		GeneratedBy: "WQE_LOAD_BENCH_JSON=1 go test ./internal/chase -run TestEmitLoadBench (make bench-load)",
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Workload: "products n=" + strconv.Itoa(nodes) + ": JSON vs binary-snapshot cold start, " +
			"PLL build vs embedded-label restore, then 3 Why-questions (AnsHeu(3), MaxSteps=50) " +
			"answered over the restored graph and compared byte-for-byte to the fresh one",
		Nodes:           g.NumNodes(),
		Edges:           g.NumEdges(),
		JSONBytes:       jsonSize,
		SnapshotBytes:   snapSize,
		JSONLoadMS:      ms(jsonDur),
		SnapLoadMS:      ms(snapDur),
		LoadSpeedup:     float64(jsonDur) / float64(snapDur),
		JSONHeapMB:      jsonHeap,
		SnapHeapMB:      snapHeap,
		PLLLabels:       pll.LabelSize(),
		PLLBuildMS:      ms(buildDur),
		PLLRestoreMS:    ms(restoreDur),
		PLLSpeedup:      float64(buildDur) / float64(restoreDur),
		AskJobs:         nJobs,
		AskMS:           ms(askDur),
		AskJobsPerSec:   float64(nJobs) / askDur.Seconds(),
		OutputIdentical: fresh == restored,
		Note: "snapshot load must be <1/10 of JSON load wall time (asserted); the snapshot " +
			"figure excludes PLL restore, which is recorded separately against the build it replaces",
	}
	if !b.OutputIdentical {
		t.Fatalf("restored-session answers diverged from fresh-session answers:\n--- fresh\n%s--- restored\n%s", fresh, restored)
	}
	if snapDur*10 >= jsonDur {
		t.Errorf("snapshot load %.1fms is not <1/10 of JSON load %.1fms", b.SnapLoadMS, b.JSONLoadMS)
	}

	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatalf("writing %s: %v", out, err)
	}
	t.Logf("wrote %s: load %.0fms->%.0fms (%.1fx, %d->%d bytes), PLL %.0fms->%.0fms (%.1fx), %d jobs in %.0fms",
		out, b.JSONLoadMS, b.SnapLoadMS, b.LoadSpeedup, b.JSONBytes, b.SnapshotBytes,
		b.PLLBuildMS, b.PLLRestoreMS, b.PLLSpeedup, nJobs, b.AskMS)
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
