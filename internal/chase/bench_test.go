package chase_test

import (
	"math/rand"
	"testing"

	"wqe/internal/chase"
	"wqe/internal/datagen"
	"wqe/internal/distindex"
	"wqe/internal/match"
	"wqe/internal/query"
)

// BenchmarkAnsWFig1 measures the full exact chase on the running
// example (the paper's Example 3.3 search).
func BenchmarkAnsWFig1(b *testing.B) {
	f := datagen.NewFig1()
	cfg := chase.DefaultConfig()
	cfg.Budget = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := chase.NewWhy(f.G, f.Q, f.E, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if a := w.AnsW(); a.Closeness != 0.5 {
			b.Fatalf("wrong answer: %v", a.Closeness)
		}
	}
}

// BenchmarkGenRelax measures picky relaxation generation (the NextOp
// hot path) on a synthetic instance.
func BenchmarkGenRelax(b *testing.B) {
	g, _ := datagen.Generate(datagen.DatasetKnowledge, 4000, 5)
	m := match.NewMatcher(g, distindex.NewBFS(g), nil)
	rng := rand.New(rand.NewSource(5))
	inst, ok := datagen.GenWhy(g, m, datagen.WhySpec{
		Query:      datagen.QuerySpec{Edges: 2, MaxPredicates: 2, Shape: query.TopoTree},
		DisturbOps: 3,
	}, rng)
	if !ok {
		b.Skip("no instance")
	}
	w, err := chase.NewWhy(g, inst.Q, inst.E, chase.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	res := w.Matcher.Match(inst.Q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.GenRelax(inst.Q, res, map[string]bool{}, 3)
	}
}

// BenchmarkGenRefine measures picky refinement generation.
func BenchmarkGenRefine(b *testing.B) {
	g, _ := datagen.Generate(datagen.DatasetKnowledge, 4000, 5)
	m := match.NewMatcher(g, distindex.NewBFS(g), nil)
	rng := rand.New(rand.NewSource(9))
	inst, ok := datagen.GenWhy(g, m, datagen.WhySpec{
		Query:      datagen.QuerySpec{Edges: 2, MaxPredicates: 2, Shape: query.TopoTree},
		DisturbOps: 2,
		RelaxOnly:  true,
	}, rng)
	if !ok {
		b.Skip("no instance")
	}
	w, err := chase.NewWhy(g, inst.Q, inst.E, chase.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	res := w.Matcher.Match(inst.Q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.GenRefine(inst.Q, res, map[string]bool{}, 3)
	}
}
