package chase

import (
	"sync/atomic"
	"time"

	"wqe/internal/anscache"
	"wqe/internal/distindex"
	"wqe/internal/exemplar"
	"wqe/internal/graph"
	"wqe/internal/match"
	"wqe/internal/par"
	"wqe/internal/query"
)

// Session supports the exploratory-search workflow of Fig 3: a user
// iterates query → response → exemplar → rewrite over one graph, and
// each iteration is a new Why-question. The session owns the expensive
// per-graph state — the distance oracle and the star-view cache — so
// consecutive Why-questions reuse materialized star tables, which is
// exactly where the §5.2 cache pays off ("minimizing system response
// time between search sessions").
//
// A Session is safe for concurrent use: any number of goroutines may
// call Ask/AskFast/Why/Run/AskAll on one Session. The shared pieces are
// each internally synchronized (the star-view cache) or immutable after
// construction (the distance oracle, the warmed graph), and every
// question compiled through the session draws its evaluation fan-out
// from the shared helper-token budget, so concurrent questions compose
// without oversubscribing the machine.
type Session struct {
	G      *graph.Graph
	Cfg    Config
	dist   distindex.Index
	cache  *match.Cache
	budget *par.Budget

	// ans is the answer memo (Config.AnswerCache): finished batch-job
	// results keyed by canonical question digest, with singleflight
	// coalescing. nil when disabled. See memo.go.
	ans *anscache.Cache[BatchResult]

	// questions/steps accumulate across every question the session ran
	// to completion (Ask, AskFast, Run, AskAll jobs, AskMultiFocus
	// foci). They feed serving-layer stats; ranking never reads them.
	questions atomic.Int64
	steps     atomic.Int64

	// clock feeds batch wall-clock statistics and submission-anchored
	// deadlines; tests substitute a fake to pin time plumbing.
	clock func() time.Time
}

// NewSession builds a session over g. The config's Budget/Theta/Lambda
// apply to every Ask unless overridden per call.
func NewSession(g *graph.Graph, cfg Config) *Session {
	return NewSessionWithIndex(g, cfg, nil)
}

// NewSessionWithIndex is NewSession with a caller-supplied distance
// oracle — typically one restored from a snapshot's embedded PLL
// labels, so cold start skips index construction entirely. idx must
// have been built over g (or a bit-identical restore of it); nil falls
// back to the automatic backend choice.
func NewSessionWithIndex(g *graph.Graph, cfg Config, idx distindex.Index) *Session {
	cfg = cfg.withDefaults()
	if idx == nil {
		idx = distindex.Auto(g)
	}
	s := &Session{
		G:      g,
		Cfg:    cfg,
		dist:   idx,
		budget: par.SharedBudget(),
		//lint:ignore detsource injectable-clock default; only stats and anytime deadline cutoffs read it, never ranking
		clock: time.Now,
	}
	if cfg.Cache {
		s.cache = match.NewCacheWeighted(cfg.CacheCap, 0.95, cfg.CacheShards, cfg.CacheWeight)
	}
	if cfg.AnswerCache {
		s.ans = anscache.New[BatchResult](cfg.AnswerCacheCap, 0)
	}
	return s
}

// Why compiles one Why-question against the session's shared state: the
// prebuilt distance oracle, the shared star-view cache, and the helper
// budget.
func (s *Session) Why(q *query.Query, e *exemplar.Exemplar) (*Why, error) {
	w, err := newWhyWith(s.G, q, e, s.Cfg, s.dist, s.cache, s.budget)
	if err != nil {
		return nil, err
	}
	w.clock = s.clock
	return w, nil
}

// Ask runs one search session: evaluate the query, and when an exemplar
// is given, rewrite toward it with AnsW. The returned Answer's Diff
// carries the lineage to present to the user.
func (s *Session) Ask(q *query.Query, e *exemplar.Exemplar) (Answer, error) {
	w, err := s.Why(q, e)
	if err != nil {
		return Answer{}, err
	}
	a := w.AnsW()
	s.countRun(w)
	return a, nil
}

// AskFast is Ask with the beam heuristic, for interactive response
// times.
func (s *Session) AskFast(q *query.Query, e *exemplar.Exemplar, beam int) (Answer, error) {
	w, err := s.Why(q, e)
	if err != nil {
		return Answer{}, err
	}
	a := w.AnsHeu(beam)
	s.countRun(w)
	return a, nil
}

// countRun folds one completed question's effort into the session's
// cumulative counters.
func (s *Session) countRun(w *Why) {
	s.questions.Add(1)
	s.steps.Add(int64(w.Stats.Steps))
}

// CacheStats reports the session cache's cumulative hits and misses.
// Counters exposes the full per-counter set.
func (s *Session) CacheStats() (hits, misses int64) {
	if s.cache == nil {
		return 0, 0
	}
	return s.cache.Stats()
}

// SessionCounters is the session's cumulative effort and cache counter
// snapshot — the payload a serving layer's /stats endpoint reports per
// resident graph. Everything is observability-only: ranking never reads
// any of it.
type SessionCounters struct {
	// Questions counts Why-questions the session ran to completion;
	// Steps totals their simulated Q-Chase steps (query evaluations).
	Questions int64 `json:"questions"`
	Steps     int64 `json:"steps"`
	// Cache is the shared star-view cache's full counter set (zero
	// values when the session runs uncached).
	Cache match.CacheCounters `json:"cache"`
	// AnswerCache is the answer memo's counter set (zero values when
	// Config.AnswerCache is off). Hits+Misses+Coalesced equals the
	// number of memo-eligible jobs served; Questions above counts only
	// the chases actually executed (the misses).
	AnswerCache anscache.Counters `json:"answer_cache"`
}

// Counters snapshots the session's cumulative counters lock-free.
func (s *Session) Counters() SessionCounters {
	c := SessionCounters{
		Questions: s.questions.Load(),
		Steps:     s.steps.Load(),
	}
	if s.cache != nil {
		c.Cache = s.cache.Counters()
	}
	if s.ans != nil {
		c.AnswerCache = s.ans.Counters()
	}
	return c
}

// MultiFocusAnswer pairs one focus node with its rewrite.
type MultiFocusAnswer struct {
	Focus  query.NodeID
	Answer Answer
}

// AskMultiFocus answers a Why-question whose query designates several
// focus nodes (Appendix B "Queries with multiple focus nodes"): each
// focus u_i is chased independently against its exemplar E_i — the
// union exemplar keeps rep(E, V) unchanged per the appendix — and the
// per-focus rewrites are returned together. foci and exemplars are
// parallel slices.
//
// Every focus compiles through the session's shared distance oracle,
// star-view cache, and helper budget: the foci share star tables the
// same way consecutive session questions do, instead of rebuilding the
// oracle once per focus as the old standalone path did.
func (s *Session) AskMultiFocus(q *query.Query, foci []query.NodeID,
	exemplars []*exemplar.Exemplar) ([]MultiFocusAnswer, error) {

	if len(foci) != len(exemplars) {
		return nil, errFociMismatch
	}
	out := make([]MultiFocusAnswer, 0, len(foci))
	for i, u := range foci {
		qi := q.Clone()
		qi.Focus = u
		w, err := s.Why(qi, exemplars[i])
		if err != nil {
			return nil, err
		}
		a := w.AnsW()
		s.countRun(w)
		out = append(out, MultiFocusAnswer{Focus: u, Answer: a})
	}
	return out, nil
}

// AnsWMultiFocus answers a multi-focus Why-question without an existing
// session by delegating to a throwaway one.
//
// Deprecated: use Session.AskMultiFocus. The standalone path used to
// rebuild the distance oracle once per focus and bypass the star-view
// cache and helper budget entirely; routing through a session fixes
// that, and callers with more than one question should hold the session
// to keep its cache warm.
func AnsWMultiFocus(g *graph.Graph, q *query.Query, foci []query.NodeID,
	exemplars []*exemplar.Exemplar, cfg Config) ([]MultiFocusAnswer, error) {

	return NewSession(g, cfg).AskMultiFocus(q, foci, exemplars)
}

type chaseError string

func (e chaseError) Error() string { return string(e) }

const errFociMismatch = chaseError("chase: foci and exemplars must be parallel slices")

const errNilJob = chaseError("chase: batch job needs both a query and an exemplar")
