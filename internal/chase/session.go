package chase

import (
	"time"

	"wqe/internal/distindex"
	"wqe/internal/exemplar"
	"wqe/internal/graph"
	"wqe/internal/match"
	"wqe/internal/par"
	"wqe/internal/query"
)

// Session supports the exploratory-search workflow of Fig 3: a user
// iterates query → response → exemplar → rewrite over one graph, and
// each iteration is a new Why-question. The session owns the expensive
// per-graph state — the distance oracle and the star-view cache — so
// consecutive Why-questions reuse materialized star tables, which is
// exactly where the §5.2 cache pays off ("minimizing system response
// time between search sessions").
//
// A Session is safe for concurrent use: any number of goroutines may
// call Ask/AskFast/Why/AskAll on one Session. The shared pieces are
// each internally synchronized (the star-view cache) or immutable after
// construction (the distance oracle, the warmed graph), and every
// question compiled through the session draws its evaluation fan-out
// from the shared helper-token budget, so concurrent questions compose
// without oversubscribing the machine.
type Session struct {
	G      *graph.Graph
	Cfg    Config
	dist   distindex.Index
	cache  *match.Cache
	budget *par.Budget

	// clock feeds batch wall-clock statistics only (never ranking);
	// tests substitute a fake to pin elapsed-time plumbing.
	clock func() time.Time
}

// NewSession builds a session over g. The config's Budget/Theta/Lambda
// apply to every Ask unless overridden per call.
func NewSession(g *graph.Graph, cfg Config) *Session {
	cfg = cfg.withDefaults()
	s := &Session{
		G:      g,
		Cfg:    cfg,
		dist:   distindex.Auto(g),
		budget: par.SharedBudget(),
		//lint:ignore detsource injectable-clock default; only BatchStats.Elapsed reads it, never ranking
		clock: time.Now,
	}
	if cfg.Cache {
		s.cache = match.NewCacheSharded(cfg.CacheCap, 0.95, cfg.CacheShards)
	}
	return s
}

// Why compiles one Why-question against the session's shared state: the
// prebuilt distance oracle, the shared star-view cache, and the helper
// budget.
func (s *Session) Why(q *query.Query, e *exemplar.Exemplar) (*Why, error) {
	return newWhyWith(s.G, q, e, s.Cfg, s.dist, s.cache, s.budget)
}

// Ask runs one search session: evaluate the query, and when an exemplar
// is given, rewrite toward it with AnsW. The returned Answer's Diff
// carries the lineage to present to the user.
func (s *Session) Ask(q *query.Query, e *exemplar.Exemplar) (Answer, error) {
	w, err := s.Why(q, e)
	if err != nil {
		return Answer{}, err
	}
	return w.AnsW(), nil
}

// AskFast is Ask with the beam heuristic, for interactive response
// times.
func (s *Session) AskFast(q *query.Query, e *exemplar.Exemplar, beam int) (Answer, error) {
	w, err := s.Why(q, e)
	if err != nil {
		return Answer{}, err
	}
	return w.AnsHeu(beam), nil
}

// CacheStats reports the session cache's cumulative hits and misses.
func (s *Session) CacheStats() (hits, misses int64) {
	if s.cache == nil {
		return 0, 0
	}
	return s.cache.Stats()
}

// MultiFocusAnswer pairs one focus node with its rewrite.
type MultiFocusAnswer struct {
	Focus  query.NodeID
	Answer Answer
}

// AnsWMultiFocus answers a Why-question whose query designates several
// focus nodes (Appendix B "Queries with multiple focus nodes"): each
// focus u_i is chased independently against its exemplar E_i — the
// union exemplar keeps rep(E, V) unchanged per the appendix — and the
// per-focus rewrites are returned together. foci and exemplars are
// parallel slices.
func AnsWMultiFocus(g *graph.Graph, q *query.Query, foci []query.NodeID,
	exemplars []*exemplar.Exemplar, cfg Config) ([]MultiFocusAnswer, error) {

	if len(foci) != len(exemplars) {
		return nil, errFociMismatch
	}
	out := make([]MultiFocusAnswer, 0, len(foci))
	for i, u := range foci {
		qi := q.Clone()
		qi.Focus = u
		w, err := NewWhy(g, qi, exemplars[i], cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, MultiFocusAnswer{Focus: u, Answer: w.AnsW()})
	}
	return out, nil
}

type chaseError string

func (e chaseError) Error() string { return string(e) }

const errFociMismatch = chaseError("chase: foci and exemplars must be parallel slices")

const errNilJob = chaseError("chase: batch job needs both a query and an exemplar")
