package chase

import (
	"time"

	"wqe/internal/exemplar"
	"wqe/internal/par"
	"wqe/internal/query"
)

// BatchJob is one Why-question in a cross-question batch: the (query,
// exemplar) pair plus optional per-job overrides of the session's
// search limits.
type BatchJob struct {
	Q *query.Query
	E *exemplar.Exemplar

	// Beam selects the algorithm: 0 runs the exact anytime AnsW, any
	// positive value runs the AnsHeu beam search with that width.
	Beam int

	// MaxSteps, when positive, overrides the session config's per-job
	// step budget.
	MaxSteps int

	// TimeLimit, when positive, overrides the session config's per-job
	// deadline. Deadlines are anytime cutoffs: the job still returns its
	// best rewrite so far.
	TimeLimit time.Duration
}

// BatchResult is one job's outcome, reported in submission order.
// Answer, Steps, and States are deterministic — byte-identical to
// running the same job alone, for any worker count — while Elapsed is
// wall-clock and carries no determinism contract.
type BatchResult struct {
	Answer  Answer
	Err     error
	Steps   int
	States  int
	Elapsed time.Duration
}

// BatchStats aggregates one AskAll call.
type BatchStats struct {
	Jobs    int   // jobs submitted
	Failed  int   // jobs that returned an error
	Workers int   // resolved outer worker count
	Steps   int64 // total simulated Q-Chase steps across all jobs

	// CacheHits/CacheMisses are the shared star-view cache's deltas over
	// the batch. Under concurrent jobs the split between two jobs racing
	// for the same star is timing-dependent, so these are reported only
	// in aggregate — per-job cache numbers would be nondeterministic.
	CacheHits, CacheMisses int64

	Elapsed time.Duration // wall-clock of the whole batch
}

// BatchOptions tunes AskAll's outer scheduling.
type BatchOptions struct {
	// Workers bounds the cross-question fan-out: how many jobs may be in
	// flight at once. 0 means one per logical CPU; 1 runs the jobs
	// strictly in submission order. Inner per-question parallelism
	// (Config.Workers) composes with this through the shared token
	// budget, so Workers×Config.Workers never oversubscribes the
	// machine.
	Workers int
}

// AskAll answers a batch of Why-questions concurrently over the
// session's shared graph, star-view cache, and distance oracle.
//
// Jobs are claimed dynamically, but results commit into submission-
// order slots: results[i] is jobs[i]'s outcome no matter which worker
// ran it or when it finished. Each job's Answer/Steps/States are
// byte-identical to a sequential loop over the same jobs for any worker
// count — a job's search never reads another job's results, and the
// star-view cache can only change which builds are shared, never what a
// star table contains. One failing job does not disturb the others; its
// error is reported in its slot and counted in BatchStats.Failed.
func (s *Session) AskAll(jobs []BatchJob, opt BatchOptions) ([]BatchResult, BatchStats) {
	start := s.clock()
	var h0, m0 int64
	if s.cache != nil {
		h0, m0 = s.cache.Stats()
	}

	results := make([]BatchResult, len(jobs))
	workers := par.Workers(opt.Workers)
	par.ForEachIn(s.budget, workers, len(jobs), func(i int) {
		results[i] = s.runJob(jobs[i])
	})

	stats := BatchStats{Jobs: len(jobs), Workers: workers}
	for i := range results {
		if results[i].Err != nil {
			stats.Failed++
		}
		stats.Steps += int64(results[i].Steps)
	}
	if s.cache != nil {
		h1, m1 := s.cache.Stats()
		stats.CacheHits, stats.CacheMisses = h1-h0, m1-m0
	}
	stats.Elapsed = s.clock().Sub(start)
	return results, stats
}

// runJob compiles and runs one batch job against the session's shared
// state.
func (s *Session) runJob(j BatchJob) BatchResult {
	if j.Q == nil || j.E == nil {
		return BatchResult{Err: errNilJob}
	}
	cfg := s.Cfg
	if j.MaxSteps > 0 {
		cfg.MaxSteps = j.MaxSteps
	}
	if j.TimeLimit > 0 {
		cfg.TimeLimit = j.TimeLimit
	}
	w, err := newWhyWith(s.G, j.Q, j.E, cfg, s.dist, s.cache, s.budget)
	if err != nil {
		return BatchResult{Err: err}
	}
	var a Answer
	if j.Beam > 0 {
		a = w.AnsHeu(j.Beam)
	} else {
		a = w.AnsW()
	}
	return BatchResult{
		Answer:  a,
		Steps:   w.Stats.Steps,
		States:  w.Stats.States,
		Elapsed: w.Stats.Elapsed,
	}
}
