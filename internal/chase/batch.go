package chase

import (
	"time"

	"wqe/internal/exemplar"
	"wqe/internal/par"
	"wqe/internal/query"
)

// BatchJob is one Why-question in a cross-question batch: the (query,
// exemplar) pair plus optional per-job overrides of the session's
// search limits.
type BatchJob struct {
	Q *query.Query
	E *exemplar.Exemplar

	// Algo selects the algorithm: "" or "answ" runs the exact anytime
	// AnsW (unless Beam > 0, which keeps the historical meaning of a
	// bare Beam field and runs AnsHeu), "heu" runs the beam search,
	// "whymany" runs ApxWhyM, "whyempty" runs AnsWE, and "fmansw" runs
	// the mining baseline. Unknown values fail the job in its slot.
	Algo string

	// Beam selects the beam width for "heu" (default 3). With Algo
	// empty, any positive Beam runs AnsHeu — the pre-Algo contract.
	Beam int

	// MaxSteps, when positive, overrides the session config's per-job
	// step budget.
	MaxSteps int

	// TimeLimit, when positive, overrides the session config's per-job
	// deadline. Deadlines are anytime cutoffs: the job still returns its
	// best rewrite so far. AskAll anchors the limit at *submission* —
	// the moment the batch is handed over — so time the job spends
	// queued behind other jobs counts against it (the queue-wait
	// bugfix); an explicit Deadline below wins over this.
	TimeLimit time.Duration

	// Deadline, when non-zero, is this job's absolute cutoff on the
	// session clock. It wins over TimeLimit. Servers set it from the
	// request's submission time plus the request budget.
	Deadline time.Time

	// Cancel, when non-nil, stops this job's search when closed (the
	// job reports ErrCancelled if it never started, or its best-so-far
	// answer if it was already running). It overrides any batch-level
	// cancel signal for this job.
	Cancel <-chan struct{}
}

// BatchResult is one job's outcome, reported in submission order.
// Answer, Steps, and States are deterministic — byte-identical to
// running the same job alone, for any worker count — while Elapsed is
// wall-clock and carries no determinism contract.
type BatchResult struct {
	Answer  Answer
	Err     error
	Steps   int
	States  int
	Elapsed time.Duration
}

// BatchStats aggregates one AskAll call.
type BatchStats struct {
	Jobs      int   // jobs submitted
	Failed    int   // jobs that returned an error
	Cancelled int   // jobs that never started because the batch was cancelled
	Workers   int   // resolved outer worker count
	Steps     int64 // total simulated Q-Chase steps across all jobs
	States    int64 // total frontier states pushed across all jobs

	// CacheHits/CacheMisses are the shared star-view cache's deltas over
	// the batch. Under concurrent jobs the split between two jobs racing
	// for the same star is timing-dependent, so these are reported only
	// in aggregate — per-job cache numbers would be nondeterministic.
	CacheHits, CacheMisses int64

	Elapsed time.Duration // wall-clock of the whole batch
}

// BatchOptions tunes AskAll's outer scheduling.
type BatchOptions struct {
	// Workers bounds the cross-question fan-out: how many jobs may be in
	// flight at once. 0 means one per logical CPU; 1 runs the jobs
	// strictly in submission order. Inner per-question parallelism
	// (Config.Workers) composes with this through the shared token
	// budget, so Workers×Config.Workers never oversubscribes the
	// machine.
	Workers int

	// Cancel, when non-nil, cancels the whole batch when closed: jobs
	// that have not started yet fail fast with ErrCancelled in their
	// slots, and running jobs stop within one claim iteration and
	// return their best rewrite so far (releasing any helper-budget
	// tokens they held). A per-job BatchJob.Cancel overrides this for
	// that job's running phase.
	Cancel <-chan struct{}
}

// ErrCancelled marks a batch job that was cancelled before its search
// started. A job cancelled *mid-search* is not an error: it returns its
// best-so-far rewrite like any other anytime cutoff.
const ErrCancelled = chaseError("chase: job cancelled before start")

// AskAll answers a batch of Why-questions concurrently over the
// session's shared graph, star-view cache, and distance oracle.
//
// Jobs are claimed dynamically, but results commit into submission-
// order slots: results[i] is jobs[i]'s outcome no matter which worker
// ran it or when it finished. Each job's Answer/Steps/States are
// byte-identical to a sequential loop over the same jobs for any worker
// count — a job's search never reads another job's results, and the
// star-view cache can only change which builds are shared, never what a
// star table contains. One failing job does not disturb the others; its
// error is reported in its slot and counted in BatchStats.Failed.
//
// Per-job TimeLimits anchor at the batch's submission instant (the
// AskAll call), not at each job's own start: a job that waits behind
// others in the slot queue pays for the wait. Jobs that need a shared
// wall-clock budget across the whole batch set Deadline instead.
func (s *Session) AskAll(jobs []BatchJob, opt BatchOptions) ([]BatchResult, BatchStats) {
	submit := s.clock()
	var h0, m0 int64
	if s.cache != nil {
		h0, m0 = s.cache.Stats()
	}

	results := make([]BatchResult, len(jobs))
	workers := par.Workers(opt.Workers)
	par.ForEachIn(s.budget, workers, len(jobs), func(i int) {
		if cancelledJob(jobs[i], opt.Cancel) {
			results[i] = BatchResult{Err: ErrCancelled}
			return
		}
		results[i] = s.runMemo(jobs[i], submit, opt.Cancel)
	})

	stats := BatchStats{Jobs: len(jobs), Workers: workers}
	for i := range results {
		switch results[i].Err {
		case nil:
		case ErrCancelled:
			stats.Cancelled++
			stats.Failed++
		default:
			stats.Failed++
		}
		stats.Steps += int64(results[i].Steps)
		stats.States += int64(results[i].States)
	}
	if s.cache != nil {
		h1, m1 := s.cache.Stats()
		stats.CacheHits, stats.CacheMisses = h1-h0, m1-m0
	}
	stats.Elapsed = s.clock().Sub(submit)
	return results, stats
}

// Run answers one job immediately against the session's shared state,
// with the job's cancel signal and deadline applied and its TimeLimit
// anchored now — the single-question entry point a server calls per
// request. Queue wait before this call is the caller's to account for
// (set Deadline at admission). With Config.AnswerCache on, identical
// jobs are served from the answer memo (see memo.go): hits skip the
// chase entirely and concurrent identical requests coalesce onto one.
func (s *Session) Run(j BatchJob) BatchResult {
	return s.runMemo(j, s.clock(), nil)
}

// cancelled polls a cancel channel without blocking; nil never cancels.
func cancelled(ch <-chan struct{}) bool {
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// cancelledJob resolves whether a not-yet-started job is cancelled: its
// own Cancel wins when set, otherwise the batch-level signal applies.
func cancelledJob(j BatchJob, batch <-chan struct{}) bool {
	if j.Cancel != nil {
		return cancelled(j.Cancel)
	}
	return cancelled(batch)
}

// runJob compiles and runs one batch job against the session's shared
// state. submit is the instant the job was handed over (the AskAll
// call or the server's admission), anchoring relative time limits so
// queue wait is charged to the job. detached strips every wall-clock
// cutoff and cancel signal (MaxSteps still bounds the search) — the
// answer memo runs its singleflight chases detached so the stored
// answer is a pure function of the question, not of whichever waiter's
// deadline happened to own the flight.
func (s *Session) runJob(j BatchJob, submit time.Time, batchCancel <-chan struct{}, detached bool) BatchResult {
	if j.Q == nil || j.E == nil {
		return BatchResult{Err: errNilJob}
	}
	cfg := s.Cfg
	if j.MaxSteps > 0 {
		cfg.MaxSteps = j.MaxSteps
	}
	if detached {
		cfg.TimeLimit = 0
		cfg.Deadline = time.Time{}
		cfg.Cancel = nil
	} else {
		if j.TimeLimit > 0 {
			cfg.TimeLimit = j.TimeLimit
		}
		// Convert the relative limit into an absolute deadline anchored
		// at submission. Why.deadline gives Config.Deadline precedence
		// over TimeLimit, so a queued job's wait is no longer free time.
		switch {
		case !j.Deadline.IsZero():
			cfg.Deadline = j.Deadline
		case cfg.TimeLimit > 0:
			cfg.Deadline = submit.Add(cfg.TimeLimit)
		}
		if j.Cancel != nil {
			cfg.Cancel = j.Cancel
		} else if batchCancel != nil {
			cfg.Cancel = batchCancel
		}
	}
	w, err := newWhyWith(s.G, j.Q, j.E, cfg, s.dist, s.cache, s.budget)
	if err != nil {
		return BatchResult{Err: err}
	}
	// Deadlines and elapsed stats must read the same clock the session
	// anchored submit on, or fake-clock tests (and any future clock
	// injection) would compare instants from two different timelines.
	w.clock = s.clock
	var a Answer
	switch {
	case j.Algo == "" && j.Beam > 0, j.Algo == "heu":
		beam := j.Beam
		if beam < 1 {
			beam = 3
		}
		a = w.AnsHeu(beam)
	case j.Algo == "", j.Algo == "answ":
		a = w.AnsW()
	case j.Algo == "whymany":
		a = w.ApxWhyM()
	case j.Algo == "whyempty":
		a = w.AnsWE()
	case j.Algo == "fmansw":
		a = w.FMAnsW()
	default:
		return BatchResult{Err: chaseError("chase: unknown batch algo " + j.Algo)}
	}
	s.questions.Add(1)
	s.steps.Add(int64(w.Stats.Steps))
	return BatchResult{
		Answer:  a,
		Steps:   w.Stats.Steps,
		States:  w.Stats.States,
		Elapsed: w.Stats.Elapsed,
	}
}
