package chase_test

import (
	"strings"
	"sync"
	"testing"

	"wqe/internal/chase"
	"wqe/internal/datagen"
)

// parAlgos are the algorithms with parallel evaluation paths, each
// rendered to a byte-comparable transcript.
var parAlgos = []struct {
	name string
	run  func(w *chase.Why) string
}{
	{"AnsHeu", func(w *chase.Why) string { return renderAnswer(w.AnsHeu(3)) }},
	{"AnsHeuB", func(w *chase.Why) string { return renderAnswer(w.AnsHeuB(3)) }},
	{"AnsW", func(w *chase.Why) string { return renderAnswer(w.AnsW()) }},
	{"TopK3", func(w *chase.Why) string {
		var b strings.Builder
		for _, a := range w.TopK(3) {
			b.WriteString(renderAnswer(a))
			b.WriteByte('\n')
		}
		return b.String()
	}},
	{"ApxWhyM", func(w *chase.Why) string { return renderAnswer(w.ApxWhyM()) }},
}

// TestParallelMatchesSequentialFig1 is the core determinism contract of
// the parallel evaluation engine: for every algorithm, any worker count
// must produce byte-identical output — and an identical step count — to
// the fully sequential run, because candidates are claimed and committed
// in sequential order and only the evaluations in between run
// concurrently.
func TestParallelMatchesSequentialFig1(t *testing.T) {
	for _, al := range parAlgos {
		al := al
		t.Run(al.name, func(t *testing.T) {
			var base string
			var baseSteps int
			for _, workers := range []int{1, 2, 4, 0} {
				f := datagen.NewFig1()
				cfg := chase.DefaultConfig()
				cfg.Workers = workers
				w, err := chase.NewWhy(f.G, f.Q, f.E, cfg)
				if err != nil {
					t.Fatalf("NewWhy: %v", err)
				}
				got := al.run(w)
				if workers == 1 {
					base, baseSteps = got, w.Stats.Steps
					continue
				}
				if got != base {
					t.Errorf("workers=%d output diverged from sequential:\nseq: %s\npar: %s",
						workers, base, got)
				}
				if w.Stats.Steps != baseSteps {
					t.Errorf("workers=%d step schedule diverged: %d steps, sequential %d",
						workers, w.Stats.Steps, baseSteps)
				}
			}
		})
	}
}

// TestParallelMatchesSequentialSynthetic repeats the byte-identity check
// on generated Why-questions over a synthetic dataset, where operator
// pools are larger and plateaus give speculative evaluation far more
// opportunities to misorder work if the commit discipline were wrong.
func TestParallelMatchesSequentialSynthetic(t *testing.T) {
	run := func(workers int) string {
		g, instances := genInstances(t, datagen.DatasetProducts, 1500, 3, 9)
		var b strings.Builder
		for _, inst := range instances {
			cfg := chase.DefaultConfig()
			cfg.MaxSteps = 800
			cfg.Workers = workers
			w, err := chase.NewWhy(g, inst.Q, inst.E, cfg)
			if err != nil {
				t.Fatalf("NewWhy: %v", err)
			}
			b.WriteString(renderAnswer(w.AnsHeu(3)))
			b.WriteByte('\n')
			b.WriteString(renderAnswer(w.AnsW()))
			b.WriteByte('\n')
			b.WriteString(renderAnswer(w.ApxWhyM()))
			b.WriteByte('\n')
		}
		return b.String()
	}
	seq := run(1)
	if par := run(4); par != seq {
		t.Fatalf("parallel output diverged from sequential:\n--- workers=1\n%s--- workers=4\n%s", seq, par)
	}
}

// TestParallelRaceStress drives every parallel path with a wide worker
// pool; under -race it dynamically checks the engine's sharing contract
// (read-only Why state, atomic step counter, lock-guarded cache with
// singleflight builds).
func TestParallelRaceStress(t *testing.T) {
	f := datagen.NewFig1()
	cfg := chase.DefaultConfig()
	cfg.Workers = 8
	w, err := chase.NewWhy(f.G, f.Q, f.E, cfg)
	if err != nil {
		t.Fatalf("NewWhy: %v", err)
	}
	w.AnsHeu(4)
	w.AnsW()
	w.ApxWhyM()
}

// TestConcurrentWhyQuestionsSharedGraph runs independent parallel
// Why-questions over one shared graph — the multi-tenant pattern
// NewWhy's cache-warming exists for. Meaningful under -race.
func TestConcurrentWhyQuestionsSharedGraph(t *testing.T) {
	f := datagen.NewFig1()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := chase.DefaultConfig()
			cfg.Workers = 4
			w, err := chase.NewWhy(f.G, f.Q, f.E, cfg)
			if err != nil {
				t.Errorf("NewWhy: %v", err)
				return
			}
			w.AnsHeu(3)
		}()
	}
	wg.Wait()
}
