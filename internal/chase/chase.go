// Package chase implements the paper's primary contribution: Q-Chase
// (Section 4), a Chase process over pattern queries guided by exemplar
// constraints, and the Q-Chase-based algorithms of Sections 5–6:
//
//   - AnsW — anytime exact best-first search with backtracking, picky
//     operator generation, star-view caching, and cl⁺ pruning (Fig 5);
//   - AnsHeu / AnsHeuB — tunable beam-search heuristics (§5.5);
//   - ApxWhyM — fixed-parameter approximation for Why-Many (§6.1);
//   - AnsWE — PTIME removal-only algorithm for Why-Empty (§6.1);
//   - FMAnsW — the frequent-pattern-mining comparison baseline (§7);
//   - top-k query suggestion (§6.2) and differential-table lineage.
package chase

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"wqe/internal/distindex"
	"wqe/internal/exemplar"
	"wqe/internal/graph"
	"wqe/internal/match"
	"wqe/internal/ops"
	"wqe/internal/par"
	"wqe/internal/query"
)

// Relevance classifies a focus candidate w.r.t. an exemplar and a query
// answer (the RM/IM/RC/IC table of §2.2).
type Relevance uint8

// Relevance classes.
const (
	RM Relevance = iota // relevant match:   v ∈ Q(G) ∧ v ∈ rep(E,V)
	IM                  // irrelevant match: v ∈ Q(G) ∧ v ∉ rep(E,V)
	RC                  // relevant cand.:   v ∉ Q(G) ∧ v ∈ rep(E,V)
	IC                  // irrelevant cand.: v ∉ Q(G) ∧ v ∉ rep(E,V)
)

// String renders the relevance class.
func (r Relevance) String() string {
	return [...]string{"RM", "IM", "RC", "IC"}[r]
}

// Config tunes the Q-Chase algorithms.
type Config struct {
	// Budget is the operator cost bound B. Default 3 (the paper's
	// default experimental budget).
	Budget float64
	// MaxBound is b_m, the cap on relaxed edge bounds. Default 3.
	MaxBound int
	// Theta and Lambda configure the exemplar evaluator (vsim threshold
	// and irrelevant-match penalty). Defaults 1 and 1.
	Theta, Lambda float64
	// Cache enables the star-view cache (§5.2). CacheCap bounds it.
	Cache    bool
	CacheCap int
	// CacheShards sets the star-view cache's lock-stripe count; keys are
	// hashed over the shards so concurrent workers rarely share a mutex.
	// 0 (the default) auto-sizes to match.DefaultShards(); other values
	// round up to a power of two, and 1 gives the un-striped cache.
	// Output is byte-identical for every setting — sharding only changes
	// which star tables get rebuilt, never their contents.
	CacheShards int
	// CacheWeight, when positive, is the star-view cache's total weight
	// budget in star-table cells (match.StarTable.Size): entries heavier
	// than half a shard's share are never admitted, and admitting a
	// heavy table evicts least-hit entries only until the budget fits,
	// so one huge star view cannot flush a shard's working set. 0 (the
	// default) keeps pure entry-count capacity. Like CacheShards, the
	// setting only changes which tables stay resident, never their
	// contents, so output stays byte-identical.
	CacheWeight int
	// AnswerCache enables the session-level answer memo with request
	// coalescing: batch jobs (Session.Run / AskAll) are keyed by a
	// canonical digest of (graph identity, algo, query, exemplar, search
	// options — deadlines and cancel signals excluded), identical
	// concurrent requests share exactly one chase, and finished answers
	// stay resident for later identical requests. AnswerCacheCap bounds
	// the number of resident answers (default 4096 when enabled).
	// Off by default: a memoized job returns the complete answer the
	// unbounded-deadline chase produced, which a deadline-limited caller
	// may observe as *more* complete than an uncached run — servers opt
	// in for throughput, libraries keep exact per-call semantics.
	AnswerCache    bool
	AnswerCacheCap int
	// Prune enables the cl⁺ pruning strategies of Lemma 5.5.
	Prune bool
	// MaxOpsPerClass caps how many picky operators one state generates
	// per operator class. 0 means the default (64).
	MaxOpsPerClass int
	// MaxAnalysis caps how many RC/RM/IM nodes the picky generators run
	// per-node neighborhood analysis on (highest closeness first);
	// pickiness scores are then relative to the sample. 0 means the
	// default (120).
	MaxAnalysis int
	// MaxSteps caps the number of simulated Q-Chase steps (query
	// evaluations); the anytime algorithms return the best rewrite found
	// so far when exhausted. 0 means the default (100000).
	MaxSteps int
	// TimeLimit, when positive, stops the search after the wall-clock
	// limit and returns the best rewrite so far (anytime behavior).
	TimeLimit time.Duration
	// Deadline, when non-zero, is an absolute cutoff (read against the
	// question's clock) that wins over TimeLimit. TimeLimit anchors at
	// algorithm start, so time a job spends queued — in AskAll slots or
	// a server's admission queue — is free; callers that meter the whole
	// request convert their limit to a Deadline at submission time
	// instead (Session.AskAll and cmd/wqe-serve both do).
	Deadline time.Time
	// Cancel, when non-nil, stops the search as soon as the channel is
	// closed: the anytime algorithms return the best rewrite found so
	// far, exactly as a deadline expiry would. The signal is polled once
	// per claim iteration (never inside an evaluation), so a cancelled
	// chase stops within one claim step, its evaluation workers join,
	// and any helper-budget tokens it held are released. Servers wire a
	// disconnected client's done-channel here.
	Cancel <-chan struct{}
	// Workers bounds the evaluation worker pool the parallel algorithms
	// fan rewrite evaluations out over: 0 (the default) uses one worker
	// per logical CPU, 1 forces fully sequential evaluation. Output is
	// byte-identical for every setting — candidates are claimed and
	// committed in sequential order; only the Match calls in between run
	// concurrently (see DESIGN.md "Concurrency model").
	Workers int
	// OnImprove, when non-nil, is invoked every time the best rewrite
	// improves — the paper's "return Q* upon request" anytime hook.
	OnImprove func(best Answer)
	// Seed drives the randomized baseline AnsHeuB.
	Seed int64
	// DistBackend forces the distance oracle: "bfs", "pll", or ""
	// (auto). Used by the ablation benchmarks.
	DistBackend string
}

// DefaultConfig mirrors the paper's experimental defaults.
func DefaultConfig() Config {
	return Config{
		Budget:   3,
		MaxBound: 3,
		Theta:    1,
		Lambda:   1,
		Cache:    true,
		CacheCap: 4096,
		Prune:    true,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Budget <= 0 {
		c.Budget = d.Budget
	}
	if c.MaxBound <= 0 {
		c.MaxBound = d.MaxBound
	}
	if c.Theta <= 0 {
		c.Theta = d.Theta
	}
	if c.Lambda <= 0 {
		c.Lambda = d.Lambda
	}
	if c.CacheCap <= 0 {
		c.CacheCap = d.CacheCap
	}
	if c.AnswerCacheCap <= 0 {
		c.AnswerCacheCap = 4096
	}
	if c.MaxOpsPerClass <= 0 {
		c.MaxOpsPerClass = 64
	}
	if c.MaxAnalysis <= 0 {
		c.MaxAnalysis = 120
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 100000
	}
	return c
}

// Why is a compiled Why-question W(Q(u_o), E) over a graph: the shared
// state every Q-Chase algorithm consults — the exemplar evaluator, the
// matcher (with optional star cache), the fixed focus-candidate pool
// V_{u_o}, the relevant/irrelevant sets R(u_o)/I(u_o), and the
// theoretically optimal closeness cl*.
type Why struct {
	G    *graph.Graph
	Q    *query.Query
	E    *exemplar.Exemplar
	Cfg  Config
	Eval *exemplar.Eval

	Matcher *match.Matcher
	Dist    distindex.Index

	// FocusCands is V_{u_o}: the label-based candidate pool of the
	// original focus, fixed across the chase (it normalizes closeness).
	FocusCands []graph.NodeID
	// focusSet mirrors FocusCands for O(1) membership.
	focusSet map[graph.NodeID]bool
	// ClStar is the theoretically optimal closeness cl*.
	ClStar float64

	params ops.Params
	rng    *rand.Rand

	// budget, when non-nil, gates this Why's evaluation fan-out on the
	// shared helper-token budget (see par.Budget): inside a batch, inner
	// per-question parallelism and outer cross-question parallelism draw
	// from the same pool, so nesting never oversubscribes the machine.
	// Standalone Why-questions leave it nil and fan out ungated.
	budget *par.Budget

	// partnerCache memoizes refinement partner sets across chase states:
	// the partners of a focus match at a pattern node depend only on the
	// node's matching signature and the exploration radius, not on the
	// rest of the rewrite.
	partnerCache map[partnerCacheKey][]graph.NodeID

	// Stats accumulates search effort across one algorithm run. It is
	// written only by the algorithm goroutine (beginRun/endRun and the
	// sequential commit phases); parallel evaluation workers touch only
	// the atomic steps counter below, so Stats aggregation is race-free.
	Stats Stats

	// steps counts query evaluations for the current run. It is the one
	// statistic bumped inside evaluate, which runs concurrently on
	// worker goroutines — hence atomic rather than a Stats field.
	steps atomic.Int64

	// clock supplies the time for TimeLimit deadline checks. It is
	// time.Now outside tests; deadline tests substitute a fake clock to
	// exercise expiry deterministically.
	clock func() time.Time
}

// Stats reports search effort.
type Stats struct {
	Steps      int           // simulated Q-Chase steps (query evaluations)
	States     int           // states pushed into the frontier
	Pruned     int           // states cut by the cl⁺ bound
	Elapsed    time.Duration // wall-clock of the last algorithm run
	CacheHits  int64
	CacheMiss  int64
	Trajectory []Sample // best-closeness-over-time curve (anytime)
}

// Sample is one point of the anytime trajectory.
type Sample struct {
	At        time.Duration
	Closeness float64
}

// NewWhy compiles a Why-question. It validates the query and exemplar,
// builds the exemplar evaluator (rep(E, V), closeness), the distance
// oracle, and the matcher.
func NewWhy(g *graph.Graph, q *query.Query, e *exemplar.Exemplar, cfg Config) (*Why, error) {
	return newWhyWith(g, q, e, cfg, nil, nil, nil)
}

// newWhyWith is NewWhy with the per-graph resources supplied by a
// Session: a prebuilt distance oracle, a shared star-view cache, and
// the helper-token budget. Any nil resource is built (or, for the
// budget, left off) exactly as standalone NewWhy would — sessions reuse
// one oracle and one cache across every question instead of building
// and discarding them per Ask.
func newWhyWith(g *graph.Graph, q *query.Query, e *exemplar.Exemplar, cfg Config,
	dist distindex.Index, cache *match.Cache, budget *par.Budget) (*Why, error) {

	cfg = cfg.withDefaults()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	ev, err := exemplar.NewEval(g, e, exemplar.Options{Theta: cfg.Theta, Lambda: cfg.Lambda})
	if err != nil {
		return nil, err
	}
	if !ev.Nontrivial() {
		return nil, errors.New("chase: trivial exemplar: rep(E, V) is empty")
	}
	if dist == nil {
		switch cfg.DistBackend {
		case "bfs":
			dist = distindex.NewBFS(g)
		case "pll":
			dist = distindex.NewPLLParallel(g, cfg.Workers)
		case "":
			dist = distindex.Auto(g)
		default:
			return nil, fmt.Errorf("chase: unknown distance backend %q", cfg.DistBackend)
		}
	}
	w := &Why{
		G:            g,
		Q:            q.Clone(),
		E:            e,
		Cfg:          cfg,
		Eval:         ev,
		Dist:         dist,
		budget:       budget,
		params:       ops.Params{MaxBound: cfg.MaxBound},
		rng:          rand.New(rand.NewSource(cfg.Seed + 1)),
		partnerCache: map[partnerCacheKey][]graph.NodeID{},
		//lint:ignore detsource injectable-clock default; only TimeLimit cutoffs and Elapsed stats read it, never ranking
		clock: time.Now,
	}
	// Warm the graph's lazy caches so concurrent Why-questions over the
	// same graph stay race-free.
	g.WarmCaches()
	if cache == nil && cfg.Cache {
		cache = match.NewCacheWeighted(cfg.CacheCap, 0.95, cfg.CacheShards, cfg.CacheWeight)
	}
	w.Matcher = match.NewMatcher(g, w.Dist, cache)
	w.FocusCands = g.NodesByLabel(q.Nodes[q.Focus].Label)
	w.focusSet = make(map[graph.NodeID]bool, len(w.FocusCands))
	for _, v := range w.FocusCands {
		w.focusSet[v] = true
	}
	w.ClStar = ev.ClStar(w.FocusCands)
	return w, nil
}

// Classify returns the relevance class of focus candidate v given an
// answer set.
func (w *Why) Classify(v graph.NodeID, answer *match.Result) Relevance {
	inAns := answer.Has(v)
	inRep := w.Eval.InRep(v)
	switch {
	case inAns && inRep:
		return RM
	case inAns:
		return IM
	case inRep:
		return RC
	}
	return IC
}

// Partition splits the focus candidates into the four relevance sets.
func (w *Why) Partition(answer *match.Result) (rm, im, rc, ic []graph.NodeID) {
	for _, v := range w.FocusCands {
		switch w.Classify(v, answer) {
		case RM:
			rm = append(rm, v)
		case IM:
			im = append(im, v)
		case RC:
			rc = append(rc, v)
		case IC:
			ic = append(ic, v)
		}
	}
	return
}

// Closeness computes cl(answer, E) with the fixed |V_{u_o}| normalizer.
func (w *Why) Closeness(answer []graph.NodeID) float64 {
	return w.Eval.Closeness(answer, len(w.FocusCands))
}

// ClPlus computes the pruning upper bound cl⁺(answer, E).
func (w *Why) ClPlus(answer []graph.NodeID) float64 {
	return w.Eval.ClPlus(answer, len(w.FocusCands))
}

// Satisfied reports Q'(G) ⊨ E for an answer set.
func (w *Why) Satisfied(answer []graph.NodeID) bool {
	return w.Eval.SatisfiedBy(answer)
}

// Answer is one query-rewrite answer to a Why-question.
type Answer struct {
	// Query is the rewrite Q' = Q ⊕ Ops.
	Query *query.Query
	// Ops is the operator sequence, in normal form.
	Ops ops.Sequence
	// Cost is c(Ops).
	Cost float64
	// Closeness is cl(Q'(G), E).
	Closeness float64
	// Matches is Q'(G).
	Matches []graph.NodeID
	// Satisfied reports Q'(G) ⊨ E.
	Satisfied bool
	// Diff is the differential-table lineage for the applied operators.
	Diff []DiffEntry
}

// String renders the answer headline.
func (a Answer) String() string {
	return fmt.Sprintf("rewrite cost=%.2f cl=%.4f |ans|=%d sat=%v ops=%v",
		a.Cost, a.Closeness, len(a.Matches), a.Satisfied, a.Ops)
}

// evaluate runs Match on q and assembles an Answer (without lineage).
// It counts one Q-Chase step and is safe to call from evaluation
// workers: the step counter is atomic and everything else it touches is
// either read-only or internally synchronized (see match.Matcher).
func (w *Why) evaluate(q *query.Query, seq ops.Sequence) (Answer, *match.Result) {
	w.steps.Add(1)
	return w.evaluateUncounted(q, seq)
}

// evaluateUncounted is evaluate without the step accounting. Speculative
// evaluation (the AnsW sibling prefetch) uses it so that work thrown
// away unread never perturbs the MaxSteps budget — step counts must
// match the sequential schedule exactly for output to stay identical.
func (w *Why) evaluateUncounted(q *query.Query, seq ops.Sequence) (Answer, *match.Result) {
	res := w.Matcher.Match(q)
	return w.answerFor(q, seq, res), res
}

// answerFor assembles the Answer envelope around an existing evaluation
// result (used when the Match came from the speculative cache).
func (w *Why) answerFor(q *query.Query, seq ops.Sequence, res *match.Result) Answer {
	norm, err := seq.NormalForm()
	if err != nil {
		norm = seq
	}
	return Answer{
		Query:     q,
		Ops:       norm,
		Cost:      seq.Cost(w.G),
		Closeness: w.Closeness(res.Answer),
		Matches:   res.Answer,
		Satisfied: w.Satisfied(res.Answer),
	}
}

// beginRun resets per-run statistics. Every algorithm entry point calls
// it before its first evaluation.
func (w *Why) beginRun() {
	w.Stats = Stats{}
	w.steps.Store(0)
}

// endRun folds the atomic step counter and cache statistics into Stats
// and stamps the elapsed wall-clock. Runs on the algorithm goroutine
// after all evaluation workers have joined.
func (w *Why) endRun(start time.Time) {
	w.Stats.Steps = int(w.steps.Load())
	w.Stats.Elapsed = time.Since(start)
	if c := w.Matcher.Cache; c != nil {
		w.Stats.CacheHits, w.Stats.CacheMiss = c.Stats()
	}
}

// stepsUsed reads the current run's evaluation count (for MaxSteps
// budget checks on the algorithm goroutine).
func (w *Why) stepsUsed() int { return int(w.steps.Load()) }

// workers resolves Config.Workers to a concrete pool size.
func (w *Why) workers() int { return par.Workers(w.Cfg.Workers) }

// forEach fans fn out over the evaluation pool, gated by the shared
// helper budget when this Why runs under a Session (nil budget is the
// ungated standalone path). Output never depends on the gate: callers
// commit in claim order whatever the realized parallelism was.
func (w *Why) forEach(workers, n int, fn func(i int)) {
	par.ForEachIn(w.budget, workers, n, fn)
}

// deadline resolves the run's absolute deadline (zero when unlimited).
// An explicit Config.Deadline wins; otherwise Config.TimeLimit anchors
// at the run's start on w.clock. The precedence is the queue-wait
// bugfix: a relative limit anchored at algorithm start cannot charge
// for time spent queued, an absolute deadline fixed at submission can.
func (w *Why) deadline(start time.Time) time.Time {
	if !w.Cfg.Deadline.IsZero() {
		return w.Cfg.Deadline
	}
	if w.Cfg.TimeLimit <= 0 {
		return time.Time{}
	}
	return start.Add(w.Cfg.TimeLimit)
}

// expired reports whether the run's deadline has passed. A zero
// deadline never expires.
func (w *Why) expired(deadline time.Time) bool {
	return !deadline.IsZero() && w.clock().After(deadline)
}

// cancelled polls Config.Cancel without blocking. A nil channel means
// the question is not cancellable and the poll is free.
func (w *Why) cancelled() bool {
	if w.Cfg.Cancel == nil {
		return false
	}
	select {
	case <-w.Cfg.Cancel:
		return true
	default:
		return false
	}
}

// stop reports whether the current run must cut off: the deadline
// passed or the question was cancelled. Every claim loop polls it once
// per iteration, which bounds how long a cancelled chase keeps running
// to a single claim step plus the evaluations already in flight.
func (w *Why) stop(deadline time.Time) bool {
	return w.expired(deadline) || w.cancelled()
}

// sortNodes sorts a node slice in place and returns it.
func sortNodes(v []graph.NodeID) []graph.NodeID {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	return v
}
