package chase

import (
	"fmt"
	"strings"

	"wqe/internal/graph"
	"wqe/internal/ops"
)

// DiffNode is one answer change caused by a Q-Chase step: a focus node
// that entered or left the answer, with its relevance to the exemplar.
type DiffNode struct {
	V     graph.NodeID
	Rel   Relevance
	Added bool
}

// DiffEntry is one row of the differential table T_D (§5.4 "Generating
// Explanations"): the picky operator applied, the picky edge that
// induced it (an index into the pre-rewrite query's edge list, or -1
// for node-local operators), and the answer delta it caused.
type DiffEntry struct {
	Op        ops.Op
	PickyEdge int
	Delta     []DiffNode
}

// String renders the entry the way Fig 6's differential table does.
func (d DiffEntry) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s ⇒", d.Op)
	for _, n := range d.Delta {
		sign := "+"
		if !n.Added {
			sign = "−"
		}
		fmt.Fprintf(&b, " %s%d(%s)", sign, n.V, n.Rel)
	}
	return b.String()
}

// diffEntry computes the answer delta of one step.
func (w *Why) diffEntry(op ops.Op, pickyEdge int, before, after []graph.NodeID) DiffEntry {
	prev := make(map[graph.NodeID]bool, len(before))
	for _, v := range before {
		prev[v] = true
	}
	next := make(map[graph.NodeID]bool, len(after))
	for _, v := range after {
		next[v] = true
	}
	e := DiffEntry{Op: op, PickyEdge: pickyEdge}
	for _, v := range after {
		if !prev[v] {
			rel := IM
			if w.Eval.InRep(v) {
				rel = RM
			}
			e.Delta = append(e.Delta, DiffNode{V: v, Rel: rel, Added: true})
		}
	}
	for _, v := range before {
		if !next[v] {
			rel := IC
			if w.Eval.InRep(v) {
				rel = RC
			}
			e.Delta = append(e.Delta, DiffNode{V: v, Rel: rel, Added: false})
		}
	}
	return e
}
