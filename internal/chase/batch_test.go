package chase_test

import (
	"testing"
	"time"

	"wqe/internal/chase"
	"wqe/internal/datagen"
	"wqe/internal/par"
)

// TestBatchMatchesSequential is the batch engine's determinism gate:
// AskAll over one shared session must produce, for every worker count,
// exactly the answers (rendered rewrite, matches, step and state
// counts) of a one-job-at-a-time loop. Beam and exact jobs are mixed so
// both algorithms cross the shared cache concurrently.
func TestBatchMatchesSequential(t *testing.T) {
	g, instances := genInstances(t, datagen.DatasetProducts, 1200, 6, 5)
	jobs := make([]chase.BatchJob, len(instances))
	for i, inst := range instances {
		jobs[i] = chase.BatchJob{Q: inst.Q, E: inst.E, MaxSteps: 400}
		if i%2 == 1 {
			jobs[i].Beam = 3
		}
	}
	cfg := chase.DefaultConfig()
	cfg.MaxSteps = 400
	cfg.Cache = true

	type rendered struct {
		answer        string
		steps, states int
	}
	render := func(results []chase.BatchResult) []rendered {
		out := make([]rendered, len(results))
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("job %d: %v", i, r.Err)
			}
			out[i] = rendered{renderAnswer(r.Answer), r.Steps, r.States}
		}
		return out
	}

	// Reference: a fresh session answering the jobs one at a time.
	refSess := chase.NewSession(g, cfg)
	refResults, refStats := refSess.AskAll(jobs, chase.BatchOptions{Workers: 1})
	ref := render(refResults)
	if refStats.Jobs != len(jobs) || refStats.Failed != 0 || refStats.Workers != 1 {
		t.Fatalf("reference stats: %+v", refStats)
	}

	for _, workers := range []int{1, 4, 8} {
		sess := chase.NewSession(g, cfg)
		results, stats := sess.AskAll(jobs, chase.BatchOptions{Workers: workers})
		got := render(results)
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("workers=%d job %d diverged:\nref %+v\ngot %+v", workers, i, ref[i], got[i])
			}
		}
		if stats.Steps != refStats.Steps {
			t.Errorf("workers=%d total steps %d, want %d", workers, stats.Steps, refStats.Steps)
		}
		if stats.Workers != workers {
			t.Errorf("resolved workers = %d, want %d", stats.Workers, workers)
		}
	}
}

// TestBatchJobOverrides checks the per-job knobs: a starved step budget
// must bite only the job carrying it, and a deadline must not break the
// anytime contract (an answer still comes back).
func TestBatchJobOverrides(t *testing.T) {
	g, instances := genInstances(t, datagen.DatasetProducts, 800, 2, 3)
	cfg := chase.DefaultConfig()
	cfg.Cache = true
	sess := chase.NewSession(g, cfg)

	jobs := []chase.BatchJob{
		{Q: instances[0].Q, E: instances[0].E, MaxSteps: 1},
		{Q: instances[1].Q, E: instances[1].E, MaxSteps: 500, TimeLimit: time.Minute},
	}
	results, stats := sess.AskAll(jobs, chase.BatchOptions{Workers: 2})
	if stats.Failed != 0 {
		t.Fatalf("no job should fail: %+v", stats)
	}
	if results[0].Steps > 1 {
		t.Errorf("job 0 ran %d steps past its MaxSteps=1 budget", results[0].Steps)
	}
	if results[1].Steps <= 1 {
		t.Errorf("job 1 was starved (%d steps) by job 0's override", results[1].Steps)
	}
}

// TestBatchReportsErrors: a malformed job reports its error in its own
// submission-order slot and the rest of the batch is unaffected.
func TestBatchReportsErrors(t *testing.T) {
	g, instances := genInstances(t, datagen.DatasetProducts, 800, 2, 9)
	sess := chase.NewSession(g, chase.DefaultConfig())
	jobs := []chase.BatchJob{
		{Q: instances[0].Q, E: instances[0].E},
		{Q: nil, E: instances[1].E}, // compilation must fail
		{Q: instances[1].Q, E: instances[1].E},
	}
	results, stats := sess.AskAll(jobs, chase.BatchOptions{Workers: 3})
	if results[1].Err == nil {
		t.Error("nil query must surface an error in slot 1")
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("healthy jobs disturbed: %v / %v", results[0].Err, results[2].Err)
	}
	if stats.Failed != 1 {
		t.Errorf("stats.Failed = %d, want 1", stats.Failed)
	}
}

// TestSessionConcurrentStress hammers one Session from many concurrent
// questions — Ask, AskFast, Why+AnsW, and nested AskAll — under the
// race detector (make race runs this package with -race). Every answer
// must equal the single-threaded reference regardless of interleaving.
func TestSessionConcurrentStress(t *testing.T) {
	g, instances := genInstances(t, datagen.DatasetProducts, 1000, 4, 17)
	cfg := chase.DefaultConfig()
	cfg.MaxSteps = 300
	cfg.Cache = true

	// Single-threaded reference answers.
	refSess := chase.NewSession(g, cfg)
	ref := make([]string, len(instances))
	refFast := make([]string, len(instances))
	for i, inst := range instances {
		a, err := refSess.Ask(inst.Q, inst.E)
		if err != nil {
			t.Fatal(err)
		}
		ref[i] = renderAnswer(a)
		f, err := refSess.AskFast(inst.Q, inst.E, 3)
		if err != nil {
			t.Fatal(err)
		}
		refFast[i] = renderAnswer(f)
	}

	sess := chase.NewSession(g, cfg)
	const rounds = 24
	got := make([]string, rounds)
	par.ForEach(8, rounds, func(i int) {
		inst := instances[i%len(instances)]
		switch i % 4 {
		case 0:
			a, err := sess.Ask(inst.Q, inst.E)
			if err != nil {
				panic(err)
			}
			got[i] = renderAnswer(a)
		case 1:
			a, err := sess.AskFast(inst.Q, inst.E, 3)
			if err != nil {
				panic(err)
			}
			got[i] = renderAnswer(a)
		case 2:
			w, err := sess.Why(inst.Q, inst.E)
			if err != nil {
				panic(err)
			}
			got[i] = renderAnswer(w.AnsW())
		default:
			results, _ := sess.AskAll([]chase.BatchJob{{Q: inst.Q, E: inst.E}}, chase.BatchOptions{Workers: 2})
			if results[0].Err != nil {
				panic(results[0].Err)
			}
			got[i] = renderAnswer(results[0].Answer)
		}
	})
	for i := range got {
		want := ref[i%len(instances)]
		if i%4 == 1 {
			want = refFast[i%len(instances)]
		}
		if got[i] != want {
			t.Errorf("round %d (mode %d): concurrent answer diverged\n got %s\nwant %s", i, i%4, got[i], want)
		}
	}
}
