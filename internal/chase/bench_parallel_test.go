package chase_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"wqe/internal/chase"
	"wqe/internal/datagen"
)

// parallelBench is the BENCH_parallel.json schema: sequential versus
// parallel wall-clock on the synthetic workload, plus enough context to
// interpret the number (the >=1.5x speedup target applies on machines
// with >=4 cores; a single-core runner records ~1.0x by construction).
type parallelBench struct {
	GeneratedBy     string  `json:"generated_by"`
	Cores           int     `json:"cores"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	NumCPU          int     `json:"num_cpu"`
	ParallelWorkers int     `json:"parallel_workers"`
	Workload        string  `json:"workload"`
	SequentialMS    float64 `json:"sequential_ms"`
	ParallelMS      float64 `json:"parallel_ms"`
	Speedup         float64 `json:"speedup"`
	OutputIdentical bool    `json:"output_identical"`
	Note            string  `json:"note"`
}

// TestEmitParallelBench measures the parallel evaluation engine against
// the sequential schedule on the synthetic workload and writes
// BENCH_parallel.json. Gated behind WQE_BENCH_JSON (it is a wall-clock
// measurement, not a correctness test): set it to 1 to write the repo
// default, or to an explicit output path. `make bench-parallel` wraps
// this.
func TestEmitParallelBench(t *testing.T) {
	out := os.Getenv("WQE_BENCH_JSON")
	if out == "" {
		t.Skip("set WQE_BENCH_JSON=1 (or to an output path) to emit BENCH_parallel.json")
	}
	if out == "1" {
		out = filepath.Join("..", "..", "BENCH_parallel.json")
	}
	guardSingleCoreOverwrite(t, out)

	const workload = "products n=4000: 4 Why-questions x (AnsHeu(4) + ApxWhyM), MaxSteps=2000, cache on"
	g, instances := genInstances(t, datagen.DatasetProducts, 4000, 4, 11)
	run := func(workers int) (time.Duration, string) {
		transcript := ""
		start := time.Now()
		for _, inst := range instances {
			cfg := chase.DefaultConfig()
			cfg.MaxSteps = 2000
			cfg.Workers = workers
			w, err := chase.NewWhy(g, inst.Q, inst.E, cfg)
			if err != nil {
				t.Fatalf("NewWhy: %v", err)
			}
			transcript += renderAnswer(w.AnsHeu(4)) + "\n"
			transcript += renderAnswer(w.ApxWhyM()) + "\n"
		}
		return time.Since(start), transcript
	}

	run(1) // warm the JIT-free but cache-sensitive paths once
	seqDur, seqOut := run(1)
	parDur, parOut := run(0)

	b := parallelBench{
		GeneratedBy:     "WQE_BENCH_JSON=1 go test ./internal/chase -run TestEmitParallelBench (make bench-parallel)",
		Cores:           runtime.GOMAXPROCS(0),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		ParallelWorkers: runtime.GOMAXPROCS(0),
		Workload:        workload,
		SequentialMS:    float64(seqDur.Microseconds()) / 1000,
		ParallelMS:      float64(parDur.Microseconds()) / 1000,
		Speedup:         float64(seqDur) / float64(parDur),
		OutputIdentical: seqOut == parOut,
		Note: "speedup target is >=1.5x on >=4 cores; single-core runners " +
			"record ~1.0x because the worker pool degenerates to one worker",
	}
	if !b.OutputIdentical {
		t.Fatalf("parallel output diverged from sequential:\n--- seq\n%s--- par\n%s", seqOut, parOut)
	}
	warnSingleCore(t)
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatalf("writing %s: %v", out, err)
	}
	t.Logf("wrote %s: seq=%.0fms par=%.0fms speedup=%.2fx on %d core(s)",
		out, b.SequentialMS, b.ParallelMS, b.Speedup, b.Cores)
}
