package chase

import (
	"sort"
	"time"

	"wqe/internal/ops"
)

// AnsHeu is the faster tunable heuristic of §5.5: a breadth-first beam
// search with beam size k. Each state expands through its top-k picky
// operators; after every level only the k best rewrites survive. It
// preserves anytime behavior but has no optimality guarantee.
func (w *Why) AnsHeu(beam int) Answer {
	return w.beamSearch(beam, false)
}

// AnsHeuB is the paper's ablation of AnsHeu that replaces picky
// operator generation with random operator selection (Exp-3): same
// beam mechanics, uninformed operators.
func (w *Why) AnsHeuB(beam int) Answer {
	return w.beamSearch(beam, true)
}

func (w *Why) beamSearch(beam int, random bool) Answer {
	if beam < 1 {
		beam = 1
	}
	start := time.Now()
	w.Stats = Stats{}
	defer func() {
		w.Stats.Elapsed = time.Since(start)
		if c := w.Matcher.Cache; c != nil {
			w.Stats.CacheHits, w.Stats.CacheMiss = c.Stats()
		}
	}()

	rootAns, rootRes := w.evaluate(w.Q, nil)
	root := &state{
		q:      w.Q,
		res:    rootRes,
		cl:     rootAns.Closeness,
		clPlus: w.ClPlus(rootRes.Answer),
	}
	best := newTopList(1, rootAns)
	if rootAns.Satisfied {
		best.offer(rootAns)
	}
	visited := map[string]bool{w.Q.Key(): true}
	frontier := []*state{root}
	deadline := time.Time{}
	if w.Cfg.TimeLimit > 0 {
		deadline = start.Add(w.Cfg.TimeLimit)
	}

	for len(frontier) > 0 {
		var children []*state
		for _, s := range frontier {
			if w.Stats.Steps >= w.Cfg.MaxSteps {
				break
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				break
			}
			used := opTargets(s.seq)
			budgetLeft := w.Cfg.Budget - s.cost

			var pool []scoredOp
			if random {
				pool = w.GenRandom(s.q, used, budgetLeft)
			} else {
				// Relaxations come first so that, on pickiness ties, the
				// beam follows the normal form (relax before refine);
				// refinements with strictly higher pickiness still win.
				if !s.refineOnly {
					pool = append(pool, capPerClass(w.GenRelax(s.q, s.res, used, budgetLeft), beam)...)
				}
				if hasIM(w, s.res) {
					pool = append(pool, capPerClass(w.GenRefine(s.q, s.res, used, budgetLeft), beam)...)
				}
				sortScored(pool)
			}

			expanded := 0
			for _, op := range pool {
				if expanded >= beam {
					break
				}
				if s.cost+op.Op.Cost(w.G) > w.Cfg.Budget+1e-9 {
					continue
				}
				q2, err := op.Op.Apply(s.q)
				if err != nil {
					continue // generator emitted an op that no longer fits s.q
				}
				key := q2.Key()
				if visited[key] {
					continue
				}
				visited[key] = true
				expanded++

				seq2 := append(append(ops.Sequence{}, s.seq...), op.Op)
				ans2, res2 := w.evaluate(q2, seq2)
				s2 := &state{
					q:          q2,
					seq:        seq2,
					cost:       ans2.Cost,
					res:        res2,
					cl:         ans2.Closeness,
					clPlus:     w.ClPlus(res2.Answer),
					sat:        ans2.Satisfied,
					refineOnly: s.refineOnly || op.Op.Kind.IsRefine(),
				}
				s2.diff = append(append([]DiffEntry{}, s.diff...),
					w.diffEntry(op.Op, op.PickyEdge, s.res.Answer, res2.Answer))
				ans2.Diff = s2.diff
				if best.offer(ans2) {
					w.Stats.Trajectory = append(w.Stats.Trajectory,
						Sample{At: time.Since(start), Closeness: best.bestCl()})
					if w.Cfg.OnImprove != nil {
						w.Cfg.OnImprove(best.list[0])
					}
				}
				children = append(children, s2)
				w.Stats.States++
			}
		}
		if best.full() && best.kthCl() >= w.ClStar-1e-12 {
			break
		}
		// Beam eviction: keep the k best rewrites. Satisfying rewrites
		// rank by closeness; non-satisfying ones rank by their potential
		// cl⁺ — a rewrite whose answers already include relevant matches
		// beats an empty answer with nominal closeness 0, since only
		// satisfying rewrites answer the Why-question at all.
		score := func(s *state) float64 {
			if s.sat {
				return 1 + s.cl
			}
			return s.clPlus + s.cl/1e3
		}
		sort.SliceStable(children, func(i, j int) bool {
			return score(children[i]) > score(children[j])
		})
		if len(children) > beam {
			children = children[:beam]
		}
		frontier = children
	}
	return best.results()[0]
}
