package chase

import (
	"sort"
	"time"

	"wqe/internal/match"
	"wqe/internal/ops"
	"wqe/internal/query"
)

// AnsHeu is the faster tunable heuristic of §5.5: a breadth-first beam
// search with beam size k. Each state expands through its top-k picky
// operators; after every level only the k best rewrites survive. It
// preserves anytime behavior but has no optimality guarantee.
func (w *Why) AnsHeu(beam int) Answer {
	return w.beamSearch(beam, false)
}

// AnsHeuB is the paper's ablation of AnsHeu that replaces picky
// operator generation with random operator selection (Exp-3): same
// beam mechanics, uninformed operators.
func (w *Why) AnsHeuB(beam int) Answer {
	return w.beamSearch(beam, true)
}

// beamCand is one claimed beam expansion: the rewrite to evaluate plus
// the slots the evaluation phase fills in. Claiming (operator choice,
// budget check, visited marking) is sequential; only the evaluation
// runs on worker goroutines.
type beamCand struct {
	parent *state
	op     scoredOp
	q2     *query.Query
	seq2   ops.Sequence
	key    string // rewrite key (AnsW speculation indexes spec by it)
	ans    Answer
	res    *match.Result
}

// beamSearch runs one beam level at a time in three phases:
//
//  1. claim — walk the frontier in order, generate each state's
//     operator pool, and claim up to beam candidates per state exactly
//     as the sequential search would (budget, visited, MaxSteps, and
//     TimeLimit checks all happen here, per candidate);
//  2. evaluate — fan the claimed candidates' Match calls out over the
//     worker pool;
//  3. commit — fold results back in claim order (best-list offers,
//     diff lineage, Stats.States, beam eviction).
//
// Because no claim decision reads a same-level evaluation result, the
// output is byte-identical for every Config.Workers setting.
func (w *Why) beamSearch(beam int, random bool) Answer {
	if beam < 1 {
		beam = 1
	}
	start := w.clock()
	w.beginRun()
	defer w.endRun(start)

	rootAns, rootRes := w.evaluate(w.Q, nil)
	root := &state{
		q:      w.Q,
		res:    rootRes,
		cl:     rootAns.Closeness,
		clPlus: w.ClPlus(rootRes.Answer),
	}
	best := newTopList(1, rootAns)
	if rootAns.Satisfied {
		best.offer(rootAns)
	}
	visited := map[string]bool{w.Q.Key(): true}
	frontier := []*state{root}
	deadline := w.deadline(w.clock())
	workers := w.workers()

	for len(frontier) > 0 {
		// Phase 1 — claim. simSteps predicts the step counter as if the
		// claimed evaluations had already run (each candidate costs
		// exactly one), so MaxSteps cuts off at the same candidate the
		// sequential schedule would stop at.
		simSteps := w.stepsUsed()
		var cands []*beamCand
	claim:
		for _, s := range frontier {
			if simSteps >= w.Cfg.MaxSteps || w.stop(deadline) {
				break
			}
			used := opTargets(s.seq)
			budgetLeft := w.Cfg.Budget - s.cost

			var pool []scoredOp
			if random {
				pool = w.GenRandom(s.q, used, budgetLeft)
			} else {
				// Relaxations come first so that, on pickiness ties, the
				// beam follows the normal form (relax before refine);
				// refinements with strictly higher pickiness still win.
				if !s.refineOnly {
					pool = append(pool, capPerClass(w.GenRelax(s.q, s.res, used, budgetLeft), beam)...)
				}
				if hasIM(w, s.res) {
					pool = append(pool, capPerClass(w.GenRefine(s.q, s.res, used, budgetLeft), beam)...)
				}
				sortScored(pool)
			}

			expanded := 0
			for _, op := range pool {
				if expanded >= beam {
					break
				}
				// The deadline (and the cancel signal) is re-checked per
				// claimed candidate, not just per frontier state: one
				// state's pool can be large enough to blow far past
				// TimeLimit otherwise, and a cancelled chase must stop
				// claiming mid-beam, not finish the level.
				if simSteps >= w.Cfg.MaxSteps || w.stop(deadline) {
					break claim
				}
				if s.cost+op.Op.Cost(w.G) > w.Cfg.Budget+1e-9 {
					continue
				}
				q2, err := op.Op.Apply(s.q)
				if err != nil {
					continue // generator emitted an op that no longer fits s.q
				}
				key := q2.Key()
				if visited[key] {
					continue
				}
				visited[key] = true
				expanded++
				simSteps++
				cands = append(cands, &beamCand{
					parent: s,
					op:     op,
					q2:     q2,
					seq2:   append(append(ops.Sequence{}, s.seq...), op.Op),
				})
			}
		}

		// Phase 2 — evaluate the whole level concurrently.
		w.forEach(workers, len(cands), func(i int) {
			c := cands[i]
			c.ans, c.res = w.evaluate(c.q2, c.seq2)
		})

		// Phase 3 — commit in claim order.
		var children []*state
		for _, c := range cands {
			s, ans2, res2 := c.parent, c.ans, c.res
			s2 := &state{
				q:          c.q2,
				seq:        c.seq2,
				cost:       ans2.Cost,
				res:        res2,
				cl:         ans2.Closeness,
				clPlus:     w.ClPlus(res2.Answer),
				sat:        ans2.Satisfied,
				refineOnly: s.refineOnly || c.op.Op.Kind.IsRefine(),
			}
			s2.diff = append(append([]DiffEntry{}, s.diff...),
				w.diffEntry(c.op.Op, c.op.PickyEdge, s.res.Answer, res2.Answer))
			ans2.Diff = s2.diff
			if best.offer(ans2) {
				w.Stats.Trajectory = append(w.Stats.Trajectory,
					Sample{At: time.Since(start), Closeness: best.bestCl()})
				if w.Cfg.OnImprove != nil {
					w.Cfg.OnImprove(best.list[0])
				}
			}
			children = append(children, s2)
			w.Stats.States++
		}
		if best.full() && best.kthCl() >= w.ClStar-1e-12 {
			break
		}
		// Beam eviction: keep the k best rewrites. Satisfying rewrites
		// rank by closeness; non-satisfying ones rank by their potential
		// cl⁺ — a rewrite whose answers already include relevant matches
		// beats an empty answer with nominal closeness 0, since only
		// satisfying rewrites answer the Why-question at all.
		score := func(s *state) float64 {
			if s.sat {
				return 1 + s.cl
			}
			return s.clPlus + s.cl/1e3
		}
		sort.SliceStable(children, func(i, j int) bool {
			return score(children[i]) > score(children[j])
		})
		if len(children) > beam {
			children = children[:beam]
		}
		frontier = children
	}
	return best.results()[0]
}
