package chase

import (
	"sort"
	"strings"

	"wqe/internal/graph"
	"wqe/internal/match"
	"wqe/internal/ops"
	"wqe/internal/query"
)

// partnerMap caches, per pattern node, the candidate partners of every
// focus match: nodes that could serve as h(u) in a valuation sending
// the focus to that match. Partner sets are distance-based
// overestimates (candidates of u within the pattern distance of the
// focus match, ignoring direction), which is exactly the quality the
// paper's pickiness estimates need: "no partner satisfies" certifies
// removal, "some partner satisfies" certifies nothing.
type partnerMap struct {
	w *Why
	q *query.Query
	// dist caps per pattern node: PatternDist(u_o, u), capped at
	// maxPartnerHops (ball sizes explode on power-law graphs).
	pd map[query.NodeID]int
	// sig caches each pattern node's matching signature, the
	// Why-level cache key component.
	sig map[query.NodeID]string
}

// maxPartnerHops bounds partner exploration; beyond it partner sets
// stop being overestimates, so the cap stays generous relative to the
// b_m·|E_Q| pattern radii of real queries.
const maxPartnerHops = 4

// maxPartnersScored caps how many partners a scored set keeps: hub
// nodes otherwise blow up the per-operator estimation loops. The
// certainty estimates degrade gracefully (they are ranking heuristics,
// not correctness guards).
const maxPartnersScored = 96

// partnerCacheKey identifies a partner set: focus match, radius, and
// the pattern node's matching signature.
type partnerCacheKey struct {
	v   graph.NodeID
	pd  int
	sig string
}

func newPartnerMap(w *Why, q *query.Query) *partnerMap {
	pm := &partnerMap{w: w, q: q,
		pd:  map[query.NodeID]int{},
		sig: map[query.NodeID]string{}}
	for u := range q.Nodes {
		d := q.PatternDist(q.Focus, query.NodeID(u))
		if d == graph.Unreachable || d > maxPartnerHops {
			d = maxPartnerHops
		}
		pm.pd[query.NodeID(u)] = d
		n := q.Nodes[u]
		parts := make([]string, 0, len(n.Literals)+1)
		parts = append(parts, n.Label)
		for _, l := range n.Literals {
			parts = append(parts, l.String())
		}
		sort.Strings(parts[1:])
		pm.sig[query.NodeID(u)] = strings.Join(parts, "|")
	}
	return pm
}

// partners returns the candidate partners of focus match v at pattern
// node u. Results are memoized on the Why across chase states: they
// depend only on v, u's matching signature, and the radius.
func (pm *partnerMap) partners(v graph.NodeID, u query.NodeID) []graph.NodeID {
	if u == pm.q.Focus {
		return []graph.NodeID{v}
	}
	key := partnerCacheKey{v: v, pd: pm.pd[u], sig: pm.sig[u]}
	if p, ok := pm.w.partnerCache[key]; ok {
		return p
	}
	check := pm.q.Check(pm.w.G, u)
	var out []graph.NodeID
	for _, nd := range pm.w.G.Ball(v, pm.pd[u], graph.Both) {
		if nd.D == 0 {
			continue
		}
		if check.Candidate(pm.w.G, nd.V) {
			out = append(out, nd.V)
			if len(out) >= maxPartnersScored {
				break
			}
		}
	}
	sortNodes(out)
	pm.w.partnerCache[key] = out
	return out
}

// GenRefine implements GenRf (§5.3 + Appendix B): it derives picky
// refinement operators (AddL, RfL, RfE, AddE) from the neighborhoods of
// relevant matches and scores each by
// p'(o) = (λ·|IM̄(o)| − Σ_{v∈RM̲(o)} cl(v,E)) / |V_{u_o}|, where IM̄ is
// the certainly-removed irrelevant-match set and RM̲ the
// certainly-removed relevant-match set under partner overestimation.
func (w *Why) GenRefine(q *query.Query, res *match.Result, used map[string]bool, budgetLeft float64) []scoredOp {
	rm, im, _, _ := w.Partition(res)
	if len(im) == 0 {
		return nil
	}
	// Neighborhood analysis is per-node bounded BFS; cap both sets
	// (highest closeness first) to keep generation within bounded delay.
	rm = sampleByCl(w, rm, w.Cfg.MaxAnalysis)
	im = sampleByCl(w, im, w.Cfg.MaxAnalysis)
	pm := newPartnerMap(w, q)

	acc := map[opIdent]*accum{}
	nf := float64(len(w.FocusCands))
	add := func(o ops.Op, pickyEdge int, removedIM []graph.NodeID, removedRM []graph.NodeID) {
		if len(removedIM) == 0 {
			return // no hope of improving closeness
		}
		if !o.Applicable(q, w.params) || o.Cost(w.G) > budgetLeft {
			return
		}
		key := identOf(o)
		if acc[key] != nil {
			return
		}
		var rmLoss float64
		for _, v := range removedRM {
			rmLoss += w.Eval.Cl(v)
		}
		a := &accum{op: scoredOp{Op: o, PickyEdge: pickyEdge}, gain: map[graph.NodeID]bool{}}
		for _, v := range removedIM {
			a.gain[v] = true
		}
		a.total = w.Cfg.Lambda*float64(len(removedIM)) - rmLoss
		_ = nf
		acc[key] = a
	}

	// survives reports whether focus match v keeps at least one partner
	// at u satisfying pred.
	survives := func(v graph.NodeID, u query.NodeID, pred func(graph.NodeID) bool) bool {
		for _, p := range pm.partners(v, u) {
			if pred(p) {
				return true
			}
		}
		return false
	}
	removedBy := func(u query.NodeID, pred func(graph.NodeID) bool) (imOut, rmOut []graph.NodeID) {
		for _, v := range im {
			if !survives(v, u, pred) {
				imOut = append(imOut, v)
			}
		}
		for _, v := range rm {
			if !survives(v, u, pred) {
				rmOut = append(rmOut, v)
			}
		}
		return
	}

	w.genAddL(q, rm, pm, used, add, removedBy)
	w.genRfL(q, rm, pm, used, add, removedBy)
	w.genRfE(q, rm, im, used, add)
	w.genAddE(q, rm, im, used, add)

	return w.finishScoredRefine(acc)
}

// genAddL: for each pattern node u and attribute value carried by an
// RM-supporting match of u and not yet constrained in F_Q(u), propose
// AddL(u, A = a) hoping irrelevant matches fail it.
func (w *Why) genAddL(q *query.Query, rm []graph.NodeID, pm *partnerMap,
	used map[string]bool,
	add func(ops.Op, int, []graph.NodeID, []graph.NodeID),
	removedBy func(query.NodeID, func(graph.NodeID) bool) ([]graph.NodeID, []graph.NodeID)) {

	const maxValuesPerAttr = 6
	for ui := range q.Nodes {
		u := query.NodeID(ui)
		// Count attribute values over RM partners at u.
		type av struct {
			attr string
			val  graph.Value
		}
		counts := map[string]int{}
		reprs := map[string]av{}
		for _, vrm := range rm {
			for _, p := range pm.partners(vrm, u) {
				for _, t := range w.G.Tuple(p) {
					attr := w.G.Attrs.Name(t.Attr)
					if q.FindLiteral(u, attr, graph.EQ) >= 0 {
						continue
					}
					if used[litTarget(u, attr)] {
						continue
					}
					key := attr + "=" + t.Val.String() + kindOf(t.Val)
					counts[key]++
					reprs[key] = av{attr: attr, val: t.Val}
				}
			}
		}
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if counts[keys[i]] != counts[keys[j]] {
				return counts[keys[i]] > counts[keys[j]]
			}
			return keys[i] < keys[j]
		})
		perAttr := map[string]int{}
		for _, k := range keys {
			x := reprs[k]
			if perAttr[x.attr] >= maxValuesPerAttr {
				continue
			}
			perAttr[x.attr]++
			lit := query.Literal{Attr: x.attr, Op: graph.EQ, Val: x.val}
			imOut, rmOut := removedBy(u, func(p graph.NodeID) bool { return lit.Sat(w.G, p) })
			add(ops.Op{Kind: ops.AddL, U: u, Lit: lit}, -1, imOut, rmOut)
		}
	}
}

func kindOf(v graph.Value) string {
	if v.Kind == graph.Number {
		return "#n"
	}
	return "#s"
}

// genRfL: tighten existing numeric literals toward the RM-supporting
// values (Appendix B rules, using ≤/≥ so the nearest relevant value
// keeps matching).
func (w *Why) genRfL(q *query.Query, rm []graph.NodeID, pm *partnerMap,
	used map[string]bool,
	add func(ops.Op, int, []graph.NodeID, []graph.NodeID),
	removedBy func(query.NodeID, func(graph.NodeID) bool) ([]graph.NodeID, []graph.NodeID)) {

	const maxValues = 6
	for ui := range q.Nodes {
		u := query.NodeID(ui)
		for _, l := range q.Nodes[u].Literals {
			if l.Val.Kind != graph.Number || used[litTarget(u, l.Attr)] {
				continue
			}
			// RM-supporting values of this attribute at u.
			var vals []float64
			seen := map[float64]bool{}
			for _, vrm := range rm {
				for _, p := range pm.partners(vrm, u) {
					if val, ok := w.G.Attr(p, l.Attr); ok && val.Kind == graph.Number {
						if !seen[val.Num] {
							seen[val.Num] = true
							vals = append(vals, val.Num)
						}
					}
				}
			}
			sort.Float64s(vals)
			gen := func(newLit query.Literal) {
				imOut, rmOut := removedBy(u, func(p graph.NodeID) bool { return newLit.Sat(w.G, p) })
				add(ops.Op{Kind: ops.RfL, U: u, Lit: l, NewLit: newLit}, -1, imOut, rmOut)
			}
			switch l.Op {
			case graph.LE, graph.LT:
				// Tighten the upper bound down toward RM values, largest
				// first (loses no RM support), then a few tighter steps.
				count := 0
				for i := len(vals) - 1; i >= 0 && count < maxValues; i-- {
					if a := vals[i]; a < l.Val.Num {
						gen(query.Literal{Attr: l.Attr, Op: graph.LE, Val: graph.N(a)})
						count++
					}
				}
			case graph.GE, graph.GT:
				count := 0
				for i := 0; i < len(vals) && count < maxValues; i++ {
					if a := vals[i]; a > l.Val.Num {
						gen(query.Literal{Attr: l.Attr, Op: graph.GE, Val: graph.N(a)})
						count++
					}
				}
			}
		}
	}
}

// genRfE: tighten edge bounds by one (Appendix B: RfE(e, b, b−1)).
// Removal certainty is computed for focus-incident edges via the
// distance oracle; deeper edges are generated with the irrelevant
// matches that lack any partner within the tightened bound along the
// pattern distance.
func (w *Why) genRfE(q *query.Query, rm, im []graph.NodeID,
	used map[string]bool,
	add func(ops.Op, int, []graph.NodeID, []graph.NodeID)) {

	for ei, e := range q.Edges {
		if e.Bound <= 1 || used[edgeTarget(e.From, e.To)] {
			continue
		}
		o := ops.Op{Kind: ops.RfE, U: e.From, U2: e.To, Bound: e.Bound, NewBound: e.Bound - 1}
		var other query.NodeID
		var out bool
		switch q.Focus {
		case e.From:
			other, out = e.To, true
		case e.To:
			other, out = e.From, false
		default:
			// Non-focus edge: generate with the full IM set as the
			// (over-)estimated removal; certainty is unavailable locally.
			add(o, ei, im, nil)
			continue
		}
		certainlyCut := func(v graph.NodeID) bool {
			dir := graph.Forward
			if !out {
				dir = graph.Backward
			}
			for _, nd := range w.G.Ball(v, e.Bound-1, dir) {
				if nd.D > 0 && q.IsCandidate(w.G, other, nd.V) {
					return false
				}
			}
			return true
		}
		var imOut, rmOut []graph.NodeID
		for _, v := range im {
			if certainlyCut(v) {
				imOut = append(imOut, v)
			}
		}
		for _, v := range rm {
			if certainlyCut(v) {
				rmOut = append(rmOut, v)
			}
		}
		add(o, ei, imOut, rmOut)
	}
}

// genAddE: add edges from the focus to existing pattern nodes or to a
// fresh labeled node, with a bound large enough that every relevant
// match keeps a partner (Appendix B AddE rules, restricted to the focus
// per DESIGN.md §6).
func (w *Why) genAddE(q *query.Query, rm, im []graph.NodeID,
	used map[string]bool,
	add func(ops.Op, int, []graph.NodeID, []graph.NodeID)) {

	if len(rm) == 0 {
		return
	}
	focus := q.Focus
	bm := w.Cfg.MaxBound

	// nearest returns the hop distance from v to the nearest node
	// satisfying pred, within bm, in the given direction. Balls are
	// memoized per (node, direction) — AddE generation probes the same
	// neighborhoods for many predicates.
	type ballKey struct {
		v   graph.NodeID
		dir graph.Direction
	}
	ballMemo := map[ballKey][]graph.NodeDist{}
	ballOf := func(v graph.NodeID, dir graph.Direction) []graph.NodeDist {
		k := ballKey{v, dir}
		if b, ok := ballMemo[k]; ok {
			return b
		}
		b := w.G.Ball(v, bm, dir)
		ballMemo[k] = b
		return b
	}
	nearest := func(v graph.NodeID, dir graph.Direction, pred func(graph.NodeID) bool) int {
		for _, nd := range ballOf(v, dir) {
			if nd.D > 0 && pred(nd.V) {
				return int(nd.D) // BFS order: first hit is nearest
			}
		}
		return graph.Unreachable
	}

	// (1) Existing pattern nodes not yet adjacent to the focus.
	for ui := range q.Nodes {
		u := query.NodeID(ui)
		if u == focus || q.FindEdge(focus, u) >= 0 || q.FindEdge(u, focus) >= 0 {
			continue
		}
		if used[edgeTarget(focus, u)] && used[edgeTarget(u, focus)] {
			continue
		}
		isCand := func(nb graph.NodeID) bool { return q.IsCandidate(w.G, u, nb) }
		for _, dir := range []graph.Direction{graph.Forward, graph.Backward} {
			k := 0
			feasible := true
			for _, vrm := range rm {
				d := nearest(vrm, dir, isCand)
				if d == graph.Unreachable {
					feasible = false
					break
				}
				if d > k {
					k = d
				}
			}
			if !feasible || k < 1 || k > bm {
				continue
			}
			var o ops.Op
			if dir == graph.Forward {
				o = ops.Op{Kind: ops.AddE, U: focus, U2: u, Bound: k}
			} else {
				o = ops.Op{Kind: ops.AddE, U: u, U2: focus, Bound: k}
			}
			var imOut []graph.NodeID
			for _, v := range im {
				if nearest(v, dir, isCand) > k {
					imOut = append(imOut, v)
				}
			}
			add(o, -1, imOut, nil)
		}
	}

	// (2) Fresh labeled node adjacent to the focus: collect labels near
	// relevant matches, keep those every RM can reach, rank by how many
	// irrelevant matches lack them.
	type labelInfo struct {
		k        int
		feasible bool
	}
	sortedIDs := func(m map[int32]*labelInfo) []int32 {
		ids := make([]int32, 0, len(m))
		for lid := range m {
			ids = append(ids, lid)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return ids
	}
	labels := map[int32]*labelInfo{}
	for i, vrm := range rm {
		found := map[int32]int{}
		for _, nd := range ballOf(vrm, graph.Forward) {
			if nd.D == 0 {
				continue
			}
			lid := w.G.LabelID(nd.V)
			if _, ok := found[lid]; !ok {
				found[lid] = int(nd.D) // BFS order: first is nearest
			}
		}
		if i == 0 {
			foundIDs := make([]int32, 0, len(found))
			for lid := range found {
				foundIDs = append(foundIDs, lid)
			}
			sort.Slice(foundIDs, func(a, b int) bool { return foundIDs[a] < foundIDs[b] })
			for _, lid := range foundIDs {
				labels[lid] = &labelInfo{k: found[lid], feasible: true}
			}
			continue
		}
		for _, lid := range sortedIDs(labels) {
			info := labels[lid]
			d, ok := found[lid]
			if !ok {
				info.feasible = false
				continue
			}
			if d > info.k {
				info.k = d
			}
		}
	}
	const maxNewLabels = 8
	generated := 0
	for _, lid := range sortedIDs(labels) {
		if generated >= maxNewLabels {
			break
		}
		info := labels[lid]
		if !info.feasible {
			continue
		}
		name := w.G.Labels.Name(lid)
		if name == "" {
			continue
		}
		hasLabel := func(nb graph.NodeID) bool { return w.G.LabelID(nb) == lid }
		var imOut []graph.NodeID
		for _, v := range im {
			if nearest(v, graph.Forward, hasLabel) > info.k {
				imOut = append(imOut, v)
			}
		}
		if len(imOut) == 0 {
			continue
		}
		add(ops.Op{Kind: ops.AddE, U: focus, Bound: info.k,
			NewNode: &ops.NewNodeSpec{Label: name}}, -1, imOut, nil)
		generated++
	}
}

// finishScoredRefine mirrors finishScored but keeps the already-computed
// p' totals (which mix IM gain and RM loss).
func (w *Why) finishScoredRefine(acc map[opIdent]*accum) []scoredOp {
	out := make([]scoredOp, 0, len(acc))
	keys := make([]opIdent, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sortIdents(keys)
	nf := float64(len(w.FocusCands))
	for _, k := range keys {
		a := acc[k]
		a.op.Pick = a.total / nf
		a.op.Cost = a.op.Op.Cost(w.G)
		a.op.Gain = make([]graph.NodeID, 0, len(a.gain))
		for v := range a.gain {
			a.op.Gain = append(a.op.Gain, v)
		}
		sortNodes(a.op.Gain)
		out = append(out, a.op)
	}
	sort.SliceStable(out, func(i, j int) bool {
		switch {
		case out[i].Pick > out[j].Pick:
			return true
		case out[i].Pick < out[j].Pick:
			return false
		}
		return out[i].Cost < out[j].Cost
	})
	return capPerClass(out, w.Cfg.MaxOpsPerClass)
}
