package chase_test

import (
	"testing"

	"wqe/internal/chase"
	"wqe/internal/datagen"
	"wqe/internal/graph"
	"wqe/internal/ops"
)

// newFig1Why compiles the running example with the paper's Example 3.3
// budget B = 4.
func newFig1Why(t *testing.T, cfg chase.Config) (*datagen.Fig1, *chase.Why) {
	t.Helper()
	f := datagen.NewFig1()
	if cfg.Budget == 0 {
		cfg.Budget = 4
	}
	w, err := chase.NewWhy(f.G, f.Q, f.E, cfg)
	if err != nil {
		t.Fatalf("NewWhy: %v", err)
	}
	return f, w
}

func answerSet(f *datagen.Fig1, matches []graph.NodeID) map[string]bool {
	inv := map[graph.NodeID]string{}
	for name, id := range f.Phones {
		inv[id] = name
	}
	out := map[string]bool{}
	for _, v := range matches {
		out[inv[v]] = true
	}
	return out
}

// TestFig1GroundTruth verifies the pre-chase facts of Examples 2.1/2.3:
// Q(G), rep(E, V), and the relevance partition.
func TestFig1GroundTruth(t *testing.T) {
	f, w := newFig1Why(t, chase.Config{})

	if got := len(w.FocusCands); got != 6 {
		t.Fatalf("|V_Cellphone| = %d, want 6", got)
	}

	res := w.Matcher.Match(f.Q)
	ans := answerSet(f, res.Answer)
	for _, p := range []string{"P1", "P2", "P5"} {
		if !ans[p] {
			t.Errorf("Q(G) misses %s (got %v)", p, ans)
		}
	}
	if len(ans) != 3 {
		t.Errorf("Q(G) = %v, want {P1, P2, P5}", ans)
	}

	for _, p := range []string{"P3", "P4", "P5"} {
		if !w.Eval.InRep(f.Phones[p]) {
			t.Errorf("rep(E, V) misses %s", p)
		}
		if cl := w.Eval.Cl(f.Phones[p]); cl != 1 {
			t.Errorf("cl(%s, E) = %v, want 1", p, cl)
		}
	}
	for _, p := range []string{"P1", "P2", "P6"} {
		if w.Eval.InRep(f.Phones[p]) {
			t.Errorf("rep(E, V) wrongly contains %s", p)
		}
	}

	rm, im, rc, ic := w.Partition(res)
	if len(rm) != 1 || rm[0] != f.Phones["P5"] {
		t.Errorf("RM = %v, want {P5}", rm)
	}
	if len(im) != 2 {
		t.Errorf("IM = %v, want {P1, P2}", im)
	}
	if len(rc) != 2 {
		t.Errorf("RC = %v, want {P3, P4}", rc)
	}
	if len(ic) != 1 || ic[0] != f.Phones["P6"] {
		t.Errorf("IC = %v, want {P6}", ic)
	}

	// cl* = |rep ∩ V_uo| / |V_uo| = 3/6 (all rep members have cl 1).
	if w.ClStar != 0.5 {
		t.Errorf("cl* = %v, want 0.5", w.ClStar)
	}
	// cl(Q(G), E) = (1 − λ·2)/6 with λ = 1.
	if got := w.Closeness(res.Answer); !almostEqual(got, -1.0/6) {
		t.Errorf("cl(Q(G), E) = %v, want -1/6", got)
	}
}

func almostEqual(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// TestFig1AnsW verifies that AnsW recovers the optimal rewrite of
// Example 3.3: answers {P3, P4, P5}, closeness 1/2 (the theoretical
// optimum), using relaxation of the price literal, removal of the
// sensor edge, and a carrier refinement.
func TestFig1AnsW(t *testing.T) {
	f, w := newFig1Why(t, chase.Config{})
	a := w.AnsW()

	if !a.Satisfied {
		t.Fatalf("AnsW answer not satisfied: %v", a)
	}
	if !almostEqual(a.Closeness, 0.5) {
		t.Fatalf("AnsW closeness = %v, want 0.5 (ops %v)", a.Closeness, a.Ops)
	}
	ans := answerSet(f, a.Matches)
	for _, p := range []string{"P3", "P4", "P5"} {
		if !ans[p] {
			t.Errorf("Q'(G) misses %s: %v", p, ans)
		}
	}
	if len(ans) != 3 {
		t.Errorf("Q'(G) = %v, want exactly {P3, P4, P5}", ans)
	}
	if a.Cost > 4 {
		t.Errorf("cost %v exceeds budget 4", a.Cost)
	}
	if !a.Ops.IsNormalForm() {
		t.Errorf("reported ops not in normal form: %v", a.Ops)
	}
	// The rewrite must relax the sensor requirement and the price bound
	// and refine the carrier.
	var sawRelaxEdge, sawPriceRelax, sawRefine bool
	for _, o := range a.Ops {
		switch {
		case o.Kind == ops.RmE || o.Kind == ops.RxE:
			sawRelaxEdge = true
		case (o.Kind == ops.RxL || o.Kind == ops.RmL) && o.Lit.Attr == "Price":
			sawPriceRelax = true
		case o.Kind.IsRefine():
			sawRefine = true
		}
	}
	if !sawRelaxEdge || !sawPriceRelax || !sawRefine {
		t.Errorf("unexpected operator mix: %v", a.Ops)
	}
	if len(a.Diff) == 0 {
		t.Errorf("differential table is empty")
	}
}

// TestFig1AnsHeu verifies the beam heuristic reaches the optimum on the
// small example for reasonable beam widths.
func TestFig1AnsHeu(t *testing.T) {
	for _, beam := range []int{2, 3, 5} {
		_, w := newFig1Why(t, chase.Config{})
		a := w.AnsHeu(beam)
		if !almostEqual(a.Closeness, 0.5) {
			t.Errorf("AnsHeu(beam=%d) closeness = %v, want 0.5 (ops %v)", beam, a.Closeness, a.Ops)
		}
	}
}

// TestFig1Variants exercises the ablation configurations (no cache, no
// pruning): all must reach the same optimal closeness.
func TestFig1Variants(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  chase.Config
	}{
		{"AnsW", chase.Config{Cache: true, Prune: true}},
		{"AnsWnc", chase.Config{Cache: false, Prune: true}},
		{"AnsWb", chase.Config{Cache: false, Prune: false}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Budget = 4
			_, w := newFig1Why(t, cfg)
			a := w.AnsW()
			if !almostEqual(a.Closeness, 0.5) {
				t.Errorf("%s closeness = %v, want 0.5", tc.name, a.Closeness)
			}
		})
	}
}

// TestFig1TopK verifies top-k suggestion returns distinct rewrites in
// non-increasing closeness order.
func TestFig1TopK(t *testing.T) {
	_, w := newFig1Why(t, chase.Config{})
	answers := w.TopK(3)
	if len(answers) != 3 {
		t.Fatalf("TopK(3) returned %d answers", len(answers))
	}
	if !almostEqual(answers[0].Closeness, 0.5) {
		t.Errorf("best of top-3 = %v, want 0.5", answers[0].Closeness)
	}
	for i := 1; i < len(answers); i++ {
		if answers[i].Closeness > answers[i-1].Closeness+1e-9 {
			t.Errorf("top-k not sorted: %v then %v", answers[i-1].Closeness, answers[i].Closeness)
		}
	}
}
