package query

import (
	"encoding/json"
	"fmt"
	"io"

	"wqe/internal/graph"
)

// jsonQuery is the on-disk shape used by the CLI tools:
//
//	{
//	  "focus": 0,
//	  "nodes": [
//	    {"label": "Cellphone",
//	     "literals": [{"attr": "Price", "op": ">=", "value": 840}]},
//	    {"label": "Carrier"}
//	  ],
//	  "edges": [{"from": 1, "to": 0, "bound": 1}]
//	}
type jsonQuery struct {
	Focus int        `json:"focus"`
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

type jsonNode struct {
	Label    string        `json:"label"`
	Literals []jsonLiteral `json:"literals,omitempty"`
}

type jsonLiteral struct {
	Attr  string          `json:"attr"`
	Op    string          `json:"op"`
	Value json.RawMessage `json:"value"`
}

type jsonEdge struct {
	From  int `json:"from"`
	To    int `json:"to"`
	Bound int `json:"bound"`
}

func valueToJSON(v graph.Value) (json.RawMessage, error) {
	if v.Kind == graph.Number {
		return json.Marshal(v.Num)
	}
	return json.Marshal(v.Str)
}

func valueFromJSON(raw json.RawMessage) (graph.Value, error) {
	var num float64
	if err := json.Unmarshal(raw, &num); err == nil {
		return graph.N(num), nil
	}
	var s string
	if err := json.Unmarshal(raw, &s); err != nil {
		return graph.Value{}, fmt.Errorf("query: literal value is neither number nor string")
	}
	return graph.S(s), nil
}

// WriteJSON serializes the query.
func (q *Query) WriteJSON(w io.Writer) error {
	jq := jsonQuery{Focus: int(q.Focus)}
	for _, n := range q.Nodes {
		jn := jsonNode{Label: n.Label}
		for _, l := range n.Literals {
			raw, err := valueToJSON(l.Val)
			if err != nil {
				return err
			}
			jn.Literals = append(jn.Literals, jsonLiteral{Attr: l.Attr, Op: l.Op.String(), Value: raw})
		}
		jq.Nodes = append(jq.Nodes, jn)
	}
	for _, e := range q.Edges {
		jq.Edges = append(jq.Edges, jsonEdge{From: int(e.From), To: int(e.To), Bound: e.Bound})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(jq)
}

// ReadJSON parses a query in the WriteJSON shape and validates it.
func ReadJSON(r io.Reader) (*Query, error) {
	var jq jsonQuery
	if err := json.NewDecoder(r).Decode(&jq); err != nil {
		return nil, fmt.Errorf("query: decode: %w", err)
	}
	q := New()
	for _, jn := range jq.Nodes {
		u := q.AddNode(jn.Label)
		for _, jl := range jn.Literals {
			op, err := graph.ParseOp(jl.Op)
			if err != nil {
				return nil, err
			}
			val, err := valueFromJSON(jl.Value)
			if err != nil {
				return nil, err
			}
			q.Nodes[u].Literals = append(q.Nodes[u].Literals,
				Literal{Attr: jl.Attr, Op: op, Val: val})
		}
	}
	for _, je := range jq.Edges {
		q.AddEdge(NodeID(je.From), NodeID(je.To), je.Bound)
	}
	q.Focus = NodeID(jq.Focus)
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}
