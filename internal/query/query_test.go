package query

import (
	"bytes"
	"testing"

	"wqe/internal/graph"
)

// sampleGraph: two people in one city, one person elsewhere.
func sampleGraph() *graph.Graph {
	g := graph.New()
	g.AddNode("Person", map[string]graph.Value{"Age": graph.N(30), "Job": graph.S("eng")}) // 0
	g.AddNode("Person", map[string]graph.Value{"Age": graph.N(50), "Job": graph.S("law")}) // 1
	g.AddNode("City", map[string]graph.Value{"Pop": graph.N(100000)})                      // 2
	g.AddNode("Person", map[string]graph.Value{"Age": graph.N(41)})                        // 3
	g.AddEdge(0, 2, "lives")
	g.AddEdge(1, 2, "lives")
	return g
}

func TestLiteralSat(t *testing.T) {
	g := sampleGraph()
	l := Literal{Attr: "Age", Op: graph.GE, Val: graph.N(40)}
	if l.Sat(g, 0) {
		t.Error("Age 30 should fail Age >= 40")
	}
	if !l.Sat(g, 1) {
		t.Error("Age 50 should pass Age >= 40")
	}
	missing := Literal{Attr: "Salary", Op: graph.GE, Val: graph.N(1)}
	if missing.Sat(g, 0) {
		t.Error("literal on missing attribute must fail")
	}
}

func TestCandidates(t *testing.T) {
	g := sampleGraph()
	q := New()
	u := q.AddNode("Person", Literal{Attr: "Age", Op: graph.GE, Val: graph.N(40)})
	q.Focus = u
	cands := q.Candidates(g, u)
	if len(cands) != 2 {
		t.Fatalf("candidates = %v, want two (nodes 1 and 3)", cands)
	}
	// Wildcard label matches every node.
	q2 := New()
	w := q2.AddNode("")
	if got := len(q2.Candidates(g, w)); got != 4 {
		t.Errorf("wildcard candidates = %d, want 4", got)
	}
	if !q.IsCandidate(g, u, 1) || q.IsCandidate(g, u, 0) || q.IsCandidate(g, u, 2) {
		t.Error("IsCandidate inconsistent with Candidates")
	}
}

func TestValidate(t *testing.T) {
	q := New()
	if q.Validate() == nil {
		t.Error("empty query must not validate")
	}
	a := q.AddNode("A")
	b := q.AddNode("B")
	q.AddEdge(a, b, 1)
	q.Focus = a
	if err := q.Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	q.Focus = 7
	if q.Validate() == nil {
		t.Error("out-of-range focus must not validate")
	}
	q.Focus = a
	q.Edges = append(q.Edges, Edge{From: a, To: a, Bound: 1})
	if q.Validate() == nil {
		t.Error("self-loop must not validate")
	}
}

func TestCloneIndependence(t *testing.T) {
	q := New()
	u := q.AddNode("A", Literal{Attr: "x", Op: graph.EQ, Val: graph.N(1)})
	v := q.AddNode("B")
	q.AddEdge(u, v, 2)
	q.Focus = u

	c := q.Clone()
	c.Nodes[0].Literals[0].Val = graph.N(99)
	c.Edges[0].Bound = 3
	c.AddNode("C")

	if !q.Nodes[0].Literals[0].Val.Equal(graph.N(1)) {
		t.Error("clone shares literal storage")
	}
	if q.Edges[0].Bound != 2 {
		t.Error("clone shares edge storage")
	}
	if len(q.Nodes) != 2 {
		t.Error("clone shares node storage")
	}
}

func TestPatternDist(t *testing.T) {
	q := New()
	a := q.AddNode("A")
	b := q.AddNode("B")
	c := q.AddNode("C")
	d := q.AddNode("D")
	q.AddEdge(a, b, 2)
	q.AddEdge(b, c, 1)
	q.Focus = a
	if got := q.PatternDist(a, c); got != 3 {
		t.Errorf("PatternDist(a,c) = %d, want 3 (bounds sum)", got)
	}
	if got := q.PatternDist(c, a); got != 3 {
		t.Errorf("PatternDist must ignore direction, got %d", got)
	}
	if got := q.PatternDist(a, a); got != 0 {
		t.Errorf("PatternDist(a,a) = %d", got)
	}
	if got := q.PatternDist(a, d); got != graph.Unreachable {
		t.Errorf("disconnected PatternDist = %d, want Unreachable", got)
	}
}

func TestShape(t *testing.T) {
	star := New()
	c := star.AddNode("C")
	for i := 0; i < 3; i++ {
		star.AddEdge(c, star.AddNode("L"), 1)
	}
	if star.Shape() != TopoStar {
		t.Errorf("star classified as %v", star.Shape())
	}

	chainQ := New()
	a := chainQ.AddNode("A")
	b := chainQ.AddNode("B")
	cc := chainQ.AddNode("C")
	d := chainQ.AddNode("D")
	chainQ.AddEdge(a, b, 1)
	chainQ.AddEdge(b, cc, 1)
	chainQ.AddEdge(cc, d, 1)
	if chainQ.Shape() != TopoTree {
		t.Errorf("chain classified as %v", chainQ.Shape())
	}

	cyc := New()
	x := cyc.AddNode("X")
	y := cyc.AddNode("Y")
	z := cyc.AddNode("Z")
	cyc.AddEdge(x, y, 1)
	cyc.AddEdge(y, z, 1)
	cyc.AddEdge(z, x, 1)
	if cyc.Shape() != TopoCyclic {
		t.Errorf("triangle classified as %v", cyc.Shape())
	}

	single := New()
	single.AddNode("S")
	if single.Shape() != TopoSingleton {
		t.Errorf("singleton classified as %v", single.Shape())
	}

	// A 2-edge star is also a chain; the classifier must prefer star.
	twoStar := New()
	h := twoStar.AddNode("H")
	twoStar.AddEdge(h, twoStar.AddNode("L"), 1)
	twoStar.AddEdge(twoStar.AddNode("L"), h, 1)
	if twoStar.Shape() != TopoStar {
		t.Errorf("2-edge star classified as %v", twoStar.Shape())
	}
}

func TestKey(t *testing.T) {
	build := func(bound int, price float64) *Query {
		q := New()
		u := q.AddNode("A",
			Literal{Attr: "p", Op: graph.GE, Val: graph.N(price)},
			Literal{Attr: "q", Op: graph.EQ, Val: graph.S("x")})
		v := q.AddNode("B")
		q.AddEdge(u, v, bound)
		q.Focus = u
		return q
	}
	if build(1, 5).Key() != build(1, 5).Key() {
		t.Error("identical queries must share keys")
	}
	if build(1, 5).Key() == build(2, 5).Key() {
		t.Error("bound change must change key")
	}
	if build(1, 5).Key() == build(1, 6).Key() {
		t.Error("literal change must change key")
	}
	// Literal order must not matter.
	q1 := New()
	u1 := q1.AddNode("A",
		Literal{Attr: "a", Op: graph.EQ, Val: graph.N(1)},
		Literal{Attr: "b", Op: graph.EQ, Val: graph.N(2)})
	q1.Focus = u1
	q2 := New()
	u2 := q2.AddNode("A",
		Literal{Attr: "b", Op: graph.EQ, Val: graph.N(2)},
		Literal{Attr: "a", Op: graph.EQ, Val: graph.N(1)})
	q2.Focus = u2
	if q1.Key() != q2.Key() {
		t.Error("literal order must not affect the key")
	}
}

func TestAccessors(t *testing.T) {
	q := New()
	a := q.AddNode("A", Literal{Attr: "x", Op: graph.GE, Val: graph.N(1)})
	b := q.AddNode("B")
	c := q.AddNode("C")
	q.AddEdge(a, b, 1)
	q.AddEdge(c, a, 2)
	q.Focus = a

	if q.FindEdge(a, b) != 0 || q.FindEdge(b, a) != -1 || q.FindEdge(c, a) != 1 {
		t.Error("FindEdge wrong")
	}
	if q.FindLiteral(a, "x", graph.GE) != 0 || q.FindLiteral(a, "x", graph.LE) != -1 {
		t.Error("FindLiteral wrong")
	}
	if !q.HasLiteral(a, Literal{Attr: "x", Op: graph.GE, Val: graph.N(1)}) {
		t.Error("HasLiteral wrong")
	}
	if got := q.Neighbors(a); len(got) != 2 {
		t.Errorf("Neighbors(a) = %v", got)
	}
	if got := q.IncidentEdges(a); len(got) != 2 {
		t.Errorf("IncidentEdges(a) = %v", got)
	}
	if q.MaxBound() != 2 {
		t.Errorf("MaxBound = %d", q.MaxBound())
	}
	if q.Size() != 3+2+1 {
		t.Errorf("Size = %d, want 6", q.Size())
	}
}

func TestQueryJSONRoundtrip(t *testing.T) {
	q := New()
	u := q.AddNode("Cellphone",
		Literal{Attr: "Price", Op: graph.GE, Val: graph.N(840)},
		Literal{Attr: "Brand", Op: graph.EQ, Val: graph.S("Samsung")})
	v := q.AddNode("Carrier")
	q.AddEdge(v, u, 1)
	q.Focus = u

	var buf bytes.Buffer
	if err := q.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	q2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if q.Key() != q2.Key() {
		t.Errorf("roundtrip changed the query:\n%s\nvs\n%s", q.Key(), q2.Key())
	}
}

func TestQueryJSONErrors(t *testing.T) {
	bad := []string{
		`{`,
		`{"focus":0,"nodes":[],"edges":[]}`, // empty
		`{"focus":0,"nodes":[{"label":"A","literals":[{"attr":"x","op":"!!","value":1}]}],"edges":[]}`,
		`{"focus":0,"nodes":[{"label":"A","literals":[{"attr":"x","op":"=","value":[1]}]}],"edges":[]}`,
		`{"focus":5,"nodes":[{"label":"A"}],"edges":[]}`, // bad focus
	}
	for _, s := range bad {
		if _, err := ReadJSON(bytes.NewBufferString(s)); err == nil {
			t.Errorf("ReadJSON(%q) should fail", s)
		}
	}
}
