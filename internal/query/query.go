// Package query implements graph pattern queries (Section 2.1): a query
// is a graph whose nodes carry labels and predicate literals, whose
// edges carry hop bounds (edge-to-path matching), and which designates
// one focus node u_o whose matches are the query answer.
package query

import (
	"fmt"
	"sort"
	"strings"

	"wqe/internal/graph"
)

// NodeID indexes a pattern node within a Query.
type NodeID int

// Literal is a constant search predicate u.A op c attached to a pattern
// node.
type Literal struct {
	Attr string
	Op   graph.Op
	Val  graph.Value
}

// String renders the literal as "A op c".
func (l Literal) String() string {
	return fmt.Sprintf("%s %s %s", l.Attr, l.Op, l.Val)
}

// Equal reports literal identity.
func (l Literal) Equal(m Literal) bool {
	return l.Attr == m.Attr && l.Op == m.Op && l.Val.Equal(m.Val)
}

// Sat reports whether node v of g satisfies the literal: v must carry
// the attribute and the comparison must hold.
func (l Literal) Sat(g *graph.Graph, v graph.NodeID) bool {
	val, ok := g.Attr(v, l.Attr)
	if !ok {
		return false
	}
	return l.Op.Holds(val, l.Val)
}

// Node is one pattern node: a label (empty = wildcard '⊥') and a set of
// literals F_Q(u).
type Node struct {
	Label    string
	Literals []Literal
}

// Edge is a pattern edge with a hop bound: a graph match must provide a
// directed path of length ≤ Bound from the match of From to the match
// of To. Bound 1 is ordinary edge matching (subgraph isomorphism's
// special case).
type Edge struct {
	From, To NodeID
	Bound    int
}

// Query is a graph pattern query Q = (V_Q, E_Q, L_Q, F_Q, u_o).
type Query struct {
	Nodes []Node
	Edges []Edge
	Focus NodeID
}

// New returns an empty query; add nodes and edges, then set Focus.
func New() *Query { return &Query{} }

// AddNode appends a pattern node and returns its id.
func (q *Query) AddNode(label string, lits ...Literal) NodeID {
	q.Nodes = append(q.Nodes, Node{Label: label, Literals: append([]Literal(nil), lits...)})
	return NodeID(len(q.Nodes) - 1)
}

// AddEdge appends a pattern edge with the given hop bound.
func (q *Query) AddEdge(from, to NodeID, bound int) {
	if bound < 1 {
		bound = 1
	}
	q.Edges = append(q.Edges, Edge{From: from, To: to, Bound: bound})
}

// Validate checks structural sanity: a focus in range, edges in range,
// positive bounds, no self-loops.
func (q *Query) Validate() error {
	n := len(q.Nodes)
	if n == 0 {
		return fmt.Errorf("query: no nodes")
	}
	if int(q.Focus) < 0 || int(q.Focus) >= n {
		return fmt.Errorf("query: focus %d out of range [0,%d)", q.Focus, n)
	}
	for i, e := range q.Edges {
		if int(e.From) < 0 || int(e.From) >= n || int(e.To) < 0 || int(e.To) >= n {
			return fmt.Errorf("query: edge %d endpoints out of range", i)
		}
		if e.From == e.To {
			return fmt.Errorf("query: edge %d is a self-loop", i)
		}
		if e.Bound < 1 {
			return fmt.Errorf("query: edge %d has non-positive bound", i)
		}
	}
	return nil
}

// Clone deep-copies the query.
func (q *Query) Clone() *Query {
	c := &Query{
		Nodes: make([]Node, len(q.Nodes)),
		Edges: append([]Edge(nil), q.Edges...),
		Focus: q.Focus,
	}
	for i, n := range q.Nodes {
		c.Nodes[i] = Node{Label: n.Label, Literals: append([]Literal(nil), n.Literals...)}
	}
	return c
}

// Size returns |Q| = node count + edge count + total literal count, the
// query-size parameter k1 of the paper's fixed-parameter analysis.
func (q *Query) Size() int {
	s := len(q.Nodes) + len(q.Edges)
	for _, n := range q.Nodes {
		s += len(n.Literals)
	}
	return s
}

// MaxBound returns the largest edge bound b_m appearing in the query
// (at least 1).
func (q *Query) MaxBound() int {
	b := 1
	for _, e := range q.Edges {
		if e.Bound > b {
			b = e.Bound
		}
	}
	return b
}

// HasLiteral reports whether pattern node u carries literal l.
func (q *Query) HasLiteral(u NodeID, l Literal) bool {
	for _, x := range q.Nodes[u].Literals {
		if x.Equal(l) {
			return true
		}
	}
	return false
}

// FindLiteral returns the index of the literal on attribute attr with
// operator op at node u, or -1.
func (q *Query) FindLiteral(u NodeID, attr string, op graph.Op) int {
	for i, x := range q.Nodes[u].Literals {
		if x.Attr == attr && x.Op == op {
			return i
		}
	}
	return -1
}

// FindEdge returns the index of the edge from → to, or -1.
func (q *Query) FindEdge(from, to NodeID) int {
	for i, e := range q.Edges {
		if e.From == from && e.To == to {
			return i
		}
	}
	return -1
}

// IncidentEdges returns the indices of edges touching u (either
// direction).
func (q *Query) IncidentEdges(u NodeID) []int {
	var out []int
	for i, e := range q.Edges {
		if e.From == u || e.To == u {
			out = append(out, i)
		}
	}
	return out
}

// Neighbors returns the pattern nodes adjacent to u, either direction,
// deduplicated, in ascending order.
func (q *Query) Neighbors(u NodeID) []NodeID {
	seen := map[NodeID]bool{}
	for _, e := range q.Edges {
		switch u {
		case e.From:
			seen[e.To] = true
		case e.To:
			seen[e.From] = true
		}
	}
	out := make([]NodeID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Candidates returns V_u: the graph nodes whose label matches u's label
// (wildcard matches all) and which satisfy every literal of u.
func (q *Query) Candidates(g *graph.Graph, u NodeID) []graph.NodeID {
	pn := q.Nodes[u]
	pool := g.NodesByLabel(pn.Label)
	if len(pn.Literals) == 0 {
		return pool
	}
	check := q.Check(g, u)
	out := make([]graph.NodeID, 0, len(pool))
	for _, v := range pool {
		if check.Candidate(g, v) {
			out = append(out, v)
		}
	}
	return out
}

// IsCandidate reports whether graph node v is a candidate of pattern
// node u.
func (q *Query) IsCandidate(g *graph.Graph, u NodeID, v graph.NodeID) bool {
	pn := q.Nodes[u]
	if pn.Label != "" && g.Label(v) != pn.Label {
		return false
	}
	for _, l := range pn.Literals {
		if !l.Sat(g, v) {
			return false
		}
	}
	return true
}

// PatternDist returns the shortest path length between pattern nodes a
// and b, treating each pattern edge as undirected with weight equal to
// its hop bound. This is the "distance between u_i and u_o in Q" used to
// label augmented star-view edges. Returns graph.Unreachable when the
// pattern is disconnected between a and b.
func (q *Query) PatternDist(a, b NodeID) int {
	if a == b {
		return 0
	}
	const inf = int(^uint(0) >> 1)
	dist := make([]int, len(q.Nodes))
	for i := range dist {
		dist[i] = inf
	}
	dist[a] = 0
	// Bellman-Ford style relaxation: queries are tiny, simplicity wins.
	for iter := 0; iter < len(q.Nodes); iter++ {
		changed := false
		for _, e := range q.Edges {
			if dist[e.From] != inf && dist[e.From]+e.Bound < dist[e.To] {
				dist[e.To] = dist[e.From] + e.Bound
				changed = true
			}
			if dist[e.To] != inf && dist[e.To]+e.Bound < dist[e.From] {
				dist[e.From] = dist[e.To] + e.Bound
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	if dist[b] == inf {
		return graph.Unreachable
	}
	return dist[b]
}

// Topology classifies the query shape the way the paper's Exp-1 does.
type Topology int

// Topology classes.
const (
	TopoSingleton Topology = iota // no edges
	TopoStar                      // all edges share one center node
	TopoTree                      // acyclic, connected, not a star
	TopoCyclic                    // contains an (undirected) cycle
)

// String renders the topology class.
func (t Topology) String() string {
	switch t {
	case TopoSingleton:
		return "singleton"
	case TopoStar:
		return "star"
	case TopoTree:
		return "tree"
	case TopoCyclic:
		return "cyclic"
	}
	return "unknown"
}

// Shape returns the topology class of the query viewed undirected.
func (q *Query) Shape() Topology {
	if len(q.Edges) == 0 {
		return TopoSingleton
	}
	if len(q.Edges) >= len(q.Nodes) {
		return TopoCyclic
	}
	// Acyclic iff |E| = |V_connected| - 1 per component; detect a cycle
	// with union-find.
	parent := make([]int, len(q.Nodes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, e := range q.Edges {
		a, b := find(int(e.From)), find(int(e.To))
		if a == b {
			return TopoCyclic
		}
		parent[a] = b
	}
	// Star: some node touches every edge.
	for u := range q.Nodes {
		touchAll := true
		for _, e := range q.Edges {
			if int(e.From) != u && int(e.To) != u {
				touchAll = false
				break
			}
		}
		if touchAll {
			return TopoStar
		}
	}
	return TopoTree
}

// Key returns a deterministic canonical encoding of the query, used to
// deduplicate rewrites during the chase and to key star-view caches.
// Node order is significant (rewrites never reorder nodes).
func (q *Query) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "f%d", q.Focus)
	for i, n := range q.Nodes {
		fmt.Fprintf(&b, "|n%d:%s{", i, n.Label)
		lits := append([]Literal(nil), n.Literals...)
		sort.Slice(lits, func(a, c int) bool {
			if lits[a].Attr != lits[c].Attr {
				return lits[a].Attr < lits[c].Attr
			}
			if lits[a].Op != lits[c].Op {
				return lits[a].Op < lits[c].Op
			}
			return lits[a].Val.Compare(lits[c].Val) < 0
		})
		for j, l := range lits {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.String())
		}
		b.WriteByte('}')
	}
	edges := append([]Edge(nil), q.Edges...)
	sort.Slice(edges, func(a, c int) bool {
		if edges[a].From != edges[c].From {
			return edges[a].From < edges[c].From
		}
		if edges[a].To != edges[c].To {
			return edges[a].To < edges[c].To
		}
		return edges[a].Bound < edges[c].Bound
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "|e%d-%d:%d", e.From, e.To, e.Bound)
	}
	return b.String()
}

// String renders a compact human-readable form of the query.
func (q *Query) String() string {
	var b strings.Builder
	for i, n := range q.Nodes {
		if i > 0 {
			b.WriteString("; ")
		}
		label := n.Label
		if label == "" {
			label = "⊥"
		}
		fmt.Fprintf(&b, "u%d:%s", i, label)
		if NodeID(i) == q.Focus {
			b.WriteString("*")
		}
		if len(n.Literals) > 0 {
			b.WriteByte('[')
			for j, l := range n.Literals {
				if j > 0 {
					b.WriteString(", ")
				}
				b.WriteString(l.String())
			}
			b.WriteByte(']')
		}
	}
	for _, e := range q.Edges {
		fmt.Fprintf(&b, "; (u%d)-%d->(u%d)", e.From, e.Bound, e.To)
	}
	return b.String()
}

// IsolatedIgnored reports whether pattern node u poses no constraint on
// matching: a non-focus node with no incident edges. Such nodes arise
// when RmE detaches an endpoint (the operator keeps the node so that
// node indices stay stable across operator reordering); semantically
// the detached constraint is gone, so matching ignores the node.
func (q *Query) IsolatedIgnored(u NodeID) bool {
	if u == q.Focus {
		return false
	}
	for _, e := range q.Edges {
		if e.From == u || e.To == u {
			return false
		}
	}
	return true
}

// NodeCheck is a compiled candidate predicate for one pattern node:
// the label and every literal attribute resolved to interned ids once,
// so hot matching loops avoid per-node string lookups.
type NodeCheck struct {
	wildcard bool
	labelID  int32
	dead     bool // a literal references an attribute absent from G
	lits     []compiledLit
}

type compiledLit struct {
	aid int32
	op  graph.Op
	val graph.Value
}

// Check compiles the candidate predicate of pattern node u against g.
func (q *Query) Check(g *graph.Graph, u NodeID) NodeCheck {
	n := q.Nodes[u]
	c := NodeCheck{wildcard: n.Label == ""}
	if !c.wildcard {
		id, ok := g.Labels.Lookup(n.Label)
		if !ok {
			c.dead = true
			return c
		}
		c.labelID = id
	}
	for _, l := range n.Literals {
		aid, ok := g.Attrs.Lookup(l.Attr)
		if !ok {
			c.dead = true
			return c
		}
		c.lits = append(c.lits, compiledLit{aid: aid, op: l.Op, val: l.Val})
	}
	return c
}

// Candidate reports whether v satisfies the compiled predicate;
// equivalent to Query.IsCandidate but without string lookups.
func (c *NodeCheck) Candidate(g *graph.Graph, v graph.NodeID) bool {
	if c.dead {
		return false
	}
	if !c.wildcard && g.LabelID(v) != c.labelID {
		return false
	}
	for _, l := range c.lits {
		val, ok := g.AttrByID(v, l.aid)
		if !ok || !l.op.Holds(val, l.val) {
			return false
		}
	}
	return true
}
