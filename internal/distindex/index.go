// Package distindex provides exact shortest-path distance oracles over
// attributed graphs. The paper's evaluation gives every algorithm access
// to "a fast distance index" (Akiba et al., SIGMOD 2013); this package
// implements that index — Pruned Landmark Labeling for directed graphs —
// plus a bounded-BFS oracle used as a baseline and as the default for
// small graphs, both behind one interface.
package distindex

import "wqe/internal/graph"

// Index answers exact directed shortest-path distance queries.
type Index interface {
	// Dist returns the shortest directed path length s→t, or
	// graph.Unreachable when no path exists.
	Dist(s, t graph.NodeID) int
	// Within reports whether dist(s, t) ≤ bound. Implementations may
	// answer this faster than a full Dist.
	Within(s, t graph.NodeID, bound int) bool
}

// BFS is the trivial oracle: every query runs a (bounded) breadth-first
// search. It needs no preprocessing and wins on small graphs and small
// hop bounds.
type BFS struct {
	G *graph.Graph
}

// NewBFS returns a BFS oracle over g.
func NewBFS(g *graph.Graph) *BFS { return &BFS{G: g} }

// Dist runs an unbounded BFS.
func (b *BFS) Dist(s, t graph.NodeID) int {
	return b.G.Dist(s, t, b.G.NumNodes())
}

// Within runs a BFS bounded at the requested hop count.
func (b *BFS) Within(s, t graph.NodeID, bound int) bool {
	return b.G.Dist(s, t, bound) <= bound
}

// Auto picks an oracle for g: PLL when the graph is large enough that
// repeated BFS would dominate, plain BFS otherwise. The PLL index is
// built with the parallel construction (bit-identical to the
// sequential one).
func Auto(g *graph.Graph) Index {
	if g.NumNodes() >= 20000 {
		return NewPLLParallel(g, 0)
	}
	return NewBFS(g)
}
