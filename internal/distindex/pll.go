package distindex

import (
	"sort"

	"wqe/internal/graph"
)

// labelEntry is one 2-hop-cover label: landmark rank and distance.
type labelEntry struct {
	rank int32
	d    int32
}

// PLL is a Pruned Landmark Labeling index (Akiba, Iwata, Yoshida,
// SIGMOD 2013) for directed graphs. Every node v stores two label sets:
// in-labels {(u, dist(u→v))} and out-labels {(u, dist(v→u))} over a set
// of landmarks processed in descending-degree order with pruned BFS.
// dist(s→t) is then the minimum of dOut + dIn over landmarks common to
// out(s) and in(t).
type PLL struct {
	g    *graph.Graph
	rank []int32        // node → landmark rank (0 = highest degree)
	inv  []graph.NodeID // rank → node
	in   [][]labelEntry // sorted by rank
	out  [][]labelEntry
}

// NewPLL builds the index. Construction runs one pruned forward and one
// pruned backward BFS per node, in degree order.
func NewPLL(g *graph.Graph) *PLL {
	n := g.NumNodes()
	p := &PLL{
		g:    g,
		rank: make([]int32, n),
		inv:  make([]graph.NodeID, n),
		in:   make([][]labelEntry, n),
		out:  make([][]labelEntry, n),
	}
	for i := range p.inv {
		p.inv[i] = graph.NodeID(i)
	}
	sort.Slice(p.inv, func(a, b int) bool {
		da, db := g.Degree(p.inv[a]), g.Degree(p.inv[b])
		if da != db {
			return da > db
		}
		return p.inv[a] < p.inv[b]
	})
	for r, v := range p.inv {
		p.rank[v] = int32(r)
	}

	// Scratch buffers reused across BFS runs.
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	// rootOut[r] is the distance from the current landmark to landmark r
	// via out-labels (for forward pruning); rootIn the reverse.
	rootLabel := make([]int32, n)
	for i := range rootLabel {
		rootLabel[i] = -1
	}

	for r := 0; r < n; r++ {
		root := p.inv[r]
		p.prunedBFS(root, int32(r), true, dist, rootLabel)
		p.prunedBFS(root, int32(r), false, dist, rootLabel)
	}
	return p
}

// prunedBFS labels nodes reachable from root. forward=true walks
// out-edges and appends to in-labels of reached nodes (they are reached
// FROM root); forward=false walks in-edges and appends to out-labels.
func (p *PLL) prunedBFS(root graph.NodeID, rrank int32, forward bool, dist, rootLabel []int32) {
	// Index the root's existing labels for O(1) prune queries.
	// For forward BFS we need dist(root→u) ≤ d via existing labels:
	// min over common landmarks of root.out and u.in.
	rootSide := p.out[root]
	if !forward {
		rootSide = p.in[root]
	}
	for _, le := range rootSide {
		rootLabel[le.rank] = le.d
	}
	rootLabel[rrank] = 0

	dist[root] = 0
	frontier := []graph.NodeID{root}
	var touched []graph.NodeID
	touched = append(touched, root)

	for len(frontier) > 0 {
		var next []graph.NodeID
		for _, v := range frontier {
			dv := dist[v]
			// Prune: if the existing labels already certify
			// dist(root,v) ≤ dv, neither label nor expand v.
			if v != root && p.coveredBy(v, dv, rootLabel, forward) {
				continue
			}
			if forward {
				p.in[v] = append(p.in[v], labelEntry{rank: rrank, d: dv})
			} else {
				p.out[v] = append(p.out[v], labelEntry{rank: rrank, d: dv})
			}
			edges := p.g.Out(v)
			if !forward {
				edges = p.g.In(v)
			}
			for _, e := range edges {
				if dist[e.To] >= 0 {
					continue
				}
				// Nodes ranked above the current landmark were already
				// processed as landmarks; paths through them are covered.
				if p.rank[e.To] < rrank {
					continue
				}
				dist[e.To] = dv + 1
				next = append(next, e.To)
				touched = append(touched, e.To)
			}
		}
		frontier = next
	}

	// Reset scratch.
	for _, v := range touched {
		dist[v] = -1
	}
	for _, le := range rootSide {
		rootLabel[le.rank] = -1
	}
	rootLabel[rrank] = -1
}

// coveredBy reports whether existing labels certify dist(root, v) ≤ d
// (forward) or dist(v, root) ≤ d (backward), where rootLabel holds the
// root-side label distances indexed by landmark rank.
func (p *PLL) coveredBy(v graph.NodeID, d int32, rootLabel []int32, forward bool) bool {
	side := p.in[v]
	if !forward {
		side = p.out[v]
	}
	for _, le := range side {
		if rd := rootLabel[le.rank]; rd >= 0 && rd+le.d <= d {
			return true
		}
	}
	return false
}

// Dist answers an exact directed distance query by merge-intersecting
// the sorted out-labels of s with the in-labels of t.
func (p *PLL) Dist(s, t graph.NodeID) int {
	if s == t {
		return 0
	}
	ls, lt := p.out[s], p.in[t]
	best := int32(-1)
	i, j := 0, 0
	for i < len(ls) && j < len(lt) {
		switch {
		case ls[i].rank < lt[j].rank:
			i++
		case ls[i].rank > lt[j].rank:
			j++
		default:
			if sum := ls[i].d + lt[j].d; best < 0 || sum < best {
				best = sum
			}
			i++
			j++
		}
	}
	// s or t may themselves be landmarks: rank(s) appears in lt, rank(t)
	// in ls, via the (self, 0) label added during construction, so the
	// merge above already covers those cases.
	if best < 0 {
		return graph.Unreachable
	}
	return int(best)
}

// Within reports dist(s, t) ≤ bound.
func (p *PLL) Within(s, t graph.NodeID, bound int) bool {
	d := p.Dist(s, t)
	return d != graph.Unreachable && d <= bound
}

// LabelSize returns the total number of label entries, a measure of
// index memory.
func (p *PLL) LabelSize() int {
	total := 0
	for i := range p.in {
		total += len(p.in[i]) + len(p.out[i])
	}
	return total
}
