package distindex

import (
	"sort"

	"wqe/internal/graph"
	"wqe/internal/par"
)

// labelEntry is one 2-hop-cover label: landmark rank and distance.
type labelEntry struct {
	rank int32
	d    int32
}

// labelCand is one candidate label produced by a pruned BFS: the node
// to label and its distance from (or to) the landmark.
type labelCand struct {
	v graph.NodeID
	d int32
}

// PLL is a Pruned Landmark Labeling index (Akiba, Iwata, Yoshida,
// SIGMOD 2013) for directed graphs. Every node v stores two label sets:
// in-labels {(u, dist(u→v))} and out-labels {(u, dist(v→u))} over a set
// of landmarks processed in descending-degree order with pruned BFS.
// dist(s→t) is then the minimum of dOut + dIn over landmarks common to
// out(s) and in(t).
type PLL struct {
	g    *graph.Graph
	rank []int32        // node → landmark rank (0 = highest degree)
	inv  []graph.NodeID // rank → node
	in   [][]labelEntry // sorted by rank
	out  [][]labelEntry
}

// pllScratch is the per-BFS working set, allocated once per worker and
// reused across landmarks: the distance array, the root-label index for
// O(1) prune queries, the BFS frontiers, the touched list that resets
// dist, and the candidate buffer. Hoisting these out of the per-
// landmark loop removes the dominant allocations of index construction
// (pinned by BenchmarkPLLBuild's ReportAllocs).
type pllScratch struct {
	dist      []int32
	rootLabel []int32
	frontier  []graph.NodeID
	next      []graph.NodeID
	touched   []graph.NodeID
	cand      []labelCand
}

func newPLLScratch(n int) *pllScratch {
	sc := &pllScratch{
		dist:      make([]int32, n),
		rootLabel: make([]int32, n),
	}
	for i := 0; i < n; i++ {
		sc.dist[i] = -1
		sc.rootLabel[i] = -1
	}
	return sc
}

// newPLLSkeleton builds the shared preamble of both constructions: the
// degree-descending landmark order (ties broken on the smaller node ID,
// so the ranking — and hence the whole index — is deterministic).
func newPLLSkeleton(g *graph.Graph) *PLL {
	n := g.NumNodes()
	p := &PLL{
		g:    g,
		rank: make([]int32, n),
		inv:  make([]graph.NodeID, n),
		in:   make([][]labelEntry, n),
		out:  make([][]labelEntry, n),
	}
	for i := range p.inv {
		p.inv[i] = graph.NodeID(i)
	}
	sort.Slice(p.inv, func(a, b int) bool {
		da, db := g.Degree(p.inv[a]), g.Degree(p.inv[b])
		if da != db {
			return da > db
		}
		return p.inv[a] < p.inv[b]
	})
	for r, v := range p.inv {
		p.rank[v] = int32(r)
	}
	return p
}

// NewPLL builds the index sequentially: one pruned forward and one
// pruned backward BFS per node, in rank order. It is the reference
// construction — NewPLLParallel produces a bit-identical index and is
// what production call sites use.
func NewPLL(g *graph.Graph) *PLL {
	p := newPLLSkeleton(g)
	n := g.NumNodes()
	sc := newPLLScratch(n)
	for r := 0; r < n; r++ {
		root := p.inv[r]
		p.commit(int32(r), true, p.prunedBFS(root, int32(r), true, sc))
		p.commit(int32(r), false, p.prunedBFS(root, int32(r), false, sc))
	}
	return p
}

// seedLandmarks is how many top-rank landmarks the parallel build
// indexes sequentially before fanning out. The highest-degree landmarks
// do nearly all the pruning, so committing them first keeps the
// speculative phase's wasted (verify-rejected) work small.
const seedLandmarks = 16

// NewPLLParallel builds the same index as NewPLL — label-for-label —
// with the per-landmark BFS runs fanned out over a worker pool.
// workers ≤ 0 means one per logical CPU; 1 degrades to the sequential
// build.
//
// The schedule exploits that pruned labeling is canonical: node v
// carries label (r, d) iff d = dist(r→v) and no lower-rank landmark
// covers the pair at that distance — a property of the graph and the
// rank order alone, not of construction interleaving. After the seed
// ranks are committed sequentially, the remaining ranks run in batches:
// every BFS in a batch prunes against the labels committed before the
// batch (a subset of what the sequential build would have seen, so it
// can only under-prune — candidates are a superset of the true labels,
// with correct distances), and a sequential rank-ordered merge then
// re-checks each candidate against the by-then-complete lower-rank
// labels, keeping exactly the canonical ones. Batches grow
// geometrically: early ranks prune hardest, so small early batches
// bound speculative waste while later ranks amortize the barriers.
func NewPLLParallel(g *graph.Graph, workers int) *PLL {
	workers = par.Workers(workers)
	n := g.NumNodes()
	if workers <= 1 || n <= seedLandmarks {
		return NewPLL(g)
	}

	p := newPLLSkeleton(g)
	seedSc := newPLLScratch(n)
	for r := 0; r < seedLandmarks; r++ {
		root := p.inv[r]
		p.commit(int32(r), true, p.prunedBFS(root, int32(r), true, seedSc))
		p.commit(int32(r), false, p.prunedBFS(root, int32(r), false, seedSc))
	}

	// Per-worker scratch, handed out through a free list. Workers check
	// one out per item, so at most `workers` are live at once.
	free := make(chan *pllScratch, workers)
	free <- seedSc
	for i := 1; i < workers; i++ {
		free <- newPLLScratch(n)
	}

	type rankCands struct {
		fwd, bwd []labelCand
	}
	batch := 2 * workers
	const maxBatch = 1024
	for lo := seedLandmarks; lo < n; {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		cands := make([]rankCands, hi-lo)
		par.ForEach(workers, hi-lo, func(i int) {
			sc := <-free
			r := int32(lo + i)
			root := p.inv[r]
			cands[i].fwd = append([]labelCand(nil), p.prunedBFS(root, r, true, sc)...)
			cands[i].bwd = append([]labelCand(nil), p.prunedBFS(root, r, false, sc)...)
			free <- sc
		})

		// Merge in rank order, re-verifying every candidate against the
		// now-complete lower-rank labels. verifyScratch only needs the
		// rootLabel index; reuse the seed scratch (idle during merges).
		sc := <-free
		for i := 0; i < hi-lo; i++ {
			r := int32(lo + i)
			p.mergeVerified(r, true, cands[i].fwd, sc)
			p.mergeVerified(r, false, cands[i].bwd, sc)
		}
		free <- sc

		lo = hi
		if batch < maxBatch {
			batch *= 2
		}
	}
	return p
}

// commit appends a BFS's candidate labels as-is: the sequential build's
// pruning already consulted every lower-rank label, so its candidates
// are final.
func (p *PLL) commit(rrank int32, forward bool, cands []labelCand) {
	for _, c := range cands {
		if forward {
			p.in[c.v] = append(p.in[c.v], labelEntry{rank: rrank, d: c.d})
		} else {
			p.out[c.v] = append(p.out[c.v], labelEntry{rank: rrank, d: c.d})
		}
	}
}

// mergeVerified appends the candidates that survive re-checking against
// the committed lower-rank labels. The check is literally the BFS prune
// predicate, evaluated against the labels the sequential build would
// have had at rank rrank — so a candidate survives iff the sequential
// BFS would have labeled it, and the merged index is bit-identical.
// Merging in rank order keeps every per-node label list rank-sorted,
// exactly like sequential appends.
func (p *PLL) mergeVerified(rrank int32, forward bool, cands []labelCand, sc *pllScratch) {
	root := p.inv[rrank]
	rootSide := p.out[root]
	if !forward {
		rootSide = p.in[root]
	}
	for _, le := range rootSide {
		sc.rootLabel[le.rank] = le.d
	}
	sc.rootLabel[rrank] = 0

	for _, c := range cands {
		if c.v != root && p.coveredBy(c.v, c.d, sc.rootLabel, forward) {
			continue
		}
		if forward {
			p.in[c.v] = append(p.in[c.v], labelEntry{rank: rrank, d: c.d})
		} else {
			p.out[c.v] = append(p.out[c.v], labelEntry{rank: rrank, d: c.d})
		}
	}

	for _, le := range rootSide {
		sc.rootLabel[le.rank] = -1
	}
	sc.rootLabel[rrank] = -1
}

// prunedBFS collects the label candidates for one landmark into sc.cand
// (returned; valid until the next call with the same scratch).
// forward=true walks out-edges and yields in-label candidates of
// reached nodes (they are reached FROM root); forward=false walks
// in-edges and yields out-label candidates. Pruning consults the labels
// committed so far: under the sequential schedule that is every lower
// rank, making the candidates final; under the batched schedule it is a
// subset, making them a superset of the final labels that mergeVerified
// filters.
func (p *PLL) prunedBFS(root graph.NodeID, rrank int32, forward bool, sc *pllScratch) []labelCand {
	// Index the root's existing labels for O(1) prune queries.
	// For forward BFS we need dist(root→u) ≤ d via existing labels:
	// min over common landmarks of root.out and u.in.
	rootSide := p.out[root]
	if !forward {
		rootSide = p.in[root]
	}
	for _, le := range rootSide {
		sc.rootLabel[le.rank] = le.d
	}
	sc.rootLabel[rrank] = 0

	sc.dist[root] = 0
	frontier := append(sc.frontier[:0], root)
	touched := append(sc.touched[:0], root)
	next := sc.next[:0]
	cand := sc.cand[:0]

	for len(frontier) > 0 {
		next = next[:0]
		for _, v := range frontier {
			dv := sc.dist[v]
			// Prune: if the existing labels already certify
			// dist(root,v) ≤ dv, neither label nor expand v.
			if v != root && p.coveredBy(v, dv, sc.rootLabel, forward) {
				continue
			}
			cand = append(cand, labelCand{v: v, d: dv})
			edges := p.g.Out(v)
			if !forward {
				edges = p.g.In(v)
			}
			for _, e := range edges {
				if sc.dist[e.To] >= 0 {
					continue
				}
				// Nodes ranked above the current landmark were already
				// processed as landmarks; paths through them are covered.
				if p.rank[e.To] < rrank {
					continue
				}
				sc.dist[e.To] = dv + 1
				next = append(next, e.To)
				touched = append(touched, e.To)
			}
		}
		frontier, next = next, frontier
	}

	// Reset scratch. frontier/next may have swapped an arbitrary number
	// of times; store both back so their capacity is kept either way.
	for _, v := range touched {
		sc.dist[v] = -1
	}
	for _, le := range rootSide {
		sc.rootLabel[le.rank] = -1
	}
	sc.rootLabel[rrank] = -1
	sc.frontier, sc.next, sc.touched, sc.cand = frontier, next, touched, cand
	return cand
}

// coveredBy reports whether existing labels certify dist(root, v) ≤ d
// (forward) or dist(v, root) ≤ d (backward), where rootLabel holds the
// root-side label distances indexed by landmark rank.
func (p *PLL) coveredBy(v graph.NodeID, d int32, rootLabel []int32, forward bool) bool {
	side := p.in[v]
	if !forward {
		side = p.out[v]
	}
	for _, le := range side {
		if rd := rootLabel[le.rank]; rd >= 0 && rd+le.d <= d {
			return true
		}
	}
	return false
}

// Dist answers an exact directed distance query by merge-intersecting
// the sorted out-labels of s with the in-labels of t.
func (p *PLL) Dist(s, t graph.NodeID) int {
	if s == t {
		return 0
	}
	ls, lt := p.out[s], p.in[t]
	best := int32(-1)
	i, j := 0, 0
	for i < len(ls) && j < len(lt) {
		switch {
		case ls[i].rank < lt[j].rank:
			i++
		case ls[i].rank > lt[j].rank:
			j++
		default:
			if sum := ls[i].d + lt[j].d; best < 0 || sum < best {
				best = sum
			}
			i++
			j++
		}
	}
	// s or t may themselves be landmarks: rank(s) appears in lt, rank(t)
	// in ls, via the (self, 0) label added during construction, so the
	// merge above already covers those cases.
	if best < 0 {
		return graph.Unreachable
	}
	return int(best)
}

// Within reports dist(s, t) ≤ bound without computing the exact
// distance: the label merge returns on the first landmark pair whose
// distance sum meets the bound. Bounded reachability is the matcher's
// dominant query shape (every pattern-edge check is a Within), and most
// true answers are certified by the first few (highest-rank) landmarks,
// so the early exit skips the bulk of both label lists.
func (p *PLL) Within(s, t graph.NodeID, bound int) bool {
	if s == t {
		return bound >= 0
	}
	ls, lt := p.out[s], p.in[t]
	i, j := 0, 0
	for i < len(ls) && j < len(lt) {
		switch {
		case ls[i].rank < lt[j].rank:
			i++
		case ls[i].rank > lt[j].rank:
			j++
		default:
			if int(ls[i].d)+int(lt[j].d) <= bound {
				return true
			}
			i++
			j++
		}
	}
	return false
}

// LabelSize returns the total number of label entries, a measure of
// index memory.
func (p *PLL) LabelSize() int {
	total := 0
	for i := range p.in {
		total += len(p.in[i]) + len(p.out[i])
	}
	return total
}
