package distindex

import (
	"math/rand"
	"testing"

	"wqe/internal/graph"
)

func randomGraph(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode("N", nil)
	}
	for i := 0; i < m; i++ {
		a, b := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if a != b {
			g.AddEdge(a, b, "")
		}
	}
	return g
}

// TestPLLMatchesBFS cross-checks the pruned-landmark index against the
// BFS oracle on every node pair of random directed graphs — sparse,
// dense, and disconnected regimes.
func TestPLLMatchesBFS(t *testing.T) {
	shapes := []struct{ n, m int }{
		{12, 15},  // sparse, likely disconnected
		{20, 60},  // medium
		{15, 120}, // dense
		{10, 0},   // no edges at all
	}
	for _, sh := range shapes {
		for seed := int64(1); seed <= 6; seed++ {
			g := randomGraph(sh.n, sh.m, seed)
			pll := NewPLL(g)
			bfs := NewBFS(g)
			for a := 0; a < sh.n; a++ {
				for b := 0; b < sh.n; b++ {
					want := bfs.Dist(graph.NodeID(a), graph.NodeID(b))
					got := pll.Dist(graph.NodeID(a), graph.NodeID(b))
					if got != want {
						t.Fatalf("n=%d m=%d seed=%d: PLL dist(%d,%d)=%d, BFS=%d",
							sh.n, sh.m, seed, a, b, got, want)
					}
				}
			}
		}
	}
}

// TestPLLChain checks exact distances and direction on a chain.
func TestPLLChain(t *testing.T) {
	g := graph.New()
	for i := 0; i < 8; i++ {
		g.AddNode("N", nil)
	}
	for i := 0; i+1 < 8; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), "")
	}
	pll := NewPLL(g)
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			want := b - a
			if b < a {
				want = graph.Unreachable
			}
			if got := pll.Dist(graph.NodeID(a), graph.NodeID(b)); got != want {
				t.Fatalf("dist(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
	if pll.LabelSize() == 0 {
		t.Error("index should carry labels")
	}
}

func TestWithin(t *testing.T) {
	g := randomGraph(15, 30, 3)
	pll := NewPLL(g)
	bfs := NewBFS(g)
	for a := 0; a < 15; a++ {
		for b := 0; b < 15; b++ {
			for bound := 0; bound <= 3; bound++ {
				pw := pll.Within(graph.NodeID(a), graph.NodeID(b), bound)
				bw := bfs.Within(graph.NodeID(a), graph.NodeID(b), bound)
				if pw != bw {
					t.Fatalf("Within(%d,%d,%d): PLL=%v BFS=%v", a, b, bound, pw, bw)
				}
			}
		}
	}
}

func TestAutoSelection(t *testing.T) {
	small := randomGraph(10, 12, 1)
	if _, ok := Auto(small).(*BFS); !ok {
		t.Error("Auto should pick BFS for small graphs")
	}
}

func BenchmarkPLLBuild(b *testing.B) {
	g := randomGraph(2000, 6000, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewPLL(g)
	}
}

func BenchmarkPLLQuery(b *testing.B) {
	g := randomGraph(2000, 6000, 42)
	pll := NewPLL(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pll.Dist(graph.NodeID(i%2000), graph.NodeID((i*7)%2000))
	}
}

func BenchmarkBFSQuery(b *testing.B) {
	g := randomGraph(2000, 6000, 42)
	bfs := NewBFS(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bfs.Dist(graph.NodeID(i%2000), graph.NodeID((i*7)%2000))
	}
}
