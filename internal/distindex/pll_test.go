package distindex

import (
	"math/rand"
	"testing"

	"wqe/internal/graph"
)

func randomGraph(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode("N", nil)
	}
	for i := 0; i < m; i++ {
		a, b := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if a != b {
			g.AddEdge(a, b, "")
		}
	}
	return g
}

// TestPLLMatchesBFS cross-checks the pruned-landmark index against the
// BFS oracle on every node pair of random directed graphs — sparse,
// dense, and disconnected regimes.
func TestPLLMatchesBFS(t *testing.T) {
	shapes := []struct{ n, m int }{
		{12, 15},  // sparse, likely disconnected
		{20, 60},  // medium
		{15, 120}, // dense
		{10, 0},   // no edges at all
	}
	for _, sh := range shapes {
		for seed := int64(1); seed <= 6; seed++ {
			g := randomGraph(sh.n, sh.m, seed)
			pll := NewPLL(g)
			bfs := NewBFS(g)
			for a := 0; a < sh.n; a++ {
				for b := 0; b < sh.n; b++ {
					want := bfs.Dist(graph.NodeID(a), graph.NodeID(b))
					got := pll.Dist(graph.NodeID(a), graph.NodeID(b))
					if got != want {
						t.Fatalf("n=%d m=%d seed=%d: PLL dist(%d,%d)=%d, BFS=%d",
							sh.n, sh.m, seed, a, b, got, want)
					}
				}
			}
		}
	}
}

// TestPLLChain checks exact distances and direction on a chain.
func TestPLLChain(t *testing.T) {
	g := graph.New()
	for i := 0; i < 8; i++ {
		g.AddNode("N", nil)
	}
	for i := 0; i+1 < 8; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), "")
	}
	pll := NewPLL(g)
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			want := b - a
			if b < a {
				want = graph.Unreachable
			}
			if got := pll.Dist(graph.NodeID(a), graph.NodeID(b)); got != want {
				t.Fatalf("dist(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
	if pll.LabelSize() == 0 {
		t.Error("index should carry labels")
	}
}

func TestWithin(t *testing.T) {
	g := randomGraph(15, 30, 3)
	pll := NewPLL(g)
	bfs := NewBFS(g)
	for a := 0; a < 15; a++ {
		for b := 0; b < 15; b++ {
			for bound := 0; bound <= 3; bound++ {
				pw := pll.Within(graph.NodeID(a), graph.NodeID(b), bound)
				bw := bfs.Within(graph.NodeID(a), graph.NodeID(b), bound)
				if pw != bw {
					t.Fatalf("Within(%d,%d,%d): PLL=%v BFS=%v", a, b, bound, pw, bw)
				}
			}
		}
	}
}

// TestWithinAgreesWithDist pins the early-exit fast path to the
// definition Within(s,t,b) ⇔ Dist(s,t) ≤ b on every pair, every bound
// up to the diameter and past it, across graph regimes — including the
// self-pair and negative-bound edges the merge loop never reaches.
func TestWithinAgreesWithDist(t *testing.T) {
	shapes := []struct{ n, m int }{
		{12, 15},  // sparse, likely disconnected
		{20, 60},  // medium
		{15, 120}, // dense
		{10, 0},   // edgeless: Within must be false off the diagonal
	}
	for _, sh := range shapes {
		for seed := int64(1); seed <= 4; seed++ {
			g := randomGraph(sh.n, sh.m, seed)
			pll := NewPLL(g)
			for a := 0; a < sh.n; a++ {
				for b := 0; b < sh.n; b++ {
					s, u := graph.NodeID(a), graph.NodeID(b)
					d := pll.Dist(s, u)
					for bound := -1; bound <= sh.n+1; bound++ {
						want := d != graph.Unreachable && d <= bound
						if got := pll.Within(s, u, bound); got != want {
							t.Fatalf("n=%d m=%d seed=%d: Within(%d,%d,%d)=%v, Dist=%d",
								sh.n, sh.m, seed, a, b, bound, got, d)
						}
					}
				}
			}
		}
	}
}

func TestAutoSelection(t *testing.T) {
	small := randomGraph(10, 12, 1)
	if _, ok := Auto(small).(*BFS); !ok {
		t.Error("Auto should pick BFS for small graphs")
	}
}

// labelsEqual compares two indexes label-for-label: same per-node
// in/out lists, same (rank, d) entries in the same order.
func labelsEqual(t *testing.T, a, b *PLL) bool {
	t.Helper()
	if len(a.in) != len(b.in) || a.LabelSize() != b.LabelSize() {
		return false
	}
	sides := func(p *PLL, i int) [2][]labelEntry { return [2][]labelEntry{p.in[i], p.out[i]} }
	for i := range a.in {
		as, bs := sides(a, i), sides(b, i)
		for s := 0; s < 2; s++ {
			if len(as[s]) != len(bs[s]) {
				return false
			}
			for j := range as[s] {
				if as[s][j] != bs[s][j] {
					return false
				}
			}
		}
	}
	return true
}

// TestPLLParallelBitIdentical pins the tentpole contract: the parallel
// construction produces the exact sequential index — every node's label
// lists entry-for-entry — across graph shapes, seeds, and worker
// counts (including workers exceeding the machine).
func TestPLLParallelBitIdentical(t *testing.T) {
	shapes := []struct{ n, m int }{
		{12, 15},   // tiny: below the seed threshold, sequential fallback
		{60, 150},  // sparse
		{80, 600},  // medium
		{50, 1200}, // dense
		{90, 0},    // edgeless
		{200, 700}, // larger than several batch doublings
	}
	for _, sh := range shapes {
		for seed := int64(1); seed <= 5; seed++ {
			g := randomGraph(sh.n, sh.m, seed)
			want := NewPLL(g)
			for _, workers := range []int{2, 3, 8} {
				got := NewPLLParallel(g, workers)
				if !labelsEqual(t, want, got) {
					t.Fatalf("n=%d m=%d seed=%d workers=%d: parallel labels differ from sequential (sizes %d vs %d)",
						sh.n, sh.m, seed, workers, want.LabelSize(), got.LabelSize())
				}
			}
		}
	}
}

// TestPLLParallelDistances cross-checks parallel-built distances
// against the BFS oracle directly, so a bug that broke both builds the
// same way could not hide behind the identity test.
func TestPLLParallelDistances(t *testing.T) {
	g := randomGraph(70, 300, 9)
	pll := NewPLLParallel(g, 4)
	bfs := NewBFS(g)
	for a := 0; a < 70; a++ {
		for b := 0; b < 70; b++ {
			if got, want := pll.Dist(graph.NodeID(a), graph.NodeID(b)), bfs.Dist(graph.NodeID(a), graph.NodeID(b)); got != want {
				t.Fatalf("parallel PLL dist(%d,%d)=%d, BFS=%d", a, b, got, want)
			}
		}
	}
}

// TestPLLChainParallel: the deterministic chain case through the
// parallel path (chain length exceeds the seed count, so the batched
// phase actually runs).
func TestPLLChainParallel(t *testing.T) {
	g := graph.New()
	const n = 40
	for i := 0; i < n; i++ {
		g.AddNode("N", nil)
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), "")
	}
	if !labelsEqual(t, NewPLL(g), NewPLLParallel(g, 3)) {
		t.Fatal("chain labels differ between sequential and parallel builds")
	}
}

func BenchmarkPLLBuild(b *testing.B) {
	g := randomGraph(2000, 6000, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewPLL(g)
	}
}

func BenchmarkPLLBuildParallel(b *testing.B) {
	g := randomGraph(2000, 6000, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewPLLParallel(g, 0)
	}
}

func BenchmarkPLLQuery(b *testing.B) {
	g := randomGraph(2000, 6000, 42)
	pll := NewPLL(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pll.Dist(graph.NodeID(i%2000), graph.NodeID((i*7)%2000))
	}
}

func BenchmarkBFSQuery(b *testing.B) {
	g := randomGraph(2000, 6000, 42)
	bfs := NewBFS(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bfs.Dist(graph.NodeID(i%2000), graph.NodeID((i*7)%2000))
	}
}
