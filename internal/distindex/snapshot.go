package distindex

import (
	"encoding/binary"
	"fmt"

	"wqe/internal/graph"
)

// PLL label serialization. The blob rides in the opaque aux section of
// a graph snapshot (internal/graph/snapshot.go), so a server cold-start
// restores the index instead of rebuilding it. Layout (little-endian):
//
//	magic[8] "WQEPLL\x00\x00" · version:u32 · n:u64 ·
//	rank:   n × u32
//	inOff:  (n+1) × u32, then inOff[n] entries of (rank:u32, d:u32)
//	outOff: (n+1) × u32, then outOff[n] entries of (rank:u32, d:u32)
//
// The label lists are stored verbatim (rank + distance, in list order)
// and the rank permutation pins landmark order, so the restored index
// is bit-identical to the one marshaled: every Dist/Within merge walks
// exactly the same entries. Integrity of the bytes themselves is the
// enclosing snapshot's body checksum; Unmarshal still validates all
// structure (permutation, offsets, rank ordering) so a blob from a
// foreign graph fails loudly instead of answering wrong distances.
const (
	pllMagic   = "WQEPLL\x00\x00"
	pllVersion = 1
)

// Marshal serializes the index labels. The output is deterministic: the
// same index always produces the same bytes.
func (p *PLL) Marshal() []byte {
	n := len(p.rank)
	inTotal, outTotal := 0, 0
	for i := 0; i < n; i++ {
		inTotal += len(p.in[i])
		outTotal += len(p.out[i])
	}
	size := len(pllMagic) + 4 + 8 + 4*n + 2*(4*(n+1)) + 8*(inTotal+outTotal)
	buf := make([]byte, 0, size)
	buf = append(buf, pllMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, pllVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(n))
	for _, r := range p.rank {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r))
	}
	buf = appendSide(buf, p.in)
	buf = appendSide(buf, p.out)
	return buf
}

func appendSide(buf []byte, side [][]labelEntry) []byte {
	off := uint32(0)
	buf = binary.LittleEndian.AppendUint32(buf, 0)
	for _, ls := range side {
		off += uint32(len(ls))
		buf = binary.LittleEndian.AppendUint32(buf, off)
	}
	for _, ls := range side {
		for _, le := range ls {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(le.rank))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(le.d))
		}
	}
	return buf
}

// UnmarshalPLL reconstructs a marshaled index over g. It fails if the
// blob is malformed or was built over a graph of a different size; the
// label entries per node land as subslices of one shared arena, so a
// restore is a handful of big allocations regardless of node count.
func UnmarshalPLL(g *graph.Graph, data []byte) (*PLL, error) {
	c := &byteCursor{b: data}
	if string(c.take(len(pllMagic))) != pllMagic {
		return nil, fmt.Errorf("distindex: pll blob: bad magic")
	}
	if v := c.u32(); v != pllVersion {
		return nil, fmt.Errorf("distindex: pll blob: unsupported version %d (this build reads version %d)", v, pllVersion)
	}
	n64 := c.u64()
	if c.err != nil {
		return nil, fmt.Errorf("distindex: pll blob: truncated header")
	}
	if n64 != uint64(g.NumNodes()) {
		return nil, fmt.Errorf("distindex: pll blob: built over %d nodes, graph has %d", n64, g.NumNodes())
	}
	n := int(n64)

	rank := c.int32s(n)
	if c.err != nil {
		return nil, fmt.Errorf("distindex: pll blob: truncated rank array")
	}
	inv := make([]graph.NodeID, n)
	seen := make([]bool, n)
	for v, r := range rank {
		if r < 0 || int(r) >= n || seen[r] {
			return nil, fmt.Errorf("distindex: pll blob: rank array is not a permutation (node %d, rank %d)", v, r)
		}
		seen[r] = true
		inv[r] = graph.NodeID(v)
	}

	in, err := readSide(c, n, "in")
	if err != nil {
		return nil, err
	}
	out, err := readSide(c, n, "out")
	if err != nil {
		return nil, err
	}
	if c.off != len(c.b) {
		return nil, fmt.Errorf("distindex: pll blob: %d trailing bytes", len(c.b)-c.off)
	}
	return &PLL{g: g, rank: rank, inv: inv, in: in, out: out}, nil
}

func readSide(c *byteCursor, n int, what string) ([][]labelEntry, error) {
	off := c.int32s(n + 1)
	if c.err != nil {
		return nil, fmt.Errorf("distindex: pll blob: truncated %s offsets", what)
	}
	if off[0] != 0 {
		return nil, fmt.Errorf("distindex: pll blob: %s offsets must start at 0", what)
	}
	for i := 0; i < n; i++ {
		if off[i] > off[i+1] {
			return nil, fmt.Errorf("distindex: pll blob: %s offsets not monotonic at %d", what, i)
		}
	}
	total := int(off[n])
	arena := make([]labelEntry, total)
	for i := range arena {
		r := int32(c.u32())
		d := int32(c.u32())
		if c.err != nil {
			return nil, fmt.Errorf("distindex: pll blob: truncated %s entries", what)
		}
		if r < 0 || int(r) >= n || d < 0 {
			return nil, fmt.Errorf("distindex: pll blob: %s entry %d out of range (rank=%d d=%d)", what, i, r, d)
		}
		arena[i] = labelEntry{rank: r, d: d}
	}
	side := make([][]labelEntry, n)
	for v := 0; v < n; v++ {
		ls := arena[off[v]:off[v+1]:off[v+1]]
		// Dist/Within merge-intersect; the lists must be strictly
		// rank-sorted exactly as construction leaves them.
		for i := 1; i < len(ls); i++ {
			if ls[i-1].rank >= ls[i].rank {
				return nil, fmt.Errorf("distindex: pll blob: %s labels of node %d not strictly rank-sorted", what, v)
			}
		}
		side[v] = ls
	}
	return side, nil
}

// byteCursor walks an in-memory blob with sticky bounds-check errors.
// Allocation sizes are always derived from bytes actually present, so a
// hostile header cannot force a large allocation.
type byteCursor struct {
	b   []byte
	off int
	err error
}

func (c *byteCursor) take(n int) []byte {
	if c.err != nil || c.off+n > len(c.b) || n < 0 {
		c.err = fmt.Errorf("truncated at byte %d", c.off)
		return nil
	}
	p := c.b[c.off : c.off+n]
	c.off += n
	return p
}

func (c *byteCursor) u32() uint32 {
	p := c.take(4)
	if c.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (c *byteCursor) u64() uint64 {
	p := c.take(8)
	if c.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (c *byteCursor) int32s(count int) []int32 {
	p := c.take(4 * count)
	if c.err != nil {
		return nil
	}
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(p[i*4:]))
	}
	return out
}
