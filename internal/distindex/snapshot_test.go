package distindex

import (
	"bytes"
	"strings"
	"testing"

	"wqe/internal/graph"
)

func TestPLLMarshalRoundTrip(t *testing.T) {
	g := randomGraph(40, 120, 9)
	p := NewPLL(g)
	blob := p.Marshal()

	r, err := UnmarshalPLL(g, blob)
	if err != nil {
		t.Fatalf("UnmarshalPLL: %v", err)
	}
	// Bit-identical restore: same rank permutation, same label lists.
	for v := range p.rank {
		if p.rank[v] != r.rank[v] || p.inv[v] != r.inv[v] {
			t.Fatalf("rank/inv mismatch at %d", v)
		}
		for side, pair := range [][2][]labelEntry{{p.in[v], r.in[v]}, {p.out[v], r.out[v]}} {
			if len(pair[0]) != len(pair[1]) {
				t.Fatalf("label list length mismatch at node %d side %d", v, side)
			}
			for i := range pair[0] {
				if pair[0][i] != pair[1][i] {
					t.Fatalf("label entry mismatch at node %d side %d entry %d", v, side, i)
				}
			}
		}
	}
	// Same answers on every pair.
	n := g.NumNodes()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			s, d := graph.NodeID(a), graph.NodeID(b)
			if p.Dist(s, d) != r.Dist(s, d) {
				t.Fatalf("Dist(%d,%d) differs after restore", a, b)
			}
			if p.Within(s, d, 3) != r.Within(s, d, 3) {
				t.Fatalf("Within(%d,%d,3) differs after restore", a, b)
			}
		}
	}
	// Deterministic encoding: marshal of the restore is byte-identical.
	if !bytes.Equal(blob, r.Marshal()) {
		t.Fatalf("re-marshal differs")
	}
}

func TestPLLUnmarshalRejects(t *testing.T) {
	g := randomGraph(20, 50, 3)
	blob := NewPLL(g).Marshal()

	if _, err := UnmarshalPLL(randomGraph(21, 50, 3), blob); err == nil ||
		!strings.Contains(err.Error(), "nodes") {
		t.Errorf("size mismatch not rejected clearly: %v", err)
	}
	for _, cut := range []int{0, 4, len(blob) / 2, len(blob) - 1} {
		if _, err := UnmarshalPLL(g, blob[:cut]); err == nil {
			t.Errorf("truncation at %d not rejected", cut)
		}
	}
	if _, err := UnmarshalPLL(g, append([]byte(nil), append(blob, 0)...)); err == nil {
		t.Errorf("trailing bytes not rejected")
	}
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xFF
	if _, err := UnmarshalPLL(g, bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic not rejected clearly: %v", err)
	}
	bad = append([]byte(nil), blob...)
	bad[8] = 0x7F // version field
	if _, err := UnmarshalPLL(g, bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version skew not rejected clearly: %v", err)
	}
}

// TestPLLSnapshotEmbedding is the composition the server cold path
// uses: graph + marshaled PLL through one snapshot file, restored into
// an index that answers identically.
func TestPLLSnapshotEmbedding(t *testing.T) {
	g := randomGraph(30, 90, 11)
	p := NewPLL(g)
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf, p.Marshal()); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	snap, err := graph.ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	r, err := UnmarshalPLL(snap.G, snap.Aux)
	if err != nil {
		t.Fatalf("UnmarshalPLL(aux): %v", err)
	}
	for a := 0; a < g.NumNodes(); a++ {
		for b := 0; b < g.NumNodes(); b++ {
			if p.Dist(graph.NodeID(a), graph.NodeID(b)) != r.Dist(graph.NodeID(a), graph.NodeID(b)) {
				t.Fatalf("embedded restore Dist(%d,%d) differs", a, b)
			}
		}
	}
}
