package hist

import (
	"testing"
	"time"

	"wqe/internal/par"
)

func TestEmptySnapshot(t *testing.T) {
	var h Hist
	s := h.Snapshot()
	if s.Count() != 0 || s.Max() != 0 || s.Mean() != 0 {
		t.Fatalf("empty snapshot: count=%d max=%v mean=%v", s.Count(), s.Max(), s.Mean())
	}
	if q := s.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

func TestBucketFor(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11},
	}
	for _, tc := range cases {
		if got := bucketFor(tc.d); got != tc.want {
			t.Errorf("bucketFor(%d) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

// TestQuantileBounds pins the quantile contract: the reported value is
// an upper bound within one power-of-two bucket of the true quantile,
// and never exceeds the observed max.
func TestQuantileBounds(t *testing.T) {
	var h Hist
	// 100 observations: 1ms ×90, 10ms ×9, 100ms ×1.
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(10 * time.Millisecond)
	}
	h.Observe(100 * time.Millisecond)

	s := h.Snapshot()
	if s.Count() != 100 {
		t.Fatalf("count = %d, want 100", s.Count())
	}
	if s.Max() != 100*time.Millisecond {
		t.Fatalf("max = %v, want 100ms", s.Max())
	}
	// p50 lands in the 1ms bucket: upper bound < 2ms.
	if q := s.Quantile(0.50); q < time.Millisecond || q >= 2*time.Millisecond {
		t.Errorf("p50 = %v, want in [1ms, 2ms)", q)
	}
	// p95 lands in the 10ms bucket: upper bound < 20ms.
	if q := s.Quantile(0.95); q < 10*time.Millisecond || q >= 20*time.Millisecond {
		t.Errorf("p95 = %v, want in [10ms, 20ms)", q)
	}
	// p100 is clamped to the exact max.
	if q := s.Quantile(1); q != 100*time.Millisecond {
		t.Errorf("p100 = %v, want exactly 100ms", q)
	}
}

// TestQuantileClampedToMax: when the quantile bucket's upper edge
// exceeds the true max, the max wins — p99 of a uniform set can never
// exceed the largest observation.
func TestQuantileClampedToMax(t *testing.T) {
	var h Hist
	for i := 0; i < 10; i++ {
		h.Observe(1000) // bucket [512, 1024); upper edge 1023
	}
	if q := h.Snapshot().Quantile(0.99); q != 1000 {
		t.Fatalf("p99 = %v, want clamped to max 1000ns", q)
	}
}

func TestMean(t *testing.T) {
	var h Hist
	h.Observe(2 * time.Millisecond)
	h.Observe(4 * time.Millisecond)
	if m := h.Snapshot().Mean(); m != 3*time.Millisecond {
		t.Fatalf("mean = %v, want 3ms", m)
	}
}

// TestConcurrentObserve hammers one histogram from many goroutines;
// run under -race this pins the lock-free contract, and the final
// count/sum must be exact regardless of interleaving.
func TestConcurrentObserve(t *testing.T) {
	var h Hist
	const workers, per = 8, 1000
	par.ForEach(workers, workers, func(w int) {
		for i := 0; i < per; i++ {
			h.Observe(time.Duration(w*1000 + i))
		}
	})
	s := h.Snapshot()
	if s.Count() != workers*per {
		t.Fatalf("count = %d, want %d", s.Count(), workers*per)
	}
	if s.Max() != time.Duration(7*1000+999) {
		t.Fatalf("max = %v, want %v", s.Max(), time.Duration(7999))
	}
}
