// Package hist provides a lock-free power-of-two-bucket latency
// histogram, shared by the serving layer's /stats endpoint and the
// closed-loop load generator so both report percentiles computed the
// same way. No external dependencies: buckets are a fixed array of
// atomic counters indexed by the bit length of the observed duration in
// nanoseconds, so Observe is a couple of atomic adds and a CAS, cheap
// enough to sit on a serving hot path.
package hist

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// nBuckets covers every possible duration: bucket i holds observations
// whose nanosecond count has bit length i, i.e. values in
// [2^(i-1), 2^i); bucket 0 holds exactly zero. bits.Len64 never exceeds
// 64, so 65 buckets suffice.
const nBuckets = 65

// Hist is a concurrent latency histogram. The zero value is ready to
// use. All methods are safe for concurrent callers; every field is
// accessed only through sync/atomic.
type Hist struct {
	buckets [nBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // total observed nanoseconds
	max     atomic.Int64 // largest observed nanoseconds
}

// bucketFor maps a duration to its bucket index. Negative durations
// (clock weirdness) clamp to zero rather than corrupting the index.
func bucketFor(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return bits.Len64(uint64(d))
}

// Observe records one duration.
func (h *Hist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketFor(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Hist) Count() int64 { return h.count.Load() }

// Snapshot copies the histogram's counters into an immutable view.
// Under concurrent Observe traffic the copy is per-bucket exact but not
// a single cross-bucket instant — fine for stats reporting.
func (h *Hist) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.buckets {
		s.buckets[i] = h.buckets[i].Load()
		s.count += s.buckets[i]
	}
	s.sum = h.sum.Load()
	s.max = time.Duration(h.max.Load())
	return s
}

// Snapshot is a point-in-time copy of a Hist, safe to read without
// synchronization.
type Snapshot struct {
	buckets [nBuckets]int64
	count   int64
	sum     int64
	max     time.Duration
}

// Count returns the number of observations in the snapshot.
func (s Snapshot) Count() int64 { return s.count }

// Max returns the largest observed duration.
func (s Snapshot) Max() time.Duration { return s.max }

// Mean returns the arithmetic mean of the observations (0 when empty).
func (s Snapshot) Mean() time.Duration {
	if s.count == 0 {
		return 0
	}
	return time.Duration(s.sum / s.count)
}

// Quantile returns an upper bound for the p-quantile (0 < p ≤ 1): the
// upper edge of the first bucket whose cumulative count reaches
// ⌈p·count⌉, clamped to the exact observed maximum. With power-of-two
// buckets the bound is within 2x of the true quantile, which is the
// honest resolution this histogram trades for lock-freedom; p50/p95/p99
// read through this. An empty snapshot returns 0.
func (s Snapshot) Quantile(p float64) time.Duration {
	if s.count == 0 || p <= 0 {
		return 0
	}
	if p > 1 {
		p = 1
	}
	// ⌈p·count⌉ without importing math: the target rank is the smallest
	// integer ≥ p·count, at least 1.
	target := int64(p * float64(s.count))
	if float64(target) < p*float64(s.count) {
		target++
	}
	if target < 1 {
		target = 1
	}
	cum := int64(0)
	for i, c := range s.buckets {
		cum += c
		if cum >= target {
			upper := bucketUpper(i)
			if upper > s.max {
				return s.max
			}
			return upper
		}
	}
	return s.max
}

// bucketUpper returns the largest duration bucket i can hold.
func bucketUpper(i int) time.Duration {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return time.Duration(int64(^uint64(0) >> 1)) // clamp at MaxInt64 ns
	}
	return time.Duration((uint64(1) << uint(i)) - 1)
}
